(* Distribution lists: direct membership as single L2/L3 queries, and
   transitive membership over nested (even cyclic) lists as a fixpoint
   of dv rounds.

   Run with:  dune exec examples/distribution_lists.exe *)

open Ndq

let show_lists label entries =
  Fmt.pr "%s: %s@." label
    (String.concat ", "
       (List.concat_map (fun e -> Entry.string_values e "listName") entries))

let () =
  let dir = Lists.sample () in
  let eng = Engine.create ~block:8 dir in
  Fmt.pr "sample directory: %d entries (incl. a staff <-> oncall cycle)@."
    (Instance.size dir);

  (* Single-query questions. *)
  let q = Lists.lists_containing_query (Dn.of_string (Lists.person_dn "divesh")) in
  Fmt.pr "@.[%s] %s@." (Lang.level_to_string (Lang.level q)) (Qprinter.to_string q);
  show_lists "lists directly containing divesh" (Engine.eval_entries eng q);

  show_lists "lists with a member named milo"
    (Engine.eval_entries eng (Lists.lists_with_surname_query "milo"));

  show_lists "empty lists (count(member) = 0)"
    (Engine.eval_entries eng Lists.empty_lists_query);

  (* Transitive membership: the language has no recursion, so the
     closure is a fixpoint of dv queries — one engine query per round. *)
  let persons, traversed, rounds =
    Lists.transitive_members eng (Dn.of_string (Lists.list_dn "dbgroup"))
  in
  Fmt.pr "@.transitive members of dbgroup (%d dv rounds through %s):@."
    rounds
    (String.concat ", "
       (List.concat_map (fun e -> Entry.string_values e "listName") traversed));
  List.iter
    (fun p -> Fmt.pr "  %s@." (String.concat "" (Entry.string_values p "uid")))
    persons;

  (* Cycles terminate. *)
  let persons, traversed, _ =
    Lists.transitive_members eng (Dn.of_string (Lists.list_dn "staff"))
  in
  Fmt.pr "@.the staff <-> oncall cycle closes with %d persons over %d lists@."
    (List.length persons) (List.length traversed);

  (* Reverse closure: who can ultimately reach laks? *)
  show_lists "lists transitively containing laks"
    (Lists.lists_containing eng ~transitive:true
       (Dn.of_string (Lists.person_dn "laks")));

  (* At scale. *)
  let big =
    Lists.generate
      ~params:{ Lists.default_gen with people = 2_000; lists = 400; nesting_prob = 0.4 }
      ()
  in
  let eng = Engine.create ~block:64 big in
  Fmt.pr "@.synthetic web: %d entries, %d violations@." (Instance.size big)
    (List.length (Instance.validate big));
  let t0 = Sys.time () in
  let total =
    List.fold_left
      (fun acc k ->
        let ps, _, _ =
          Lists.transitive_members eng
            (Dn.of_string (Lists.list_dn (Printf.sprintf "l%d" k)))
        in
        acc + List.length ps)
      0
      (List.init 20 Fun.id)
  in
  Fmt.pr "20 closures: %d member hits in %.3fs; io %a@." total
    (Sys.time () -. t0) Io_stats.pp (Engine.stats eng)
