(* QoS policy administration (Example 2.1 / Figure 12): a policy
   enforcement point asks the directory how to condition packets.

   Run with:  dune exec examples/qos_policy.exe *)

open Ndq

let pp_decision ppf (d : Qos.decision) =
  let names attr es =
    String.concat ", " (List.concat_map (fun e -> Entry.string_values e attr) es)
  in
  if d.Qos.matched_policies = [] then Fmt.string ppf "no policy applies"
  else
    Fmt.pf ppf "policy [%s] -> action [%s]"
      (names "SLAPolicyName" d.Qos.matched_policies)
      (names "DSActionName" d.Qos.actions)

let describe (p : Qos.packet) =
  Printf.sprintf "%s:%d -> %s:%d proto %d" p.Qos.src_addr p.Qos.src_port
    p.Qos.dst_addr p.Qos.dst_port p.Qos.protocol

let () =
  (* The reconstructed Figure 12 directory. *)
  let dir = Qos.figure_12 () in
  Fmt.pr "Figure 12 directory: %d entries@." (Instance.size dir);
  let engine = Engine.create ~block:8 dir in

  let weekend = { Qos.time = 19980704093000; day_of_week = 6 } in
  let weekday = { Qos.time = 19980707093000; day_of_week = 2 } in
  let scenarios =
    [
      ( "weekend web traffic from the split-off subnet",
        { Qos.src_addr = "204.178.16.5"; src_port = 4000;
          dst_addr = "135.104.9.9"; dst_port = 80; protocol = 6 },
        weekend );
      ( "same subnet, NNTP: the fatt exception overrides dso",
        { Qos.src_addr = "204.178.16.5"; src_port = 4000;
          dst_addr = "135.104.9.9"; dst_port = 119; protocol = 6 },
        weekend );
      ( "gold subnet traffic: priority 1 wins",
        { Qos.src_addr = "135.104.7.7"; src_port = 5000;
          dst_addr = "12.0.0.1"; dst_port = 80; protocol = 6 },
        weekday );
      ( "weekday SMTP: the mail policy",
        { Qos.src_addr = "12.1.2.3"; src_port = 25; dst_addr = "12.0.0.2";
          dst_port = 25; protocol = 6 },
        weekday );
      ( "unmatched traffic",
        { Qos.src_addr = "8.8.8.8"; src_port = 9999; dst_addr = "9.9.9.9";
          dst_port = 9999; protocol = 17 },
        weekday );
    ]
  in
  List.iter
    (fun (what, pkt, clock) ->
      let d = Qos.decide engine ~pkt ~clock in
      Fmt.pr "@.%s@.  %s@.  %a@." what (describe pkt) pp_decision d)
    scenarios;

  (* The paper's own composed L3 query (Example 7.1). *)
  Fmt.pr "@.Example 7.1 — the action of the highest-priority policy \
          governing SMTP traffic:@.  %s@."
    Qos.example_7_1_query;
  let q = Qparser.of_string Qos.example_7_1_query in
  let result = Engine.eval_entries engine q in
  List.iter (fun e -> Fmt.pr "  -> %a@." Entry.pp e) result;

  (* Scale it up: a synthetic repository of 500 policies, with a stream of
     random packets. *)
  let big =
    Qos.generate ~params:{ Qos.default_gen with n_policies = 500; n_profiles = 80 } ()
  in
  Fmt.pr "@.Synthetic repository: %d entries, %d violations@."
    (Instance.size big)
    (List.length (Instance.validate big));
  let engine = Engine.create ~block:64 big in
  let rng = Prng.create 7 in
  let decided = ref 0 and denied = ref 0 in
  for _ = 1 to 50 do
    let d =
      Qos.decide engine ~pkt:(Qos.random_packet rng) ~clock:(Qos.random_clock rng)
    in
    if d.Qos.matched_policies <> [] then incr decided;
    if
      List.exists
        (fun a -> Entry.string_values a "DSPermission" = [ "Deny" ])
        d.Qos.actions
    then incr denied
  done;
  Fmt.pr "50 random packets: %d matched a policy, %d denied@." !decided !denied;
  Fmt.pr "engine io for the whole stream: %a@." Io_stats.pp
    (Engine.stats engine)
