(* Query plans: estimated vs measured cost per operator (Explain), and
   the boolean-fusion rewrite (Fuse) that collapses same-base boolean
   subtrees into single scans.

   Run with:  dune exec examples/query_plans.exe *)

open Ndq

let () =
  let dir =
    Dif_gen.generate
      ~params:{ Dif_gen.default_params with size = 5_000; seed = 77; roots = 1 }
      ()
  in
  let eng = Engine.create ~block:64 dir in
  Fmt.pr "directory: %d entries@." (Instance.size dir);

  let q =
    Qparser.of_string
      "(a (& (dc=root0 ? sub ? tag=red) (dc=root0 ? sub ? priority>=5)) (g \
       (dc=root0 ? sub ? objectClass=organizationalUnit) count($$) >= 1))"
  in
  Fmt.pr "@.query:@.%a@." Qprinter.pp_pretty q;

  (* Estimate before running... *)
  Fmt.pr "@.estimated plan (no execution):@.%a@." Explain.pp_node
    (Explain.estimate eng q);

  (* ...then profile: per-operator actual rows and I/O. *)
  Engine.reset_stats eng;
  let result, plan = Explain.profile eng q in
  Fmt.pr "@.profiled plan:@.%a@." Explain.pp_node plan;
  Fmt.pr "result: %d entries, attributed io: %d@." (Ext_list.length result)
    (Explain.total_actual_io plan);

  (* The fusion rewrite: the (& ...) subtree shares base and scope, so it
     becomes one LDAP-style fused scan. *)
  let fq =
    Qparser.of_string
      "(- (& (dc=root0 ? sub ? tag=red) (dc=root0 ? sub ? priority>=5)) \
       (dc=root0 ? sub ? weight<300))"
  in
  Fmt.pr "@.fusable query: %s@." (Qprinter.to_string fq);
  let plan = Fuse.plan_of fq in
  Fmt.pr "fused plan (%d scans instead of %d):@.%a@." (Fuse.scan_count plan)
    (List.length (Ast.atomic_subqueries fq))
    Fuse.pp_plan plan;
  Engine.reset_stats eng;
  let plain = Engine.eval_entries eng fq in
  let io_plain = Io_stats.total_io (Engine.stats eng) in
  Engine.reset_stats eng;
  let fused = Fuse.eval_entries eng fq in
  let io_fused = Io_stats.total_io (Engine.stats eng) in
  Fmt.pr "plain io = %d, fused io = %d, same %d results = %b@." io_plain
    io_fused (List.length plain)
    (List.length plain = List.length fused
    && List.for_all2 Entry.equal_dn plain fused)
