(* Quickstart: build a small network directory, pose queries from each of
   the languages L0 .. L3, and look at the I/O the engine charged.

   Run with:  dune exec examples/quickstart.exe *)

open Ndq

let schema () =
  let s = Schema.empty () in
  Schema.declare_attr s "dc" Value.T_string;
  Schema.declare_attr s "ou" Value.T_string;
  Schema.declare_attr s "uid" Value.T_string;
  Schema.declare_attr s "surName" Value.T_string;
  Schema.declare_attr s "priority" Value.T_int;
  Schema.declare_attr s "manager" Value.T_dn;
  Schema.declare_class s "dcObject" [ "dc" ];
  Schema.declare_class s "organizationalUnit" [ "ou" ];
  Schema.declare_class s "person" [ "uid"; "surName"; "priority"; "manager" ];
  s

let entry d attrs = Entry.make (Dn.of_string d) attrs
let oc c = (Schema.object_class, Value.Str c)

let directory () =
  let person dn uid sur prio manager =
    entry dn
      ([
         ("uid", Value.Str uid);
         ("surName", Value.Str sur);
         ("priority", Value.Int prio);
         oc "person";
       ]
      @ match manager with
        | Some m -> [ ("manager", Value.Dn (Dn.of_string m)) ]
        | None -> [])
  in
  Instance.of_entries (schema ())
    [
      entry "dc=com" [ ("dc", Value.Str "com"); oc "dcObject" ];
      entry "dc=att, dc=com" [ ("dc", Value.Str "att"); oc "dcObject" ];
      entry "dc=research, dc=att, dc=com"
        [ ("dc", Value.Str "research"); oc "dcObject" ];
      entry "ou=people, dc=att, dc=com"
        [ ("ou", Value.Str "people"); oc "organizationalUnit" ];
      entry "ou=people, dc=research, dc=att, dc=com"
        [ ("ou", Value.Str "people"); oc "organizationalUnit" ];
      person "uid=divesh, ou=people, dc=att, dc=com" "divesh" "srivastava" 1 None;
      person "uid=jag, ou=people, dc=research, dc=att, dc=com" "jag" "jagadish" 2
        (Some "uid=divesh, ou=people, dc=att, dc=com");
      person "uid=tova, ou=people, dc=research, dc=att, dc=com" "tova" "milo" 3
        (Some "uid=divesh, ou=people, dc=att, dc=com");
      person "uid=laks, ou=people, dc=att, dc=com" "laks" "lakshmanan" 2
        (Some "uid=jag, ou=people, dc=research, dc=att, dc=com");
    ]

let show engine title query_text =
  let query, entries = Engine.eval_string engine query_text in
  Fmt.pr "@.== %s  [%s]@.   %s@." title
    (Lang.level_to_string (Lang.level query))
    query_text;
  if entries = [] then Fmt.pr "   (no entries)@."
  else
    List.iter (fun e -> Fmt.pr "   -> %a@." Dn.pp (Entry.dn e)) entries;
  Fmt.pr "   io: %a@." Io_stats.pp (Engine.stats engine);
  Engine.reset_stats engine

let () =
  let dir = directory () in
  Fmt.pr "A directory of %d entries, %d violations of Definition 3.2@."
    (Instance.size dir)
    (List.length (Instance.validate dir));
  let engine = Engine.create ~block:4 dir in

  (* L0: atomic queries and boolean combinations with different bases —
     the thing LDAP cannot do in one query (Example 4.1). *)
  show engine "everyone in AT&T" "(dc=att, dc=com ? sub ? objectClass=person)";
  show engine "AT&T people outside Research (Example 4.1)"
    "(- (dc=att, dc=com ? sub ? objectClass=person) (dc=research, dc=att, \
     dc=com ? sub ? objectClass=person))";

  (* L1: hierarchical selection. *)
  show engine "organizational units containing a priority-2 person"
    "(c (dc=com ? sub ? objectClass=organizationalUnit) (dc=com ? sub ? \
     priority=2))";
  show engine "domains with people below them"
    "(a (dc=com ? sub ? objectClass=person) (dc=com ? sub ? \
     objectClass=dcObject))";

  (* L2: aggregate selection. *)
  show engine "units with at least 2 people (structural aggregate)"
    "(c (dc=com ? sub ? objectClass=organizationalUnit) (dc=com ? sub ? \
     objectClass=person) count($2) >= 2)";
  show engine "the highest-priority people (simple aggregate)"
    "(g (dc=com ? sub ? objectClass=person) min(priority) = \
     min(min(priority)))";

  (* L3: embedded references through the dn-valued manager attribute. *)
  show engine "people whose manager is in Research (valueDN)"
    "(vd (dc=com ? sub ? objectClass=person) (dc=research, dc=att, dc=com ? \
     sub ? objectClass=person) manager)";
  show engine "managers, by reference fan-in (DNvalue)"
    "(dv (dc=com ? sub ? objectClass=person) (dc=com ? sub ? \
     objectClass=person) manager count($2) = max(count($2)))";

  (* Closure: results are instances too, so they can be queried again. *)
  let sub_instance =
    Engine.eval_instance engine
      (Qparser.of_string "(dc=att, dc=com ? sub ? objectClass=person)")
  in
  let engine2 = Engine.create ~block:4 sub_instance in
  show engine2 "re-querying a query result (closure property)"
    "(g ( ? sub ? objectClass=person) max(priority) <= 2)"
