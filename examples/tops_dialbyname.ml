(* TOPS dial-by-name (Example 2.2 / Figure 11): resolve a callee's name
   to the call appearances to try, honouring the subscriber's prioritized
   query handling profiles.

   Run with:  dune exec examples/tops_dialbyname.exe *)

open Ndq

let pp_resolution ppf (r : Tops.resolution) =
  match r.Tops.qhp with
  | None -> Fmt.string ppf "no applicable profile: call cannot be completed"
  | Some qhp ->
      Fmt.pf ppf "profile %s; try in order: %s"
        (String.concat "," (Entry.string_values qhp "QHPName"))
        (String.concat " then "
           (List.map
              (fun ca ->
                let num =
                  String.concat "" (Entry.string_values ca "CANumber")
                in
                match Entry.string_values ca "description" with
                | [] -> num
                | d :: _ -> Printf.sprintf "%s (%s)" num d)
              r.Tops.appearances))

let () =
  let dir = Tops.figure_11 () in
  Fmt.pr "Figure 11 directory: %d entries@." (Instance.size dir);
  let engine = Engine.create ~block:8 dir in

  List.iter
    (fun (what, time, day) ->
      let r = Tops.resolve engine ~uid:"jag" ~time ~day in
      Fmt.pr "@.call jag, %s:@.  %a@." what pp_resolution r)
    [
      ("Tuesday 10:30", 1030, 2);
      ("Saturday 10:30", 1030, 6);
      ("Wednesday 23:00", 2300, 3);
    ];

  (* The resolution is a single query in the language: *)
  Fmt.pr "@.The resolution query (L2):@.%a@." Qprinter.pp_pretty
    (Tops.resolution_query ~uid:"jag" ~time:1030 ~day:2 ());

  (* A directory of 2000 subscribers, and a burst of calls against it. *)
  let big =
    Tops.generate
      ~params:{ Tops.default_gen with subscribers = 2_000; qhps_per_subscriber = 4 }
      ()
  in
  Fmt.pr "@.Synthetic directory: %d entries, %d violations@."
    (Instance.size big)
    (List.length (Instance.validate big));
  let engine = Engine.create ~block:64 big in
  let rng = Prng.create 99 in
  let connected = ref 0 in
  let calls = 200 in
  for _ = 1 to calls do
    let uid = Printf.sprintf "user%d" (Prng.int rng 2_000) in
    let r =
      Tops.resolve engine ~uid ~time:(Prng.int rng 2400) ~day:(1 + Prng.int rng 7)
    in
    if r.Tops.qhp <> None then incr connected
  done;
  Fmt.pr "%d/%d calls found an applicable profile@." !connected calls;
  Fmt.pr "engine io for the burst: %a@." Io_stats.pp (Engine.stats engine)
