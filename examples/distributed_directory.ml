(* Distributed directories (Sections 3.3 / 8.3): the namespace is split
   into DNS-style domains, each served by its own server; a coordinator
   ships atomic sub-queries to the owning servers and combines the
   results locally.

   Run with:  dune exec examples/distributed_directory.exe *)

open Ndq

let () =
  (* One forest, three domains: two roots, plus a subdomain delegated out
     of root0 (the deepest level-2 entry, DNS-style). *)
  let dir =
    Dif_gen.generate
      ~params:{ Dif_gen.default_params with size = 3_000; roots = 2; seed = 23 }
      ()
  in
  let delegated =
    Instance.fold
      (fun best e ->
        let d = Entry.dn e in
        if Dn.depth d = 2 && best = None then Some d else best)
      None dir
    |> Option.get
  in
  let domains = [ Dn.of_string "dc=root0"; Dn.of_string "dc=root1"; delegated ] in
  let net = Dist.deploy ~block:32 dir domains in
  Fmt.pr "Deployed %d entries across %d servers:@." (Instance.size dir)
    (List.length net.Dist.servers);
  List.iter
    (fun (s : Dist.server) ->
      Fmt.pr "  %-40s %5d entries@." s.Dist.name (Instance.size s.Dist.instance))
    net.Dist.servers;

  let run title home qtext =
    let coord = Dist.coordinator net home in
    let q = Qparser.of_string qtext in
    let result = Dist.eval_entries coord q in
    Fmt.pr "@.== %s@.   posed at the %s server: %s@." title
      (Dn.to_string home) qtext;
    Fmt.pr "   %d entries; coordinator io: %a@." (List.length result)
      Io_stats.pp coord.Dist.stats
  in

  run "a query local to the home domain" (Dn.of_string "dc=root1")
    "(dc=root1 ? sub ? objectClass=person)";

  run "the same shape, posed at the *other* server (all results shipped)"
    (Dn.of_string "dc=root0") "(dc=root1 ? sub ? objectClass=person)";

  run "a cross-server union" (Dn.of_string "dc=root0")
    "(| (dc=root0 ? sub ? surName=milo) (dc=root1 ? sub ? surName=milo))";

  run "hierarchy operators over shipped operands" (Dn.of_string "dc=root0")
    "(a ( ? sub ? objectClass=person) ( ? sub ? objectClass=organizationalUnit))";

  (* Replication: each domain has a primary and secondaries; updates hit
     the primary, secondaries catch up on replicate, failover promotes
     the most-caught-up secondary (Section 3.3, footnote 4). *)
  let repl = Replicated.deploy ~secondaries:2 dir domains in
  let entry k =
    Entry.make
      (Dn.of_string (Printf.sprintf "id=%d, dc=root0" (700000 + k)))
      [ ("id", Value.Int (700000 + k)); ("surName", Value.Str "replicated");
        (Schema.object_class, Value.Str "person") ]
  in
  List.iter
    (fun k ->
      match Replicated.update repl (Replicated.Add (entry k)) with
      | Ok () -> ()
      | Error e -> Fmt.epr "update rejected: %a@." Directory.pp_error e)
    [ 1; 2; 3 ];
  Fmt.pr "@.== replication@.after 3 updates, max secondary lag = %d@."
    (Replicated.max_lag repl);
  Replicated.replicate repl;
  Fmt.pr "after replicate: lag = %d, consistent = %b, traffic = %d msgs / %d           bytes@."
    (Replicated.max_lag repl) (Replicated.consistent repl)
    repl.Replicated.stats.Io_stats.messages
    repl.Replicated.stats.Io_stats.bytes_shipped;
  let lost = Replicated.fail_primary repl (Dn.of_string "dc=root0") in
  Fmt.pr "primary failover: %d updates lost, group keeps serving@." lost;

  (* Sanity: distributed answers match centralized evaluation. *)
  let coord = Dist.coordinator net (Dn.of_string "dc=root0") in
  let q =
    Qparser.of_string
      "(c ( ? sub ? objectClass=organizationalUnit) ( ? sub ? priority>=5))"
  in
  let distributed = Dist.eval_entries coord q in
  let centralized = Semantics.eval dir q in
  Fmt.pr
    "@.centralized vs distributed on a children query: %d vs %d entries, equal \
     = %b@."
    (List.length centralized) (List.length distributed)
    (List.length centralized = List.length distributed
    && List.for_all2 Entry.equal_dn centralized distributed)
