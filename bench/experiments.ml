(* The experiment harness: one entry per table/figure-level claim of the
   paper (see DESIGN.md section 3 and EXPERIMENTS.md for the mapping).
   Each experiment prints the measured series next to the paper's
   predicted shape. *)

open Util

let sizes_linear = [ 1_000; 2_000; 4_000; 8_000; 16_000; 32_000 ]

(* --- E1: ComputeHSPC is linear (Thm 5.1, Fig 2) -------------------------- *)

let e1 () =
  header ~id:"E1 (Thm 5.1, Fig 2)"
    ~claim:
      "ComputeHSPC: parents/children in O(|L1|/B + |L2|/B) I/Os; \
       io / input-pages should be a flat constant";
  row "%8s %8s %8s %10s %10s %12s %12s@." "N" "|L1|" "|L2|" "io(p)" "io(c)"
    "io(p)/pages" "io(c)/pages";
  List.iter
    (fun n ->
      let stats, pager = fresh_pager () in
      let l1, l2 = even_odd pager (karily ~fanout:4 ~size:n ()) in
      let n1 = Ext_list.length l1 and n2 = Ext_list.length l2 in
      let _, io_p, _ = measure ~size:n stats (fun () -> Hs_pc.parents l1 l2) in
      let _, io_c, _ = measure ~size:n stats (fun () -> Hs_pc.children l1 l2) in
      let inp = pages n1 + pages n2 in
      row "%8d %8d %8d %10d %10d %12.2f %12.2f@." n n1 n2 io_p io_c
        (ratio io_p inp) (ratio io_c inp))
    sizes_linear

(* --- E2: ComputeHSAD is linear (Thm 5.1, Fig 4) --------------------------- *)

let e2 () =
  header ~id:"E2 (Thm 5.1, Fig 4)"
    ~claim:
      "ComputeHSAD: ancestors/descendants linear, on bushy trees and on \
       chains that force stack spills (window = 1 page)";
  row "%8s %8s %10s %10s %12s %14s@." "N" "shape" "io(a)" "io(d)" "io/pages"
    "spill io/pages";
  List.iter
    (fun n ->
      let run shape instance window =
        let stats, pager = fresh_pager () in
        let l1, l2 = even_odd pager instance in
        let inp = pages (Ext_list.length l1) + pages (Ext_list.length l2) in
        let _, io_a, _ = measure ~size:n stats (fun () -> Hs_ad.ancestors ~window l1 l2) in
        let _, io_d, _ = measure ~size:n stats (fun () -> Hs_ad.descendants ~window l1 l2) in
        (shape, io_a, io_d, inp)
      in
      let shape, io_a, io_d, inp = run "bushy" (karily ~fanout:8 ~size:n ()) 2 in
      row "%8d %8s %10d %10d %12.2f %14s@." n shape io_a io_d
        (ratio (io_a + io_d) (2 * inp)) "-";
      (* chains have depth N, so their dn keys are long: keep them small
         enough that key construction stays tractable while still
         forcing thousands of stack spills *)
      if n <= 8_000 then begin
        let shape, io_a, io_d, inp = run "chain" (chain ~size:(n / 2) ()) 1 in
        row "%8d %8s %10d %10d %12s %14.2f@." (n / 2) shape io_a io_d "-"
          (ratio (io_a + io_d) (2 * inp))
      end)
    [ 2_000; 8_000; 32_000 ]

(* --- E3: ComputeHSADc is linear (Thm 5.1, Fig 5) ---------------------------- *)

let e3 () =
  header ~id:"E3 (Thm 5.1, Fig 5)"
    ~claim:
      "ComputeHSADc: path-constrained selection in O((|L1|+|L2|+|L3|)/B)";
  row "%8s %8s %8s %8s %10s %10s %12s@." "N" "|L1|" "|L2|" "|L3|" "io(ac)"
    "io(dc)" "io/pages";
  List.iter
    (fun n ->
      let stats, pager = fresh_pager () in
      let l1, l2, l3 = three_lists pager (karily ~fanout:3 ~size:n ()) in
      let inp =
        pages (Ext_list.length l1) + pages (Ext_list.length l2)
        + pages (Ext_list.length l3)
      in
      let _, io_ac, _ = measure ~size:n stats (fun () -> Hs_adc.ancestors_c l1 l2 l3) in
      let _, io_dc, _ = measure ~size:n stats (fun () -> Hs_adc.descendants_c l1 l2 l3) in
      row "%8d %8d %8d %8d %10d %10d %12.2f@." n (Ext_list.length l1)
        (Ext_list.length l2) (Ext_list.length l3) io_ac io_dc
        (ratio (io_ac + io_dc) (2 * inp)))
    [ 1_000; 4_000; 16_000 ]

(* --- E4: simple aggregate selection in <= 2 scans (Thm 6.1) ------------------ *)

let e4 () =
  header ~id:"E4 (Thm 6.1)"
    ~claim:
      "(g L f): one input scan for entry-only filters, two when the filter \
       has entry-set aggregates; reads/pages(N) <= 2";
  row "%8s %28s %10s %10s %12s@." "N" "filter" "reads" "writes" "reads/pages";
  let filters =
    [
      ("min(priority) <= 3", "min(priority) <= 3");
      ("count($$) >= 10", "count($$) >= 10");
      ("min(p) = min(min(p))", "min(priority) = min(min(priority))");
      ("avg vs sum", "average(priority) <= sum(max(priority))");
    ]
  in
  List.iter
    (fun n ->
      let instance = karily ~fanout:4 ~size:n () in
      List.iter
        (fun (label, filter) ->
          let stats, pager = fresh_pager () in
          let l1 =
            Ext_list.of_list_resident pager (Instance.to_list instance)
          in
          let f = Qparser.parse_agg_filter_text filter in
          Io_stats.reset stats;
          ignore (Simple_agg.compute f l1);
          row "%8d %28s %10d %10d %12.2f@." n label stats.Io_stats.page_reads
            stats.Io_stats.page_writes
            (ratio stats.Io_stats.page_reads (pages n)))
        filters)
    [ 4_000; 16_000 ]

(* --- E5: structural aggregates stay linear (Thm 6.2, Fig 6) ------------------- *)

let e5 () =
  header ~id:"E5 (Thm 6.2, Fig 6)"
    ~claim:
      "ComputeHSAgg: aggregate selection over hierarchy operators keeps the \
       linear bound, including count($2)=max(count($2)) of Fig 6";
  row "%8s %34s %10s %12s@." "N" "aggregate filter" "io" "io/pages";
  let filters =
    [
      "count($2) > 0";
      "count($2) = max(count($2))";
      "min($2.priority) <= 2";
      "sum($2.weight) >= sum($1.weight)";
      "average($2.priority) >= average(average($2.priority))";
    ]
  in
  List.iter
    (fun n ->
      let instance = karily ~fanout:4 ~size:n () in
      List.iter
        (fun filter ->
          let stats, pager = fresh_pager () in
          let l1, l2 = even_odd pager instance in
          let inp = pages (Ext_list.length l1) + pages (Ext_list.length l2) in
          let agg = Qparser.parse_agg_filter_text filter in
          Io_stats.reset stats;
          ignore (Hs_agg.compute_hier Ast.D l1 l2 ~agg);
          row "%8d %34s %10d %12.2f@." n filter (Io_stats.total_io stats)
            (ratio (Io_stats.total_io stats) inp))
        filters)
    [ 4_000; 16_000 ]

(* --- E6: embedded references are O(N/B log N/B) (Thm 7.1, Fig 3) --------------- *)

let e6 () =
  header ~id:"E6 (Thm 7.1, Fig 3)"
    ~claim:
      "ComputeERAggDV/VD: sort-merge reference join in O(|L1|/B + (|L2| m/B) \
       log(|L2| m/B)); io / (pages * log pages) should stay flat as N and \
       the reference fan-out m grow";
  row "%8s %4s %8s %10s %10s %14s@." "N" "m" "pairs" "io(dv)" "io(vd)"
    "io/(p log p)";
  List.iter
    (fun (n, m) ->
      let instance =
        Dif_gen.generate
          ~params:{ Dif_gen.default_params with size = n; seed = 17; ref_fanout = m }
          ()
      in
      let stats, pager = fresh_pager () in
      let all = Ext_list.of_list_resident pager (Instance.to_list instance) in
      let nodes =
        Ext_list.of_list_resident pager
          (Instance.fold
             (fun acc e -> if Entry.has_class e "node" then e :: acc else acc)
             [] instance
          |> List.rev)
      in
      let npairs =
        Ext_list.fold
          (fun acc e -> acc + List.length (Entry.dn_values e "ref"))
          0 nodes
      in
      let _, io_dv, _ = measure ~size:n stats (fun () -> Er.compute_dv all nodes "ref") in
      let _, io_vd, _ = measure ~size:n stats (fun () -> Er.compute_vd nodes all "ref") in
      let p = max 1 (pages (n + npairs)) in
      let logp = max 1 (int_of_float (ceil (log (float_of_int p) /. log 2.))) in
      row "%8d %4d %8d %10d %10d %14.2f@." n m npairs io_dv io_vd
        (ratio (io_dv + io_vd) (2 * p * logp)))
    [ (1_000, 1); (2_000, 1); (4_000, 1); (4_000, 4); (8_000, 4); (8_000, 16) ]

(* --- E7: whole L2 query trees (Thm 8.3) ------------------------------------------ *)

let l2_query =
  "(g (d (dc=kroot ? sub ? tag=even) (& (dc=kroot ? sub ? tag=odd) (dc=kroot \
   ? sub ? priority>=1)) count($2) > 0) min(priority) >= 0)"

let e7 () =
  header ~id:"E7 (Thm 8.3)"
    ~claim:
      "full L2 query trees evaluate with linear I/O and constant memory \
       (max resident pages independent of N)";
  row "%8s %6s %10s %12s %14s@." "N" "|Q|" "io" "io/pages" "max resident";
  let q = Qparser.of_string l2_query in
  List.iter
    (fun n ->
      let instance = karily ~fanout:4 ~size:n () in
      let eng = Engine.create ~mode:!eval_mode ~block ~with_attr_index:false instance in
      Engine.reset_stats eng;
      ignore (Telemetry.with_stats ~size:n (Engine.stats eng) (fun () -> Engine.eval eng q));
      let stats = Engine.stats eng in
      row "%8d %6d %10d %12.2f %14d@." n (Ast.size q) (Io_stats.total_io stats)
        (ratio (Io_stats.total_io stats) (pages n))
        stats.Io_stats.max_resident_pages)
    sizes_linear

(* --- E8: L3 queries are O(N/B log N/B) (Thm 8.4) ----------------------------------- *)

let e8 () =
  header ~id:"E8 (Thm 8.4)"
    ~claim:
      "L3 query trees (embedded references) evaluate in O(N/B log N/B); the \
       normalized column grows like log N, the doubly-normalized one is flat";
  row "%8s %10s %12s %16s@." "N" "io" "io/pages" "io/(p log p)";
  let q =
    "(dv ( ? sub ? objectClass=*) (g (vd ( ? sub ? objectClass=node) ( ? sub \
     ? priority>=5) ref) min(priority) = min(min(priority))) ref)"
  in
  let q = Qparser.of_string q in
  List.iter
    (fun n ->
      let instance =
        Dif_gen.generate
          ~params:{ Dif_gen.default_params with size = n; seed = 29; ref_fanout = 4 }
          ()
      in
      let eng = Engine.create ~mode:!eval_mode ~block ~with_attr_index:false instance in
      Engine.reset_stats eng;
      ignore (Telemetry.with_stats ~size:n (Engine.stats eng) (fun () -> Engine.eval eng q));
      let io = Io_stats.total_io (Engine.stats eng) in
      let p = max 1 (pages n) in
      let logp = max 1. (log (float_of_int p) /. log 2.) in
      row "%8d %10d %12.2f %16.2f@." n io (ratio io p)
        (float_of_int io /. (float_of_int p *. logp)))
    sizes_linear

(* --- E9: crossover vs the naive quadratic baselines ---------------------------------- *)

let e9 () =
  header ~id:"E9 (Sections 5.3, 7.2)"
    ~claim:
      "the stack/merge algorithms vs the 'straightforward way': naive I/O \
       grows quadratically and loses by orders of magnitude well before 10k \
       entries";
  row "%8s %12s %12s %10s %14s %14s@." "N" "io(stack)" "io(naive)" "ratio"
    "t(stack) s" "t(naive) s";
  List.iter
    (fun n ->
      let instance = karily ~fanout:4 ~size:n () in
      let stats, pager = fresh_pager () in
      let l1, l2 = even_odd pager instance in
      let _, io_s, t_s = measure ~size:n stats (fun () -> Hs_ad.descendants l1 l2) in
      let _, io_n, t_n =
        measure ~size:n stats (fun () -> Naive.compute_hier Ast.D l1 l2)
      in
      row "%8d %12d %12d %10.1f %14.4f %14.4f@." n io_s io_n (ratio io_n io_s)
        t_s t_n)
    [ 256; 512; 1_024; 2_048; 4_096; 8_192 ];
  row "@.%s@." "same comparison for the embedded-reference operators:";
  row "%8s %12s %12s %10s@." "N" "io(merge)" "io(naive)" "ratio";
  List.iter
    (fun n ->
      let instance =
        Dif_gen.generate
          ~params:{ Dif_gen.default_params with size = n; seed = 3; ref_fanout = 2 }
          ()
      in
      let stats, pager = fresh_pager () in
      let all = Ext_list.of_list_resident pager (Instance.to_list instance) in
      let _, io_s, _ = measure ~size:n stats (fun () -> Er.compute_dv all all "ref") in
      let _, io_n, _ =
        measure ~size:n stats (fun () -> Naive.compute_eref Ast.Dv all all "ref")
      in
      row "%8d %12d %12d %10.1f@." n io_s io_n (ratio io_n io_s))
    [ 256; 1_024; 4_096 ]

(* --- E10: the expressiveness hierarchy (Thm 8.1) --------------------------------------- *)

let e10 () =
  header ~id:"E10 (Thm 8.1)"
    ~claim:
      "LDAP < L0 < L1 < L2 < L3: each level's witness query runs here; the \
       lower level needs client-side work (LDAP) or cannot express it at all";
  let instance =
    Dif_gen.generate
      ~params:{ Dif_gen.default_params with size = 2_000; seed = 41; roots = 1 }
      ()
  in
  let eng = Engine.create ~mode:!eval_mode ~block instance in
  let witnesses =
    [
      ( "L0 over LDAP (Ex 4.1: two bases + difference)",
        "(- (dc=root0 ? sub ? objectClass=person) (id=1, dc=root0 ? sub ? \
         objectClass=person))" );
      ( "L1 over L0 (Ex 5.1: children)",
        "(c (dc=root0 ? sub ? objectClass=organizationalUnit) (dc=root0 ? sub \
         ? objectClass=person))" );
      ( "L2 over L1 (Ex 6.2: counting witnesses)",
        "(c (dc=root0 ? sub ? objectClass=organizationalUnit) (dc=root0 ? sub \
         ? objectClass=person) count($2) >= 3)" );
      ( "L3 over L2 (Ex 7.1: embedded references)",
        "(dv (dc=root0 ? sub ? objectClass=*) (dc=root0 ? sub ? priority>=8) \
         ref)" );
    ]
  in
  row "%-48s %6s %8s %14s@." "witness query" "level" "result" "single LDAP?";
  List.iter
    (fun (label, text) ->
      let q = Qparser.of_string text in
      let result = Engine.eval_entries eng q in
      row "%-48s %6s %8d %14s@." label
        (Lang.level_to_string (Lang.level q))
        (List.length result)
        (match Ldap.of_l0 q with Some _ -> "yes" | None -> "no"))
    witnesses;
  (* Example 4.1 the LDAP way: two queries + client-side difference. *)
  let sub_count base =
    List.length
      (Ldap.eval instance
         {
           Ldap.base = Dn.of_string base;
           scope = Ast.Sub;
           filter = Ldap.F_atom (Afilter.Str_eq (Schema.object_class, "person"));
         })
  in
  row
    "@.Example 4.1 in LDAP: 2 round trips (%d + %d entries shipped), \
     difference computed client-side; in L0: 1 query.@."
    (sub_count "dc=root0") (sub_count "id=1, dc=root0")

(* --- E11: (ac/dc) can express p/c, at whole-instance cost (Thm 8.2d) --------------------- *)

let e11 () =
  header ~id:"E11 (Thm 8.2d)"
    ~claim:
      "(p Q1 Q2) = (ac Q1 Q2 <entire instance>): the rewriting is correct \
       but its third operand is the whole directory, so its cost scales \
       with the instance, not the operands";
  row "%8s %8s %8s %10s %10s %12s %10s@." "N" "|L1|" "|L2|" "io(p)"
    "io(ac-rw)" "overhead" "equal";
  List.iter
    (fun n ->
      let instance =
        Dif_gen.generate
          ~params:{ Dif_gen.default_params with size = n; seed = 13; roots = 1 }
          ()
      in
      (* selective operands; the rewriting's third operand is the whole
         instance no matter how small the operands are, so we compare
         the operator costs over pre-materialized operand lists *)
      let stats, pager = fresh_pager () in
      let select f =
        Ext_list.of_list_resident pager
          (Instance.fold (fun acc e -> if f e then e :: acc else acc) [] instance
          |> List.rev)
      in
      let l1 = select (fun e -> Entry.string_values e "surName" = [ "milo" ]) in
      let l2 = select (fun e -> Entry.int_values e "priority" = [ 7 ]) in
      let l3 = Instance.to_ext_list pager instance in
      let direct, io_p, _ = measure ~size:n stats (fun () -> Hs_pc.parents l1 l2) in
      let rewritten, io_ac, _ =
        measure ~size:n stats (fun () -> Hs_adc.ancestors_c l1 l2 l3)
      in
      let a = Ext_list.to_list direct and b = Ext_list.to_list rewritten in
      row "%8d %8d %8d %10d %10d %11.1fx %10b@." n (Ext_list.length l1)
        (Ext_list.length l2) io_p io_ac (ratio io_ac io_p)
        (List.length a = List.length b && List.for_all2 Entry.equal_dn a b))
    [ 1_000; 4_000; 16_000 ]

(* --- E12: distributed evaluation (Sec 8.3) -------------------------------------------------- *)

let e12 () =
  header ~id:"E12 (Sec 8.3)"
    ~claim:
      "atomic sub-queries are shipped to the owning servers; only atomic \
       results cross the network, operators run at the coordinator";
  let instance =
    Dif_gen.generate
      ~params:{ Dif_gen.default_params with size = 8_000; roots = 2; seed = 23 }
      ()
  in
  let delegated =
    Instance.fold
      (fun best e ->
        if Dn.depth (Entry.dn e) = 2 && best = None then Some (Entry.dn e)
        else best)
      None instance
    |> Option.get
  in
  let net =
    Dist.deploy ~block instance
      [ Dn.of_string "dc=root0"; Dn.of_string "dc=root1"; delegated ]
  in
  row "%d entries over %d servers@." (Instance.size instance)
    (List.length net.Dist.servers);
  row "%-52s %6s %6s %10s@." "query (posed at dc=root0)" "msgs" "rows" "bytes";
  List.iter
    (fun text ->
      let coord = Dist.coordinator net (Dn.of_string "dc=root0") in
      let result, _ =
        Telemetry.with_stats coord.Dist.stats (fun () ->
            Dist.eval_entries coord (Qparser.of_string text))
      in
      row "%-52s %6d %6d %10d@."
        (if String.length text > 50 then String.sub text 0 49 ^ "…" else text)
        coord.Dist.stats.Io_stats.messages (List.length result)
        coord.Dist.stats.Io_stats.bytes_shipped)
    [
      "(dc=root0 ? sub ? surName=milo)";
      "(dc=root1 ? sub ? surName=milo)";
      "(| (dc=root0 ? sub ? surName=milo) (dc=root1 ? sub ? surName=milo))";
      "(a ( ? sub ? objectClass=person) ( ? sub ? objectClass=organizationalUnit))";
      "(g ( ? sub ? objectClass=person) min(priority) = min(min(priority)))";
    ]

(* --- E13: the QoS application (Ex 2.1, Fig 12) ------------------------------------------------ *)

let e13 () =
  header ~id:"E13 (Ex 2.1 / Fig 12)"
    ~claim:
      "QoS decisions are directory queries: highest-priority matching \
       policies modulo exceptions, then their actions (the Fig 12 scenarios \
       plus a scaled decision workload)";
  let eng = Engine.create ~mode:!eval_mode ~block:8 (Qos.figure_12 ()) in
  let weekend = { Qos.time = 19980704093000; day_of_week = 6 } in
  let weekday = { Qos.time = 19980707093000; day_of_week = 2 } in
  let scenario label pkt clock expect =
    let d = Qos.decide eng ~pkt ~clock in
    let got =
      String.concat ","
        (List.concat_map (fun e -> Entry.string_values e "DSActionName") d.Qos.actions)
    in
    row "%-44s paper: %-10s measured: %-10s %s@." label expect got
      (if got = expect then "OK" else "MISMATCH")
  in
  let pkt ?(src = "204.178.16.5") ?(sport = 4000) ?(dport = 80) () =
    { Qos.src_addr = src; src_port = sport; dst_addr = "135.104.9.9";
      dst_port = dport; protocol = 6 }
  in
  scenario "weekend packet from 204.178.16.*" (pkt ()) weekend "denyAll";
  scenario "same, NNTP: exception fatt overrides" (pkt ~dport:119 ()) weekend
    "permitLow";
  scenario "gold subnet: priority 1 wins" (pkt ~src:"135.104.7.7" ()) weekday
    "permitHigh";
  scenario "weekday SMTP: mail policy" (pkt ~src:"12.9.9.9" ~sport:25 ())
    weekday "permitLow";
  scenario "unmatched traffic: no action"
    (pkt ~src:"8.8.8.8" ~sport:1 ~dport:1 ())
    weekday "";
  row "@.decision workload on synthetic repositories:@.";
  row "%10s %10s %14s %14s@." "policies" "entries" "io/decision" "ms/decision";
  List.iter
    (fun n_policies ->
      let i = Qos.generate ~params:{ Qos.default_gen with n_policies } () in
      let eng = Engine.create ~mode:!eval_mode ~block i in
      let rng = Prng.create 7 in
      let k = 20 in
      Engine.reset_stats eng;
      let t0 = Sys.time () in
      for _ = 1 to k do
        ignore
          (Qos.decide eng ~pkt:(Qos.random_packet rng)
             ~clock:(Qos.random_clock rng))
      done;
      let dt = Sys.time () -. t0 in
      row "%10d %10d %14.1f %14.2f@." n_policies (Instance.size i)
        (float_of_int (Io_stats.total_io (Engine.stats eng)) /. float_of_int k)
        (1000. *. dt /. float_of_int k))
    [ 100; 400; 1_600 ]

(* --- E14: the TOPS application (Ex 2.2, Fig 11) ------------------------------------------------- *)

let e14 () =
  header ~id:"E14 (Ex 2.2 / Fig 11)"
    ~claim:
      "TOPS call resolution = L2 query: highest-priority applicable QHP, \
       then its call appearances (the Fig 11 scenarios plus a scaled call \
       workload)";
  let eng = Engine.create ~mode:!eval_mode ~block:8 (Tops.figure_11 ()) in
  let scenario label time day expect =
    let r = Tops.resolve eng ~uid:"jag" ~time ~day in
    let got =
      match r.Tops.qhp with
      | None -> "(unreachable)"
      | Some q -> String.concat "," (Entry.string_values q "QHPName")
    in
    row "%-34s paper: %-14s measured: %-14s %s@." label expect got
      (if got = expect then "OK" else "MISMATCH")
  in
  scenario "Tuesday 10:30" 1030 2 "workinghours";
  scenario "Saturday 10:30" 1030 6 "weekend";
  scenario "Wednesday 23:00" 2300 3 "(unreachable)";
  row "@.call workload on synthetic directories:@.";
  row "%12s %10s %14s %14s@." "subscribers" "entries" "io/call" "ms/call";
  List.iter
    (fun subscribers ->
      let i = Tops.generate ~params:{ Tops.default_gen with subscribers } () in
      let eng = Engine.create ~mode:!eval_mode ~block i in
      let rng = Prng.create 5 in
      let k = 50 in
      Engine.reset_stats eng;
      let t0 = Sys.time () in
      for _ = 1 to k do
        ignore
          (Tops.resolve eng
             ~uid:(Printf.sprintf "user%d" (Prng.int rng subscribers))
             ~time:(Prng.int rng 2400)
             ~day:(1 + Prng.int rng 7))
      done;
      let dt = Sys.time () -. t0 in
      row "%12d %10d %14.1f %14.2f@." subscribers (Instance.size i)
        (float_of_int (Io_stats.total_io (Engine.stats eng)) /. float_of_int k)
        (1000. *. dt /. float_of_int k))
    [ 200; 800; 3_200 ]

(* --- E15: the sorted-pipeline invariant (Sec 4.2 / 8.2) ------------------------------------------- *)

let e15 () =
  header ~id:"E15 (Sec 4.2 / 8.2)"
    ~claim:
      "every operator consumes and produces reverse-dn-sorted lists, so \
       query trees never re-sort; checked over a corpus of query trees";
  let instance =
    Dif_gen.generate
      ~params:{ Dif_gen.default_params with size = 1_500; seed = 31 }
      ()
  in
  let eng = Engine.create ~mode:!eval_mode ~block instance in
  let queries =
    [
      "(& ( ? sub ? tag=red) ( ? sub ? priority>=3))";
      "(| ( ? sub ? tag=red) ( ? sub ? tag=blue))";
      "(- ( ? sub ? objectClass=node) ( ? sub ? tag=red))";
      "(p ( ? sub ? objectClass=person) ( ? sub ? objectClass=organizationalUnit))";
      "(c ( ? sub ? objectClass=organizationalUnit) ( ? sub ? objectClass=person))";
      "(a ( ? sub ? objectClass=person) ( ? sub ? objectClass=dcObject))";
      "(d ( ? sub ? objectClass=dcObject) ( ? sub ? objectClass=person))";
      "(ac ( ? sub ? objectClass=person) ( ? sub ? objectClass=dcObject) ( ? \
       sub ? objectClass=organizationalUnit))";
      "(dc ( ? sub ? objectClass=dcObject) ( ? sub ? objectClass=person) ( ? \
       sub ? objectClass=organizationalUnit))";
      "(g ( ? sub ? objectClass=person) min(priority) = min(min(priority)))";
      "(c ( ? sub ? objectClass=organizationalUnit) ( ? sub ? \
       objectClass=person) count($2) = max(count($2)))";
      "(vd ( ? sub ? objectClass=node) ( ? sub ? priority>=5) ref)";
      "(dv ( ? sub ? objectClass=*) ( ? sub ? objectClass=node) ref \
       count($2) >= 2)";
      "(a (g (| ( ? sub ? tag=red) ( ? sub ? tag=blue)) count($$) >= 0) (vd ( \
       ? sub ? objectClass=node) ( ? sub ? priority<=2) ref))";
    ]
  in
  let all_sorted = ref true in
  List.iter
    (fun text ->
      let out = Engine.eval eng (Qparser.of_string text) in
      let sorted = Ext_list.is_sorted Entry.compare_rev out in
      if not sorted then all_sorted := false;
      row "  %-74s %s@."
        (if String.length text > 72 then String.sub text 0 71 ^ "…" else text)
        (if sorted then "sorted" else "NOT SORTED"))
    queries;
  row "all outputs sorted: %b@." !all_sorted

(* --- E16 (ablation): stack window size --------------------------------------- *)

let e16 () =
  header ~id:"E16 (ablation: DESIGN.md spill-stack)"
    ~claim:
      "stack window size vs spill traffic: deep chains spill with small \
       windows; once the window covers the deepest path, spills vanish — \
       the bound holds at every setting";
  row "%8s %8s %14s %10s@." "N" "window" "io(descend.)" "spill io";
  let n = 4_000 in
  let instance = chain ~size:n () in
  let run window =
    let stats, pager = fresh_pager () in
    let l1, l2 = even_odd pager instance in
    let _, io, _ = measure ~size:n stats (fun () -> Hs_ad.descendants ~window l1 l2) in
    io
  in
  let unbounded = run 4_096 (* window larger than any chain: no spills *) in
  List.iter
    (fun window ->
      let io = run window in
      row "%8d %8d %14d %10d@." n window io (io - unbounded))
    [ 1; 2; 4; 8; 16; 64; 256 ]

(* --- E17 (ablation): index-assisted vs scan-based atomic queries --------------- *)

let e17 () =
  header ~id:"E17 (ablation: Sec 4.1 indexes)"
    ~claim:
      "atomic queries through the attribute indexes vs full subtree scans: \
       selective filters win big with indexes, unselective ones do not";
  let instance = karily ~fanout:4 ~size:32_000 () in
  let indexed = Engine.create ~mode:!eval_mode ~block ~with_attr_index:true instance in
  let scanning = Engine.create ~mode:!eval_mode ~block ~with_attr_index:false instance in
  row "%-34s %12s %12s %8s@." "filter (sub scope at the root)" "io(index)"
    "io(scan)" "rows";
  List.iter
    (fun text ->
      let q = Qparser.of_string ("(dc=kroot ? sub ? " ^ text ^ ")") in
      Engine.reset_stats indexed;
      let rows = List.length (Engine.eval_entries indexed q) in
      let io_i = Io_stats.total_io (Engine.stats indexed) in
      Engine.reset_stats scanning;
      ignore (Engine.eval_entries scanning q);
      let io_s = Io_stats.total_io (Engine.stats scanning) in
      row "%-34s %12d %12d %8d@." text io_i io_s rows)
    [
      "id=12345";
      "id<100";
      "priority=3";
      "tag=even";
      "weight>=31000";
      "objectClass=*";
    ]

(* --- E18 (ablation): blocking factor ------------------------------------------- *)

let e18 () =
  header ~id:"E18 (ablation: blocking factor B)"
    ~claim:
      "the linear bounds are in pages: quadrupling B divides the I/O by \
       ~4 at fixed N (io * B is constant)";
  row "%8s %8s %12s %12s@." "N" "B" "io(descend.)" "io*B";
  let n = 16_000 in
  let instance = karily ~fanout:4 ~size:n () in
  List.iter
    (fun b ->
      let stats = Io_stats.create () in
      let pager = Pager.create ~block:b stats in
      let l1, l2 = even_odd pager instance in
      let _, io, _ = measure ~size:n stats (fun () -> Hs_ad.descendants l1 l2) in
      row "%8d %8d %12d %12d@." n b io (io * b))
    [ 8; 16; 32; 64; 128; 256 ]

(* --- E19 (ablation): boolean-subtree fusion -------------------------------------- *)

let e19 () =
  header ~id:"E19 (ablation: Thm 8.1 fusion rewrite)"
    ~claim:
      "boolean subtrees over one base+scope collapse into a single fused        scan (the LDAP correspondence): k-leaf trees go from k scans +        merges to 1 scan, with identical results";
  let instance = karily ~fanout:4 ~size:16_000 () in
  let eng = Engine.create ~mode:!eval_mode ~block ~with_attr_index:false instance in
  row "%-52s %6s %6s %10s %10s %8s@." "query" "scans" "fused" "io(plain)"
    "io(fused)" "equal";
  List.iter
    (fun text ->
      let q = Qparser.of_string text in
      let plan = Fuse.plan_of q in
      Engine.reset_stats eng;
      let plain = Engine.eval_entries eng q in
      let io_plain = Io_stats.total_io (Engine.stats eng) in
      Engine.reset_stats eng;
      let fused = Fuse.eval_entries eng q in
      let io_fused = Io_stats.total_io (Engine.stats eng) in
      row "%-52s %6d %6d %10d %10d %8b@."
        (if String.length text > 50 then String.sub text 0 49 ^ "…" else text)
        (List.length (Ast.atomic_subqueries q))
        (Fuse.scan_count plan) io_plain io_fused
        (List.length plain = List.length fused
        && List.for_all2 Entry.equal_dn plain fused))
    [
      "(& (dc=kroot ? sub ? tag=even) (dc=kroot ? sub ? priority>=3))";
      "(- (& (dc=kroot ? sub ? tag=even) (dc=kroot ? sub ? priority>=3)) \
       (dc=kroot ? sub ? weight<8000))";
      "(| (& (dc=kroot ? sub ? tag=even) (dc=kroot ? sub ? priority>=3)) (& \
       (dc=kroot ? sub ? tag=odd) (dc=kroot ? sub ? priority<=1)))";
      "(c (& (dc=kroot ? sub ? tag=even) (dc=kroot ? sub ? priority>=3)) (- \
       (dc=kroot ? sub ? tag=odd) (dc=kroot ? sub ? weight<8000)))";
    ]

(* --- E20 (ablation): buffer pool -------------------------------------------------- *)

let e20 () =
  header ~id:"E20 (ablation: buffer pool)"
    ~claim:
      "an LRU page cache in front of the entry file: a warm decision        workload (100 TOPS calls against the same subscriber pages) drops        far below the cold per-call cost as capacity grows";
  let i = Tops.generate ~params:{ Tops.default_gen with subscribers = 500 } () in
  row "%12s %12s %12s %12s@." "cache pages" "io/call" "hits" "misses";
  List.iter
    (fun cache_pages ->
      let eng = Engine.create ~mode:!eval_mode ~block ~cache_pages ~with_attr_index:false i in
      let rng = Prng.create 5 in
      let calls = 100 in
      Engine.reset_stats eng;
      for _ = 1 to calls do
        ignore
          (Tops.resolve eng
             ~uid:(Printf.sprintf "user%d" (Prng.int rng 500))
             ~time:(Prng.int rng 2400)
             ~day:(1 + Prng.int rng 7))
      done;
      let io = Io_stats.total_io (Engine.stats eng) in
      let hits, misses =
        match Engine.cache eng with
        | Some pool -> (Buffer_pool.hits pool, Buffer_pool.misses pool)
        | None -> (0, 0)
      in
      row "%12d %12.1f %12d %12d@." cache_pages
        (float_of_int io /. float_of_int calls)
        hits misses)
    [ 0; 8; 32; 128; 512 ]

(* --- E21: replication traffic and failover (Sec 3.3) ------------------------------- *)

let e21 () =
  header ~id:"E21 (Sec 3.3, footnote 4)"
    ~claim:
      "primary/secondary replication: traffic is one message per update        per secondary; failover after a replication interval loses exactly        the unreplicated suffix";
  row "%12s %10s %12s %12s %12s@." "secondaries" "updates" "msgs" "bytes"
    "max lag";
  let instance =
    Dif_gen.generate ~params:{ Dif_gen.default_params with size = 2_000; roots = 2 } ()
  in
  let domains = [ Dn.of_string "dc=root0"; Dn.of_string "dc=root1" ] in
  List.iter
    (fun secondaries ->
      let net = Replicated.deploy ~secondaries instance domains in
      let updates = 200 in
      for k = 1 to updates do
        match
          Replicated.update net
            (Replicated.Add
               (Entry.make
                  (Dn.of_string (Printf.sprintf "id=%d, dc=root%d" (800000 + k) (k mod 2)))
                  [
                    ("id", Value.Int (800000 + k));
                    ("priority", Value.Int (k mod 10));
                    (Schema.object_class, Value.Str "person");
                  ]))
        with
        | Ok () -> ()
        | Error e -> Fmt.failwith "update failed: %a" Directory.pp_error e
      done;
      let lag = Replicated.max_lag net in
      Replicated.replicate net;
      row "%12d %10d %12d %12d %12d@." secondaries updates
        net.Replicated.stats.Io_stats.messages
        net.Replicated.stats.Io_stats.bytes_shipped lag)
    [ 0; 1; 2; 4 ];
  (* failover data loss vs replication interval *)
  row "@.failover loss vs replication interval (103 updates to one group):@.";
  row "%20s %12s@." "replicate every" "lost at failover";
  List.iter
    (fun interval ->
      let net = Replicated.deploy ~secondaries:1 instance domains in
      for k = 1 to 103 do
        (match
           Replicated.update net
             (Replicated.Add
                (Entry.make
                   (Dn.of_string (Printf.sprintf "id=%d, dc=root0" (810000 + k)))
                   [
                     ("id", Value.Int (810000 + k));
                     (Schema.object_class, Value.Str "person");
                   ]))
         with
        | Ok () -> ()
        | Error e -> Fmt.failwith "update failed: %a" Directory.pp_error e);
        if k mod interval = 0 then Replicated.replicate net
      done;
      let lost = Replicated.fail_primary net (Dn.of_string "dc=root0") in
      row "%20d %12d@." interval lost)
    [ 1; 10; 50; 100 ]

(* --- E22 (ablation): sort-merge vs grace-hash embedded references ------------------- *)

let e22 () =
  header ~id:"E22 (ablation: Sec 7.2 join strategy)"
    ~claim:
      "the paper's sort-merge reference join vs a grace-hash join: hash        partitioning destroys the canonical order and pays a re-sort, so        sort-merge wins whenever the output must stay sorted";
  row "%8s %4s %12s %12s %12s@." "N" "m" "io(merge)" "io(hash)" "hash/merge";
  List.iter
    (fun (n, m) ->
      let instance =
        Dif_gen.generate
          ~params:{ Dif_gen.default_params with size = n; seed = 17; ref_fanout = m }
          ()
      in
      let stats, pager = fresh_pager () in
      let all = Ext_list.of_list_resident pager (Instance.to_list instance) in
      let _, io_merge, _ = measure ~size:n stats (fun () -> Er.compute_dv all all "ref") in
      let _, io_hash, _ =
        measure ~size:n stats (fun () -> Er_hash.compute_dv all all "ref")
      in
      row "%8d %4d %12d %12d %12.2f@." n m io_merge io_hash
        (ratio io_hash io_merge))
    [ (2_000, 1); (2_000, 4); (8_000, 1); (8_000, 4); (8_000, 16) ]

(* --- E23: the semantic result cache on a repeat-skewed workload --------------- *)

let e23 () =
  header ~id:"E23 (result cache)"
    ~claim:
      "on a repeat-skewed workload with interleaved updates, the semantic \
       result cache cuts page reads >= 2x (and coordinator messages, \
       distributed) without changing any result";
  (* Engine variant: TOPS call resolution, 85% of the traffic aimed at 16
     hot subscribers with small time/day pools (so query texts repeat
     exactly), one directory update every 20 steps. *)
  let subscribers = 400 and steps = 600 in
  let instance =
    Tops.generate
      ~params:
        {
          Tops.seed = 31;
          subscribers;
          qhps_per_subscriber = 3;
          appearances_per_qhp = 2;
        }
      ()
  in
  let rng = Prng.create 97 in
  let times = [| 900; 1130; 1415 |] and days = [| 2; 6 |] in
  let ops =
    List.init steps (fun i ->
        if i mod 20 = 19 then
          `Update
            ( Printf.sprintf "user%d" (Prng.int rng subscribers),
              Prng.int rng 3,
              1 + Prng.int rng 5 )
        else
          let uid =
            Printf.sprintf "user%d"
              (Prng.int rng (if Prng.flip rng 0.85 then 16 else subscribers))
          in
          `Query
            ( uid,
              times.(Prng.int rng (Array.length times)),
              days.(Prng.int rng (Array.length days)) ))
  in
  let replay result_cache =
    let d = Directory.create instance in
    Option.iter (fun c -> Cache.attach c d) result_cache;
    let stats = Io_stats.create () in
    (* One stats handle across engine rebuilds, so reads accumulate over
       the whole stream (index construction is never charged). *)
    let eng = ref None and eng_gen = ref (-1) in
    let engine () =
      if !eng_gen <> Directory.generation d then begin
        eng :=
          Some
            (Engine.create ~mode:!eval_mode ~block ~with_attr_index:false ?result_cache ~stats
               (Directory.instance d));
        eng_gen := Directory.generation d
      end;
      Option.get !eng
    in
    let rows = ref [] in
    ignore
      (Telemetry.with_stats ~size:steps stats (fun () ->
           List.iter
             (fun op ->
               match op with
               | `Query (uid, time, day) ->
                   let q = Tops.resolution_query ~uid ~time ~day () in
                   rows := Ext_list.length (Engine.eval (engine ()) q) :: !rows
               | `Update (uid, j, p) ->
                   let dn =
                     Dn.of_string
                       (Printf.sprintf "QHPName=qhp%d, %s" j
                          (Tops.subscriber_dn uid))
                   in
                   (match
                      Directory.modify d dn
                        [ Directory.Replace ("priority", [ Value.Int p ]) ]
                    with
                   | Ok () -> ()
                   | Error e ->
                       Fmt.failwith "E23 update: %a" Directory.pp_error e))
             ops));
    (stats, List.rev !rows)
  in
  let off, off_rows = replay None in
  let cache = Cache.create ~admit_min_io:1 () in
  let on, on_rows = replay (Some cache) in
  if off_rows <> on_rows then failwith "E23: cached results differ from uncached";
  let cs = Cache.stats cache in
  row "engine: %d TOPS resolutions + %d updates over %d entries@."
    (List.length off_rows)
    (steps - List.length off_rows)
    (Instance.size instance);
  row "%12s %10s %10s %12s %10s@." "" "reads" "writes" "reduction" "hit rate";
  row "%12s %10d %10d %12s %10s@." "cache off" off.Io_stats.page_reads
    off.Io_stats.page_writes "-" "-";
  row "%12s %10d %10d %11.1fx %9.0f%%  (target >= 2x)@." "cache on"
    on.Io_stats.page_reads on.Io_stats.page_writes
    (ratio off.Io_stats.page_reads (max 1 on.Io_stats.page_reads))
    (100. *. Cache.hit_rate cs);
  (* Distributed variant: the coordinator's shipped-result cache on a
     repeat-skewed query pool, with periodic remote-write notices. *)
  let dinst =
    Dif_gen.generate
      ~params:{ Dif_gen.default_params with size = 6_000; roots = 2; seed = 23 }
      ()
  in
  let net =
    Dist.deploy ~block dinst [ Dn.of_string "dc=root0"; Dn.of_string "dc=root1" ]
  in
  let pool =
    Array.map Qparser.of_string
      [|
        "(dc=root1 ? sub ? surName=milo)";
        "(dc=root1 ? sub ? priority>=5)";
        "(| (dc=root0 ? sub ? surName=smith) (dc=root1 ? sub ? surName=smith))";
        "(dc=root1 ? sub ? weight>=3)";
        "(dc=root0 ? sub ? surName=milo)";
        "(dc=root0 ? sub ? priority>=5)";
        "(dc=root1 ? sub ? tag=gr*)";
        "(dc=root1 ? sub ? id<500)";
        "(dc=root0 ? sub ? objectClass=person)";
        "(dc=root1 ? sub ? objectClass=organizationalUnit)";
      |]
  in
  let drng = Prng.create 53 in
  let dops =
    List.init 300 (fun i ->
        if i mod 25 = 24 then `Notice (Prng.int drng 2)
        else if Prng.flip drng 0.85 then `Pick (Prng.int drng 4)
        else `Pick (Prng.int drng (Array.length pool)))
  in
  let dreplay result_cache =
    let coord =
      Dist.coordinator ?result_cache net (Dn.of_string "dc=root0")
    in
    let rows = ref [] in
    ignore
      (Telemetry.with_stats ~size:300 coord.Dist.stats (fun () ->
           List.iter
             (fun op ->
               match op with
               | `Pick i ->
                   rows :=
                     List.length (Dist.eval_entries coord pool.(i)) :: !rows
               | `Notice r ->
                   Dist.note_update ~subtree:true coord
                     (Dn.of_string (Printf.sprintf "dc=root%d" r)))
             dops));
    (coord.Dist.stats, List.rev !rows)
  in
  let doff, doff_rows = dreplay None in
  let dcache = Cache.create () in
  let don, don_rows = dreplay (Some dcache) in
  if doff_rows <> don_rows then
    failwith "E23: distributed cached results differ from uncached";
  let ds = Cache.stats dcache in
  row "@.distributed: %d queries + %d write notices, 2 servers, %d entries@."
    (List.length doff_rows)
    (300 - List.length doff_rows)
    (Instance.size dinst);
  row "%12s %10s %12s %12s %10s@." "" "msgs" "bytes" "saved msgs" "hit rate";
  row "%12s %10d %12d %12s %10s@." "cache off" doff.Io_stats.messages
    doff.Io_stats.bytes_shipped "-" "-";
  row "%12s %10d %12d %12d %9.0f%%@." "cache on" don.Io_stats.messages
    don.Io_stats.bytes_shipped
    (doff.Io_stats.messages - don.Io_stats.messages)
    (100. *. Cache.hit_rate ds);
  (* Structured stats for the CI artifact. *)
  let out = open_out "BENCH_cache_stats.json" in
  Printf.fprintf out
    "{\n\
    \  \"engine\": {\"hits\": %d, \"misses\": %d, \"stale\": %d, \"evictions\": \
     %d, \"rejects\": %d,\n\
    \    \"hit_rate\": %.3f, \"reads_off\": %d, \"reads_on\": %d, \
     \"read_reduction\": %.2f},\n\
    \  \"dist\": {\"hits\": %d, \"misses\": %d, \"stale\": %d,\n\
    \    \"hit_rate\": %.3f, \"messages_off\": %d, \"messages_on\": %d, \
     \"bytes_off\": %d, \"bytes_on\": %d}\n\
     }\n"
    cs.Cache.hits cs.Cache.misses cs.Cache.stale cs.Cache.evictions
    cs.Cache.rejects (Cache.hit_rate cs) off.Io_stats.page_reads
    on.Io_stats.page_reads
    (ratio off.Io_stats.page_reads (max 1 on.Io_stats.page_reads))
    ds.Cache.hits ds.Cache.misses ds.Cache.stale (Cache.hit_rate ds)
    doff.Io_stats.messages don.Io_stats.messages doff.Io_stats.bytes_shipped
    don.Io_stats.bytes_shipped;
  close_out out;
  row "wrote cache stats to BENCH_cache_stats.json@.";
  (* One stitched distributed trace for the CI artifact: trace the
     cross-root OR query (it involves both servers), so the exported
     Chrome trace shows the coordinator's merge spans and each server's
     engine spans in their own lanes, all under one trace id. *)
  let tracing_was = Trace.enabled () in
  Trace.set_enabled true;
  let coord = Dist.coordinator net (Dn.of_string "dc=root0") in
  ignore (Dist.eval_entries coord pool.(2));
  Trace.set_enabled tracing_was;
  (match Trace.last () with
  | Some span ->
      let out = open_out "BENCH_dist_trace.json" in
      output_string out (Chrome_trace.to_string [ span ]);
      output_char out '\n';
      close_out out;
      row "wrote a stitched 2-server trace to BENCH_dist_trace.json@."
  | None -> row "no trace captured for BENCH_dist_trace.json@.")

(* --- E25: streaming vs materialized operator boundaries (Thm 8.3) ------------ *)

let e25 () =
  header ~id:"E25 (Thm 8.3, streaming)"
    ~claim:
      "the fused pipeline cuts page writes >= 1.5x on full L2 query trees \
       with identical results, and max resident pages stay constant in N";
  let q = Qparser.of_string l2_query in
  (* E7's sweep, run once per mode on the same instance.  Telemetry rows
     (and hence the perf baseline) record the streaming side; the
     materialized side is measured with plain counters. *)
  let run_tree mode ~record ~size instance q =
    let eng = Engine.create ~mode ~block ~with_attr_index:false instance in
    Engine.reset_stats eng;
    let out =
      if record then (
        let r = ref [] in
        ignore
          (Telemetry.with_stats ~size (Engine.stats eng) (fun () ->
               r := Engine.eval_entries eng q));
        !r)
      else Engine.eval_entries eng q
    in
    (List.map Entry.key out, Engine.stats eng)
  in
  row "%8s %10s %10s %8s %7s %12s %12s@." "N" "writes(m)" "writes(s)" "saved"
    "ratio" "resident(m)" "resident(s)";
  let sweep =
    List.map
      (fun n ->
        let instance = karily ~fanout:4 ~size:n () in
        let mkeys, m = run_tree Engine.Materialized ~record:false ~size:n instance q in
        let skeys, s = run_tree Engine.Streaming ~record:true ~size:n instance q in
        if mkeys <> skeys then
          failwith "E25: streaming results differ from materialized";
        let mw = m.Io_stats.page_writes and sw = s.Io_stats.page_writes in
        row "%8d %10d %10d %8d %6.2fx %12d %12d@." n mw sw (mw - sw)
          (ratio mw (max 1 sw))
          m.Io_stats.max_resident_pages s.Io_stats.max_resident_pages;
        (n, mw, sw, m.Io_stats.max_resident_pages, s.Io_stats.max_resident_pages))
      sizes_linear
  in
  (* TOPS decision workload: repeated call resolutions, each mode. *)
  let tops_instance =
    Tops.generate
      ~params:
        {
          Tops.seed = 31;
          subscribers = 200;
          qhps_per_subscriber = 3;
          appearances_per_qhp = 2;
        }
      ()
  in
  let rng = Prng.create 41 in
  let times = [| 900; 1130; 1415 |] and days = [| 2; 6 |] in
  let queries =
    List.init 200 (fun _ ->
        Tops.resolution_query
          ~uid:(Printf.sprintf "user%d" (Prng.int rng 200))
          ~time:times.(Prng.int rng (Array.length times))
          ~day:days.(Prng.int rng (Array.length days))
          ())
  in
  let run_tops mode record =
    let eng = Engine.create ~mode ~block ~with_attr_index:false tops_instance in
    Engine.reset_stats eng;
    let rows = ref [] in
    let go () =
      List.iter
        (fun q -> rows := Ext_list.length (Engine.eval eng q) :: !rows)
        queries
    in
    if record then
      ignore
        (Telemetry.with_stats ~size:(List.length queries) (Engine.stats eng) go)
    else go ();
    (List.rev !rows, Engine.stats eng)
  in
  let trows_m, tm = run_tops Engine.Materialized false in
  let trows_s, ts = run_tops Engine.Streaming true in
  if trows_m <> trows_s then
    failwith "E25: TOPS streaming results differ from materialized";
  row "@.TOPS decision workload: %d resolutions over %d entries@."
    (List.length queries)
    (Instance.size tops_instance);
  row "%14s %10s %10s %8s %7s@." "" "writes(m)" "writes(s)" "saved" "ratio";
  row "%14s %10d %10d %8d %6.2fx  (target >= 1.5x)@." "tops"
    tm.Io_stats.page_writes ts.Io_stats.page_writes
    (tm.Io_stats.page_writes - ts.Io_stats.page_writes)
    (ratio tm.Io_stats.page_writes (max 1 ts.Io_stats.page_writes));
  (* Structured stats for the CI artifact and the pages_written gate. *)
  let out = open_out "BENCH_stream_stats.json" in
  Printf.fprintf out "{\n  \"l2_sweep\": [\n";
  List.iteri
    (fun i (n, mw, sw, mres, sres) ->
      Printf.fprintf out
        "    {\"n\": %d, \"mat_writes\": %d, \"stream_writes\": %d, \
         \"saved\": %d, \"ratio\": %.3f, \"mat_max_resident\": %d, \
         \"stream_max_resident\": %d}%s\n"
        n mw sw (mw - sw)
        (ratio mw (max 1 sw))
        mres sres
        (if i = List.length sweep - 1 then "" else ","))
    sweep;
  Printf.fprintf out
    "  ],\n\
    \  \"tops\": {\"queries\": %d, \"mat_writes\": %d, \"stream_writes\": %d, \
     \"saved\": %d, \"ratio\": %.3f}\n\
     }\n"
    (List.length queries) tm.Io_stats.page_writes ts.Io_stats.page_writes
    (tm.Io_stats.page_writes - ts.Io_stats.page_writes)
    (ratio tm.Io_stats.page_writes (max 1 ts.Io_stats.page_writes));
  close_out out;
  row "wrote streaming stats to BENCH_stream_stats.json@."

(* --- E26: plan-quality observatory (estimate vs actual) -------------------------- *)

let e26 () =
  header ~id:"E26 (plan quality)"
    ~claim:
      "the planner's cardinality estimates stay within a small q-error band \
       on L2 trees and the TOPS decision workload, and a workload shift \
       trips the drift detector";
  (* Private stores, subscribed to the journal only for the duration of
     each phase, so the summaries cover exactly these queries.  No
     Telemetry rows: this experiment measures estimation quality, not
     time or I/O. *)
  let journaled = Qlog.enabled () in
  if not journaled then
    row "(journal disabled: no events will flow; run via bench/main)@.";
  let q = Qparser.of_string l2_query in
  let ps_l2 = Planstats.create () in
  Planstats.attach ps_l2;
  Fun.protect
    ~finally:(fun () -> Planstats.detach ps_l2)
    (fun () ->
      List.iter
        (fun n ->
          let instance = karily ~fanout:4 ~size:n () in
          let eng =
            Engine.create ~mode:!eval_mode ~block ~with_attr_index:false instance
          in
          ignore (Engine.eval_entries eng q))
        sizes_linear);
  row "L2 sweep (%d journaled queries):@." (Planstats.events ps_l2);
  row "%a" Planstats.pp_summary ps_l2;
  (* The TOPS workload, judged against the L2 sweep's calibration: a
     genuinely different workload should trip the drift detector. *)
  let tops_instance =
    Tops.generate
      ~params:
        {
          Tops.seed = 31;
          subscribers = 200;
          qhps_per_subscriber = 3;
          appearances_per_qhp = 2;
        }
      ()
  in
  let rng = Prng.create 41 in
  let times = [| 900; 1130; 1415 |] and days = [| 2; 6 |] in
  let queries =
    List.init 200 (fun _ ->
        Tops.resolution_query
          ~uid:(Printf.sprintf "user%d" (Prng.int rng 200))
          ~time:times.(Prng.int rng (Array.length times))
          ~day:days.(Prng.int rng (Array.length days))
          ())
  in
  let ps_tops = Planstats.create () in
  Planstats.set_baseline ps_tops ps_l2;
  Planstats.attach ps_tops;
  Fun.protect
    ~finally:(fun () -> Planstats.detach ps_tops)
    (fun () ->
      let eng =
        Engine.create ~mode:!eval_mode ~block ~with_attr_index:false
          tops_instance
      in
      List.iter (fun q -> ignore (Engine.eval_entries eng q)) queries);
  row "@.TOPS decision workload (%d journaled resolutions):@."
    (Planstats.events ps_tops);
  row "%a" Planstats.pp_summary ps_tops;
  row "%a" Planstats.pp_drift ps_tops

(* --- E27: alert lifecycle (operational health) ---------------------------- *)

let e27 () =
  header ~id:"E27 (alert lifecycle)"
    ~claim:
      "turning the result cache off under a repeat-skewed workload drives \
       the read-amplification alert inactive -> pending -> firing, and \
       turning it back on resolves it";
  (* The TOPS repeat workload of E23, queries only: 16 hot subscribers,
     small time/day pools, so with the cache on almost every resolution
     is a hit (near-zero page reads per query) and with it off every one
     pays the full index walk. *)
  let subscribers = 400 and burst_len = 120 in
  let instance =
    Tops.generate
      ~params:
        {
          Tops.seed = 31;
          subscribers;
          qhps_per_subscriber = 3;
          appearances_per_qhp = 2;
        }
      ()
  in
  let rng = Prng.create 97 in
  let times = [| 900; 1130; 1415 |] and days = [| 2; 6 |] in
  let pick () =
    Tops.resolution_query
      ~uid:(Printf.sprintf "user%d" (Prng.int rng 16))
      ~time:times.(Prng.int rng (Array.length times))
      ~day:days.(Prng.int rng (Array.length days))
      ()
  in
  let d = Directory.create instance in
  let cache = Cache.create ~admit_min_io:1 () in
  Cache.attach cache d;
  let stats = Io_stats.create () in
  let mk result_cache =
    Engine.create ~mode:!eval_mode ~block ~with_attr_index:false ?result_cache
      ~stats (Directory.instance d)
  in
  let cached = mk (Some cache) and uncached = mk None in
  (* Reads/query of each regime, measured on this instance so the alert
     threshold splits them instead of hard-coding today's constants.
     The warm-up burst also fills the cache. *)
  let rpq eng =
    let r0 = stats.Io_stats.page_reads in
    for _ = 1 to burst_len do
      ignore (Engine.eval eng (pick ()))
    done;
    float_of_int (stats.Io_stats.page_reads - r0) /. float_of_int burst_len
  in
  ignore (rpq cached) (* warm up *);
  let warm = rpq cached and cold = rpq uncached in
  let threshold = Float.max 0.5 ((warm +. cold) /. 2.) in
  (* A private evaluator over the default registry: its ALERTS series
     land in the same exposition a collector scrapes, but its ticks and
     aggressive thresholds stay out of the harness-wide evaluator. *)
  let a = Alerts.create () in
  ignore
    (Alerts.add ~severity:"critical" a ~name:"e27-read-amplification"
       (Printf.sprintf
          "rate(engine_page_reads_total) / rate(engine_queries_total) > %g \
           for 2"
          threshold));
  ignore
    (Alerts.add a ~name:"e27-latency-p99" "engine_query_ns p99 > 250ms for 2");
  let timeline = ref [] in
  let phase_tick name eng =
    Option.iter (fun e -> for _ = 1 to burst_len do
        ignore (Engine.eval e (pick ()))
      done) eng;
    Alerts.tick a;
    let st =
      Option.value ~default:Alerts.Inactive
        (Alerts.state a "e27-read-amplification")
    and v =
      Option.value ~default:0. (Alerts.last_value a "e27-read-amplification")
    in
    timeline :=
      (Alerts.ticks a, name, v, Alerts.state_name st) :: !timeline;
    row "%6s tick %d: reads/query %8.2f  -> %s@." name (Alerts.ticks a) v
      (Alerts.state_name st)
  in
  ignore
    (Telemetry.with_stats ~size:burst_len stats (fun () ->
         phase_tick "baseline" None;
         (* healthy: cache on, amplification below threshold *)
         phase_tick "healthy" (Some cached);
         phase_tick "healthy" (Some cached);
         (* induce: cache off -> pending, then firing (for 2) *)
         phase_tick "induce" (Some uncached);
         phase_tick "induce" (Some uncached);
         phase_tick "induce" (Some uncached);
         (* recover: cache back on -> one quiet tick resolves *)
         phase_tick "recover" (Some cached)));
  let reached s =
    List.exists
      (fun tr ->
        tr.Alerts.tr_rule = "e27-read-amplification" && tr.Alerts.tr_to = s)
      (Alerts.history a)
  in
  let fired = reached "firing" and resolved = reached "resolved" in
  let ended_inactive =
    Alerts.state a "e27-read-amplification" = Some Alerts.Inactive
  in
  row "threshold %.2f reads/query (warm %.2f, cold %.2f)@." threshold warm
    cold;
  row "lifecycle: fired %b, resolved %b, ended inactive %b@." fired resolved
    ended_inactive;
  let doc =
    Json.Obj
      [
        ("threshold", Json.Num threshold);
        ("warm_reads_per_query", Json.Num warm);
        ("cold_reads_per_query", Json.Num cold);
        ( "timeline",
          Json.Arr
            (List.rev_map
               (fun (t, name, v, st) ->
                 Json.Obj
                   [
                     ("tick", Json.Num (float_of_int t));
                     ("phase", Json.Str name);
                     ("value", Json.Num v);
                     ("state", Json.Str st);
                   ])
               !timeline) );
        ( "lifecycle",
          Json.Obj
            [
              ("reached_firing", Json.Bool fired);
              ("resolved", Json.Bool resolved);
              ("ended_inactive", Json.Bool ended_inactive);
            ] );
        ("alerts", Alerts.to_json a);
      ]
  in
  let out = open_out "BENCH_alerts.json" in
  output_string out (Json.to_string doc);
  output_char out '\n';
  close_out out;
  row "wrote the alert lifecycle to BENCH_alerts.json@.";
  (* Zero the e27 ALERTS gauges so the run-wide exposition ends clean. *)
  Alerts.clear a;
  if not (fired && resolved && ended_inactive) then
    failwith "E27: alert lifecycle did not reach firing and resolve"

(* --- E30: cost-based access-path selection (selectivity sweep) ------------ *)

type e30_point = {
  p_label : string;
  p_workload : string;
  p_scan : int;  (* page reads under the forced subtree-scan path *)
  p_index : int;  (* page reads under the forced index path *)
  p_auto : int;  (* page reads, cost-based planner, uncalibrated *)
  p_calib : int;  (* page reads, cost-based planner + journal calibration *)
  p_auto_path : string;
  p_calib_path : string;
}

let e30 () =
  header ~id:"E30 (cost-based planner)"
    ~claim:
      "access-path selection rides the attribute index at high \
       selectivity, flips to the subtree scan past the crossover, and \
       never loses to either forced path; journal calibration repairs \
       the mispriced suffix-trie collection and flips a substring \
       regime back to the index";
  let journaled = Qlog.enabled () in
  if not journaled then
    row "(journal disabled: calibration gates skipped; run via bench/main)@.";
  let n = 16_000 in
  (* Two workloads.  The id-range sweep over a balanced tree walks the
     index<->scan crossover with a well-priced B-tree path: the planner
     should track min(scan, index) across the whole sweep without help.
     The substring probe over generated names is mispriced by design —
     the estimator's collection proxy charges one read per candidate,
     the suffix trie really charges one per trie node — so only the
     journal's learned reads bias can flip it back to the index. *)
  let ktree = karily ~fanout:4 ~size:n () in
  let names = Dif_gen.generate ~params:{ Dif_gen.default_params with size = n } () in
  let mk instance planner =
    let stats = Io_stats.create () in
    (stats, Engine.create ~mode:!eval_mode ~block ~stats ~planner instance)
  in
  let rig instance =
    (mk instance Engine.Force_scan, mk instance Engine.Force_index,
     mk instance Engine.Auto, mk instance Engine.Auto)
  in
  let rig_tree = rig ktree and rig_names = rig names in
  let points =
    List.map
      (fun k ->
        ( rig_tree,
          Qparser.of_string (Printf.sprintf "( ? sub ? id<%d )" k),
          Printf.sprintf "id<%d" k,
          "int-range" ))
      [ 16; 64; 256; 1024; 4096; n ]
    @ [
        ( rig_names,
          Qparser.of_string "( ? sub ? name=*ilo* )",
          "name=*ilo*",
          "substring" );
      ]
  in
  (* One evaluation: page reads charged to this engine's stats, plus
     which access path the planner took (the path counters move once
     per sub-scope atomic). *)
  let run (stats, eng) q =
    let i0, s0, c0 = Engine.path_counts eng in
    stats.Io_stats.page_reads <- 0;
    ignore (Engine.eval_entries eng q);
    let i1, s1, c1 = Engine.path_counts eng in
    let path =
      if i1 > i0 then "index"
      else if c1 > c0 then "cache"
      else if s1 > s0 then "scan"
      else "-"
    in
    (stats.Io_stats.page_reads, path)
  in
  (* Calibration: a private store subscribed to the journal while both
     forced paths run the full sweep a few times, so every (class x
     selectivity-bucket) cell clears the bias support threshold; the
     calibrated engines then consult the frozen store. *)
  let store = Planstats.create () in
  Planstats.attach store;
  Fun.protect
    ~finally:(fun () -> Planstats.detach store)
    (fun () ->
      for _ = 1 to 5 do
        List.iter
          (fun ((scan, index, _, _), q, _, _) ->
            ignore (run scan q);
            ignore (run index q))
          points
      done);
  List.iter
    (fun ((_, _, _, (_, calib)), _, _, _) ->
      Engine.set_calibration calib (Some store))
    points;
  row "%-12s %-10s %8s %8s %8s %8s  %-6s %-6s@." "filter" "workload" "scan"
    "index" "auto" "calib" "auto" "calib";
  let results =
    List.map
      (fun ((scan, index, auto, calib), q, label, workload) ->
        let p_scan, _ = run scan q in
        let p_index, _ = run index q in
        let p_auto, p_auto_path = run auto q in
        let p_calib, p_calib_path = run calib q in
        row "%-12s %-10s %8d %8d %8d %8d  %-6s %-6s@." label workload p_scan
          p_index p_auto p_calib p_auto_path p_calib_path;
        { p_label = label; p_workload = workload; p_scan; p_index; p_auto;
          p_calib; p_auto_path; p_calib_path })
      points
  in
  let doc =
    Json.Obj
      [
        ("n", Json.Num (float_of_int n));
        ("block", Json.Num (float_of_int block));
        ("calibrated", Json.Bool journaled);
        ( "sweep",
          Json.Arr
            (List.map
               (fun p ->
                 Json.Obj
                   [
                     ("filter", Json.Str p.p_label);
                     ("workload", Json.Str p.p_workload);
                     ("scan_reads", Json.Num (float_of_int p.p_scan));
                     ("index_reads", Json.Num (float_of_int p.p_index));
                     ("auto_reads", Json.Num (float_of_int p.p_auto));
                     ("calib_reads", Json.Num (float_of_int p.p_calib));
                     ("auto_path", Json.Str p.p_auto_path);
                     ("calib_path", Json.Str p.p_calib_path);
                   ])
               results) );
      ]
  in
  let out = open_out "BENCH_planner.json" in
  output_string out (Json.to_string doc);
  output_char out '\n';
  close_out out;
  row "wrote the sweep to BENCH_planner.json@.";
  let find label = List.find (fun p -> p.p_label = label) results in
  (* Structural gates, calibration-free: never lose to the naive
     always-scan engine, and the crossover must be visible. *)
  List.iter
    (fun p ->
      if p.p_auto > p.p_scan + 2 then
        failwith
          (Printf.sprintf "E30: auto (%d reads) lost to always-scan (%d) at %s"
             p.p_auto p.p_scan p.p_label))
    results;
  if (find "id<16").p_auto_path <> "index" then
    failwith "E30: high-selectivity point did not ride the index";
  let lo = find (Printf.sprintf "id<%d" n) in
  if lo.p_auto_path <> "scan" then
    failwith "E30: unselective point did not flip to the scan";
  if journaled then begin
    List.iter
      (fun p ->
        if p.p_calib > p.p_index + 2 then
          failwith
            (Printf.sprintf
               "E30: calibrated (%d reads) worse than always-index (%d) at %s"
               p.p_calib p.p_index p.p_label);
        if p.p_calib > p.p_scan + 2 then
          failwith
            (Printf.sprintf
               "E30: calibrated (%d reads) worse than always-scan (%d) at %s"
               p.p_calib p.p_scan p.p_label))
      results;
    if lo.p_index < 2 * lo.p_calib then
      failwith
        (Printf.sprintf
           "E30: always-index (%d) not >=2x calibrated (%d) at the \
            unselective end" lo.p_index lo.p_calib);
    let sub = find "name=*ilo*" in
    if not (2 * sub.p_calib <= sub.p_auto && sub.p_calib_path = "index") then
      failwith
        (Printf.sprintf
           "E30: calibration did not flip the substring regime (auto %d, \
            calib %d via %s)" sub.p_auto sub.p_calib sub.p_calib_path)
  end

let all : (string * (unit -> unit)) list =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16);
    ("e17", e17); ("e18", e18); ("e19", e19); ("e20", e20); ("e21", e21);
    ("e22", e22); ("e23", e23); ("e25", e25); ("e26", e26); ("e27", e27);
    ("e30", e30);
  ]
