(* The open-loop load generator for the serving front-end (E28).

     dune exec bench/loadgen.exe -- [options]

   Options:
     --rate R        arrivals per second                (default 200)
     --duration S    seconds of load                    (default 5)
     --clients N     persistent line-protocol conns     (default 8)
     --port P        attach to a running server (else one is spawned
                     in-process over a fresh synthetic instance)
     --workers N     spawned server's worker pool       (default 4)
     --queue N       spawned server's admission queue   (default 64)
     --deadline MS   spawned server's request budget    (default 5000)
     --seed K        instance + query-mix seed          (default 7)
     --size N        synthetic instance size            (default 2000)
     --label L       run label in the output            (default "load")
     --out FILE      output document                    (default BENCH_load.json)
     --append        add this run to FILE's runs instead of rewriting
     --tsdb FILE     record a 0.25s-resolution flight-recorder series
                     during the run and save it to FILE; the run output
                     gains a "tsdb" sub-object (p99 series, resident
                     page band, tail-sampling counts, exemplar join)
     --tail-threshold MS   tail-retention slow threshold (default 50)

   Open loop: arrival k is *scheduled* at t0 + k/R regardless of how
   the server is doing, and its latency is measured from that
   scheduled instant to completion — a stalled server accrues the wait
   (no coordinated omission).  Arrivals are dealt round-robin to the
   client connections; each connection pipelines strictly, so a slow
   response delays that connection's later arrivals and the measured
   latency absorbs the delay, as it should.

   The run reports sustained QPS (completions over the measured span),
   exact p50/p95/p99/max latencies over completed requests, counts per
   terminal status, and the peak admission-queue depth sampled from
   the server's /healthz while the load ran. *)

open Ndq

let rate = ref 200.
let duration = ref 5.
let clients = ref 8
let port = ref 0
let workers = ref 4
let queue = ref 64
let deadline_ms = ref 5_000
let seed = ref 7
let size = ref 2_000
let label = ref "load"
let out = ref "BENCH_load.json"
let append = ref false
let tsdb_out = ref ""

let usage () =
  prerr_endline
    "usage: loadgen [--rate R] [--duration S] [--clients N] [--port P]\n\
    \               [--workers N] [--queue N] [--deadline MS] [--seed K]\n\
    \               [--size N] [--label L] [--out FILE] [--append]\n\
    \               [--tsdb FILE] [--tail-threshold MS]";
  exit 2

let rec parse_args = function
  | [] -> ()
  | "--rate" :: v :: rest ->
      rate := float_of_string v;
      parse_args rest
  | "--duration" :: v :: rest ->
      duration := float_of_string v;
      parse_args rest
  | "--clients" :: v :: rest ->
      clients := int_of_string v;
      parse_args rest
  | "--port" :: v :: rest ->
      port := int_of_string v;
      parse_args rest
  | "--workers" :: v :: rest ->
      workers := int_of_string v;
      parse_args rest
  | "--queue" :: v :: rest ->
      queue := int_of_string v;
      parse_args rest
  | "--deadline" :: v :: rest ->
      deadline_ms := int_of_string v;
      parse_args rest
  | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse_args rest
  | "--size" :: v :: rest ->
      size := int_of_string v;
      parse_args rest
  | "--label" :: v :: rest ->
      label := v;
      parse_args rest
  | "--out" :: v :: rest ->
      out := v;
      parse_args rest
  | "--append" :: rest ->
      append := true;
      parse_args rest
  | "--tsdb" :: v :: rest ->
      tsdb_out := v;
      parse_args rest
  | "--tail-threshold" :: v :: rest ->
      Tail.set_slow_threshold_ns (int_of_float (float_of_string v *. 1e6));
      parse_args rest
  | _ -> usage ()

(* Per-request slots, filled by the client threads. *)
type slot = {
  mutable latency_ns : int;  (* scheduled arrival -> completion; -1 unset *)
  mutable status : char;  (* 'o'k / 'b'usy / 'd'eadline / 'e'rror / 'x' no conn *)
  mutable rows : int;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

let () =
  parse_args (List.tl (Array.to_list Sys.argv));
  if !rate <= 0. || !duration <= 0. || !clients < 1 then usage ();
  let total = int_of_float (!rate *. !duration) in
  if total < 1 then usage ();

  (* The workload: same instance parameters the spawned server (or a
     matching external one) uses, so query bases exist. *)
  let params = { Dif_gen.default_params with seed = !seed; size = !size } in
  let instance = Dif_gen.generate ~params () in
  let queries = Query_mix.generate ~seed:(!seed + 1) ~count:total instance in

  let spawned =
    if !port <> 0 then None
    else begin
      let srv =
        Srv.start ~workers:!workers ~queue:!queue ~deadline_ms:!deadline_ms
          ~make_engine:(fun () -> Engine.create ~block:64 instance)
          ()
      in
      port := Srv.port srv;
      Some srv
    end
  in

  (* The flight recorder rides along at 4Hz when --tsdb asks for it.
     With a spawned (in-process) server the recorder and the serving
     metrics share the default registry, so the saved series carries
     srv_request_ns, queue depth and the resident-page gauge; against
     an external --port server it records only this process's side. *)
  let recorder =
    if !tsdb_out = "" then None
    else begin
      let ts = Tsdb.create ~resolution_s:0.25 () in
      Tsdb.start ts;
      Some ts
    end
  in

  let slots =
    Array.init total (fun _ -> { latency_ns = -1; status = 'x'; rows = 0 })
  in
  let period_ns = 1e9 /. !rate in
  let t0 = Mclock.now_ns () + 50_000_000 in

  (* Peak queue depth, sampled over /healthz while the load runs. *)
  let sampling = ref true in
  let max_depth = ref 0 in
  let sampler =
    Thread.create
      (fun () ->
        while !sampling do
          (try
             let status, _, body = Monitor.request ~port:!port "/healthz" in
             if status = 200 then
               match Json.member "queue_depth" (Json.of_string body) with
               | Json.Num d -> max_depth := max !max_depth (int_of_float d)
               | _ -> ()
           with _ -> ());
          Thread.delay 0.1
        done)
      ()
  in

  let client_thread c =
    match Srv_client.connect ~port:!port () with
    | exception _ -> ()  (* slots keep status 'x' *)
    | conn ->
        let k = ref c in
        (try
           while !k < total do
             let scheduled = t0 + int_of_float (float_of_int !k *. period_ns) in
             let now = Mclock.now_ns () in
             if scheduled > now then
               Thread.delay (float_of_int (scheduled - now) /. 1e9);
             let s = slots.(!k) in
             (match Srv_client.query conn queries.(!k) with
             | reply ->
                 s.latency_ns <- Mclock.now_ns () - scheduled;
                 s.rows <- List.length reply.Srv_client.rows;
                 s.status <-
                   (match reply.Srv_client.status with
                   | Srv_client.Ok -> 'o'
                   | Srv_client.Busy _ -> 'b'
                   | Srv_client.Deadline -> 'd'
                   | Srv_client.Error _ -> 'e')
             | exception Srv_client.Disconnected ->
                 s.latency_ns <- Mclock.now_ns () - scheduled;
                 s.status <- 'x';
                 raise Srv_client.Disconnected);
             k := !k + !clients
           done
         with Srv_client.Disconnected -> ());
        Srv_client.close conn
  in
  let threads =
    List.init !clients (fun c -> Thread.create client_thread c)
  in
  List.iter Thread.join threads;
  let t_end = Mclock.now_ns () in
  sampling := false;
  Thread.join sampler;
  (* One last sample catches the final partial window, then the
     recorder thread stops before the server (whose gauges it reads). *)
  Option.iter
    (fun ts ->
      Tsdb.sample ts;
      Tsdb.stop ts)
    recorder;
  Option.iter Srv.stop spawned;

  let count ch =
    Array.fold_left (fun n s -> if s.status = ch then n + 1 else n) 0 slots
  in
  let ok = count 'o'
  and busy = count 'b'
  and deadline = count 'd'
  and error = count 'e'
  and lost = count 'x' in
  let completed =
    Array.of_list
      (List.filter_map
         (fun s -> if s.latency_ns >= 0 then Some s.latency_ns else None)
         (Array.to_list slots))
  in
  Array.sort compare completed;
  let span_ns = max 1 (t_end - t0) in
  let qps =
    float_of_int (Array.length completed) /. (float_of_int span_ns /. 1e9)
  in
  let us n = n / 1000 in
  let p50 = percentile completed 0.50
  and p95 = percentile completed 0.95
  and p99 = percentile completed 0.99 in
  let maxl = if Array.length completed = 0 then 0 else completed.(Array.length completed - 1) in

  (* The flight-recorder digest for the run document: the served-p99
     series (the E29 gate asserts it is non-empty and in band), the
     resident-page band (Thm 8.3: flat under steady load), the
     tail-sampling ledger, and whether at least one exemplar on the
     srv_request_ns histogram joins to a tail-retained trace. *)
  let tsdb_fields =
    match recorder with
    | None -> []
    | Some ts ->
        Tsdb.save ts !tsdb_out;
        let horizon = !duration +. 30. in
        let p99 =
          Tsdb.range ts ~window_s:horizon ~agg:(Tsdb.Quantile 0.99)
            "srv_request_ns"
        in
        let p99_points = List.length (List.filter (fun (_, v) -> v <> None) p99) in
        let resident =
          List.filter_map snd
            (Tsdb.range ts ~window_s:horizon ~agg:Tsdb.Max
               "srv_engine_max_resident_pages")
        in
        let reasons =
          List.fold_left
            (fun acc r ->
              let k = Tail.reason_to_string r.Tail.r_reason in
              (k, 1 + Option.value ~default:0 (List.assoc_opt k acc))
              :: List.remove_assoc k acc)
            [] (Tail.retained ())
        in
        let exemplar_joined =
          List.exists
            (fun f ->
              f.Metrics.fv_name = "srv_request_ns"
              && List.exists
                   (fun (_, v) ->
                     match v with
                     | Metrics.V_histogram h ->
                         List.exists
                           (fun (_, ex) ->
                             Tail.find ex.Metrics.ex_trace_id <> None)
                           h.Metrics.hv_exemplars
                     | _ -> false)
                   f.Metrics.fv_series)
            (Metrics.export Metrics.default)
        in
        let num n = Json.Num (float_of_int n) in
        [
          ( "tsdb",
            Json.Obj
              [
                ("file", Json.Str !tsdb_out);
                ("windows", num (Tsdb.window_count ts));
                ("p99_points", num p99_points);
                ( "p99_series",
                  Json.Arr
                    (List.map
                       (fun (t, v) ->
                         Json.Arr
                           [
                             Json.Num t;
                             (match v with
                             | Some v -> Json.Num v
                             | None -> Json.Null);
                           ])
                       p99) );
                ( "resident_min",
                  if resident = [] then Json.Null
                  else Json.Num (List.fold_left Float.min infinity resident) );
                ( "resident_max",
                  if resident = [] then Json.Null
                  else
                    Json.Num (List.fold_left Float.max neg_infinity resident) );
                ("tail_retained", num (Tail.retained_count ()));
                ("tail_spans", num (Tail.retained_spans ()));
                ("tail_budget", num (Tail.budget_spans ()));
                ( "tail_reasons",
                  Json.Obj
                    (List.map
                       (fun (k, n) -> (k, num n))
                       (List.sort compare reasons)) );
                ("exemplar_joined", Json.Bool exemplar_joined);
              ] );
        ]
  in

  let run =
    Json.Obj
      ([
        ("label", Json.Str !label);
        ( "config",
          Json.Obj
            [
              ("rate", Json.Num !rate);
              ("duration_s", Json.Num !duration);
              ("clients", Json.Num (float_of_int !clients));
              ("workers", Json.Num (float_of_int !workers));
              ("queue", Json.Num (float_of_int !queue));
              ("deadline_ms", Json.Num (float_of_int !deadline_ms));
              ("seed", Json.Num (float_of_int !seed));
              ("size", Json.Num (float_of_int !size));
              ("spawned", Json.Bool (spawned <> None));
            ] );
        ( "results",
          Json.Obj
            [
              ("sent", Json.Num (float_of_int total));
              ("ok", Json.Num (float_of_int ok));
              ("busy", Json.Num (float_of_int busy));
              ("deadline", Json.Num (float_of_int deadline));
              ("error", Json.Num (float_of_int error));
              ("lost", Json.Num (float_of_int lost));
              ("qps", Json.Num qps);
              ("p50_us", Json.Num (float_of_int (us p50)));
              ("p95_us", Json.Num (float_of_int (us p95)));
              ("p99_us", Json.Num (float_of_int (us p99)));
              ("max_us", Json.Num (float_of_int (us maxl)));
              ("max_queue_depth", Json.Num (float_of_int !max_depth));
            ] );
      ]
      @ tsdb_fields)
  in
  let runs =
    if !append && Sys.file_exists !out then
      match
        Json.member "runs"
          (Json.of_string
             (In_channel.with_open_text !out In_channel.input_all))
      with
      | Json.Arr l -> l @ [ run ]
      | _ -> [ run ]
    else [ run ]
  in
  Out_channel.with_open_text !out (fun oc ->
      Out_channel.output_string oc
        (Json.to_string (Json.Obj [ ("runs", Json.Arr runs) ]) ^ "\n"));
  Printf.printf
    "%s: sent=%d ok=%d busy=%d deadline=%d error=%d lost=%d qps=%.1f \
     p50=%dus p95=%dus p99=%dus max_queue_depth=%d -> %s\n"
    !label total ok busy deadline error lost qps (us p50) (us p95) (us p99)
    !max_depth !out;
  (match recorder with
  | Some ts ->
      Printf.printf
        "tsdb: %d windows -> %s; tail retained %d traces (%d/%d spans)\n"
        (Tsdb.window_count ts) !tsdb_out (Tail.retained_count ())
        (Tail.retained_spans ()) (Tail.budget_spans ())
  | None -> ());
  (* Non-zero exit on transport-level failures: shed and deadline are
     legitimate protocol outcomes, lost connections and query errors
     are not. *)
  if error > 0 || lost > 0 then exit 1
