(* Structured results for the experiment harness.

   Every [Util.measure] call (and the explicit records in the
   engine-level experiments) appends one row; [write] dumps them all as
   a JSON array so the numbers behind EXPERIMENTS.md can be diffed and
   plotted without scraping the pretty-printed tables. *)

type row = {
  id : string;  (* experiment id, e.g. "E1" *)
  size : int option;  (* instance size N, when the experiment has one *)
  reads : int;
  writes : int;
  wall_ns : int;
  max_resident_pages : int;
}

let rows : row list ref = ref []
let current = ref "startup"

(* Keep just the experiment tag out of header ids like
   "E1 (Thm 5.1, Fig 2)". *)
let set_experiment id =
  current := (match String.index_opt id ' ' with
              | Some i -> String.sub id 0 i
              | None -> id)

let record ?size ~reads ~writes ~wall_ns ~max_resident_pages () =
  rows :=
    { id = !current; size; reads; writes; wall_ns; max_resident_pages }
    :: !rows

(* Snapshot [stats] around [f], timing it with the monotonic clock. *)
let with_stats ?size stats f =
  let reads0 = stats.Io_stats.page_reads
  and writes0 = stats.Io_stats.page_writes in
  let t0 = Mclock.now_ns () in
  let r = f () in
  let wall_ns = Mclock.now_ns () - t0 in
  record ?size
    ~reads:(stats.Io_stats.page_reads - reads0)
    ~writes:(stats.Io_stats.page_writes - writes0)
    ~wall_ns ~max_resident_pages:stats.Io_stats.max_resident_pages ();
  (r, wall_ns)

let chronological () = List.rev !rows
(* [rows] accumulates newest-first (cons); everything that leaves this
   module is chronological, so BENCH_results.json is stable across runs
   and diffs cleanly against BENCH_baseline.json. *)

let row_json r =
  Printf.sprintf
    "{\"id\":\"%s\",\"size\":%s,\"reads\":%d,\"writes\":%d,\"wall_ns\":%d,\"max_resident_pages\":%d}"
    r.id
    (match r.size with Some n -> string_of_int n | None -> "null")
    r.reads r.writes r.wall_ns r.max_resident_pages

let write path =
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i r ->
      if i > 0 then output_string oc ",\n";
      output_string oc ("  " ^ row_json r))
    (chronological ());
  output_string oc "\n]\n";
  close_out oc;
  Fmt.pr "@.wrote %d result rows to %s@." (List.length !rows) path
