(* Structured results for the experiment harness.

   Every [Util.measure] call (and the explicit records in the
   engine-level experiments) appends one row; [write] dumps them all as
   a JSON array so the numbers behind EXPERIMENTS.md can be diffed and
   plotted without scraping the pretty-printed tables. *)

type row = {
  id : string;  (* experiment id, e.g. "E1" *)
  size : int option;  (* instance size N, when the experiment has one *)
  reads : int;
  writes : int;
  wall_ns : int;
  max_resident_pages : int;
  (* GC columns: deltas over the measured region, except
     [top_heap_words] which is the process high-water mark so far. *)
  minor_collections : int;
  major_collections : int;
  top_heap_words : int;
  allocated_bytes : int;
}

let rows : row list ref = ref []
let current = ref "startup"

(* Keep just the experiment tag out of header ids like
   "E1 (Thm 5.1, Fig 2)". *)
let set_experiment id =
  current := (match String.index_opt id ' ' with
              | Some i -> String.sub id 0 i
              | None -> id)

let record ?size ?(minor_collections = 0) ?(major_collections = 0)
    ?(top_heap_words = 0) ?(allocated_bytes = 0) ~reads ~writes ~wall_ns
    ~max_resident_pages () =
  rows :=
    {
      id = !current;
      size;
      reads;
      writes;
      wall_ns;
      max_resident_pages;
      minor_collections;
      major_collections;
      top_heap_words;
      allocated_bytes;
    }
    :: !rows

(* Snapshot [stats] around [f], timing it with the monotonic clock.
   The GC is snapshotted too ([Gc.quick_stat] — no heap walk), so every
   row carries the collection counts and bytes allocated by the
   measured region next to its io. *)
let with_stats ?size stats f =
  let reads0 = stats.Io_stats.page_reads
  and writes0 = stats.Io_stats.page_writes in
  let gc0 = Gc.quick_stat () in
  let alloc0 = Gc.allocated_bytes () in
  let t0 = Mclock.now_ns () in
  let r = f () in
  let wall_ns = Mclock.now_ns () - t0 in
  let gc1 = Gc.quick_stat () in
  record ?size
    ~minor_collections:(gc1.Gc.minor_collections - gc0.Gc.minor_collections)
    ~major_collections:(gc1.Gc.major_collections - gc0.Gc.major_collections)
    ~top_heap_words:gc1.Gc.top_heap_words
    ~allocated_bytes:(int_of_float (Gc.allocated_bytes () -. alloc0))
    ~reads:(stats.Io_stats.page_reads - reads0)
    ~writes:(stats.Io_stats.page_writes - writes0)
    ~wall_ns ~max_resident_pages:stats.Io_stats.max_resident_pages ();
  (r, wall_ns)

let chronological () = List.rev !rows
(* [rows] accumulates newest-first (cons); everything that leaves this
   module is chronological, so BENCH_results.json is stable across runs
   and diffs cleanly against BENCH_baseline.json. *)

(* --- Monitor-sourced snapshots -------------------------------------------- *)

(* In a monitored run (main.exe --monitor PORT) the harness scrapes its
   own /metrics endpoint after each experiment and keeps one snapshot
   per scrape: the per-family sums parsed back out of the Prometheus
   text, proving the live endpoint and the written results agree. *)

type snapshot = { after : string; metrics : (string * float) list }

let snapshots : snapshot list ref = ref []

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

(* Sum the series of each family in an exposition page, dropping
   comments and the cumulative histogram bucket lines (the _sum/_count
   series carry the totals). *)
let parse_exposition text =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match String.rindex_opt line ' ' with
        | None -> ()
        | Some i -> (
            let key = String.sub line 0 i in
            let name =
              match String.index_opt key '{' with
              | Some j -> String.sub key 0 j
              | None -> key
            in
            if not (ends_with ~suffix:"_bucket" name) then
              match
                float_of_string_opt
                  (String.sub line (i + 1) (String.length line - i - 1))
              with
              | Some v ->
                  let prev =
                    Option.value ~default:0. (Hashtbl.find_opt tbl name)
                  in
                  Hashtbl.replace tbl name (prev +. v)
              | None -> ()))
    (String.split_on_char '\n' text);
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let snapshot ~after text =
  snapshots := { after; metrics = parse_exposition text } :: !snapshots

let row_json r =
  Printf.sprintf
    "{\"id\":\"%s\",\"size\":%s,\"reads\":%d,\"writes\":%d,\"wall_ns\":%d,\"max_resident_pages\":%d,\"minor_collections\":%d,\"major_collections\":%d,\"top_heap_words\":%d,\"allocated_bytes\":%d}"
    r.id
    (match r.size with Some n -> string_of_int n | None -> "null")
    r.reads r.writes r.wall_ns r.max_resident_pages r.minor_collections
    r.major_collections r.top_heap_words r.allocated_bytes

let snapshot_json s =
  Printf.sprintf "{\"after\":\"%s\",\"metrics\":{%s}}" s.after
    (String.concat ","
       (List.map
          (fun (name, v) -> Printf.sprintf "\"%s\":%.17g" name v)
          s.metrics))

(* The results document: {"rows": [...], "monitor": [...]}.  The
   monitor array is empty in an unmonitored run; [Baseline.aggregate]
   also still accepts the legacy bare-array shape. *)
let write path =
  let oc = open_out path in
  output_string oc "{\"rows\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then output_string oc ",\n";
      output_string oc ("  " ^ row_json r))
    (chronological ());
  output_string oc "\n],\n\"monitor\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then output_string oc ",\n";
      output_string oc ("  " ^ snapshot_json s))
    (List.rev !snapshots);
  output_string oc "\n]}\n";
  close_out oc;
  Fmt.pr "@.wrote %d result rows (%d monitor snapshots) to %s@."
    (List.length !rows) (List.length !snapshots) path
