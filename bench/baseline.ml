(* The perf-regression gate: compare a fresh BENCH_results.json against
   the committed BENCH_baseline.json.

     dune exec bench/baseline.exe BENCH_baseline.json BENCH_results.json [MULT]

   Rows are aggregated per experiment id (summing reads, writes and
   wall_ns over the id's rows) and compared with tolerance bands:

   - page reads and writes are deterministic in the simulated cost
     model, so any *increase* over the baseline fails the gate
     (a decrease is reported as a stale baseline, not a failure);
   - wall-clock time is machine-dependent, so the band is a generous
     multiplier (default 50x) plus an absolute slack of 250ms — the
     gate catches order-of-magnitude blowups, not jitter.

   Exit status 0 when every id is within its band, 1 on any regression,
   2 on unusable input. *)

let wall_slack_ns = 250_000_000
let default_multiplier = 50.

type agg = {
  mutable reads : int;
  mutable writes : int;
  mutable wall_ns : int;
  mutable rows : int;
}

(* Sum the telemetry rows of each experiment id, preserving first-seen
   order (the files are chronological). *)
let aggregate path =
  let text = In_channel.with_open_text path In_channel.input_all in
  let rows =
    (* Either the legacy bare array of rows, or the current results
       document {"rows": [...], "monitor": [...]}. *)
    match Json.of_string text with
    | Json.Arr l -> l
    | Json.Obj _ as o -> (
        match Json.member "rows" o with
        | Json.Arr l -> l
        | _ -> failwith (path ^ ": expected telemetry rows under \"rows\""))
    | _ -> failwith (path ^ ": expected a JSON array of telemetry rows")
  in
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun r ->
      let id = Json.str (Json.member "id" r) in
      let a =
        match Hashtbl.find_opt tbl id with
        | Some a -> a
        | None ->
            let a = { reads = 0; writes = 0; wall_ns = 0; rows = 0 } in
            Hashtbl.add tbl id a;
            order := id :: !order;
            a
      in
      a.reads <- a.reads + Json.to_int (Json.member "reads" r);
      a.writes <- a.writes + Json.to_int (Json.member "writes" r);
      a.wall_ns <- a.wall_ns + Json.to_int (Json.member "wall_ns" r);
      a.rows <- a.rows + 1)
    rows;
  (List.rev !order, tbl)

type verdict = Pass | Stale of string | Regression of string

let check ~multiplier ~(base : agg) ~(fresh : agg) =
  if fresh.reads > base.reads then
    Regression
      (Printf.sprintf "reads %d -> %d (band: exact)" base.reads fresh.reads)
  else if fresh.writes > base.writes then
    Regression
      (Printf.sprintf "writes %d -> %d (band: exact)" base.writes fresh.writes)
  else if
    float_of_int fresh.wall_ns > multiplier *. float_of_int base.wall_ns
    && fresh.wall_ns - base.wall_ns > wall_slack_ns
  then
    Regression
      (Printf.sprintf "wall %s -> %s (band: %gx + %dms)"
         (Mclock.ns_to_string base.wall_ns)
         (Mclock.ns_to_string fresh.wall_ns)
         multiplier
         (wall_slack_ns / 1_000_000))
  else if fresh.reads < base.reads || fresh.writes < base.writes then
    Stale
      (Printf.sprintf "io improved (reads %d -> %d, writes %d -> %d): refresh \
                       the baseline"
         base.reads fresh.reads base.writes fresh.writes)
  else Pass

let () =
  let args =
    match Array.to_list Sys.argv with
    | _ :: rest -> rest
    | [] -> []
  in
  let baseline_path, results_path, multiplier =
    match args with
    | [ b; r ] -> (b, r, default_multiplier)
    | [ b; r; m ] -> (
        match float_of_string_opt m with
        | Some m when m >= 1. -> (b, r, m)
        | _ ->
            Fmt.epr "bad multiplier %S@." m;
            exit 2)
    | _ ->
        Fmt.epr
          "usage: baseline.exe BASELINE.json RESULTS.json [WALL_MULTIPLIER]@.";
        exit 2
  in
  match (aggregate baseline_path, aggregate results_path) with
  | exception (Sys_error m | Failure m) ->
      Fmt.epr "%s@." m;
      exit 2
  | exception Json.Parse_error m ->
      Fmt.epr "%s@." m;
      exit 2
  | (base_order, base), (fresh_order, fresh) ->
      let regressions = ref 0 and mismatches = ref 0 in
      List.iter
        (fun id ->
          let f = Hashtbl.find fresh id in
          match Hashtbl.find_opt base id with
          | None ->
              incr mismatches;
              Fmt.pr "%-10s NEW        no baseline (%d rows, reads=%d \
                      writes=%d wall=%s)@."
                id f.rows f.reads f.writes
                (Mclock.ns_to_string f.wall_ns)
          | Some b -> (
              match check ~multiplier ~base:b ~fresh:f with
              | Pass ->
                  Fmt.pr "%-10s ok         reads=%d writes=%d wall=%s (base \
                          %s)@."
                    id f.reads f.writes
                    (Mclock.ns_to_string f.wall_ns)
                    (Mclock.ns_to_string b.wall_ns)
              | Stale why ->
                  incr mismatches;
                  Fmt.pr "%-10s STALE      %s@." id why
              | Regression why ->
                  incr regressions;
                  incr mismatches;
                  Fmt.pr "%-10s REGRESSION %s@." id why))
        fresh_order;
      List.iter
        (fun id ->
          if not (Hashtbl.mem fresh id) then
            Fmt.pr "%-10s skipped    in baseline but not in this run@." id)
        base_order;
      (* On any mismatch, lay the two runs side by side so re-baselining
         is a copy-paste decision, not an archaeology session. *)
      if !mismatches > 0 then begin
        Fmt.pr "@.before/after (%s -> %s):@." baseline_path results_path;
        Fmt.pr "%-28s %12s %12s %12s %12s %12s %12s@." "id" "reads(base)"
          "reads(run)" "writes(base)" "writes(run)" "wall(base)" "wall(run)";
        let opt_int tbl id field =
          match Hashtbl.find_opt tbl id with
          | Some a -> string_of_int (field a)
          | None -> "-"
        in
        let opt_wall tbl id =
          match Hashtbl.find_opt tbl id with
          | Some a -> Mclock.ns_to_string a.wall_ns
          | None -> "-"
        in
        let all_ids =
          fresh_order
          @ List.filter (fun id -> not (Hashtbl.mem fresh id)) base_order
        in
        List.iter
          (fun id ->
            Fmt.pr "%-28s %12s %12s %12s %12s %12s %12s@." id
              (opt_int base id (fun a -> a.reads))
              (opt_int fresh id (fun a -> a.reads))
              (opt_int base id (fun a -> a.writes))
              (opt_int fresh id (fun a -> a.writes))
              (opt_wall base id) (opt_wall fresh id))
          all_ids
      end;
      if !regressions > 0 then begin
        Fmt.pr "@.%d experiment id(s) regressed against %s@." !regressions
          baseline_path;
        exit 1
      end
      else Fmt.pr "@.all experiment ids within the baseline tolerance bands@."
