(* Shared helpers for the experiment harness. *)

let block = 64

(* Operator-boundary handling for the engine-level experiments; set from
   the harness's --mode flag so CI can measure both sides. *)
let eval_mode = ref Engine.Streaming

let header ~id ~claim =
  Telemetry.set_experiment id;
  Fmt.pr "@.%s@.%s  %s@.%s@." (String.make 78 '=') id claim (String.make 78 '-')

let row fmt = Fmt.pr fmt

let pages n = if n <= 0 then 0 else ((n - 1) / block) + 1

let fresh_pager () =
  let stats = Io_stats.create () in
  (stats, Pager.create ~block stats)

(* Measure total I/O and wall-clock seconds of [f]; every measurement
   also lands as a structured row in [Telemetry]. *)
let measure ?size stats f =
  Io_stats.reset stats;
  let r, wall_ns = Telemetry.with_stats ?size stats f in
  (r, Io_stats.total_io stats, float_of_int wall_ns /. 1e9)

(* Two disjoint lists spanning a karily instance (even/odd tags). *)
let even_odd pager instance =
  let tagged t =
    Instance.fold
      (fun acc e -> if Entry.string_values e "tag" = [ t ] then e :: acc else acc)
      [] instance
    |> List.rev
  in
  ( Ext_list.of_list_resident pager (tagged "even"),
    Ext_list.of_list_resident pager (tagged "odd") )

let karily = Dif_gen.karily
let chain = Dif_gen.chain

(* Three interleaved id-residue lists over a karily instance. *)
let three_lists pager instance =
  let part k =
    Instance.fold
      (fun acc e ->
        match Entry.int_values e "id" with
        | id :: _ when id mod 3 = k -> e :: acc
        | _ -> acc)
      [] instance
    |> List.rev
  in
  ( Ext_list.of_list_resident pager (part 0),
    Ext_list.of_list_resident pager (part 1),
    Ext_list.of_list_resident pager (part 2) )

let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b
