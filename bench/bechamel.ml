(* Bechamel micro-benchmarks: wall-clock cost of each operator family at a
   fixed input size (the per-operator companion of the I/O experiments). *)

module Dir = Instance
(* Bechamel's Toolkit shadows the directory [Instance] module below. *)

(* This compilation unit is itself named [Bechamel], which shadows the
   library's umbrella module; reach the library through its alias module
   instead. *)
open Bechamel__
open Toolkit

let size = 4_000

let setup () =
  let stats = Io_stats.create () in
  let pager = Pager.create ~block:64 stats in
  let instance = Dif_gen.karily ~fanout:4 ~size () in
  let l1, l2 = Util.even_odd pager instance in
  let ref_instance =
    Dif_gen.generate
      ~params:{ Dif_gen.default_params with size; seed = 17; ref_fanout = 2 }
      ()
  in
  let all = Ext_list.of_list_resident pager (Dir.to_list ref_instance) in
  let engine = Engine.create ~block:64 instance in
  let small_pager = Pager.create ~block:64 (Io_stats.create ()) in
  let s1, s2 = Util.even_odd small_pager (Dif_gen.karily ~fanout:4 ~size:512 ()) in
  (l1, l2, all, engine, s1, s2)

let tests () =
  let l1, l2, all, engine, s1, s2 = setup () in
  let max_count =
    Qparser.parse_agg_filter_text "count($2) = max(count($2))"
  in
  let engine_query =
    Qparser.of_string
      "(g (d (dc=kroot ? sub ? tag=even) (dc=kroot ? sub ? tag=odd) count($2) \
       > 0) min(priority) >= 0)"
  in
  let qos_engine = Engine.create ~block:64 (Qos.generate ()) in
  let tops_engine = Engine.create ~block:64 (Tops.generate ()) in
  let rng = Prng.create 3 in
  [
    Test.make ~name:"bool/and" (Staged.stage (fun () -> Bool_ops.and_ l1 l2));
    Test.make ~name:"bool/or" (Staged.stage (fun () -> Bool_ops.or_ l1 l2));
    Test.make ~name:"bool/diff" (Staged.stage (fun () -> Bool_ops.diff l1 l2));
    Test.make ~name:"hspc/children"
      (Staged.stage (fun () -> Hs_pc.children l1 l2));
    Test.make ~name:"hsad/descendants"
      (Staged.stage (fun () -> Hs_ad.descendants l1 l2));
    Test.make ~name:"hsadc/descendants_c"
      (Staged.stage (fun () -> Hs_adc.descendants_c l1 l2 l2));
    Test.make ~name:"hsagg/max-count"
      (Staged.stage (fun () -> Hs_agg.compute_hier Ast.D l1 l2 ~agg:max_count));
    Test.make ~name:"simple-agg/min=min(min)"
      (Staged.stage (fun () ->
           Simple_agg.compute
             (Qparser.parse_agg_filter_text
                "min(priority) = min(min(priority))")
             l1));
    Test.make ~name:"er/dv" (Staged.stage (fun () -> Er.compute_dv all all "ref"));
    Test.make ~name:"er/vd" (Staged.stage (fun () -> Er.compute_vd all all "ref"));
    Test.make ~name:"naive/descendants-512"
      (Staged.stage (fun () -> Naive.compute_hier Ast.D s1 s2));
    Test.make ~name:"engine/l2-tree"
      (Staged.stage (fun () -> Engine.eval engine engine_query));
    Test.make ~name:"qos/decide"
      (Staged.stage (fun () ->
           Qos.decide qos_engine ~pkt:(Qos.random_packet rng)
             ~clock:(Qos.random_clock rng)));
    Test.make ~name:"tops/resolve"
      (Staged.stage (fun () ->
           Tops.resolve tops_engine
             ~uid:(Printf.sprintf "user%d" (Prng.int rng 50))
             ~time:(Prng.int rng 2400)
             ~day:(1 + Prng.int rng 7)));
  ]

let run () =
  Util.header ~id:"B1-B14 (bechamel)"
    ~claim:
      (Printf.sprintf
         "wall-clock per operation, inputs of %d entries (monotonic clock, \
          OLS on run count)"
         size);
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (est :: _) -> est
            | Some [] | None -> nan
          in
          Fmt.pr "%-28s %12.1f ns/op  (%8.3f ms/op)@." name ns (ns /. 1e6))
        analyzed)
    (List.map (fun t -> Test.make_grouped ~name:"" ~fmt:"%s%s" [ t ]) (tests ()))
