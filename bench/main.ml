(* The benchmark harness: regenerates every experiment of EXPERIMENTS.md.

     dune exec bench/main.exe              run everything (E1-E15 + micro)
     dune exec bench/main.exe e6 e9        run selected experiments
     dune exec bench/main.exe bechamel     run only the micro-benchmarks *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let run_micro = args = [] || List.mem "bechamel" args in
  let selected =
    match List.filter (fun a -> a <> "bechamel") args with
    | [] -> List.map fst Experiments.all
    | picks -> picks
  in
  Fmt.pr
    "Querying Network Directories — experiment harness (blocking factor B = \
     %d)@."
    Util.block;
  (* Journal every engine query of the run; at threshold 0 each one is
     "slow", so the slowlog retains the costliest captures. *)
  Qlog.enable ~append:false "BENCH_journal.jsonl";
  Qlog.set_threshold_ns 0;
  List.iter
    (fun id ->
      match List.assoc_opt id Experiments.all with
      | Some f -> f ()
      | None -> Fmt.epr "unknown experiment %S (e1..e15, bechamel)@." id)
    selected;
  if run_micro then Bechamel.run ();
  Telemetry.write "BENCH_results.json";
  let captures = Qlog.write_slowlog "BENCH_slow_queries.jsonl" in
  Qlog.disable ();
  Fmt.pr "wrote %d slow-query captures to BENCH_slow_queries.jsonl (journal: \
          BENCH_journal.jsonl)@."
    captures;
  Fmt.pr "@.done.@."
