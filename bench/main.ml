(* The benchmark harness: regenerates every experiment of EXPERIMENTS.md.

     dune exec bench/main.exe              run everything (E1-E15 + micro)
     dune exec bench/main.exe e6 e9        run selected experiments
     dune exec bench/main.exe bechamel     run only the micro-benchmarks

   Flags:
     --monitor PORT   serve live introspection during the run and scrape
                      the harness's own /metrics after each experiment
                      (the snapshots land in the results file)
     --journal PATH   query-journal path (default _build/BENCH_journal.jsonl)
     --out PATH       results path (default BENCH_results.json)
     --mode M         operator-boundary handling for engine-level
                      experiments: streaming (default) or materialized *)

let ensure_parent path =
  let dir = Filename.dirname path in
  if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let monitor_port = ref None
  and journal = ref "_build/BENCH_journal.jsonl"
  and out = ref "BENCH_results.json" in
  let rec parse = function
    | "--monitor" :: p :: tl ->
        monitor_port := int_of_string_opt p;
        parse tl
    | "--journal" :: p :: tl ->
        journal := p;
        parse tl
    | "--out" :: p :: tl ->
        out := p;
        parse tl
    | "--mode" :: m :: tl ->
        (match m with
        | "streaming" -> Util.eval_mode := Engine.Streaming
        | "materialized" -> Util.eval_mode := Engine.Materialized
        | _ ->
            Fmt.epr "bad --mode %S (streaming|materialized)@." m;
            exit 2);
        parse tl
    | a :: tl -> a :: parse tl
    | [] -> []
  in
  let args = parse args in
  let run_micro = args = [] || List.mem "bechamel" args in
  let selected =
    match List.filter (fun a -> a <> "bechamel") args with
    | [] -> List.map fst Experiments.all
    | picks -> picks
  in
  Fmt.pr
    "Querying Network Directories — experiment harness (blocking factor B = \
     %d)@."
    Util.block;
  let monitor =
    match !monitor_port with
    | None -> None
    | Some port ->
        let m = Monitor.start ~port () in
        (* The flight recorder samples while the monitor serves, so
           /range and /dashboard have series to draw mid-run. *)
        Tsdb.start Tsdb.default;
        Fmt.pr "monitoring on http://127.0.0.1:%d/@." (Monitor.port m);
        Some m
  in
  (* Journal every engine query of the run; at threshold 0 each one is
     "slow", so the slowlog retains the costliest captures. *)
  ensure_parent !journal;
  Qlog.enable ~append:false !journal;
  Qlog.set_threshold_ns 0;
  (* Feed the plan-quality store online, so /planstats and /workload
     serve live numbers during a monitored run and the end-of-run
     artifacts below reflect the whole workload. *)
  Planstats.attach Planstats.default;
  (* The stock service-health rules, ticked after each experiment so a
     monitored run serves live states on /alerts and exports the ALERTS
     series; a healthy run ends with zero firing (CI asserts this). *)
  Alerts.install_defaults ();
  List.iter
    (fun id ->
      (match List.assoc_opt id Experiments.all with
      | Some f -> f ()
      | None -> Fmt.epr "unknown experiment %S (e1..e15, bechamel)@." id);
      Runtime.sample ();
      Alerts.tick Alerts.default;
      (* Scrape our own endpoint mid-run, like an external collector
         would, and keep the snapshot next to the result rows. *)
      match monitor with
      | Some m -> (
          match Monitor.get ~port:(Monitor.port m) "/metrics" with
          | 200, body -> Telemetry.snapshot ~after:id body
          | status, _ ->
              Fmt.epr "monitor scrape after %s failed with HTTP %d@." id status
          | exception Unix.Unix_error (e, _, _) ->
              Fmt.epr "monitor scrape after %s failed: %s@." id
                (Unix.error_message e))
      | None -> ())
    selected;
  if run_micro then Bechamel.run ();
  Telemetry.write !out;
  let slowlog = Filename.concat (Filename.dirname !journal) "BENCH_slow_queries.jsonl" in
  ensure_parent slowlog;
  let captures = Qlog.write_slowlog slowlog in
  Qlog.disable ();
  (* Plan-quality artifacts: the q-error/workload report CI gates on,
     and the calibration cells an offline rebuild of the journal must
     reproduce byte for byte. *)
  let ps = Planstats.default in
  let planstats_out = "BENCH_planstats.json" in
  let oc = open_out planstats_out in
  output_string oc
    (Json.to_string
       (Json.Obj
          [
            ("planstats", Planstats.to_json ps);
            ("workload", Planstats.workload_json ps);
          ]));
  output_char oc '\n';
  close_out oc;
  let calibration = Filename.concat (Filename.dirname !journal) "BENCH_calibration.jsonl" in
  ensure_parent calibration;
  let cells = Planstats.save ps calibration in
  Fmt.pr "wrote plan-quality report to %s (%d events, %d calibration cells in %s)@."
    planstats_out (Planstats.events ps) cells calibration;
  (if Tsdb.running Tsdb.default then begin
     Tsdb.stop Tsdb.default;
     Tsdb.save Tsdb.default "BENCH_tsdb.json";
     Fmt.pr "wrote %d flight-recorder windows to BENCH_tsdb.json@."
       (Tsdb.window_count Tsdb.default)
   end);
  Option.iter Monitor.stop monitor;
  Fmt.pr "wrote %d slow-query captures to %s (journal: %s)@." captures slowlog
    !journal;
  Fmt.pr "@.done.@."
