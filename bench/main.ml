(* The benchmark harness: regenerates every experiment of EXPERIMENTS.md.

     dune exec bench/main.exe              run everything (E1-E15 + micro)
     dune exec bench/main.exe e6 e9        run selected experiments
     dune exec bench/main.exe bechamel     run only the micro-benchmarks *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let run_micro = args = [] || List.mem "bechamel" args in
  let selected =
    match List.filter (fun a -> a <> "bechamel") args with
    | [] -> List.map fst Experiments.all
    | picks -> picks
  in
  Fmt.pr
    "Querying Network Directories — experiment harness (blocking factor B = \
     %d)@."
    Util.block;
  List.iter
    (fun id ->
      match List.assoc_opt id Experiments.all with
      | Some f -> f ()
      | None -> Fmt.epr "unknown experiment %S (e1..e15, bechamel)@." id)
    selected;
  if run_micro then Bechamel.run ();
  Telemetry.write "BENCH_results.json";
  Fmt.pr "@.done.@."
