(* Tests for the semantic query-result cache (lib/cache): Vtrie stamp
   semantics, Footprint extraction, Cache hit/stale/LRU/admission
   mechanics, Plan.fingerprint injectivity, and the differential
   property — a cached engine agrees with the Semantics oracle under
   random interleavings of queries and directory updates. *)

let dn = Dn.of_string
let oc c = (Schema.object_class, Value.Str c)

(* --- Vtrie ------------------------------------------------------------- *)

let test_vtrie_stamps () =
  let t = Vtrie.create () in
  let a = dn "ou=a, dc=org" and b = dn "ou=b, dc=org" in
  let leaf = dn "id=1, ou=a, dc=org" in
  let s0 = Vtrie.stamp t a in
  Vtrie.bump t b;
  Alcotest.(check int) "sibling update leaves stamp" s0 (Vtrie.stamp t a);
  Vtrie.bump t leaf;
  Alcotest.(check bool) "descendant update advances stamp" true
    (Vtrie.stamp t a > s0);
  let s1 = Vtrie.stamp t a in
  Vtrie.bump t a;
  Alcotest.(check bool) "self update advances stamp" true (Vtrie.stamp t a > s1);
  (* A shallow update at the ancestor touches the entry [dc=org] only,
     not the subtree below [a]. *)
  let s2 = Vtrie.stamp t a in
  Vtrie.bump t (dn "dc=org");
  Alcotest.(check int) "shallow ancestor update leaves stamp" s2
    (Vtrie.stamp t a);
  Vtrie.bump ~subtree:true t (dn "dc=org");
  Alcotest.(check bool) "subtree ancestor update advances stamp" true
    (Vtrie.stamp t a > s2);
  Alcotest.(check int) "epoch counts every bump" 5 (Vtrie.epoch t);
  let s3 = Vtrie.stamp t a and sb = Vtrie.stamp t b in
  Vtrie.bump_all t;
  Alcotest.(check bool) "bump_all advances every stamp" true
    (Vtrie.stamp t a > s3 && Vtrie.stamp t b > sb)

let test_vtrie_lazy_nodes () =
  let t = Vtrie.create () in
  (* Stamps exist before any node does, and stay stable as unrelated
     paths materialize nodes. *)
  let ghost = dn "ou=nowhere, dc=org" in
  Alcotest.(check int) "missing subtree stamps zero" 0 (Vtrie.stamp t ghost);
  Vtrie.bump t (dn "ou=real, dc=org");
  Alcotest.(check int) "still zero after unrelated bump" 0 (Vtrie.stamp t ghost);
  Alcotest.(check bool) "nodes allocated lazily" true (Vtrie.node_count t <= 3)

(* --- Footprint --------------------------------------------------------- *)

let atomic ?(scope = Ast.Sub) base =
  Ast.Atomic { Ast.base; scope; filter = Afilter.Present "id" }

let test_footprint_rules () =
  let a = dn "ou=a, dc=org" and b = dn "ou=b, dc=org" in
  let inner = dn "id=1, ou=a, dc=org" in
  (match Footprint.of_query (atomic a) with
  | Footprint.Bases [ d ] ->
      Alcotest.(check string) "atomic base" "ou=a, dc=org" (Dn.to_string d)
  | fp -> Alcotest.failf "expected one base, got %a" Footprint.pp fp);
  (* A base covered by another base's subtree is elided. *)
  (match Footprint.of_query (Ast.And (atomic a, atomic inner)) with
  | Footprint.Bases [ d ] ->
      Alcotest.(check string) "covered base elided" "ou=a, dc=org"
        (Dn.to_string d)
  | fp -> Alcotest.failf "expected covering base, got %a" Footprint.pp fp);
  (match Footprint.of_query (Ast.Or (atomic a, atomic b)) with
  | Footprint.Bases l ->
      Alcotest.(check int) "disjoint bases kept" 2 (List.length l)
  | fp -> Alcotest.failf "expected two bases, got %a" Footprint.pp fp);
  (* Base/one scopes are widened to the subtree, never narrowed. *)
  (match Footprint.of_query (atomic ~scope:Ast.Base a) with
  | Footprint.Bases [ d ] ->
      Alcotest.(check string) "base scope widened" "ou=a, dc=org"
        (Dn.to_string d)
  | fp -> Alcotest.failf "expected one base, got %a" Footprint.pp fp);
  Alcotest.(check bool) "root base degrades to Whole" true
    (Footprint.of_query (atomic Dn.root) = Footprint.Whole);
  let many =
    List.init 17 (fun i -> atomic (dn (Printf.sprintf "ou=x%d, dc=org" i)))
  in
  let wide = List.fold_left (fun q a -> Ast.Or (q, a)) (List.hd many) (List.tl many) in
  Alcotest.(check bool) "too many bases degrades to Whole" true
    (Footprint.of_query wide = Footprint.Whole)

(* --- Cache mechanics --------------------------------------------------- *)

let entry d = Entry.make (dn d) [ oc "node"; ("id", Value.Int 1) ]

let store ?(cost_io = 10) ?(pages = 1) c ~fp ~q result =
  Cache.store c ~fingerprint:fp ~query:q
    ~footprint:(Footprint.Bases [ dn fp ])
    ~cost_io ~pages result

let check_hit msg c ~fp ~q expected =
  match Cache.find c ~fingerprint:fp ~query:q with
  | Cache.Hit arr ->
      Alcotest.(check int) msg expected (Array.length arr)
  | Cache.Stale -> Alcotest.failf "%s: stale" msg
  | Cache.Miss -> Alcotest.failf "%s: miss" msg

let test_cache_hit_stale () =
  let c = Cache.create ~admit_min_io:0 () in
  let fp = "ou=a, dc=org" and q = "(q)" in
  Alcotest.(check bool) "cold lookup misses" true
    (Cache.find c ~fingerprint:fp ~query:q = Cache.Miss);
  Alcotest.(check bool) "admitted" true
    (store c ~fp ~q [| entry "id=1, ou=a, dc=org" |]);
  check_hit "fresh entry hits" c ~fp ~q 1;
  (* An update outside the footprint leaves the entry fresh... *)
  Cache.note_update c (dn "ou=b, dc=org");
  check_hit "unrelated update keeps entry" c ~fp ~q 1;
  (* ...an update inside it invalidates exactly once. *)
  Cache.note_update c (dn "id=9, ou=a, dc=org");
  Alcotest.(check bool) "inside update stales entry" true
    (Cache.find c ~fingerprint:fp ~query:q = Cache.Stale);
  Alcotest.(check bool) "stale entry was dropped" true
    (Cache.find c ~fingerprint:fp ~query:q = Cache.Miss);
  let s = Cache.stats c in
  Alcotest.(check (list int)) "counters" [ 2; 2; 1 ]
    [ s.Cache.hits; s.Cache.misses; s.Cache.stale ]

let test_cache_same_fingerprint_distinct_text () =
  (* The constant-eliding fingerprint may coincide; the exact query text
     must keep the entries apart. *)
  let c = Cache.create ~admit_min_io:0 () in
  let fp = "ou=a, dc=org" in
  assert (store c ~fp ~q:"(id<5)" [| entry "id=1, ou=a, dc=org" |]);
  assert (store c ~fp ~q:"(id<7)" [| entry "id=1, ou=a, dc=org"; entry "id=6, ou=a, dc=org" |]);
  check_hit "first constant" c ~fp ~q:"(id<5)" 1;
  check_hit "second constant" c ~fp ~q:"(id<7)" 2

let test_cache_admission_and_lru () =
  let c = Cache.create ~budget_pages:3 ~admit_min_io:2 () in
  Alcotest.(check bool) "cheap result refused" false
    (store c ~cost_io:1 ~fp:"ou=a, dc=org" ~q:"(a)" [||]);
  Alcotest.(check bool) "oversized result refused" false
    (store c ~pages:4 ~fp:"ou=a, dc=org" ~q:"(a)" [||]);
  Alcotest.(check int) "rejects counted" 2 (Cache.stats c).Cache.rejects;
  assert (store c ~fp:"ou=a, dc=org" ~q:"(a)" [||]);
  assert (store c ~fp:"ou=b, dc=org" ~q:"(b)" [||]);
  assert (store c ~fp:"ou=c, dc=org" ~q:"(c)" [||]);
  (* Touch a, making b the LRU entry; the next store evicts exactly b. *)
  check_hit "touch a" c ~fp:"ou=a, dc=org" ~q:"(a)" 0;
  assert (store c ~fp:"ou=d, dc=org" ~q:"(d)" [||]);
  Alcotest.(check bool) "lru entry evicted" true
    (Cache.find c ~fingerprint:"ou=b, dc=org" ~query:"(b)" = Cache.Miss);
  check_hit "recently used survives" c ~fp:"ou=a, dc=org" ~q:"(a)" 0;
  check_hit "newest survives" c ~fp:"ou=d, dc=org" ~q:"(d)" 0;
  Alcotest.(check int) "one eviction" 1 (Cache.stats c).Cache.evictions;
  (* Shrinking the budget evicts down to it, oldest first. *)
  Cache.set_budget_pages c 1;
  Alcotest.(check int) "budget shrink evicts" 1 (Cache.stats c).Cache.entries;
  check_hit "most recent kept" c ~fp:"ou=d, dc=org" ~q:"(d)" 0;
  Cache.clear c;
  let s = Cache.stats c in
  Alcotest.(check int) "clear drops entries" 0 s.Cache.entries;
  Alcotest.(check int) "clear keeps pages accounting" 0 s.Cache.used_pages;
  Alcotest.(check bool) "clear keeps counters" true (s.Cache.hits > 0)

let test_cache_attach_hooks () =
  (* [attach] wires the directory's update hooks: a successful mutation
     inside a cached footprint stales the entry with no manual
     [note_update]. *)
  let d =
    Directory.create
      (Dif_gen.generate ~params:{ Dif_gen.default_params with size = 30; seed = 7 } ())
  in
  let c = Cache.create ~admit_min_io:0 () in
  Cache.attach c d;
  let deep =
    List.find (fun e -> Dn.depth (Entry.dn e) >= 2)
      (Instance.to_list (Directory.instance d))
  in
  let fp = Dn.to_string (Entry.dn deep) and q = "(q)" in
  assert (store c ~fp ~q [| deep |]);
  check_hit "fresh after attach" c ~fp ~q 1;
  (match Directory.modify d (Entry.dn deep)
           [ Directory.Replace ("priority", [ Value.Int 5 ]) ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "modify: %a" Directory.pp_error e);
  Alcotest.(check bool) "directory update stales through the hook" true
    (Cache.find c ~fingerprint:fp ~query:q = Cache.Stale)

(* --- Plan fingerprints ------------------------------------------------- *)

let prop_fingerprint_injective (_instance, (q1, q2)) =
  (* Distinct normalized shapes never collide on the 64-bit fingerprint
     (over any corpus this generator can produce). *)
  Plan.shape q1 = Plan.shape q2 || Plan.fingerprint q1 <> Plan.fingerprint q2

let prop_fingerprint_of_shape (instance, q) =
  ignore instance;
  (* The fingerprint is a pure function of the shape. *)
  String.length (Plan.fingerprint q) = 16
  && Plan.fingerprint q = Plan.fingerprint q

let test_fingerprint_base_scope () =
  let q base scope = Ast.Atomic { Ast.base; scope; filter = Afilter.Present "id" } in
  let a = dn "ou=a, dc=org" and b = dn "ou=b, dc=org" in
  Alcotest.(check bool) "base dn is part of the shape" true
    (Plan.fingerprint (q a Ast.Sub) <> Plan.fingerprint (q b Ast.Sub));
  Alcotest.(check bool) "scope is part of the shape" true
    (Plan.fingerprint (q a Ast.Sub) <> Plan.fingerprint (q a Ast.Base)
    && Plan.fingerprint (q a Ast.Sub) <> Plan.fingerprint (q a Ast.One)
    && Plan.fingerprint (q a Ast.Base) <> Plan.fingerprint (q a Ast.One));
  (* Constants are elided: same shape, different constant. *)
  let f k = Ast.Atomic { Ast.base = a; scope = Ast.Sub;
                         filter = Afilter.Int_cmp ("id", Afilter.Lt, k) } in
  Alcotest.(check string) "constants elided" (Plan.fingerprint (f 3))
    (Plan.fingerprint (f 4))

(* --- Differential: cached engine = oracle under updates ---------------- *)

type op =
  | Query of int  (** index into the query pool *)
  | Set_priority of int * int
  | Add_node of int
  | Delete of int * bool
  | Rename of int

let gen_ops =
  let open QCheck2 in
  let idx = Gen.int_range 0 10_000 in
  let gen_op =
    Gen.frequency
      [
        (6, Gen.map (fun i -> Query i) idx);
        (2, Gen.map2 (fun i p -> Set_priority (i, p)) idx (Gen.int_range 0 9));
        (1, Gen.map (fun i -> Add_node i) idx);
        (1, Gen.map2 (fun i s -> Delete (i, s)) idx Gen.bool);
        (1, Gen.map (fun i -> Rename i) idx);
      ]
  in
  let ( let* ) = Gen.( >>= ) in
  let* instance = Testkit.gen_instance in
  let* pool = Gen.list_size (Gen.int_range 2 5) (Testkit.gen_query instance) in
  let* ops = Gen.list_size (Gen.int_range 10 40) gen_op in
  Gen.return (instance, pool, ops)

(* Result equality must include attribute values: a stale cached entry
   can carry the right dn with outdated attributes. *)
let canonical entries =
  List.map
    (fun e ->
      ( Dn.to_string (Entry.dn e),
        List.sort compare
          (List.map
             (fun (a, v) -> a ^ "=" ^ Value.to_string v)
             (Entry.attrs e)) ))
    entries

let nth_dn d i =
  match Instance.to_list (Directory.instance d) with
  | [] -> Dn.root
  | l -> Entry.dn (List.nth l (i mod List.length l))

let prop_cached_engine_matches_oracle (instance, pool, ops) =
  let d = Directory.create instance in
  let c = Cache.create ~budget_pages:64 ~admit_min_io:0 () in
  Cache.attach c d;
  let pool = Array.of_list pool in
  let eng = ref None and eng_gen = ref (-1) in
  let engine () =
    if !eng_gen <> Directory.generation d then begin
      eng :=
        Some (Engine.create ~block:8 ~result_cache:c (Directory.instance d));
      eng_gen := Directory.generation d
    end;
    Option.get !eng
  in
  let fresh = ref 1_000_000 in
  List.iter
    (fun op ->
      match op with
      | Query i ->
          let q = pool.(i mod Array.length pool) in
          let actual =
            Ext_list.to_list (Engine.eval (engine ()) q)
          in
          let expected = Testkit.oracle (Directory.instance d) q in
          Alcotest.(check (list (pair string (list string))))
            (Qprinter.to_string q)
            (canonical expected) (canonical actual)
      | Set_priority (i, p) ->
          ignore
            (Directory.modify d (nth_dn d i)
               [ Directory.Replace ("priority", [ Value.Int p ]) ])
      | Add_node i ->
          incr fresh;
          let parent = nth_dn d i in
          let rdn = Rdn.single "id" (Value.Int !fresh) in
          ignore
            (Directory.add d
               (Entry.make
                  (Dn.child parent rdn)
                  [ oc "node"; ("id", Value.Int !fresh);
                    ("priority", Value.Int (i mod 10)) ]))
      | Delete (i, subtree) -> ignore (Directory.delete ~subtree d (nth_dn d i))
      | Rename i ->
          incr fresh;
          ignore
            (Directory.modify_dn d (nth_dn d i)
               ~new_rdn:(Rdn.single "id" (Value.Int !fresh))))
    ops;
  true

let () =
  Alcotest.run "cache"
    [
      ( "vtrie",
        [
          Alcotest.test_case "stamp semantics" `Quick test_vtrie_stamps;
          Alcotest.test_case "lazy nodes" `Quick test_vtrie_lazy_nodes;
        ] );
      ( "footprint",
        [ Alcotest.test_case "extraction rules" `Quick test_footprint_rules ] );
      ( "mechanics",
        [
          Alcotest.test_case "hit / stale / miss" `Quick test_cache_hit_stale;
          Alcotest.test_case "text disambiguates fingerprints" `Quick
            test_cache_same_fingerprint_distinct_text;
          Alcotest.test_case "admission + lru eviction" `Quick
            test_cache_admission_and_lru;
          Alcotest.test_case "directory hooks via attach" `Quick
            test_cache_attach_hooks;
        ] );
      ( "fingerprints",
        [
          Alcotest.test_case "base and scope" `Quick test_fingerprint_base_scope;
          Testkit.qtest ~count:300 "injective over shapes"
            QCheck2.Gen.(
              Testkit.gen_instance >>= fun i ->
              pair (Testkit.gen_query i) (Testkit.gen_query i) >>= fun qs ->
              return (i, qs))
            prop_fingerprint_injective;
          Testkit.qtest ~count:100 "pure function of the query"
            Testkit.gen_instance_and_query prop_fingerprint_of_shape;
        ] );
      ( "differential",
        [
          Testkit.qtest ~count:150 "cached engine = oracle under updates"
            gen_ops prop_cached_engine_matches_oracle;
        ] );
    ]
