(* Tests for the data model: values, rdn's, dn's and their canonical
   order, schemas, entries and instance well-formedness (Section 3). *)

let dn = Dn.of_string

(* --- Dn parsing and printing --------------------------------------------- *)

let test_dn_roundtrip () =
  List.iter
    (fun s ->
      let d = dn s in
      Alcotest.(check string) ("roundtrip " ^ s) s (Dn.to_string d))
    [
      "dc=com";
      "dc=att, dc=com";
      "SLAPolicyName=dso, ou=SLAPolicyRules, ou=networkPolicies, dc=research, dc=att, dc=com";
      "cn=doe\\, john, dc=com";  (* escaped comma in a value *)
      "id=1+ou=x, dc=com";  (* multi-valued rdn *)
    ]

let test_dn_empty_and_errors () =
  Alcotest.(check int) "empty string is the root" 0 (Dn.depth (dn ""));
  Alcotest.(check bool) "missing = rejected" true
    (Dn.of_string_opt "nonsense, dc=com" = None);
  Alcotest.(check bool) "empty rdn rejected" true
    (Dn.of_string_opt "dc=a, , dc=com" = None)

let test_dn_untyped_values () =
  let d = dn "id=42, dc=com" in
  match Dn.rdn d with
  | Some [ ("id", Value.Int 42) ] -> ()
  | _ -> Alcotest.fail "numeric rdn value should parse as int"

let test_multi_valued_rdn_normalization () =
  (* rdn components are a set: order does not matter. *)
  let a = dn "b=2+a=1, dc=com" and b = dn "a=1+b=2, dc=com" in
  Alcotest.(check bool) "set semantics" true (Dn.equal a b)

(* --- Hierarchy predicates -------------------------------------------------- *)

let test_hierarchy_predicates () =
  let c = dn "dc=com" in
  let att = dn "dc=att, dc=com" in
  let r = dn "dc=research, dc=att, dc=com" in
  Alcotest.(check bool) "parent" true (Dn.is_parent_of ~parent:att ~child:r);
  Alcotest.(check bool) "not grandparent" false
    (Dn.is_parent_of ~parent:c ~child:r);
  Alcotest.(check bool) "ancestor" true (Dn.is_ancestor_of ~ancestor:c ~descendant:r);
  Alcotest.(check bool) "not self-ancestor" false
    (Dn.is_ancestor_of ~ancestor:r ~descendant:r);
  Alcotest.(check bool) "self-or-descendant" true
    (Dn.is_self_or_descendant_of ~descendant:r ~ancestor:r);
  Alcotest.(check (list string)) "ancestors nearest first"
    [ "dc=att, dc=com"; "dc=com" ]
    (List.map Dn.to_string (Dn.ancestors r));
  Alcotest.(check bool) "child builds parent" true
    (Dn.parent r = Some att)

(* --- Canonical order -------------------------------------------------------- *)

let gen_dn =
  let open QCheck2.Gen in
  let ( let* ) = ( >>= ) in
  let gen_value =
    oneof
      [
        map (fun i -> Value.Int i) (int_range 0 20);
        map (fun s -> Value.Str s) (oneofl [ "a"; "b"; "x,y"; "p+q"; "2" ]);
      ]
  in
  let gen_rdn =
    let* n = int_range 1 2 in
    let* pairs =
      list_repeat n (pair (oneofl [ "id"; "ou"; "dc" ]) gen_value)
    in
    return (Rdn.normalize pairs)
  in
  let* depth = int_range 0 5 in
  list_repeat depth gen_rdn

let prop_ancestor_sorts_first d =
  match d with
  | [] -> true
  | _ :: rest ->
      rest = [] || Dn.compare_rev rest d < 0

let prop_ancestor_key_prefix d =
  List.for_all
    (fun a ->
      let ka = Dn.rev_key a and kd = Dn.rev_key d in
      String.length ka < String.length kd
      && String.sub kd 0 (String.length ka) = ka)
    (Dn.ancestors d)

let prop_order_total (a, b) =
  let c1 = Dn.compare_rev a b and c2 = Dn.compare_rev b a in
  (c1 = 0) = (c2 = 0) && (c1 > 0) = (c2 < 0) && (c1 = 0) = Dn.equal a b

(* Distinct dn's get distinct keys even when their printed forms agree
   (int vs string values). *)
let test_key_injective_across_types () =
  let a = Dn.child Dn.root (Rdn.single "x" (Value.Int 2)) in
  let b = Dn.child Dn.root (Rdn.single "x" (Value.Str "2")) in
  Alcotest.(check bool) "different keys" true (Dn.rev_key a <> Dn.rev_key b)

(* Siblings' subtrees never interleave: if x < y are siblings then every
   descendant of x sorts before y. *)
let prop_subtree_contiguous (parent, r1, r2) =
  let x = Dn.child parent r1 and y = Dn.child parent r2 in
  if Dn.compare_rev x y >= 0 then true
  else
    let deep = Dn.child x (Rdn.single "id" (Value.Int 7)) in
    Dn.compare_rev deep y < 0

(* --- Schema ------------------------------------------------------------------ *)

let test_schema_declarations () =
  let s = Schema.empty () in
  Schema.declare_attr s "age" Value.T_int;
  Schema.declare_class s "person" [ "age" ];
  Alcotest.(check bool) "attr typed" true
    (Schema.attr_type s "age" = Some Value.T_int);
  Alcotest.(check bool) "objectClass implicit" true
    (Schema.attr_type s Schema.object_class = Some Value.T_string);
  Alcotest.(check bool) "class exists" true (Schema.has_class s "person");
  Alcotest.(check bool) "objectClass allowed everywhere" true
    (Schema.attr_allowed_by s ~class_names:[ "person" ] Schema.object_class);
  Alcotest.check_raises "retyping rejected"
    (Invalid_argument "Schema.declare_attr: age already typed int") (fun () ->
      Schema.declare_attr s "age" Value.T_string);
  Alcotest.check_raises "undeclared attr in class"
    (Invalid_argument "Schema.declare_class: undeclared attribute \"ghost\"")
    (fun () -> Schema.declare_class s "thing" [ "ghost" ])

(* --- Instance well-formedness (Definition 3.2) -------------------------------- *)

let person_schema () =
  let s = Schema.empty () in
  Schema.declare_attr s "uid" Value.T_string;
  Schema.declare_attr s "age" Value.T_int;
  Schema.declare_class s "person" [ "uid"; "age" ];
  s

let person ?(extra = []) uid =
  Entry.make
    (dn (Printf.sprintf "uid=%s" uid))
    ([ ("uid", Value.Str uid); (Schema.object_class, Value.Str "person") ] @ extra)

let expect_violation name mk =
  let s = person_schema () in
  match Instance.add (Instance.empty s) (mk s) with
  | exception Instance.Invalid _ -> ()
  | _ -> Alcotest.failf "%s: expected a violation" name

let test_validation_violations () =
  (* rdn value must be among the entry's values *)
  expect_violation "rdn not in values" (fun _ ->
      Entry.make (dn "uid=zoe")
        [ ("uid", Value.Str "notzoe"); (Schema.object_class, Value.Str "person") ]);
  (* entries must belong to at least one class *)
  expect_violation "no class" (fun _ ->
      Entry.make (dn "uid=zoe") [ ("uid", Value.Str "zoe") ]);
  (* classes must be declared *)
  expect_violation "unknown class" (fun _ ->
      Entry.make (dn "uid=zoe")
        [ ("uid", Value.Str "zoe"); (Schema.object_class, Value.Str "robot") ]);
  (* attributes must be allowed by some class of the entry *)
  expect_violation "unknown attribute" (fun _ ->
      person ~extra:[ ("ghost", Value.Str "boo") ] "zoe");
  (* values must have the attribute's declared type *)
  expect_violation "wrong type" (fun _ ->
      person ~extra:[ ("age", Value.Str "old") ] "zoe")

let test_duplicate_dn_rejected () =
  let s = person_schema () in
  let i = Instance.add (Instance.empty s) (person "zoe") in
  match Instance.add i (person "zoe") with
  | exception Instance.Invalid (Instance.Duplicate_dn _) -> ()
  | _ -> Alcotest.fail "duplicate dn must be rejected"

let test_multi_valued_attrs () =
  let s = person_schema () in
  let e =
    Entry.make (dn "uid=zoe")
      [
        ("uid", Value.Str "zoe");
        ("age", Value.Int 30);
        ("age", Value.Int 31);
        ("age", Value.Int 30);  (* duplicate pair collapses: val(r) is a set *)
        (Schema.object_class, Value.Str "person");
      ]
  in
  ignore (Instance.add (Instance.empty s) e);
  Alcotest.(check (list int)) "multi-valued, set semantics" [ 30; 31 ]
    (Entry.int_values e "age");
  Alcotest.(check (list string)) "classes from objectClass" [ "person" ]
    (Entry.classes e)

(* --- Instance navigation -------------------------------------------------------- *)

let test_navigation () =
  let i = Dif_gen.karily ~fanout:3 ~size:40 () in
  Alcotest.(check int) "size" 40 (Instance.size i);
  Alcotest.(check (list string)) "roots" [ "dc=kroot" ]
    (List.map (fun e -> Dn.to_string (Entry.dn e)) (Instance.roots i));
  let root = dn "dc=kroot" in
  Alcotest.(check int) "whole subtree" 40 (List.length (Instance.subtree i root));
  let kids = Instance.children i root in
  (* children of the root: ids 1..3 plus the root itself is excluded *)
  Alcotest.(check int) "fanout children" 3
    (List.length (List.filter (fun e -> not (Dn.equal (Entry.dn e) root)) kids));
  (* subtree matches the predicate-based oracle *)
  let base = Entry.dn (List.nth (Instance.to_list i) 5) in
  let expected =
    Instance.fold
      (fun acc e ->
        if Dn.is_self_or_descendant_of ~descendant:(Entry.dn e) ~ancestor:base
        then e :: acc
        else acc)
      [] i
    |> List.rev |> List.length
  in
  Alcotest.(check int) "subtree = oracle" expected
    (List.length (Instance.subtree i base));
  Alcotest.(check int) "validate clean" 0 (List.length (Instance.validate i))

let test_generated_instances_valid () =
  List.iter
    (fun seed ->
      let i =
        Dif_gen.generate
          ~params:{ Dif_gen.default_params with seed; size = 300 }
          ()
      in
      Alcotest.(check int)
        (Printf.sprintf "seed %d valid" seed)
        0
        (List.length (Instance.validate i));
      Alcotest.(check int) "requested size" 300 (Instance.size i))
    [ 1; 2; 3; 99 ]

let test_generator_deterministic () =
  let gen () =
    Dif_gen.generate ~params:{ Dif_gen.default_params with size = 150 } ()
  in
  let a = Instance.to_list (gen ()) and b = Instance.to_list (gen ()) in
  Alcotest.(check bool) "same entries" true
    (List.for_all2
       (fun x y -> Entry.equal_dn x y && Entry.attrs x = Entry.attrs y)
       a b)

(* --- Std_schema --------------------------------------------------------------- *)

let test_std_schema () =
  let s = Std_schema.netscape_ds3 () in
  Alcotest.(check bool) "inetOrgPerson declared" true
    (Schema.has_class s "inetOrgPerson");
  Alcotest.(check bool) "manager is dn-typed" true
    (Schema.attr_type s "manager" = Some Value.T_dn);
  (* classes compose without subclassing: inetOrgPerson + ntUser *)
  let root = Dn.of_string "dc=example" in
  let e =
    Entry.make
      (Dn.child root (Rdn.single "uid" (Value.Str "kim")))
      [
        ("uid", Value.Str "kim");
        ("cn", Value.Str "kim lee");
        ("sn", Value.Str "lee");
        ("ntUserDomainId", Value.Str "EXAMPLE\\kim");
        (Schema.object_class, Value.Str "inetOrgPerson");
        (Schema.object_class, Value.Str "ntUser");
      ]
  in
  let i =
    Instance.of_entries s
      [
        Std_schema.dc_entry ~parent:Dn.root "example";
        Std_schema.ou_entry ~parent:root "people";
        e;
        Std_schema.inet_org_person
          ~parent:(Dn.of_string "ou=people, dc=example")
          ~uid:"jo" ~cn:"jo doe" ~sn:"doe" ~mail:"jo@example.com" ();
      ]
  in
  Alcotest.(check int) "multi-class entry validates" 0
    (List.length (Instance.validate i));
  Alcotest.(check (list string)) "both classes" [ "inetOrgPerson"; "ntUser" ]
    (List.sort String.compare (Entry.classes e))

(* --- Entry misc -------------------------------------------------------------------- *)

let test_entry_accessors () =
  let e =
    Entry.make
      (dn "id=1, dc=com")
      [
        ("id", Value.Int 1);
        ("ref", Value.Dn (dn "dc=com"));
        ("name", Value.Str "x");
        (Schema.object_class, Value.Str "node");
      ]
  in
  Alcotest.(check bool) "has_attr" true (Entry.has_attr e "ref");
  Alcotest.(check bool) "has_pair" true (Entry.has_pair e "id" (Value.Int 1));
  Alcotest.(check bool) "dn value" true
    (Entry.dn_values e "ref" = [ dn "dc=com" ]);
  Alcotest.(check bool) "byte size positive" true (Entry.byte_size e > 0);
  Alcotest.(check bool) "key parent test" true
    (Entry.key_parent_of
       ~parent:(Entry.make (dn "dc=com") [ (Schema.object_class, Value.Str "node"); ("dc", Value.Str "com") ])
       ~child:e)

let () =
  Alcotest.run "model"
    [
      ( "dn",
        [
          Alcotest.test_case "roundtrip" `Quick test_dn_roundtrip;
          Alcotest.test_case "empty and errors" `Quick test_dn_empty_and_errors;
          Alcotest.test_case "untyped int values" `Quick test_dn_untyped_values;
          Alcotest.test_case "multi-valued rdn sets" `Quick
            test_multi_valued_rdn_normalization;
          Alcotest.test_case "hierarchy predicates" `Quick test_hierarchy_predicates;
          Alcotest.test_case "key injective across value types" `Quick
            test_key_injective_across_types;
        ] );
      ( "order",
        [
          Testkit.qtest ~count:300 "ancestor sorts first" gen_dn
            prop_ancestor_sorts_first;
          Testkit.qtest ~count:300 "ancestor key is a prefix" gen_dn
            prop_ancestor_key_prefix;
          Testkit.qtest ~count:300 "total order"
            (QCheck2.Gen.pair gen_dn gen_dn) prop_order_total;
          Testkit.qtest ~count:300 "subtrees contiguous"
            (QCheck2.Gen.triple gen_dn
               (QCheck2.Gen.map (fun i -> Rdn.single "id" (Value.Int i))
                  (QCheck2.Gen.int_range 0 5))
               (QCheck2.Gen.map (fun i -> Rdn.single "id" (Value.Int i))
                  (QCheck2.Gen.int_range 6 12)))
            prop_subtree_contiguous;
        ] );
      ( "schema",
        [ Alcotest.test_case "declarations" `Quick test_schema_declarations ] );
      ( "instance",
        [
          Alcotest.test_case "violations of Def 3.2" `Quick
            test_validation_violations;
          Alcotest.test_case "duplicate dn" `Quick test_duplicate_dn_rejected;
          Alcotest.test_case "multi-valued attributes" `Quick
            test_multi_valued_attrs;
          Alcotest.test_case "navigation" `Quick test_navigation;
          Alcotest.test_case "generated instances valid" `Quick
            test_generated_instances_valid;
          Alcotest.test_case "generator deterministic" `Quick
            test_generator_deterministic;
          Alcotest.test_case "entry accessors" `Quick test_entry_accessors;
          Alcotest.test_case "standard schema presets" `Quick test_std_schema;
        ] );
    ]
