(* Tests for atomic filters, the query AST, language classification and
   the parser/printer pair (Figures 7-10). *)

(* --- Atomic filters --------------------------------------------------------- *)

let entry attrs = Entry.make (Dn.of_string "id=0") (("id", Value.Int 0) :: attrs)

let test_filter_matching () =
  let e =
    entry
      [
        ("surName", Value.Str "jagadish");
        ("priority", Value.Int 2);
        ("priority", Value.Int 7);
        ("ref", Value.Dn (Dn.of_string "dc=com"));
        (Schema.object_class, Value.Str "person");
      ]
  in
  let t = Alcotest.(check bool) in
  t "presence" true (Afilter.matches (Afilter.Present "surName") e);
  t "absence" false (Afilter.matches (Afilter.Present "ghost") e);
  t "str eq" true (Afilter.matches (Afilter.Str_eq ("surName", "jagadish")) e);
  t "str neq" false (Afilter.matches (Afilter.Str_eq ("surName", "jag")) e);
  (* any value may satisfy the filter: 2 < 5 holds even though 7 doesn't *)
  t "int lt multivalue" true
    (Afilter.matches (Afilter.Int_cmp ("priority", Afilter.Lt, 5)) e);
  t "int gt multivalue" true
    (Afilter.matches (Afilter.Int_cmp ("priority", Afilter.Gt, 5)) e);
  t "int eq fails" false
    (Afilter.matches (Afilter.Int_cmp ("priority", Afilter.Eq, 5)) e);
  t "dn eq" true (Afilter.matches (Afilter.Dn_eq ("ref", Dn.of_string "dc=com")) e);
  (* int filter on a string attribute never matches (typing condition) *)
  t "typed mismatch" false
    (Afilter.matches (Afilter.Int_cmp ("surName", Afilter.Eq, 0)) e)

let test_substring_semantics () =
  let m pat s =
    match Afilter.of_string ("x=" ^ pat) with
    | Afilter.Substr (_, p) -> Afilter.substring_matches p s
    | Afilter.Present _ -> true
    | _ -> Alcotest.failf "expected substring pattern for %s" pat
  in
  let t = Alcotest.(check bool) in
  t "*jag* inside" true (m "*jag*" "hvjagadish");
  t "*jag* miss" false (m "*jag*" "milo");
  t "jag* prefix" true (m "jag*" "jagadish");
  t "jag* not prefix" false (m "jag*" "ajagadish");
  t "*ish suffix" true (m "*ish" "jagadish");
  t "j*d*h ordered" true (m "j*d*h" "jagadish");
  t "j*h*d wrong order" false (m "j*h*d" "jagadish");
  t "no overlap" false (m "ab*ba" "aba");
  t "overlap ok when long enough" true (m "ab*ba" "abba");
  t "star matches empty" true (m "jaga*dish" "jagadish");
  t "bare star" true (m "*" "anything")

let test_filter_roundtrip () =
  List.iter
    (fun s ->
      let f = Afilter.of_string s in
      Alcotest.(check string) s s (Afilter.to_string f))
    [
      "surName=jagadish";
      "telephoneNumber=*";
      "commonName=*jag*";
      "SLARulePriority<3";
      "priority<=3";
      "priority>=3";
      "priority>3";
      "priority=3";
      "ref=dn:dc=att, dc=com";
      "name=jag*ish";
    ]

let test_filter_schema_typing () =
  let sc = Schema.empty () in
  Schema.declare_attr sc "code" Value.T_string;
  (* with a schema, "code=123" is a string comparison, not an int one *)
  (match Afilter.of_string ~schema:sc "code=123" with
  | Afilter.Str_eq ("code", "123") -> ()
  | f -> Alcotest.failf "wrong parse: %s" (Afilter.to_string f));
  (match Afilter.of_string "code=123" with
  | Afilter.Int_cmp ("code", Afilter.Eq, 123) -> ()
  | f -> Alcotest.failf "wrong untyped parse: %s" (Afilter.to_string f))

(* --- Parser / printer roundtrip ---------------------------------------------- *)

let test_paper_queries_parse () =
  (* Every query expression appearing in the paper's running text. *)
  List.iter
    (fun s ->
      match Qparser.of_string_opt s with
      | Some q ->
          (* re-print, re-parse: must be identical *)
          let s' = Qprinter.to_string q in
          (match Qparser.of_string_opt s' with
          | Some q' when q = q' -> ()
          | _ -> Alcotest.failf "reparse failed for %s" s')
      | None -> Alcotest.failf "failed to parse %s" s)
    [
      "(dc=att, dc=com ? sub ? surName=jagadish)";
      "(- (dc=att, dc=com ? sub ? surName=jagadish) (dc=research, dc=att, \
       dc=com ? sub ? surName=jagadish))";
      "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit) (dc=att, \
       dc=com ? sub ? surName=jagadish))";
      "(a (dc=att, dc=com ? sub ? objectClass=trafficProfile) (dc=att, dc=com \
       ? sub ? ou=networkPolicies))";
      "(dc (dc=att, dc=com ? sub ? objectClass=dcObject) (& (dc=att, dc=com ? \
       sub ? sourcePort=25) (dc=att, dc=com ? sub ? \
       objectClass=trafficProfile)) (dc=att, dc=com ? sub ? \
       objectClass=dcObject))";
      "(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules) \
       count(SLAPVPRef) > 1)";
      "(c (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber) (dc=att, dc=com \
       ? sub ? objectClass=QHP) count($2) > 10)";
      "(vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules) (& (dc=att, \
       dc=com ? sub ? sourcePort=25) (dc=att, dc=com ? sub ? \
       objectClass=trafficProfile)) SLATPRef)";
      "(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction) (g (vd (dc=att, \
       dc=com ? sub ? objectClass=SLAPolicyRules) (& (dc=att, dc=com ? sub ? \
       sourcePort=25) (dc=att, dc=com ? sub ? objectClass=trafficProfile)) \
       SLATPRef) min(SLARulePriority) = min(min(SLARulePriority))) \
       SLADSActRef)";
      "( ? base ? objectClass=*)";
      "(p (dc=com ? one ? id=3) (dc=com ? base ? dc=com))";
    ]

let gen_ast =
  let open QCheck2.Gen in
  Testkit.gen_instance >>= fun i -> Testkit.gen_query i

let prop_print_parse_roundtrip q =
  match Qparser.of_string_opt (Qprinter.to_string q) with
  | Some q' -> q = q'
  | None -> false

let test_parse_errors () =
  List.iter
    (fun s ->
      match Qparser.of_string_opt s with
      | None -> ()
      | Some _ -> Alcotest.failf "should not parse: %s" s)
    [
      "";
      "(dc=com ? sub)";
      "(dc=com ? everywhere ? a=1)";
      "(& (dc=com ? sub ? a=1))(junk)";
      "(p (dc=com ? sub ? a=1))";
      "(g (dc=com ? sub ? a=1))";
      "(zz (dc=com ? sub ? a=1) (dc=com ? sub ? a=1))";
      "(g (dc=com ? sub ? a=1) count($2) >)";
    ]

(* --- Language classification --------------------------------------------------- *)

let q s = Qparser.of_string s

let test_levels () =
  let lvl s = Lang.level_to_int (Lang.level (q s)) in
  Alcotest.(check int) "atomic is L0" 0 (lvl "(dc=com ? sub ? a=1)");
  Alcotest.(check int) "boolean is L0" 0
    (lvl "(- (dc=com ? sub ? a=1) (dc=x ? one ? b=2))");
  Alcotest.(check int) "plain hier is L1" 1
    (lvl "(p (dc=com ? sub ? a=1) (dc=com ? sub ? b=2))");
  Alcotest.(check int) "hier agg is L2" 2
    (lvl "(p (dc=com ? sub ? a=1) (dc=com ? sub ? b=2) count($2) > 3)");
  Alcotest.(check int) "g is L2" 2 (lvl "(g (dc=com ? sub ? a=1) count($$) > 3)");
  Alcotest.(check int) "eref is L3" 3
    (lvl "(vd (dc=com ? sub ? a=1) (dc=com ? sub ? b=2) ref)");
  Alcotest.(check int) "nesting takes the max" 3
    (lvl
       "(& (dc=com ? sub ? a=1) (vd (dc=com ? sub ? a=1) (dc=com ? sub ? b=2) \
        ref))")

let test_check_contexts () =
  let ok s = Lang.check (q s) = Ok () in
  Alcotest.(check bool) "count($$) fine under g" true
    (ok "(g (dc=com ? sub ? a=1) count($$) > 3)");
  Alcotest.(check bool) "$2 rejected under g" false
    (ok "(g (dc=com ? sub ? a=1) count($2) > 3)");
  Alcotest.(check bool) "$2.attr rejected under g" false
    (ok "(g (dc=com ? sub ? a=1) min($2.p) > 3)");
  Alcotest.(check bool) "count($$) rejected structurally" false
    (ok "(c (dc=com ? sub ? a=1) (dc=com ? sub ? b=2) count($$) > 3)");
  Alcotest.(check bool) "count($1) fine structurally" true
    (ok "(c (dc=com ? sub ? a=1) (dc=com ? sub ? b=2) count($1) > 3)");
  Alcotest.(check bool) "structural $2 fine" true
    (ok "(c (dc=com ? sub ? a=1) (dc=com ? sub ? b=2) min($2.p) > 3)")

let prop_generated_queries_check (i, qq) =
  ignore i;
  Lang.check qq = Ok ()

let test_size_and_atomic_listing () =
  let query =
    q
      "(p (& (dc=com ? sub ? a=1) (dc=com ? sub ? b=2)) (dc=x ? one ? c=3))"
  in
  Alcotest.(check int) "tree size counts operators and atoms" 5 (Ast.size query);
  Alcotest.(check int) "three atomic subqueries" 3
    (List.length (Ast.atomic_subqueries query))

(* Fuzz: arbitrary input never crashes the parsers — they either parse
   or raise their declared Parse_error. *)
let gen_garbage =
  QCheck2.Gen.(
    oneof
      [
        string_size ~gen:printable (int_range 0 60);
        (* structured-looking garbage is more likely to reach deep code *)
        map
          (fun parts -> String.concat "" parts)
          (list_size (int_range 0 20)
             (oneofl
                [
                  "("; ")"; "?"; "&"; "|"; "-"; "p "; "g "; "vd "; "dc=x";
                  " sub "; "a=1"; "count($2)"; ">"; "min("; "$$"; ","; "=";
                  "*"; " ";
                ]));
      ])

let prop_qparser_total s =
  match Qparser.of_string s with
  | _ -> true
  | exception Qparser.Parse_error _ -> true
  | exception Afilter.Parse_error _ -> true
  | exception Dn.Parse_error _ -> true

let prop_ldap_parser_total s =
  match Ldap.of_string s with
  | _ -> true
  | exception Ldap.Parse_error _ -> true
  | exception Afilter.Parse_error _ -> true
  | exception Dn.Parse_error _ -> true

let prop_dn_parser_total s =
  match Dn.of_string s with
  | _ -> true
  | exception Dn.Parse_error _ -> true

(* Theorem 8.2(d): ac/dc can express p/c (semantically, over instances
   where all ancestors are present). *)
let prop_ac_expresses_p seed =
  let i =
    Dif_gen.generate
      ~params:{ Dif_gen.default_params with seed; size = 80; roots = 1 }
      ()
  in
  let q1 = Ast.atomic Dn.root (Afilter.Str_eq ("tag", "red")) in
  let q2 = Ast.atomic Dn.root (Afilter.Int_cmp ("priority", Afilter.Ge, 3)) in
  let direct = Testkit.oracle i (Ast.parents q1 q2) in
  let rewritten = Testkit.oracle i (Lang.parents_as_ancestors_c q1 q2) in
  List.length direct = List.length rewritten
  && List.for_all2 Entry.equal_dn direct rewritten

let () =
  Alcotest.run "query"
    [
      ( "filters",
        [
          Alcotest.test_case "matching" `Quick test_filter_matching;
          Alcotest.test_case "substring semantics" `Quick test_substring_semantics;
          Alcotest.test_case "roundtrip" `Quick test_filter_roundtrip;
          Alcotest.test_case "schema-aware typing" `Quick test_filter_schema_typing;
        ] );
      ( "parser",
        [
          Alcotest.test_case "paper queries" `Quick test_paper_queries_parse;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Testkit.qtest ~count:400 "print/parse roundtrip" gen_ast
            prop_print_parse_roundtrip;
        ] );
      ( "lang",
        [
          Alcotest.test_case "levels" `Quick test_levels;
          Alcotest.test_case "filter contexts" `Quick test_check_contexts;
          Testkit.qtest ~count:200 "generated queries well-formed"
            Testkit.gen_instance_and_query prop_generated_queries_check;
          Alcotest.test_case "size and atoms" `Quick test_size_and_atomic_listing;
          Testkit.qtest ~count:30 "ac expresses p (Thm 8.2d)"
            (QCheck2.Gen.int_range 0 5_000) prop_ac_expresses_p;
        ] );
      ( "fuzz",
        [
          Testkit.qtest ~count:500 "query parser total" gen_garbage
            prop_qparser_total;
          Testkit.qtest ~count:500 "ldap parser total" gen_garbage
            prop_ldap_parser_total;
          Testkit.qtest ~count:500 "dn parser total" gen_garbage
            prop_dn_parser_total;
        ] );
    ]
