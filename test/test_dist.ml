(* Tests for distributed evaluation (Section 8.3): domain ownership,
   result equivalence with centralized evaluation, and shipping
   accounting. *)

let dn = Dn.of_string

let instance seed =
  Dif_gen.generate
    ~params:{ Dif_gen.default_params with size = 200; seed; roots = 2; depth_bias = 0.4 }
    ()

(* Domains: the two forest roots plus one delegated subdomain inside
   root0 (a deeper entry, picked deterministically). *)
let domains_of i =
  let deep =
    Instance.fold
      (fun best e ->
        let d = Entry.dn e in
        if
          Dn.depth d = 2
          && Dn.is_ancestor_of ~ancestor:(dn "dc=root0") ~descendant:d
        then match best with None -> Some d | some -> some
        else best)
      None i
  in
  [ dn "dc=root0"; dn "dc=root1" ]
  @ (match deep with Some d -> [ d ] | None -> [])

let test_ownership () =
  let i = instance 3 in
  let net = Dist.deploy i (domains_of i) in
  (* every entry lives on exactly one server, and the union is complete *)
  let total =
    List.fold_left (fun n (s : Dist.server) -> n + Instance.size s.Dist.instance)
      0 net.Dist.servers
  in
  Alcotest.(check int) "partition complete" (Instance.size i) total;
  List.iter
    (fun (s : Dist.server) ->
      Instance.iter
        (fun e ->
          let owner = Dist.find_server net (Entry.dn e) in
          Alcotest.(check string) "entry on its owner" s.Dist.name
            owner.Dist.name)
        s.Dist.instance)
    net.Dist.servers

let prop_distributed_matches_oracle (i, q) =
  let domains =
    match Instance.roots i with
    | [] -> [ Dn.root ]
    | roots -> List.map Entry.dn roots
  in
  let net = Dist.deploy i domains in
  let coord = Dist.coordinator net (List.hd domains) in
  let got = Dist.eval_entries coord q in
  let expected = Testkit.oracle i q in
  List.length got = List.length expected
  && List.for_all2 Entry.equal_dn got expected

let test_shipping_accounting () =
  let i = instance 9 in
  let net = Dist.deploy i (domains_of i) in
  let coord = Dist.coordinator net (dn "dc=root0") in
  (* a root-scoped query must touch remote servers *)
  let q = Qparser.of_string "( ? sub ? objectClass=person)" in
  ignore (Dist.eval_entries coord q);
  Alcotest.(check bool) "messages shipped" true (coord.Dist.stats.Io_stats.messages > 0);
  Alcotest.(check bool) "bytes shipped" true
    (coord.Dist.stats.Io_stats.bytes_shipped > 0);
  (* a query confined to the home domain (no delegated subdomains below
     dc=root1) ships nothing *)
  let coord1 = Dist.coordinator net (dn "dc=root1") in
  let local = Qparser.of_string "(dc=root1 ? sub ? objectClass=person)" in
  ignore (Dist.eval_entries coord1 local);
  Alcotest.(check int) "local query ships nothing" 0
    coord1.Dist.stats.Io_stats.messages

let test_remote_query_and_combine () =
  let i = instance 11 in
  let net = Dist.deploy i (domains_of i) in
  let coord = Dist.coordinator net (dn "dc=root0") in
  (* operands on different servers, combined at the coordinator *)
  let q =
    Qparser.of_string
      "(| (dc=root0 ? sub ? objectClass=person) (dc=root1 ? sub ? \
       objectClass=person))"
  in
  let got = Dist.eval_entries coord q in
  let expected = Testkit.oracle i q in
  Testkit.check_entries "cross-server union" expected got;
  Alcotest.(check bool) "remote operand shipped" true
    (coord.Dist.stats.Io_stats.messages >= 2)

let test_scope_across_delegation () =
  (* A one-scope (children) query whose base sits just above a delegated
     subdomain: the children inside the delegation live on another
     server, and must still be found. *)
  let i = instance 21 in
  let domains = domains_of i in
  match List.filter (fun d -> Dn.depth d = 2) domains with
  | [] -> ()  (* no delegation in this seed; nothing to test *)
  | delegated :: _ ->
      let net = Dist.deploy i domains in
      let parent = Option.get (Dn.parent delegated) in
      let coord = Dist.coordinator net (dn "dc=root1") in
      let q =
        Ast.Atomic
          { Ast.base = parent; scope = Ast.One;
            filter = Afilter.Present Schema.object_class }
      in
      let got = Dist.eval_entries coord q in
      let expected = Testkit.oracle i q in
      Testkit.check_entries "children across the boundary" expected got;
      Alcotest.(check bool) "the delegated root is among them" true
        (List.exists (fun e -> Dn.equal (Entry.dn e) delegated) got)

let test_deploy_validation () =
  let i = instance 1 in
  Alcotest.check_raises "no domains" (Invalid_argument "Dist.deploy: no domains")
    (fun () -> ignore (Dist.deploy i []))

(* --- Replication (Section 3.3, footnote 4) ------------------------------- *)

let repl_net seed =
  let i = instance seed in
  (Replicated.deploy ~secondaries:2 i (domains_of i), i)

let fresh_entry uid =
  Entry.make
    (Dn.of_string (Printf.sprintf "id=%d, dc=root0" uid))
    [ ("id", Value.Int uid); ("surName", Value.Str "newcomer");
      (Schema.object_class, Value.Str "person") ]

let ok = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Directory.pp_error e

let count_newcomers eng =
  List.length
    (Engine.eval_entries eng (Qparser.of_string "( ? sub ? surName=newcomer)"))

let test_replication_lag_and_catchup () =
  let net, _ = repl_net 31 in
  ok (Replicated.update net (Replicated.Add (fresh_entry 900001)));
  ok (Replicated.update net (Replicated.Add (fresh_entry 900002)));
  (* visible at the primary immediately *)
  let primary_eng = Replicated.engine net (dn "dc=root0") in
  Alcotest.(check int) "primary sees both" 2 (count_newcomers primary_eng);
  (* secondaries lag until replication runs *)
  let sec_eng = Replicated.engine ~prefer:Replicated.Any_secondary net (dn "dc=root0") in
  Alcotest.(check int) "secondary stale" 0 (count_newcomers sec_eng);
  Alcotest.(check int) "lag = 2" 2 (Replicated.max_lag net);
  Alcotest.(check bool) "inconsistent while lagging" false
    (Replicated.consistent net);
  let msgs_before = net.Replicated.stats.Io_stats.messages in
  Replicated.replicate net;
  (* 2 updates x 2 secondaries of the root0 group *)
  Alcotest.(check int) "replication messages" 4
    (net.Replicated.stats.Io_stats.messages - msgs_before);
  Alcotest.(check int) "lag cleared" 0 (Replicated.max_lag net);
  Alcotest.(check bool) "consistent after replicate" true
    (Replicated.consistent net);
  let sec_eng = Replicated.engine ~prefer:Replicated.Any_secondary net (dn "dc=root0") in
  Alcotest.(check int) "secondary caught up" 2 (count_newcomers sec_eng)

let test_update_routing_and_validation () =
  let net, _ = repl_net 32 in
  (* updates go to the owning group: a root1 entry does not appear in
     root0's partition *)
  let e =
    Entry.make
      (Dn.of_string "id=900005, dc=root1")
      [ ("id", Value.Int 900005); ("surName", Value.Str "newcomer");
        (Schema.object_class, Value.Str "person") ]
  in
  ok (Replicated.update net (Replicated.Add e));
  let g0 = Replicated.group_of net (dn "dc=root0") in
  let g1 = Replicated.group_of net (dn "dc=root1") in
  Alcotest.(check int) "root0 log untouched" 0 g0.Replicated.log_length;
  Alcotest.(check int) "root1 logged" 1 g1.Replicated.log_length;
  (* schema violations are rejected at the primary and never logged *)
  (match
     Replicated.update net
       (Replicated.Add
          (Entry.make
             (Dn.of_string "id=900009, dc=root1")
             [ ("id", Value.Int 900009); ("ghost", Value.Str "boo");
               (Schema.object_class, Value.Str "person") ]))
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "invalid add must be rejected");
  Alcotest.(check int) "rejected update not logged" 1 g1.Replicated.log_length;
  (* modify and delete route the same way *)
  ok
    (Replicated.update net
       (Replicated.Modify
          (Entry.dn e, [ Directory.Add_value ("priority", Value.Int 4) ])));
  ok (Replicated.update net (Replicated.Delete (Entry.dn e)));
  Replicated.replicate net;
  Alcotest.(check bool) "consistent at the end" true (Replicated.consistent net)

let test_failover_loses_unreplicated_suffix () =
  let net, _ = repl_net 33 in
  ok (Replicated.update net (Replicated.Add (fresh_entry 900011)));
  Replicated.replicate net;
  ok (Replicated.update net (Replicated.Add (fresh_entry 900012)));
  ok (Replicated.update net (Replicated.Add (fresh_entry 900013)));
  (* primary dies before replicating the last two updates *)
  let lost = Replicated.fail_primary net (dn "dc=root0") in
  Alcotest.(check int) "two updates lost" 2 lost;
  let eng = Replicated.engine net (dn "dc=root0") in
  Alcotest.(check int) "promoted replica has only the replicated one" 1
    (count_newcomers eng);
  (* the group keeps serving reads and updates after failover *)
  ok (Replicated.update net (Replicated.Add (fresh_entry 900014)));
  Replicated.replicate net;
  Alcotest.(check bool) "consistent after failover + new update" true
    (Replicated.consistent net);
  (* exhausting secondaries raises *)
  let _ = Replicated.fail_primary net (dn "dc=root0") in
  (match Replicated.fail_primary net (dn "dc=root0") with
  | exception Replicated.No_secondary _ -> ()
  | _ -> Alcotest.fail "expected No_secondary")

let () =
  Alcotest.run "dist"
    [
      ( "deployment",
        [
          Alcotest.test_case "ownership partition" `Quick test_ownership;
          Alcotest.test_case "validation" `Quick test_deploy_validation;
        ] );
      ( "evaluation",
        [
          Testkit.qtest ~count:150 "distributed = centralized"
            Testkit.gen_instance_and_query prop_distributed_matches_oracle;
          Alcotest.test_case "shipping accounted" `Quick test_shipping_accounting;
          Alcotest.test_case "cross-server combine" `Quick
            test_remote_query_and_combine;
          Alcotest.test_case "one-scope across delegation" `Quick
            test_scope_across_delegation;
        ] );
      ( "replication",
        [
          Alcotest.test_case "lag and catch-up" `Quick
            test_replication_lag_and_catchup;
          Alcotest.test_case "routing and validation" `Quick
            test_update_routing_and_validation;
          Alcotest.test_case "failover semantics" `Quick
            test_failover_loses_unreplicated_suffix;
        ] );
    ]
