(* The serving front-end: differential concurrency against the
   single-threaded semantics oracle, both protocol faces, admission
   shedding and deadline expiry. *)

let mk_instance ?(size = 300) ?(seed = 11) () =
  Dif_gen.generate
    ~params:{ Dif_gen.default_params with seed; size }
    ()

let start_srv ?registry ?(workers = 4) ?(queue = 64) ?deadline_ms instance =
  Srv.start ?registry ~workers ~queue ?deadline_ms
    ~make_engine:(fun () -> Engine.create ~block:32 instance)
    ()

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let with_srv ?registry ?workers ?queue ?deadline_ms instance f =
  let srv = start_srv ?registry ?workers ?queue ?deadline_ms instance in
  Fun.protect ~finally:(fun () -> Srv.stop srv) (fun () -> f srv)

(* N client threads, each its own connection, racing distinct query
   streams through a shared worker pool: every reply must equal the
   single-threaded oracle, rows in canonical order. *)
let test_differential_concurrency () =
  let instance = mk_instance () in
  let n_clients = 8 and per_client = 25 in
  let asts =
    Query_mix.generate_ast ~seed:42 ~count:(n_clients * per_client) instance
  in
  with_srv instance (fun srv ->
      let port = Srv.port srv in
      let failures = ref [] in
      let fmu = Mutex.create () in
      let client c =
        let conn = Srv_client.connect ~port () in
        Fun.protect
          ~finally:(fun () -> Srv_client.close conn)
          (fun () ->
            for i = 0 to per_client - 1 do
              let k = (c * per_client) + i in
              let ast = asts.(k) in
              let text = Qprinter.to_string ast in
              let reply = Srv_client.query conn text in
              let expected = Testkit.dns_of (Testkit.oracle instance ast) in
              let ok =
                reply.Srv_client.status = Srv_client.Ok
                && reply.Srv_client.rows = expected
              in
              if not ok then begin
                Mutex.lock fmu;
                failures := (k, text) :: !failures;
                Mutex.unlock fmu
              end
            done)
      in
      let threads = List.init n_clients (fun c -> Thread.create client c) in
      List.iter Thread.join threads;
      (match !failures with
      | [] -> ()
      | (k, text) :: _ ->
          Alcotest.failf "%d replies diverged from the oracle; first: #%d %s"
            (List.length !failures) k text);
      Alcotest.(check int) "no sessions linger" 0 (Srv.session_count srv))

(* The HTTP face: index, liveness, query streaming (GET and POST),
   parse errors, unknown routes, missing parameters. *)
let test_http_routes () =
  let instance = mk_instance () in
  with_srv instance (fun srv ->
      let port = Srv.port srv in
      let get path = Monitor.request ~port path in
      let status, _, body = get "/" in
      Alcotest.(check int) "index status" 200 status;
      Alcotest.(check bool) "index mentions /query" true
        (contains ~affix:"/query" body);
      let status, _, body = get "/healthz" in
      Alcotest.(check int) "healthz status" 200 status;
      (match Json.member "queue_depth" (Json.of_string body) with
      | Json.Num _ -> ()
      | _ -> Alcotest.fail "healthz carries queue_depth");
      let q = "( ? sub ? id=* )" in
      let enc =
        String.concat ""
          (List.map
             (fun c ->
               match c with
               | ' ' -> "%20"
               | '?' -> "%3F"
               | '=' -> "%3D"
               | '*' -> "%2A"
               | c -> String.make 1 c)
             (List.of_seq (String.to_seq q)))
      in
      let status, headers, body = get ("/query?q=" ^ enc) in
      Alcotest.(check int) "GET /query status" 200 status;
      Alcotest.(check bool) "streamed (no Content-Length)" false
        (List.mem_assoc "content-length" headers);
      Alcotest.(check bool) "GET trailer ok" true
        (contains ~affix:"# status=ok" body);
      let n_rows =
        List.length
          (List.filter
             (fun l -> l <> "" && l.[0] <> '#')
             (String.split_on_char '\n' body))
      in
      let expected =
        List.length
          (Testkit.oracle instance
             (Ast.Atomic
                {
                  Ast.base = Dn.root;
                  scope = Ast.Sub;
                  filter = Afilter.Present "id";
                }))
      in
      Alcotest.(check int) "GET /query row count" expected n_rows;
      let status, _, body = Monitor.request ~meth:"POST" ~body:q ~port "/query" in
      Alcotest.(check int) "POST /query status" 200 status;
      Alcotest.(check bool) "POST trailer ok" true
        (contains ~affix:"# status=ok" body);
      let status, _, body = get "/query?q=%28%20nonsense" in
      Alcotest.(check int) "parse error is a 400" 400 status;
      Alcotest.(check bool) "parse error trailer" true
        (contains ~affix:"# status=error" body);
      let status, _, _ = get "/nope" in
      Alcotest.(check int) "unknown route" 404 status;
      let status, _, _ = get "/query" in
      Alcotest.(check int) "missing q" 400 status)

(* A 1-worker / 1-slot server under a burst of concurrent heavy
   queries must shed — Busy with a retry hint — and the shed counter
   must move.  Retries until the race lands (each round sends 12
   concurrent requests at a queue of 1). *)
let test_shed_backpressure () =
  let instance = mk_instance ~size:800 () in
  let registry = Metrics.create () in
  with_srv ~registry ~workers:1 ~queue:1 instance (fun srv ->
      let port = Srv.port srv in
      let heavy = "( d ( ? sub ? id=* ) ( ? sub ? id=* ) )" in
      let busy = ref 0 and retry_ms = ref 0 in
      let bmu = Mutex.create () in
      let rounds = ref 0 in
      while !busy = 0 && !rounds < 5 do
        incr rounds;
        let one () =
          match Srv_client.connect ~port () with
          | exception _ -> ()
          | conn ->
              (match Srv_client.query conn heavy with
              | { Srv_client.status = Srv_client.Busy ms; _ } ->
                  Mutex.lock bmu;
                  incr busy;
                  retry_ms := ms;
                  Mutex.unlock bmu
              | _ | (exception Srv_client.Disconnected) -> ());
              Srv_client.close conn
        in
        let threads = List.init 12 (fun _ -> Thread.create one ()) in
        List.iter Thread.join threads
      done;
      Alcotest.(check bool) "some requests shed" true (!busy > 0);
      Alcotest.(check bool) "retry hint positive" true (!retry_ms > 0);
      Alcotest.(check bool) "queue stayed bounded" true
        (Srv.queue_depth srv <= Srv.queue_capacity srv))

(* A 1 ms session deadline against a heavy diff on a big instance:
   the reply must come back status=deadline (with however many rows
   made it out before the budget died). *)
let test_deadline_expiry () =
  let instance = mk_instance ~size:3000 ~seed:5 () in
  with_srv instance (fun srv ->
      let conn = Srv_client.connect ~port:(Srv.port srv) () in
      Fun.protect
        ~finally:(fun () -> Srv_client.close conn)
        (fun () ->
          Alcotest.(check bool) "DEADLINE acknowledged" true
            (Srv_client.set_deadline_ms conn 1);
          let heavy = "( d ( ? sub ? id=* ) ( ? sub ? id=* ) )" in
          let expired = ref false in
          for _ = 1 to 3 do
            match Srv_client.query conn heavy with
            | { Srv_client.status = Srv_client.Deadline; _ } -> expired := true
            | _ -> ()
          done;
          Alcotest.(check bool) "budget expired at least once" true !expired))

(* PING / DEADLINE handshake and a clean QUIT. *)
let test_line_protocol_controls () =
  let instance = mk_instance ~size:50 () in
  with_srv instance (fun srv ->
      let conn = Srv_client.connect ~port:(Srv.port srv) () in
      Alcotest.(check bool) "PING answers PONG" true (Srv_client.ping conn);
      Alcotest.(check bool) "DEADLINE 5000 ok" true
        (Srv_client.set_deadline_ms conn 5000);
      let reply = Srv_client.query conn "( ? sub ? id=* )" in
      Alcotest.(check bool) "query after controls" true
        (reply.Srv_client.status = Srv_client.Ok);
      Srv_client.close conn)

let () =
  Alcotest.run "srv"
    [
      ( "differential",
        [
          Alcotest.test_case "concurrent clients match oracle" `Quick
            test_differential_concurrency;
        ] );
      ( "http",
        [ Alcotest.test_case "routes and streaming" `Quick test_http_routes ] );
      ( "backpressure",
        [
          Alcotest.test_case "full queue sheds" `Quick test_shed_backpressure;
          Alcotest.test_case "deadline expiry" `Quick test_deadline_expiry;
        ] );
      ( "line-protocol",
        [
          Alcotest.test_case "control verbs" `Quick
            test_line_protocol_controls;
        ] );
    ]
