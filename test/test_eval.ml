(* Differential tests: the external-memory algorithms against the
   reference semantics (Definitions 4.1, 5.1, 6.1, 6.2, 7.1), on both
   hand-built and randomly generated directories and queries.

   This is the central correctness argument of the reproduction: for any
   query in L3 and any instance, Engine.eval must produce exactly the
   entry set the denotational semantics prescribes, in canonical order. *)

let dn = Dn.of_string

(* A small hand-built directory mirroring the shape of Figure 1. *)
let tiny () =
  let sc = Dif_gen.schema () in
  let e d attrs = Entry.make (dn d) attrs in
  let oc c = (Schema.object_class, Value.Str c) in
  Instance.of_entries sc
    [
      e "dc=com" [ ("dc", Value.Str "com"); oc "dcObject" ];
      e "dc=att, dc=com" [ ("dc", Value.Str "att"); oc "dcObject" ];
      e "dc=research, dc=att, dc=com"
        [ ("dc", Value.Str "research"); oc "dcObject" ];
      e "ou=people, dc=att, dc=com"
        [ ("ou", Value.Str "people"); oc "organizationalUnit" ];
      e "id=1, ou=people, dc=att, dc=com"
        [
          ("id", Value.Int 1);
          ("surName", Value.Str "jagadish");
          ("priority", Value.Int 2);
          oc "person";
        ];
      e "id=2, ou=people, dc=att, dc=com"
        [
          ("id", Value.Int 2);
          ("surName", Value.Str "srivastava");
          ("priority", Value.Int 1);
          oc "person";
        ];
      e "ou=people, dc=research, dc=att, dc=com"
        [ ("ou", Value.Str "people"); oc "organizationalUnit" ];
      e "id=3, ou=people, dc=research, dc=att, dc=com"
        [
          ("id", Value.Int 3);
          ("surName", Value.Str "jagadish");
          ("priority", Value.Int 5);
          oc "person";
        ];
    ]

let run_both ?algorithms instance q =
  let eng = Testkit.engine ?algorithms instance in
  let actual = Engine.eval_entries eng q in
  let expected = Testkit.oracle instance q in
  (expected, actual)

let check_query ?algorithms instance q =
  let expected, actual = run_both ?algorithms instance q in
  Testkit.check_entries (Qprinter.to_string q) expected actual

(* --- Hand-written cases ------------------------------------------------- *)

let test_atomic_scopes () =
  let i = tiny () in
  let q scope base filter =
    Ast.Atomic { Ast.base = dn base; scope; filter }
  in
  (* sub finds both jagadish entries *)
  let expected, actual =
    run_both i (q Ast.Sub "dc=com" (Afilter.Str_eq ("surName", "jagadish")))
  in
  Alcotest.(check int) "two jagadish entries" 2 (List.length actual);
  Testkit.check_entries "sub scope" expected actual;
  (* base scope matches only the base *)
  check_query i (q Ast.Base "dc=att, dc=com" (Afilter.Present "dc"));
  (* one scope includes the base and its children *)
  check_query i (q Ast.One "dc=att, dc=com" (Afilter.Present Schema.object_class));
  (* base that is not an entry *)
  check_query i (q Ast.Sub "dc=nosuch" (Afilter.Present "dc"))

let test_example_4_1 () =
  (* Example 4.1: jagadish in AT&T except Research. *)
  let i = tiny () in
  let q =
    Qparser.of_string
      "(- (dc=att, dc=com ? sub ? surName=jagadish) (dc=research, dc=att, \
       dc=com ? sub ? surName=jagadish))"
  in
  let expected, actual = run_both i q in
  Testkit.check_entries "example 4.1" expected actual;
  Alcotest.(check (list string))
    "only the non-research entry"
    [ "id=1, ou=people, dc=att, dc=com" ]
    (Testkit.dns_of actual)

let test_example_5_1 () =
  (* Example 5.1: organizational units directly containing a jagadish. *)
  let i = tiny () in
  let q =
    Qparser.of_string
      "(c (dc=com ? sub ? objectClass=organizationalUnit) (dc=com ? sub ? \
       surName=jagadish))"
  in
  let expected, actual = run_both i q in
  Testkit.check_entries "example 5.1" expected actual;
  Alcotest.(check int) "both ou=people qualify" 2 (List.length actual)

let test_hier_operators () =
  let i = tiny () in
  let all = "(dc=com ? sub ? objectClass=*)" in
  let people = "(dc=com ? sub ? objectClass=person)" in
  let ous = "(dc=com ? sub ? objectClass=organizationalUnit)" in
  let dcs = "(dc=com ? sub ? objectClass=dcObject)" in
  List.iter
    (fun s -> check_query i (Qparser.of_string s))
    [
      Printf.sprintf "(p %s %s)" people ous;
      Printf.sprintf "(c %s %s)" ous people;
      Printf.sprintf "(a %s %s)" people dcs;
      Printf.sprintf "(d %s %s)" dcs people;
      Printf.sprintf "(ac %s %s %s)" people dcs ous;
      Printf.sprintf "(dc %s %s %s)" dcs people ous;
      Printf.sprintf "(ac %s %s %s)" people dcs dcs;
      Printf.sprintf "(dc %s %s %s)" dcs people all;
    ]

let test_closest_ancestor_blocking () =
  (* dc-entries with a person descendant not below an intervening dc:
     research blocks att for id=3. *)
  let i = tiny () in
  let q =
    Qparser.of_string
      "(dc (dc=com ? sub ? objectClass=dcObject) (dc=com ? sub ? \
       objectClass=person) (dc=com ? sub ? objectClass=dcObject))"
  in
  let expected, actual = run_both i q in
  Testkit.check_entries "dc blocking" expected actual;
  (* att has id=1/2 via ou=people (no dc between); research has id=3;
     com has no person without att in between. *)
  Alcotest.(check (list string))
    "att and research, not com"
    [ "dc=att, dc=com"; "dc=research, dc=att, dc=com" ]
    (Testkit.dns_of actual)

let test_simple_agg () =
  let i = tiny () in
  List.iter
    (fun s -> check_query i (Qparser.of_string s))
    [
      "(g (dc=com ? sub ? objectClass=person) min(priority) < 3)";
      "(g (dc=com ? sub ? objectClass=person) count($$) >= 3)";
      "(g (dc=com ? sub ? objectClass=person) min(priority) = \
       min(min(priority)))";
      "(g (dc=com ? sub ? objectClass=person) average(priority) > 2)";
      "(g (dc=com ? sub ? objectClass=person) sum(priority) <= \
       max(max(priority)))";
    ]

let test_structural_agg () =
  let i = tiny () in
  let ous = "(dc=com ? sub ? objectClass=organizationalUnit)" in
  let people = "(dc=com ? sub ? objectClass=person)" in
  List.iter
    (fun s -> check_query i (Qparser.of_string s))
    [
      Printf.sprintf "(c %s %s count($2) > 1)" ous people;
      Printf.sprintf "(c %s %s count($2) = max(count($2)))" ous people;
      Printf.sprintf "(c %s %s min($2.priority) <= 2)" ous people;
      Printf.sprintf "(a %s %s sum($2.priority) > min($1.priority))" people ous;
      Printf.sprintf "(d (dc=com ? sub ? objectClass=dcObject) %s \
                      average($2.priority) >= 2)" people;
    ]

let test_eref () =
  (* Build a directory where nodes reference each other. *)
  let i =
    Dif_gen.generate
      ~params:{ Dif_gen.default_params with size = 60; seed = 7; ref_fanout = 3 }
      ()
  in
  let nodes = "( ? sub ? objectClass=node)" in
  let all = "( ? sub ? objectClass=*)" in
  List.iter
    (fun s -> check_query i (Qparser.of_string s))
    [
      Printf.sprintf "(vd %s %s ref)" nodes all;
      Printf.sprintf "(dv %s %s ref)" all nodes;
      Printf.sprintf "(vd %s %s ref count($2) >= 2)" nodes all;
      Printf.sprintf "(dv %s %s ref count($2) = max(count($2)))" all nodes;
      Printf.sprintf "(dv %s %s ref min($2.priority) <= 3)" all nodes;
    ]

let test_example_7_1_shape () =
  (* The composed query of Example 7.1: dv over a g over a vd. *)
  let i =
    Dif_gen.generate
      ~params:{ Dif_gen.default_params with size = 80; seed = 11; ref_fanout = 2 }
      ()
  in
  let q =
    Qparser.of_string
      "(dv ( ? sub ? objectClass=node) (g (vd ( ? sub ? objectClass=node) ( ? \
       sub ? priority>=5) ref) min(priority) = min(min(priority))) ref)"
  in
  check_query i q

(* Paged results: concatenating all pages reproduces the full result,
   for any page size, and the cookie chain terminates. *)
let prop_paging_reassembles (instance, q) =
  let eng = Testkit.engine instance in
  let full = Engine.eval_entries eng q in
  List.for_all
    (fun page_size ->
      let rec collect acc cookie guard =
        if guard > 500 then acc  (* cookie chain must terminate *)
        else
          let page = Engine.eval_paged eng ~page_size ?cookie q in
          let acc = acc @ page.Engine.entries in
          match page.Engine.cookie with
          | None -> acc
          | Some _ when page.Engine.entries = [] -> acc
          | Some _ -> collect acc page.Engine.cookie (guard + 1)
      in
      let paged = collect [] None 0 in
      List.length paged = List.length full
      && List.for_all2 Entry.equal_dn paged full
      && List.for_all
           (fun p -> List.length p.Engine.entries <= page_size)
           [ Engine.eval_paged eng ~page_size q ])
    [ 1; 3; 7; 1000 ]

(* A mixed soak: interleaved updates, queries, paging and re-indexing
   keep engine results equal to the oracle and the directory valid. *)
let test_update_query_soak () =
  let base =
    Dif_gen.generate
      ~params:{ Dif_gen.default_params with size = 120; seed = 91; roots = 1 }
      ()
  in
  let d = Directory.create base in
  let rng = Prng.create 77 in
  let queries =
    List.map Qparser.of_string
      [
        "( ? sub ? objectClass=person)";
        "(c ( ? sub ? objectClass=organizationalUnit) ( ? sub ? priority>=5))";
        "(g ( ? sub ? objectClass=node) min(priority) = min(min(priority)))";
        "(vd ( ? sub ? objectClass=node) ( ? sub ? priority<=3) ref)";
      ]
  in
  for step = 1 to 60 do
    (* random mutation *)
    let entries = Instance.to_list (Directory.instance d) in
    let pick () = List.nth entries (Prng.int rng (List.length entries)) in
    (match Prng.int rng 4 with
    | 0 ->
        let parent = pick () in
        ignore
          (Directory.add d
             (Entry.make
                (Dn.child (Entry.dn parent)
                   (Rdn.single "id" (Value.Int (10_000 + step))))
                [
                  ("id", Value.Int (10_000 + step));
                  ("priority", Value.Int (Prng.int rng 10));
                  (Schema.object_class, Value.Str "person");
                ]))
    | 1 -> ignore (Directory.delete d (Entry.dn (pick ())))
    | 2 ->
        ignore
          (Directory.modify d
             (Entry.dn (pick ()))
             [ Directory.Add_value ("priority", Value.Int (Prng.int rng 10)) ])
    | _ -> ignore (Directory.delete ~subtree:true d (Entry.dn (pick ()))));
    (* the directory never leaves the model *)
    Alcotest.(check int)
      (Printf.sprintf "valid after step %d" step)
      0
      (List.length (Directory.validate d));
    (* a fresh engine agrees with the oracle on every query *)
    if step mod 10 = 0 then begin
      let eng = Testkit.engine (Directory.instance d) in
      List.iter
        (fun q ->
          Testkit.check_entries
            (Printf.sprintf "step %d: %s" step (Qprinter.to_string q))
            (Testkit.oracle (Directory.instance d) q)
            (Engine.eval_entries eng q))
        queries
    end
  done

(* --- Randomized differential property ----------------------------------- *)

let prop_engine_matches_oracle (instance, q) =
  let expected = Testkit.oracle instance q in
  let eng = Testkit.engine instance in
  let actual = Engine.eval_entries eng q in
  if
    List.length expected = List.length actual
    && List.for_all2 Entry.equal_dn expected actual
  then true
  else
    QCheck2.Test.fail_reportf
      "query %s@.expected: %a@.actual:   %a"
      (Qprinter.to_string q)
      Fmt.(list ~sep:comma string)
      (Testkit.dns_of expected)
      Fmt.(list ~sep:comma string)
      (Testkit.dns_of actual)

let prop_naive_matches_oracle (instance, q) =
  let expected = Testkit.oracle instance q in
  let eng = Testkit.engine ~algorithms:Engine.Naive_nested_loop instance in
  let actual = List.sort Entry.compare_rev (Engine.eval_entries eng q) in
  List.length expected = List.length actual
  && List.for_all2 Entry.equal_dn expected actual

let prop_no_index_matches (instance, q) =
  let expected = Testkit.oracle instance q in
  let eng = Testkit.engine ~with_attr_index:false instance in
  let actual = Engine.eval_entries eng q in
  List.length expected = List.length actual
  && List.for_all2 Entry.equal_dn expected actual

let prop_cached_engine_matches (instance, q) =
  let expected = Testkit.oracle instance q in
  let eng = Engine.create ~block:8 ~cache_pages:16 instance in
  (* run twice: the warm run must agree too *)
  ignore (Engine.eval_entries eng q);
  let actual = Engine.eval_entries eng q in
  List.length expected = List.length actual
  && List.for_all2 Entry.equal_dn expected actual

let prop_output_sorted (instance, q) =
  let eng = Testkit.engine instance in
  let actual = Engine.eval_entries eng q in
  let rec sorted = function
    | a :: (b :: _ as rest) -> Entry.compare_rev a b < 0 && sorted rest
    | [ _ ] | [] -> true
  in
  sorted actual

(* Results are sub-instances: closure property (Section 4.1). *)
let prop_er_hash_matches_oracle (instance, q) =
  (* only eref nodes differ; rewrite evaluation to use the hash variant
     by comparing on whole eref queries drawn from the generator *)
  match q with
  | Ast.Eref (op, q1, q2, attr, agg) ->
      let eng = Testkit.engine instance in
      let l1 = Engine.eval eng q1 and l2 = Engine.eval eng q2 in
      let merge = Ext_list.to_list (Er.compute ?agg op l1 l2 attr) in
      let hash = Ext_list.to_list (Er_hash.compute ?agg op l1 l2 attr) in
      List.length merge = List.length hash
      && List.for_all2 Entry.equal_dn merge hash
  | _ -> true

let prop_fused_matches_oracle (instance, q) =
  let expected = Testkit.oracle instance q in
  let eng = Testkit.engine instance in
  let actual = Fuse.eval_entries eng q in
  List.length expected = List.length actual
  && List.for_all2 Entry.equal_dn expected actual

let prop_fusion_never_more_scans (instance, q) =
  ignore instance;
  Fuse.scan_count (Fuse.plan_of q) <= List.length (Ast.atomic_subqueries q)

let prop_closure (instance, q) =
  let eng = Testkit.engine instance in
  let result = Engine.eval_instance eng q in
  Instance.validate result = []
  && Instance.fold
       (fun ok e -> ok && Instance.mem instance (Entry.dn e))
       true result

(* --- Cost-based planner --------------------------------------------------- *)

(* Every access-path policy — cost-based, both forced baselines, and
   the legacy unconditional-index mode — must produce exactly the
   oracle's result: the planner may only change costs, never answers. *)
let prop_planner_modes_match_oracle (instance, q) =
  let expected = Testkit.oracle instance q in
  List.for_all
    (fun planner ->
      let eng = Testkit.engine ~planner instance in
      let actual = Engine.eval_entries eng q in
      List.length expected = List.length actual
      && List.for_all2 Entry.equal_dn expected actual)
    Engine.[ Auto; Force_index; Force_scan; Off ]

(* A calibrated planner is still exact: feed a store from the engine's
   own journal stream (the self-tuning loop), then re-evaluate with the
   bias corrections live. *)
let prop_calibrated_planner_matches (instance, q) =
  let path = Filename.temp_file "ndq_caltest" ".jsonl" in
  Qlog.enable ~append:false path;
  let store = Planstats.create ~metrics:false () in
  Planstats.attach store;
  Fun.protect
    ~finally:(fun () ->
      Planstats.detach store;
      Qlog.disable ();
      Sys.remove path)
    (fun () ->
      let eng = Testkit.engine ~planner:Engine.Auto instance in
      ignore (Engine.eval_entries eng q);
      Engine.set_calibration eng (Some store);
      let expected = Testkit.oracle instance q in
      let actual = Engine.eval_entries eng q in
      List.length expected = List.length actual
      && List.for_all2 Entry.equal_dn expected actual)

(* The cost-based pick never reads meaningfully more pages than the
   best forced alternative actually costs: the estimate slack (probe
   exactness, the collect proxy, the scope-overlap guess) is bounded,
   so a generous envelope of 2x + 6 pages catches any gross
   mis-selection while tolerating honest estimation error. *)
let prop_chosen_path_read_bound (instance, q) =
  let measure planner =
    let eng = Testkit.engine ~planner instance in
    ignore (Engine.eval_entries eng q);
    (Engine.stats eng).Io_stats.page_reads
  in
  let auto = measure Engine.Auto in
  let best = min (measure Engine.Force_index) (measure Engine.Force_scan) in
  auto <= (2 * best) + 6

(* A cached sub-result is an access path: once ( ? sub ? tag=even) is
   in the result cache, the planner serves it from there inside a
   bigger tree, and the answer still matches the oracle. *)
let test_planner_cache_path () =
  let instance = Dif_gen.karily ~fanout:2 ~size:128 () in
  let cache = Cache.create ~admit_min_io:1 () in
  let eng = Engine.create ~block:8 ~result_cache:cache instance in
  let q1 = Qparser.of_string "( ? sub ? tag=even)" in
  ignore (Engine.eval_entries eng q1);
  let q = Qparser.of_string "(& ( ? sub ? tag=even) ( ? sub ? priority>=1))" in
  let actual = Engine.eval_entries eng q in
  Testkit.check_entries "cache-path result = oracle"
    (Testkit.oracle instance q) actual;
  let _, _, cached = Engine.path_counts eng in
  Alcotest.(check bool) "the cache path served an atomic" true (cached > 0)

(* The staleness satellite: a directory-watched engine rebuilds its
   indexes after an update, so a query through the index path sees the
   new value. *)
let test_watched_engine_sees_updates () =
  let d = Directory.create (Dif_gen.karily ~fanout:2 ~size:32 ()) in
  let eng = Engine.create ~block:8 ~directory:d (Directory.instance d) in
  let q = Qparser.of_string "( ? sub ? tag=fresh)" in
  Alcotest.(check int) "no fresh tag yet" 0
    (List.length (Engine.eval_entries eng q));
  let victim =
    match Engine.eval_entries eng (Qparser.of_string "( ? sub ? id=5)") with
    | [ e ] -> Entry.dn e
    | _ -> Alcotest.fail "expected exactly one id=5"
  in
  (match
     Directory.modify d victim [ Directory.Replace ("tag", [ Value.Str "fresh" ]) ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "modify: %a" Directory.pp_error e);
  (match Engine.eval_entries eng q with
  | [ e ] ->
      Alcotest.(check bool) "the updated entry" true (Dn.equal (Entry.dn e) victim)
  | es -> Alcotest.failf "expected 1 fresh entry after update, got %d" (List.length es));
  (* and the other direction: the old value is gone from the index *)
  Alcotest.(check int) "old even/odd tag dropped" 0
    (List.length
       (Engine.eval_entries eng
          (Qparser.of_string "(& ( ? sub ? id=5) ( ? sub ? tag=odd))")))

(* :explain's contract: an estimated plan renders the chosen access
   path and the rejected alternatives with the costs that lost. *)
let test_explain_shows_paths () =
  let instance = Dif_gen.karily ~fanout:2 ~size:64 () in
  let eng = Engine.create ~block:8 instance in
  let plan = Explain.estimate eng (Qparser.of_string "( ? sub ? priority>=3)") in
  let text = Plan.to_string plan in
  let contains needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "prints the chosen path" true (contains "path ");
  Alcotest.(check bool) "prints a rejected alternative" true (contains "!");
  Alcotest.(check bool) "prices the scan alternative" true (contains "scan rows=");
  (* forced modes pin the path *)
  Engine.set_planner eng Engine.Force_scan;
  let forced =
    Plan.to_string (Explain.estimate eng (Qparser.of_string "( ? sub ? priority>=3)"))
  in
  let contains_in hay needle =
    let n = String.length needle and m = String.length hay in
    let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "forced scan is chosen" true
    (contains_in forced "path scan")

let () =
  Alcotest.run "eval"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "atomic scopes" `Quick test_atomic_scopes;
          Alcotest.test_case "example 4.1 (diff)" `Quick test_example_4_1;
          Alcotest.test_case "example 5.1 (children)" `Quick test_example_5_1;
          Alcotest.test_case "hier operators" `Quick test_hier_operators;
          Alcotest.test_case "dc blocking" `Quick test_closest_ancestor_blocking;
          Alcotest.test_case "simple aggregate selection" `Quick test_simple_agg;
          Alcotest.test_case "structural aggregate selection" `Quick
            test_structural_agg;
          Alcotest.test_case "embedded references" `Quick test_eref;
          Alcotest.test_case "example 7.1 shape" `Quick test_example_7_1_shape;
          Alcotest.test_case "update/query soak" `Quick test_update_query_soak;
        ] );
      ( "differential",
        [
          Testkit.qtest ~count:300 "engine = oracle" Testkit.gen_instance_and_query
            prop_engine_matches_oracle;
          Testkit.qtest ~count:100 "naive = oracle" Testkit.gen_instance_and_query
            prop_naive_matches_oracle;
          Testkit.qtest ~count:100 "engine without attr indexes = oracle"
            Testkit.gen_instance_and_query prop_no_index_matches;
          Testkit.qtest ~count:150 "outputs strictly sorted"
            Testkit.gen_instance_and_query prop_output_sorted;
          Testkit.qtest ~count:100 "closure: results are valid sub-instances"
            Testkit.gen_instance_and_query prop_closure;
          Testkit.qtest ~count:150 "fused evaluation = oracle"
            Testkit.gen_instance_and_query prop_fused_matches_oracle;
          Testkit.qtest ~count:150 "fusion never adds scans"
            Testkit.gen_instance_and_query prop_fusion_never_more_scans;
          Testkit.qtest ~count:200 "hash eref = sort-merge eref"
            Testkit.gen_instance_and_query prop_er_hash_matches_oracle;
          Testkit.qtest ~count:100 "cached engine = oracle (cold and warm)"
            Testkit.gen_instance_and_query prop_cached_engine_matches;
          Testkit.qtest ~count:100 "paging reassembles the result"
            Testkit.gen_instance_and_query prop_paging_reassembles;
        ] );
      ( "planner",
        [
          Testkit.qtest ~count:100 "every planner mode = oracle"
            Testkit.gen_instance_and_query prop_planner_modes_match_oracle;
          Testkit.qtest ~count:30 "calibrated planner = oracle"
            Testkit.gen_instance_and_query prop_calibrated_planner_matches;
          Testkit.qtest ~count:150 "chosen path within read envelope"
            Testkit.gen_instance_and_atomic prop_chosen_path_read_bound;
          Alcotest.test_case "cache access path" `Quick test_planner_cache_path;
          Alcotest.test_case "watched engine sees updates" `Quick
            test_watched_engine_sees_updates;
          Alcotest.test_case "explain renders chosen vs rejected" `Quick
            test_explain_shows_paths;
        ] );
    ]
