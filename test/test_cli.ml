(* End-to-end tests of the ndqsh shell binary: parse, evaluate, update,
   explain and LDIF round-trip through the real command-line surface. *)

(* Under `dune runtest` the cwd is _build/default/test; resolve the shell
   binary relative to that, with fallbacks for manual invocations. *)
let exe =
  List.find_opt Sys.file_exists
    [ "../bin/ndqsh.exe"; "_build/default/bin/ndqsh.exe"; "bin/ndqsh.exe" ]
  |> Option.value ~default:"../bin/ndqsh.exe"

let run args =
  let out = Filename.temp_file "ndqsh" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let text = In_channel.with_open_text out In_channel.input_all in
  Sys.remove out;
  (code, text)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec loop i = i + n <= h && (String.sub hay i n = needle || loop (i + 1)) in
  loop 0

let check_contains text needles =
  List.iter
    (fun needle ->
      if not (contains text needle) then
        Alcotest.failf "expected output to contain %S; got:@.%s" needle text)
    needles

let test_query_roundtrip () =
  let code, text =
    run
      [ "-d"; "figure12"; "-e"; "( ? sub ? SourcePort=25)"; "-e"; ":size" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains text
    [ "loaded \"figure12\": 23 entries"; "[L0] 1 entries"; "TPName=smtp";
      "23 entries" ]

let test_ldap_and_levels () =
  let code, text =
    run
      [
        "-d"; "figure12";
        "-e"; "ldap:///dc=com?sub?(&(objectClass=SLAPolicyRules)(SLARulePriority<=1))";
        "-e"; "(c ( ? sub ? objectClass=organizationalUnit) ( ? sub ? \
               objectClass=SLAPolicyRules))";
      ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains text [ "SLAPolicyName=gold"; "[L1]" ]

let test_updates_and_explain () =
  let code, text =
    run
      [
        "-d"; "figure11";
        "-e"; ":add dn: uid=tova, ou=userProfiles, dc=research, dc=att, \
               dc=com ; uid: tova ; surName: milo ; objectClass: \
               inetOrgPerson ; objectClass: TOPSSubscriber";
        "-e"; "( ? sub ? surName=milo)";
        "-e"; ":explain (p ( ? sub ? objectClass=callAppearance) ( ? sub ? \
               objectClass=QHP))";
        "-e"; ":delete uid=tova, ou=userProfiles, dc=research, dc=att, dc=com";
        "-e"; ":size";
      ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains text
    [ "ok (12 entries)"; "uid=tova"; "rows est="; "io est="; "11 entries" ]

let test_bad_input_reported () =
  let code, text =
    run [ "-d"; "figure11"; "-e"; "(nonsense"; "-e"; ":entry dc=nosuch" ]
  in
  Alcotest.(check int) "still exit 0" 0 code;
  check_contains text [ "parse error"; "no entry dc=nosuch" ]

let test_ldif_save_load () =
  let path = Filename.temp_file "ndq_cli" ".ldif" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let code, text =
        run [ "-d"; "figure12"; "-e"; ":save " ^ path ]
      in
      Alcotest.(check int) "save ok" 0 code;
      check_contains text [ "wrote 23 entries" ];
      let code, text =
        run [ "-d"; "figure11"; "-e"; ":load " ^ path; "-e"; ":size" ]
      in
      Alcotest.(check int) "load ok" 0 code;
      check_contains text [ "loaded 23 entries"; "23 entries" ])

let test_metrics_and_trace () =
  let code, text =
    run
      [
        "-d"; "figure12";
        "-e"; ":trace on";
        "-e"; "( ? sub ? SourcePort=25)";
        "-e"; ":trace last";
        "-e"; ":metrics";
        "-e"; ":metrics json";
        "-e"; ":stats reset";
      ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains text
    [
      "tracing on";
      (* the span tree: root query span with parse and execute children,
         each carrying wall-clock time and an I/O delta *)
      "query ( ? sub ? SourcePort=25)";
      "parse";
      "execute";
      "reads=";
      (* text exporter: engine counters and the latency histogram *)
      "engine_queries_total 1";
      "engine_query_ns count=1";
      "p99=";
      (* JSON-lines exporter *)
      "{\"name\":\"engine_queries_total\",\"type\":\"counter\"";
      "\"value\":1}";
      "io counters, metrics and traces reset";
    ]

let test_journal_slowlog_replay () =
  let path = Filename.temp_file "ndq_cli_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let code, text =
        run
          [
            "-d"; "figure12";
            "-e"; ":slowlog threshold 0";
            "-e"; ":journal " ^ path;
            "-e"; "( ? sub ? SourcePort=25)";
            "-e"; "( ? sub ? objectClass=SLAPolicyRules)";
            "-e"; ":journal off";
            "-e"; ":slowlog 2";
            "-e"; ":replay " ^ path;
          ]
      in
      Alcotest.(check int) "exit 0" 0 code;
      check_contains text
        [
          "slow-query threshold = 0ms";
          "journaling to " ^ path;
          "journal off";
          (* slowlog: one-line summaries plus the promoted captures *)
          "plan=";
          "spans:";
          "execute";
          "plan:";
          (* acceptance: replaying a journal against the same build
             reports zero result-count diffs *)
          "replayed 2 queries from " ^ path
          ^ ": 0 result-count diffs, 0 io diffs, 0 errors";
        ];
      (* the journal file itself is JSON lines with one event per query *)
      let lines =
        In_channel.with_open_text path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check int) "one JSON line per query" 2 (List.length lines);
      List.iter
        (fun l ->
          check_contains l
            [ "\"seq\":"; "\"fingerprint\":"; "\"ops\":"; "\"outcome\":\"ok\"" ])
        lines)

let test_generated_directories () =
  List.iter
    (fun kind ->
      let code, text =
        run [ "-d"; kind; "--size"; "600"; "-e"; ":size"; "-e"; ":roots" ]
      in
      Alcotest.(check int) (kind ^ " exit 0") 0 code;
      check_contains text [ "entries" ])
    [ "random"; "qos"; "tops" ]

let () =
  if not (Sys.file_exists exe) then begin
    print_endline "ndqsh.exe not built; skipping CLI tests";
    exit 0
  end;
  Alcotest.run "cli"
    [
      ( "ndqsh",
        [
          Alcotest.test_case "query roundtrip" `Quick test_query_roundtrip;
          Alcotest.test_case "ldap + levels" `Quick test_ldap_and_levels;
          Alcotest.test_case "updates + explain" `Quick test_updates_and_explain;
          Alcotest.test_case "bad input reported" `Quick test_bad_input_reported;
          Alcotest.test_case "ldif save/load" `Quick test_ldif_save_load;
          Alcotest.test_case "metrics + trace" `Quick test_metrics_and_trace;
          Alcotest.test_case "journal + slowlog + replay" `Quick
            test_journal_slowlog_replay;
          Alcotest.test_case "generated directories" `Quick
            test_generated_directories;
        ] );
    ]
