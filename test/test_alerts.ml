(* The operational-health layer: alert rules and their state machine,
   runtime gauge sampling, per-span allocation attribution, journal
   file-count rotation and the hardened monitor endpoint. *)

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* --- Rule parsing ------------------------------------------------------------ *)

let test_parse_forms () =
  let ok s =
    match Alerts.parse s with
    | _ -> ()
    | exception Alerts.Parse_error m -> Alcotest.failf "%S rejected: %s" s m
  in
  ok "engine_query_ns p99 > 50ms for 3";
  ok "engine_query_ns p50 >= 2us";
  ok "rate(engine_page_reads_total) / rate(engine_queries_total) > 40 for 2";
  ok "plan_drift_total increasing";
  ok "gc_heap_words > 2e6";
  ok "cache_hits_total{kind=engine} < 10 for 4 ticks";
  ok "up <= 1x";
  let _, n = Alerts.parse "gc_heap_words > 5 for 7" in
  Alcotest.(check int) "for-duration parsed" 7 n;
  let _, n = Alerts.parse "gc_heap_words > 5" in
  Alcotest.(check int) "for defaults to 1" 1 n

let test_parse_errors () =
  let bad s =
    match Alerts.parse s with
    | _ -> Alcotest.failf "%S should not parse" s
    | exception Alerts.Parse_error _ -> ()
  in
  bad "";
  bad "just_a_name";
  bad "gc_heap_words >";
  bad "gc_heap_words > banana";
  bad "gc_heap_words ~ 5";
  bad "gc_heap_words > 5 for zero";
  bad "rate( > 5";
  bad "a p99 increasing"

let test_duplicate_rule_rejected () =
  let a = Alerts.create ~registry:(Metrics.create ()) () in
  ignore (Alerts.add a ~name:"dup" "gc_heap_words > 5");
  (match Alerts.add a ~name:"dup" "gc_heap_words > 9" with
  | _ -> Alcotest.fail "duplicate rule name accepted"
  | exception Alerts.Parse_error _ -> ());
  Alcotest.(check bool) "remove" true (Alerts.remove a "dup");
  Alcotest.(check bool) "remove again" false (Alerts.remove a "dup")

(* --- The state machine -------------------------------------------------------- *)

let fresh () =
  let r = Metrics.create () in
  (r, Alerts.create ~registry:r ())

let state_of a name = Option.get (Alerts.state a name)

let test_threshold_lifecycle () =
  let r, a = fresh () in
  let g = Metrics.gauge ~registry:r "load" in
  ignore (Alerts.add ~severity:"critical" a ~name:"hot" "load > 10 for 2");
  Metrics.set g 5.;
  Alerts.tick a;
  Alcotest.(check bool) "below: inactive" true
    (state_of a "hot" = Alerts.Inactive);
  Metrics.set g 20.;
  Alerts.tick a;
  Alcotest.(check bool) "first violation: pending" true
    (state_of a "hot" = Alerts.Pending 1);
  Alerts.tick a;
  Alcotest.(check bool) "second violation: firing" true
    (state_of a "hot" = Alerts.Firing);
  Alcotest.(check int) "firing list" 1 (List.length (Alerts.firing a));
  let alerts_gauge =
    Metrics.gauge ~registry:r
      ~labels:[ ("alertname", "hot"); ("severity", "critical") ]
      "ALERTS"
  in
  Alcotest.(check (float 0.)) "ALERTS exported" 1.
    (Metrics.gauge_value alerts_gauge);
  Metrics.set g 5.;
  Alerts.tick a;
  Alcotest.(check bool) "one quiet tick resolves" true
    (state_of a "hot" = Alerts.Inactive);
  Alcotest.(check (float 0.)) "ALERTS cleared" 0.
    (Metrics.gauge_value alerts_gauge);
  let tos = List.map (fun tr -> tr.Alerts.tr_to) (List.rev (Alerts.history a)) in
  Alcotest.(check (list string)) "transition history"
    [ "pending"; "firing"; "resolved" ] tos

let test_flap_never_fires () =
  let r, a = fresh () in
  let g = Metrics.gauge ~registry:r "load" in
  ignore (Alerts.add a ~name:"hot" "load > 10 for 2");
  (* alternate violation and quiet: the for-duration absorbs the flap *)
  for _ = 1 to 4 do
    Metrics.set g 20.;
    Alerts.tick a;
    Alcotest.(check bool) "pending only" true
      (state_of a "hot" = Alerts.Pending 1);
    Metrics.set g 5.;
    Alerts.tick a;
    Alcotest.(check bool) "back to inactive" true
      (state_of a "hot" = Alerts.Inactive)
  done;
  Alcotest.(check bool) "never fired" true
    (List.for_all (fun tr -> tr.Alerts.tr_to <> "firing") (Alerts.history a))

let test_for_boundary () =
  let r, a = fresh () in
  let g = Metrics.gauge ~registry:r "load" in
  ignore (Alerts.add a ~name:"hot" "load > 10 for 3");
  Metrics.set g 20.;
  Alerts.tick a;
  Alerts.tick a;
  Alcotest.(check bool) "two ticks: still pending" true
    (state_of a "hot" = Alerts.Pending 2);
  Alerts.tick a;
  Alcotest.(check bool) "exactly [for] ticks fires" true
    (state_of a "hot" = Alerts.Firing)

let test_silence_suppresses_export_only () =
  let r, a = fresh () in
  let g = Metrics.gauge ~registry:r "load" in
  ignore (Alerts.add a ~name:"hot" "load > 10");
  Alcotest.(check bool) "silence unknown rule" false
    (Alerts.silence a "nope" true);
  Alcotest.(check bool) "silence" true (Alerts.silence a "hot" true);
  Metrics.set g 20.;
  Alerts.tick a;
  Alcotest.(check bool) "state machine still runs" true
    (state_of a "hot" = Alerts.Firing);
  Alcotest.(check int) "still reported firing" 1
    (List.length (Alerts.firing a));
  let alerts_gauge =
    Metrics.gauge ~registry:r
      ~labels:[ ("alertname", "hot"); ("severity", "warn") ]
      "ALERTS"
  in
  Alcotest.(check (float 0.)) "export suppressed" 0.
    (Metrics.gauge_value alerts_gauge);
  Alcotest.(check bool) "unsilence" true (Alerts.silence a "hot" false);
  Alerts.tick a;
  Alcotest.(check (float 0.)) "export restored" 1.
    (Metrics.gauge_value alerts_gauge)

let test_rate_rule () =
  let r, a = fresh () in
  let c = Metrics.counter ~registry:r "hits_total" in
  ignore (Alerts.add a ~name:"burst" "rate(hits_total) > 5");
  Metrics.add c 100;
  Alerts.tick a;
  Alcotest.(check bool) "first sight is not a burst" true
    (state_of a "burst" = Alerts.Inactive);
  Metrics.add c 10;
  Alerts.tick a;
  Alcotest.(check bool) "delta over threshold fires" true
    (state_of a "burst" = Alerts.Firing);
  Alcotest.(check (option (float 0.))) "value is the delta" (Some 10.)
    (Alerts.last_value a "burst");
  Alerts.tick a;
  Alcotest.(check bool) "quiet tick resolves" true
    (state_of a "burst" = Alerts.Inactive)

let test_quantile_window_resolves () =
  let r, a = fresh () in
  let h = Metrics.histogram ~registry:r "lat_ns" in
  ignore (Alerts.add a ~name:"slow" "lat_ns p99 > 1000");
  for _ = 1 to 50 do
    Metrics.observe h 100_000.
  done;
  Alerts.tick a;
  Alcotest.(check bool) "slow window fires" true
    (state_of a "slow" = Alerts.Firing);
  (* nothing new observed: the per-tick window is empty, so the alert
     resolves instead of ringing forever on the cumulative histogram *)
  Alerts.tick a;
  Alcotest.(check bool) "quiet window resolves" true
    (state_of a "slow" = Alerts.Inactive);
  for _ = 1 to 50 do
    Metrics.observe h 1.
  done;
  Alerts.tick a;
  Alcotest.(check bool) "fast window stays quiet" true
    (state_of a "slow" = Alerts.Inactive)

let test_increasing_rule () =
  let r, a = fresh () in
  let c = Metrics.counter ~registry:r "drift_total" in
  ignore (Alerts.add a ~name:"drift" "drift_total increasing");
  Alerts.tick a;
  Alcotest.(check bool) "first sight quiet" true
    (state_of a "drift" = Alerts.Inactive);
  Metrics.incr c;
  Alerts.tick a;
  Alcotest.(check bool) "growth fires" true
    (state_of a "drift" = Alerts.Firing);
  Alerts.tick a;
  Alcotest.(check bool) "plateau resolves" true
    (state_of a "drift" = Alerts.Inactive)

let test_ratio_zero_denominator () =
  let r, a = fresh () in
  let num = Metrics.counter ~registry:r "reads_total" in
  let _den = Metrics.counter ~registry:r "queries_total" in
  ignore (Alerts.add a ~name:"amp" "rate(reads_total) / rate(queries_total) > 2");
  Alerts.tick a;
  Metrics.add num 100;
  (* reads grow but no queries at all: the ratio is undefined, which
     must read as "not in violation", not a division crash *)
  Alerts.tick a;
  Alcotest.(check bool) "zero denominator never violates" true
    (state_of a "amp" = Alerts.Inactive)

let test_clear_and_json () =
  let r, a = fresh () in
  let g = Metrics.gauge ~registry:r "load" in
  ignore (Alerts.add a ~name:"hot" "load > 10");
  Metrics.set g 20.;
  Alerts.tick a;
  let doc = Alerts.to_json a in
  Alcotest.(check (float 0.)) "firing count in json" 1.
    (Json.to_float (Json.member "firing" doc));
  Alcotest.(check int) "rules array" 1
    (List.length (Json.arr (Json.member "rules" doc)));
  Alerts.clear a;
  Alcotest.(check int) "clear drops rules" 0 (List.length (Alerts.rules a));
  Alcotest.(check int) "clear drops history" 0
    (List.length (Alerts.history a))

let test_install_defaults () =
  let _, a = fresh () in
  Alerts.install_defaults ~t:a ();
  let n = List.length (Alerts.rules a) in
  Alcotest.(check bool) "stock rules installed" true (n >= 3);
  Alerts.install_defaults ~t:a ();
  Alcotest.(check int) "idempotent" n (List.length (Alerts.rules a))

(* --- Runtime gauges ------------------------------------------------------------ *)

let test_runtime_sample () =
  Runtime.sample ~full:true ();
  let value name = Metrics.gauge_value (Metrics.gauge name) in
  Alcotest.(check bool) "uptime >= 0" true (value "process_uptime_seconds" >= 0.);
  Alcotest.(check bool) "allocated > 0" true
    (value "process_allocated_bytes" > 0.);
  Alcotest.(check bool) "heap words > 0" true (value "gc_heap_words" > 0.);
  Alcotest.(check bool) "top heap >= heap" true
    (value "gc_top_heap_words" >= value "gc_heap_words");
  Alcotest.(check bool) "live words > 0 (full sample)" true
    (value "gc_live_words" > 0.);
  Alcotest.(check bool) "minor collections >= 0" true
    (value "gc_minor_collections" >= 0.)

let test_runtime_ticker () =
  let ticks = ref 0 in
  let t = Runtime.start ~period:0.01 ~on_tick:(fun () -> incr ticks) () in
  let deadline = Unix.gettimeofday () +. 5. in
  while !ticks = 0 && Unix.gettimeofday () < deadline do
    Thread.yield ();
    ignore (Unix.select [] [] [] 0.02)
  done;
  Runtime.stop t;
  Runtime.stop t (* idempotent *);
  Alcotest.(check bool) "ticker ran" true (!ticks >= 1);
  let after = !ticks in
  ignore (Unix.select [] [] [] 0.05);
  Alcotest.(check int) "stopped ticker stays stopped" after !ticks;
  (match Runtime.start ~period:0. () with
  | exception Invalid_argument _ -> ()
  | t ->
      Runtime.stop t;
      Alcotest.fail "period 0 accepted")

(* --- Allocation attribution ----------------------------------------------------- *)

let test_span_alloc_nesting () =
  let was = Trace.enabled () in
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Trace.set_enabled was)
    (fun () ->
      Trace.with_span "parent" (fun () ->
          let keep = ref [] in
          Trace.with_span "child" (fun () ->
              (* ~80kB retained so the child's delta is visibly > 0 *)
              keep := List.init 10 (fun _ -> Bytes.create 8192));
          ignore (Sys.opaque_identity !keep));
      match Trace.last () with
      | None -> Alcotest.fail "no span captured"
      | Some parent ->
          let child = List.hd parent.Trace.children in
          Alcotest.(check bool) "child allocated" true
            (child.Trace.alloc_bytes > 8192);
          Alcotest.(check bool) "parent is inclusive of child" true
            (parent.Trace.alloc_bytes >= child.Trace.alloc_bytes))

(* --- Qlog file-count rotation ---------------------------------------------------- *)

let temp_journal () =
  Filename.temp_file "ndq_alerts_journal" ".jsonl"

let test_qlog_max_files () =
  let path = temp_journal () in
  let gen n = path ^ "." ^ string_of_int n in
  Qlog.enable ~append:false ~max_bytes:300 ~max_files:3 path;
  Alcotest.(check int) "max_files exposed" 3 (Qlog.max_files ());
  Alcotest.(check (option int)) "max_bytes exposed" (Some 300)
    (Qlog.max_bytes ());
  for i = 1 to 60 do
    ignore
      (Qlog.record
         ~query:(Printf.sprintf "( ? sub ? id=%d)" i)
         ~fingerprint:"f" ~result_count:i ~reads:0 ~writes:0 ~wall_ns:0
         ~outcome:Qlog.Ok ())
  done;
  Qlog.disable ();
  Alcotest.(check int) "max_files resets" 1 (Qlog.max_files ());
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "generation .%d kept" n)
        true
        (Sys.file_exists (gen n)))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "oldest generation deleted" false
    (Sys.file_exists (gen 4));
  (* every kept generation still parses; the newest event is in the
     live file, or in generation .1 right after a rotating append *)
  let live = Qlog.load path in
  let newest =
    match List.rev live with
    | ev :: _ -> ev
    | [] -> List.hd (List.rev (Qlog.load (gen 1)))
  in
  Alcotest.(check int) "newest event survives rotation" 60 newest.Qlog.seq;
  List.iter
    (fun n -> Alcotest.(check bool) "rotated parses" true (Qlog.load (gen n) <> []))
    [ 1; 2; 3 ];
  List.iter (fun n -> Sys.remove (gen n)) [ 1; 2; 3 ];
  Sys.remove path

(* --- Monitor hardening ------------------------------------------------------------ *)

let test_monitor_alerts_route () =
  Alerts.install_defaults ();
  let m = Monitor.start ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Monitor.stop m)
    (fun () ->
      let port = Monitor.port m in
      let status, body = Monitor.get ~port "/alerts" in
      Alcotest.(check int) "alerts 200" 200 status;
      let doc = Json.of_string body in
      Alcotest.(check bool) "rules listed" true
        (Json.arr (Json.member "rules" doc) <> []);
      Alcotest.(check (float 0.)) "nothing firing" 0.
        (Json.to_float (Json.member "firing" doc));
      let status, body = Monitor.get ~port "/healthz" in
      Alcotest.(check int) "healthz 200" 200 status;
      Alcotest.(check bool) "healthz reports alerts" true
        (contains body "alerts_firing");
      let _, metrics = Monitor.get ~port "/metrics" in
      Alcotest.(check bool) "self metrics labeled by route" true
        (contains metrics "monitor_requests_total{route=\"/alerts\"");
      Alcotest.(check bool) "request latency histogram" true
        (contains metrics "monitor_request_ns"))

let test_monitor_slow_client_cannot_wedge () =
  let m = Monitor.start ~port:0 ~client_timeout_s:0.2 () in
  Fun.protect
    ~finally:(fun () -> Monitor.stop m)
    (fun () ->
      let port = Monitor.port m in
      (* a client that connects and never sends its request line: the
         receive deadline must shed it so the serial accept loop moves on *)
      let stalled = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect stalled
        (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Fun.protect
        ~finally:(fun () -> Unix.close stalled)
        (fun () ->
          let results = Array.make 4 (-1) in
          let clients =
            List.init 4 (fun i ->
                Thread.create
                  (fun () ->
                    let status, _ = Monitor.get ~port "/healthz" in
                    results.(i) <- status)
                  ())
          in
          List.iter Thread.join clients;
          Array.iteri
            (fun i status ->
              Alcotest.(check int)
                (Printf.sprintf "client %d served despite the stall" i)
                200 status)
            results))

let () =
  Alcotest.run "alerts"
    [
      ( "parser",
        [
          Alcotest.test_case "accepted forms" `Quick test_parse_forms;
          Alcotest.test_case "rejected forms" `Quick test_parse_errors;
          Alcotest.test_case "duplicate names" `Quick
            test_duplicate_rule_rejected;
        ] );
      ( "state machine",
        [
          Alcotest.test_case "threshold lifecycle" `Quick
            test_threshold_lifecycle;
          Alcotest.test_case "flap never fires" `Quick test_flap_never_fires;
          Alcotest.test_case "for-duration boundary" `Quick test_for_boundary;
          Alcotest.test_case "silence" `Quick
            test_silence_suppresses_export_only;
          Alcotest.test_case "rate rule" `Quick test_rate_rule;
          Alcotest.test_case "quantile window resolves" `Quick
            test_quantile_window_resolves;
          Alcotest.test_case "increasing rule" `Quick test_increasing_rule;
          Alcotest.test_case "ratio zero denominator" `Quick
            test_ratio_zero_denominator;
          Alcotest.test_case "clear and json" `Quick test_clear_and_json;
          Alcotest.test_case "install_defaults" `Quick test_install_defaults;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "sample fills gauges" `Quick test_runtime_sample;
          Alcotest.test_case "ticker" `Quick test_runtime_ticker;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "nested span alloc" `Quick test_span_alloc_nesting;
        ] );
      ( "qlog",
        [ Alcotest.test_case "max_files rotation" `Quick test_qlog_max_files ] );
      ( "monitor",
        [
          Alcotest.test_case "/alerts route + self metrics" `Quick
            test_monitor_alerts_route;
          Alcotest.test_case "slow client cannot wedge" `Quick
            test_monitor_slow_client_cannot_wedge;
        ] );
    ]
