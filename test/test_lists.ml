(* Tests for the distribution-lists application: direct membership as
   single queries, transitive membership over nesting and cycles, and
   the synthetic generator. *)

let dn = Dn.of_string
let engine () = Engine.create ~block:8 (Lists.sample ())

let names entries attr =
  List.concat_map (fun e -> Entry.string_values e attr) entries
  |> List.sort String.compare

(* --- Direct membership ------------------------------------------------------ *)

let test_lists_containing_direct () =
  let eng = engine () in
  (* divesh is directly in dbgroup and oncall *)
  let ls =
    Engine.eval_entries eng
      (Lists.lists_containing_query (dn (Lists.person_dn "divesh")))
  in
  Alcotest.(check (list string)) "divesh's direct lists" [ "dbgroup"; "oncall" ]
    (names ls "listName");
  (* laks only via the nested theory list *)
  let ls =
    Engine.eval_entries eng
      (Lists.lists_containing_query (dn (Lists.person_dn "laks")))
  in
  Alcotest.(check (list string)) "laks only in theory" [ "theory" ]
    (names ls "listName")

let test_direct_members () =
  let eng = engine () in
  let ms =
    Engine.eval_entries eng
      (Lists.direct_members_query (dn (Lists.list_dn "dbgroup")))
  in
  (* two persons plus the nested theory list *)
  Alcotest.(check (list string)) "persons" [ "divesh"; "jag" ]
    (names (List.filter (fun e -> Entry.has_class e "person") ms) "uid");
  Alcotest.(check (list string)) "nested list" [ "theory" ]
    (names (List.filter (fun e -> Entry.has_class e "groupOfNames") ms) "listName")

let test_empty_lists () =
  let eng = engine () in
  let ls = Engine.eval_entries eng Lists.empty_lists_query in
  Alcotest.(check (list string)) "only the empty list" [ "empty" ]
    (names ls "listName")

let test_lists_with_surname () =
  let eng = engine () in
  let ls =
    Engine.eval_entries eng (Lists.lists_with_surname_query "milo")
  in
  Alcotest.(check (list string)) "tova is in theory" [ "theory" ]
    (names ls "listName");
  Alcotest.(check string) "it is an L3 query" "L3"
    (Lang.level_to_string (Lang.level (Lists.lists_with_surname_query "milo")))

(* --- Transitive membership ---------------------------------------------------- *)

let test_transitive_members_nested () =
  let eng = engine () in
  let persons, traversed, rounds =
    Lists.transitive_members eng (dn (Lists.list_dn "dbgroup"))
  in
  (* dbgroup -> {jag, divesh} + theory -> {tova, laks} *)
  Alcotest.(check (list string)) "all four members"
    [ "divesh"; "jag"; "laks"; "tova" ]
    (names persons "uid");
  Alcotest.(check (list string)) "both lists traversed" [ "dbgroup"; "theory" ]
    (names traversed "listName");
  Alcotest.(check bool) "two rounds of nesting" true (rounds >= 2)

let test_transitive_members_cycle () =
  let eng = engine () in
  (* staff <-> oncall cycle: the closure terminates and finds both
     persons exactly once *)
  let persons, traversed, _ =
    Lists.transitive_members eng (dn (Lists.list_dn "staff"))
  in
  Alcotest.(check (list string)) "cycle members" [ "dimitra"; "divesh" ]
    (names persons "uid");
  Alcotest.(check (list string)) "cycle traversed once"
    [ "oncall"; "staff" ]
    (names traversed "listName")

let test_lists_containing_transitive () =
  let eng = engine () in
  (* laks is in theory; theory is nested in dbgroup *)
  let direct =
    Lists.lists_containing eng ~transitive:false (dn (Lists.person_dn "laks"))
  in
  let all =
    Lists.lists_containing eng ~transitive:true (dn (Lists.person_dn "laks"))
  in
  Alcotest.(check (list string)) "direct" [ "theory" ] (names direct "listName");
  Alcotest.(check (list string)) "transitive adds dbgroup"
    [ "dbgroup"; "theory" ]
    (names all "listName");
  (* a person inside the cycle is transitively in both cycle lists *)
  let cycle =
    Lists.lists_containing eng ~transitive:true (dn (Lists.person_dn "divesh"))
  in
  Alcotest.(check (list string)) "cycle closure terminates"
    [ "dbgroup"; "oncall"; "staff" ]
    (names cycle "listName")

(* --- Generated webs: closure matches a graph-reachability oracle --------------- *)

module Sset = Set.Make (String)

let reference_transitive instance list_dn_v =
  let find d = Instance.find instance d in
  let rec go visited persons = function
    | [] -> persons
    | d :: rest -> (
        let key = Dn.rev_key d in
        if Sset.mem key visited then go visited persons rest
        else
          let visited = Sset.add key visited in
          match find d with
          | None -> go visited persons rest
          | Some e ->
              let members = Entry.dn_values e "member" in
              let persons, frontier =
                List.fold_left
                  (fun (ps, fs) m ->
                    match find m with
                    | Some me when Entry.has_class me "groupOfNames" ->
                        (ps, m :: fs)
                    | Some me -> (Sset.add (Entry.key me) ps, fs)
                    | None -> (ps, fs))
                  (persons, rest) members
              in
              go visited persons frontier)
  in
  go Sset.empty Sset.empty [ list_dn_v ]

let prop_transitive_matches_reference seed =
  let i =
    Lists.generate
      ~params:{ Lists.default_gen with seed; lists = 15; people = 40; nesting_prob = 0.5 }
      ()
  in
  let eng = Engine.create ~block:16 i in
  List.for_all
    (fun k ->
      let d = dn (Lists.list_dn (Printf.sprintf "l%d" k)) in
      let persons, _, _ = Lists.transitive_members eng d in
      let expected = reference_transitive i d in
      List.length persons = Sset.cardinal expected
      && List.for_all (fun p -> Sset.mem (Entry.key p) expected) persons)
    [ 0; 3; 7; 11 ]

let test_generated_valid () =
  let i = Lists.generate () in
  Alcotest.(check int) "well-formed" 0 (List.length (Instance.validate i))

let () =
  Alcotest.run "lists"
    [
      ( "direct",
        [
          Alcotest.test_case "lists containing" `Quick test_lists_containing_direct;
          Alcotest.test_case "direct members" `Quick test_direct_members;
          Alcotest.test_case "empty lists (count=0)" `Quick test_empty_lists;
          Alcotest.test_case "by surname (Example 5.1 flavour)" `Quick
            test_lists_with_surname;
        ] );
      ( "transitive",
        [
          Alcotest.test_case "nested closure" `Quick test_transitive_members_nested;
          Alcotest.test_case "cycle safe" `Quick test_transitive_members_cycle;
          Alcotest.test_case "reverse closure" `Quick
            test_lists_containing_transitive;
          Testkit.qtest ~count:20 "closure = reachability oracle"
            (QCheck2.Gen.int_range 0 10_000) prop_transitive_matches_reference;
        ] );
      ("generator", [ Alcotest.test_case "valid" `Quick test_generated_valid ]);
    ]
