(* Algebraic laws of the query languages, checked by property testing
   against the reference semantics (and through the engine, so both
   implementations satisfy them).

   These laws are implicit in the paper's set-theoretic definitions:
   boolean identities, containment of every selection operator's result
   in its first operand (the closure property's backbone), scope
   monotonicity, the p <= a / c <= d refinements, the equivalence of the
   plain hierarchical operators with their count($2) > 0 aggregate
   forms, and the collapse of ac/dc to a/d when the blocker query is
   empty. *)

open QCheck2

let eval i q = Testkit.oracle i q

let equal_sets a b =
  List.length a = List.length b && List.for_all2 Entry.equal_dn a b

let subset a b =
  List.for_all (fun e -> List.exists (Entry.equal_dn e) b) a

let gen_iq = Testkit.gen_instance_and_query

let gen_i2q =
  let ( let* ) = Gen.( >>= ) in
  let* i = Testkit.gen_instance in
  let* q1 = Testkit.gen_query i in
  let* q2 = Testkit.gen_query i in
  Gen.return (i, q1, q2)

(* --- Boolean identities ----------------------------------------------------- *)

let prop_and_commutative (i, q1, q2) =
  equal_sets (eval i (Ast.And (q1, q2))) (eval i (Ast.And (q2, q1)))

let prop_or_commutative (i, q1, q2) =
  equal_sets (eval i (Ast.Or (q1, q2))) (eval i (Ast.Or (q2, q1)))

let prop_and_idempotent (i, q) = equal_sets (eval i (Ast.And (q, q))) (eval i q)
let prop_or_idempotent (i, q) = equal_sets (eval i (Ast.Or (q, q))) (eval i q)
let prop_diff_self_empty (i, q) = eval i (Ast.Diff (q, q)) = []

let prop_diff_chain (i, q1, q2) =
  (* q - (a | b) = (q - a) - b, with q = q1, a = q1&q2, b = q2 *)
  let a = Ast.And (q1, q2) and b = q2 in
  equal_sets
    (eval i (Ast.Diff (q1, Ast.Or (a, b))))
    (eval i (Ast.Diff (Ast.Diff (q1, a), b)))

let prop_absorption (i, q1, q2) =
  equal_sets (eval i (Ast.And (q1, Ast.Or (q1, q2)))) (eval i q1)
  && equal_sets (eval i (Ast.Or (q1, Ast.And (q1, q2)))) (eval i q1)

(* --- Containment ------------------------------------------------------------- *)

(* Every operator selects a subset of its first operand: the reason
   query results are sub-instances. *)
let prop_selection_containment (i, q) =
  let result = eval i q in
  match q with
  | Ast.Atomic _ | Ast.Or _ -> true
  | Ast.And (q1, _) | Ast.Diff (q1, _)
  | Ast.Hier (_, q1, _, _)
  | Ast.Hier3 (_, q1, _, _, _)
  | Ast.Gsel (q1, _)
  | Ast.Eref (_, q1, _, _, _) ->
      subset result (eval i q1)

(* --- Scope monotonicity --------------------------------------------------------- *)

let prop_scope_monotone (i, q) =
  (* reuse a generated query only as a source of atomic sub-queries *)
  List.for_all
    (fun (a : Ast.atomic) ->
      let at scope = eval i (Ast.Atomic { a with Ast.scope }) in
      subset (at Ast.Base) (at Ast.One) && subset (at Ast.One) (at Ast.Sub))
    (Ast.atomic_subqueries q)

(* --- Hierarchy refinements -------------------------------------------------------- *)

let prop_parents_within_ancestors (i, q1, q2) =
  subset (eval i (Ast.parents q1 q2)) (eval i (Ast.ancestors q1 q2))

let prop_children_within_descendants (i, q1, q2) =
  subset (eval i (Ast.children q1 q2)) (eval i (Ast.descendants q1 q2))

(* plain = count($2) > 0 (Section 6.2) *)
let prop_plain_equals_count_positive (i, q1, q2) =
  List.for_all
    (fun op ->
      equal_sets
        (eval i (Ast.Hier (op, q1, q2, None)))
        (eval i (Ast.Hier (op, q1, q2, Some Ast.has_witness))))
    Ast.[ P; C; A; D ]

(* with an empty blocker query, ac/dc collapse to a/d *)
let empty_query =
  Ast.atomic (Dn.of_string "id=987654321") (Afilter.Present "nothing")

let prop_hier3_empty_blocker (i, q1, q2) =
  equal_sets
    (eval i (Ast.ancestors_c q1 q2 empty_query))
    (eval i (Ast.ancestors q1 q2))
  && equal_sets
       (eval i (Ast.descendants_c q1 q2 empty_query))
       (eval i (Ast.descendants q1 q2))

(* an entry never witnesses itself: (p q q) over disjoint levels *)
let prop_no_self_witness (i, q) =
  (* r in (d q q) needs a *proper* descendant in q *)
  let d = eval i (Ast.descendants (Ast.Or (q, q)) q) in
  List.for_all
    (fun r ->
      List.exists
        (fun w -> Entry.key_ancestor_of ~ancestor:r ~descendant:w)
        (eval i q))
    d

(* --- The engine satisfies the same laws -------------------------------------------- *)

let prop_engine_laws (i, q1, q2) =
  let eng = Testkit.engine i in
  let run q = Engine.eval_entries eng q in
  equal_sets (run (Ast.And (q1, q2))) (run (Ast.And (q2, q1)))
  && run (Ast.Diff (q1, q1)) = []
  && subset (run (Ast.parents q1 q2)) (run (Ast.ancestors q1 q2))

let () =
  Alcotest.run "algebra"
    [
      ( "boolean",
        [
          Testkit.qtest ~count:120 "and commutative" gen_i2q prop_and_commutative;
          Testkit.qtest ~count:120 "or commutative" gen_i2q prop_or_commutative;
          Testkit.qtest ~count:120 "and idempotent" gen_iq prop_and_idempotent;
          Testkit.qtest ~count:120 "or idempotent" gen_iq prop_or_idempotent;
          Testkit.qtest ~count:120 "q - q = empty" gen_iq prop_diff_self_empty;
          Testkit.qtest ~count:120 "difference chains" gen_i2q prop_diff_chain;
          Testkit.qtest ~count:120 "absorption" gen_i2q prop_absorption;
        ] );
      ( "containment",
        [
          Testkit.qtest ~count:150 "selection containment" gen_iq
            prop_selection_containment;
          Testkit.qtest ~count:100 "scope monotone" gen_iq prop_scope_monotone;
        ] );
      ( "hierarchy",
        [
          Testkit.qtest ~count:120 "p within a" gen_i2q
            prop_parents_within_ancestors;
          Testkit.qtest ~count:120 "c within d" gen_i2q
            prop_children_within_descendants;
          Testkit.qtest ~count:100 "plain = count($2)>0" gen_i2q
            prop_plain_equals_count_positive;
          Testkit.qtest ~count:100 "empty blocker collapses ac/dc" gen_i2q
            prop_hier3_empty_blocker;
          Testkit.qtest ~count:100 "witnesses are proper" gen_iq
            prop_no_self_witness;
        ] );
      ( "engine",
        [ Testkit.qtest ~count:80 "engine satisfies the laws" gen_i2q
            prop_engine_laws ] );
    ]
