(* Tests for the plan-quality observatory: q-error arithmetic, bucket
   boundaries, calibration persistence, the online==offline rebuild
   guarantee, and the monitor's /planstats, /workload, HEAD and 405
   handling. *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec loop i = i + n <= h && (String.sub hay i n = needle || loop (i + 1)) in
  loop 0

let temp_file suffix =
  let path = Filename.temp_file "ndq_planstats" suffix in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

(* --- q-error ------------------------------------------------------------------- *)

let feq = Alcotest.(check (float 1e-9))

let test_qerror_edges () =
  feq "exact" 1.0 (Planstats.qerror ~est:5 ~act:5);
  feq "both zero" 1.0 (Planstats.qerror ~est:0 ~act:0);
  feq "zero estimate" 10.0 (Planstats.qerror ~est:0 ~act:10);
  feq "zero actual" 7.0 (Planstats.qerror ~est:7 ~act:0);
  feq "underestimate" 4.0 (Planstats.qerror ~est:2 ~act:8);
  feq "overestimate" 4.0 (Planstats.qerror ~est:8 ~act:2);
  feq "symmetric"
    (Planstats.qerror ~est:3 ~act:17)
    (Planstats.qerror ~est:17 ~act:3);
  Alcotest.(check bool) "never below 1" true
    (Planstats.qerror ~est:1 ~act:1 >= 1.0)

let test_bucket_boundaries () =
  List.iter
    (fun (rows, bucket) ->
      Alcotest.(check int)
        (Printf.sprintf "bucket of %d" rows)
        bucket
        (Planstats.bucket_of_rows rows))
    [
      (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (7, 2); (8, 3);
      (1023, 9); (1024, 10); (1025, 10);
    ]

(* --- Calibration persistence --------------------------------------------------- *)

let mk_event ?est_card ?est_reads ?est_writes ~card ~reads ~writes () =
  Qlog.record ?est_card ?est_reads ?est_writes ~query:"( ? sub ? tag=?)"
    ~fingerprint:"fp" ~result_count:card ~reads ~writes ~wall_ns:1_000
    ~outcome:Qlog.Ok ()

let test_save_load_merge () =
  let events =
    [
      mk_event ~est_card:4 ~est_reads:8 ~est_writes:0 ~card:8 ~reads:4
        ~writes:0 ();
      mk_event ~est_card:100 ~est_reads:2 ~est_writes:1 ~card:10 ~reads:2
        ~writes:2 ();
      mk_event ~est_card:4 ~card:5 ~reads:3 ~writes:0 ();
    ]
  in
  let t = Planstats.of_events events in
  Alcotest.(check int) "events folded" 3 (Planstats.events t);
  let path = temp_file ".jsonl" in
  let n = Planstats.save t path in
  Alcotest.(check bool) "cells saved" true (n > 0);
  let loaded = Planstats.load path in
  Alcotest.(check string) "load reproduces saved bytes"
    (Planstats.save_lines t) (Planstats.save_lines loaded);
  let m = Planstats.create () in
  Planstats.merge ~into:m loaded;
  Alcotest.(check string) "merge into empty is the identity"
    (Planstats.save_lines t) (Planstats.save_lines m);
  Planstats.merge ~into:m loaded;
  Alcotest.(check bool) "second merge doubles the counts" true
    (Planstats.save_lines m <> Planstats.save_lines t);
  (* a doubled store still round-trips *)
  let path2 = temp_file ".jsonl" in
  ignore (Planstats.save m path2);
  Alcotest.(check string) "doubled store round-trips"
    (Planstats.save_lines m)
    (Planstats.save_lines (Planstats.load path2))

(* --- Online == offline --------------------------------------------------------- *)

(* The load-bearing property behind the CI gate: a store fed online by
   the Qlog.record hook and a store rebuilt afterwards from the journal
   file must hold identical aggregates — identical saved bytes. *)
let test_online_offline_parity () =
  let path = temp_file ".jsonl" in
  Qlog.enable ~append:false path;
  let online = Planstats.create () in
  Planstats.attach online;
  Fun.protect
    ~finally:(fun () ->
      Planstats.detach online;
      Qlog.disable ())
    (fun () ->
      let instance = Dif_gen.karily ~fanout:4 ~size:400 () in
      let eng = Engine.create ~block:16 instance in
      List.iter
        (fun q -> ignore (Engine.eval_entries eng (Qparser.of_string q)))
        [
          "( ? sub ? tag=even)";
          "(& ( ? sub ? tag=odd) ( ? sub ? priority>=1))";
          "(g (d ( ? sub ? tag=even) ( ? sub ? tag=odd)) min(priority) >= 0)";
          "(- ( ? sub ? priority>=1) ( ? sub ? tag=even))";
        ]);
  let offline = Planstats.of_events (Qlog.load path) in
  Alcotest.(check bool) "events flowed online" true
    (Planstats.events online > 0);
  Alcotest.(check int) "same event count" (Planstats.events online)
    (Planstats.events offline);
  Alcotest.(check string) "identical calibration bytes"
    (Planstats.save_lines online)
    (Planstats.save_lines offline);
  (* build = of_events over the same file *)
  let rebuilt = Planstats.create () in
  let n = Planstats.build rebuilt path in
  Alcotest.(check int) "build folds every line" (Planstats.events online) n;
  Alcotest.(check string) "build matches online"
    (Planstats.save_lines online)
    (Planstats.save_lines rebuilt)

(* --- Drift --------------------------------------------------------------------- *)

let test_drift_detection () =
  (* baseline: near-exact estimates; live store: 8x over-estimates *)
  let base =
    Planstats.of_events
      (List.init 8 (fun _ -> mk_event ~est_card:10 ~card:10 ~reads:1 ~writes:0 ()))
  in
  let live = Planstats.create () in
  Planstats.set_baseline live base;
  List.iter (fun ev -> Planstats.note_event live ev)
    (List.init 64 (fun _ -> mk_event ~est_card:80 ~card:10 ~reads:1 ~writes:0 ()));
  match Planstats.drift live with
  | [ (op, recent, baseline) ] ->
      Alcotest.(check string) "drifting class" "query" op;
      Alcotest.(check bool) "recent >> baseline" true (recent > baseline *. 2.)
  | l -> Alcotest.failf "expected 1 drift note, got %d" (List.length l)

(* --- Monitor routes, HEAD and 405 ---------------------------------------------- *)

let header headers name =
  match List.assoc_opt name headers with
  | Some v -> v
  | None -> Alcotest.failf "missing %s header" name

let check_content_length headers body =
  Alcotest.(check string)
    "content-length matches body"
    (string_of_int (String.length body))
    (header headers "content-length")

let test_monitor_planstats_routes () =
  (* route bodies come from the default store; make sure it has rows *)
  Planstats.clear Planstats.default;
  Planstats.note_event Planstats.default
    (mk_event ~est_card:4 ~card:8 ~reads:2 ~writes:0 ());
  let m = Monitor.start ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Monitor.stop m)
    (fun () ->
      let port = Monitor.port m in
      let status, headers, body = Monitor.request ~port "/planstats" in
      Alcotest.(check int) "/planstats 200" 200 status;
      Alcotest.(check string) "json" "application/json"
        (header headers "content-type");
      check_content_length headers body;
      Alcotest.(check bool) "has classes" true (contains body "\"classes\"");
      Alcotest.(check bool) "has calibration" true
        (contains body "\"calibration\"");
      let status, headers, body = Monitor.request ~port "/workload" in
      Alcotest.(check int) "/workload 200" 200 status;
      check_content_length headers body;
      Alcotest.(check bool) "has rows" true (contains body "\"rows\""))

let test_monitor_head_and_405 () =
  let m = Monitor.start ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Monitor.stop m)
    (fun () ->
      let port = Monitor.port m in
      (* HEAD = GET minus the body, Content-Length preserved *)
      let gstatus, gheaders, gbody = Monitor.request ~port "/healthz" in
      let hstatus, hheaders, hbody =
        Monitor.request ~meth:"HEAD" ~port "/healthz"
      in
      Alcotest.(check int) "HEAD status matches GET" gstatus hstatus;
      Alcotest.(check string) "HEAD body empty" "" hbody;
      Alcotest.(check bool) "GET body nonempty" true (String.length gbody > 0);
      Alcotest.(check string) "HEAD advertises GET's length"
        (header gheaders "content-length")
        (header hheaders "content-length");
      (* errors carry Content-Length too, on both methods *)
      let status, headers, body = Monitor.request ~port "/nope" in
      Alcotest.(check int) "GET 404" 404 status;
      check_content_length headers body;
      let status, headers, body = Monitor.request ~meth:"HEAD" ~port "/nope" in
      Alcotest.(check int) "HEAD 404" 404 status;
      Alcotest.(check string) "404 HEAD body empty" "" body;
      Alcotest.(check bool) "404 HEAD has a length" true
        (int_of_string (header headers "content-length") > 0);
      (* anything but GET/HEAD is 405 *)
      let status, headers, body =
        Monitor.request ~meth:"POST" ~port "/metrics"
      in
      Alcotest.(check int) "POST 405" 405 status;
      check_content_length headers body;
      Alcotest.(check bool) "405 names the allowed methods" true
        (contains body "GET"))

let () =
  Alcotest.run "planstats"
    [
      ( "qerror",
        [
          Alcotest.test_case "edge cases" `Quick test_qerror_edges;
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "save/load/merge" `Quick test_save_load_merge;
          Alcotest.test_case "online == offline" `Quick
            test_online_offline_parity;
          Alcotest.test_case "drift detection" `Quick test_drift_detection;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "planstats routes" `Quick
            test_monitor_planstats_routes;
          Alcotest.test_case "HEAD and 405" `Quick test_monitor_head_and_405;
        ] );
    ]
