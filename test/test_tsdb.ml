(* The flight recorder: the windowed time-series store's delta/ring
   semantics, tail-based trace sampling, OpenMetrics exemplar
   round-trips, windowed alert rules, and clean start/stop of every
   background thread the observability layer spawns. *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* A one-root span tree with [spans] nodes, all sharing one trace id. *)
let mk_span ?(spans = 1) ?trace_id () =
  let tid =
    match trace_id with Some t -> t | None -> Trace.next_trace_id ()
  in
  let node name =
    {
      Trace.name;
      detail = "";
      trace_id = tid;
      actor = "";
      start_ns = 0;
      elapsed_ns = 1000;
      io = Io_stats.create ();
      alloc_bytes = 0;
      rows = None;
      children = [];
    }
  in
  let root = node "root" in
  root.Trace.children <- List.init (spans - 1) (fun i -> node (string_of_int i));
  root

(* Save and restore the tail sampler's global knobs around a test. *)
let with_tail_defaults f =
  let thr = Tail.slow_threshold_ns ()
  and every = Tail.sample_every ()
  and budget = Tail.budget_spans () in
  Fun.protect
    ~finally:(fun () ->
      Tail.set_slow_threshold_ns thr;
      Tail.set_sample_every every;
      Tail.set_budget_spans budget;
      Tail.clear ())
    (fun () ->
      Tail.clear ();
      f ())

(* --- The time-series store ------------------------------------------------- *)

let test_counter_deltas_and_reset () =
  let registry = Metrics.create () in
  let t = Tsdb.create ~registry () in
  let c = Metrics.counter ~registry "req_total" in
  Metrics.add c 5;
  Tsdb.sample t;
  Metrics.add c 3;
  Tsdb.sample t;
  let sum () =
    List.fold_left
      (fun acc (_, v) -> acc +. Option.value ~default:0. v)
      0.
      (Tsdb.range t ~window_s:3600. ~agg:Tsdb.Sum "req_total")
  in
  Alcotest.(check (float 1e-9)) "deltas sum to the cumulative" 8. (sum ());
  (* A counter reset (registry reset, process restart) must not produce
     a negative delta: the new cumulative value is the delta. *)
  Metrics.reset registry;
  Metrics.add c 2;
  Tsdb.sample t;
  Alcotest.(check (float 1e-9)) "reset restarts from the new value" 10. (sum ())

let test_ring_wraparound () =
  let registry = Metrics.create () in
  let t = Tsdb.create ~registry ~capacity:4 () in
  let c = Metrics.counter ~registry "tick_total" in
  for _ = 1 to 10 do
    Metrics.incr c;
    Tsdb.sample t
  done;
  Alcotest.(check int) "ring holds its capacity" 4 (Tsdb.window_count t);
  let sum =
    List.fold_left
      (fun acc (_, v) -> acc +. Option.value ~default:0. v)
      0.
      (Tsdb.range t ~window_s:3600. ~agg:Tsdb.Sum "tick_total")
  in
  Alcotest.(check (float 1e-9)) "only the surviving windows count" 4. sum

let test_quantile_over_empty_window () =
  let registry = Metrics.create () in
  let t = Tsdb.create ~registry () in
  Tsdb.sample t;
  let pts =
    Tsdb.range t ~window_s:60. ~agg:(Tsdb.Quantile 0.99) "no_such_ns"
  in
  Alcotest.(check bool) "buckets are returned" true (pts <> []);
  Alcotest.(check bool)
    "every bucket is empty" true
    (List.for_all (fun (_, v) -> v = None) pts)

let test_histogram_window_quantile () =
  let registry = Metrics.create () in
  let t = Tsdb.create ~registry () in
  let h = Metrics.histogram ~registry "lat_ns" in
  for _ = 1 to 100 do
    Metrics.observe h 1000.
  done;
  Tsdb.sample t;
  let value agg =
    List.fold_left
      (fun acc (_, v) -> if v <> None then v else acc)
      None
      (Tsdb.range t ~window_s:60. ~agg "lat_ns")
  in
  (match value (Tsdb.Quantile 0.99) with
  | None -> Alcotest.fail "p99 over the window is empty"
  | Some v ->
      Alcotest.(check bool)
        (Printf.sprintf "p99 %.0f inside the covering power-of-two bucket" v)
        true
        (v >= 512. && v <= 1024.));
  (* A second window with no observations: the histogram emits no
     delta, so the per-window quantile goes back to None. *)
  Tsdb.sample t;
  let recent =
    Tsdb.range t ~window_s:0.000001 ~agg:(Tsdb.Quantile 0.99) "lat_ns"
  in
  Alcotest.(check bool)
    "a quiet window has no quantile" true
    (List.for_all (fun (_, v) -> v = None) recent)

let test_save_load_byte_identical () =
  let registry = Metrics.create () in
  let t = Tsdb.create ~registry ~resolution_s:0.5 ~capacity:16 () in
  let c = Metrics.counter ~registry "ops_total" in
  let g = Metrics.gauge ~registry "depth" in
  let h = Metrics.histogram ~registry ~labels:[ ("route", "q") ] "ns" in
  for i = 1 to 3 do
    Metrics.add c (i * 7);
    Metrics.set g (float_of_int i /. 3.);
    Metrics.observe h (float_of_int (i * 997));
    Tsdb.sample t
  done;
  let doc = Tsdb.to_json_lines t in
  let path = Filename.temp_file "tsdb" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tsdb.save t path;
      let loaded = Tsdb.load path in
      Alcotest.(check int)
        "window count survives" (Tsdb.window_count t)
        (Tsdb.window_count loaded);
      Alcotest.(check string)
        "save . load round-trips byte-identically" doc
        (Tsdb.to_json_lines loaded))

let test_concurrent_sample_while_query () =
  let registry = Metrics.create () in
  let t = Tsdb.create ~registry ~capacity:32 () in
  let c = Metrics.counter ~registry "spin_total" in
  let h = Metrics.histogram ~registry "spin_ns" in
  let stop = ref false in
  let writer =
    Thread.create
      (fun () ->
        while not !stop do
          Metrics.incr c;
          Metrics.observe h 512.;
          Tsdb.sample t;
          Thread.yield ()
        done)
      ()
  in
  for i = 1 to 500 do
    List.iter
      (fun agg -> ignore (Tsdb.range t ~window_s:60. ~agg "spin_total"))
      [ Tsdb.Sum; Tsdb.Rate; Tsdb.Max ];
    ignore (Tsdb.range t ~window_s:60. ~agg:(Tsdb.Quantile 0.5) "spin_ns");
    ignore (Tsdb.to_json_lines t);
    (* Give the writer real turns on the master lock — a tight query
       loop can starve it under systhreads. *)
    if i mod 50 = 0 then Thread.delay 0.001
  done;
  stop := true;
  Thread.join writer;
  Alcotest.(check bool) "windows recorded" true (Tsdb.window_count t > 0)

let test_sampler_thread () =
  let registry = Metrics.create () in
  let t = Tsdb.create ~registry ~resolution_s:0.01 () in
  Alcotest.(check bool) "not running before start" false (Tsdb.running t);
  Tsdb.start t;
  Tsdb.start t;  (* idempotent *)
  Alcotest.(check bool) "running after start" true (Tsdb.running t);
  Thread.delay 0.08;
  Tsdb.stop t;
  Tsdb.stop t;  (* idempotent *)
  Alcotest.(check bool) "stopped after stop" false (Tsdb.running t);
  Alcotest.(check bool) "sampler recorded windows" true (Tsdb.window_count t > 2)

(* --- Tail-based trace sampling --------------------------------------------- *)

let test_tail_reasons () =
  with_tail_defaults (fun () ->
      Tail.set_slow_threshold_ns 1_000_000;
      Tail.set_sample_every 0;
      let consider outcome wall =
        Tail.consider ~origin:"srv" ~outcome ~wall_ns:wall (mk_span ())
      in
      Alcotest.(check bool) "shed retained" true (consider `Shed 10 = Some Tail.Shed);
      Alcotest.(check bool)
        "deadline retained" true
        (consider `Deadline 10 = Some Tail.Deadline);
      Alcotest.(check bool)
        "error retained" true
        (consider `Error 10 = Some Tail.Errored);
      Alcotest.(check bool)
        "slow ok retained" true
        (consider `Ok 2_000_000 = Some Tail.Slow);
      Alcotest.(check bool)
        "fast ok dropped with sampling off" true
        (consider `Ok 10 = None);
      Tail.set_sample_every 1;
      Alcotest.(check bool)
        "1-in-1 baseline retains a fast ok" true
        (consider `Ok 10 = Some Tail.Sampled);
      Alcotest.(check int) "all retained are found" 5 (Tail.retained_count ()))

let test_tail_budget_eviction () =
  with_tail_defaults (fun () ->
      Tail.set_slow_threshold_ns 0;
      Tail.set_sample_every 0;
      Tail.set_budget_spans 3;
      let ids =
        List.init 5 (fun _ ->
            let sp = mk_span () in
            ignore
              (Tail.consider ~origin:"srv" ~outcome:`Ok ~wall_ns:10_000 sp);
            sp.Trace.trace_id)
      in
      Alcotest.(check bool)
        "retention inside the budget" true
        (Tail.retained_spans () <= 3);
      let newest = List.nth ids 4 in
      Alcotest.(check bool)
        "the newest trace survives" true
        (Tail.find newest <> None);
      Alcotest.(check bool)
        "the oldest was evicted" true
        (Tail.find (List.nth ids 0) = None))

let test_tail_dedup_keeps_bigger_tree () =
  with_tail_defaults (fun () ->
      Tail.set_slow_threshold_ns 0;
      Tail.set_sample_every 0;
      let check_order first second =
        Tail.clear ();
        let tid = Trace.next_trace_id () in
        ignore
          (Tail.consider ~origin:"engine" ~outcome:`Ok ~wall_ns:10_000
             (mk_span ~spans:first ~trace_id:tid ()));
        ignore
          (Tail.consider ~origin:"srv" ~outcome:`Ok ~wall_ns:10_000
             (mk_span ~spans:second ~trace_id:tid ()));
        Alcotest.(check int) "one entry per trace id" 1 (Tail.retained_count ());
        match Tail.find tid with
        | None -> Alcotest.fail "trace not retained"
        | Some r ->
            Alcotest.(check int)
              "the bigger tree wins" (max first second)
              (Trace.span_count r.Tail.r_span)
      in
      check_order 1 3;
      check_order 3 1)

(* --- Exemplars -------------------------------------------------------------- *)

let test_exemplar_roundtrip () =
  with_tail_defaults (fun () ->
      Tail.set_slow_threshold_ns 0;
      Tail.set_sample_every 0;
      let registry = Metrics.create () in
      let h = Metrics.histogram ~registry "req_ns" in
      let sp = mk_span () in
      let tid = sp.Trace.trace_id in
      ignore (Tail.consider ~origin:"srv" ~outcome:`Ok ~wall_ns:5000 sp);
      Metrics.observe ~trace_id:tid h 5000.;
      Metrics.observe h 100.;  (* no trace id: no exemplar on that bin *)
      let om = Promexp.to_openmetrics registry in
      Alcotest.(check bool)
        "exemplar on the bucket line" true
        (contains ~affix:(Printf.sprintf "# {trace_id=\"%s\"}" tid) om);
      Alcotest.(check bool)
        "page ends with # EOF" true
        (contains ~affix:"# EOF\n"
           (String.sub om (String.length om - 6) 6));
      Alcotest.(check bool)
        "prometheus text has no exemplars" false
        (contains ~affix:"trace_id" (Promexp.to_text registry));
      (* The round trip: the id printed on /metrics resolves to the
         retained trace — what an operator pasting it into /trace/<id>
         relies on. *)
      (match Tail.find tid with
      | Some r -> Alcotest.(check string) "joins the tail store" tid r.Tail.r_trace_id
      | None -> Alcotest.fail "exemplar id not in the tail store");
      Alcotest.(check bool)
        "openmetrics content type" true
        (contains ~affix:"openmetrics-text" Promexp.content_type_openmetrics))

(* --- Windowed alert rules ---------------------------------------------------- *)

let test_alerts_over_window () =
  let registry = Metrics.create () in
  let tsdb = Tsdb.create ~registry () in
  let a = Alerts.create ~registry ~tsdb () in
  let g = Metrics.gauge ~registry "load_g" in
  Metrics.set g 10.;
  Tsdb.sample tsdb;
  ignore (Alerts.add a ~name:"hot" "load_g over(60s) > 5");
  ignore (Alerts.add a ~name:"quiet" "absent_g over(60s) > 0");
  Alerts.tick a;
  Alcotest.(check bool)
    "windowed rule fires on recorded data" true
    (Alerts.state a "hot" = Some Alerts.Firing);
  Alcotest.(check bool)
    "windowed rule over missing series stays inactive" true
    (Alerts.state a "quiet" = Some Alerts.Inactive);
  (match Alerts.parse "x over(oops) > 1" with
  | exception Alerts.Parse_error _ -> ()
  | _ -> Alcotest.fail "bad window must not parse");
  match Alerts.parse "rate(c_total) over(30s) > 2 for 3" with
  | Alerts.Threshold (Alerts.Source (Alerts.Windowed (Alerts.Rate _, w)), _, _), 3
    ->
      Alcotest.(check (float 1e-9)) "window seconds" 30. w
  | _ -> Alcotest.fail "windowed rate did not parse to Windowed(Rate)"

let test_alerts_exemplar_on_transition () =
  let registry = Metrics.create () in
  let a = Alerts.create ~registry () in
  let h = Metrics.histogram ~registry "slow_ns" in
  let tid = Trace.next_trace_id () in
  Metrics.observe ~trace_id:tid h 1e9;
  ignore (Alerts.add a ~name:"lat" "slow_ns p99 > 1");
  Alerts.tick a;
  Alcotest.(check bool)
    "firing rule carries the exemplar" true
    (Alerts.last_exemplar a "lat" = Some tid);
  (match Alerts.history a with
  | tr :: _ ->
      Alcotest.(check bool)
        "the transition records it" true
        (tr.Alerts.tr_exemplar = Some tid)
  | [] -> Alcotest.fail "no transition recorded");
  (* Resolution drops the live exemplar but the history keeps it. *)
  Alerts.tick a;  (* quantile window empties: resolves *)
  Alcotest.(check bool)
    "resolved rule has no live exemplar" true
    (Alerts.last_exemplar a "lat" = None);
  match Alerts.history a with
  | tr :: _ ->
      Alcotest.(check string) "to resolved" "resolved" tr.Alerts.tr_to;
      Alcotest.(check bool)
        "the incident's exemplar rides out" true
        (tr.Alerts.tr_exemplar = Some tid)
  | [] -> Alcotest.fail "no resolution transition"

(* --- Clean shutdown ----------------------------------------------------------- *)

let linux = Sys.file_exists "/proc/self/status"

let fd_count () = Array.length (Sys.readdir "/proc/self/fd")

let thread_count () =
  let ic = open_in "/proc/self/status" in
  let rec go () =
    match input_line ic with
    | line ->
        if String.length line > 8 && String.sub line 0 8 = "Threads:" then
          int_of_string (String.trim (String.sub line 8 (String.length line - 8)))
        else go ()
    | exception End_of_file -> -1
  in
  let n = go () in
  close_in ic;
  n

(* Repeatedly start and stop every background thread the observability
   stack spawns — monitor accept loop, tsdb sampler, runtime ticker,
   serving front-end — and require the process back at its baseline
   thread and fd counts: the ndqsh exit path in miniature, five times
   over. *)
let test_shutdown_stress () =
  let instance =
    Dif_gen.generate
      ~params:{ Dif_gen.default_params with seed = 3; size = 60 }
      ()
  in
  (* The first Thread.create spawns the runtime's permanent tick
     thread; warm it up so the baseline includes it. *)
  Thread.join (Thread.create ignore ());
  let fds0 = if linux then fd_count () else 0 in
  let threads0 = if linux then thread_count () else 0 in
  (* Joined OCaml threads can take a beat to vanish from the kernel's
     accounting (and the baseline itself may carry a transient), so
     poll until the count settles back under the baseline; a genuine
     leak keeps it above forever. *)
  let settle ~expect count =
    let rec go n = if count () > expect && n > 0 then (Thread.delay 0.01; go (n - 1)) in
    go 100;
    count ()
  in
  for _ = 1 to 5 do
    let registry = Metrics.create () in
    let m = Monitor.start ~registry ~port:0 () in
    let ts = Tsdb.create ~registry ~resolution_s:0.005 () in
    Tsdb.start ts;
    let rt = Runtime.start ~period:0.005 () in
    let srv =
      Srv.start ~registry ~workers:2 ~queue:4 ~port:0
        ~make_engine:(fun () -> Engine.create ~block:32 instance)
        ()
    in
    let status, _ = Monitor.get ~port:(Monitor.port m) "/healthz" in
    Alcotest.(check int) "monitor serves while up" 200 status;
    Thread.delay 0.02;
    Srv.stop srv;
    Runtime.stop rt;
    Tsdb.stop ts;
    Monitor.stop m;
    Alcotest.(check bool) "sampler stopped" false (Tsdb.running ts)
  done;
  if linux then begin
    Alcotest.(check bool) "no fd leak across start/stop" true
      (settle ~expect:fds0 fd_count <= fds0);
    Alcotest.(check bool) "no thread leak across start/stop" true
      (settle ~expect:threads0 thread_count <= threads0)
  end

let () =
  Alcotest.run "tsdb"
    [
      ( "store",
        [
          Alcotest.test_case "counter deltas + reset" `Quick
            test_counter_deltas_and_reset;
          Alcotest.test_case "ring wrap-around" `Quick test_ring_wraparound;
          Alcotest.test_case "quantile over empty window" `Quick
            test_quantile_over_empty_window;
          Alcotest.test_case "histogram window quantile" `Quick
            test_histogram_window_quantile;
          Alcotest.test_case "save/load byte-identical" `Quick
            test_save_load_byte_identical;
          Alcotest.test_case "concurrent sample + query" `Quick
            test_concurrent_sample_while_query;
          Alcotest.test_case "sampler thread" `Quick test_sampler_thread;
        ] );
      ( "tail",
        [
          Alcotest.test_case "retention reasons" `Quick test_tail_reasons;
          Alcotest.test_case "budget eviction" `Quick
            test_tail_budget_eviction;
          Alcotest.test_case "dedup keeps bigger tree" `Quick
            test_tail_dedup_keeps_bigger_tree;
        ] );
      ( "exemplars",
        [
          Alcotest.test_case "openmetrics round-trip" `Quick
            test_exemplar_roundtrip;
        ] );
      ( "alerts",
        [
          Alcotest.test_case "over(window) sources" `Quick
            test_alerts_over_window;
          Alcotest.test_case "exemplar on transitions" `Quick
            test_alerts_exemplar_on_transition;
        ] );
      ( "shutdown",
        [ Alcotest.test_case "start/stop stress" `Quick test_shutdown_stress ] );
    ]
