(* Tests for the streaming executor (Theorem 8.3): a query tree
   evaluates as one fused pipeline, materializing only the root result,
   sort boundaries and double-consumed operands.

   Covered here:
   - Source accounting: pulls from a resident list are charged like a
     scan, live buffers pull free, [force] only copies touched streams;
   - every streaming operator edge produces the canonically sorted
     result of its materialized counterpart;
   - differential: streaming = materialized = reference semantics on
     random instances and query trees (including aggregate filters
     with double-consumed operands);
   - streaming never writes more pages than materialized evaluation;
   - the streaming working set (max resident pages) does not grow with
     the instance size;
   - distributed evaluation returns identical results in both modes. *)

open Testkit

module Src = Ext_list.Source

let fresh_pager () =
  let stats = Io_stats.create () in
  (stats, Pager.create ~block:8 stats)

(* --- Source accounting --------------------------------------------------- *)

let test_source_accounting () =
  let stats, pager = fresh_pager () in
  let backing = Ext_list.of_list_resident pager (List.init 20 Fun.id) in
  (match Src.peek (Src.of_list backing) with
  | Some 0 -> ()
  | _ -> Alcotest.fail "peek of first record");
  (* an untouched list-backed source unwraps for free *)
  Io_stats.reset stats;
  let s = Src.of_list backing in
  ignore (Ext_list.length (Src.force pager s));
  Alcotest.(check int) "untouched force reads nothing" 0 stats.Io_stats.page_reads;
  Alcotest.(check int) "untouched force writes nothing" 0
    stats.Io_stats.page_writes;
  (* draining charges the cursor reads of a scan, and nothing else *)
  Io_stats.reset stats;
  let drained = Src.drain (Src.of_list backing) in
  Alcotest.(check int) "drained all records" 20 (Array.length drained);
  Alcotest.(check int) "drain charges one read per page" 3
    stats.Io_stats.page_reads;
  Alcotest.(check int) "drain writes nothing" 0 stats.Io_stats.page_writes;
  (* live operator output pulls free; only materializing is charged *)
  Io_stats.reset stats;
  let live = Src.of_array (Array.init 20 Fun.id) in
  Alcotest.(check int) "live length" 20 (Src.length live);
  let out = Ext_list.Source.materialize pager live in
  Alcotest.(check int) "live pulls are free" 0 stats.Io_stats.page_reads;
  Alcotest.(check int) "materialize charges the output writes" 3
    stats.Io_stats.page_writes;
  Alcotest.(check int) "materialized length" 20 (Ext_list.length out);
  (* a stream already pulled from must be copied by [force] *)
  Io_stats.reset stats;
  let s = Src.of_list backing in
  ignore (Src.next s);
  let rest = Src.force pager s in
  Alcotest.(check int) "touched force keeps the remainder" 19
    (Ext_list.length rest);
  Alcotest.(check bool) "touched force writes a copy" true
    (stats.Io_stats.page_writes > 0)

(* --- Every streaming operator edge --------------------------------------- *)

let rec sorted = function
  | a :: (b :: _ as tl) -> Entry.compare_rev a b < 0 && sorted tl
  | _ -> true

(* [list_op] and [src_op] are the same operator in its two dresses; the
   streaming edge must drain to the materialized result, in canonical
   order, without ever writing more pages. *)
let check_edge stats name ~list_op ~src_op =
  Io_stats.reset stats;
  let expected = Ext_list.to_list (list_op ()) in
  let list_writes = stats.Io_stats.page_writes in
  Io_stats.reset stats;
  let got = Array.to_list (Src.drain (src_op ())) in
  let src_writes = stats.Io_stats.page_writes in
  check_entries (name ^ ": streaming = materialized") expected got;
  Alcotest.(check bool) (name ^ ": canonical order") true (sorted got);
  Alcotest.(check bool)
    (Printf.sprintf "%s: streaming writes (%d) <= materialized (%d)" name
       src_writes list_writes)
    true
    (src_writes <= list_writes)

let esas_filter =
  (* count($2) >= max(count($2)): mentions an entry-set aggregate, so
     the annotated list must stay materialized even under streaming. *)
  Ast.
    {
      lhs = A_entry Ea_count_witnesses;
      op = Ge;
      rhs = A_entry_set (Esa_agg (Max, Ea_count_witnesses));
    }

let global_gsel_filter =
  (* min(id) <= count($1): needs the global first scan. *)
  Ast.
    {
      lhs = A_entry (Ea_agg (Min, Self "id"));
      op = Le;
      rhs = A_entry_set Esa_count_entries;
    }

let local_gsel_filter =
  Ast.{ lhs = A_entry (Ea_agg (Min, Self "id")); op = Ge; rhs = A_const 10 }

let test_operator_edges () =
  let instance =
    Dif_gen.generate
      ~params:
        { Dif_gen.default_params with size = 150; seed = 7; ref_fanout = 2 }
      ()
  in
  let stats, pager = fresh_pager () in
  let part k =
    Instance.fold
      (fun acc e ->
        match Entry.int_values e "id" with
        | id :: _ when id mod 3 = k -> e :: acc
        | _ -> acc)
      [] instance
    |> List.rev
    |> Ext_list.of_list_resident pager
  in
  let l1 = part 0 and l2 = part 1 and l3 = part 2 in
  let s = Src.of_list in
  let edge = check_edge stats in
  edge "and"
    ~list_op:(fun () -> Bool_ops.and_ l1 l2)
    ~src_op:(fun () -> Bool_ops.and_src pager (s l1) (s l2));
  edge "or"
    ~list_op:(fun () -> Bool_ops.or_ l1 l2)
    ~src_op:(fun () -> Bool_ops.or_src pager (s l1) (s l2));
  edge "diff"
    ~list_op:(fun () -> Bool_ops.diff l1 l2)
    ~src_op:(fun () -> Bool_ops.diff_src pager (s l1) (s l2));
  edge "parents"
    ~list_op:(fun () -> Hs_pc.parents l1 l2)
    ~src_op:(fun () -> Hs_pc.parents_src pager (s l1) (s l2));
  edge "children"
    ~list_op:(fun () -> Hs_pc.children l1 l2)
    ~src_op:(fun () -> Hs_pc.children_src pager (s l1) (s l2));
  edge "ancestors"
    ~list_op:(fun () -> Hs_ad.ancestors l1 l2)
    ~src_op:(fun () -> Hs_ad.ancestors_src pager (s l1) (s l2));
  edge "descendants"
    ~list_op:(fun () -> Hs_ad.descendants l1 l2)
    ~src_op:(fun () -> Hs_ad.descendants_src pager (s l1) (s l2));
  edge "ancestors-c"
    ~list_op:(fun () -> Hs_adc.ancestors_c l1 l2 l3)
    ~src_op:(fun () -> Hs_adc.ancestors_c_src pager (s l1) (s l2) (s l3));
  edge "descendants-c"
    ~list_op:(fun () -> Hs_adc.descendants_c l1 l2 l3)
    ~src_op:(fun () -> Hs_adc.descendants_c_src pager (s l1) (s l2) (s l3));
  edge "hier with entry-set aggs"
    ~list_op:(fun () -> Hs_agg.compute_hier ~agg:esas_filter Ast.D l1 l2)
    ~src_op:(fun () ->
      Hs_agg.compute_hier_src ~agg:esas_filter pager Ast.D (s l1) (s l2));
  edge "hier3 with entry-set aggs"
    ~list_op:(fun () -> Hs_agg.compute_hier3 ~agg:esas_filter Ast.Dc l1 l2 l3)
    ~src_op:(fun () ->
      Hs_agg.compute_hier3_src ~agg:esas_filter pager Ast.Dc (s l1) (s l2)
        (s l3));
  edge "gsel (local)"
    ~list_op:(fun () -> Simple_agg.compute local_gsel_filter l1)
    ~src_op:(fun () -> Simple_agg.compute_src pager local_gsel_filter (s l1));
  edge "gsel (global, double-consumed input)"
    ~list_op:(fun () -> Simple_agg.compute global_gsel_filter l1)
    ~src_op:(fun () -> Simple_agg.compute_src pager global_gsel_filter (s l1));
  edge "eref dv"
    ~list_op:(fun () -> Er.compute_dv l1 l2 "ref")
    ~src_op:(fun () -> Er.compute_dv_src pager (s l1) (s l2) "ref");
  edge "eref vd (double-consumed L1)"
    ~list_op:(fun () -> Er.compute_vd l1 l2 "ref")
    ~src_op:(fun () -> Er.compute_vd_src pager (s l1) (s l2) "ref");
  edge "eref dv (hash)"
    ~list_op:(fun () -> Er_hash.compute_dv l1 l2 "ref")
    ~src_op:(fun () -> Er_hash.compute_dv_src pager (s l1) (s l2) "ref");
  edge "eref vd (hash)"
    ~list_op:(fun () -> Er_hash.compute_vd l1 l2 "ref")
    ~src_op:(fun () -> Er_hash.compute_vd_src pager (s l1) (s l2) "ref")

(* --- Differential: streaming = materialized = semantics ------------------ *)

let prop_modes_agree (instance, q) =
  let eval mode = Engine.eval_entries (engine ~mode instance) q in
  let streaming = eval Engine.Streaming in
  let materialized = eval Engine.Materialized in
  let expected = dns_of (oracle instance q) in
  dns_of streaming = expected && dns_of materialized = expected

let prop_streaming_writes_no_more (instance, q) =
  let writes mode =
    let e = engine ~mode instance in
    ignore (Engine.eval_entries e q);
    (Engine.stats e).Io_stats.page_writes
  in
  writes Engine.Streaming <= writes Engine.Materialized

(* --- Constant working set ------------------------------------------------ *)

let l2_query =
  "(g (d (dc=kroot ? sub ? tag=even) (& (dc=kroot ? sub ? tag=odd) (dc=kroot \
   ? sub ? priority>=1)) count($2) > 0) min(priority) >= 0)"

let test_constant_resident () =
  let q = Qparser.of_string l2_query in
  let resident size =
    let instance = Dif_gen.karily ~fanout:4 ~size () in
    let e =
      Engine.create ~block:8 ~with_attr_index:false ~mode:Engine.Streaming
        instance
    in
    let stats = Engine.stats e in
    Io_stats.reset stats;
    ignore (Engine.eval_entries e q);
    stats.Io_stats.max_resident_pages
  in
  let r500 = resident 500 in
  Alcotest.(check int) "working set constant at N=1000" r500 (resident 1000);
  Alcotest.(check int) "working set constant at N=2000" r500 (resident 2000)

(* --- Distributed evaluation ---------------------------------------------- *)

let test_dist_modes_agree () =
  let instance =
    Dif_gen.generate
      ~params:
        { Dif_gen.default_params with size = 300; seed = 11; roots = 2 }
      ()
  in
  let domains =
    match Instance.roots instance with
    | [] -> [ Dn.root ]
    | roots -> List.map Entry.dn roots
  in
  let net = Dist.deploy instance domains in
  let q = Qparser.of_string "(d ( ? sub ? priority>=0) ( ? sub ? id>=5))" in
  let run mode =
    let coord = Dist.coordinator net (List.hd domains) in
    let out = Dist.eval_entries ~mode coord q in
    (out, coord.Dist.stats.Io_stats.page_writes)
  in
  let materialized, mat_writes = run Engine.Materialized in
  let streaming, stream_writes = run Engine.Streaming in
  check_entries "distributed streaming = materialized" materialized streaming;
  check_entries "distributed = centralized semantics"
    (oracle instance q) streaming;
  Alcotest.(check bool)
    (Printf.sprintf "coordinator streaming writes (%d) <= materialized (%d)"
       stream_writes mat_writes)
    true
    (stream_writes <= mat_writes)

let () =
  Alcotest.run "stream"
    [
      ( "source",
        [ Alcotest.test_case "accounting" `Quick test_source_accounting ] );
      ( "edges",
        [ Alcotest.test_case "every operator" `Quick test_operator_edges ] );
      ( "differential",
        [
          qtest ~count:80 "streaming = materialized = semantics"
            gen_instance_and_query prop_modes_agree;
          qtest ~count:80 "streaming writes <= materialized"
            gen_instance_and_query prop_streaming_writes_no_more;
        ] );
      ( "working-set",
        [
          Alcotest.test_case "max resident constant in N" `Quick
            test_constant_resident;
        ] );
      ( "dist",
        [ Alcotest.test_case "modes agree" `Quick test_dist_modes_agree ] );
    ]
