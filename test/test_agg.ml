(* Unit and property tests for the aggregate machinery (exact rationals,
   distributive states) and the Explain plan module. *)

open QCheck2

(* --- Rationals ------------------------------------------------------------ *)

let test_num_basics () =
  let n a b = Agg.make_num a b in
  Alcotest.(check string) "normalization" "1/2" (Agg.num_to_string (n 2 4));
  Alcotest.(check string) "sign in numerator" "-1/2" (Agg.num_to_string (n 1 (-2)));
  Alcotest.(check string) "integers print plain" "7" (Agg.num_to_string (n 14 2));
  Alcotest.(check int) "compare" (-1) (Agg.compare_num (n 1 3) (n 1 2));
  Alcotest.(check int) "equal across forms" 0 (Agg.compare_num (n 2 4) (n 3 6));
  Alcotest.(check string) "addition" "5/6"
    (Agg.num_to_string (Agg.num_add (n 1 2) (n 1 3)));
  Alcotest.check_raises "zero denominator"
    (Invalid_argument "Agg.make_num: zero denominator") (fun () ->
      ignore (n 1 0))

let gen_rat = Gen.map2 (fun a b -> Agg.make_num a (1 + abs b)) (Gen.int_range (-500) 500) (Gen.int_range 0 50)

let prop_add_commutative (a, b) =
  Agg.compare_num (Agg.num_add a b) (Agg.num_add b a) = 0

let prop_compare_antisym (a, b) =
  Agg.compare_num a b = -Agg.compare_num b a

(* --- Distributive states ---------------------------------------------------- *)

let gen_ints = Gen.list_size (Gen.int_range 0 40) (Gen.int_range (-50) 50)

let fold_state f xs =
  List.fold_left (fun st x -> Agg.add_int st x) (Agg.init f) xs

let reference f xs =
  match (f, xs) with
  | Ast.Count, _ -> Some (Agg.num_of_int (List.length xs))
  | Ast.Sum, _ -> Some (Agg.num_of_int (List.fold_left ( + ) 0 xs))
  | (Ast.Min | Ast.Max | Ast.Average), [] -> None
  | Ast.Min, _ -> Some (Agg.num_of_int (List.fold_left min max_int xs))
  | Ast.Max, _ -> Some (Agg.num_of_int (List.fold_left max min_int xs))
  | Ast.Average, _ ->
      Some (Agg.make_num (List.fold_left ( + ) 0 xs) (List.length xs))

let all_funs = Ast.[ Min; Max; Sum; Count; Average ]

let prop_state_matches_reference xs =
  List.for_all
    (fun f ->
      match (Agg.result (fold_state f xs), reference f xs) with
      | Some a, Some b -> Agg.compare_num a b = 0
      | None, None -> true
      | Some _, None | None, Some _ -> false)
    all_funs

(* combine over a split equals the fold over the whole (distributivity) *)
let prop_state_distributive (xs, ys) =
  List.for_all
    (fun f ->
      let combined = Agg.combine (fold_state f xs) (fold_state f ys) in
      let whole = fold_state f (xs @ ys) in
      match (Agg.result combined, Agg.result whole) with
      | Some a, Some b -> Agg.compare_num a b = 0
      | None, None -> true
      | Some _, None | None, Some _ -> false)
    all_funs

let test_combine_mismatch () =
  Alcotest.check_raises "mismatched states"
    (Invalid_argument "Agg.combine: mismatched aggregate states") (fun () ->
      ignore (Agg.combine (Agg.init Ast.Min) (Agg.init Ast.Sum)))

let test_undefined_comparisons () =
  Alcotest.(check bool) "None vs Some is false" false
    (Agg.cmp_holds_opt Ast.Eq None (Some (Agg.num_of_int 0)));
  Alcotest.(check bool) "None vs None is false" false
    (Agg.cmp_holds_opt Ast.Ne None None);
  Alcotest.(check bool) "min of empty is undefined" true
    (Agg.result (Agg.init Ast.Min) = None);
  Alcotest.(check bool) "avg of empty is undefined" true
    (Agg.result (Agg.init Ast.Average) = None);
  Alcotest.(check bool) "sum of empty is 0" true
    (match Agg.result (Agg.init Ast.Sum) with
    | Some n -> Agg.compare_num n (Agg.num_of_int 0) = 0
    | None -> false)

(* average uses exact arithmetic: 1,2 averages to 3/2, not 1 *)
let test_average_exact () =
  let st = Agg.add_int (Agg.add_int (Agg.init Ast.Average) 1) 2 in
  match Agg.result st with
  | Some n -> Alcotest.(check string) "3/2" "3/2" (Agg.num_to_string n)
  | None -> Alcotest.fail "defined"

(* --- Explain ------------------------------------------------------------------ *)

let explain_instance () =
  Dif_gen.generate ~params:{ Dif_gen.default_params with size = 400; seed = 21 } ()

let test_profile_matches_eval () =
  let i = explain_instance () in
  let eng = Engine.create ~block:16 i in
  List.iter
    (fun text ->
      let q = Qparser.of_string text in
      let expected = Semantics.eval i q in
      let result, plan = Explain.profile eng q in
      Testkit.check_entries ("profile result: " ^ text) expected
        (Ext_list.to_list result);
      (* every node carries actuals after profiling *)
      let rec all_filled (n : Explain.node) =
        n.Explain.actual_rows <> None
        && n.Explain.actual_io <> None
        && List.for_all all_filled n.Explain.children
      in
      Alcotest.(check bool) "actuals filled" true (all_filled plan);
      (* the root's actual row count is the result size *)
      Alcotest.(check (option int)) "root rows"
        (Some (List.length expected))
        plan.Explain.actual_rows)
    [
      "( ? sub ? priority>=5)";
      "(- ( ? sub ? objectClass=node) ( ? sub ? tag=red))";
      "(c ( ? sub ? objectClass=organizationalUnit) ( ? sub ? \
       objectClass=person) count($2) >= 1)";
      "(dc ( ? sub ? objectClass=dcObject) ( ? sub ? objectClass=person) ( ? \
       sub ? objectClass=organizationalUnit))";
      "(g ( ? sub ? objectClass=person) min(priority) = min(min(priority)))";
      "(vd ( ? sub ? objectClass=node) ( ? sub ? priority<=3) ref)";
    ]

let test_estimate_shape () =
  let i = explain_instance () in
  let eng = Engine.create ~block:16 i in
  let q =
    Qparser.of_string
      "(a (& ( ? sub ? tag=red) ( ? sub ? priority>=2)) ( ? sub ? \
       objectClass=dcObject))"
  in
  let plan = Explain.estimate eng q in
  Alcotest.(check string) "root label" "a" plan.Explain.label;
  Alcotest.(check int) "two children" 2 (List.length plan.Explain.children);
  Alcotest.(check bool) "estimates positive" true (plan.Explain.est_io > 0);
  (* estimation must not execute anything *)
  Alcotest.(check bool) "no actuals" true (plan.Explain.actual_rows = None);
  (* rendering works *)
  let text = Fmt.str "%a" Explain.pp_node plan in
  Alcotest.(check bool) "renders" true (String.length text > 0)

let prop_profile_total_io_near_engine (i, q) =
  (* per-node attribution sums to roughly what a plain evaluation costs
     (atomic caching differences aside, it must at least be positive and
     bounded by 4x either way) *)
  let eng = Engine.create ~block:8 i in
  let _, plan = Explain.profile eng q in
  let total = Explain.total_actual_io plan in
  Engine.reset_stats eng;
  ignore (Engine.eval eng q);
  let direct = Io_stats.total_io (Engine.stats eng) in
  total >= 0 && (direct = 0 || total <= 4 * direct + 8)

let () =
  Alcotest.run "agg"
    [
      ( "rationals",
        [
          Alcotest.test_case "basics" `Quick test_num_basics;
          Testkit.qtest ~count:200 "addition commutative"
            (Gen.pair gen_rat gen_rat) prop_add_commutative;
          Testkit.qtest ~count:200 "compare antisymmetric"
            (Gen.pair gen_rat gen_rat) prop_compare_antisym;
        ] );
      ( "states",
        [
          Testkit.qtest ~count:200 "state = reference" gen_ints
            prop_state_matches_reference;
          Testkit.qtest ~count:200 "distributive" (Gen.pair gen_ints gen_ints)
            prop_state_distributive;
          Alcotest.test_case "combine mismatch" `Quick test_combine_mismatch;
          Alcotest.test_case "undefined comparisons" `Quick
            test_undefined_comparisons;
          Alcotest.test_case "average exact" `Quick test_average_exact;
        ] );
      ( "explain",
        [
          Alcotest.test_case "profile = eval" `Quick test_profile_matches_eval;
          Alcotest.test_case "estimate shape" `Quick test_estimate_shape;
          Testkit.qtest ~count:60 "profiled io sane"
            Testkit.gen_instance_and_query prop_profile_total_io_near_engine;
        ] );
    ]
