(* Empirical verification of the I/O-complexity theorems: the measured
   page-transfer counts of every algorithm must stay within the bounds of
   Theorems 5.1, 6.1, 6.2, 7.1, 8.3 and 8.4, and must scale linearly
   (resp. N log N) as inputs grow.  The quadratic baselines must not. *)

let block = 16

let with_pager () =
  let stats = Io_stats.create () in
  (stats, Pager.create ~block stats)

let pages n = if n <= 0 then 0 else ((n - 1) / block) + 1

(* Sorted class-filtered lists of a karily instance, as resident inputs. *)
let lists_of instance classes =
  let stats, pager = with_pager () in
  let by_class c =
    Instance.fold
      (fun acc e -> if Entry.has_class e c then e :: acc else acc)
      [] instance
    |> List.rev
  in
  (stats, pager, List.map (fun c -> Ext_list.of_list_resident pager (by_class c)) classes)

(* Split an instance's entries into even/odd tag lists — two disjoint
   lists that each span the whole forest. *)
let even_odd instance =
  let stats, pager = with_pager () in
  let tagged t =
    Instance.fold
      (fun acc e -> if Entry.string_values e "tag" = [ t ] then e :: acc else acc)
      [] instance
    |> List.rev
  in
  ( stats,
    pager,
    Ext_list.of_list_resident pager (tagged "even"),
    Ext_list.of_list_resident pager (tagged "odd") )

(* --- Theorem 5.1 / 6.2: the stack algorithms are linear ------------------- *)

(* Bound: inputs read once + annotated-L1 write + (<= 2) annotation scans
   + output write + stack spill traffic (<= inputs).  A generous constant
   of 6 on the input pages covers all of it. *)
let hier_bound n1 n2 n3 = (6 * (pages n1 + pages n2 + pages n3)) + 12

let measure_hier ?(window = 2) op instance =
  let _, _, l1, l2 = even_odd instance in
  let stats = Pager.stats (Ext_list.pager l1) in
  Io_stats.reset stats;
  let out =
    match op with
    | `P -> Hs_pc.parents ~window l1 l2
    | `C -> Hs_pc.children ~window l1 l2
    | `A -> Hs_ad.ancestors ~window l1 l2
    | `D -> Hs_ad.descendants ~window l1 l2
  in
  (Io_stats.total_io stats, Ext_list.length l1, Ext_list.length l2, out)

let test_hier_linear_bound () =
  List.iter
    (fun (shape, size) ->
      let instance =
        match shape with
        | `Bushy -> Dif_gen.karily ~fanout:8 ~size ()
        | `Binary -> Dif_gen.karily ~fanout:2 ~size ()
        | `Chain -> Dif_gen.chain ~size ()
      in
      List.iter
        (fun op ->
          let io, n1, n2, _ = measure_hier op instance in
          let bound = hier_bound n1 n2 0 in
          if io > bound then
            Alcotest.failf "io %d exceeds linear bound %d (size %d)" io bound size)
        [ `P; `C; `A; `D ])
    [ (`Bushy, 2_000); (`Binary, 2_000); (`Chain, 2_000); (`Bushy, 500) ]

(* Chains force stack spills with a 1-page window; the bound must hold
   regardless (the paper's swapped-out-stack remark). *)
let test_hier_linear_with_spills () =
  let instance = Dif_gen.chain ~size:3_000 () in
  List.iter
    (fun op ->
      let io, n1, n2, _ = measure_hier ~window:1 op instance in
      let bound = hier_bound n1 n2 0 in
      if io > bound then Alcotest.failf "spilling io %d exceeds %d" io bound)
    [ `A; `D ]

let test_hier3_linear_bound () =
  let instance = Dif_gen.karily ~fanout:3 ~size:3_000 () in
  let _, pager, lists = lists_of instance [ "node"; "node"; "node" ] in
  match lists with
  | [ l1; l2; l3 ] ->
      (* carve three interleaved sublists so the operands differ *)
      let part k l = Ext_list.filter (fun e -> Entry.int_values e "id" <> [] &&
        List.hd (Entry.int_values e "id") mod 3 = k) l in
      let stats = Pager.stats pager in
      let a = part 0 l1 and b = part 1 l2 and c = part 2 l3 in
      Io_stats.reset stats;
      ignore (Hs_adc.ancestors_c a b c);
      ignore (Hs_adc.descendants_c a b c);
      let bound =
        2 * hier_bound (Ext_list.length a) (Ext_list.length b) (Ext_list.length c)
      in
      let io = Io_stats.total_io stats in
      if io > bound then Alcotest.failf "hier3 io %d exceeds %d" io bound
  | _ -> assert false

(* Doubling the input at most ~doubles the I/O (linearity in practice). *)
let test_hier_scaling () =
  let io_at size =
    let instance = Dif_gen.karily ~fanout:4 ~size () in
    let io, _, _, _ = measure_hier `D instance in
    io
  in
  let io1 = io_at 2_000 and io2 = io_at 4_000 and io4 = io_at 8_000 in
  Alcotest.(check bool)
    (Printf.sprintf "2x growth %d -> %d -> %d" io1 io2 io4)
    true
    (io2 <= (5 * io1 / 2) + 16 && io4 <= (5 * io2 / 2) + 16)

(* The cost model, pinned exactly: on a bushy tree (no stack spills) the
   ComputeHSPC I/O decomposes into the merged input read, the annotated-L1
   write, the annotation read, and the output write — nothing else. *)
let test_hspc_exact_decomposition () =
  let instance = Dif_gen.karily ~fanout:4 ~size:4_096 () in
  let _, _, l1, l2 = even_odd instance in
  let stats = Pager.stats (Ext_list.pager l1) in
  let n1 = Ext_list.length l1 and n2 = Ext_list.length l2 in
  Io_stats.reset stats;
  let out = Hs_pc.parents l1 l2 in
  let expected_reads = pages n1 + pages n2 + pages n1 in
  let expected_writes = pages n1 + pages (Ext_list.length out) in
  Alcotest.(check int) "reads decompose exactly" expected_reads
    stats.Io_stats.page_reads;
  Alcotest.(check int) "writes decompose exactly" expected_writes
    stats.Io_stats.page_writes;
  (* the aggregate-filter variant adds exactly one more annotation scan *)
  Io_stats.reset stats;
  let out2 =
    Hs_agg.compute_hier Ast.C l1 l2
      ~agg:
        { Ast.lhs = Ast.A_entry Ast.Ea_count_witnesses;
          op = Ast.Eq;
          rhs = Ast.A_entry_set (Ast.Esa_agg (Ast.Max, Ast.Ea_count_witnesses)) }
  in
  Alcotest.(check int) "one extra scan for the global max"
    (expected_reads + pages n1)
    stats.Io_stats.page_reads;
  Alcotest.(check int) "writes" (pages n1 + pages (Ext_list.length out2))
    stats.Io_stats.page_writes

(* Boolean merges are exactly one read of each input plus the output. *)
let test_bool_exact_decomposition () =
  let instance = Dif_gen.karily ~fanout:4 ~size:4_096 () in
  let _, _, l1, l2 = even_odd instance in
  let stats = Pager.stats (Ext_list.pager l1) in
  let n1 = Ext_list.length l1 and n2 = Ext_list.length l2 in
  List.iter
    (fun (name, op) ->
      Io_stats.reset stats;
      let out = op l1 l2 in
      Alcotest.(check int) (name ^ " reads") (pages n1 + pages n2)
        stats.Io_stats.page_reads;
      Alcotest.(check int) (name ^ " writes")
        (pages (Ext_list.length out))
        stats.Io_stats.page_writes)
    [ ("and", Bool_ops.and_); ("or", Bool_ops.or_); ("diff", Bool_ops.diff) ]

(* --- Theorem 6.1: simple aggregate selection in <= 2 scans ------------------ *)

let test_simple_agg_two_scans () =
  let instance = Dif_gen.karily ~fanout:4 ~size:4_000 () in
  let _, _, l1, _ = even_odd instance in
  let stats = Pager.stats (Ext_list.pager l1) in
  let n1 = Ext_list.length l1 in
  (* entry-only filter: one scan plus the output write *)
  Io_stats.reset stats;
  let out =
    Simple_agg.compute
      { Ast.lhs = Ast.A_entry (Ast.Ea_agg (Ast.Min, Ast.Self "priority"));
        op = Ast.Le; rhs = Ast.A_const 3 }
      l1
  in
  let bound1 = pages n1 + pages (Ext_list.length out) + 2 in
  Alcotest.(check bool)
    (Printf.sprintf "one scan: %d <= %d" (Io_stats.total_io stats) bound1)
    true
    (Io_stats.total_io stats <= bound1);
  (* entry-set filter: two scans plus the output write *)
  Io_stats.reset stats;
  let out2 =
    Simple_agg.compute
      { Ast.lhs = Ast.A_entry (Ast.Ea_agg (Ast.Min, Ast.Self "priority"));
        op = Ast.Eq;
        rhs = Ast.A_entry_set (Ast.Esa_agg (Ast.Min, Ast.Ea_agg (Ast.Min, Ast.Self "priority"))) }
      l1
  in
  let bound2 = (2 * pages n1) + pages (Ext_list.length out2) + 2 in
  Alcotest.(check bool)
    (Printf.sprintf "two scans: %d <= %d" (Io_stats.total_io stats) bound2)
    true
    (Io_stats.total_io stats <= bound2)

(* --- Structural aggregates stay linear (Fig 6) -------------------------------- *)

let test_hs_agg_linear () =
  let instance = Dif_gen.karily ~fanout:4 ~size:4_000 () in
  let _, _, l1, l2 = even_odd instance in
  let stats = Pager.stats (Ext_list.pager l1) in
  Io_stats.reset stats;
  ignore
    (Hs_agg.compute_hier Ast.D l1 l2
       ~agg:
         { Ast.lhs = Ast.A_entry Ast.Ea_count_witnesses;
           op = Ast.Eq;
           rhs = Ast.A_entry_set (Ast.Esa_agg (Ast.Max, Ast.Ea_count_witnesses)) });
  let bound = hier_bound (Ext_list.length l1) (Ext_list.length l2) 0 in
  let io = Io_stats.total_io stats in
  if io > bound then Alcotest.failf "hs-agg io %d exceeds %d" io bound

(* --- Theorem 7.1: embedded references are O(N/B log N/B) ---------------------- *)

let er_inputs size m =
  let instance =
    Dif_gen.generate
      ~params:{ Dif_gen.default_params with size; seed = 17; ref_fanout = m }
      ()
  in
  let stats, pager = with_pager () in
  let by c =
    Instance.fold
      (fun acc e -> if Entry.has_class e c then e :: acc else acc)
      [] instance
    |> List.rev
  in
  ( stats,
    Ext_list.of_list_resident pager (Instance.to_list instance),
    Ext_list.of_list_resident pager (by "node") )

let nlogn_bound n m =
  let np = pages (n * m) in
  let rec log2 x = if x <= 1 then 1 else 1 + log2 (x / 2) in
  (8 * np * log2 np) + (8 * pages n) + 16

let test_er_bound () =
  List.iter
    (fun (size, m) ->
      let stats, all, nodes = er_inputs size m in
      Io_stats.reset stats;
      ignore (Er.compute_dv all nodes "ref");
      let io_dv = Io_stats.total_io stats in
      Io_stats.reset stats;
      ignore (Er.compute_vd nodes all "ref");
      let io_vd = Io_stats.total_io stats in
      let bound = nlogn_bound size m in
      if io_dv > bound || io_vd > bound then
        Alcotest.failf "er io dv=%d vd=%d exceeds %d (size %d, m %d)" io_dv
          io_vd bound size m)
    [ (1_000, 1); (2_000, 2); (4_000, 4) ]

(* --- The naive baselines really are quadratic ----------------------------------- *)

let test_naive_quadratic () =
  let io_at size =
    let instance = Dif_gen.karily ~fanout:4 ~size () in
    let _, _, l1, l2 = even_odd instance in
    let stats = Pager.stats (Ext_list.pager l1) in
    Io_stats.reset stats;
    ignore (Naive.compute_hier Ast.D l1 l2);
    Io_stats.total_io stats
  in
  let io1 = io_at 1_000 and io2 = io_at 2_000 in
  (* quadratic: doubling the input should at least triple the I/O *)
  Alcotest.(check bool)
    (Printf.sprintf "naive grows superlinearly: %d -> %d" io1 io2)
    true
    (io2 > 3 * io1);
  (* and the stack algorithm beats it by a wide margin at this size *)
  let instance = Dif_gen.karily ~fanout:4 ~size:2_000 () in
  let smart, _, _, _ = measure_hier `D instance in
  Alcotest.(check bool)
    (Printf.sprintf "crossover: stack %d << naive %d" smart io2)
    true
    (10 * smart < io2)

(* --- Theorem 8.3 / 8.4: whole query trees --------------------------------------- *)

(* |Q| operators over cumulative atomic output L: engine I/O within
   O(|Q| * L/B), with constant memory (bounded resident pages). *)
let test_engine_l2_bound () =
  let instance = Dif_gen.karily ~fanout:4 ~size:4_000 () in
  let q =
    Qparser.of_string
      "(g (d (dc=kroot ? sub ? tag=even) (& (dc=kroot ? sub ? tag=odd) \
       (dc=kroot ? sub ? priority>=1)) count($2) > 0) min(priority) >= 0)"
  in
  let eng = Engine.create ~block ~with_attr_index:false instance in
  let atoms = Ast.atomic_subqueries q in
  let cumulative =
    List.fold_left
      (fun n a -> n + List.length (Semantics.eval_atomic instance a))
      0 atoms
  in
  Engine.reset_stats eng;
  ignore (Engine.eval eng q);
  let stats = Engine.stats eng in
  (* atomic evaluation scans subtrees, so charge the scan size too *)
  let scan_cost = List.length atoms * pages (Instance.size instance) in
  let bound = (8 * Ast.size q * pages cumulative) + (2 * scan_cost) + 16 in
  let io = Io_stats.total_io stats in
  if io > bound then Alcotest.failf "engine io %d exceeds %d" io bound;
  Alcotest.(check bool) "constant memory" true
    (stats.Io_stats.max_resident_pages <= 4 * Ast.size q)

let test_engine_scaling_linear () =
  let io_at size =
    let instance = Dif_gen.karily ~fanout:4 ~size () in
    let q =
      Qparser.of_string
        "(a (dc=kroot ? sub ? tag=even) (d (dc=kroot ? sub ? tag=odd) \
         (dc=kroot ? sub ? priority<=3)))"
    in
    let eng = Engine.create ~block ~with_attr_index:false instance in
    Engine.reset_stats eng;
    ignore (Engine.eval eng q);
    Io_stats.total_io (Engine.stats eng)
  in
  let io1 = io_at 2_000 and io2 = io_at 4_000 in
  Alcotest.(check bool)
    (Printf.sprintf "engine linear: %d -> %d" io1 io2)
    true
    (io2 <= (5 * io1 / 2) + 16)

(* Outputs of every operator stay sorted end to end (Section 8.2's
   no-resorting invariant, experiment E15). *)
let prop_pipeline_sorted (instance, q) =
  let eng = Engine.create ~block:8 instance in
  let out = Engine.eval eng q in
  Ext_list.is_sorted Entry.compare_rev out

let () =
  Alcotest.run "complexity"
    [
      ( "theorem-5.1",
        [
          Alcotest.test_case "hier ops linear bound" `Slow test_hier_linear_bound;
          Alcotest.test_case "linear despite spills" `Slow
            test_hier_linear_with_spills;
          Alcotest.test_case "hier3 linear bound" `Slow test_hier3_linear_bound;
          Alcotest.test_case "scaling" `Slow test_hier_scaling;
          Alcotest.test_case "HSPC cost pinned exactly" `Quick
            test_hspc_exact_decomposition;
          Alcotest.test_case "boolean cost pinned exactly" `Quick
            test_bool_exact_decomposition;
        ] );
      ( "theorem-6.x",
        [
          Alcotest.test_case "simple agg <= 2 scans" `Slow
            test_simple_agg_two_scans;
          Alcotest.test_case "structural agg linear" `Slow test_hs_agg_linear;
        ] );
      ("theorem-7.1", [ Alcotest.test_case "er nlogn bound" `Slow test_er_bound ]);
      ( "baselines",
        [ Alcotest.test_case "naive quadratic + crossover" `Slow
            test_naive_quadratic ] );
      ( "theorem-8.x",
        [
          Alcotest.test_case "L2 tree bound + memory" `Slow test_engine_l2_bound;
          Alcotest.test_case "engine scaling" `Slow test_engine_scaling_linear;
          Testkit.qtest ~count:100 "pipeline keeps sortedness"
            Testkit.gen_instance_and_query prop_pipeline_sorted;
        ] );
    ]
