(* Tests for the secondary indexes: B+tree, tries, substring index and
   the clustering dn-index. *)

let fresh ?(block = 8) () =
  let stats = Io_stats.create () in
  (stats, Pager.create ~block stats)

(* --- B+tree ----------------------------------------------------------------- *)

module Imap = Map.Make (Int)

let gen_kvs =
  QCheck2.Gen.(
    list_size (int_range 0 800) (pair (int_range 0 200) (int_range 0 10_000)))

let prop_btree_vs_map kvs =
  let _, pager = fresh () in
  let bt = Btree.create ~order:2 pager in
  let model =
    List.fold_left
      (fun m (k, v) ->
        Btree.insert bt k v;
        Imap.update k (function None -> Some [ v ] | Some vs -> Some (vs @ [ v ])) m)
      Imap.empty kvs
  in
  Btree.check_invariants bt;
  Imap.for_all (fun k vs -> Btree.find bt k = vs) model
  && List.for_all (fun k -> Btree.find bt k = []) [ -1; 201; 1000 ]
  && Btree.cardinal bt = List.length kvs

let prop_btree_range kvs =
  let _, pager = fresh () in
  let bt = Btree.create ~order:2 pager in
  List.iter (fun (k, v) -> Btree.insert bt k v) kvs;
  let model =
    List.fold_left
      (fun m (k, v) ->
        Imap.update k (function None -> Some [ v ] | Some vs -> Some (vs @ [ v ])) m)
      Imap.empty kvs
  in
  List.for_all
    (fun (lo, hi) ->
      let got = Btree.range bt ~lo ~hi in
      let expect =
        Imap.bindings model |> List.filter (fun (k, _) -> lo <= k && k <= hi)
      in
      got = expect)
    [ (0, 200); (50, 60); (100, 100); (150, 10); (-5, 500) ]

let prop_btree_fold kvs =
  let _, pager = fresh () in
  let bt = Btree.create ~order:3 pager in
  List.iter (fun (k, v) -> Btree.insert bt k v) kvs;
  let keys = Btree.fold_all (fun acc k _ -> k :: acc) [] bt |> List.rev in
  let expect = List.sort_uniq Int.compare (List.map fst kvs) in
  keys = expect

let test_btree_io_logarithmic () =
  let stats, pager = fresh () in
  let bt = Btree.create ~order:8 pager in
  for i = 1 to 10_000 do
    Btree.insert bt i i
  done;
  Io_stats.reset stats;
  ignore (Btree.find bt 5_000);
  (* Height of a 10k-key tree of order 8 is tiny; a point lookup must not
     scan. *)
  Alcotest.(check bool) "point lookup reads < 8 pages" true
    (stats.Io_stats.page_reads < 8)

(* --- Tries ------------------------------------------------------------------- *)

let words =
  [ "jagadish"; "jag"; "lakshmanan"; "milo"; "mil"; "srivastava"; "vista"; "" ]

let test_trie_exact_prefix () =
  let _, pager = fresh () in
  let t = Str_trie.create pager in
  List.iteri (fun i w -> Str_trie.add t w i) words;
  List.iteri
    (fun i w ->
      Alcotest.(check (list int)) ("exact " ^ w) [ i ] (Str_trie.find_exact t w))
    words;
  Alcotest.(check (list int)) "no match" [] (Str_trie.find_exact t "nope");
  let prefix_hits p =
    List.sort Int.compare (Str_trie.find_prefix t p)
  in
  Alcotest.(check (list int)) "prefix jag" [ 0; 1 ] (prefix_hits "jag");
  Alcotest.(check (list int)) "prefix mil" [ 3; 4 ] (prefix_hits "mil");
  Alcotest.(check (list int)) "prefix empty = all" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (prefix_hits "")

let gen_strings =
  QCheck2.Gen.(
    list_size (int_range 0 60)
      (string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_range 0 8)))

let prop_substr_index strs =
  let _, pager = fresh () in
  let idx = Str_trie.Substr.create pager in
  List.iteri (fun i s -> Str_trie.Substr.add idx s i) strs;
  let contains sub s =
    let n = String.length s and m = String.length sub in
    let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
    loop 0
  in
  List.for_all
    (fun sub ->
      let got = List.sort Int.compare (Str_trie.Substr.find_substring idx sub) in
      let expect =
        List.mapi (fun i s -> (i, s)) strs
        |> List.filter (fun (_, s) -> contains sub s)
        |> List.map fst
      in
      got = expect)
    [ "a"; "ab"; "abc"; "cc"; "" ]

(* --- Dn_index ------------------------------------------------------------------ *)

let test_dn_index_scans () =
  let stats, pager = fresh ~block:4 () in
  let i = Dif_gen.karily ~fanout:3 ~size:50 () in
  let idx = Dn_index.build pager i in
  Io_stats.reset stats;
  let root = Dn.of_string "dc=kroot" in
  Alcotest.(check int) "length" 50 (Dn_index.length idx);
  Alcotest.(check int) "subtree scan = all" 50
    (Ext_list.length (Dn_index.scan_subtree idx root));
  Alcotest.(check bool) "find present" true (Dn_index.find idx root <> None);
  Alcotest.(check bool) "find absent" true
    (Dn_index.find idx (Dn.of_string "dc=nothing") = None);
  (* children scope = base + its children *)
  let one = Dn_index.scan_children idx root in
  Alcotest.(check int) "one scope" 4 (Ext_list.length one);
  (* base scope via dedicated scan *)
  Alcotest.(check int) "base scope" 1
    (Ext_list.length (Dn_index.scan_base idx root));
  Alcotest.(check bool) "io was charged" true (Io_stats.total_io stats > 0)

let prop_dn_index_subtree_matches_instance seed =
  let i =
    Dif_gen.generate ~params:{ Dif_gen.default_params with seed; size = 120 } ()
  in
  let _, pager = fresh () in
  let idx = Dn_index.build pager i in
  List.for_all
    (fun e ->
      let base = Entry.dn e in
      let got = Ext_list.to_list (Dn_index.scan_subtree idx base) in
      let expect = Instance.subtree i base in
      List.length got = List.length expect
      && List.for_all2 Entry.equal_dn got expect)
    (Instance.to_list i)

(* --- Attr_index ------------------------------------------------------------------ *)

let test_attr_index_lookups () =
  let _, pager = fresh () in
  let i = Dif_gen.karily ~fanout:2 ~size:64 () in
  let idx = Attr_index.build pager i in
  (* id is unique: equality range returns one posting *)
  (match Attr_index.lookup_int_range idx "id" ~lo:10 ~hi:10 with
  | Some [ e ] -> Alcotest.(check bool) "right entry" true (Entry.int_values e "id" = [ 10 ])
  | _ -> Alcotest.fail "expected exactly one id=10");
  (* range over priorities covers everything *)
  (match Attr_index.lookup_int_range idx "priority" ~lo:0 ~hi:6 with
  | Some es -> Alcotest.(check int) "all non-root entries" 63 (List.length es)
  | None -> Alcotest.fail "priority should be indexed");
  (match Attr_index.lookup_str_eq idx "tag" "even" with
  | Some es ->
      Alcotest.(check bool) "some evens" true (List.length es > 0);
      Alcotest.(check bool) "all even" true
        (List.for_all (fun e -> Entry.string_values e "tag" = [ "even" ]) es)
  | None -> Alcotest.fail "tag should be indexed");
  (match Attr_index.lookup_substring idx "tag" "ve" with
  | Some es -> Alcotest.(check bool) "substring hits" true (List.length es > 0)
  | None -> Alcotest.fail "substring index missing");
  Alcotest.(check bool) "unindexed attribute yields empty" true
    (Attr_index.lookup_int_range idx "nosuch" ~lo:0 ~hi:9 = Some [])

(* Every cardinality probe agrees with materializing the matching
   lookup — the planner's statistics must be the truth it prices. *)
let posting_len = function Some es -> List.length es | None -> 0

let test_attr_index_counts () =
  let _, pager = fresh () in
  let i = Dif_gen.karily ~fanout:2 ~size:64 () in
  let idx = Attr_index.build pager i in
  List.iter
    (fun (lo, hi) ->
      Alcotest.(check int)
        (Printf.sprintf "count_int_range id [%d,%d]" lo hi)
        (posting_len (Attr_index.lookup_int_range idx "id" ~lo ~hi))
        (Attr_index.count_int_range idx "id" ~lo ~hi))
    [ (10, 10); (0, 63); (20, 40); (70, 99); (min_int, max_int) ];
  List.iter
    (fun s ->
      Alcotest.(check int) ("count_str_eq tag " ^ s)
        (posting_len (Attr_index.lookup_str_eq idx "tag" s))
        (Attr_index.count_str_eq idx "tag" s))
    [ "even"; "odd"; "neither" ];
  List.iter
    (fun p ->
      Alcotest.(check int) ("count_prefix tag " ^ p)
        (posting_len (Attr_index.lookup_str_prefix idx "tag" p))
        (Attr_index.count_prefix idx "tag" p))
    [ "e"; "ev"; "even"; "o"; ""; "x" ];
  (* the substring probe is an upper bound (per-occurrence, the lookup
     dedups); these patterns occur at most once per value, so exact *)
  List.iter
    (fun s ->
      Alcotest.(check int) ("count_substring tag " ^ s)
        (posting_len (Attr_index.lookup_substring idx "tag" s))
        (Attr_index.count_substring idx "tag" s))
    [ "ve"; "dd"; "even"; "zz" ];
  Alcotest.(check int) "count on unindexed attribute" 0
    (Attr_index.count_int_range idx "nosuch" ~lo:0 ~hi:9)

let test_attr_index_count_dn () =
  let _, pager = fresh () in
  let i = Dif_gen.generate ~params:{ Dif_gen.default_params with seed = 7; size = 80 } () in
  let idx = Attr_index.build pager i in
  (* every dn actually referenced, plus one that never is *)
  let refs =
    Instance.fold
      (fun acc e ->
        List.fold_left
          (fun acc (a, v) ->
            match (a, v) with "ref", Value.Dn d -> d :: acc | _ -> acc)
          acc (Entry.attrs e))
      [] i
  in
  Alcotest.(check bool) "generator produced refs" true (refs <> []);
  List.iter
    (fun d ->
      Alcotest.(check int)
        ("count_dn_eq " ^ Dn.to_string d)
        (posting_len (Attr_index.lookup_dn_eq idx "ref" d))
        (Attr_index.count_dn_eq idx "ref" d))
    (Dn.child Dn.root (Rdn.single "id" (Value.Int 424242)) :: refs)

(* Randomized: counts agree with lookups on arbitrary small string
   multisets (including duplicate values, where subtree counters could
   drift from posting lists). *)
let prop_trie_counts_vs_lookups strs =
  let _, pager = fresh () in
  let t = Str_trie.create pager in
  List.iteri (fun i s -> Str_trie.add t s i) strs;
  let probes = "" :: "a" :: "ab" :: "abc" :: "ca" :: strs in
  List.for_all
    (fun s ->
      Str_trie.count_exact t s = List.length (Str_trie.find_exact t s)
      && Str_trie.count_prefix t s = List.length (Str_trie.find_prefix t s))
    probes

let prop_btree_counts_vs_range kvs =
  let _, pager = fresh () in
  let bt = Btree.create ~order:2 pager in
  List.iter (fun (k, v) -> Btree.insert bt k v) kvs;
  List.for_all
    (fun (lo, hi) ->
      Btree.count_range bt ~lo ~hi
      = List.length (List.concat_map snd (Btree.range bt ~lo ~hi)))
    [ (0, 200); (50, 60); (100, 100); (150, 10); (-5, 500); (min_int, max_int) ]

(* The substring counter never undercounts (it may overcount values
   containing the pattern twice, which the lookup dedups). *)
let prop_substr_count_upper_bound strs =
  let _, pager = fresh () in
  let idx = Str_trie.Substr.create pager in
  List.iteri (fun i s -> Str_trie.Substr.add idx s i) strs;
  List.for_all
    (fun s ->
      Str_trie.Substr.count_substring idx s
      >= List.length (Str_trie.Substr.find_substring idx s))
    ("" :: "a" :: "bc" :: "abc" :: strs)

let () =
  Alcotest.run "index"
    [
      ( "btree",
        [
          Testkit.qtest ~count:200 "vs map oracle" gen_kvs prop_btree_vs_map;
          Testkit.qtest ~count:100 "range scans" gen_kvs prop_btree_range;
          Testkit.qtest ~count:100 "fold in key order" gen_kvs prop_btree_fold;
          Alcotest.test_case "lookup io logarithmic" `Quick
            test_btree_io_logarithmic;
        ] );
      ( "trie",
        [
          Alcotest.test_case "exact and prefix" `Quick test_trie_exact_prefix;
          Testkit.qtest ~count:200 "substring index vs naive" gen_strings
            prop_substr_index;
        ] );
      ( "dn-index",
        [
          Alcotest.test_case "scans and scopes" `Quick test_dn_index_scans;
          Testkit.qtest ~count:30 "subtree = instance oracle"
            (QCheck2.Gen.int_range 0 10_000)
            prop_dn_index_subtree_matches_instance;
        ] );
      ( "attr-index",
        [
          Alcotest.test_case "typed lookups" `Quick test_attr_index_lookups;
          Alcotest.test_case "count probes = lookup lengths" `Quick
            test_attr_index_counts;
          Alcotest.test_case "dn count probe" `Quick test_attr_index_count_dn;
        ] );
      ( "count-probes",
        [
          Testkit.qtest ~count:200 "trie counts vs lookups" gen_strings
            prop_trie_counts_vs_lookups;
          Testkit.qtest ~count:200 "btree count_range vs range" gen_kvs
            prop_btree_counts_vs_range;
          Testkit.qtest ~count:200 "substring count is an upper bound"
            gen_strings prop_substr_count_upper_bound;
        ] );
    ]
