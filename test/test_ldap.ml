(* Tests for the LDAP baseline language and the expressiveness results
   of Theorem 8.1. *)

let dn = Dn.of_string

let instance () =
  Dif_gen.generate
    ~params:{ Dif_gen.default_params with size = 150; seed = 5; roots = 2 }
    ()

(* --- Parsing ------------------------------------------------------------- *)

let test_parse_roundtrip () =
  List.iter
    (fun s ->
      let q = Ldap.of_string s in
      Alcotest.(check string) s s (Ldap.to_string q))
    [
      "ldap:///dc=root0?sub?(objectClass=person)";
      "ldap:///dc=root0?one?(&(objectClass=person)(priority<=3))";
      "ldap:///dc=root0?base?(|(name=jagadish)(name=milo))";
      "ldap:///dc=root0?sub?(!(tag=red))";
      "ldap:///dc=root0?sub?(&(id=*)(!(|(tag=red)(tag=blue))))";
    ]

let test_parse_errors () =
  List.iter
    (fun s ->
      match Ldap.of_string s with
      | exception Ldap.Parse_error _ -> ()
      | exception Dn.Parse_error _ -> ()
      | _ -> Alcotest.failf "should not parse: %s" s)
    [ "ldap:///dc=root0?sub"; "ldap:///dc=root0?sideways?(a=1)";
      "ldap:///dc=root0?sub?(&(a=1)" ]

(* --- Evaluation ------------------------------------------------------------ *)

(* Indexed evaluation agrees with the direct definition. *)
let gen_ldap_query =
  let open QCheck2.Gen in
  let ( let* ) = ( >>= ) in
  let atom =
    oneof
      [
        return (Afilter.Present "id");
        map (fun c -> Afilter.Str_eq (Schema.object_class, c))
          (oneofl [ "node"; "person"; "dcObject" ]);
        map (fun k -> Afilter.Int_cmp ("priority", Afilter.Le, k)) (int_range 0 9);
        map (fun n -> Afilter.Str_eq ("name", n)) (oneofl [ "milo"; "smith" ]);
      ]
  in
  let rec filt depth =
    if depth = 0 then map (fun a -> Ldap.F_atom a) atom
    else
      oneof
        [
          map (fun a -> Ldap.F_atom a) atom;
          map (fun fs -> Ldap.F_and fs) (list_size (int_range 1 3) (filt (depth - 1)));
          map (fun fs -> Ldap.F_or fs) (list_size (int_range 1 3) (filt (depth - 1)));
          map (fun f -> Ldap.F_not f) (filt (depth - 1));
        ]
  in
  let* scope = oneofl Ast.[ Base; One; Sub ] in
  let* filter = filt 2 in
  let* base = oneofl [ dn "dc=root0"; dn "dc=root1"; Dn.root; dn "dc=ghost" ] in
  return { Ldap.base; scope; filter }

let prop_indexed_matches_direct q =
  let i = instance () in
  let stats = Io_stats.create () in
  let idx = Dn_index.build (Pager.create ~block:8 stats) i in
  let direct = Ldap.eval i q in
  let indexed = Ext_list.to_list (Ldap.eval_indexed idx q) in
  List.length direct = List.length indexed
  && List.for_all2 Entry.equal_dn direct indexed

(* LDAP -> L0 translation preserves semantics (Thm 8.1: LDAP <= L0). *)
let prop_to_l0_preserves q =
  let i = instance () in
  let ldap_result = Ldap.eval i q in
  let l0_result = Semantics.eval i (Ldap.to_l0 q) in
  List.length ldap_result = List.length l0_result
  && List.for_all2 Entry.equal_dn ldap_result l0_result

(* And the translation lands in L0. *)
let prop_to_l0_is_l0 q = Lang.level (Ldap.to_l0 q) = Lang.L0

(* Single-base single-scope L0 queries collapse back into LDAP. *)
let test_of_l0 () =
  let collapsible =
    Qparser.of_string
      "(- (dc=root0 ? sub ? name=milo) (dc=root0 ? sub ? tag=red))"
  in
  (match Ldap.of_l0 collapsible with
  | Some q ->
      let i = instance () in
      let a = Ldap.eval i q and b = Semantics.eval i collapsible in
      Alcotest.(check int) "same cardinality" (List.length b) (List.length a);
      Alcotest.(check bool) "same entries" true (List.for_all2 Entry.equal_dn a b)
  | None -> Alcotest.fail "single-base diff should collapse");
  (* Example 4.1 needs two different bases: not a single LDAP query. *)
  let ex41 =
    Qparser.of_string
      "(- (dc=root0 ? sub ? name=milo) (id=1, dc=root0 ? sub ? name=milo))"
  in
  Alcotest.(check bool) "example 4.1 shape does not collapse" true
    (Ldap.of_l0 ex41 = None);
  (* Hierarchical operators never collapse. *)
  let l1 =
    Qparser.of_string "(p (dc=root0 ? sub ? id=*) (dc=root0 ? sub ? id=*))"
  in
  Alcotest.(check bool) "L1 does not collapse" true (Ldap.of_l0 l1 = None)

(* The witness for LDAP < L0 (Example 4.1): no boolean filter over one
   base/scope can emulate a different-base difference, demonstrated on a
   concrete instance where the L0 query separates two entries that any
   single-base-filter query treats identically.  Entries id=1 under
   research and id=1 under corp have identical attribute sets, so any
   pure filter selects both or neither; the L0 query selects exactly
   one. *)
let test_expressiveness_witness () =
  let sc = Dif_gen.schema () in
  let e d attrs = Entry.make (dn d) attrs in
  let ocl c = (Schema.object_class, Value.Str c) in
  let twin id_dn =
    e id_dn [ ("id", Value.Int 1); ("surName", Value.Str "jagadish"); ocl "person" ]
  in
  let i =
    Instance.of_entries sc
      [
        e "dc=att" [ ("dc", Value.Str "att"); ocl "dcObject" ];
        e "ou=research, dc=att" [ ("ou", Value.Str "research"); ocl "organizationalUnit" ];
        e "ou=corp, dc=att" [ ("ou", Value.Str "corp"); ocl "organizationalUnit" ];
        twin "id=1, ou=research, dc=att";
        twin "id=1, ou=corp, dc=att";
      ]
  in
  let l0 =
    Qparser.of_string
      "(- (dc=att ? sub ? surName=jagadish) (ou=research, dc=att ? sub ? \
       surName=jagadish))"
  in
  let result = Semantics.eval i l0 in
  Alcotest.(check (list string)) "L0 separates the twins"
    [ "id=1, ou=corp, dc=att" ]
    (Testkit.dns_of result);
  (* Both twins satisfy exactly the same filters, so every LDAP query
     (over any base/scope) returns both or neither whenever its scope
     covers both. *)
  let twins = [ dn "id=1, ou=research, dc=att"; dn "id=1, ou=corp, dc=att" ] in
  let same_attrs =
    let a = Option.get (Instance.find i (List.nth twins 0)) in
    let b = Option.get (Instance.find i (List.nth twins 1)) in
    Entry.attrs a = Entry.attrs b
  in
  Alcotest.(check bool) "twins are attribute-identical" true same_attrs

let () =
  Alcotest.run "ldap"
    [
      ( "syntax",
        [
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "evaluation",
        [
          Testkit.qtest ~count:200 "indexed = direct" gen_ldap_query
            prop_indexed_matches_direct;
        ] );
      ( "expressiveness",
        [
          Testkit.qtest ~count:200 "to_l0 preserves semantics" gen_ldap_query
            prop_to_l0_preserves;
          Testkit.qtest ~count:200 "to_l0 lands in L0" gen_ldap_query
            prop_to_l0_is_l0;
          Alcotest.test_case "of_l0 collapse" `Quick test_of_l0;
          Alcotest.test_case "Example 4.1 witness" `Quick
            test_expressiveness_witness;
        ] );
    ]
