(* Tests for the update side: Directory (add / delete / modify /
   modify_dn with subtree rename) and Ldif (serialization round-trips). *)

let dn = Dn.of_string

let base_dir () =
  Directory.create
    (Dif_gen.generate ~params:{ Dif_gen.default_params with size = 60; seed = 4 } ())

let small_dir () =
  let sc = Dif_gen.schema () in
  let d = Directory.of_schema sc in
  let oc c = (Schema.object_class, Value.Str c) in
  let add_ok e =
    match Directory.add ~as_root:(Dn.depth (Entry.dn e) = 1) d e with
    | Ok () -> ()
    | Error err -> Alcotest.failf "setup add failed: %a" Directory.pp_error err
  in
  List.iter add_ok
    [
      Entry.make (dn "dc=org") [ ("dc", Value.Str "org"); oc "dcObject" ];
      Entry.make (dn "ou=a, dc=org")
        [ ("ou", Value.Str "a"); oc "organizationalUnit" ];
      Entry.make (dn "id=1, ou=a, dc=org")
        [ ("id", Value.Int 1); ("surName", Value.Str "milo"); oc "person" ];
      Entry.make (dn "id=2, ou=a, dc=org")
        [ ("id", Value.Int 2); ("surName", Value.Str "vista"); oc "person" ];
    ];
  d

let ok = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Directory.pp_error e

let expect_err name = function
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s: expected an error" name

(* --- Directory: add / delete -------------------------------------------- *)

let test_add_requires_parent () =
  let d = small_dir () in
  expect_err "orphan"
    (Directory.add d
       (Entry.make (dn "id=9, ou=ghost, dc=org")
          [ ("id", Value.Int 9); (Schema.object_class, Value.Str "person") ]));
  ok
    (Directory.add d
       (Entry.make (dn "id=9, ou=a, dc=org")
          [ ("id", Value.Int 9); (Schema.object_class, Value.Str "person") ]));
  expect_err "duplicate"
    (Directory.add d
       (Entry.make (dn "id=9, ou=a, dc=org")
          [ ("id", Value.Int 9); (Schema.object_class, Value.Str "person") ]))

let test_add_validates_schema () =
  let d = small_dir () in
  expect_err "bad attribute"
    (Directory.add d
       (Entry.make (dn "id=9, ou=a, dc=org")
          [
            ("id", Value.Int 9);
            ("ghost", Value.Str "boo");
            (Schema.object_class, Value.Str "person");
          ]))

let test_delete_leaf_only () =
  let d = small_dir () in
  expect_err "has children" (Directory.delete d (dn "ou=a, dc=org"));
  ok (Directory.delete d (dn "id=1, ou=a, dc=org"));
  Alcotest.(check bool) "gone" false (Directory.mem d (dn "id=1, ou=a, dc=org"));
  expect_err "already gone" (Directory.delete d (dn "id=1, ou=a, dc=org"));
  (* subtree deletion takes everything below *)
  ok (Directory.delete ~subtree:true d (dn "ou=a, dc=org"));
  Alcotest.(check int) "only the root remains" 1 (Directory.size d)

(* --- Directory: modify ---------------------------------------------------- *)

let test_modify_values () =
  let d = small_dir () in
  let target = dn "id=1, ou=a, dc=org" in
  ok
    (Directory.modify d target
       [
         Directory.Add_value ("priority", Value.Int 3);
         Directory.Add_value ("priority", Value.Int 5);
       ]);
  let e = Option.get (Directory.find d target) in
  Alcotest.(check (list int)) "multi-valued add" [ 3; 5 ]
    (Entry.int_values e "priority");
  ok (Directory.modify d target [ Directory.Delete_value ("priority", Value.Int 3) ]);
  let e = Option.get (Directory.find d target) in
  Alcotest.(check (list int)) "value deleted" [ 5 ] (Entry.int_values e "priority");
  ok (Directory.modify d target [ Directory.Replace ("priority", [ Value.Int 9 ]) ]);
  let e = Option.get (Directory.find d target) in
  Alcotest.(check (list int)) "replaced" [ 9 ] (Entry.int_values e "priority");
  ok (Directory.modify d target [ Directory.Delete_attr "priority" ]);
  let e = Option.get (Directory.find d target) in
  Alcotest.(check (list int)) "attr gone" [] (Entry.int_values e "priority");
  (* schema still enforced *)
  expect_err "type error"
    (Directory.modify d target [ Directory.Add_value ("priority", Value.Str "x") ]);
  (* the rdn may not lose its values *)
  expect_err "rdn protected"
    (Directory.modify d target [ Directory.Delete_attr "id" ]);
  expect_err "no such entry"
    (Directory.modify d (dn "id=99, ou=a, dc=org")
       [ Directory.Add_value ("priority", Value.Int 1) ])

let test_modify_preserves_validity () =
  let d = base_dir () in
  (* random mutations keep the whole directory valid *)
  let rng = Prng.create 77 in
  let entries = Instance.to_list (Directory.instance d) in
  List.iteri
    (fun i e ->
      if i mod 3 = 0 then
        let _ =
          Directory.modify d (Entry.dn e)
            [ Directory.Add_value ("priority", Value.Int (Prng.int rng 100)) ]
        in
        ())
    entries;
  Alcotest.(check int) "still valid" 0 (List.length (Directory.validate d))

(* --- Directory: modify_dn --------------------------------------------------- *)

let test_rename_leaf () =
  let d = small_dir () in
  ok
    (Directory.modify_dn d
       (dn "id=2, ou=a, dc=org")
       ~new_rdn:(Rdn.single "id" (Value.Int 20)));
  Alcotest.(check bool) "new dn" true (Directory.mem d (dn "id=20, ou=a, dc=org"));
  Alcotest.(check bool) "old dn gone" false
    (Directory.mem d (dn "id=2, ou=a, dc=org"));
  let e = Option.get (Directory.find d (dn "id=20, ou=a, dc=org")) in
  Alcotest.(check (list int)) "rdn value updated" [ 20 ] (Entry.int_values e "id");
  Alcotest.(check (list string)) "other attrs kept" [ "vista" ]
    (Entry.string_values e "surName");
  Alcotest.(check int) "valid" 0 (List.length (Directory.validate d))

let test_rename_subtree () =
  let d = small_dir () in
  ok
    (Directory.modify_dn d (dn "ou=a, dc=org")
       ~new_rdn:(Rdn.single "ou" (Value.Str "b")));
  Alcotest.(check bool) "child moved" true
    (Directory.mem d (dn "id=1, ou=b, dc=org"));
  Alcotest.(check bool) "old child gone" false
    (Directory.mem d (dn "id=1, ou=a, dc=org"));
  Alcotest.(check int) "size preserved" 4 (Directory.size d);
  Alcotest.(check int) "valid" 0 (List.length (Directory.validate d))

let test_move_new_superior () =
  let d = small_dir () in
  let oc c = (Schema.object_class, Value.Str c) in
  ok
    (Directory.add d
       (Entry.make (dn "ou=c, dc=org") [ ("ou", Value.Str "c"); oc "organizationalUnit" ]));
  ok
    (Directory.modify_dn d
       (dn "id=1, ou=a, dc=org")
       ~new_superior:(dn "ou=c, dc=org")
       ~new_rdn:(Rdn.single "id" (Value.Int 1)));
  Alcotest.(check bool) "moved" true (Directory.mem d (dn "id=1, ou=c, dc=org"));
  expect_err "missing superior"
    (Directory.modify_dn d
       (dn "id=2, ou=a, dc=org")
       ~new_superior:(dn "ou=ghost, dc=org")
       ~new_rdn:(Rdn.single "id" (Value.Int 2)));
  expect_err "collision"
    (Directory.modify_dn d
       (dn "id=2, ou=a, dc=org")
       ~new_superior:(dn "ou=c, dc=org")
       ~new_rdn:(Rdn.single "id" (Value.Int 1)))

let test_batch_atomicity () =
  let d = small_dir () in
  let size0 = Directory.size d in
  let gen0 = Directory.generation d in
  let result =
    Directory.batch d
      [
        (fun d ->
          Directory.add d
            (Entry.make (dn "id=7, ou=a, dc=org")
               [ ("id", Value.Int 7); (Schema.object_class, Value.Str "person") ]));
        (fun d -> Directory.delete d (dn "ou=a, dc=org") (* fails: children *));
      ]
  in
  expect_err "batch fails" result;
  Alcotest.(check int) "rolled back" size0 (Directory.size d);
  Alcotest.(check int) "generation rolled back" gen0 (Directory.generation d);
  ok
    (Directory.batch d
       [
         (fun d ->
           Directory.add d
             (Entry.make (dn "id=7, ou=a, dc=org")
                [ ("id", Value.Int 7); (Schema.object_class, Value.Str "person") ]));
         (fun d -> Directory.delete d (dn "id=7, ou=a, dc=org"));
       ]);
  Alcotest.(check int) "net zero" size0 (Directory.size d)

(* Queries over a mutated directory still agree with the oracle. *)
let test_query_after_updates () =
  let d = base_dir () in
  let entries = Instance.to_list (Directory.instance d) in
  List.iteri
    (fun i e ->
      if i mod 5 = 2 && not (Directory.mem d (Entry.dn e)) then ()
      else if i mod 5 = 2 then ignore (Directory.delete ~subtree:true d (Entry.dn e)))
    entries;
  let q =
    Qparser.of_string "(c ( ? sub ? objectClass=organizationalUnit) ( ? sub ? objectClass=person))"
  in
  let eng = Engine.create ~block:8 (Directory.instance d) in
  Testkit.check_entries "engine = oracle after updates"
    (Semantics.eval (Directory.instance d) q)
    (Engine.eval_entries eng q)

(* --- Ldif ---------------------------------------------------------------------- *)

let test_ldif_roundtrip_small () =
  let i = Tops.figure_11 () in
  let text = Ldif.instance_to_string i in
  let i' = Ldif.of_string text in
  Alcotest.(check int) "size preserved" (Instance.size i) (Instance.size i');
  Alcotest.(check int) "valid" 0 (List.length (Instance.validate i'));
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "same dn" true (Entry.equal_dn a b);
      Alcotest.(check bool) "same attrs" true (Entry.attrs a = Entry.attrs b))
    (Instance.to_list i) (Instance.to_list i')

let prop_ldif_roundtrip seed =
  let i =
    Dif_gen.generate ~params:{ Dif_gen.default_params with seed; size = 100 } ()
  in
  let i' = Ldif.of_string (Ldif.instance_to_string i) in
  Instance.size i = Instance.size i'
  && List.for_all2
       (fun a b -> Entry.equal_dn a b && Entry.attrs a = Entry.attrs b)
       (Instance.to_list i) (Instance.to_list i')

let test_ldif_errors () =
  let bad text =
    match Ldif.of_string text with
    | exception Ldif.Parse_error _ -> ()
    | exception Instance.Invalid _ -> ()
    | _ -> Alcotest.failf "should not parse: %s" text
  in
  bad "uid: nodnline\n";
  bad "# schema\nattribute x mystery\n";
  bad "dn: uid=zoe\nghost: 1\n";
  bad "attribute age int\nclass p age\ndn: age=x\nage: notanint\n"

let test_ldif_file_io () =
  let i = Qos.figure_12 () in
  let path = Filename.temp_file "ndq" ".ldif" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ldif.save path i;
      let i' = Ldif.load path in
      Alcotest.(check int) "file roundtrip" (Instance.size i) (Instance.size i'))

let () =
  Alcotest.run "update"
    [
      ( "directory",
        [
          Alcotest.test_case "add requires parent" `Quick test_add_requires_parent;
          Alcotest.test_case "add validates schema" `Quick test_add_validates_schema;
          Alcotest.test_case "delete leaf-only" `Quick test_delete_leaf_only;
          Alcotest.test_case "modify values" `Quick test_modify_values;
          Alcotest.test_case "modify preserves validity" `Quick
            test_modify_preserves_validity;
          Alcotest.test_case "rename leaf" `Quick test_rename_leaf;
          Alcotest.test_case "rename subtree" `Quick test_rename_subtree;
          Alcotest.test_case "move to new superior" `Quick test_move_new_superior;
          Alcotest.test_case "batch atomicity" `Quick test_batch_atomicity;
          Alcotest.test_case "query after updates" `Quick test_query_after_updates;
        ] );
      ( "ldif",
        [
          Alcotest.test_case "figure 11 roundtrip" `Quick test_ldif_roundtrip_small;
          Testkit.qtest ~count:40 "generated roundtrip"
            (QCheck2.Gen.int_range 0 10_000) prop_ldif_roundtrip;
          Alcotest.test_case "errors" `Quick test_ldif_errors;
          Alcotest.test_case "file io" `Quick test_ldif_file_io;
        ] );
    ]
