(* Tests for the observability layer: metrics registry semantics,
   span-tree nesting, the recent-trace ring, and per-operator profiling
   through Explain. *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec loop i = i + n <= h && (String.sub hay i n = needle || loop (i + 1)) in
  loop 0

(* --- Metrics ---------------------------------------------------------------- *)

let test_counter_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "requests_total" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "value" 5 (Metrics.counter_value c);
  let again = Metrics.counter ~registry:r "requests_total" in
  Metrics.incr again;
  Alcotest.(check int) "same series" 6 (Metrics.counter_value c)

let test_counter_labels () =
  let r = Metrics.create () in
  let a = Metrics.counter ~registry:r ~labels:[ ("server", "s0") ] "msgs" in
  let b = Metrics.counter ~registry:r ~labels:[ ("server", "s1") ] "msgs" in
  Metrics.add a 3;
  Metrics.incr b;
  Alcotest.(check int) "label set s0" 3 (Metrics.counter_value a);
  Alcotest.(check int) "label set s1" 1 (Metrics.counter_value b);
  (* label order does not matter: same sorted set, same series *)
  let c1 =
    Metrics.counter ~registry:r ~labels:[ ("x", "1"); ("y", "2") ] "pair"
  in
  let c2 =
    Metrics.counter ~registry:r ~labels:[ ("y", "2"); ("x", "1") ] "pair"
  in
  Metrics.incr c1;
  Metrics.incr c2;
  Alcotest.(check int) "order-insensitive" 2 (Metrics.counter_value c1)

let test_kind_mismatch () =
  let r = Metrics.create () in
  ignore (Metrics.counter ~registry:r "dual");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Metrics: dual already registered as a counter")
    (fun () -> ignore (Metrics.gauge ~registry:r "dual"))

let test_histogram_quantiles () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r "latency" in
  for v = 1 to 100 do
    Metrics.observe h (float_of_int v)
  done;
  Alcotest.(check int) "count" 100 (Metrics.histogram_count h);
  Alcotest.(check (float 0.001)) "sum" 5050. (Metrics.histogram_sum h);
  (* rank 50 of 1..100 lands in the [32,64) bucket: the estimate may be
     off by the bucketing factor of two, never more *)
  let p50 = Metrics.quantile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 in [32,64] (got %g)" p50)
    true
    (p50 >= 32. && p50 <= 64.);
  let p99 = Metrics.quantile h 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "p99 in [64,100] (got %g)" p99)
    true
    (p99 >= 64. && p99 <= 100.);
  (* quantiles clamp to the observed extremes (modulo bucket width) *)
  let p0 = Metrics.quantile h 0. in
  Alcotest.(check bool)
    (Printf.sprintf "q=0 within first bucket (got %g)" p0)
    true
    (p0 >= 1. && p0 <= 2.);
  Alcotest.(check (float 0.001)) "q=1 is max" 100. (Metrics.quantile h 1.)

let test_reset_keeps_handles () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "c" in
  let h = Metrics.histogram ~registry:r "h" in
  Metrics.add c 7;
  Metrics.observe h 9.;
  Metrics.reset r;
  Alcotest.(check int) "counter zeroed" 0 (Metrics.counter_value c);
  Alcotest.(check int) "histogram zeroed" 0 (Metrics.histogram_count h);
  Metrics.incr c;
  Alcotest.(check int) "handle still live" 1 (Metrics.counter_value c)

let test_exporters () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r ~labels:[ ("k", "v") ] "exported" in
  Metrics.add c 2;
  let text = Fmt.str "%a" Metrics.pp r in
  Alcotest.(check bool) "text has series" true
    (contains text "exported{k=\"v\"} 2");
  let json = Metrics.to_json_lines r in
  Alcotest.(check bool) "json has name" true
    (contains json "\"name\":\"exported\"");
  Alcotest.(check bool) "json has value" true
    (contains json "\"value\":2")

(* --- Trace -------------------------------------------------------------------- *)

let with_tracing f =
  Trace.clear ();
  Trace.set_enabled true;
  Fun.protect ~finally:(fun () -> Trace.set_enabled false) f

let test_span_nesting () =
  with_tracing (fun () ->
      let stats = Io_stats.create () in
      Trace.with_span ~stats "root" (fun () ->
          Trace.with_span ~stats "child1" (fun () ->
              Io_stats.read_page ~n:2 stats;
              Trace.with_span ~stats "grandchild" (fun () ->
                  Io_stats.write_page stats));
          Trace.with_span ~stats "child2" (fun () ->
              Io_stats.read_page stats));
      match Trace.last () with
      | None -> Alcotest.fail "no trace recorded"
      | Some root ->
          Alcotest.(check string) "root name" "root" root.Trace.name;
          Alcotest.(check (list string))
            "children in execution order" [ "child1"; "child2" ]
            (List.map (fun s -> s.Trace.name) root.Trace.children);
          Alcotest.(check int) "span count" 4 (Trace.span_count root);
          Alcotest.(check int) "depth" 3 (Trace.depth root);
          (* inclusive I/O rolls up: root saw all 4 transfers *)
          Alcotest.(check int) "root io" 4 (Trace.total_io root);
          let c1 = List.hd root.Trace.children in
          Alcotest.(check int) "child1 reads" 2 c1.Trace.io.Io_stats.page_reads;
          Alcotest.(check int) "child1 writes" 1 c1.Trace.io.Io_stats.page_writes)

let test_span_closes_on_raise () =
  with_tracing (fun () ->
      (try
         Trace.with_span "boom" (fun () ->
             Trace.with_span "inner" (fun () -> failwith "expected"))
       with Failure _ -> ());
      match Trace.last () with
      | None -> Alcotest.fail "raising span not recorded"
      | Some root ->
          Alcotest.(check string) "root recorded" "boom" root.Trace.name;
          Alcotest.(check int) "inner recorded too" 2 (Trace.span_count root);
      (* the span stack is clean: a new root lands as a root *)
      Trace.with_span "after" (fun () -> ());
      match Trace.last () with
      | Some s -> Alcotest.(check string) "stack unwound" "after" s.Trace.name
      | None -> Alcotest.fail "no span after recovery")

let test_ring_eviction () =
  with_tracing (fun () ->
      let old = Trace.capacity () in
      Fun.protect
        ~finally:(fun () -> Trace.set_capacity old)
        (fun () ->
          Trace.set_capacity 3;
          for i = 1 to 5 do
            Trace.with_span (Printf.sprintf "t%d" i) (fun () -> ())
          done;
          Alcotest.(check (list string))
            "newest first, oldest evicted" [ "t5"; "t4"; "t3" ]
            (List.map (fun s -> s.Trace.name) (Trace.recent ()));
          Alcotest.check_raises "positive capacity only"
            (Invalid_argument "Trace.set_capacity: capacity must be positive")
            (fun () -> Trace.set_capacity 0)))

let test_disabled_records_nothing () =
  Trace.clear ();
  Trace.set_enabled false;
  let r = Trace.with_span "ghost" (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk still runs" 42 r;
  Alcotest.(check (list string)) "nothing recorded" []
    (List.map (fun s -> s.Trace.name) (Trace.recent ()))

(* --- Explain.profile wall-clock attribution ------------------------------------- *)

let test_profile_actual_ns () =
  let instance = Dif_gen.karily ~fanout:4 ~size:400 () in
  let eng = Engine.create ~block:16 instance in
  let q =
    Qparser.of_string
      "(g (& ( ? sub ? tag=even) ( ? sub ? priority>=1)) count($$) >= 0)"
  in
  let _, plan = Explain.profile eng q in
  let rec walk n =
    (match n.Explain.actual_ns with
    | None -> Alcotest.failf "node %s has no actual_ns" n.Explain.label
    | Some ns ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: actual_ns %d >= 0" n.Explain.label ns)
          true (ns >= 0));
    (match n.Explain.actual_io with
    | None -> Alcotest.failf "node %s has no actual_io" n.Explain.label
    | Some io ->
        Alcotest.(check bool) (n.Explain.label ^ ": io >= 0") true (io >= 0));
    List.iter walk n.Explain.children
  in
  walk plan;
  Alcotest.(check bool) "total ns non-negative" true
    (Explain.total_actual_ns plan >= 0)

let test_engine_metrics () =
  let instance = Dif_gen.karily ~fanout:4 ~size:200 () in
  let eng = Engine.create ~block:16 instance in
  (* the engine reports to the default registry; re-registering by name
     returns the same live handles *)
  let queries = Metrics.counter "engine_queries_total" in
  let reads = Metrics.counter "engine_page_reads_total" in
  let q0 = Metrics.counter_value queries in
  let r0 = Metrics.counter_value reads in
  ignore (Engine.eval_entries eng (Qparser.of_string "( ? sub ? tag=even)"));
  Alcotest.(check int) "one query counted" (q0 + 1)
    (Metrics.counter_value queries);
  Alcotest.(check bool) "reads counted" true (Metrics.counter_value reads > r0)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "counter labels" `Quick test_counter_labels;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "histogram quantiles" `Quick
            test_histogram_quantiles;
          Alcotest.test_case "reset keeps handles" `Quick
            test_reset_keeps_handles;
          Alcotest.test_case "exporters" `Quick test_exporters;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "closes on raise" `Quick test_span_closes_on_raise;
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_disabled_records_nothing;
        ] );
      ( "profile",
        [
          Alcotest.test_case "actual_ns on every node" `Quick
            test_profile_actual_ns;
          Alcotest.test_case "engine metrics" `Quick test_engine_metrics;
        ] );
    ]
