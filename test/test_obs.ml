(* Tests for the observability layer: metrics registry semantics,
   span-tree nesting, the recent-trace ring, and per-operator profiling
   through Explain. *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec loop i = i + n <= h && (String.sub hay i n = needle || loop (i + 1)) in
  loop 0

(* --- Metrics ---------------------------------------------------------------- *)

let test_counter_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "requests_total" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "value" 5 (Metrics.counter_value c);
  let again = Metrics.counter ~registry:r "requests_total" in
  Metrics.incr again;
  Alcotest.(check int) "same series" 6 (Metrics.counter_value c)

let test_counter_labels () =
  let r = Metrics.create () in
  let a = Metrics.counter ~registry:r ~labels:[ ("server", "s0") ] "msgs" in
  let b = Metrics.counter ~registry:r ~labels:[ ("server", "s1") ] "msgs" in
  Metrics.add a 3;
  Metrics.incr b;
  Alcotest.(check int) "label set s0" 3 (Metrics.counter_value a);
  Alcotest.(check int) "label set s1" 1 (Metrics.counter_value b);
  (* label order does not matter: same sorted set, same series *)
  let c1 =
    Metrics.counter ~registry:r ~labels:[ ("x", "1"); ("y", "2") ] "pair"
  in
  let c2 =
    Metrics.counter ~registry:r ~labels:[ ("y", "2"); ("x", "1") ] "pair"
  in
  Metrics.incr c1;
  Metrics.incr c2;
  Alcotest.(check int) "order-insensitive" 2 (Metrics.counter_value c1)

let test_kind_mismatch () =
  let r = Metrics.create () in
  ignore (Metrics.counter ~registry:r "dual");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Metrics: dual already registered as a counter")
    (fun () -> ignore (Metrics.gauge ~registry:r "dual"))

let test_histogram_quantiles () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r "latency" in
  for v = 1 to 100 do
    Metrics.observe h (float_of_int v)
  done;
  Alcotest.(check int) "count" 100 (Metrics.histogram_count h);
  Alcotest.(check (float 0.001)) "sum" 5050. (Metrics.histogram_sum h);
  (* rank 50 of 1..100 lands in the [32,64) bucket: the estimate may be
     off by the bucketing factor of two, never more *)
  let p50 = Metrics.quantile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 in [32,64] (got %g)" p50)
    true
    (p50 >= 32. && p50 <= 64.);
  let p99 = Metrics.quantile h 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "p99 in [64,100] (got %g)" p99)
    true
    (p99 >= 64. && p99 <= 100.);
  (* quantiles clamp to the observed extremes (modulo bucket width) *)
  let p0 = Metrics.quantile h 0. in
  Alcotest.(check bool)
    (Printf.sprintf "q=0 within first bucket (got %g)" p0)
    true
    (p0 >= 1. && p0 <= 2.);
  Alcotest.(check (float 0.001)) "q=1 is max" 100. (Metrics.quantile h 1.)

let test_reset_keeps_handles () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "c" in
  let h = Metrics.histogram ~registry:r "h" in
  Metrics.add c 7;
  Metrics.observe h 9.;
  Metrics.reset r;
  Alcotest.(check int) "counter zeroed" 0 (Metrics.counter_value c);
  Alcotest.(check int) "histogram zeroed" 0 (Metrics.histogram_count h);
  Metrics.incr c;
  Alcotest.(check int) "handle still live" 1 (Metrics.counter_value c)

let test_exporters () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r ~labels:[ ("k", "v") ] "exported" in
  Metrics.add c 2;
  let text = Fmt.str "%a" Metrics.pp r in
  Alcotest.(check bool) "text has series" true
    (contains text "exported{k=\"v\"} 2");
  let json = Metrics.to_json_lines r in
  Alcotest.(check bool) "json has name" true
    (contains json "\"name\":\"exported\"");
  Alcotest.(check bool) "json has value" true
    (contains json "\"value\":2")

(* --- Trace -------------------------------------------------------------------- *)

let with_tracing f =
  Trace.clear ();
  Trace.set_enabled true;
  Fun.protect ~finally:(fun () -> Trace.set_enabled false) f

let test_span_nesting () =
  with_tracing (fun () ->
      let stats = Io_stats.create () in
      Trace.with_span ~stats "root" (fun () ->
          Trace.with_span ~stats "child1" (fun () ->
              Io_stats.read_page ~n:2 stats;
              Trace.with_span ~stats "grandchild" (fun () ->
                  Io_stats.write_page stats));
          Trace.with_span ~stats "child2" (fun () ->
              Io_stats.read_page stats));
      match Trace.last () with
      | None -> Alcotest.fail "no trace recorded"
      | Some root ->
          Alcotest.(check string) "root name" "root" root.Trace.name;
          Alcotest.(check (list string))
            "children in execution order" [ "child1"; "child2" ]
            (List.map (fun s -> s.Trace.name) root.Trace.children);
          Alcotest.(check int) "span count" 4 (Trace.span_count root);
          Alcotest.(check int) "depth" 3 (Trace.depth root);
          (* inclusive I/O rolls up: root saw all 4 transfers *)
          Alcotest.(check int) "root io" 4 (Trace.total_io root);
          let c1 = List.hd root.Trace.children in
          Alcotest.(check int) "child1 reads" 2 c1.Trace.io.Io_stats.page_reads;
          Alcotest.(check int) "child1 writes" 1 c1.Trace.io.Io_stats.page_writes)

let test_span_closes_on_raise () =
  with_tracing (fun () ->
      (try
         Trace.with_span "boom" (fun () ->
             Trace.with_span "inner" (fun () -> failwith "expected"))
       with Failure _ -> ());
      match Trace.last () with
      | None -> Alcotest.fail "raising span not recorded"
      | Some root ->
          Alcotest.(check string) "root recorded" "boom" root.Trace.name;
          Alcotest.(check int) "inner recorded too" 2 (Trace.span_count root);
      (* the span stack is clean: a new root lands as a root *)
      Trace.with_span "after" (fun () -> ());
      match Trace.last () with
      | Some s -> Alcotest.(check string) "stack unwound" "after" s.Trace.name
      | None -> Alcotest.fail "no span after recovery")

let test_ring_eviction () =
  with_tracing (fun () ->
      let old = Trace.capacity () in
      Fun.protect
        ~finally:(fun () -> Trace.set_capacity old)
        (fun () ->
          Trace.set_capacity 3;
          for i = 1 to 5 do
            Trace.with_span (Printf.sprintf "t%d" i) (fun () -> ())
          done;
          Alcotest.(check (list string))
            "newest first, oldest evicted" [ "t5"; "t4"; "t3" ]
            (List.map (fun s -> s.Trace.name) (Trace.recent ()));
          Alcotest.check_raises "positive capacity only"
            (Invalid_argument "Trace.set_capacity: capacity must be positive")
            (fun () -> Trace.set_capacity 0)))

let test_capacity_truncates_ring () =
  (* shrinking the ring below its population keeps only the newest *)
  with_tracing (fun () ->
      let old = Trace.capacity () in
      Fun.protect
        ~finally:(fun () -> Trace.set_capacity old)
        (fun () ->
          Trace.set_capacity 8;
          for i = 1 to 6 do
            Trace.with_span (Printf.sprintf "t%d" i) (fun () -> ())
          done;
          Trace.set_capacity 2;
          Alcotest.(check (list string))
            "truncated to newest two" [ "t6"; "t5" ]
            (List.map (fun s -> s.Trace.name) (Trace.recent ()));
          (* and the shrunken ring still rotates correctly *)
          Trace.with_span "t7" (fun () -> ());
          Alcotest.(check (list string))
            "rotation after truncation" [ "t7"; "t6" ]
            (List.map (fun s -> s.Trace.name) (Trace.recent ()))))

let test_failing_child_attached () =
  (* a child whose thunk raises is still attached to its parent, with
     its elapsed time recorded, and the parent completes normally *)
  with_tracing (fun () ->
      Trace.with_span "parent" (fun () ->
          (try Trace.with_span "bad child" (fun () -> failwith "expected")
           with Failure _ -> ());
          Trace.with_span "good child" (fun () -> ()));
      match Trace.last () with
      | None -> Alcotest.fail "no trace recorded"
      | Some root ->
          Alcotest.(check string) "parent completed" "parent" root.Trace.name;
          Alcotest.(check (list string))
            "failing child kept, in order" [ "bad child"; "good child" ]
            (List.map (fun s -> s.Trace.name) root.Trace.children);
          let bad = List.hd root.Trace.children in
          Alcotest.(check bool) "elapsed recorded on failing child" true
            (bad.Trace.elapsed_ns >= 0))

let test_set_rows () =
  with_tracing (fun () ->
      let r, span =
        Trace.with_span_out "op" (fun () ->
            Trace.set_rows 17;
            "result")
      in
      Alcotest.(check string) "value through" "result" r;
      match span with
      | None -> Alcotest.fail "tracing on: span expected"
      | Some s ->
          Alcotest.(check (option int)) "rows annotated" (Some 17) s.Trace.rows);
  (* off: set_rows and with_span_out are no-ops *)
  Trace.set_enabled false;
  let r, span = Trace.with_span_out "ghost" (fun () -> Trace.set_rows 3; 9) in
  Alcotest.(check int) "thunk still runs" 9 r;
  Alcotest.(check bool) "no span when disabled" true (span = None)

let test_disabled_records_nothing () =
  Trace.clear ();
  Trace.set_enabled false;
  let r = Trace.with_span "ghost" (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk still runs" 42 r;
  Alcotest.(check (list string)) "nothing recorded" []
    (List.map (fun s -> s.Trace.name) (Trace.recent ()))

(* --- Json --------------------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("n", Json.Num 42.);
        ("neg", Json.Num (-1.5));
        ("s", Json.Str "a \"quoted\"\nline");
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("a", Json.Arr [ Json.Num 1.; Json.Str "x"; Json.Obj [] ]);
      ]
  in
  let text = Json.to_string doc in
  Alcotest.(check bool) "roundtrip" true (Json.of_string text = doc);
  (* integral floats print without a fraction *)
  Alcotest.(check string) "integral rendering" "42" (Json.to_string (Json.Num 42.));
  Alcotest.(check string) "fraction kept" "-1.5" (Json.to_string (Json.Num (-1.5)))

let test_json_parse_errors () =
  let fails s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> ()
    | v -> Alcotest.failf "%S parsed as %s" s (Json.to_string v)
  in
  fails "";
  fails "{";
  fails "[1,]";
  fails "{\"a\":1,}";
  fails "\"unterminated";
  fails "1 2";
  (* trailing garbage *)
  fails "nul"

let test_json_lines_and_accessors () =
  let docs = Json.lines "{\"a\":1}\n\n  {\"a\":2}\n" in
  Alcotest.(check int) "two docs, blank skipped" 2 (List.length docs);
  Alcotest.(check (list int)) "members" [ 1; 2 ]
    (List.map (fun d -> Json.to_int (Json.member "a" d)) docs);
  (* Null-tolerant accessors *)
  let d = List.hd docs in
  Alcotest.(check int) "absent member -> 0" 0
    (Json.to_int (Json.member "missing" d));
  Alcotest.(check string) "absent member -> \"\"" ""
    (Json.str (Json.member "missing" d));
  Alcotest.(check int) "absent member -> []" 0
    (List.length (Json.arr (Json.member "missing" d)));
  (* unicode escapes decode to UTF-8 *)
  Alcotest.(check string) "\\u escape" "\xc3\xa9"
    (Json.str (Json.of_string "\"\\u00e9\""))

(* --- Qlog --------------------------------------------------------------------- *)

(* Every Qlog test saves and restores the journal's global state. *)
let with_qlog f =
  let old_threshold = Qlog.threshold_ns () in
  Qlog.disable ();
  Qlog.clear ();
  Fun.protect
    ~finally:(fun () ->
      Qlog.disable ();
      Qlog.clear ();
      Qlog.set_threshold_ns old_threshold)
    f

let temp_journal () =
  let path = Filename.temp_file "ndq_test_journal" ".jsonl" in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let test_qlog_roundtrip () =
  with_qlog (fun () ->
      let path = temp_journal () in
      Qlog.enable ~append:false path;
      let ops =
        [
          {
            Qlog.op_name = "execute";
            op_detail = "";
            op_rows = Some 3;
            op_reads = 5;
            op_writes = 0;
            op_ns = 1200;
            op_alloc = Some 4096;
            op_depth = 0;
            op_est_rows = None;
            op_est_reads = None;
            op_est_writes = None;
            op_path = None;
          };
          {
            Qlog.op_name = "atomic";
            op_detail = "( ? sub ? tag=?)";
            op_rows = Some 3;
            op_reads = 5;
            op_writes = 0;
            op_ns = 1000;
            op_alloc = None;
            op_depth = 1;
            op_est_rows = Some 4;
            op_est_reads = Some 6;
            op_est_writes = Some 0;
            op_path = Some "index";
          };
        ]
      in
      let e1 =
        Qlog.record ~ops ~query:"( ? sub ? tag=even)" ~fingerprint:"abc"
          ~result_count:3 ~reads:5 ~writes:0 ~wall_ns:1200 ~alloc_bytes:8192
          ~outcome:Qlog.Ok ~est_card:4 ~est_reads:6 ~est_writes:0 ()
      in
      let e2 =
        Qlog.record ~server:"s0"
          ~shipped:[ ("s1", 2, 900) ]
          ~capture:{ Qlog.span_text = "span"; plan_text = "plan" }
          ~query:"bad" ~fingerprint:"def" ~result_count:0 ~reads:1 ~writes:0
          ~wall_ns:9 ~outcome:(Qlog.Failed "boom") ()
      in
      Alcotest.(check int) "monotonic seq" (e1.Qlog.seq + 1) e2.Qlog.seq;
      Qlog.disable ();
      match Qlog.load path with
      | [ r1; r2 ] ->
          Alcotest.(check bool) "event 1 roundtrips" true (r1 = e1);
          Alcotest.(check bool) "event 2 roundtrips" true (r2 = e2);
          Alcotest.(check bool) "outcome preserved" true
            (r2.Qlog.outcome = Qlog.Failed "boom");
          Alcotest.(check (option string)) "server preserved" (Some "s0")
            r2.Qlog.server;
          Alcotest.(check int) "ops preserved" 2 (List.length r1.Qlog.ops)
      | l -> Alcotest.failf "expected 2 journal lines, got %d" (List.length l))

let test_qlog_append_mode () =
  with_qlog (fun () ->
      let path = temp_journal () in
      let record_one q =
        ignore
          (Qlog.record ~query:q ~fingerprint:"f" ~result_count:0 ~reads:0
             ~writes:0 ~wall_ns:0 ~outcome:Qlog.Ok ())
      in
      Qlog.enable ~append:false path;
      record_one "first";
      Qlog.disable ();
      Qlog.enable path;
      (* default: append *)
      record_one "second";
      Qlog.disable ();
      Alcotest.(check (list string)) "append keeps history" [ "first"; "second" ]
        (List.map (fun e -> e.Qlog.query) (Qlog.load path));
      Qlog.enable ~append:false path;
      record_one "fresh";
      Qlog.disable ();
      Alcotest.(check (list string)) "truncate restarts" [ "fresh" ]
        (List.map (fun e -> e.Qlog.query) (Qlog.load path)))

let test_qlog_slowlog () =
  with_qlog (fun () ->
      (* captures enter the slowlog; slowest wins, regardless of order *)
      let record ?capture wall_ns =
        ignore
          (Qlog.record ?capture
             ~query:(Printf.sprintf "q%d" wall_ns)
             ~fingerprint:"f" ~result_count:0 ~reads:0 ~writes:0 ~wall_ns
             ~outcome:Qlog.Ok ())
      in
      let cap = { Qlog.span_text = "s"; plan_text = "p" } in
      record ~capture:cap 300;
      record 9999;
      (* no capture: fast path, not in the slowlog *)
      record ~capture:cap 100;
      record ~capture:cap 200;
      Alcotest.(check (list int))
        "slowest first, uncaptured excluded" [ 300; 200 ]
        (List.map (fun e -> e.Qlog.wall_ns) (Qlog.slowest 2));
      Alcotest.(check int) "bounded request" 3
        (List.length (Qlog.slowest 50));
      let path = temp_journal () in
      Alcotest.(check int) "write_slowlog count" 3 (Qlog.write_slowlog path);
      Alcotest.(check int) "slowlog file readable" 3
        (List.length (Qlog.load path));
      Qlog.clear ();
      Alcotest.(check int) "clear drops captures" 0
        (List.length (Qlog.slowest 50)))

let test_qlog_ops_of_span () =
  with_tracing (fun () ->
      let stats = Io_stats.create () in
      let (), span =
        Trace.with_span_out ~stats "execute" (fun () ->
            Trace.set_rows 2;
            Trace.with_span ~stats ~detail:"inner" "atomic" (fun () ->
                Io_stats.read_page ~n:3 stats))
      in
      match span with
      | None -> Alcotest.fail "span expected"
      | Some s -> (
          match Qlog.ops_of_span s with
          | [ root; child ] ->
              Alcotest.(check string) "preorder root" "execute"
                root.Qlog.op_name;
              Alcotest.(check int) "root depth" 0 root.Qlog.op_depth;
              Alcotest.(check (option int)) "root rows" (Some 2)
                root.Qlog.op_rows;
              Alcotest.(check int) "root reads (inclusive)" 3
                root.Qlog.op_reads;
              Alcotest.(check string) "child detail" "inner"
                child.Qlog.op_detail;
              Alcotest.(check int) "child depth" 1 child.Qlog.op_depth
          | l -> Alcotest.failf "expected 2 ops, got %d" (List.length l)))

(* --- Engine / Dist journaling -------------------------------------------------- *)

let test_engine_journals_queries () =
  with_qlog (fun () ->
      let instance = Dif_gen.karily ~fanout:4 ~size:200 () in
      let eng = Engine.create ~block:16 instance in
      let path = temp_journal () in
      Qlog.enable ~append:false path;
      Qlog.set_threshold_ns 0;
      (* everything is "slow": captures everywhere *)
      let n1 =
        List.length (Engine.eval_entries eng (Qparser.of_string "( ? sub ? tag=even)"))
      in
      ignore (Engine.eval_entries eng (Qparser.of_string "( ? sub ? tag=odd)"));
      Qlog.set_threshold_ns max_int;
      (* fast path: no capture *)
      ignore (Engine.eval_entries eng (Qparser.of_string "( ? sub ? priority>=1)"));
      Alcotest.(check bool) "journaling leaves tracing off" false
        (Trace.enabled ());
      Qlog.disable ();
      match Qlog.load path with
      | [ e1; e2; e3 ] ->
          Alcotest.(check int) "result_count journaled" n1 e1.Qlog.result_count;
          Alcotest.(check bool) "reads journaled" true (e1.Qlog.reads > 0);
          Alcotest.(check bool) "per-operator rows present" true
            (List.exists (fun o -> o.Qlog.op_rows <> None) e1.Qlog.ops);
          (* same plan shape, different constant: same fingerprint *)
          Alcotest.(check string) "normalized fingerprint"
            e1.Qlog.fingerprint e2.Qlog.fingerprint;
          Alcotest.(check bool) "distinct shape, distinct fingerprint" true
            (e3.Qlog.fingerprint <> e1.Qlog.fingerprint);
          Alcotest.(check bool) "slow query captured" true
            (e1.Qlog.capture <> None);
          (match e1.Qlog.capture with
          | Some c ->
              Alcotest.(check bool) "capture has span tree" true
                (contains c.Qlog.span_text "execute");
              Alcotest.(check bool) "capture has plan" true
                (String.length c.Qlog.plan_text > 0)
          | None -> ());
          Alcotest.(check bool) "fast query not captured" true
            (e3.Qlog.capture = None)
      | l -> Alcotest.failf "expected 3 journal events, got %d" (List.length l))

let test_dist_journals_attribution () =
  with_qlog (fun () ->
      let instance =
        Dif_gen.generate
          ~params:
            {
              Dif_gen.default_params with
              size = 200;
              seed = 3;
              roots = 2;
              depth_bias = 0.4;
            }
          ()
      in
      let domains = [ Dn.of_string "dc=root0"; Dn.of_string "dc=root1" ] in
      let net = Dist.deploy instance domains in
      let coord = Dist.coordinator net (Dn.of_string "dc=root0") in
      let path = temp_journal () in
      Qlog.enable ~append:false path;
      Qlog.set_threshold_ns max_int;
      (* a root-scoped query touches both servers *)
      ignore
        (Dist.eval_entries coord
           (Qparser.of_string "( ? sub ? objectClass=person)"));
      Qlog.disable ();
      let events = Qlog.load path in
      (* per-server engine events, then the coordinator's own event last *)
      Alcotest.(check bool) "per-server events + coordinator event" true
        (List.length events >= 3);
      let coord_ev = List.nth events (List.length events - 1) in
      Alcotest.(check (option string)) "coordinator attributed to home"
        (Some coord.Dist.home.Dist.name)
        coord_ev.Qlog.server;
      Alcotest.(check bool) "shipping attribution recorded" true
        (List.length coord_ev.Qlog.shipped > 0);
      let inner = List.filteri (fun i _ -> i < List.length events - 1) events in
      let servers =
        List.sort_uniq compare
          (List.filter_map (fun e -> e.Qlog.server) inner)
      in
      Alcotest.(check bool) "inner events attributed to both servers" true
        (List.length servers >= 2))

(* --- Explain.profile wall-clock attribution ------------------------------------- *)

let test_profile_actual_ns () =
  let instance = Dif_gen.karily ~fanout:4 ~size:400 () in
  let eng = Engine.create ~block:16 instance in
  let q =
    Qparser.of_string
      "(g (& ( ? sub ? tag=even) ( ? sub ? priority>=1)) count($$) >= 0)"
  in
  let _, plan = Explain.profile eng q in
  let rec walk n =
    (match n.Explain.actual_ns with
    | None -> Alcotest.failf "node %s has no actual_ns" n.Explain.label
    | Some ns ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: actual_ns %d >= 0" n.Explain.label ns)
          true (ns >= 0));
    (match n.Explain.actual_io with
    | None -> Alcotest.failf "node %s has no actual_io" n.Explain.label
    | Some io ->
        Alcotest.(check bool) (n.Explain.label ^ ": io >= 0") true (io >= 0));
    List.iter walk n.Explain.children
  in
  walk plan;
  Alcotest.(check bool) "total ns non-negative" true
    (Explain.total_actual_ns plan >= 0)

let test_observe_nan_guard () =
  (* a NaN observation must not poison count/sum/quantiles: it clamps
     to 0 like any other non-positive value *)
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r "guarded" in
  Metrics.observe h Float.nan;
  Metrics.observe h 8.;
  Alcotest.(check int) "both observations counted" 2
    (Metrics.histogram_count h);
  Alcotest.(check (float 0.001)) "sum unaffected by NaN" 8.
    (Metrics.histogram_sum h);
  let p100 = Metrics.quantile h 1. in
  Alcotest.(check bool)
    (Printf.sprintf "max quantile finite (got %g)" p100)
    true
    (Float.is_finite p100 && p100 >= 8.)

let test_json_lines_buckets () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r "hist" in
  Metrics.observe h 1.;
  (* bucket 0: [0,2) *)
  Metrics.observe h 3.;
  (* bucket 1: [2,4) *)
  Metrics.observe h 100.;
  (* bucket 6: [64,128) *)
  let line =
    match
      List.find_opt
        (fun l -> contains l "\"name\":\"hist\"")
        (String.split_on_char '\n' (Metrics.to_json_lines r))
    with
    | Some l -> l
    | None -> Alcotest.fail "no json line for histogram"
  in
  let buckets =
    Json.arr (Json.member "buckets" (Json.of_string line))
    |> List.map Json.to_int
  in
  Alcotest.(check int) "full bucket array exported" 64 (List.length buckets);
  (* entries are cumulative: entry i counts observations below 2^(i+1) *)
  Alcotest.(check int) "cumulative below 2" 1 (List.nth buckets 0);
  Alcotest.(check int) "cumulative below 4" 2 (List.nth buckets 1);
  Alcotest.(check int) "cumulative below 64" 2 (List.nth buckets 5);
  Alcotest.(check int) "cumulative below 128" 3 (List.nth buckets 6);
  Alcotest.(check int) "top of array sees everything" 3 (List.nth buckets 63)

let test_engine_metrics () =
  let instance = Dif_gen.karily ~fanout:4 ~size:200 () in
  let eng = Engine.create ~block:16 instance in
  (* the engine reports to the default registry; re-registering by name
     returns the same live handles *)
  let queries = Metrics.counter "engine_queries_total" in
  let reads = Metrics.counter "engine_page_reads_total" in
  let q0 = Metrics.counter_value queries in
  let r0 = Metrics.counter_value reads in
  ignore (Engine.eval_entries eng (Qparser.of_string "( ? sub ? tag=even)"));
  Alcotest.(check int) "one query counted" (q0 + 1)
    (Metrics.counter_value queries);
  Alcotest.(check bool) "reads counted" true (Metrics.counter_value reads > r0)

(* --- Quantile edge cases --------------------------------------------------- *)

let test_quantile_edges () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r "edge" in
  (* empty histogram: every quantile is 0 *)
  List.iter
    (fun q ->
      Alcotest.(check (float 0.)) (Printf.sprintf "empty q=%g" q) 0.
        (Metrics.quantile h q))
    [ 0.; 0.5; 1. ];
  (* single observation: every quantile (even out-of-range q, which
     clamps) collapses to the one observed value *)
  Metrics.observe h 10.;
  List.iter
    (fun q ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "single q=%g" q)
        10. (Metrics.quantile h q))
    [ -1.; 0.; 0.5; 1.; 2. ];
  (* all-zero observations stay in the first bucket and clamp to 0 *)
  let z = Metrics.histogram ~registry:r "zeros" in
  Metrics.observe z 0.;
  Metrics.observe z 0.;
  Alcotest.(check (float 0.)) "all zeros" 0. (Metrics.quantile z 0.9)

(* --- Prometheus exposition -------------------------------------------------- *)

(* A minimal exposition parser: every sample line must be
   "name{labels} value" with a legal metric name and a parseable value.
   Returns the samples in order. *)
let parse_samples text =
  let valid_name n =
    let first c =
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
    in
    let rest c = first c || (c >= '0' && c <= '9') in
    n <> ""
    && first n.[0]
    && String.for_all rest (String.sub n 1 (String.length n - 1))
  in
  List.filter_map
    (fun line ->
      if line = "" || line.[0] = '#' then None
      else
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "unparseable sample line %S" line
        | Some i ->
            let key = String.sub line 0 i in
            let value = String.sub line (i + 1) (String.length line - i - 1) in
            let name =
              match String.index_opt key '{' with
              | Some j -> String.sub key 0 j
              | None -> key
            in
            if not (valid_name name) then
              Alcotest.failf "illegal metric name %S in %S" name line;
            (match float_of_string_opt value with
            | Some _ -> ()
            | None -> Alcotest.failf "unparseable value %S in %S" value line);
            Some (name, key, float_of_string value))
    (String.split_on_char '\n' text)

let test_promexp_exposition () =
  let r = Metrics.create () in
  let c =
    Metrics.counter ~registry:r ~help:"a \"quoted\" help\nsecond line"
      ~labels:[ ("dn", "dc=a\\b\n\"c\"") ]
      "weird-name.total"
  in
  Metrics.add c 3;
  let g = Metrics.gauge ~registry:r "9gauge" in
  Metrics.set g 2.5;
  let h = Metrics.histogram ~registry:r "lat_ns" in
  List.iter (Metrics.observe h) [ 1.; 3.; 9.; 100.; 5000. ];
  let text = Promexp.to_text r in
  Alcotest.(check bool) "content type is 0.0.4 text" true
    (contains Promexp.content_type "version=0.0.4");
  (* hostile names and labels are sanitized, values escaped *)
  Alcotest.(check bool) "dots and dashes rewritten" true
    (contains text "weird_name_total");
  Alcotest.(check bool) "leading digit rewritten" true (contains text "_gauge");
  Alcotest.(check bool) "label value escaped" true
    (contains text "dc=a\\\\b\\n\\\"c\\\"");
  Alcotest.(check bool) "help newline escaped" true
    (contains text "a \"quoted\" help\\nsecond line");
  (* the whole page round-trips through the minimal parser *)
  let samples = parse_samples text in
  Alcotest.(check bool) "samples present" true (List.length samples > 0);
  (* histogram invariants: cumulative non-decreasing buckets, and the
     +Inf bucket equals _count *)
  let buckets =
    List.filter (fun (n, _, _) -> n = "lat_ns_bucket") samples
  in
  Alcotest.(check bool) "bucket lines present" true (List.length buckets >= 2);
  let values = List.map (fun (_, _, v) -> v) buckets in
  ignore
    (List.fold_left
       (fun prev v ->
         Alcotest.(check bool) "cumulative buckets non-decreasing" true
           (v >= prev);
         v)
       0. values);
  let _, inf_key, inf_v = List.nth buckets (List.length buckets - 1) in
  Alcotest.(check bool) "last bucket is +Inf" true
    (contains inf_key "le=\"+Inf\"");
  let count_v =
    match List.find_opt (fun (n, _, _) -> n = "lat_ns_count") samples with
    | Some (_, _, v) -> v
    | None -> Alcotest.fail "no lat_ns_count sample"
  in
  Alcotest.(check (float 0.)) "+Inf bucket equals count" count_v inf_v;
  Alcotest.(check (float 0.)) "count is 5" 5. count_v

(* --- Trace-context propagation ---------------------------------------------- *)

let test_trace_id_propagation () =
  with_tracing (fun () ->
      Trace.with_span "a" (fun () -> Trace.with_span "b" (fun () -> ()));
      Trace.with_span "c" (fun () -> ());
      (match Trace.recent () with
      | [ c; a ] ->
          Alcotest.(check int) "16 hex digits" 16
            (String.length a.Trace.trace_id);
          let b = List.hd a.Trace.children in
          Alcotest.(check string) "child inherits the root's id"
            a.Trace.trace_id b.Trace.trace_id;
          Alcotest.(check bool) "each root mints a fresh id" true
            (a.Trace.trace_id <> c.Trace.trace_id)
      | _ -> Alcotest.fail "expected two roots");
      (* an explicitly bound id wins over minting *)
      Trace.with_trace_id "deadbeefdeadbeef" (fun () ->
          Trace.with_span "x" (fun () -> ()));
      (match Trace.last () with
      | Some s ->
          Alcotest.(check string) "bound id used" "deadbeefdeadbeef"
            s.Trace.trace_id
      | None -> Alcotest.fail "no span recorded");
      (* actors attach through dynamic extent *)
      Trace.with_span "root" (fun () ->
          Trace.with_actor "s0" (fun () -> Trace.with_span "kid" (fun () -> ())));
      match Trace.last () with
      | Some s ->
          Alcotest.(check (list string)) "actors collected" [ ""; "s0" ]
            (Trace.actors s)
      | None -> Alcotest.fail "no span recorded")

let test_dist_trace_stitching () =
  with_qlog (fun () ->
      with_tracing (fun () ->
          let instance =
            Dif_gen.generate
              ~params:
                {
                  Dif_gen.default_params with
                  size = 200;
                  seed = 3;
                  roots = 2;
                  depth_bias = 0.4;
                }
              ()
          in
          let domains = [ Dn.of_string "dc=root0"; Dn.of_string "dc=root1" ] in
          let net = Dist.deploy instance domains in
          let coord = Dist.coordinator net (Dn.of_string "dc=root0") in
          let path = temp_journal () in
          Qlog.enable ~append:false path;
          Qlog.set_threshold_ns max_int;
          (* a root-scoped query touches both servers *)
          ignore
            (Dist.eval_entries coord
               (Qparser.of_string "( ? sub ? objectClass=person)"));
          Qlog.disable ();
          Alcotest.(check int) "one root span per query" 1
            (List.length (Trace.recent ()));
          let root = Option.get (Trace.last ()) in
          Alcotest.(check string) "root actor is the coordinator"
            "coordinator" root.Trace.actor;
          (* every span of the stitched tree shares the root's trace id *)
          let rec check_ids (s : Trace.span) =
            Alcotest.(check string) "span shares the trace id"
              root.Trace.trace_id s.Trace.trace_id;
            List.iter check_ids s.Trace.children
          in
          check_ids root;
          let actors = Trace.actors root in
          Alcotest.(check bool)
            (Printf.sprintf "coordinator + both server lanes (got %s)"
               (String.concat "," actors))
            true
            (List.length actors >= 3);
          (* and so does every journal event (coordinator + per-server) *)
          let events = Qlog.load path in
          Alcotest.(check bool) "several journal events" true
            (List.length events >= 3);
          List.iter
            (fun (ev : Qlog.event) ->
              Alcotest.(check (option string)) "event carries the trace id"
                (Some root.Trace.trace_id) ev.Qlog.trace_id)
            events))

(* --- Chrome trace-event export ----------------------------------------------- *)

let test_chrome_trace_shape () =
  with_tracing (fun () ->
      let stats = Io_stats.create () in
      Trace.with_span ~stats ~detail:"the query" "query" (fun () ->
          Trace.with_actor "s0" (fun () ->
              Trace.with_span ~stats "child" (fun () ->
                  Io_stats.read_page stats)));
      let span = Option.get (Trace.last ()) in
      let doc = Json.of_string (Chrome_trace.to_string [ span ]) in
      let events = Json.arr (Json.member "traceEvents" doc) in
      let xs =
        List.filter (fun e -> Json.str (Json.member "ph" e) = "X") events
      and ms =
        List.filter (fun e -> Json.str (Json.member "ph" e) = "M") events
      in
      Alcotest.(check int) "one X event per span" (Trace.span_count span)
        (List.length xs);
      Alcotest.(check int) "one thread_name lane per actor" 2 (List.length ms);
      List.iter
        (fun e ->
          Alcotest.(check string) "X events stitched by trace id"
            span.Trace.trace_id
            (Json.str (Json.member "trace_id" (Json.member "args" e)));
          Alcotest.(check bool) "non-negative duration" true
            (Json.to_float (Json.member "dur" e) >= 0.);
          Alcotest.(check bool) "pid present" true
            (Json.member "pid" e <> Json.Null))
        xs;
      let tids =
        List.sort_uniq compare
          (List.map (fun e -> Json.to_int (Json.member "tid" e)) xs)
      in
      Alcotest.(check (list int)) "two lanes, root first" [ 0; 1 ] tids)

(* --- Qlog rotation and trace ids ---------------------------------------------- *)

let test_qlog_rotation () =
  with_qlog (fun () ->
      let path = temp_journal () in
      Qlog.enable ~append:false ~max_bytes:400 path;
      for i = 1 to 20 do
        ignore
          (Qlog.record
             ~query:(Printf.sprintf "( ? sub ? id=%d)" i)
             ~fingerprint:"f" ~result_count:i ~reads:0 ~writes:0 ~wall_ns:0
             ~outcome:Qlog.Ok ())
      done;
      Qlog.disable ();
      Alcotest.(check bool) "rotated file exists" true
        (Sys.file_exists (path ^ ".1"));
      let live = Qlog.load path and rotated = Qlog.load (path ^ ".1") in
      Alcotest.(check bool) "both generations parse and are non-empty" true
        (live <> [] && rotated <> []);
      (* the live file always ends with the newest event *)
      let last = List.nth live (List.length live - 1) in
      Alcotest.(check int) "newest event in the live file" 20 last.Qlog.seq;
      (* disk use is bounded: each generation stays near the limit
         (rotation happens after the append that crosses it) *)
      List.iter
        (fun p ->
          let size = (Unix.stat p).Unix.st_size in
          Alcotest.(check bool)
            (Printf.sprintf "%s within bound (%d bytes)" p size)
            true (size <= 700))
        [ path; path ^ ".1" ];
      Sys.remove (path ^ ".1"))

let test_qlog_trace_id_roundtrip () =
  with_qlog (fun () ->
      let path = temp_journal () in
      Qlog.enable ~append:false path;
      ignore
        (Qlog.record ~trace_id:"00ff00ff00ff00ff" ~query:"(a)" ~fingerprint:"f"
           ~result_count:0 ~reads:0 ~writes:0 ~wall_ns:0 ~outcome:Qlog.Ok ());
      ignore
        (Qlog.record ~query:"(b)" ~fingerprint:"f" ~result_count:0 ~reads:0
           ~writes:0 ~wall_ns:0 ~outcome:Qlog.Ok ());
      Qlog.disable ();
      match Qlog.load path with
      | [ a; b ] ->
          Alcotest.(check (option string)) "trace id preserved"
            (Some "00ff00ff00ff00ff") a.Qlog.trace_id;
          Alcotest.(check (option string)) "absent stays absent" None
            b.Qlog.trace_id
      | events -> Alcotest.failf "expected 2 events, got %d" (List.length events))

(* --- Monitor ------------------------------------------------------------------- *)

let test_monitor_routes () =
  let m = Monitor.start ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Monitor.stop m)
    (fun () ->
      let port = Monitor.port m in
      let status, body = Monitor.get ~port "/healthz" in
      Alcotest.(check int) "healthz 200" 200 status;
      Alcotest.(check string) "healthz ok" "ok"
        (Json.str (Json.member "status" (Json.of_string body)));
      let status, body = Monitor.get ~port "/metrics" in
      Alcotest.(check int) "metrics 200" 200 status;
      Alcotest.(check bool) "serves the default registry" true
        (contains body "monitor_requests_total");
      ignore (parse_samples body);
      let status, _ = Monitor.get ~port "/nope" in
      Alcotest.(check int) "unknown route 404" 404 status;
      Monitor.add_handler m "cache" (fun path ->
          if path = "/cache" then
            Some
              (Monitor.respond ~content_type:"application/json" "{\"hits\":0}")
          else None);
      let status, body = Monitor.get ~port "/cache" in
      Alcotest.(check int) "custom handler 200" 200 status;
      Alcotest.(check bool) "custom handler body" true (contains body "hits");
      let status, _ = Monitor.get ~port "/trace" in
      Alcotest.(check int) "trace index 200" 200 status);
  (* stop is idempotent *)
  Monitor.stop m

let test_monitor_trace_route () =
  with_tracing (fun () ->
      Trace.with_span "query" (fun () -> Trace.with_span "child" (fun () -> ()));
      let m = Monitor.start ~port:0 () in
      Fun.protect
        ~finally:(fun () -> Monitor.stop m)
        (fun () ->
          let port = Monitor.port m in
          let status, body = Monitor.get ~port "/trace/last" in
          Alcotest.(check int) "trace/last 200" 200 status;
          let events =
            Json.arr (Json.member "traceEvents" (Json.of_string body))
          in
          Alcotest.(check bool) "chrome trace payload" true (events <> []);
          let status, _ = Monitor.get ~port "/trace/zzz" in
          Alcotest.(check int) "unknown trace 404" 404 status))

(* --- Concurrency hammers --------------------------------------------------------

   The serving front-end drives the observability layer from many
   threads at once; these hammers check the mutexed registry, journal
   and trace state under real contention.  Counts are exact: sys
   threads interleave at allocation points, so an unguarded
   read-modify-write WILL lose increments at these iteration counts. *)

let spawn_join n f =
  let threads = List.init n (fun i -> Thread.create f i) in
  List.iter Thread.join threads

let test_metrics_concurrent_hammer () =
  let r = Metrics.create () in
  let n_threads = 8 and iters = 10_000 in
  spawn_join n_threads (fun i ->
      (* every thread registers the same series and its own series, so
         registration races with mutation on the family table *)
      let shared = Metrics.counter ~registry:r "hammer_total" in
      let own =
        Metrics.counter ~registry:r
          ~labels:[ ("t", string_of_int i) ]
          "hammer_total"
      in
      let h = Metrics.histogram ~registry:r "hammer_ns" in
      let g = Metrics.gauge ~registry:r "hammer_gauge" in
      for k = 1 to iters do
        Metrics.incr shared;
        Metrics.incr own;
        Metrics.observe h (float_of_int k);
        Metrics.set g (float_of_int k)
      done);
  let shared = Metrics.counter ~registry:r "hammer_total" in
  Alcotest.(check int)
    "no lost increments on the shared series" (n_threads * iters)
    (Metrics.counter_value shared);
  let h = Metrics.histogram ~registry:r "hammer_ns" in
  Alcotest.(check int)
    "no lost observations" (n_threads * iters)
    (Metrics.histogram_count h);
  (* per-thread series each saw exactly their own increments *)
  for i = 0 to n_threads - 1 do
    let own =
      Metrics.counter ~registry:r
        ~labels:[ ("t", string_of_int i) ]
        "hammer_total"
    in
    Alcotest.(check int) "own series exact" iters (Metrics.counter_value own)
  done;
  (* exporting under load doesn't tear: run one more contended export *)
  ignore (Metrics.to_json_lines r);
  ignore (Metrics.export r)

let test_qlog_concurrent_hammer () =
  let path = Filename.temp_file "ndq_test_journal_mt" ".jsonl" in
  (* small rotation limit so the hammer crosses generations under
     contention — double-rotation or interleaved lines would surface
     as unparseable JSON or lost/duplicated sequence numbers *)
  Qlog.enable ~append:false ~max_bytes:64_000 ~max_files:8 path;
  Qlog.clear ();
  let observed = ref 0 in
  let omu = Mutex.create () in
  Qlog.set_on_record
    (Some
       (fun _ ->
         Mutex.lock omu;
         incr observed;
         Mutex.unlock omu));
  let n_threads = 8 and per_thread = 250 in
  spawn_join n_threads (fun i ->
      for k = 1 to per_thread do
        ignore
          (Qlog.record
             ~query:(Printf.sprintf "( ? sub ? id=%d-%d)" i k)
             ~fingerprint:"hammer" ~result_count:k ~reads:1 ~writes:0
             ~wall_ns:1000 ~outcome:Qlog.Ok ())
      done);
  Qlog.set_on_record None;
  Qlog.disable ();
  let total = n_threads * per_thread in
  Alcotest.(check int) "observer saw every event exactly once" total !observed;
  (* every line of every generation parses, and the sequence numbers
     are exactly 1..total with no duplicates *)
  let events =
    List.concat_map
      (fun p -> if Sys.file_exists p then Qlog.load p else [])
      (path :: List.init 9 (fun g -> Printf.sprintf "%s.%d" path (g + 1)))
  in
  Alcotest.(check int) "no line lost to rotation or tearing" total
    (List.length events);
  let seqs = List.sort_uniq compare (List.map (fun e -> e.Qlog.seq) events) in
  Alcotest.(check int) "sequence numbers unique" total (List.length seqs);
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    (path :: List.init 9 (fun g -> Printf.sprintf "%s.%d" path (g + 1)))

let test_trace_concurrent_threads () =
  with_tracing (fun () ->
      Trace.set_capacity 64;
      Trace.clear ();
      let n_threads = 8 in
      let ids = Array.make n_threads "" in
      spawn_join n_threads (fun i ->
          (* each thread builds its own little span tree; ambient state
             is per thread, so the trees never cross-link *)
          Trace.with_actor (Printf.sprintf "t%d" i) (fun () ->
              Trace.with_span (Printf.sprintf "root%d" i) (fun () ->
                  ids.(i) <-
                    Option.value ~default:"" (Trace.current_trace_id ());
                  Trace.with_span "child" (fun () -> Thread.yield ());
                  Trace.with_span "child2" (fun () -> ()))));
      let roots = Trace.recent () in
      Alcotest.(check int) "one root per thread" n_threads (List.length roots);
      List.iter
        (fun (s : Trace.span) ->
          Alcotest.(check int) "children attached to own root" 2
            (List.length s.Trace.children);
          List.iter
            (fun (c : Trace.span) ->
              Alcotest.(check string) "child inherits its thread's trace id"
                s.Trace.trace_id c.Trace.trace_id)
            s.Trace.children)
        roots;
      let unique_ids =
        List.sort_uniq compare (Array.to_list ids |> List.filter (( <> ) ""))
      in
      Alcotest.(check int) "distinct trace ids per thread" n_threads
        (List.length unique_ids);
      Trace.clear ();
      Trace.set_capacity 16)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "counter labels" `Quick test_counter_labels;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "histogram quantiles" `Quick
            test_histogram_quantiles;
          Alcotest.test_case "reset keeps handles" `Quick
            test_reset_keeps_handles;
          Alcotest.test_case "exporters" `Quick test_exporters;
          Alcotest.test_case "NaN observation guard" `Quick
            test_observe_nan_guard;
          Alcotest.test_case "cumulative bucket export" `Quick
            test_json_lines_buckets;
          Alcotest.test_case "quantile edge cases" `Quick test_quantile_edges;
        ] );
      ( "promexp",
        [
          Alcotest.test_case "exposition round-trips" `Quick
            test_promexp_exposition;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "closes on raise" `Quick test_span_closes_on_raise;
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
          Alcotest.test_case "capacity truncation" `Quick
            test_capacity_truncates_ring;
          Alcotest.test_case "failing child attached" `Quick
            test_failing_child_attached;
          Alcotest.test_case "set_rows annotation" `Quick test_set_rows;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "trace-id propagation" `Quick
            test_trace_id_propagation;
          Alcotest.test_case "distributed stitching" `Quick
            test_dist_trace_stitching;
          Alcotest.test_case "chrome trace export" `Quick
            test_chrome_trace_shape;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "lines and accessors" `Quick
            test_json_lines_and_accessors;
        ] );
      ( "qlog",
        [
          Alcotest.test_case "record/load roundtrip" `Quick test_qlog_roundtrip;
          Alcotest.test_case "append vs truncate" `Quick test_qlog_append_mode;
          Alcotest.test_case "slowlog ordering" `Quick test_qlog_slowlog;
          Alcotest.test_case "ops_of_span" `Quick test_qlog_ops_of_span;
          Alcotest.test_case "engine journals queries" `Quick
            test_engine_journals_queries;
          Alcotest.test_case "dist journals attribution" `Quick
            test_dist_journals_attribution;
          Alcotest.test_case "size-based rotation" `Quick test_qlog_rotation;
          Alcotest.test_case "trace-id roundtrip" `Quick
            test_qlog_trace_id_roundtrip;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "built-in and custom routes" `Quick
            test_monitor_routes;
          Alcotest.test_case "trace export route" `Quick
            test_monitor_trace_route;
        ] );
      ( "profile",
        [
          Alcotest.test_case "actual_ns on every node" `Quick
            test_profile_actual_ns;
          Alcotest.test_case "engine metrics" `Quick test_engine_metrics;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "metrics hammer" `Quick
            test_metrics_concurrent_hammer;
          Alcotest.test_case "qlog hammer" `Quick test_qlog_concurrent_hammer;
          Alcotest.test_case "trace per-thread spans" `Quick
            test_trace_concurrent_threads;
        ] );
    ]
