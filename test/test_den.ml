(* Tests for the two DEN applications: QoS policy decisions over the
   Figure 12 directory and TOPS call resolution over the Figure 11
   directory, plus scaled synthetic variants checked against independent
   reference logic. *)

(* --- QoS: Figure 12 ------------------------------------------------------- *)

let weekend_clock = { Qos.time = 19980704093000; day_of_week = 6 }
let weekday_clock = { Qos.time = 19980707093000; day_of_week = 2 }

let packet ?(src = "204.178.16.5") ?(sport = 4000) ?(dst = "135.104.9.9")
    ?(dport = 80) ?(proto = 6) () =
  { Qos.src_addr = src; src_port = sport; dst_addr = dst; dst_port = dport;
    protocol = proto }

let action_names d =
  List.concat_map (fun e -> Entry.string_values e "DSActionName") d.Qos.actions
  |> List.sort String.compare

let policy_names d =
  List.concat_map (fun e -> Entry.string_values e "SLAPolicyName")
    d.Qos.matched_policies
  |> List.sort String.compare

let engine () = Engine.create ~block:8 (Qos.figure_12 ())

let test_dso_denies_weekend_traffic () =
  (* A weekend packet from 204.178.16.* that matches no exception: the
     dso policy applies and the packet is denied. *)
  let d = Qos.decide (engine ()) ~pkt:(packet ()) ~clock:weekend_clock in
  Alcotest.(check (list string)) "dso wins" [ "dso" ] (policy_names d);
  Alcotest.(check (list string)) "denied" [ "denyAll" ] (action_names d)

let test_exception_overrides_dso () =
  (* Same source but NNTP (dst port 119): the fatt exception matches at
     the same priority, so dso is suppressed and fatt's action applies. *)
  let d =
    Qos.decide (engine ()) ~pkt:(packet ~dport:119 ()) ~clock:weekend_clock
  in
  Alcotest.(check (list string)) "fatt survives, dso suppressed" [ "fatt" ]
    (policy_names d);
  Alcotest.(check (list string)) "permitted at low rate" [ "permitLow" ]
    (action_names d)

let test_higher_priority_wins () =
  (* Traffic from the gold subnet: priority 1 beats everything. *)
  let d =
    Qos.decide (engine ())
      ~pkt:(packet ~src:"135.104.7.7" ())
      ~clock:weekday_clock
  in
  Alcotest.(check (list string)) "gold policy" [ "gold" ] (policy_names d);
  Alcotest.(check (list string)) "high rate" [ "permitHigh" ] (action_names d)

let test_smtp_policy () =
  (* SMTP on a weekday: only the mail policy matches (dso needs weekend). *)
  let d =
    Qos.decide (engine ())
      ~pkt:(packet ~src:"12.1.2.3" ~sport:25 ())
      ~clock:weekday_clock
  in
  Alcotest.(check (list string)) "mail policy" [ "mail" ] (policy_names d)

let test_no_policy_applies () =
  let d =
    Qos.decide (engine ())
      ~pkt:(packet ~src:"8.8.8.8" ~sport:9999 ~dport:9999 ())
      ~clock:weekday_clock
  in
  Alcotest.(check (list string)) "nothing applies" [] (policy_names d);
  Alcotest.(check (list string)) "no actions" [] (action_names d)

let test_example_7_1_query_runs () =
  (* The paper's composed L3 query: action of the highest-priority policy
     governing SMTP traffic. *)
  let eng = engine () in
  let q = Qparser.of_string Qos.example_7_1_query in
  Alcotest.(check string) "it is an L3 query" "L3"
    (Lang.level_to_string (Lang.level q));
  let result = Engine.eval_entries eng q in
  Alcotest.(check (list string)) "permitLow chosen"
    [ "permitLow" ]
    (List.concat_map (fun e -> Entry.string_values e "DSActionName") result);
  (* and the engine agrees with the reference semantics *)
  let expected = Semantics.eval (Engine.instance eng) q in
  Testkit.check_entries "engine = oracle on Example 7.1" expected result

(* Reference decision logic, written independently of the query pipeline. *)
let reference_decide instance ~pkt ~clock =
  let entries = Instance.to_list instance in
  let by_class c = List.filter (fun e -> Entry.has_class e c) entries in
  let profiles = List.filter (Qos.profile_matches pkt) (by_class "trafficProfile") in
  let periods = List.filter (Qos.period_matches clock) (by_class "policyValidityPeriod") in
  let refd attr p e =
    List.exists (fun d -> Dn.equal d (Entry.dn p)) (Entry.dn_values e attr)
  in
  let applicable =
    List.filter
      (fun e ->
        List.exists (fun p -> refd "SLATPRef" p e) profiles
        && List.exists (fun p -> refd "SLAPVPRef" p e) periods)
      (by_class "SLAPolicyRules")
  in
  match applicable with
  | [] -> []
  | _ ->
      let prio e =
        match Entry.int_values e "SLARulePriority" with p :: _ -> p | [] -> max_int
      in
      let best = List.fold_left (fun m e -> min m (prio e)) max_int applicable in
      let top = List.filter (fun e -> prio e = best) applicable in
      List.filter
        (fun e ->
          not
            (List.exists
               (fun exc ->
                 List.exists
                   (fun d -> Dn.equal d (Entry.dn exc))
                   (Entry.dn_values e "SLAExceptionRef"))
               top))
        top

let prop_decide_matches_reference seed =
  let i =
    Qos.generate ~params:{ Qos.default_gen with seed; n_policies = 60 } ()
  in
  let eng = Engine.create ~block:8 i in
  let rng = Prng.create (seed + 1) in
  List.for_all
    (fun _ ->
      let pkt = Qos.random_packet rng and clock = Qos.random_clock rng in
      let d = Qos.decide eng ~pkt ~clock in
      let expected =
        reference_decide i ~pkt ~clock |> List.sort Entry.compare_rev
      in
      List.length d.Qos.matched_policies = List.length expected
      && List.for_all2 Entry.equal_dn d.Qos.matched_policies expected)
    (List.init 10 Fun.id)

(* --- Conflict detection (Section 2.1) ------------------------------------ *)

let test_figure_12_conflict_free () =
  (* dso vs fatt overlap at priority 2, but the exception reference
     resolves it; mail never overlaps dso's profiles.  Figure 12 as
     reconstructed must audit clean. *)
  let cs = Qos.conflicts (Qos.figure_12 ()) in
  Alcotest.(check int)
    (Fmt.str "conflicts: %a" (Fmt.list ~sep:Fmt.comma Qos.pp_conflict) cs)
    0 (List.length cs)

let test_conflict_detected () =
  (* Two same-priority policies over the same profile and period with
     different actions and no exception: an unresolved conflict. *)
  let sc = Qos.schema () in
  let scaffold =
    [
      Qos.profile_entry ~name:"web" ~src_port:80 ();
      Qos.period_entry ~name:"always" ~start_time:0 ~end_time:99999999999999
        ~days:[];
      Qos.action_entry ~name:"allow" ~permission:"Permit" ~peak_rate:10
        ~drop_priority:1;
      Qos.action_entry ~name:"block" ~permission:"Deny" ~peak_rate:0
        ~drop_priority:0;
      Qos.policy_entry ~name:"p1" ~scope:"DataTraffic" ~priority:1
        ~exceptions:[] ~profiles:[ "web" ] ~periods:[ "always" ] ~action:"allow";
      Qos.policy_entry ~name:"p2" ~scope:"DataTraffic" ~priority:1
        ~exceptions:[] ~profiles:[ "web" ] ~periods:[ "always" ] ~action:"block";
    ]
  in
  let bases =
    List.map
      (fun (d, ou) ->
        Entry.make (Dn.of_string d)
          [ ("ou", Value.Str ou); (Schema.object_class, Value.Str "organizationalUnit") ])
      [
        (Qos.domain, "networkPolicies");
        (Qos.policies_base, "SLAPolicyRules");
        (Qos.profiles_base, "trafficProfile");
        (Qos.periods_base, "policyValidityPeriod");
        (Qos.actions_base, "SLADSAction");
      ]
  in
  let dcs =
    List.map
      (fun (d, v) ->
        Entry.make (Dn.of_string d)
          [ ("dc", Value.Str v); (Schema.object_class, Value.Str "dcObject") ])
      [ ("dc=com", "com"); ("dc=att, dc=com", "att");
        ("dc=research, dc=att, dc=com", "research") ]
  in
  let i = Instance.of_entries sc (dcs @ bases @ scaffold) in
  let cs = Qos.conflicts i in
  Alcotest.(check int) "one conflict" 1 (List.length cs);
  (* resolving it with an exception clears the audit *)
  let resolved =
    Instance.replace i
      (Qos.policy_entry ~name:"p1" ~scope:"DataTraffic" ~priority:1
         ~exceptions:[ "p2" ] ~profiles:[ "web" ] ~periods:[ "always" ]
         ~action:"allow")
  in
  Alcotest.(check int) "resolved by exception" 0
    (List.length (Qos.conflicts resolved));
  (* ... or by distinct priorities *)
  let reprioritized =
    Instance.replace i
      (Qos.policy_entry ~name:"p1" ~scope:"DataTraffic" ~priority:2
         ~exceptions:[] ~profiles:[ "web" ] ~periods:[ "always" ]
         ~action:"allow")
  in
  Alcotest.(check int) "resolved by priority" 0
    (List.length (Qos.conflicts reprioritized))

let test_overlap_primitives () =
  let t = Alcotest.(check bool) in
  t "prefix patterns overlap" true
    (Qos.patterns_may_overlap "204.178.*" "204.178.16.*");
  t "disjoint prefixes do not" false
    (Qos.patterns_may_overlap "204.178.*" "207.140.*");
  t "exact equal" true (Qos.patterns_may_overlap "1.2.3.4" "1.2.3.4");
  t "exact disjoint" false (Qos.patterns_may_overlap "1.2.3.4" "5.6.7.8");
  let p1 = Qos.period_entry ~name:"a" ~start_time:100 ~end_time:200 ~days:[ 1 ] in
  let p2 = Qos.period_entry ~name:"b" ~start_time:150 ~end_time:300 ~days:[ 1; 2 ] in
  let p3 = Qos.period_entry ~name:"c" ~start_time:250 ~end_time:300 ~days:[ 1 ] in
  let p4 = Qos.period_entry ~name:"d" ~start_time:100 ~end_time:300 ~days:[ 5 ] in
  t "time overlap" true (Qos.periods_may_overlap p1 p2);
  t "time disjoint" false (Qos.periods_may_overlap p1 p3);
  t "day disjoint" false (Qos.periods_may_overlap p1 p4)

let test_generated_qos_valid () =
  let i = Qos.generate () in
  Alcotest.(check int) "well-formed" 0 (List.length (Instance.validate i))

(* --- TOPS: Figure 11 -------------------------------------------------------- *)

let tops_engine () = Engine.create ~block:8 (Tops.figure_11 ())

let ca_numbers r =
  List.concat_map (fun e -> Entry.string_values e "CANumber") r.Tops.appearances

let test_working_hours_call () =
  (* Tuesday 10:30: the working-hours QHP wins; office phone first, then
     secretary, then voice mail. *)
  let r = Tops.resolve (tops_engine ()) ~uid:"jag" ~time:1030 ~day:2 in
  (match r.Tops.qhp with
  | Some q ->
      Alcotest.(check (list string)) "workinghours chosen" [ "workinghours" ]
        (Entry.string_values q "QHPName")
  | None -> Alcotest.fail "expected a QHP");
  Alcotest.(check (list string)) "priority order"
    [ "9733608750"; "9733608751"; "9733608752" ]
    (ca_numbers r)

let test_weekend_call () =
  (* Saturday: the weekend QHP (priority 1) applies and routes straight
     to voice mail.  Note 10:30 Saturday also matches working hours, but
     weekend has higher priority. *)
  let r = Tops.resolve (tops_engine ()) ~uid:"jag" ~time:1030 ~day:6 in
  (match r.Tops.qhp with
  | Some q ->
      Alcotest.(check (list string)) "weekend chosen" [ "weekend" ]
        (Entry.string_values q "QHPName")
  | None -> Alcotest.fail "expected a QHP");
  Alcotest.(check (list string)) "voice mail only" [ "9733608752" ] (ca_numbers r)

let test_night_weekday_call () =
  (* Wednesday 23:00: working hours has lapsed and weekend needs day 6/7:
     no QHP matches, the call cannot be resolved. *)
  let r = Tops.resolve (tops_engine ()) ~uid:"jag" ~time:2300 ~day:3 in
  Alcotest.(check bool) "no QHP" true (r.Tops.qhp = None);
  Alcotest.(check (list string)) "no appearances" [] (ca_numbers r)

let test_caller_groups () =
  (* A VIP-only QHP at priority 0: family callers ring the home phone
     first; strangers fall through to the normal working-hours QHP. *)
  let sc = Tops.schema () in
  let base = Tops.figure_11 () in
  let i =
    List.fold_left (Instance.add ~validate:true)
      (Instance.of_entries sc (Instance.to_list base))
      [
        Tops.qhp_entry ~uid:"jag" ~name:"vip" ~groups:[ "family"; "managers" ]
          ~priority:0 ();
        Tops.appearance_entry ~uid:"jag" ~qhp:"vip" ~number:"9085550000"
          ~priority:1 ~description:"home" ();
      ]
  in
  let eng = Engine.create ~block:8 i in
  let r_family =
    Tops.resolve eng ~caller_groups:[ "family" ] ~uid:"jag" ~time:1030 ~day:2
  in
  (match r_family.Tops.qhp with
  | Some q ->
      Alcotest.(check (list string)) "family reaches vip" [ "vip" ]
        (Entry.string_values q "QHPName")
  | None -> Alcotest.fail "family should match");
  Alcotest.(check (list string)) "home phone" [ "9085550000" ]
    (ca_numbers r_family);
  let r_stranger = Tops.resolve eng ~uid:"jag" ~time:1030 ~day:2 in
  (match r_stranger.Tops.qhp with
  | Some q ->
      Alcotest.(check (list string)) "stranger gets working hours"
        [ "workinghours" ]
        (Entry.string_values q "QHPName")
  | None -> Alcotest.fail "stranger should still match workinghours");
  (* the restriction query itself is plain L0 *)
  Alcotest.(check string) "matching query is L0" "L0"
    (Lang.level_to_string
       (Lang.level
          (Tops.matching_qhps_query ~caller_groups:[ "family" ] ~uid:"jag"
             ~time:1030 ~day:2 ())))

let test_unknown_subscriber () =
  let r = Tops.resolve (tops_engine ()) ~uid:"nobody" ~time:1030 ~day:2 in
  Alcotest.(check bool) "no QHP" true (r.Tops.qhp = None)

(* Independent reference for generated TOPS directories. *)
let reference_resolve instance ~uid ~time ~day =
  let under_sub e =
    Dn.is_self_or_descendant_of ~descendant:(Entry.dn e)
      ~ancestor:(Dn.of_string (Tops.subscriber_dn uid))
  in
  let qhps =
    Instance.fold
      (fun acc e ->
        if Entry.has_class e "QHP" && under_sub e then e :: acc else acc)
      [] instance
  in
  let matches e =
    (match Entry.int_values e "startTime" with [] -> true | ts -> List.exists (fun t -> t <= time) ts)
    && (match Entry.int_values e "endTime" with [] -> true | ts -> List.exists (fun t -> time <= t) ts)
    && (match Entry.int_values e "daysOfWeek" with [] -> true | ds -> List.mem day ds)
  in
  let applicable = List.filter matches qhps in
  let prio e = match Entry.int_values e "priority" with p :: _ -> p | [] -> max_int in
  match applicable with
  | [] -> None
  | _ ->
      let best = List.fold_left (fun m e -> min m (prio e)) max_int applicable in
      List.find_opt (fun e -> prio e = best) (List.sort Entry.compare_rev applicable)

let prop_tops_resolution_matches seed =
  let i = Tops.generate ~params:{ Tops.default_gen with seed; subscribers = 20 } () in
  let eng = Engine.create ~block:8 i in
  let rng = Prng.create (seed * 7) in
  List.for_all
    (fun _ ->
      let uid = Printf.sprintf "user%d" (Prng.int rng 20) in
      let time = Prng.int rng 2400 and day = 1 + Prng.int rng 7 in
      let r = Tops.resolve eng ~uid ~time ~day in
      let expected = reference_resolve i ~uid ~time ~day in
      match (r.Tops.qhp, expected) with
      | None, None -> true
      | Some a, Some b ->
          (* several QHPs may tie on priority; compare priorities *)
          Entry.int_values a "priority" = Entry.int_values b "priority"
      | Some _, None | None, Some _ -> false)
    (List.init 15 Fun.id)

let test_generated_tops_valid () =
  let i = Tops.generate () in
  Alcotest.(check int) "well-formed" 0 (List.length (Instance.validate i));
  Alcotest.(check int) "expected size"
    (4 + (50 * (1 + (3 * (1 + 2)))))
    (Instance.size i)

let test_figures_valid () =
  Alcotest.(check int) "figure 11 well-formed" 0
    (List.length (Instance.validate (Tops.figure_11 ())));
  Alcotest.(check int) "figure 12 well-formed" 0
    (List.length (Instance.validate (Qos.figure_12 ())))

let () =
  Alcotest.run "den"
    [
      ( "qos",
        [
          Alcotest.test_case "dso denies weekend traffic" `Quick
            test_dso_denies_weekend_traffic;
          Alcotest.test_case "exception overrides" `Quick
            test_exception_overrides_dso;
          Alcotest.test_case "priority wins" `Quick test_higher_priority_wins;
          Alcotest.test_case "smtp weekday" `Quick test_smtp_policy;
          Alcotest.test_case "no policy applies" `Quick test_no_policy_applies;
          Alcotest.test_case "Example 7.1 query" `Quick
            test_example_7_1_query_runs;
          Testkit.qtest ~count:20 "decide = reference on generated"
            (QCheck2.Gen.int_range 0 10_000) prop_decide_matches_reference;
          Alcotest.test_case "generated valid" `Quick test_generated_qos_valid;
          Alcotest.test_case "figure 12 conflict-free" `Quick
            test_figure_12_conflict_free;
          Alcotest.test_case "conflict detected and resolved" `Quick
            test_conflict_detected;
          Alcotest.test_case "overlap primitives" `Quick test_overlap_primitives;
        ] );
      ( "tops",
        [
          Alcotest.test_case "working hours" `Quick test_working_hours_call;
          Alcotest.test_case "weekend" `Quick test_weekend_call;
          Alcotest.test_case "weekday night" `Quick test_night_weekday_call;
          Alcotest.test_case "unknown subscriber" `Quick test_unknown_subscriber;
          Alcotest.test_case "caller groups (access control)" `Quick
            test_caller_groups;
          Testkit.qtest ~count:20 "resolve = reference on generated"
            (QCheck2.Gen.int_range 0 10_000) prop_tops_resolution_matches;
          Alcotest.test_case "generated valid" `Quick test_generated_tops_valid;
        ] );
      ("figures", [ Alcotest.test_case "figures valid" `Quick test_figures_valid ]);
    ]
