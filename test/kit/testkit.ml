(* Shared helpers and QCheck generators for the test suites. *)

let entry_list_testable =
  Alcotest.testable
    (Fmt.list ~sep:Fmt.comma (fun ppf e -> Dn.pp ppf (Entry.dn e)))
    (fun a b ->
      List.length a = List.length b && List.for_all2 Entry.equal_dn a b)

let dns_of entries = List.map (fun e -> Dn.to_string (Entry.dn e)) entries

let check_entries msg expected actual =
  Alcotest.check entry_list_testable msg expected actual

(* Sorted result of the reference semantics. *)
let oracle instance q = Semantics.eval instance q

(* A fresh engine over [instance] with small pages so that page-level
   effects show up even on small inputs. *)
let engine ?(block = 8) ?(window = 2) ?(with_attr_index = true)
    ?(algorithms = Engine.Stack_based) ?mode ?planner ?directory instance =
  Engine.create ~block ~window ~with_attr_index ~algorithms ?mode ?planner
    ?directory instance

(* --- QCheck generators -------------------------------------------------- *)

open QCheck2

let ( let* ) = Gen.( >>= )
let ( and* ) a b = Gen.pair a b

(* Random generated instance of bounded size. *)
let gen_instance =
  Gen.sized_size (Gen.int_range 5 120) (fun n ->
      let* seed = Gen.int_range 0 100_000 in
      let* depth_bias =
        Gen.oneofl [ 0.0; 0.2; 0.5; 0.8; 1.0 ]
      in
      Gen.return
        (Dif_gen.generate
           ~params:
             {
               Dif_gen.default_params with
               seed;
               size = max 2 n;
               depth_bias;
               roots = 1 + (seed mod 3);
             }
           ()))

(* A dn from the instance (or a near-miss child of one). *)
let gen_base instance =
  let dns = Array.of_list (List.map Entry.dn (Instance.to_list instance)) in
  let* i = Gen.int_range 0 (Array.length dns - 1) in
  let* variant = Gen.int_range 0 9 in
  if variant = 0 then Gen.return Dn.root
  else if variant = 1 then
    Gen.return (Dn.child dns.(i) (Rdn.single "id" (Value.Int 999_999)))
  else Gen.return dns.(i)

let gen_filter =
  Gen.oneof
    [
      Gen.return (Afilter.Present "id");
      Gen.return (Afilter.Present "ref");
      Gen.map (fun c -> Afilter.Str_eq (Schema.object_class, c))
        (Gen.oneofl [ "node"; "person"; "organizationalUnit"; "dcObject" ]);
      Gen.map (fun n -> Afilter.Str_eq ("name", n))
        (Gen.oneofl [ "jagadish"; "milo"; "smith"; "nobody" ]);
      Gen.map
        (fun (op, k) -> Afilter.Int_cmp ("priority", op, k))
        (Gen.pair
           (Gen.oneofl Afilter.[ Lt; Le; Eq; Ge; Gt ])
           (Gen.int_range 0 10));
      Gen.map (fun k -> Afilter.Int_cmp ("id", Afilter.Lt, k)) (Gen.int_range 0 150);
      Gen.map
        (fun mid ->
          Afilter.Substr
            ("name", { Afilter.initial = None; middles = [ mid ]; final = None }))
        (Gen.oneofl [ "a"; "mi"; "ith"; "zz" ]);
      Gen.map
        (fun ini ->
          Afilter.Substr
            ("tag", { Afilter.initial = Some ini; middles = []; final = None }))
        (Gen.oneofl [ "r"; "gr"; "b" ]);
    ]

let gen_scope = Gen.oneofl Ast.[ Base; One; Sub ]

let gen_atomic instance =
  let* base = gen_base instance in
  let* scope = gen_scope in
  let* filter = gen_filter in
  Gen.return (Ast.Atomic { Ast.base; scope; filter })

let gen_attr_ref =
  Gen.oneof
    [
      Gen.map (fun a -> Ast.W1 a) (Gen.oneofl [ "priority"; "weight"; "id" ]);
      Gen.map (fun a -> Ast.W2 a) (Gen.oneofl [ "priority"; "weight"; "id" ]);
    ]

let gen_agg_fun = Gen.oneofl Ast.[ Min; Max; Sum; Count; Average ]

let gen_entry_agg =
  Gen.oneof
    [
      Gen.return Ast.Ea_count_witnesses;
      Gen.map (fun (f, r) -> Ast.Ea_agg (f, r)) (Gen.pair gen_agg_fun gen_attr_ref);
    ]

let gen_entry_set_agg =
  Gen.oneof
    [
      Gen.return Ast.Esa_count_entries;
      Gen.map (fun (f, ea) -> Ast.Esa_agg (f, ea))
        (Gen.pair gen_agg_fun gen_entry_agg);
    ]

let gen_agg_attr =
  Gen.frequency
    [
      (2, Gen.map (fun c -> Ast.A_const c) (Gen.int_range 0 20));
      (3, Gen.map (fun ea -> Ast.A_entry ea) gen_entry_agg);
      (2, Gen.map (fun esa -> Ast.A_entry_set esa) gen_entry_set_agg);
    ]

let gen_cmp = Gen.oneofl Ast.[ Lt; Le; Eq; Ge; Gt; Ne ]

(* Structural aggregate filter (may reference $1/$2). *)
let gen_agg_filter =
  let* lhs = gen_agg_attr in
  let* op = gen_cmp in
  let* rhs = gen_agg_attr in
  Gen.return { Ast.lhs; op; rhs }

(* Simple aggregate filter for (g ...): only Self refs and count($$). *)
let gen_simple_agg_filter =
  let gen_simple_ea =
    Gen.map
      (fun (f, a) -> Ast.Ea_agg (f, Ast.Self a))
      (Gen.pair gen_agg_fun (Gen.oneofl [ "priority"; "weight"; "id"; "ref" ]))
  in
  let gen_simple_attr =
    Gen.frequency
      [
        (2, Gen.map (fun c -> Ast.A_const c) (Gen.int_range 0 20));
        (3, Gen.map (fun ea -> Ast.A_entry ea) gen_simple_ea);
        (1, Gen.return (Ast.A_entry_set Ast.Esa_count_all));
        ( 2,
          Gen.map
            (fun (f, ea) -> Ast.A_entry_set (Ast.Esa_agg (f, ea)))
            (Gen.pair gen_agg_fun gen_simple_ea) );
      ]
  in
  let* lhs = gen_simple_attr in
  let* op = gen_cmp in
  let* rhs = gen_simple_attr in
  Gen.return { Ast.lhs; op; rhs }

let gen_query instance =
  let atomic = gen_atomic instance in
  let rec go depth =
    if depth = 0 then atomic
    else
      let sub = go (depth - 1) in
      Gen.frequency
        [
          (3, atomic);
          ( 2,
            Gen.map2
              (fun a b -> Ast.And (a, b))
              sub sub );
          (2, Gen.map2 (fun a b -> Ast.Or (a, b)) sub sub);
          (2, Gen.map2 (fun a b -> Ast.Diff (a, b)) sub sub);
          ( 3,
            let* op = Gen.oneofl Ast.[ P; C; A; D ] in
            let* q1 = sub and* q2 = sub in
            let* agg = Gen.option gen_agg_filter in
            Gen.return (Ast.Hier (op, q1, q2, agg)) );
          ( 2,
            let* op = Gen.oneofl Ast.[ Ac; Dc ] in
            let* q1 = sub and* q2 = sub and* q3 = sub in
            let* agg = Gen.option gen_agg_filter in
            Gen.return (Ast.Hier3 (op, q1, q2, q3, agg)) );
          ( 2,
            let* q1 = sub in
            let* f = gen_simple_agg_filter in
            Gen.return (Ast.Gsel (q1, f)) );
          ( 2,
            let* op = Gen.oneofl Ast.[ Vd; Dv ] in
            let* q1 = sub and* q2 = sub in
            let* agg = Gen.option gen_agg_filter in
            Gen.return (Ast.Eref (op, q1, q2, "ref", agg)) );
        ]
  in
  go 3

let gen_instance_and_query =
  let* instance = gen_instance in
  let* q = gen_query instance in
  Gen.return (instance, q)

(* Atomic-only pairs, for properties about access-path selection. *)
let gen_instance_and_atomic =
  let* instance = gen_instance in
  let* q = gen_atomic instance in
  Gen.return (instance, q)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)
