(* Unit and property tests for the external-memory substrate: pager
   arithmetic, accounted lists, external sort and the spillable stack. *)

let fresh ?(block = 8) () =
  let stats = Io_stats.create () in
  (stats, Pager.create ~block stats)

(* --- Pager --------------------------------------------------------------- *)

let test_pages_of () =
  let _, pager = fresh ~block:8 () in
  List.iter
    (fun (n, expect) ->
      Alcotest.(check int) (Printf.sprintf "pages_of %d" n) expect
        (Pager.pages_of pager n))
    [ (0, 0); (1, 1); (7, 1); (8, 1); (9, 2); (16, 2); (17, 3); (800, 100) ]

let test_pager_validation () =
  let stats = Io_stats.create () in
  Alcotest.check_raises "zero block"
    (Invalid_argument "Pager.create: block must be positive") (fun () ->
      ignore (Pager.create ~block:0 stats))

(* --- Io_stats -------------------------------------------------------------- *)

let test_stats_counters () =
  let s = Io_stats.create () in
  Io_stats.read_page ~n:3 s;
  Io_stats.write_page s;
  Io_stats.message ~bytes:100 s;
  Io_stats.grow_resident ~n:5 s;
  Io_stats.shrink_resident ~n:2 s;
  Alcotest.(check int) "total io" 4 (Io_stats.total_io s);
  Alcotest.(check int) "messages" 1 s.Io_stats.messages;
  Alcotest.(check int) "bytes" 100 s.Io_stats.bytes_shipped;
  Alcotest.(check int) "resident" 3 s.Io_stats.resident_pages;
  Alcotest.(check int) "max resident" 5 s.Io_stats.max_resident_pages;
  let snapshot = Io_stats.copy s in
  Io_stats.read_page ~n:2 s;
  let d = Io_stats.diff s snapshot in
  Alcotest.(check int) "diff reads" 2 d.Io_stats.page_reads;
  Io_stats.reset s;
  Alcotest.(check int) "reset" 0 (Io_stats.total_io s)

(* [resident_pages] is a gauge over live allocations, not a counter:
   reset must keep it (the pages are still resident) and restart the
   high-water mark from it, while zeroing the transfer counters. *)
let test_reset_keeps_resident_gauge () =
  let s = Io_stats.create () in
  Io_stats.read_page ~n:4 s;
  Io_stats.write_page s;
  Io_stats.grow_resident ~n:5 s;
  Io_stats.shrink_resident ~n:2 s;
  Alcotest.(check int) "max before reset" 5 s.Io_stats.max_resident_pages;
  Io_stats.reset s;
  Alcotest.(check int) "counters zeroed" 0 (Io_stats.total_io s);
  Alcotest.(check int) "resident survives reset" 3 s.Io_stats.resident_pages;
  Alcotest.(check int) "high-water restarts at live set" 3
    s.Io_stats.max_resident_pages;
  Io_stats.grow_resident ~n:2 s;
  Alcotest.(check int) "high-water grows again" 5 s.Io_stats.max_resident_pages

(* --- Ext_list --------------------------------------------------------------- *)

let test_cursor_charges () =
  let stats, pager = fresh ~block:8 () in
  let l = Ext_list.of_array_resident pager (Array.init 20 Fun.id) in
  Alcotest.(check int) "resident list creation is free" 0 (Io_stats.total_io stats);
  Ext_list.iter (fun _ -> ()) l;
  Alcotest.(check int) "scan of 20 records = 3 page reads" 3
    stats.Io_stats.page_reads;
  (* Peeking the same page repeatedly charges once. *)
  Io_stats.reset stats;
  let cur = Ext_list.Cursor.make l in
  ignore (Ext_list.Cursor.peek cur);
  ignore (Ext_list.Cursor.peek cur);
  Ext_list.Cursor.advance cur;
  ignore (Ext_list.Cursor.peek cur);
  Alcotest.(check int) "same page faults once" 1 stats.Io_stats.page_reads

let test_writer_charges () =
  let stats, pager = fresh ~block:8 () in
  let w = Ext_list.Writer.make pager in
  for i = 1 to 20 do
    Ext_list.Writer.push w i
  done;
  let l = Ext_list.Writer.close w in
  Alcotest.(check int) "20 records = 3 page writes" 3 stats.Io_stats.page_writes;
  Alcotest.(check (list int)) "contents preserved in order"
    (List.init 20 (fun i -> i + 1))
    (Ext_list.to_list l);
  let w2 = Ext_list.Writer.make pager in
  let e = Ext_list.Writer.close w2 in
  Alcotest.(check int) "empty close writes nothing" 3 stats.Io_stats.page_writes;
  Alcotest.(check bool) "empty list" true (Ext_list.is_empty e)

let test_materialize_charges () =
  let stats, pager = fresh ~block:8 () in
  let _ = Ext_list.materialize pager (Array.init 17 Fun.id) in
  Alcotest.(check int) "17 records = 3 page writes" 3 stats.Io_stats.page_writes

let test_filter_map () =
  let _, pager = fresh () in
  let l = Ext_list.of_array_resident pager (Array.init 30 Fun.id) in
  let evens = Ext_list.filter (fun x -> x mod 2 = 0) l in
  Alcotest.(check int) "filter keeps half" 15 (Ext_list.length evens);
  let doubled = Ext_list.map (fun x -> 2 * x) evens in
  Alcotest.(check int) "map preserves length" 15 (Ext_list.length doubled);
  Alcotest.(check bool) "is_sorted" true
    (Ext_list.is_sorted Int.compare doubled)

(* --- Ext_sort --------------------------------------------------------------- *)

let gen_int_array =
  QCheck2.Gen.(array_size (int_range 0 2_000) (int_range 0 500))

let prop_sort_correct arr =
  let _, pager = fresh ~block:8 () in
  let l = Ext_list.of_array_resident pager (Array.copy arr) in
  let sorted = Ext_sort.sort ~memory_pages:3 Int.compare l in
  let expected = List.sort Int.compare (Array.to_list arr) in
  Ext_list.to_list sorted = expected

(* Stability: equal keys keep their input order. *)
let prop_sort_stable arr =
  let _, pager = fresh ~block:8 () in
  let tagged = Array.mapi (fun i x -> (x mod 10, i)) arr in
  let l = Ext_list.of_array_resident pager tagged in
  let cmp (a, _) (b, _) = Int.compare a b in
  let sorted = Ext_list.to_list (Ext_sort.sort ~memory_pages:3 cmp l) in
  let rec stable = function
    | (k1, i1) :: ((k2, i2) :: _ as rest) ->
        (k1 < k2 || (k1 = k2 && i1 < i2)) && stable rest
    | [ _ ] | [] -> true
  in
  stable sorted

(* I/O of external sort is O((N/B) log(N/B)): check against the textbook
   bound 2 * pages * (1 + passes) with fan-in (memory_pages - 1). *)
let prop_sort_io_bound arr =
  QCheck2.assume (Array.length arr > 0);
  let stats, pager = fresh ~block:8 () in
  let memory_pages = 4 in
  let l = Ext_list.of_array_resident pager (Array.copy arr) in
  ignore (Ext_sort.sort ~memory_pages Int.compare l);
  let pages = Pager.pages_of pager (Array.length arr) in
  let runs = (pages + memory_pages - 1) / memory_pages in
  let fan_in = memory_pages - 1 in
  let rec passes r acc =
    if r <= 1 then acc else passes ((r + fan_in - 1) / fan_in) (acc + 1)
  in
  let bound = (2 * pages * (1 + passes runs 0)) + 4 in
  Io_stats.total_io stats <= bound

(* --- Spill_stack -------------------------------------------------------------- *)

let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 0 600)
      (frequency [ (3, map (fun n -> `Push n) (int_range 0 1000)); (2, return `Pop) ]))

(* Differential test against a plain list stack, with spill I/O bounded
   linearly in the operation count. *)
let prop_spill_stack_model ops =
  let stats, pager = fresh ~block:4 () in
  let stack = Spill_stack.create ~window_pages:1 pager in
  let model = ref [] in
  let ok = ref true in
  List.iter
    (fun op ->
      match op with
      | `Push n ->
          Spill_stack.push stack n;
          model := n :: !model
      | `Pop -> (
          let got = Spill_stack.pop stack in
          match (got, !model) with
          | None, [] -> ()
          | Some v, m :: rest ->
              if v <> m then ok := false;
              model := rest
          | Some _, [] | None, _ :: _ -> ok := false))
    ops;
  if Spill_stack.length stack <> List.length !model then ok := false;
  let bound = List.length ops + 8 in
  !ok && Io_stats.total_io stats <= bound

let prop_spill_top_consistent ops =
  let _, pager = fresh ~block:4 () in
  let stack = Spill_stack.create ~window_pages:2 pager in
  let model = ref [] in
  List.for_all
    (fun op ->
      (match op with
      | `Push n ->
          Spill_stack.push stack n;
          model := n :: !model
      | `Pop ->
          ignore (Spill_stack.pop stack);
          model := (match !model with [] -> [] | _ :: r -> r));
      Spill_stack.top stack = (match !model with [] -> None | x :: _ -> Some x))
    ops

(* --- Buffer_pool --------------------------------------------------------------- *)

let test_pool_basics () =
  let stats, pager = fresh ~block:4 () in
  let pool = Buffer_pool.create ~capacity:2 pager in
  let r page = Buffer_pool.read pool ~file:"f" ~page in
  r 0;
  r 1;
  Alcotest.(check int) "two cold misses" 2 stats.Io_stats.page_reads;
  r 0;
  r 1;
  Alcotest.(check int) "hits are free" 2 stats.Io_stats.page_reads;
  Alcotest.(check int) "hit count" 2 (Buffer_pool.hits pool);
  (* page 2 evicts the LRU (page 0) *)
  r 2;
  r 1;
  Alcotest.(check int) "1 still cached" 3 stats.Io_stats.page_reads;
  r 0;
  Alcotest.(check int) "0 was evicted" 4 stats.Io_stats.page_reads;
  (* distinct files do not collide *)
  Buffer_pool.clear pool;
  r 5;
  Buffer_pool.read pool ~file:"g" ~page:5;
  Alcotest.(check int) "per-file keys" 6 stats.Io_stats.page_reads;
  Buffer_pool.release pool;
  Alcotest.(check int) "resident released" 0 stats.Io_stats.resident_pages

let test_pool_zero_capacity () =
  let stats, pager = fresh ~block:4 () in
  let pool = Buffer_pool.create ~capacity:0 pager in
  for _ = 1 to 5 do
    Buffer_pool.read pool ~file:"f" ~page:0
  done;
  Alcotest.(check int) "capacity 0 never caches" 5 stats.Io_stats.page_reads

(* LRU model check over random access sequences. *)
let gen_accesses =
  QCheck2.Gen.(list_size (int_range 0 400) (int_range 0 20))

let prop_pool_matches_lru_model pages =
  let stats, pager = fresh ~block:4 () in
  let capacity = 4 in
  let pool = Buffer_pool.create ~capacity pager in
  let model = ref [] in  (* most recent first, max [capacity] *)
  let expected_misses = ref 0 in
  List.iter
    (fun page ->
      Buffer_pool.read pool ~file:"f" ~page;
      if List.mem page !model then
        model := page :: List.filter (fun p -> p <> page) !model
      else begin
        incr expected_misses;
        model := page :: List.filteri (fun i _ -> i < capacity - 1) !model
      end)
    pages;
  Buffer_pool.misses pool = !expected_misses
  && stats.Io_stats.page_reads = !expected_misses

(* With a cache, a repeated subtree scan costs only the output writes. *)
let test_pool_integration_dn_index () =
  let stats, pager = fresh ~block:8 () in
  let pool = Buffer_pool.create ~capacity:64 pager in
  let i = Dif_gen.karily ~fanout:4 ~size:200 () in
  let idx = Dn_index.build ~pool pager i in
  let root = Dn.of_string "dc=kroot" in
  Io_stats.reset stats;
  ignore (Dn_index.scan_subtree idx root);
  let cold = stats.Io_stats.page_reads in
  Io_stats.reset stats;
  ignore (Dn_index.scan_subtree idx root);
  let warm = stats.Io_stats.page_reads in
  Alcotest.(check bool)
    (Printf.sprintf "warm (%d) < cold (%d)" warm cold)
    true (warm = 0 && cold > 0)

(* Eviction follows exact LRU recency, with hits refreshing recency. *)
let test_pool_eviction_order () =
  let stats, pager = fresh ~block:4 () in
  let pool = Buffer_pool.create ~capacity:3 pager in
  let r page = Buffer_pool.read pool ~file:"f" ~page in
  r 0;
  r 1;
  r 2;
  Alcotest.(check int) "cold fill misses" 3 (Buffer_pool.misses pool);
  (* Touching 0 makes 1 the LRU page, so reading 3 must evict 1. *)
  r 0;
  r 3;
  r 0;
  r 2;
  r 3;
  Alcotest.(check int) "survivors all hit" 4 (Buffer_pool.hits pool);
  Alcotest.(check int) "charged reads = misses" 4 stats.Io_stats.page_reads;
  r 1;
  Alcotest.(check int) "the evicted page faults again" 5
    (Buffer_pool.misses pool);
  Alcotest.(check int) "a fault is not a hit" 4 (Buffer_pool.hits pool)

let test_pool_hits_counter () =
  let stats, pager = fresh ~block:4 () in
  let pool = Buffer_pool.create ~capacity:2 pager in
  let r page = Buffer_pool.read pool ~file:"f" ~page in
  Alcotest.(check int) "fresh pool has no hits" 0 (Buffer_pool.hits pool);
  r 0;
  Alcotest.(check int) "a miss is not a hit" 0 (Buffer_pool.hits pool);
  for _ = 1 to 5 do
    r 0
  done;
  Alcotest.(check int) "five repeats, five hits" 5 (Buffer_pool.hits pool);
  Alcotest.(check int) "still one miss" 1 (Buffer_pool.misses pool);
  Alcotest.(check int) "hits charge no reads" 1 stats.Io_stats.page_reads;
  (* [clear] drops the contents but keeps the lifetime counters. *)
  Buffer_pool.clear pool;
  r 0;
  Alcotest.(check int) "clear keeps hit count" 5 (Buffer_pool.hits pool);
  Alcotest.(check int) "re-read after clear faults" 2 (Buffer_pool.misses pool)

let test_spill_resident_accounting () =
  let stats, pager = fresh ~block:4 () in
  let stack = Spill_stack.create ~window_pages:3 pager in
  Alcotest.(check int) "window counted resident" 3 stats.Io_stats.resident_pages;
  Spill_stack.release stack;
  Alcotest.(check int) "released" 0 stats.Io_stats.resident_pages

let () =
  Alcotest.run "storage"
    [
      ( "pager",
        [
          Alcotest.test_case "pages_of" `Quick test_pages_of;
          Alcotest.test_case "validation" `Quick test_pager_validation;
        ] );
      ( "io-stats",
        [
          Alcotest.test_case "counters" `Quick test_stats_counters;
          Alcotest.test_case "reset keeps resident gauge" `Quick
            test_reset_keeps_resident_gauge;
        ] );
      ( "ext-list",
        [
          Alcotest.test_case "cursor charges" `Quick test_cursor_charges;
          Alcotest.test_case "writer charges" `Quick test_writer_charges;
          Alcotest.test_case "materialize charges" `Quick test_materialize_charges;
          Alcotest.test_case "filter and map" `Quick test_filter_map;
        ] );
      ( "ext-sort",
        [
          Testkit.qtest ~count:200 "sorts correctly" gen_int_array prop_sort_correct;
          Testkit.qtest ~count:200 "stable" gen_int_array prop_sort_stable;
          Testkit.qtest ~count:100 "io within textbook bound" gen_int_array
            prop_sort_io_bound;
        ] );
      ( "buffer-pool",
        [
          Alcotest.test_case "basics" `Quick test_pool_basics;
          Alcotest.test_case "zero capacity" `Quick test_pool_zero_capacity;
          Alcotest.test_case "eviction order" `Quick test_pool_eviction_order;
          Alcotest.test_case "hits counter" `Quick test_pool_hits_counter;
          Testkit.qtest ~count:300 "matches LRU model" gen_accesses
            prop_pool_matches_lru_model;
          Alcotest.test_case "dn-index integration" `Quick
            test_pool_integration_dn_index;
        ] );
      ( "spill-stack",
        [
          Testkit.qtest ~count:300 "LIFO vs model + linear io" gen_ops
            prop_spill_stack_model;
          Testkit.qtest ~count:200 "top consistent" gen_ops
            prop_spill_top_consistent;
          Alcotest.test_case "resident accounting" `Quick
            test_spill_resident_accounting;
        ] );
    ]
