(* End-to-end tests of the perf-regression gate binary: the CI bench
   step (`baseline.exe BENCH_baseline.json BENCH_results.json`) must
   pass identical runs, flag stale baselines without failing, and exit
   non-zero when a row exceeds its tolerance band. *)

let exe =
  List.find_opt Sys.file_exists
    [
      "../bench/baseline.exe";
      "_build/default/bench/baseline.exe";
      "bench/baseline.exe";
    ]
  |> Option.value ~default:"../bench/baseline.exe"

let run args =
  let out = Filename.temp_file "baseline" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let text = In_channel.with_open_text out In_channel.input_all in
  Sys.remove out;
  (code, text)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec loop i = i + n <= h && (String.sub hay i n = needle || loop (i + 1)) in
  loop 0

let check_contains text needles =
  List.iter
    (fun needle ->
      if not (contains text needle) then
        Alcotest.failf "expected output to contain %S; got:@.%s" needle text)
    needles

(* Write a telemetry file of (id, reads, writes, wall_ns) rows in the
   BENCH_results.json shape. *)
let telemetry rows =
  let path = Filename.temp_file "bench_rows" ".json" in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i (id, reads, writes, wall_ns) ->
      if i > 0 then output_string oc ",\n";
      Printf.fprintf oc
        "  {\"id\":\"%s\",\"size\":null,\"reads\":%d,\"writes\":%d,\"wall_ns\":%d,\"max_resident_pages\":0}"
        id reads writes wall_ns)
    rows;
  output_string oc "\n]\n";
  close_out oc;
  path

let base_rows =
  [ ("E1", 100, 10, 1_000_000); ("E1", 50, 5, 500_000); ("E7", 900, 0, 2_000_000) ]

let test_identical_passes () =
  let b = telemetry base_rows in
  let code, text = run [ b; b ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains text
    [
      (* E1's two rows aggregate before comparison *)
      "E1";
      "reads=150 writes=15";
      "E7";
      "all experiment ids within the baseline tolerance bands";
    ]

let test_reads_regression_fails () =
  let b = telemetry base_rows in
  (* one extra page read on E7: the io band is exact *)
  let f =
    telemetry
      [ ("E1", 100, 10, 1_000_000); ("E1", 50, 5, 500_000);
        ("E7", 901, 0, 2_000_000) ]
  in
  let code, text = run [ b; f ] in
  Alcotest.(check int) "exit 1" 1 code;
  check_contains text
    [ "E7"; "REGRESSION reads 900 -> 901 (band: exact)";
      "1 experiment id(s) regressed" ]

let test_writes_regression_fails () =
  let b = telemetry base_rows in
  let f =
    telemetry
      [ ("E1", 100, 16, 1_000_000); ("E1", 50, 5, 500_000);
        ("E7", 900, 0, 2_000_000) ]
  in
  let code, text = run [ b; f ] in
  Alcotest.(check int) "exit 1" 1 code;
  check_contains text [ "E1"; "REGRESSION writes 15 -> 21 (band: exact)" ]

let test_wall_blowup_fails () =
  let b = telemetry base_rows in
  (* wall is machine-dependent: only fails beyond the multiplier AND the
     250ms absolute slack.  500ms against a 1.5ms baseline at 2x: both. *)
  let f =
    telemetry
      [ ("E1", 100, 10, 400_000_000); ("E1", 50, 5, 100_000_000);
        ("E7", 900, 0, 2_000_000) ]
  in
  let code, text = run [ b; f; "2" ] in
  Alcotest.(check int) "exit 1" 1 code;
  check_contains text [ "E1"; "REGRESSION wall" ]

let test_wall_within_band_passes () =
  let b = telemetry base_rows in
  (* 3x slower than baseline: inside the default 50x band *)
  let f =
    telemetry
      [ ("E1", 100, 10, 3_000_000); ("E1", 50, 5, 1_500_000);
        ("E7", 900, 0, 6_000_000) ]
  in
  let code, _ = run [ b; f ] in
  Alcotest.(check int) "exit 0" 0 code

let test_io_improvement_is_stale_not_failure () =
  let b = telemetry base_rows in
  let f =
    telemetry
      [ ("E1", 80, 10, 1_000_000); ("E1", 50, 5, 500_000);
        ("E7", 900, 0, 2_000_000) ]
  in
  let code, text = run [ b; f ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains text [ "E1"; "STALE"; "refresh"; "all experiment ids within" ]

let test_new_and_skipped_ids () =
  let b = telemetry [ ("E1", 100, 10, 1_000_000); ("E9", 7, 0, 1_000) ] in
  let f = telemetry [ ("E1", 100, 10, 1_000_000); ("E2", 5, 0, 1_000) ] in
  let code, text = run [ b; f ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains text
    [ "E2"; "NEW"; "no baseline"; "E9"; "skipped"; "in baseline but not" ]

let test_unusable_input () =
  let b = telemetry base_rows in
  let code, _ = run [ b; "/nonexistent/results.json" ] in
  Alcotest.(check int) "missing file: exit 2" 2 code;
  let code, _ = run [ b ] in
  Alcotest.(check int) "usage: exit 2" 2 code;
  let code, _ = run [ b; b; "0.5" ] in
  Alcotest.(check int) "bad multiplier: exit 2" 2 code

let () =
  if not (Sys.file_exists exe) then begin
    print_endline "baseline.exe not built; skipping gate tests";
    exit 0
  end;
  Alcotest.run "baseline"
    [
      ( "gate",
        [
          Alcotest.test_case "identical run passes" `Quick test_identical_passes;
          Alcotest.test_case "reads regression fails" `Quick
            test_reads_regression_fails;
          Alcotest.test_case "writes regression fails" `Quick
            test_writes_regression_fails;
          Alcotest.test_case "wall blowup fails" `Quick test_wall_blowup_fails;
          Alcotest.test_case "wall within band passes" `Quick
            test_wall_within_band_passes;
          Alcotest.test_case "io improvement is stale" `Quick
            test_io_improvement_is_stale_not_failure;
          Alcotest.test_case "new and skipped ids" `Quick
            test_new_and_skipped_ids;
          Alcotest.test_case "unusable input" `Quick test_unusable_input;
        ] );
    ]
