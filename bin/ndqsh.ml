(* ndqsh — an interactive query shell over a network directory.

   Load one of the built-in directories (the reconstructed paper figures,
   or seeded synthetic ones), then type queries in the concrete syntax of
   Figures 7-10, or LDAP URL queries prefixed with "ldap:".  Meta
   commands start with ':'.

     dune exec bin/ndqsh.exe -- --directory qos
     dune exec bin/ndqsh.exe -- --directory random --size 5000 -e '( ? sub ? priority>=9)'
*)

open Ndq

type state = {
  mutable directory : Directory.t;
  mutable engine : Engine.t;
  mutable engine_generation : int;
  mutable block : int;
  mutable verbose : bool;
  mutable cache : Cache.t;  (* survives engine rebuilds, off by default *)
  mutable cache_on : bool;
  mutable monitor : Monitor.t option;  (* live introspection server *)
  mutable server : Srv.t option;  (* query-serving front-end *)
  mutable ticker : Runtime.ticker option;  (* GC sampler + alert ticks *)
  mutable mode : Engine.mode;  (* operator-boundary handling *)
  mutable planner : Engine.planner;  (* access-path policy *)
}

(* Runtime artifacts (journals, slowlogs) default under _build/ so they
   never land in the working tree. *)
let default_journal = "_build/ndq_journal.jsonl"

let ensure_parent path =
  let dir = Filename.dirname path in
  if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* Rebuild the engine's indexes after updates.  The result cache is
   attached to the directory's update hooks, so it survives the rebuild
   with footprint-precise invalidation instead of being dropped. *)
let engine st =
  if st.engine_generation <> Directory.generation st.directory then begin
    st.engine <-
      Engine.create ~block:st.block ~mode:st.mode ~planner:st.planner
        ?result_cache:(if st.cache_on then Some st.cache else None)
        (Directory.instance st.directory);
    (* journaled queries feed the default plan-quality store, and the
       planner reads its bias cells back: the self-tuning loop *)
    Engine.set_calibration st.engine (Some Planstats.default);
    st.engine_generation <- Directory.generation st.directory
  end;
  st.engine

(* Force the next [engine] call to rebuild (generations are >= 0). *)
let invalidate_engine st = st.engine_generation <- -1

let load_directory kind size seed =
  match kind with
  | "figure11" | "tops-fig" -> Tops.figure_11 ()
  | "figure12" | "qos-fig" -> Qos.figure_12 ()
  | "qos" ->
      Qos.generate
        ~params:{ Qos.default_gen with seed; n_policies = max 1 (size / 6) }
        ()
  | "tops" ->
      Tops.generate
        ~params:{ Tops.default_gen with seed; subscribers = max 1 (size / 13) }
        ()
  | "random" ->
      Dif_gen.generate ~params:{ Dif_gen.default_params with seed; size } ()
  | other ->
      Fmt.epr "unknown directory %S (try figure11, figure12, qos, tops, random)@." other;
      exit 2

let help () =
  Fmt.pr
    "@[<v>Queries:@,\
    \  (dc=att, dc=com ? sub ? surName=jagadish)        atomic (L0)@,\
    \  (& Q Q)  (| Q Q)  (- Q Q)                        boolean (L0)@,\
    \  (p Q Q) (c Q Q) (a Q Q) (d Q Q) (ac Q Q Q) (dc Q Q Q)   hierarchy (L1)@,\
    \  (g Q min(a) = min(min(a)))  (c Q Q count($2) > 3)       aggregates (L2)@,\
    \  (vd Q Q attr)  (dv Q Q attr [aggfilter])                references (L3)@,\
    \  ldap:///<base>?<scope>?(filter)                  LDAP baseline@,\
     Commands:@,\
    \  :schema          show the schema@,\
    \  :entry <dn>      show one entry@,\
    \  :roots           show the forest roots@,\
    \  :size            number of entries@,\
    \  :verbose         toggle printing full entries@,\
    \  :stats           show accumulated io counters@,\
    \  :stats reset     reset io counters, metrics and traces@,\
    \  :reset           reset io counters@,\
    \  :metrics [json]  show the metrics registry (text or JSON lines)@,\
    \  :trace on|off    toggle span tracing of queries@,\
    \  :trace last      show the span tree of the last traced query@,\
    \  :journal on|off|<path>   journal every query as JSON lines@,\
    \                   (on = _build/ndq_journal.jsonl)@,\
    \  :slowlog [n]     show the n slowest captured queries@,\
    \  :slowlog threshold <ms>  set the slow-query capture threshold@,\
    \  :replay <path>   re-run a journal, diffing result counts and io@,\
    \                   (ends with an estimate-accuracy summary)@,\
    \  :planstats       q-error summary of the plan-quality store@,\
    \  :planstats build <journal>   rebuild the store from a journal@,\
    \  :planstats save|load <path>  persist / merge calibration cells@,\
    \  :planstats baseline <path>   load a drift-detection baseline@,\
    \  :planstats drift show drift notes;  :planstats clear  reset@,\
    \  :workload [n]    top plans by total wall time@,\
    \  :cache on|off    toggle the semantic query-result cache@,\
    \  :cache stats     hit/miss/stale counters and residency@,\
    \  :cache clear     drop every cached result@,\
    \  :cache budget <pages>    set the cache's page budget@,\
    \  :cache threshold <io>    min evaluation io to admit a result@,\
    \  :monitor <port>  serve /metrics /healthz /slowlog /trace@,\
    \                   /planstats /workload /cache /alerts /tail@,\
    \                   /range /dashboard (live flight-recorder page)@,\
    \                   (also starts the runtime + tsdb samplers)@,\
    \  :monitor off     stop the introspection server@,\
    \  :serve <port> [workers <n>] [queue <n>]   start the query-serving@,\
    \                   front-end: HTTP /query + line protocol, worker@,\
    \                   pool, bounded admission queue (0 = free port)@,\
    \  :serve off       stop the serving front-end@,\
    \  :alerts          rule states (pending/firing) and last values@,\
    \  :alerts rules    the installed rule expressions@,\
    \  :alerts history [n]      recent state transitions@,\
    \  :alerts silence <name> [off]   mute/unmute an alert's export@,\
    \  :alerts tick     sample gauges + evaluate rules once, by hand@,\
    \  :tail            tail-sampled traces (slow/errored/shed/deadline@,\
    \                   always kept, plus a seeded 1-in-N baseline)@,\
    \  :tail threshold <ms> | sample <n> | budget <spans> | clear@,\
    \  :tsdb            flight-recorder status (windows, series held)@,\
    \  :tsdb save <path>        write the recorded windows (JSON lines)@,\
    \  :tsdb on|off     start/stop the tsdb sampler by hand@,\
    \  :top [n]         live metrics view (n one-second refreshes;@,\
    \                   sparklines when the flight recorder has data)@,\
    \  :mode streaming|materialized   operator-boundary handling@,\
    \                   (streaming pipelines the whole tree; default)@,\
    \  :planner auto|off|force index|force scan   access-path policy@,\
    \                   (auto = cost-based + calibrated; default)@,\
    \  :planner paths   how many atomics each path served@,\
    \  :explain <query> estimated vs measured plan (est io split into@,\
    \                   reads+writes, with the writes streaming saves)@,\
    \  :add <ldif>      add one entry (dn: ...; attr: value; ...)@,\
    \  :delete <dn>     delete a leaf entry ( :deltree for subtrees )@,\
    \  :set <dn> ; <attr> <value>   add an attribute value@,\
    \  :save <file>     write the directory as LDIF@,\
    \  :load <file>     replace the directory from LDIF@,\
    \  :help            this text@,\
    \  :quit            leave@]@."

let show_result st entries =
  Fmt.pr "%d entries@." (List.length entries);
  List.iter
    (fun e ->
      if st.verbose then Fmt.pr "%a@.@." Entry.pp e
      else Fmt.pr "  %a@." Dn.pp (Entry.dn e))
    entries;
  Fmt.pr "io: %a@." Io_stats.pp (Engine.stats (engine st))

let parse_dn st text =
  Dn.of_string_with
    ~lookup:(Schema.attr_type (Directory.schema st.directory))
    (String.trim text)

let run_query st line =
  let eng = engine st in
  let schema = Directory.schema st.directory in
  try
    (* One root span per shell query: parse and execute become children,
       so :trace last shows the full pipeline. *)
    Trace.with_span ~detail:line ~stats:(Engine.stats eng) "query" (fun () ->
        if String.length line >= 5 && String.sub line 0 5 = "ldap:" then begin
          let q =
            Trace.with_span ~detail:line "parse" (fun () ->
                Ldap.of_string ~schema line)
          in
          (* evaluate via the L0 translation so the same engine serves it *)
          let entries = Engine.eval_entries eng (Ldap.to_l0 q) in
          show_result st entries
        end
        else begin
          let q =
            Trace.with_span ~detail:line "parse" (fun () ->
                Qparser.of_string ~schema line)
          in
          (match Lang.check q with
          | Ok () -> ()
          | Error errs ->
              List.iter (fun e -> Fmt.pr "warning: %a@." Lang.pp_error e) errs);
          Fmt.pr "[%s] " (Lang.level_to_string (Lang.level q));
          let entries = Engine.eval_entries eng q in
          show_result st entries
        end)
  with
  | Qparser.Parse_error m -> Fmt.pr "parse error: %s@." m
  | Ldap.Parse_error m -> Fmt.pr "ldap parse error: %s@." m
  | Afilter.Parse_error m -> Fmt.pr "filter parse error: %s@." m
  | Dn.Parse_error m -> Fmt.pr "dn parse error: %s@." m

let report_update st = function
  | Ok () -> Fmt.pr "ok (%d entries)@." (Directory.size st.directory)
  | Error e -> Fmt.pr "rejected: %a@." Directory.pp_error e

(* Re-execute a recorded journal against the current build and diff
   what changed: result counts (a correctness regression) and I/O cost
   (a performance shift).  Journaled failures are skipped; queries that
   no longer parse or now fail are reported as errors. *)
let replay st path =
  match Qlog.load path with
  | exception Sys_error m -> Fmt.pr "%s@." m
  | exception Json.Parse_error m -> Fmt.pr "bad journal %s: %s@." path m
  | events ->
      let eng = engine st in
      let schema = Directory.schema st.directory in
      let stats = Engine.stats eng in
      (* Don't journal the replay itself (least surprise, and replaying
         a journal into itself would never terminate the diff). *)
      let journal_was = Qlog.path () in
      Qlog.disable ();
      Fun.protect
        ~finally:(fun () ->
          match journal_was with Some p -> Qlog.enable p | None -> ())
        (fun () ->
          let total = ref 0
          and count_diffs = ref 0
          and io_diffs = ref 0
          and errors = ref 0 in
          List.iter
            (fun (ev : Qlog.event) ->
              match ev.Qlog.outcome with
              | Qlog.Failed _ -> ()
              | Qlog.Ok -> (
                  incr total;
                  let reads0 = stats.Io_stats.page_reads
                  and writes0 = stats.Io_stats.page_writes in
                  match
                    Engine.eval eng (Qparser.of_string ~schema ev.Qlog.query)
                  with
                  | exception e ->
                      incr errors;
                      Fmt.pr "#%d now fails (%s): %s@." ev.Qlog.seq
                        (Printexc.to_string e) ev.Qlog.query
                  | out ->
                      let n = Ext_list.length out in
                      let reads = stats.Io_stats.page_reads - reads0
                      and writes = stats.Io_stats.page_writes - writes0 in
                      if n <> ev.Qlog.result_count then begin
                        incr count_diffs;
                        Fmt.pr "#%d result count %d -> %d: %s@." ev.Qlog.seq
                          ev.Qlog.result_count n ev.Qlog.query
                      end;
                      if reads <> ev.Qlog.reads || writes <> ev.Qlog.writes
                      then begin
                        incr io_diffs;
                        Fmt.pr "#%d io %d+%d -> %d+%d: %s@." ev.Qlog.seq
                          ev.Qlog.reads ev.Qlog.writes reads writes
                          ev.Qlog.query
                      end))
            events;
          Fmt.pr
            "replayed %d queries from %s: %d result-count diffs, %d io \
             diffs, %d errors@."
            !total path !count_diffs !io_diffs !errors;
          (* How good were the planner's estimates when the journal was
             recorded?  Folded from the journal itself, not the re-run,
             so the summary describes the recorded workload. *)
          let ps = Planstats.of_events events in
          if Planstats.events ps > 0 then begin
            Fmt.pr "estimate accuracy (recorded estimates vs actuals):@.";
            Fmt.pr "%a" Planstats.pp_summary ps
          end)

(* Per-route totals of the serving front-end's request counter, summed
   over the status label, for the :top dashboard. *)
let srv_route_totals () =
  match
    List.find_opt
      (fun f -> f.Metrics.fv_name = "srv_requests_total")
      (Metrics.export Metrics.default)
  with
  | None -> []
  | Some f ->
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun (labels, v) ->
          let route =
            Option.value ~default:"?" (List.assoc_opt "route" labels)
          in
          let n = match v with Metrics.V_counter c -> c | _ -> 0 in
          Hashtbl.replace tbl route
            (n + Option.value ~default:0 (Hashtbl.find_opt tbl route)))
        f.Metrics.fv_series;
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* A unicode sparkline over the flight recorder's trailing minute —
   the :top counterpart of the dashboard's SVG panels.  Empty when the
   tsdb sampler has recorded nothing for the metric, so :top looks
   unchanged until :monitor or :serve starts the sampler. *)
let spark ?(scale = 1.) ?(unit = "") name agg =
  let pts = Tsdb.range Tsdb.default ~window_s:60. ~step_s:2. ~agg name in
  let vals = List.filter_map snd pts in
  if vals = [] then ""
  else begin
    let lo = List.fold_left Float.min infinity vals
    and hi = List.fold_left Float.max neg_infinity vals in
    let glyphs = [| "\u{2581}"; "\u{2582}"; "\u{2583}"; "\u{2584}";
                    "\u{2585}"; "\u{2586}"; "\u{2587}"; "\u{2588}" |]
    in
    let buf = Buffer.create 64 in
    List.iter
      (fun (_, v) ->
        match v with
        | None -> Buffer.add_char buf ' '
        | Some v ->
            let t =
              if hi -. lo < 1e-12 then 0.5 else (v -. lo) /. (hi -. lo)
            in
            Buffer.add_string buf glyphs.(min 7 (int_of_float (t *. 8.))))
      pts;
    Printf.sprintf "  %s hi=%.3g%s" (Buffer.contents buf) (hi /. scale) unit
  end

(* The :top live view: a compact dashboard over the default registry
   (the same numbers /metrics exposes), refreshed in place. *)
let show_top st frames =
  let prev_routes = ref (srv_route_totals ()) in
  let frame i =
    if frames > 1 then Fmt.pr "\027[2J\027[H";
    let queries =
      Metrics.counter_value (Metrics.counter "engine_queries_total")
      + Metrics.counter_value (Metrics.counter "dist_queries_total")
    in
    let lat = Metrics.histogram "engine_query_ns" in
    let reads = Metrics.counter_value (Metrics.counter "engine_page_reads_total")
    and writes =
      Metrics.counter_value (Metrics.counter "engine_page_writes_total")
    in
    Fmt.pr "ndq top  (frame %d/%d)@." (i + 1) frames;
    Fmt.pr "  queries   %d total@." queries;
    Fmt.pr "  latency   n=%d  p50=%a  p99=%a%s@."
      (Metrics.histogram_count lat)
      Mclock.pp_ns
      (int_of_float (Metrics.quantile lat 0.5))
      Mclock.pp_ns
      (int_of_float (Metrics.quantile lat 0.99))
      (spark ~scale:1e6 ~unit:"ms" "engine_query_ns" (Tsdb.Quantile 0.99));
    Fmt.pr "  io        reads=%d writes=%d%s@." reads writes
      (spark ~unit:"/s" "engine_page_reads_total" Tsdb.Rate);
    (let pi, ps, pc = Engine.path_counts st.engine in
     Fmt.pr "  planner   %s  paths: index=%d scan=%d cache=%d@."
       (match st.planner with
       | Engine.Auto -> "auto"
       | Engine.Off -> "off"
       | Engine.Force_index -> "force index"
       | Engine.Force_scan -> "force scan")
       pi ps pc);
    Fmt.pr "  cache     %s  %a@."
      (if st.cache_on then "on" else "off")
      Cache.pp st.cache;
    Fmt.pr "  slowlog   %d captures (threshold %a)@."
      (List.length (Qlog.slowest 64))
      Mclock.pp_ns (Qlog.threshold_ns ());
    Fmt.pr "  journal   %s@."
      (match Qlog.path () with Some p -> p | None -> "off");
    Fmt.pr "  monitor   %s@."
      (match st.monitor with
      | Some m -> Printf.sprintf "http://127.0.0.1:%d/" (Monitor.port m)
      | None -> "off");
    (match st.server with
    | None -> Fmt.pr "  serving   off@."
    | Some srv ->
        Fmt.pr "  serving   port=%d workers=%d queue=%d/%d sessions=%d shed=%d%s@."
          (Srv.port srv) (Srv.workers srv) (Srv.queue_depth srv)
          (Srv.queue_capacity srv) (Srv.session_count srv)
          (Metrics.counter_value (Metrics.counter "srv_shed_total"))
          (spark ~scale:1e6 ~unit:"ms" "srv_request_ns" (Tsdb.Quantile 0.99));
        let now = srv_route_totals () in
        List.iter
          (fun (route, n) ->
            let before =
              Option.value ~default:0 (List.assoc_opt route !prev_routes)
            in
            if i > 0 then
              Fmt.pr "    route %-9s %6d total  %4d req/s@." route n
                (max 0 (n - before))
            else Fmt.pr "    route %-9s %6d total@." route n)
          now;
        prev_routes := now)
  in
  for i = 0 to frames - 1 do
    if i > 0 then Unix.sleepf 1.0;
    frame i
  done

(* The flight recorder samples whenever something live feeds on it —
   the monitor (/range, /dashboard, the windowed alert rules) or the
   serving front-end.  When the last consumer stops, so does the
   sampler thread; ndqsh exits with no thread left behind. *)
let sync_tsdb st =
  if st.monitor <> None || st.server <> None then Tsdb.start Tsdb.default
  else if Tsdb.running Tsdb.default then Tsdb.stop Tsdb.default

let stop_monitor st =
  Option.iter Runtime.stop st.ticker;
  st.ticker <- None;
  let stopped =
    match st.monitor with
    | None -> false
    | Some m ->
        Monitor.stop m;
        st.monitor <- None;
        true
  in
  sync_tsdb st;
  stopped

let start_monitor st port =
  ignore (stop_monitor st);
  match Monitor.start ~port () with
  | m ->
      (* /cache lives above lib/obs, so the shell registers it. *)
      Monitor.add_handler m "cache" (fun path ->
          if path = "/cache" then
            Some
              (Monitor.respond ~content_type:"application/json"
                 (Json.to_string (Cache.stats_json st.cache)))
          else None);
      st.monitor <- Some m;
      (* While the monitor serves, a sampler thread keeps the runtime
         gauges fresh and ticks the alert evaluator once a second. *)
      st.ticker <-
        Some
          (Runtime.start ~period:1.0
             ~on_tick:(fun () -> Alerts.tick Alerts.default)
             ());
      sync_tsdb st;
      Fmt.pr "monitoring on http://127.0.0.1:%d/ (:monitor off to stop)@."
        (Monitor.port m)
  | exception Unix.Unix_error (e, _, _) ->
      Fmt.pr "cannot listen on port %d: %s@." port (Unix.error_message e)

let stop_server st =
  let stopped =
    match st.server with
    | None -> false
    | Some s ->
        Srv.stop s;
        st.server <- None;
        true
  in
  sync_tsdb st;
  stopped

(* The serving workers each build their own engine over the directory's
   instance at start time — updates made at the shell afterwards are
   not visible to them until :serve is restarted (the instance itself
   is immutable, so concurrent serving needs no locks). *)
let start_server st ~port ~workers ~queue =
  ignore (stop_server st);
  let instance = Directory.instance st.directory in
  let block = st.block and mode = st.mode in
  match
    Srv.start ~workers ~queue ~port
      ~make_engine:(fun () -> Engine.create ~block ~mode instance)
      ()
  with
  | s ->
      st.server <- Some s;
      sync_tsdb st;
      Fmt.pr
        "serving on 127.0.0.1:%d (%d workers, queue %d; HTTP /query + line \
         protocol; :serve off to stop)@."
        (Srv.port s) workers queue
  | exception Unix.Unix_error (e, _, _) ->
      Fmt.pr "cannot listen on port %d: %s@." port (Unix.error_message e)

(* [workers <n>] [queue <n>] in either order after :serve <port>. *)
let rec parse_serve_opts ~workers ~queue = function
  | [] -> Some (workers, queue)
  | "workers" :: n :: rest -> (
      match int_of_string_opt n with
      | Some w when w > 0 -> parse_serve_opts ~workers:w ~queue rest
      | _ -> None)
  | "queue" :: n :: rest -> (
      match int_of_string_opt n with
      | Some q when q > 0 -> parse_serve_opts ~workers ~queue:q rest
      | _ -> None)
  | _ -> None

let run_command st line =
  let instance = Directory.instance st.directory in
  match String.split_on_char ' ' line with
  | ":help" :: _ -> help ()
  | ":schema" :: _ -> Fmt.pr "%a@." Schema.pp (Instance.schema instance)
  | ":size" :: _ -> Fmt.pr "%d entries@." (Instance.size instance)
  | ":roots" :: _ ->
      List.iter (fun e -> Fmt.pr "  %a@." Dn.pp (Entry.dn e)) (Instance.roots instance)
  | ":verbose" :: _ ->
      st.verbose <- not st.verbose;
      Fmt.pr "verbose = %b@." st.verbose
  | ":stats" :: "reset" :: _ ->
      Engine.reset_stats (engine st);
      Metrics.reset Metrics.default;
      Trace.clear ();
      Fmt.pr "io counters, metrics and traces reset@."
  | ":stats" :: _ -> Fmt.pr "%a@." Io_stats.pp (Engine.stats (engine st))
  | ":reset" :: _ ->
      Engine.reset_stats (engine st);
      Fmt.pr "counters reset@."
  | ":metrics" :: "json" :: _ -> print_string (Metrics.to_json_lines Metrics.default)
  | ":metrics" :: _ -> Fmt.pr "%a" Metrics.pp Metrics.default
  | ":trace" :: "on" :: _ ->
      Trace.set_enabled true;
      Fmt.pr "tracing on@."
  | ":trace" :: "off" :: _ ->
      Trace.set_enabled false;
      Fmt.pr "tracing off@."
  | ":trace" :: "last" :: _ -> (
      match Trace.last () with
      | Some span -> Fmt.pr "%a@." Trace.pp_span span
      | None -> Fmt.pr "no trace recorded (try :trace on, then a query)@.")
  | ":trace" :: _ ->
      Fmt.pr "tracing is %s (usage: :trace on|off|last)@."
        (if Trace.enabled () then "on" else "off")
  | ":journal" :: "on" :: _ ->
      ensure_parent default_journal;
      Qlog.enable default_journal;
      Fmt.pr "journaling to %s@." default_journal
  | ":journal" :: "off" :: _ ->
      Qlog.disable ();
      Fmt.pr "journal off@."
  | ":journal" :: path :: _ when path <> "" ->
      ensure_parent path;
      Qlog.enable path;
      Fmt.pr "journaling to %s@." path
  | ":journal" :: _ -> (
      match Qlog.path () with
      | Some p -> Fmt.pr "journaling to %s (usage: :journal on|off|<path>)@." p
      | None -> Fmt.pr "journal is off (usage: :journal on|off|<path>)@.")
  | ":slowlog" :: "threshold" :: ms :: _ -> (
      match int_of_string_opt ms with
      | Some v when v >= 0 ->
          Qlog.set_threshold_ns (v * 1_000_000);
          Fmt.pr "slow-query threshold = %dms@." v
      | _ -> Fmt.pr "usage: :slowlog threshold <milliseconds>@.")
  | ":slowlog" :: rest -> (
      let n =
        match rest with
        | s :: _ -> Option.value ~default:10 (int_of_string_opt s)
        | [] -> 10
      in
      match Qlog.slowest n with
      | [] ->
          Fmt.pr
            "no slow-query captures (threshold %a; enable the journal with \
             :journal on)@."
            Mclock.pp_ns (Qlog.threshold_ns ())
      | events ->
          let indented text =
            List.iter
              (fun l -> if l <> "" then Fmt.pr "    %s@." l)
              (String.split_on_char '\n' text)
          in
          List.iter
            (fun (ev : Qlog.event) ->
              Fmt.pr "%a@." Qlog.pp_event ev;
              match ev.Qlog.capture with
              | None -> ()
              | Some c ->
                  if c.Qlog.span_text <> "" then begin
                    Fmt.pr "  spans:@.";
                    indented c.Qlog.span_text
                  end;
                  if c.Qlog.plan_text <> "" then begin
                    Fmt.pr "  plan:@.";
                    indented c.Qlog.plan_text
                  end)
            events)
  | ":replay" :: path :: _ -> replay st path
  | ":planstats" :: "build" :: path :: _ -> (
      let ps = Planstats.default in
      Planstats.clear ps;
      match Planstats.build ps path with
      | n -> Fmt.pr "rebuilt from %d events of %s@." n path
      | exception Sys_error m -> Fmt.pr "%s@." m
      | exception Json.Parse_error m -> Fmt.pr "bad journal %s: %s@." path m)
  | ":planstats" :: "save" :: path :: _ -> (
      match Planstats.save Planstats.default path with
      | n -> Fmt.pr "wrote %d calibration cells to %s@." n path
      | exception Sys_error m -> Fmt.pr "%s@." m)
  | ":planstats" :: "load" :: path :: _ -> (
      match Planstats.load path with
      | loaded ->
          Planstats.merge ~into:Planstats.default loaded;
          Fmt.pr "merged calibration from %s@." path
      | exception Sys_error m -> Fmt.pr "%s@." m
      | exception Json.Parse_error m ->
          Fmt.pr "bad calibration %s: %s@." path m)
  | ":planstats" :: "baseline" :: path :: _ -> (
      match Planstats.load path with
      | b ->
          Planstats.set_baseline Planstats.default b;
          Fmt.pr "drift baseline loaded from %s@." path
      | exception Sys_error m -> Fmt.pr "%s@." m
      | exception Json.Parse_error m ->
          Fmt.pr "bad calibration %s: %s@." path m)
  | ":planstats" :: "drift" :: _ ->
      Fmt.pr "%a" Planstats.pp_drift Planstats.default
  | ":planstats" :: "clear" :: _ ->
      Planstats.clear Planstats.default;
      Fmt.pr "plan-quality store cleared@."
  | ":planstats" :: _ ->
      if Planstats.events Planstats.default = 0 then
        Fmt.pr
          "no plan-quality observations (run journaled queries, or \
           :planstats build <journal>)@."
      else Fmt.pr "%a" Planstats.pp_summary Planstats.default
  | ":workload" :: rest ->
      let top =
        match rest with
        | s :: _ -> max 1 (Option.value ~default:20 (int_of_string_opt s))
        | [] -> 20
      in
      if Planstats.events Planstats.default = 0 then
        Fmt.pr "no workload observations (run journaled queries first)@."
      else Fmt.pr "%a" (Planstats.pp_workload ~top) Planstats.default
  | ":cache" :: "on" :: _ ->
      st.cache_on <- true;
      invalidate_engine st;
      Fmt.pr "result cache on (budget %d pages, admission io>=%d)@."
        (Cache.budget_pages st.cache)
        (Cache.admit_min_io st.cache)
  | ":cache" :: "off" :: _ ->
      st.cache_on <- false;
      invalidate_engine st;
      Fmt.pr "result cache off (entries kept; :cache clear to drop)@."
  | ":cache" :: "stats" :: _ ->
      Fmt.pr "@[<v>result cache %s@,%a@]@."
        (if st.cache_on then "on" else "off")
        Cache.pp st.cache
  | ":cache" :: "clear" :: _ ->
      Cache.clear st.cache;
      Fmt.pr "result cache cleared@."
  | ":cache" :: "budget" :: n :: _ -> (
      match int_of_string_opt n with
      | Some v when v >= 0 ->
          Cache.set_budget_pages st.cache v;
          Fmt.pr "result-cache budget = %d pages@." v
      | _ -> Fmt.pr "usage: :cache budget <pages>@.")
  | ":cache" :: "threshold" :: n :: _ -> (
      match int_of_string_opt n with
      | Some v ->
          Cache.set_admit_min_io st.cache v;
          Fmt.pr "result-cache admission threshold = io>=%d@." v
      | _ -> Fmt.pr "usage: :cache threshold <io>@.")
  | ":cache" :: _ ->
      Fmt.pr
        "result cache is %s (usage: :cache \
         on|off|stats|clear|budget <pages>|threshold <io>)@."
        (if st.cache_on then "on" else "off")
  | ":monitor" :: "off" :: _ ->
      if stop_monitor st then Fmt.pr "monitor stopped@."
      else Fmt.pr "monitor is not running@."
  | ":monitor" :: port :: _ when int_of_string_opt port <> None ->
      start_monitor st (Option.get (int_of_string_opt port))
  | ":monitor" :: _ ->
      Fmt.pr "monitor is %s (usage: :monitor <port>|off)@."
        (match st.monitor with
        | Some m -> Printf.sprintf "on http://127.0.0.1:%d/" (Monitor.port m)
        | None -> "off")
  | ":serve" :: "off" :: _ ->
      if stop_server st then Fmt.pr "serving stopped@."
      else Fmt.pr "serving is not running@."
  | ":serve" :: port :: rest when int_of_string_opt port <> None -> (
      match parse_serve_opts ~workers:4 ~queue:64 rest with
      | Some (workers, queue) ->
          start_server st
            ~port:(Option.get (int_of_string_opt port))
            ~workers ~queue
      | None -> Fmt.pr "usage: :serve <port> [workers <n>] [queue <n>]@.")
  | ":serve" :: _ ->
      Fmt.pr "serving is %s (usage: :serve <port> [workers <n>] [queue <n>]|off)@."
        (match st.server with
        | Some s ->
            Printf.sprintf "on 127.0.0.1:%d (%d workers, queue %d/%d)"
              (Srv.port s) (Srv.workers s) (Srv.queue_depth s)
              (Srv.queue_capacity s)
        | None -> "off")
  | ":alerts" :: "rules" :: _ ->
      let a = Alerts.default in
      (match Alerts.rules a with
      | [] -> Fmt.pr "no alert rules installed@."
      | rules ->
          List.iter
            (fun (r : Alerts.rule) ->
              Fmt.pr "%s [%s]: %s@." r.Alerts.name r.Alerts.severity
                r.Alerts.text)
            rules)
  | ":alerts" :: "history" :: rest ->
      let a = Alerts.default in
      let n =
        match rest with
        | s :: _ -> max 1 (Option.value ~default:20 (int_of_string_opt s))
        | [] -> 20
      in
      (match Alerts.history a with
      | [] -> Fmt.pr "no alert transitions yet@."
      | trs ->
          List.iteri
            (fun i tr -> if i < n then Fmt.pr "%a@." Alerts.pp_transition tr)
            trs)
  | ":alerts" :: "silence" :: name :: rest ->
      let a = Alerts.default in
      let on =
        match rest with "off" :: _ -> false | _ -> not (Alerts.is_silenced a name)
      in
      if Alerts.silence a name on then
        Fmt.pr "%s %s@." name (if on then "silenced" else "unsilenced")
      else Fmt.pr "no alert rule named %s@." name
  | ":alerts" :: "tick" :: _ ->
      Runtime.sample ();
      Alerts.tick Alerts.default;
      Fmt.pr "tick %d: %d firing@."
        (Alerts.ticks Alerts.default)
        (List.length (Alerts.firing Alerts.default))
  | ":alerts" :: _ ->
      let a = Alerts.default in
      (match Alerts.rules a with
      | [] ->
          Fmt.pr
            "no alert rules installed (usage: :alerts \
             [list|rules|history [n]|silence <name> [off]|tick])@."
      | rules ->
          Fmt.pr "@[<v>tick %d, %d firing@," (Alerts.ticks a)
            (List.length (Alerts.firing a));
          List.iter (fun r -> Fmt.pr "%a@," (Alerts.pp_rule a) r) rules;
          Fmt.pr "@]")
  | ":tail" :: "threshold" :: v :: _ -> (
      match float_of_string_opt v with
      | Some ms when ms >= 0. ->
          Tail.set_slow_threshold_ns (int_of_float (ms *. 1e6));
          Fmt.pr "tail slow threshold = %gms@." ms
      | _ -> Fmt.pr "usage: :tail threshold <ms>@.")
  | ":tail" :: "sample" :: v :: _ -> (
      match int_of_string_opt v with
      | Some n when n >= 0 ->
          Tail.set_sample_every n;
          Fmt.pr "tail baseline sample = %s@."
            (if n = 0 then "off" else Printf.sprintf "1-in-%d" n)
      | _ -> Fmt.pr "usage: :tail sample <n>   (0 disables the baseline)@.")
  | ":tail" :: "budget" :: v :: _ -> (
      match int_of_string_opt v with
      | Some n when n > 0 ->
          Tail.set_budget_spans n;
          Fmt.pr "tail budget = %d spans@." n
      | _ -> Fmt.pr "usage: :tail budget <spans>@.")
  | ":tail" :: "clear" :: _ ->
      Tail.clear ();
      Fmt.pr "tail store cleared@."
  | ":tail" :: _ ->
      let rs = Tail.retained () in
      Fmt.pr "tail: %d traces, %d/%d spans; slow>%a, baseline %s@."
        (List.length rs) (Tail.retained_spans ()) (Tail.budget_spans ())
        Mclock.pp_ns (Tail.slow_threshold_ns ())
        (match Tail.sample_every () with
        | 0 -> "off"
        | n -> Printf.sprintf "1-in-%d" n);
      List.iteri
        (fun i r ->
          if i < 10 then
            Fmt.pr "  %-18s %-8s %-6s %a  %d spans@." r.Tail.r_trace_id
              (Tail.reason_to_string r.Tail.r_reason)
              r.Tail.r_origin Mclock.pp_ns r.Tail.r_wall_ns
              (Trace.span_count r.Tail.r_span))
        rs;
      if List.length rs > 10 then
        Fmt.pr "  ... %d more (/tail shows them all)@." (List.length rs - 10)
  | ":tsdb" :: "save" :: path :: _ ->
      ensure_parent path;
      Tsdb.save Tsdb.default path;
      Fmt.pr "wrote %d windows to %s@." (Tsdb.window_count Tsdb.default) path
  | ":tsdb" :: "on" :: _ ->
      Tsdb.start Tsdb.default;
      Fmt.pr "tsdb sampler on (%.3gs resolution)@."
        (Tsdb.resolution_s Tsdb.default)
  | ":tsdb" :: "off" :: _ ->
      Tsdb.stop Tsdb.default;
      Fmt.pr "tsdb sampler off@."
  | ":tsdb" :: _ ->
      let t = Tsdb.default in
      let series = Tsdb.series t in
      Fmt.pr "tsdb: sampler %s, %d/%d windows at %.3gs resolution, %d series@."
        (if Tsdb.running t then "running" else "stopped")
        (Tsdb.window_count t) (Tsdb.capacity t) (Tsdb.resolution_s t)
        (List.length series);
      List.iter (fun (n, k) -> Fmt.pr "  %-40s %s@." n k) series
  | ":top" :: rest ->
      let frames =
        match rest with
        | s :: _ -> max 1 (Option.value ~default:1 (int_of_string_opt s))
        | [] -> 1
      in
      show_top st frames
  | ":entry" :: rest -> (
      let dn_text = String.concat " " rest in
      match Instance.find instance (parse_dn st dn_text) with
      | Some e -> Fmt.pr "%a@." Entry.pp e
      | None -> Fmt.pr "no entry %s@." (String.trim dn_text)
      | exception Dn.Parse_error m -> Fmt.pr "bad dn: %s@." m)
  | ":mode" :: "streaming" :: _ ->
      st.mode <- Engine.Streaming;
      Engine.set_mode (engine st) Engine.Streaming;
      Fmt.pr "mode = streaming (operator boundaries pipeline)@."
  | ":mode" :: "materialized" :: _ ->
      st.mode <- Engine.Materialized;
      Engine.set_mode (engine st) Engine.Materialized;
      Fmt.pr "mode = materialized (every intermediate result is written)@."
  | ":mode" :: _ ->
      Fmt.pr "mode is %s (usage: :mode streaming|materialized)@."
        (match st.mode with
        | Engine.Streaming -> "streaming"
        | Engine.Materialized -> "materialized")
  | ":planner" :: rest -> (
      let set p name note =
        st.planner <- p;
        Engine.set_planner (engine st) p;
        Fmt.pr "planner = %s (%s)@." name note
      in
      match rest with
      | "auto" :: _ ->
          set Engine.Auto "auto"
            "cost-based: cheapest of index/scan/cache per atomic, calibrated, \
             boolean chains reordered"
      | "off" :: _ ->
          set Engine.Off "off" "legacy: index whenever one applies, no reorder"
      | "force" :: "index" :: _ | "index" :: _ ->
          set Engine.Force_index "force index" "every sub atomic probes the index"
      | "force" :: "scan" :: _ | "scan" :: _ ->
          set Engine.Force_scan "force scan" "every sub atomic scans the subtree"
      | "paths" :: _ ->
          let i, s, c = Engine.path_counts (engine st) in
          Fmt.pr "paths taken: index=%d scan=%d cache=%d@." i s c
      | _ ->
          let i, s, c = Engine.path_counts (engine st) in
          Fmt.pr
            "planner is %s (paths: index=%d scan=%d cache=%d)@,\
             usage: :planner auto|off|force index|force scan|paths@."
            (match st.planner with
            | Engine.Auto -> "auto"
            | Engine.Off -> "off"
            | Engine.Force_index -> "force index"
            | Engine.Force_scan -> "force scan")
            i s c)
  | ":explain" :: rest -> (
      let text = String.trim (String.concat " " rest) in
      match Qparser.of_string ~schema:(Instance.schema instance) text with
      | q ->
          let _, plan = Explain.profile ~mode:st.mode (engine st) q in
          Fmt.pr "%a@." Explain.pp_node plan;
          Fmt.pr "est writes saved by streaming: %d pages (mode: %s)@."
            (Explain.total_est_writes_saved plan)
            (match st.mode with
            | Engine.Streaming -> "streaming"
            | Engine.Materialized -> "materialized")
      | exception Qparser.Parse_error m -> Fmt.pr "parse error: %s@." m)
  | ":add" :: rest -> (
      (* one-line LDIF record with ';' as the line separator:
         :add dn: id=9, dc=x ; id: 9 ; objectClass: person *)
      let text =
        String.concat "
"
          (List.map String.trim
             (String.split_on_char ';' (String.concat " " rest)))
      in
      match Ldif.of_string ~schema:(Instance.schema instance) text with
      | added ->
          List.iter
            (fun e ->
              report_update st
                (Directory.add ~as_root:(Dn.depth (Entry.dn e) = 1) st.directory e))
            (Instance.to_list added)
      | exception Ldif.Parse_error m -> Fmt.pr "ldif error: %s@." m
      | exception Instance.Invalid v ->
          Fmt.pr "invalid: %a@." Instance.pp_violation v)
  | ":delete" :: rest -> (
      match parse_dn st (String.concat " " rest) with
      | dn -> report_update st (Directory.delete st.directory dn)
      | exception Dn.Parse_error m -> Fmt.pr "bad dn: %s@." m)
  | ":deltree" :: rest -> (
      match parse_dn st (String.concat " " rest) with
      | dn -> report_update st (Directory.delete ~subtree:true st.directory dn)
      | exception Dn.Parse_error m -> Fmt.pr "bad dn: %s@." m)
  | ":set" :: rest -> (
      match String.split_on_char ';' (String.concat " " rest) with
      | [ dn_text; assignment ] -> (
          match
            ( parse_dn st dn_text,
              String.split_on_char ' ' (String.trim assignment)
              |> List.filter (fun s -> s <> "") )
          with
          | dn, [ attr; value ] ->
              let v =
                match Schema.attr_type (Instance.schema instance) attr with
                | Some Value.T_int -> Value.Int (int_of_string value)
                | Some Value.T_dn -> Value.Dn (parse_dn st value)
                | Some Value.T_string | None -> Value.Str value
              in
              report_update st
                (Directory.modify st.directory dn [ Directory.Add_value (attr, v) ])
          | _, _ -> Fmt.pr "usage: :set <dn> ; <attr> <value>@."
          | exception Dn.Parse_error m -> Fmt.pr "bad dn: %s@." m
          | exception Failure _ -> Fmt.pr "bad int value@.")
      | _ -> Fmt.pr "usage: :set <dn> ; <attr> <value>@.")
  | ":save" :: path :: _ ->
      Ldif.save path instance;
      Fmt.pr "wrote %d entries to %s@." (Instance.size instance) path
  | ":load" :: path :: _ -> (
      match Ldif.load path with
      | loaded ->
          st.directory <- Directory.create loaded;
          (* fresh directory, fresh hooks: re-home the cache (settings
             survive, stale entries don't) *)
          st.cache <-
            Cache.create
              ~budget_pages:(Cache.budget_pages st.cache)
              ~admit_min_io:(Cache.admit_min_io st.cache)
              ();
          Cache.attach st.cache st.directory;
          invalidate_engine st;
          Fmt.pr "loaded %d entries@." (Instance.size loaded)
      | exception Ldif.Parse_error m -> Fmt.pr "ldif error: %s@." m
      | exception Sys_error m -> Fmt.pr "%s@." m
      | exception Instance.Invalid v ->
          Fmt.pr "invalid: %a@." Instance.pp_violation v)
  | cmd :: _ -> Fmt.pr "unknown command %s (:help for help)@." cmd
  | [] -> ()

let repl st =
  help ();
  let rec loop () =
    Fmt.pr "ndq> %!";
    match In_channel.input_line stdin with
    | None -> ()
    | Some line -> (
        let line = String.trim line in
        match line with
        | "" -> loop ()
        | ":quit" | ":q" -> ()
        | _ ->
            if line.[0] = ':' then run_command st line else run_query st line;
            loop ())
  in
  loop ()

let main kind size seed block journal monitor_port serve_port serve_workers
    serve_queue queries =
  let dir = load_directory kind size seed in
  Fmt.pr "loaded %S: %d entries (block %d)@." kind (Instance.size dir) block;
  let directory = Directory.create dir in
  let cache = Cache.create () in
  Cache.attach cache directory;
  (* Every journaled query feeds the plan-quality store, so
     :planstats, /planstats and /workload are live from the start. *)
  Planstats.attach Planstats.default;
  (* Stock service-health rules; :alerts and /alerts show them, the
     runtime sampler ticks them while the monitor runs. *)
  Alerts.install_defaults ();
  let st =
    {
      directory;
      engine = Engine.create ~block dir;
      engine_generation = Directory.generation directory;
      block;
      verbose = false;
      cache;
      cache_on = false;
      monitor = None;
      server = None;
      ticker = None;
      mode = Engine.Streaming;
      planner = Engine.Auto;
    }
  in
  Engine.set_calibration st.engine (Some Planstats.default);
  (match journal with
  | Some path ->
      ensure_parent path;
      Qlog.enable path;
      Fmt.pr "journaling to %s@." path
  | None -> ());
  Option.iter (start_monitor st) monitor_port;
  Option.iter
    (fun port ->
      start_server st ~port ~workers:serve_workers ~queue:serve_queue)
    serve_port;
  (match queries with
  | [] -> repl st
  | qs ->
      List.iter
        (fun q ->
          Fmt.pr "@.ndq> %s@." q;
          if q <> "" && q.[0] = ':' then run_command st q else run_query st q)
        qs);
  (* --serve keeps the process alive past the REPL/script: in CI (or
     under nohup) stdin hits EOF immediately, but the server must keep
     answering until the process is killed or :serve off ran. *)
  (if serve_port <> None && Option.is_some st.server then begin
     Fmt.pr "serving; interrupt (Ctrl-C) or kill to exit@.%!";
     while Option.is_some st.server do
       Unix.sleepf 0.5
     done
   end);
  ignore (stop_server st);
  ignore (stop_monitor st)

open Cmdliner

let kind =
  Arg.(
    value
    & opt string "random"
    & info [ "d"; "directory" ] ~docv:"KIND"
        ~doc:"Directory to load: figure11, figure12, qos, tops or random.")

let size =
  Arg.(
    value & opt int 1_000
    & info [ "size" ] ~docv:"N" ~doc:"Size of generated directories.")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

let block =
  Arg.(
    value & opt int 64
    & info [ "block" ] ~docv:"B" ~doc:"Blocking factor (entries per page).")

let journal =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:"Journal every query to $(docv) as JSON lines.")

let monitor_port =
  Arg.(
    value
    & opt (some int) None
    & info [ "monitor" ] ~docv:"PORT"
        ~doc:
          "Serve live introspection (/metrics, /healthz, /slowlog, /trace, \
           /planstats, /workload, /cache) on 127.0.0.1:$(docv).")

let serve_port =
  Arg.(
    value
    & opt (some int) None
    & info [ "serve" ] ~docv:"PORT"
        ~doc:
          "Start the query-serving front-end on 127.0.0.1:$(docv) (0 picks \
           a free port): HTTP /query plus the line protocol, a worker pool \
           and a bounded admission queue.  The process keeps serving after \
           the REPL or $(b,--eval) queries finish, until killed.")

let serve_workers =
  Arg.(
    value & opt int 4
    & info [ "workers" ] ~docv:"N"
        ~doc:"Worker threads of the serving front-end (with $(b,--serve)).")

let serve_queue =
  Arg.(
    value & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Admission-queue bound of the serving front-end (with \
           $(b,--serve)); requests beyond it are shed with backpressure.")

let queries =
  Arg.(
    value & opt_all string []
    & info [ "e"; "eval" ] ~docv:"QUERY"
        ~doc:"Evaluate $(docv) and exit (repeatable). Without it, start a REPL.")

let cmd =
  let doc = "query shell for the network directory engine" in
  Cmd.v
    (Cmd.info "ndqsh" ~doc)
    Term.(
      const main $ kind $ size $ seed $ block $ journal $ monitor_port
      $ serve_port $ serve_workers $ serve_queue $ queries)

let () = exit (Cmd.eval cmd)
