(* Umbrella module: the public API of the network-directory query system.

   {1 Data model (Section 3)} *)

module Value = Value
(** Attribute values: strings, ints and distinguished names. *)

module Rdn = Rdn
(** Relative distinguished names: sets of (attribute, value) pairs. *)

module Dn = Dn
(** Distinguished names, the hierarchy they induce, and the canonical
    reverse-lexicographic order (Section 4.2). *)

module Schema = Schema
(** Directory schemas: classes, typed attributes (Definition 3.1). *)

module Std_schema = Std_schema
(** Netscape-DS-3.1-style schema presets (Section 3.5). *)

module Entry = Entry
(** Directory entries (Definition 3.2). *)

module Instance = Instance
(** Directory instances — the directory information forest. *)

module Directory = Directory
(** Mutable directory state with LDAP-style update operations. *)

module Ldif = Ldif
(** LDIF-style serialization of schemas and instances. *)

(** {1 Query languages (Sections 4-7)} *)

module Afilter = Afilter
(** Atomic filters: presence, integer comparison, wildcard strings. *)

module Ast = Ast
(** Abstract syntax of L0 .. L3 (Figures 7-10). *)

module Lang = Lang
(** Language-level classification and well-formedness. *)

module Qparser = Qparser
(** Parser for the concrete query syntax. *)

module Qprinter = Qprinter
(** Printer (inverse of {!Qparser}). *)

module Ldap = Ldap
(** The 1999 LDAP query language baseline (Section 8.1). *)

(** {1 Evaluation (Sections 4.2, 5.3, 6.3-6.4, 7.2, 8.2)} *)

module Semantics = Semantics
(** Reference denotational semantics — the executable specification. *)

module Agg = Agg
(** Aggregate values and distributive partial states. *)

module Bool_ops = Bool_ops
(** Sorted-merge boolean operators. *)

module Hs_pc = Hs_pc
(** Algorithm ComputeHSPC (Fig 2). *)

module Hs_ad = Hs_ad
(** Algorithm ComputeHSAD (Fig 4). *)

module Hs_adc = Hs_adc
(** Algorithm ComputeHSADc (Fig 5). *)

module Hs_agg = Hs_agg
(** Algorithms ComputeHSAgg* (Fig 6). *)

module Hs_stack = Hs_stack
(** The shared stack-sweep machinery behind the ComputeHS* family. *)

module Simple_agg = Simple_agg
(** Simple aggregate selection (g ...) in at most two scans. *)

module Er = Er
(** Algorithms ComputeERAggVD / ComputeERAggDV (Fig 3). *)

module Naive = Naive
(** Quadratic nested-loop baselines. *)

module Engine = Engine
(** The bottom-up pipelined query engine (Section 8.2). *)

module Cache = Cache
(** Semantic query-result cache with footprint-precise invalidation. *)

module Footprint = Footprint
(** The dn-subtree footprint of a query (the ranges its result reads). *)

module Vtrie = Vtrie
(** Subtree version counters over the dn hierarchy. *)

module Explain = Explain
(** Query plans: cost estimation and per-operator profiling. *)

module Fuse = Fuse
(** Boolean-subtree fusion rewrite (single-scan LDAP-style evaluation). *)

module Dist = Dist
(** Distributed evaluation across domain-owning servers (Section 8.3). *)

module Replicated = Replicated
(** Primary/secondary replication of domain partitions (Section 3.3). *)

(** {1 Observability} *)

module Metrics = Metrics
(** Process-wide registry of counters, gauges and latency histograms. *)

module Trace = Trace
(** Per-query span trees (wall-clock + I/O deltas), recent-trace ring,
    trace-id propagation for distributed stitching. *)

module Qlog = Qlog
(** The query journal: JSON-lines per-query events and the slowlog. *)

module Promexp = Promexp
(** Prometheus text exposition of the metrics registry. *)

module Chrome_trace = Chrome_trace
(** Chrome trace-event (catapult) export of span trees. *)

module Monitor = Monitor
(** Live HTTP introspection server (/metrics, /healthz, /trace, ...). *)

module Alerts = Alerts
(** SLO alerting: threshold/burn-rate rules over the metrics registry. *)

module Srv = Srv
(** The concurrent query-serving front-end: worker pool, bounded
    admission queue, deadlines, streamed results over HTTP and a line
    protocol. *)

module Srv_client = Srv_client
(** Line-protocol client for {!Srv} (the load generator speaks it). *)

module Json = Json
(** Minimal JSON parser/printer shared by the observability formats. *)

module Mclock = Mclock
(** Nanosecond clock and duration formatting. *)

(** {1 External-memory substrate} *)

module Io_stats = Io_stats
(** Page-transfer counters: the cost model of all complexity claims. *)

module Pager = Pager
(** Blocking-factor arithmetic. *)

module Ext_list = Ext_list
(** Simulated disk-resident record lists. *)

module Ext_sort = Ext_sort
(** External merge sort. *)

module Spill_stack = Spill_stack
(** The bounded-memory stack of the ComputeHS* algorithms. *)

module Buffer_pool = Buffer_pool
(** LRU page cache over the simulated disk. *)

(** {1 Secondary indexes (Section 4.1)} *)

module Btree = Btree
(** B+tree over integer attribute values. *)

module Str_trie = Str_trie
(** Tries and suffix-trie substring indexes for string filters. *)

module Dn_index = Dn_index
(** The clustering reverse-dn index. *)

module Attr_index = Attr_index
(** Per-attribute secondary index bundle. *)

(** {1 DEN applications (Section 2)} *)

module Qos = Qos
(** QoS / SLA policy administration (Example 2.1, Figure 12). *)

module Tops = Tops
(** TOPS dial-by-name (Example 2.2, Figure 11). *)

module Lists = Lists
(** Distribution lists with nested (possibly cyclic) membership. *)

(** {1 Workloads} *)

module Prng = Prng
(** Deterministic splitmix64 generator. *)

module Dif_gen = Dif_gen
(** Synthetic directory information forests. *)

module Query_mix = Query_mix
(** Seeded L0–L3 query-text streams for serving workloads. *)
