(* A version trie over the dn hierarchy, for footprint-precise cache
   invalidation.

   Nodes mirror the namespace: the path to the node for [dn] is the
   root-first list of [dn]'s rdn strings (the same root-first order as
   [Dn.rev_key], so a subtree is exactly the set of paths extending its
   root's path).  Two counters live on each node:

   - [version] counts updates *at or below* the node.  A single-entry
     update at [d] bumps it on every node along root..d — those nodes
     are precisely the ones whose subtree contains [d].
   - [deep] counts subtree-wide updates *rooted at* the node (subtree
     deletion, subtree rename): every dn below is potentially touched,
     including dns whose trie nodes don't exist.

   The stamp of a base [b] is [version(b)] plus the sum of [deep] along
   root..b: it advances iff some update could have touched an entry in
   subtree(b).  Missing nodes contribute zero, so stamps are stable
   under trie growth.  [epoch] counts every update and stamps
   whole-instance footprints. *)

type node = {
  mutable version : int;  (* updates at or below this node *)
  mutable deep : int;  (* subtree-wide updates rooted here *)
  children : (string, node) Hashtbl.t;
}

type t = { root : node; mutable epoch : int }

let make_node () = { version = 0; deep = 0; children = Hashtbl.create 4 }
let create () = { root = make_node (); epoch = 0 }
let epoch t = t.epoch

(* Root-first component path of a dn (a Dn.t lists rdns most specific
   first). *)
let path (dn : Dn.t) = List.rev_map Rdn.to_string dn

let bump ?(subtree = false) t dn =
  t.epoch <- t.epoch + 1;
  let rec go node = function
    | [] ->
        node.version <- node.version + 1;
        if subtree then node.deep <- node.deep + 1
    | c :: rest ->
        node.version <- node.version + 1;
        let child =
          match Hashtbl.find_opt node.children c with
          | Some n -> n
          | None ->
              let n = make_node () in
              Hashtbl.add node.children c n;
              n
        in
        go child rest
  in
  go t.root (path dn)

(* Coarse fallback: invalidate every stamp (all paths cross the root). *)
let bump_all t =
  t.epoch <- t.epoch + 1;
  t.root.version <- t.root.version + 1;
  t.root.deep <- t.root.deep + 1

let stamp t dn =
  let rec go acc node = function
    | [] -> acc + node.deep + node.version
    | c :: rest -> (
        let acc = acc + node.deep in
        match Hashtbl.find_opt node.children c with
        | None -> acc
        | Some child -> go acc child rest)
  in
  go 0 t.root (path dn)

let node_count t =
  let rec go node =
    Hashtbl.fold (fun _ child n -> n + go child) node.children 1
  in
  go t.root
