(** The dn-subtree footprint of a query: the set of rev-dn base ranges
    its result can depend on.

    Sound by construction: every L0..L3 operator is a pure function of
    its operand lists, and every leaf reads inside the subtree below
    its base dn (base/one scopes are widened to the subtree), so a
    query's result depends only on the union of the subtrees rooted at
    its atomic bases.  Queries touching the namespace root, or too many
    distinct ranges, degrade to {!Whole}. *)

type t =
  | Whole  (** depends on the whole instance *)
  | Bases of Dn.t list
      (** union of the subtrees rooted at these dns; none is an
          ancestor of another, none is the root *)

val of_query : Ast.t -> t
val pp : Format.formatter -> t -> unit
