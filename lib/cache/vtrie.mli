(** A version trie over the dn hierarchy, for footprint-precise cache
    invalidation.

    [stamp t b] advances iff, since it was last read, some update could
    have touched an entry in the subtree below [b]: single-entry
    updates bump a counter on every node along their root-first path,
    subtree-wide updates additionally bump a [deep] counter at their
    root that taxes every stamp below.  Missing nodes contribute zero,
    so stamps are stable as the trie grows lazily. *)

type t

val create : unit -> t

val epoch : t -> int
(** Total updates seen; the stamp of a whole-instance footprint. *)

val bump : ?subtree:bool -> t -> Dn.t -> unit
(** Record an update at [dn]; [subtree] when the whole subtree below it
    may have changed (subtree delete, rename). *)

val bump_all : t -> unit
(** Record an update of unknown locus: every stamp advances. *)

val stamp : t -> Dn.t -> int
(** The current version of the subtree rooted at [dn]. *)

val node_count : t -> int
(** Allocated trie nodes (stats only). *)
