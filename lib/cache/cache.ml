(* The semantic query-result cache.

   Entries are keyed by normalized plan fingerprint and validated
   against the exact query text (the fingerprint elides constants and,
   being a 64-bit FNV-1a, could collide; the text check makes a hit
   exact, never approximate).  Each entry holds the materialized result
   plus the query's dn-subtree footprint and the footprint's version
   stamps from the {!Vtrie}; a lookup serves the entry iff every stamp
   is still current, so an update anywhere outside the footprint never
   costs a cached result and an update inside it always invalidates.

   Resources are bounded by a page budget with exact LRU eviction (the
   same discipline as {!Buffer_pool}), and admission is cost-aware:
   only results whose measured evaluation io reaches a threshold are
   stored, so cheap base-scope lookups don't churn the budget.

   The cache is an explicit handle, like {!Io_stats} — no globals;
   [attach] subscribes it to a {!Directory}'s update hooks, and the
   directory's generation counter doubles as a coarse safety net: if it
   advances without a matching hook notification, everything is
   invalidated. *)

type outcome = Hit of Entry.t array | Stale | Miss

type cached = {
  key : string;
  query : string;  (* exact query text, for stats display *)
  footprint : Footprint.t;
  stamps : int array;  (* per footprint base; [|epoch|] for Whole *)
  result : Entry.t array;
  pages : int;
  bytes : int;
  mutable prev : cached option;  (* LRU list, most recent at front *)
  mutable next : cached option;
}

type t = {
  mutable budget_pages : int;
  mutable admit_min_io : int;
  trie : Vtrie.t;
  table : (string, cached) Hashtbl.t;
  mutable front : cached option;
  mutable back : cached option;
  mutable used_pages : int;
  mutable used_bytes : int;
  mutable dir : Directory.t option;
  mutable seen_generation : int;
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable evictions : int;
  mutable rejects : int;
}

(* Process-wide series, shared by every cache like Buffer_pool's. *)
let m_hits = Metrics.counter ~help:"result-cache hits" "cache_hits_total"
let m_misses = Metrics.counter ~help:"result-cache misses" "cache_misses_total"

let m_stale =
  Metrics.counter ~help:"result-cache entries invalidated on lookup"
    "cache_stale_total"

let m_evictions =
  Metrics.counter ~help:"result-cache LRU evictions" "cache_evictions_total"

let m_rejects =
  Metrics.counter ~help:"results refused by cost-aware admission"
    "cache_admission_rejects_total"

let m_bytes =
  Metrics.gauge ~help:"bytes resident in result caches" "cache_resident_bytes"

let m_pages =
  Metrics.gauge ~help:"pages resident in result caches" "cache_resident_pages"

let gauge_add g d = Metrics.set g (Metrics.gauge_value g +. float_of_int d)

let create ?(budget_pages = 256) ?(admit_min_io = 2) () =
  {
    budget_pages = max 0 budget_pages;
    admit_min_io;
    trie = Vtrie.create ();
    table = Hashtbl.create 64;
    front = None;
    back = None;
    used_pages = 0;
    used_bytes = 0;
    dir = None;
    seen_generation = 0;
    hits = 0;
    misses = 0;
    stale = 0;
    evictions = 0;
    rejects = 0;
  }

(* --- LRU list ----------------------------------------------------------- *)

let unlink t c =
  (match c.prev with Some p -> p.next <- c.next | None -> t.front <- c.next);
  (match c.next with Some n -> n.prev <- c.prev | None -> t.back <- c.prev);
  c.prev <- None;
  c.next <- None

let push_front t c =
  c.next <- t.front;
  (match t.front with Some f -> f.prev <- Some c | None -> t.back <- Some c);
  t.front <- Some c

let drop t c =
  unlink t c;
  Hashtbl.remove t.table c.key;
  t.used_pages <- t.used_pages - c.pages;
  t.used_bytes <- t.used_bytes - c.bytes;
  gauge_add m_pages (-c.pages);
  gauge_add m_bytes (-c.bytes)

let evict_lru t =
  match t.back with
  | None -> ()
  | Some c ->
      drop t c;
      t.evictions <- t.evictions + 1;
      Metrics.incr m_evictions

(* --- Invalidation -------------------------------------------------------- *)

let note_update ?(subtree = false) t dn = Vtrie.bump ~subtree t.trie dn

(* The generation safety net: any mutation that reached the attached
   directory without a hook notification invalidates everything. *)
let sync t =
  match t.dir with
  | Some d when Directory.generation d <> t.seen_generation ->
      t.seen_generation <- Directory.generation d;
      Vtrie.bump_all t.trie
  | _ -> ()

let attach t dir =
  t.dir <- Some dir;
  t.seen_generation <- Directory.generation dir;
  Directory.on_update dir (fun (u : Directory.update) ->
      t.seen_generation <- Directory.generation dir;
      note_update ~subtree:u.Directory.subtree t u.Directory.dn)

(* --- Lookup / store ------------------------------------------------------- *)

let key ~fingerprint ~query = fingerprint ^ "\x00" ^ query

let current_stamps t = function
  | Footprint.Whole -> [| Vtrie.epoch t.trie |]
  | Footprint.Bases bs -> Array.of_list (List.map (Vtrie.stamp t.trie) bs)

let is_fresh t c = current_stamps t c.footprint = c.stamps

let find t ~fingerprint ~query =
  sync t;
  match Hashtbl.find_opt t.table (key ~fingerprint ~query) with
  | None ->
      t.misses <- t.misses + 1;
      Metrics.incr m_misses;
      Miss
  | Some c when is_fresh t c ->
      t.hits <- t.hits + 1;
      Metrics.incr m_hits;
      unlink t c;
      push_front t c;
      Hit c.result
  | Some c ->
      t.stale <- t.stale + 1;
      Metrics.incr m_stale;
      drop t c;
      Stale

(* Read-only probe for the planner: is a fresh result available?  No
   counters move and the LRU order stays put — pricing an access path
   must not look like serving a query, or planning a query that then
   scans would still rejuvenate (and account) a cache entry it never
   used.  Staleness is respected but the stale entry is left for the
   next real lookup to collect. *)
let peek t ~fingerprint ~query =
  sync t;
  match Hashtbl.find_opt t.table (key ~fingerprint ~query) with
  | Some c when is_fresh t c -> Some c.result
  | _ -> None

let store t ~fingerprint ~query ~footprint ~cost_io ~pages result =
  sync t;
  if cost_io < t.admit_min_io || pages > t.budget_pages then begin
    t.rejects <- t.rejects + 1;
    Metrics.incr m_rejects;
    false
  end
  else begin
    let k = key ~fingerprint ~query in
    (match Hashtbl.find_opt t.table k with
    | Some old -> drop t old
    | None -> ());
    while t.used_pages + pages > t.budget_pages do
      evict_lru t
    done;
    let c =
      {
        key = k;
        query;
        footprint;
        stamps = current_stamps t footprint;
        result;
        pages;
        bytes = Array.fold_left (fun n e -> n + Entry.byte_size e) 0 result;
        prev = None;
        next = None;
      }
    in
    Hashtbl.replace t.table k c;
    push_front t c;
    t.used_pages <- t.used_pages + c.pages;
    t.used_bytes <- t.used_bytes + c.bytes;
    gauge_add m_pages c.pages;
    gauge_add m_bytes c.bytes;
    true
  end

(* --- Maintenance ---------------------------------------------------------- *)

let rec clear t =
  match t.back with
  | None -> ()
  | Some c ->
      drop t c;
      clear t

let budget_pages t = t.budget_pages

let set_budget_pages t n =
  t.budget_pages <- max 0 n;
  while t.used_pages > t.budget_pages do
    evict_lru t
  done

let admit_min_io t = t.admit_min_io
let set_admit_min_io t n = t.admit_min_io <- n

(* --- Stats ------------------------------------------------------------------ *)

type stats = {
  hits : int;
  misses : int;
  stale : int;
  evictions : int;
  rejects : int;
  entries : int;
  used_pages : int;
  used_bytes : int;
  budget_pages : int;
  admit_min_io : int;
}

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    stale = t.stale;
    evictions = t.evictions;
    rejects = t.rejects;
    entries = Hashtbl.length t.table;
    used_pages = t.used_pages;
    used_bytes = t.used_bytes;
    budget_pages = t.budget_pages;
    admit_min_io = t.admit_min_io;
  }

let hit_rate s =
  let looked = s.hits + s.misses + s.stale in
  if looked = 0 then 0. else float_of_int s.hits /. float_of_int looked

(* The stats record as JSON, for the introspection server's /cache
   route (and anything else that wants a machine-readable snapshot). *)
let stats_json (t : t) =
  let s = stats t in
  let num n = Json.Num (float_of_int n) in
  Json.Obj
    [
      ("hits", num s.hits);
      ("misses", num s.misses);
      ("stale", num s.stale);
      ("hit_rate", Json.Num (hit_rate s));
      ("evictions", num s.evictions);
      ("rejects", num s.rejects);
      ("entries", num s.entries);
      ("used_pages", num s.used_pages);
      ("used_bytes", num s.used_bytes);
      ("budget_pages", num s.budget_pages);
      ("admit_min_io", num s.admit_min_io);
    ]

let pp_stats ppf s =
  Fmt.pf ppf
    "hits=%d misses=%d stale=%d (hit rate %.1f%%)@ entries=%d pages=%d/%d \
     bytes=%d@ evictions=%d admission_rejects=%d threshold_io=%d"
    s.hits s.misses s.stale
    (100. *. hit_rate s)
    s.entries s.used_pages s.budget_pages s.used_bytes s.evictions s.rejects
    s.admit_min_io

let pp ppf t = pp_stats ppf (stats t)
