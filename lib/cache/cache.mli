(** The semantic query-result cache.

    Entries are keyed by normalized plan fingerprint plus the exact
    query text (so the constant-eliding, 64-bit fingerprint can never
    alias two different queries), and carry the query's dn-subtree
    {!Footprint} with its {!Vtrie} version stamps.  A hit is served iff
    every stamp is current: updates outside the footprint never cost a
    cached result, updates inside it always invalidate.  Bounded by a
    page budget with exact LRU eviction; admission is cost-aware.

    A cache is an explicit handle, like [Io_stats] — no globals.
    {!attach} subscribes it to a {!Directory}'s update hooks (at most
    once per directory); the directory's generation counter is the
    coarse safety net, invalidating everything if it ever advances
    without a matching hook notification. *)

type t

type outcome =
  | Hit of Entry.t array  (** fresh result, already in LRU order *)
  | Stale  (** was cached, but its footprint's version advanced *)
  | Miss

val create : ?budget_pages:int -> ?admit_min_io:int -> unit -> t
(** [budget_pages] bounds the resident result pages (default 256);
    [admit_min_io] is the minimum measured evaluation io for a result
    to be admitted (default 2). *)

val attach : t -> Directory.t -> unit
(** Subscribe to the directory's update hooks for footprint-precise
    invalidation, and adopt its generation as the safety net. *)

val note_update : ?subtree:bool -> t -> Dn.t -> unit
(** Record an update at [dn] directly (for sources without hooks, e.g.
    a distributed coordinator told of a remote write). *)

val find : t -> fingerprint:string -> query:string -> outcome
(** Look up; a [Stale] entry is dropped and counted. *)

val peek : t -> fingerprint:string -> query:string -> Entry.t array option
(** Read-only probe: the fresh cached result if one exists, moving no
    counters and leaving the LRU order (and any stale entry) untouched.
    This is what the cost-based planner prices the cache path from —
    planning must not look like serving. *)

val store :
  t ->
  fingerprint:string ->
  query:string ->
  footprint:Footprint.t ->
  cost_io:int ->
  pages:int ->
  Entry.t array ->
  bool
(** Admit a result (evicting LRU entries to fit the budget), or refuse
    it — [false] — when [cost_io] is under the admission threshold or
    it alone exceeds the budget. *)

val clear : t -> unit
(** Drop every entry (counters survive). *)

val budget_pages : t -> int
val set_budget_pages : t -> int -> unit
(** Shrinking evicts immediately. *)

val admit_min_io : t -> int
val set_admit_min_io : t -> int -> unit

type stats = {
  hits : int;
  misses : int;
  stale : int;  (** lookups that found an invalidated entry *)
  evictions : int;
  rejects : int;  (** admissions refused *)
  entries : int;
  used_pages : int;
  used_bytes : int;
  budget_pages : int;
  admit_min_io : int;
}

val stats : t -> stats
val hit_rate : stats -> float

(** The stats snapshot (plus derived hit rate) as a JSON object — the
    payload behind the introspection server's [/cache] route. *)
val stats_json : t -> Json.t
val pp_stats : Format.formatter -> stats -> unit
val pp : Format.formatter -> t -> unit
