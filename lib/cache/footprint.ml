(* The dn-subtree footprint of a query: the parts of the namespace its
   result can depend on.

   Every operator of L0..L3 — boolean, hierarchy, aggregate-selection
   and entity-reference — is a pure function of its operand lists, and
   every leaf is an atomic query reading the subtree below its base dn
   (base and one scopes read subsets of that subtree, so widening them
   to the full subtree is sound).  A query's footprint is therefore the
   union of the subtrees rooted at its atomic bases.  Those bases are
   exactly the rev-dn key ranges the plan touches: in the canonical
   reverse order an ancestor's key is a proper prefix of its
   descendants', so each base denotes one contiguous range.

   A footprint with too many ranges to check cheaply degrades to the
   whole instance ([Whole]), matching the coarse
   [Directory.generation] fallback. *)

type t =
  | Whole  (* depends on the whole instance *)
  | Bases of Dn.t list  (* union of the subtrees rooted at these dns *)

(* Above this many distinct ranges, per-range staleness checks cost
   more than they save over the whole-instance stamp. *)
let max_bases = 16

let of_query (q : Ast.t) =
  let bases =
    Ast.atomic_subqueries q
    |> List.map (fun (a : Ast.atomic) -> a.Ast.base)
    |> List.sort_uniq Dn.compare_rev
  in
  (* Drop any base already covered by another base's subtree. *)
  let minimal =
    List.filter
      (fun b ->
        not
          (List.exists
             (fun b' ->
               (not (Dn.equal b b'))
               && Dn.is_self_or_descendant_of ~descendant:b ~ancestor:b')
             bases))
      bases
  in
  match minimal with
  | [] -> Whole
  | _ when List.length minimal > max_bases -> Whole
  | _ when List.exists (fun b -> Dn.equal b Dn.root) minimal -> Whole
  | bs -> Bases bs

let pp ppf = function
  | Whole -> Fmt.string ppf "<whole instance>"
  | Bases bs -> Fmt.(list ~sep:(any " | ") (any "sub(" ++ Dn.pp ++ any ")")) ppf bs
