(* Language classification and context checking (Sections 4-8).

   [level q] is the least i such that q is an L_i expression; [check q]
   verifies the context restrictions the grammars of Figures 9-10 impose
   on aggregate selection filters. *)

type level = L0 | L1 | L2 | L3

let level_to_int = function L0 -> 0 | L1 -> 1 | L2 -> 2 | L3 -> 3
let level_to_string l = Printf.sprintf "L%d" (level_to_int l)
let max_level a b = if level_to_int a >= level_to_int b then a else b

let rec level (q : Ast.t) =
  let sub = List.fold_left (fun l q -> max_level l (level q)) L0 (Ast.subqueries q) in
  let own =
    match q with
    | Ast.Atomic _ | Ast.And _ | Ast.Or _ | Ast.Diff _ -> L0
    | Ast.Hier (_, _, _, None) | Ast.Hier3 (_, _, _, _, None) -> L1
    | Ast.Hier (_, _, _, Some _) | Ast.Hier3 (_, _, _, _, Some _) | Ast.Gsel _
      -> L2
    | Ast.Eref _ -> L3
  in
  max_level own sub

(* --- Well-formedness of aggregate selection filters ------------------- *)

type error = { where : string; reason : string }

let pp_error ppf e = Fmt.pf ppf "%s: %s" e.where e.reason

(* Context in which an aggregate filter appears. *)
type agg_ctx = Simple  (* (g Q f): no witness set *) | Structural

let check_entry_agg ctx (ea : Ast.entry_agg) =
  match (ctx, ea) with
  | Simple, Ast.Ea_agg (_, Ast.Self _) -> Ok ()
  | Simple, Ast.Ea_agg (_, (Ast.W1 _ | Ast.W2 _)) ->
      Error "witness references $1/$2 are not available under (g ...)"
  | Simple, Ast.Ea_count_witnesses ->
      Error "count($2) is not available under (g ...)"
  | Structural, Ast.Ea_agg (_, _) | Structural, Ast.Ea_count_witnesses -> Ok ()

let check_entry_set_agg ctx (esa : Ast.entry_set_agg) =
  match (ctx, esa) with
  | _, Ast.Esa_agg (_, ea) -> check_entry_agg ctx ea
  | Simple, Ast.Esa_count_all -> Ok ()
  | Simple, Ast.Esa_count_entries ->
      Error "count($1) is not available under (g ...); use count($$)"
  | Structural, Ast.Esa_count_entries -> Ok ()
  | Structural, Ast.Esa_count_all ->
      Error "count($$) is not available under structural operators; use count($1)"

let check_agg_attr ctx = function
  | Ast.A_const _ -> Ok ()
  | Ast.A_entry ea -> check_entry_agg ctx ea
  | Ast.A_entry_set esa -> check_entry_set_agg ctx esa

let check_agg_filter ctx (f : Ast.agg_filter) =
  match check_agg_attr ctx f.lhs with
  | Error _ as e -> e
  | Ok () -> check_agg_attr ctx f.rhs

let check (q : Ast.t) =
  let errors = ref [] in
  let record where = function
    | Ok () -> ()
    | Error reason -> errors := { where; reason } :: !errors
  in
  let rec walk q =
    (match q with
    | Ast.Atomic _ -> ()
    | Ast.Gsel (_, f) -> record "(g ...)" (check_agg_filter Simple f)
    | Ast.Hier (_, _, _, Some f) | Ast.Hier3 (_, _, _, _, Some f) ->
        record "hierarchical operator" (check_agg_filter Structural f)
    | Ast.Eref (_, _, _, _, Some f) ->
        record "embedded-reference operator" (check_agg_filter Structural f)
    | Ast.And _ | Ast.Or _ | Ast.Diff _
    | Ast.Hier (_, _, _, None)
    | Ast.Hier3 (_, _, _, _, None)
    | Ast.Eref (_, _, _, _, None) ->
        ());
    List.iter walk (Ast.subqueries q)
  in
  walk q;
  match List.rev !errors with [] -> Ok () | errs -> Error errs

(* Theorem 8.2(d): (p Q1 Q2) = (ac Q1 Q2 (null-dn ? sub ? <present objectClass>)).
   The rewriting exists but forces the third operand to be the whole
   instance; experiment E11 measures that cost. *)
let parents_as_ancestors_c q1 q2 =
  Ast.ancestors_c q1 q2
    (Ast.atomic Dn.root (Afilter.Present Schema.object_class))

let children_as_descendants_c q1 q2 =
  Ast.descendants_c q1 q2
    (Ast.atomic Dn.root (Afilter.Present Schema.object_class))
