(** Parser for the concrete query syntax of Figures 7-10 — the inverse
    of {!Qprinter}.

    {v
    (dc=att, dc=com ? sub ? surName=jagadish)          atomic
    (& Q Q)  (| Q Q)  (- Q Q)                          boolean
    (p Q Q) (c Q Q) (a Q Q) (d Q Q)                    hierarchy
    (ac Q Q Q) (dc Q Q Q)                              path-constrained
    (g Q count(SLAPVPRef) > 1)                         simple aggregate
    (c Q Q count($2) > 10)                             structural aggregate
    (vd Q Q SLATPRef [aggfilter])  (dv Q Q attr ...)   embedded references
    v} *)

exception Parse_error of string

val parse_agg_filter_text : ?schema:Schema.t -> string -> Ast.agg_filter
(** Parse one aggregate selection filter, e.g.
    ["min(SLARulePriority) = min(min(SLARulePriority))"].
    @raise Parse_error on malformed input. *)

val of_string : ?schema:Schema.t -> string -> Ast.t
(** Parse a query.  A [schema] types the atomic filter operands.
    @raise Parse_error on malformed input. *)

val of_string_opt : ?schema:Schema.t -> string -> Ast.t option
