(* Recursive-descent parser for the concrete query syntax of
   Figures 7-10.  Inverse of [Qprinter.to_string]. *)

exception Parse_error of string

type state = { src : string; mutable pos : int; schema : Schema.t option }

let fail st msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> fail st (Printf.sprintf "expected '%c', found '%c'" c c')
  | None -> fail st (Printf.sprintf "expected '%c', found end of input" c)

let is_word_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' | '&' | '|' | '$' ->
      true
  | _ -> false

let read_word st =
  skip_ws st;
  let start = st.pos in
  while st.pos < String.length st.src && is_word_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  String.sub st.src start (st.pos - start)

(* Raw text up to (not including) the next occurrence of [stop]. *)
let read_until st stop =
  let start = st.pos in
  while st.pos < String.length st.src && st.src.[st.pos] <> stop do
    st.pos <- st.pos + 1
  done;
  if st.pos >= String.length st.src then
    fail st (Printf.sprintf "expected '%c' before end of input" stop);
  String.sub st.src start (st.pos - start)

(* Raw text up to the ')' that closes the current node, balancing any
   nested parentheses (aggregate filters contain '(' and ')'). *)
let read_balanced st =
  let start = st.pos in
  let depth = ref 0 in
  let stop = ref (-1) in
  while !stop < 0 do
    if st.pos >= String.length st.src then fail st "unbalanced parentheses";
    (match st.src.[st.pos] with
    | '(' -> incr depth
    | ')' -> if !depth = 0 then stop := st.pos else decr depth
    | _ -> ());
    if !stop < 0 then st.pos <- st.pos + 1
  done;
  String.sub st.src start (st.pos - start)

(* --- Aggregate selection filters -------------------------------------- *)

(* A miniature second-level parser over the balanced filter text. *)
let rec parse_agg_attr st =
  skip_ws st;
  let word = read_word st in
  if word = "" then fail st "expected aggregate attribute";
  match int_of_string_opt word with
  | Some c -> Ast.A_const c
  | None -> (
      match Ast.agg_fun_of_string word with
      | None -> fail st (Printf.sprintf "unknown aggregate function %S" word)
      | Some f -> (
          expect st '(';
          skip_ws st;
          let inner = read_word st in
          skip_ws st;
          match peek st with
          | Some '(' ->
              (* Nested aggregate: an entry-set aggregate over an entry
                 aggregate, e.g. min(min(SLARulePriority)). *)
              let inner_fun =
                match Ast.agg_fun_of_string inner with
                | Some g -> g
                | None ->
                    fail st (Printf.sprintf "unknown aggregate function %S" inner)
              in
              expect st '(';
              skip_ws st;
              let arg = read_word st in
              expect st ')';
              expect st ')';
              let ea =
                match arg with
                | "$2" when inner_fun = Ast.Count -> Ast.Ea_count_witnesses
                | _ -> Ast.Ea_agg (inner_fun, parse_attr_ref_exn st arg)
              in
              Ast.A_entry_set (Ast.Esa_agg (f, ea))
          | _ -> (
              expect st ')';
              match (f, inner) with
              | Ast.Count, "$$" -> Ast.A_entry_set Ast.Esa_count_all
              | Ast.Count, "$1" -> Ast.A_entry_set Ast.Esa_count_entries
              | Ast.Count, "$2" -> Ast.A_entry Ast.Ea_count_witnesses
              | _, _ -> Ast.A_entry (Ast.Ea_agg (f, parse_attr_ref_exn st inner)))))

and parse_attr_ref_exn st word =
  let prefixed p = String.length word > String.length p
    && String.sub word 0 (String.length p) = p in
  if word = "" || word = "$$" || word = "$1" || word = "$2" then
    fail st (Printf.sprintf "%S cannot be aggregated with this function" word)
  else if prefixed "$1." then Ast.W1 (String.sub word 3 (String.length word - 3))
  else if prefixed "$2." then Ast.W2 (String.sub word 3 (String.length word - 3))
  else if word.[0] = '$' then fail st (Printf.sprintf "bad reference %S" word)
  else Ast.Self word

let parse_cmp st =
  skip_ws st;
  let two =
    if st.pos + 1 < String.length st.src then
      String.sub st.src st.pos 2
    else ""
  in
  let take n op =
    st.pos <- st.pos + n;
    op
  in
  match two with
  | "<=" -> take 2 Ast.Le
  | ">=" -> take 2 Ast.Ge
  | "!=" -> take 2 Ast.Ne
  | _ -> (
      match peek st with
      | Some '<' -> take 1 Ast.Lt
      | Some '>' -> take 1 Ast.Gt
      | Some '=' -> take 1 Ast.Eq
      | _ -> fail st "expected comparison operator")

let parse_agg_filter_text ?schema text =
  let st = { src = text; pos = 0; schema } in
  let lhs = parse_agg_attr st in
  let op = parse_cmp st in
  let rhs = parse_agg_attr st in
  skip_ws st;
  if st.pos <> String.length st.src then fail st "trailing text in aggregate filter";
  { Ast.lhs; op; rhs }

(* --- Queries ----------------------------------------------------------- *)

let operators =
  [ "&"; "|"; "-"; "p"; "c"; "a"; "d"; "ac"; "dc"; "g"; "vd"; "dv" ]

let parse_atomic st =
  let base_text = String.trim (read_until st '?') in
  let lookup =
    match st.schema with
    | Some sc -> Schema.attr_type sc
    | None -> fun _ -> None
  in
  let base =
    try Dn.of_string_with ~lookup base_text
    with Dn.Parse_error m -> fail st (Printf.sprintf "bad dn %S: %s" base_text m)
  in
  expect st '?';
  let scope_word = read_word st in
  let scope =
    match Ast.scope_of_string scope_word with
    | Some s -> s
    | None -> fail st (Printf.sprintf "bad scope %S" scope_word)
  in
  expect st '?';
  let filter_text = String.trim (read_until st ')') in
  let filter =
    try Afilter.of_string ?schema:st.schema filter_text
    with Afilter.Parse_error m -> fail st m
  in
  expect st ')';
  Ast.Atomic { base; scope; filter }

let rec parse_query st =
  expect st '(';
  skip_ws st;
  let saved = st.pos in
  let word = read_word st in
  skip_ws st;
  let next_is_subquery = peek st = Some '(' in
  if List.mem word operators && next_is_subquery then parse_operator st word
  else begin
    st.pos <- saved;
    parse_atomic st
  end

and parse_operator st word =
  let q1 = parse_query st in
  let finish_hier mk =
    let q2 = parse_query st in
    let agg = parse_optional_agg st in
    expect st ')';
    mk q2 agg
  in
  match word with
  | "&" | "|" | "-" ->
      let q2 = parse_query st in
      expect st ')';
      (match word with
      | "&" -> Ast.And (q1, q2)
      | "|" -> Ast.Or (q1, q2)
      | _ -> Ast.Diff (q1, q2))
  | "p" -> finish_hier (fun q2 agg -> Ast.Hier (Ast.P, q1, q2, agg))
  | "c" -> finish_hier (fun q2 agg -> Ast.Hier (Ast.C, q1, q2, agg))
  | "a" -> finish_hier (fun q2 agg -> Ast.Hier (Ast.A, q1, q2, agg))
  | "d" -> finish_hier (fun q2 agg -> Ast.Hier (Ast.D, q1, q2, agg))
  | "ac" | "dc" ->
      let q2 = parse_query st in
      let q3 = parse_query st in
      let agg = parse_optional_agg st in
      expect st ')';
      let op = if word = "ac" then Ast.Ac else Ast.Dc in
      Ast.Hier3 (op, q1, q2, q3, agg)
  | "g" ->
      let text = String.trim (read_balanced st) in
      if text = "" then fail st "(g ...) requires an aggregate selection filter";
      let f = parse_agg_filter_text ?schema:st.schema text in
      expect st ')';
      Ast.Gsel (q1, f)
  | "vd" | "dv" ->
      let q2 = parse_query st in
      skip_ws st;
      let attr = read_word st in
      if attr = "" then fail st "embedded-reference operator requires an attribute";
      let agg = parse_optional_agg st in
      expect st ')';
      let op = if word = "vd" then Ast.Vd else Ast.Dv in
      Ast.Eref (op, q1, q2, attr, agg)
  | other -> fail st (Printf.sprintf "unknown operator %S" other)

and parse_optional_agg st =
  let text = String.trim (read_balanced st) in
  if text = "" then None else Some (parse_agg_filter_text ?schema:st.schema text)

let of_string ?schema s =
  let st = { src = s; pos = 0; schema } in
  let q = parse_query st in
  skip_ws st;
  if st.pos <> String.length st.src then fail st "trailing text after query";
  q

let of_string_opt ?schema s =
  try Some (of_string ?schema s) with Parse_error _ -> None
