(* Abstract syntax of the query-language family L0 .. L3 (Figures 7-10).

   A single AST covers all four languages; [Lang.level] computes the
   least language an expression belongs to, and [Lang.check] enforces
   the context restrictions of the grammars (e.g. witness references
   [$2] only under structural operators). *)

type scope = Base | One | Sub

type atomic = { base : Dn.t; scope : scope; filter : Afilter.t }

(* Integer comparison operators of aggregate selection filters. *)
type cmp = Lt | Le | Eq | Ge | Gt | Ne

type agg_fun = Min | Max | Sum | Count | Average

(* ModAttrName: a plain attribute refers to the candidate entry itself;
   $1.a / $2.a refer to the candidate and its witnesses respectively. *)
type attr_ref = Self of string | W1 of string | W2 of string

(* EntryAggAttr (Figure 9). *)
type entry_agg =
  | Ea_agg of agg_fun * attr_ref  (* e.g. min(SLARulePriority), sum($2.x) *)
  | Ea_count_witnesses  (* count($2) *)

(* EntrySetAggAttr (Figure 9). *)
type entry_set_agg =
  | Esa_agg of agg_fun * entry_agg  (* e.g. min(min(SLARulePriority)) *)
  | Esa_count_entries  (* count($1) *)
  | Esa_count_all  (* count($$) *)

type agg_attr =
  | A_const of int
  | A_entry of entry_agg
  | A_entry_set of entry_set_agg

type agg_filter = { lhs : agg_attr; op : cmp; rhs : agg_attr }

(* The six hierarchical selection operators of L1 (Section 5.2). *)
type hier_op = P | C | A | D
type hier_op3 = Ac | Dc

(* The two embedded-reference operators of L3 (Section 7). *)
type ref_op = Vd | Dv

type t =
  | Atomic of atomic
  | And of t * t
  | Or of t * t
  | Diff of t * t
  | Hier of hier_op * t * t * agg_filter option
  | Hier3 of hier_op3 * t * t * t * agg_filter option
  | Gsel of t * agg_filter  (* simple aggregate selection (g Q f) *)
  | Eref of ref_op * t * t * string * agg_filter option

(* --- Constructors ----------------------------------------------------- *)

let atomic ?(scope = Sub) base filter = Atomic { base; scope; filter }
let ( &&& ) q1 q2 = And (q1, q2)
let ( ||| ) q1 q2 = Or (q1, q2)
let ( --- ) q1 q2 = Diff (q1, q2)
let parents ?agg q1 q2 = Hier (P, q1, q2, agg)
let children ?agg q1 q2 = Hier (C, q1, q2, agg)
let ancestors ?agg q1 q2 = Hier (A, q1, q2, agg)
let descendants ?agg q1 q2 = Hier (D, q1, q2, agg)
let ancestors_c ?agg q1 q2 q3 = Hier3 (Ac, q1, q2, q3, agg)
let descendants_c ?agg q1 q2 q3 = Hier3 (Dc, q1, q2, q3, agg)
let gsel q f = Gsel (q, f)
let value_dn ?agg q1 q2 a = Eref (Vd, q1, q2, a, agg)
let dn_value ?agg q1 q2 a = Eref (Dv, q1, q2, a, agg)

(* The aggregate filter equivalent to plain hierarchical selection:
   count($2) > 0 (Section 6.2, closing remark). *)
let has_witness = { lhs = A_entry Ea_count_witnesses; op = Gt; rhs = A_const 0 }

(* --- Traversal helpers ------------------------------------------------ *)

let subqueries = function
  | Atomic _ -> []
  | And (a, b) | Or (a, b) | Diff (a, b) -> [ a; b ]
  | Hier (_, a, b, _) -> [ a; b ]
  | Hier3 (_, a, b, c, _) -> [ a; b; c ]
  | Gsel (a, _) -> [ a ]
  | Eref (_, a, b, _, _) -> [ a; b ]

let rec fold f acc q = List.fold_left (fold f) (f acc q) (subqueries q)

(* Number of nodes in the query tree (the |Q| of Theorems 8.3/8.4). *)
let size q = fold (fun n _ -> n + 1) 0 q

let atomic_subqueries q =
  fold (fun acc q -> match q with Atomic a -> a :: acc | _ -> acc) [] q
  |> List.rev

let scope_to_string = function Base -> "base" | One -> "one" | Sub -> "sub"

let scope_of_string = function
  | "base" -> Some Base
  | "one" -> Some One
  | "sub" -> Some Sub
  | _ -> None

let cmp_to_string = function
  | Lt -> "<"
  | Le -> "<="
  | Eq -> "="
  | Ge -> ">="
  | Gt -> ">"
  | Ne -> "!="

let agg_fun_to_string = function
  | Min -> "min"
  | Max -> "max"
  | Sum -> "sum"
  | Count -> "count"
  | Average -> "average"

let agg_fun_of_string = function
  | "min" -> Some Min
  | "max" -> Some Max
  | "sum" -> Some Sum
  | "count" -> Some Count
  | "average" -> Some Average
  | _ -> None
