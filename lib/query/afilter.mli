(** Atomic filters (Section 4.1).

    Presence, integer comparison, exact / wildcard string matching and
    dn equality, in RFC-2254-ish concrete syntax.  An entry satisfies a
    filter iff at least one of its (attribute, value) pairs does. *)

type cmp = Lt | Le | Eq | Ge | Gt

type substring = {
  initial : string option;  (** anchored at the start *)
  middles : string list;  (** in order, non-overlapping *)
  final : string option;  (** anchored at the end *)
}
(** An LDAP substring pattern [initial*mid*...*mid*final]. *)

type t =
  | Present of string  (** [a=*] *)
  | Str_eq of string * string  (** [a=v] *)
  | Substr of string * substring  (** [a=*jag*], [a=jag*ish], ... *)
  | Int_cmp of string * cmp * int  (** [a<5], [a>=3], [a=7], ... *)
  | Dn_eq of string * Value.dn  (** [a=dn:<distinguished name>] *)

val attr : t -> string
(** The attribute the filter constrains. *)

val cmp_int : cmp -> int -> int -> bool

val substring_matches : substring -> string -> bool
(** LDAP substring semantics: components in order, no overlap, initial /
    final anchored. *)

val value_matches : t -> Value.t -> bool
(** Does one value satisfy the filter (type-correctly)? *)

val matches : t -> Entry.t -> bool
(** r |= F — Section 4.1's satisfaction relation. *)

val cmp_to_string : cmp -> string
val substring_to_string : substring -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

exception Parse_error of string

val of_string : ?schema:Schema.t -> string -> t
(** Parse one filter.  With a [schema], the attribute's declared type
    decides between int / string / dn readings of the right-hand side;
    without one, integer-looking operands read as ints.
    @raise Parse_error on malformed input. *)
