(** Concrete-syntax output for queries — the inverse of {!Qparser}:
    [Qparser.of_string (to_string q) = q] (property-tested). *)

val attr_ref_to_string : Ast.attr_ref -> string
val entry_agg_to_string : Ast.entry_agg -> string
val entry_set_agg_to_string : Ast.entry_set_agg -> string
val agg_attr_to_string : Ast.agg_attr -> string
val agg_filter_to_string : Ast.agg_filter -> string
val atomic_to_string : Ast.atomic -> string
val hier_op_to_string : Ast.hier_op -> string
val hier_op3_to_string : Ast.hier_op3 -> string
val ref_op_to_string : Ast.ref_op -> string

val to_string : Ast.t -> string
(** Single-line parseable rendering. *)

val pp : Format.formatter -> Ast.t -> unit

val pp_pretty : Format.formatter -> Ast.t -> unit
(** Multi-line indented rendering for human consumption. *)
