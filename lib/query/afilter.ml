(* Atomic filters (Section 4.1).

   The filter forms follow the paper's representative set for the base
   types [string] and [int], in LDAP RFC-2254 style:

   - presence              a=*
   - integer comparison    a<5  a<=5  a=5  a>=5  a>5
   - exact string match    a=jagadish
   - wildcard string match a=*jag*  a=jag*ish  ...
   - dn equality           a=dn:<distinguished name>

   An entry satisfies a filter iff at least one of its (attribute, value)
   pairs does. *)

type cmp = Lt | Le | Eq | Ge | Gt

(* LDAP substring pattern: initial*any*...*any*final. *)
type substring = {
  initial : string option;
  middles : string list;
  final : string option;
}

type t =
  | Present of string
  | Str_eq of string * string
  | Substr of string * substring
  | Int_cmp of string * cmp * int
  | Dn_eq of string * Value.dn

let attr = function
  | Present a | Str_eq (a, _) | Substr (a, _) | Int_cmp (a, _, _) | Dn_eq (a, _)
    -> a

let cmp_int op x y =
  match op with
  | Lt -> x < y
  | Le -> x <= y
  | Eq -> x = y
  | Ge -> x >= y
  | Gt -> x > y

(* Match an LDAP substring pattern against [s]: the components must occur
   in order without overlap, with initial anchored at the start and final
   at the end. *)
let substring_matches pat s =
  let n = String.length s in
  let find_from sub pos =
    let m = String.length sub in
    let rec loop i =
      if i + m > n then None
      else if String.sub s i m = sub then Some (i + m)
      else loop (i + 1)
    in
    loop pos
  in
  let start =
    match pat.initial with
    | None -> Some 0
    | Some ini ->
        let m = String.length ini in
        if m <= n && String.sub s 0 m = ini then Some m else None
  in
  match start with
  | None -> false
  | Some pos ->
      let rec middles pos = function
        | [] -> Some pos
        | mid :: rest -> (
            match find_from mid pos with
            | Some pos' -> middles pos' rest
            | None -> None)
      in
      (match middles pos pat.middles with
      | None -> false
      | Some pos -> (
          match pat.final with
          | None -> true
          | Some fin ->
              let m = String.length fin in
              pos + m <= n && String.sub s (n - m) m = fin))

let value_matches t v =
  match (t, v) with
  | Present _, _ -> true
  | Str_eq (_, s), Value.Str s' -> String.equal s s'
  | Substr (_, pat), Value.Str s -> substring_matches pat s
  | Int_cmp (_, op, k), Value.Int i -> cmp_int op i k
  | Dn_eq (_, dn), Value.Dn dn' -> Value.compare_dn dn dn' = 0
  | (Str_eq _ | Substr _ | Int_cmp _ | Dn_eq _), _ -> false

(* r |= F — Section 4.1's satisfaction relation. *)
let matches t entry =
  let a = attr t in
  List.exists (value_matches t) (Entry.values entry a)

(* --- Printing --------------------------------------------------------- *)

let cmp_to_string = function
  | Lt -> "<"
  | Le -> "<="
  | Eq -> "="
  | Ge -> ">="
  | Gt -> ">"

let substring_to_string pat =
  String.concat "*"
    ([ Option.value ~default:"" pat.initial ]
    @ pat.middles
    @ [ Option.value ~default:"" pat.final ])

let to_string = function
  | Present a -> a ^ "=*"
  | Str_eq (a, s) -> a ^ "=" ^ s
  | Substr (a, pat) -> a ^ "=" ^ substring_to_string pat
  | Int_cmp (a, op, k) -> a ^ cmp_to_string op ^ string_of_int k
  | Dn_eq (a, dn) -> a ^ "=dn:" ^ Value.dn_to_string dn

let pp ppf t = Fmt.string ppf (to_string t)

(* --- Parsing ---------------------------------------------------------- *)

exception Parse_error of string

let split_on_string ~sep s =
  let seplen = String.length sep in
  let rec loop start acc =
    match
      let rec find i =
        if i + seplen > String.length s then None
        else if String.sub s i seplen = sep then Some i
        else find (i + 1)
      in
      find start
    with
    | Some i -> loop (i + seplen) (String.sub s start (i - start) :: acc)
    | None -> List.rev (String.sub s start (String.length s - start) :: acc)
  in
  loop 0 []

let parse_substring a rhs =
  match String.split_on_char '*' rhs with
  | [] | [ _ ] -> assert false  (* caller guarantees a '*' is present *)
  | parts ->
      let arr = Array.of_list parts in
      let n = Array.length arr in
      let opt s = if s = "" then None else Some s in
      let initial = opt arr.(0) and final = opt arr.(n - 1) in
      let middles =
        Array.to_list (Array.sub arr 1 (n - 2))
        |> List.filter (fun s -> s <> "")
      in
      if initial = None && middles = [] && final = None then Present a
      else Substr (a, { initial; middles; final })

(* Parse one atomic filter.  When a [schema] is supplied the attribute's
   declared type decides between int, string and dn readings of the
   right-hand side; otherwise an integer-looking operand after '=' is
   read as an int comparison. *)
let of_string ?schema s =
  let s = String.trim s in
  let try_op op_str op =
    match split_on_string ~sep:op_str s with
    | [ a; v ] when a <> "" && not (String.contains a '=') ->
        let a = String.trim a and v = String.trim v in
        (match int_of_string_opt v with
        | Some k -> Some (Int_cmp (a, op, k))
        | None ->
            raise
              (Parse_error
                 (Printf.sprintf "non-integer operand %S for %s" v op_str)))
    | _ -> None
  in
  (* Two-character operators first so "a<=5" is not read as "a<" "=5". *)
  let ordered =
    [ ("<=", Le); (">=", Ge); ("<", Lt); (">", Gt) ]
  in
  let rec try_all = function
    | [] -> None
    | (op_str, op) :: rest -> (
        match try_op op_str op with Some f -> Some f | None -> try_all rest)
  in
  match try_all ordered with
  | Some f -> f
  | None -> (
      match String.index_opt s '=' with
      | None -> raise (Parse_error (Printf.sprintf "cannot parse filter %S" s))
      | Some i -> (
          let a = String.trim (String.sub s 0 i) in
          let rhs = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
          if a = "" then raise (Parse_error "empty attribute in filter");
          let lookup =
            match schema with
            | Some sc -> Schema.attr_type sc
            | None -> fun _ -> None
          in
          if rhs = "*" then Present a
          else if String.length rhs > 3 && String.sub rhs 0 3 = "dn:" then
            Dn_eq
              (a, Dn.of_string_with ~lookup (String.sub rhs 3 (String.length rhs - 3)))
          else if String.contains rhs '*' then parse_substring a rhs
          else
            let declared =
              match schema with Some sc -> Schema.attr_type sc a | None -> None
            in
            match declared with
            | Some Value.T_int -> (
                match int_of_string_opt rhs with
                | Some k -> Int_cmp (a, Eq, k)
                | None ->
                    raise
                      (Parse_error
                         (Printf.sprintf "attribute %s is int-typed, got %S" a rhs)))
            | Some Value.T_dn -> Dn_eq (a, Dn.of_string_with ~lookup rhs)
            | Some Value.T_string -> Str_eq (a, rhs)
            | None -> (
                match int_of_string_opt rhs with
                | Some k -> Int_cmp (a, Eq, k)
                | None -> Str_eq (a, rhs))))
