(* Concrete syntax output for queries, inverse of [Qparser].

   The syntax follows the paper's figures:
     (dc=att, dc=com ? sub ? surName=jagadish)
     (& Q1 Q2)   (| Q1 Q2)   (- Q1 Q2)
     (p Q1 Q2)   (c Q1 Q2)   (a Q1 Q2)   (d Q1 Q2)
     (ac Q1 Q2 Q3)   (dc Q1 Q2 Q3)
     (g Q count(SLAPVPRef) > 1)
     (c Q1 Q2 count($2) > 10)
     (vd Q1 Q2 SLATPRef)   (dv Q1 Q2 SLADSActRef min(a)=min(min(a))) *)

let attr_ref_to_string = function
  | Ast.Self a -> a
  | Ast.W1 a -> "$1." ^ a
  | Ast.W2 a -> "$2." ^ a

let rec entry_agg_to_string = function
  | Ast.Ea_agg (f, r) ->
      Printf.sprintf "%s(%s)" (Ast.agg_fun_to_string f) (attr_ref_to_string r)
  | Ast.Ea_count_witnesses -> "count($2)"

and entry_set_agg_to_string = function
  | Ast.Esa_agg (f, ea) ->
      Printf.sprintf "%s(%s)" (Ast.agg_fun_to_string f) (entry_agg_to_string ea)
  | Ast.Esa_count_entries -> "count($1)"
  | Ast.Esa_count_all -> "count($$)"

let agg_attr_to_string = function
  | Ast.A_const c -> string_of_int c
  | Ast.A_entry ea -> entry_agg_to_string ea
  | Ast.A_entry_set esa -> entry_set_agg_to_string esa

let agg_filter_to_string (f : Ast.agg_filter) =
  Printf.sprintf "%s %s %s" (agg_attr_to_string f.lhs) (Ast.cmp_to_string f.op)
    (agg_attr_to_string f.rhs)

let atomic_to_string (a : Ast.atomic) =
  Printf.sprintf "(%s ? %s ? %s)" (Dn.to_string a.base)
    (Ast.scope_to_string a.scope)
    (Afilter.to_string a.filter)

let hier_op_to_string = function
  | Ast.P -> "p"
  | Ast.C -> "c"
  | Ast.A -> "a"
  | Ast.D -> "d"

let hier_op3_to_string = function Ast.Ac -> "ac" | Ast.Dc -> "dc"
let ref_op_to_string = function Ast.Vd -> "vd" | Ast.Dv -> "dv"

let rec to_string = function
  | Ast.Atomic a -> atomic_to_string a
  | Ast.And (a, b) -> Printf.sprintf "(& %s %s)" (to_string a) (to_string b)
  | Ast.Or (a, b) -> Printf.sprintf "(| %s %s)" (to_string a) (to_string b)
  | Ast.Diff (a, b) -> Printf.sprintf "(- %s %s)" (to_string a) (to_string b)
  | Ast.Hier (op, a, b, agg) ->
      Printf.sprintf "(%s %s %s%s)" (hier_op_to_string op) (to_string a)
        (to_string b) (agg_suffix agg)
  | Ast.Hier3 (op, a, b, c, agg) ->
      Printf.sprintf "(%s %s %s %s%s)" (hier_op3_to_string op) (to_string a)
        (to_string b) (to_string c) (agg_suffix agg)
  | Ast.Gsel (a, f) ->
      Printf.sprintf "(g %s %s)" (to_string a) (agg_filter_to_string f)
  | Ast.Eref (op, a, b, attr, agg) ->
      Printf.sprintf "(%s %s %s %s%s)" (ref_op_to_string op) (to_string a)
        (to_string b) attr (agg_suffix agg)

and agg_suffix = function
  | None -> ""
  | Some f -> " " ^ agg_filter_to_string f

let pp ppf q = Fmt.string ppf (to_string q)

(* Multi-line indented rendering for the shell and examples. *)
let rec pp_pretty ppf q =
  match q with
  | Ast.Atomic a -> Fmt.string ppf (atomic_to_string a)
  | Ast.And (a, b) -> pp_node ppf "&" [ a; b ] None
  | Ast.Or (a, b) -> pp_node ppf "|" [ a; b ] None
  | Ast.Diff (a, b) -> pp_node ppf "-" [ a; b ] None
  | Ast.Hier (op, a, b, agg) ->
      pp_node ppf (hier_op_to_string op) [ a; b ]
        (Option.map agg_filter_to_string agg)
  | Ast.Hier3 (op, a, b, c, agg) ->
      pp_node ppf (hier_op3_to_string op) [ a; b; c ]
        (Option.map agg_filter_to_string agg)
  | Ast.Gsel (a, f) -> pp_node ppf "g" [ a ] (Some (agg_filter_to_string f))
  | Ast.Eref (op, a, b, attr, agg) ->
      let tail =
        attr ^ match agg with None -> "" | Some f -> " " ^ agg_filter_to_string f
      in
      pp_node ppf (ref_op_to_string op) [ a; b ] (Some tail)

and pp_node ppf op subs tail =
  Fmt.pf ppf "@[<v2>(%s %a%s)@]" op
    (Fmt.list ~sep:Fmt.cut pp_pretty)
    subs
    (match tail with None -> "" | Some t -> "\n  " ^ t)
