(** Language classification and well-formedness (Sections 4-8).

    One AST covers L0 .. L3; [level] computes the least language an
    expression belongs to, [check] enforces the aggregate-filter context
    restrictions of the grammars (Figures 9-10). *)

type level = L0 | L1 | L2 | L3

val level_to_int : level -> int
val level_to_string : level -> string
val max_level : level -> level -> level

val level : Ast.t -> level
(** The least L_i containing the query: atomic/boolean are L0, plain
    hierarchical selection L1, any aggregate selection L2, embedded
    references L3; nesting takes the maximum. *)

type error = { where : string; reason : string }

val pp_error : Format.formatter -> error -> unit

type agg_ctx = Simple | Structural

val check_agg_filter : agg_ctx -> Ast.agg_filter -> (unit, string) result
(** Context check for one filter: witness references ($2, count($2),
    count($1)) only under structural operators; count($$) only under
    (g ...). *)

val check : Ast.t -> (unit, error list) result
(** Check every aggregate filter in the query. *)

val parents_as_ancestors_c : Ast.t -> Ast.t -> Ast.t
(** Theorem 8.2(d): rewrite [(p Q1 Q2)] as [(ac Q1 Q2 <whole instance>)]
    — semantically equal (when every ancestor entry exists) but paying
    a whole-instance third operand; see experiment E11. *)

val children_as_descendants_c : Ast.t -> Ast.t -> Ast.t
