(** The plan-quality observatory: estimate-vs-actual accounting over
    the query journal's event stream.

    Joins the planner's per-operator and whole-query estimates (which
    the recording layers attach to {!Qlog} events) with the measured
    actuals, computes q-errors — [max(est/act, act/est)] for
    cardinality, page reads and page writes — and aggregates them
    three ways: log-scale {!Metrics} histograms
    ([plan_qerror_{card,reads,writes}] labeled by operator class), a
    persistent calibration store keyed by (operator class x
    selectivity bucket), and a per-plan-fingerprint workload profile.
    A drift detector compares a sliding window of recent q-errors per
    class against a loaded baseline calibration and raises
    [plan_drift_total{op}].

    A store subscribes to the journal with {!attach}; because every
    {!Qlog.record} flows through the subscription exactly once, a
    store rebuilt offline from the journal file ({!build}) reproduces
    the online aggregates bit for bit — {!save_lines} of the two are
    equal. *)

type t
(** A store: calibration cells, quantile samples, workload profile and
    drift state. *)

val create : ?metrics:bool -> unit -> t
(** A fresh, empty store.  With [metrics] (default [false]) every
    observation also feeds the default {!Metrics} registry's
    [plan_qerror_*] histograms. *)

val default : t
(** The process-wide store (metrics on) behind the monitor's
    [/planstats] and [/workload] routes and the shell's [:planstats].
    Nothing flows into it until {!attach}ed. *)

(** {1 The q-error} *)

val qerror : est:int -> act:int -> float
(** [max(est/act, act/est)] with both values clamped to [>= 1], so the
    result is always [>= 1.0] ([1.0] = exact) and zeros are handled:
    [qerror ~est:0 ~act:0 = 1.0], [qerror ~est:0 ~act:10 = 10.0]. *)

val bucket_of_rows : int -> int
(** The selectivity bucket of a cardinality estimate: floor log2
    (0 for values [<= 1]), so bucket [b] covers estimates in
    [\[2^b, 2^(b+1))]. *)

(** {1 Feeding a store} *)

val note_event : t -> Qlog.event -> unit
(** Fold one journal event into the store: workload row always;
    q-error observations for whatever estimates the event carries
    (whole-query fields under the pseudo-class ["query"], per-operator
    rows under their operator label).  Per-operator actual io is
    re-derived exclusive-of-children from the rows' preorder + depth
    structure, since span deltas are inclusive. *)

val attach : t -> unit
(** Subscribe the store to {!Qlog.record} (idempotent).  All attached
    stores see every recorded event, once. *)

val detach : t -> unit
(** Unsubscribe; the last detach clears the journal hook. *)

val of_events : Qlog.event list -> t
(** A fresh store folded over the events, in order. *)

val build : t -> string -> int
(** [build t path] replays journal file [path] into [t] and returns
    the number of events folded.
    @raise Sys_error / Json.Parse_error on unreadable input. *)

val events : t -> int
val clear : t -> unit
(** Drop every observation (the drift baseline survives). *)

(** {1 The calibration store} *)

val save : t -> string -> int
(** Write the calibration cells as JSON lines (sorted by class then
    bucket); returns the cell count.  Samples, workload and drift
    state are in-memory only. *)

val save_lines : t -> string
(** The exact bytes {!save} writes — deterministic for a given set of
    aggregates, so equal aggregates save equal bytes. *)

val load : string -> t
(** A store holding the file's calibration cells (no samples, no
    workload).
    @raise Sys_error / Json.Parse_error on unreadable input. *)

val merge : into:t -> t -> unit
(** Add [src]'s calibration cells into [into] (counts and log-sums
    add, maxima take the max). *)

(** {1 Bias lookup}

    What a calibrated planner consults.  [bias_* t ~op ~rows] is the
    multiplicative correction for class [op] in the selectivity bucket
    of an estimate of [rows] ([est x bias ~= act] on the workload seen
    so far): the exact (class, bucket) cell when it has at least 4
    observations, else the class aggregate across buckets, else
    [None].  Clamped to [\[1/8, 8\]].  Per-path classes are recorded as
    ["atomic:index"], ["atomic:scan"], … when events carry operator
    access paths. *)

val bias_card : t -> op:string -> rows:int -> float option
val bias_reads : t -> op:string -> rows:int -> float option

(** {1 Drift} *)

val set_baseline : t -> t -> unit
(** [set_baseline t b] makes [b]'s calibration the drift reference:
    every 64 events, each class's recent-window cardinality q-error
    geomean is compared against the baseline's, and a [>= 2x] shift in
    either direction raises [plan_drift_total{op}] and a drift note. *)

val drift : t -> (string * float * float) list
(** Current drift notes: (class, recent geomean, baseline geomean),
    newest first, at most one per class. *)

(** {1 Export} *)

val to_json : t -> Json.t
(** Event count, per-class summaries (n / geomean / median / p95 / max
    / bias per dimension), drift notes, and the full calibration cell
    list — the [/planstats] route body. *)

val workload_json : ?top:int -> t -> Json.t
(** The workload profile: top-[top] (default 20) plans by total wall
    time, each with count, wall ns, io, cache hit rate and worst
    q-error — the [/workload] route body. *)

val pp_summary : Format.formatter -> t -> unit
(** Per-class q-error table (the shell's [:planstats] and the
    [:replay] accuracy summary). *)

val pp_workload : ?top:int -> Format.formatter -> t -> unit
val pp_drift : Format.formatter -> t -> unit
