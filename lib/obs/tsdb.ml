(* Flight recorder: a bounded in-process time-series store over the
   metrics registry.

   /metrics is a point-in-time snapshot; everything here adds the time
   dimension an operator actually needs during an incident: a sampler
   thread snapshots the registry on a fixed cadence (default 1s) and
   keeps the last N windows (default 3600 — an hour at 1s resolution)
   in a ring.  Each window stores *deltas*, not cumulative state:

   - counters   -> the increment since the previous sample (a counter
                   reset — restart, Metrics.reset — shows up as a
                   negative delta and is taken as the new cumulative
                   value, i.e. "everything since the reset");
   - gauges     -> the sampled value;
   - histograms -> the per-bucket increments, count and sum deltas,
                   stored sparsely and only when the window actually
                   saw observations.

   Range queries ([rate], [sum], [avg], [min], [max], [quantile p])
   re-aggregate those deltas over [now - window, now] at a chosen step,
   merging histogram bucket deltas so a per-window p99 is exact up to
   the registry's factor-of-two bucketing.  The whole store serializes
   to JSON-lines ([save]/[load]) with deterministic float rendering, so
   a bench run leaves a replayable series and save∘load∘save is
   byte-identical.

   Thread safety: one mutex per store guards the ring, the
   previous-cumulative tables and the sampler handle; [sample] and
   [range] interleave freely from the sampler thread and the monitor's
   accept thread. *)

type labels = Metrics.labels

type key = string * labels

(* Per-window histogram delta: sparse bucket increments. *)
type hwin = {
  w_count : int;
  w_sum : float;
  w_buckets : (int * int) list;  (* bucket index -> increment, ascending *)
}

type point =
  | P_rate of float  (* counter increment over this window *)
  | P_gauge of float  (* gauge value at sample time *)
  | P_hist of hwin

type window = {
  w_ts : float;  (* unix seconds of the sample closing this window *)
  w_dt : float;  (* seconds the window covers *)
  w_points : (key * point) list;  (* registry order, preserved by save/load *)
}

(* Previous cumulative state, for delta computation. *)
type prev =
  | PC_counter of int
  | PC_hist of { pc_count : int; pc_sum : float; pc_cum : int array }

type sampler = { mutable s_running : bool; mutable s_thread : Thread.t option }

type t = {
  registry : Metrics.t;
  resolution_s : float;
  cap : int;
  ring : window option array;
  mutable head : int;  (* next slot to write *)
  mutable filled : int;
  prevs : (key, prev) Hashtbl.t;
  mutable last_ts : float;  (* 0. before the first sample *)
  mutable smp : sampler option;
  mu : Mutex.t;
}

let create ?(registry = Metrics.default) ?(resolution_s = 1.0) ?(capacity = 3600)
    () =
  if resolution_s <= 0. then
    invalid_arg "Tsdb.create: resolution must be positive";
  if capacity < 1 then invalid_arg "Tsdb.create: capacity must be >= 1";
  {
    registry;
    resolution_s;
    cap = capacity;
    ring = Array.make capacity None;
    head = 0;
    filled = 0;
    prevs = Hashtbl.create 64;
    last_ts = 0.;
    smp = None;
    mu = Mutex.create ();
  }

let default = create ()

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
      Mutex.unlock t.mu;
      v
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let capacity t = t.cap
let resolution_s t = t.resolution_s
let window_count t = locked t (fun () -> t.filled)

(* --- Sampling --------------------------------------------------------------- *)

let push t w =
  t.ring.(t.head) <- Some w;
  t.head <- (t.head + 1) mod t.cap;
  if t.filled < t.cap then t.filled <- t.filled + 1

let hist_delta prev (h : Metrics.hview) =
  let cum = h.Metrics.hv_cumulative in
  let n = Array.length cum in
  let prev_cum, prev_count, prev_sum =
    match prev with
    | Some (PC_hist p) when p.pc_count <= h.Metrics.hv_count ->
        (p.pc_cum, p.pc_count, p.pc_sum)
    (* first sight or registry reset: the whole current state is this
       window's increment *)
    | _ -> ([||], 0, 0.)
  in
  let w_count = h.Metrics.hv_count - prev_count in
  if w_count <= 0 then None
  else begin
    let at a i = if i >= 0 && i < Array.length a then a.(i) else 0 in
    let buckets = ref [] in
    for i = n - 1 downto 0 do
      let now_b = cum.(i) - if i = 0 then 0 else cum.(i - 1) in
      let then_b = at prev_cum i - if i = 0 then 0 else at prev_cum (i - 1) in
      let inc = now_b - then_b in
      if inc > 0 then buckets := (i, inc) :: !buckets
    done;
    Some { w_count; w_sum = h.Metrics.hv_sum -. prev_sum; w_buckets = !buckets }
  end

let sample t =
  let now = Unix.gettimeofday () in
  let fams = Metrics.export t.registry in
  locked t @@ fun () ->
  let dt = if t.last_ts > 0. then now -. t.last_ts else t.resolution_s in
  let dt = if dt <= 0. then t.resolution_s else dt in
  let points = ref [] in
  List.iter
    (fun (f : Metrics.family_view) ->
      List.iter
        (fun (labels, v) ->
          let key = (f.Metrics.fv_name, labels) in
          match v with
          | Metrics.V_counter c ->
              let d =
                match Hashtbl.find_opt t.prevs key with
                | Some (PC_counter p) when p <= c -> c - p
                | _ -> c  (* first sight or counter reset *)
              in
              Hashtbl.replace t.prevs key (PC_counter c);
              points := (key, P_rate (float_of_int d)) :: !points
          | Metrics.V_gauge g -> points := (key, P_gauge g) :: !points
          | Metrics.V_histogram h ->
              let prev = Hashtbl.find_opt t.prevs key in
              let delta = hist_delta prev h in
              Hashtbl.replace t.prevs key
                (PC_hist
                   {
                     pc_count = h.Metrics.hv_count;
                     pc_sum = h.Metrics.hv_sum;
                     pc_cum = Array.copy h.Metrics.hv_cumulative;
                   });
              Option.iter
                (fun hw -> points := (key, P_hist hw) :: !points)
                delta)
        f.Metrics.fv_series)
    fams;
  push t { w_ts = now; w_dt = dt; w_points = List.rev !points };
  t.last_ts <- now

(* --- Range queries ------------------------------------------------------------ *)

type agg = Rate | Sum | Avg | Min | Max | Quantile of float

let agg_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "rate" -> Some Rate
  | "sum" -> Some Sum
  | "avg" | "mean" -> Some Avg
  | "min" -> Some Min
  | "max" -> Some Max
  | s when String.length s > 1 && s.[0] = 'p' -> (
      (* p50, p99, p999 -> 0.5, 0.99, 0.999 *)
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some n when n >= 0 ->
          let digits = String.length s - 1 in
          Some (Quantile (float_of_int n /. (10. ** float_of_int digits)))
      | _ -> None)
  | _ -> None

let agg_to_string = function
  | Rate -> "rate"
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"
  | Quantile q ->
      let s = Printf.sprintf "%g" (q *. 100.) in
      "p"
      ^ String.concat "" (String.split_on_char '.' s)

let labels_match ~want have =
  List.for_all (fun (k, v) -> List.assoc_opt k have = Some v) want

(* Quantile over merged sparse bucket increments: rank search with
   linear interpolation inside the covering power-of-two bucket. *)
let quantile_of_buckets buckets total q =
  if total <= 0 then None
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) buckets in
    let rec go cum = function
      | [] -> None
      | (i, c) :: rest ->
          if cum + c >= rank then begin
            let lo = if i = 0 then 0. else ldexp 1. i in
            let hi = ldexp 1. (i + 1) in
            let frac = float_of_int (rank - cum) /. float_of_int c in
            Some (lo +. (frac *. (hi -. lo)))
          end
          else go (cum + c) rest
    in
    go 0 sorted
  end

(* One aggregation bucket being accumulated across windows/series. *)
type accum = {
  mutable a_delta : float;  (* summed counter increments *)
  mutable a_dt : float;  (* summed window durations (counted once per window) *)
  mutable a_gsum : float;  (* gauge sum, for avg *)
  mutable a_gn : int;  (* gauge samples *)
  mutable a_min : float;
  mutable a_max : float;
  mutable a_hcount : int;
  mutable a_hsum : float;
  mutable a_hbuckets : (int, int) Hashtbl.t;
  mutable a_touched : bool;
}

let fresh_accum () =
  {
    a_delta = 0.;
    a_dt = 0.;
    a_gsum = 0.;
    a_gn = 0;
    a_min = infinity;
    a_max = neg_infinity;
    a_hcount = 0;
    a_hsum = 0.;
    a_hbuckets = Hashtbl.create 8;
    a_touched = false;
  }

let finish agg a =
  if not a.a_touched then None
  else
    match agg with
    | Rate -> if a.a_dt > 0. then Some (a.a_delta /. a.a_dt) else None
    | Sum ->
        Some
          (if a.a_gn > 0 then a.a_gsum
           else if a.a_hcount > 0 then a.a_hsum
           else a.a_delta)
    | Avg ->
        if a.a_gn > 0 then Some (a.a_gsum /. float_of_int a.a_gn)
        else if a.a_hcount > 0 then Some (a.a_hsum /. float_of_int a.a_hcount)
        else if a.a_dt > 0. then Some (a.a_delta /. a.a_dt)
        else None
    | Min -> if a.a_min < infinity then Some a.a_min else None
    | Max -> if a.a_max > neg_infinity then Some a.a_max else None
    | Quantile q ->
        let buckets =
          Hashtbl.fold (fun i c acc -> (i, c) :: acc) a.a_hbuckets []
        in
        quantile_of_buckets buckets a.a_hcount q

let feed a point =
  match point with
  | P_rate d ->
      a.a_touched <- true;
      a.a_delta <- a.a_delta +. d;
      if d < a.a_min then a.a_min <- d;
      if d > a.a_max then a.a_max <- d
  | P_gauge g ->
      a.a_touched <- true;
      a.a_gsum <- a.a_gsum +. g;
      a.a_gn <- a.a_gn + 1;
      if g < a.a_min then a.a_min <- g;
      if g > a.a_max then a.a_max <- g
  | P_hist h ->
      a.a_touched <- true;
      a.a_hcount <- a.a_hcount + h.w_count;
      a.a_hsum <- a.a_hsum +. h.w_sum;
      List.iter
        (fun (i, c) ->
          let cur = Option.value ~default:0 (Hashtbl.find_opt a.a_hbuckets i) in
          Hashtbl.replace a.a_hbuckets i (cur + c))
        h.w_buckets

(* Windows oldest-first. *)
let windows_unlocked t =
  let out = ref [] in
  for k = t.filled downto 1 do
    let idx = (t.head - k + (t.cap * 2)) mod t.cap in
    match t.ring.(idx) with Some w -> out := w :: !out | None -> ()
  done;
  List.rev !out

let windows t = locked t (fun () -> windows_unlocked t)

let range t ?(labels = []) ?step_s ~window_s ~agg name =
  let step =
    match step_s with
    | Some s when s > 0. -> s
    | _ -> t.resolution_s
  in
  let now = Unix.gettimeofday () in
  let t0 = now -. window_s in
  let nsteps = max 1 (int_of_float (ceil (window_s /. step))) in
  let accums = Array.init nsteps (fun _ -> fresh_accum ()) in
  let ws = windows t in
  List.iter
    (fun w ->
      if w.w_ts > t0 && w.w_ts <= now then begin
        let slot =
          min (nsteps - 1) (int_of_float ((w.w_ts -. t0) /. step))
        in
        let a = accums.(slot) in
        let window_counted = ref false in
        List.iter
          (fun ((n, ls), p) ->
            if n = name && labels_match ~want:labels ls then begin
              if not !window_counted then begin
                a.a_dt <- a.a_dt +. w.w_dt;
                window_counted := true
              end;
              feed a p
            end)
          w.w_points
      end)
    ws;
  Array.to_list
    (Array.mapi
       (fun i a -> (t0 +. ((float_of_int i +. 1.) *. step), finish agg a))
       accums)

(* Series present anywhere in the ring: name -> kind ("rate"|"gauge"|"hist"),
   for the dashboard's metric listing. *)
let series t =
  let seen = Hashtbl.create 32 in
  List.iter
    (fun w ->
      List.iter
        (fun ((n, _), p) ->
          let kind =
            match p with P_rate _ -> "rate" | P_gauge _ -> "gauge" | P_hist _ -> "hist"
          in
          if not (Hashtbl.mem seen n) then Hashtbl.replace seen n kind)
        w.w_points)
    (windows t);
  Hashtbl.fold (fun n k acc -> (n, k) :: acc) seen []
  |> List.sort compare

(* --- Persistence --------------------------------------------------------------- *)

(* JSON-lines: a header line, then one line per window oldest-first.
   Json.to_string renders floats with round-tripping precision and
   preserves field/element order, so load∘save is the identity on the
   serialized text (byte-identical round-trips, asserted in tests). *)

let json_of_labels ls =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) ls)

let labels_of_json j =
  match j with
  | Json.Obj fields -> List.map (fun (k, v) -> (k, Json.str v)) fields
  | _ -> []

let json_of_point ((name, ls), p) =
  let base = [ ("name", Json.Str name); ("labels", json_of_labels ls) ] in
  match p with
  | P_rate d -> Json.Obj (base @ [ ("kind", Json.Str "rate"); ("v", Json.Num d) ])
  | P_gauge g ->
      Json.Obj (base @ [ ("kind", Json.Str "gauge"); ("v", Json.Num g) ])
  | P_hist h ->
      Json.Obj
        (base
        @ [
            ("kind", Json.Str "hist");
            ("count", Json.Num (float_of_int h.w_count));
            ("sum", Json.Num h.w_sum);
            ( "buckets",
              Json.Arr
                (List.map
                   (fun (i, c) ->
                     Json.Arr [ Json.Num (float_of_int i); Json.Num (float_of_int c) ])
                   h.w_buckets) );
          ])

let point_of_json j =
  let name = Json.str (Json.member "name" j) in
  let ls = labels_of_json (Json.member "labels" j) in
  let p =
    match Json.str (Json.member "kind" j) with
    | "rate" -> P_rate (Json.to_float (Json.member "v" j))
    | "gauge" -> P_gauge (Json.to_float (Json.member "v" j))
    | "hist" ->
        P_hist
          {
            w_count = Json.to_int (Json.member "count" j);
            w_sum = Json.to_float (Json.member "sum" j);
            w_buckets =
              List.map
                (fun pair ->
                  match Json.arr pair with
                  | [ i; c ] -> (Json.to_int i, Json.to_int c)
                  | _ -> raise (Json.Parse_error "Tsdb: malformed bucket pair"))
                (Json.arr (Json.member "buckets" j));
          }
    | k -> raise (Json.Parse_error ("Tsdb: unknown point kind " ^ k))
  in
  ((name, ls), p)

let to_json_lines t =
  let ws = windows t in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Json.to_string
       (Json.Obj
          [
            ("tsdb", Json.Num 1.);
            ("resolution_s", Json.Num t.resolution_s);
            ("capacity", Json.Num (float_of_int t.cap));
          ]));
  Buffer.add_char b '\n';
  List.iter
    (fun w ->
      Buffer.add_string b
        (Json.to_string
           (Json.Obj
              [
                ("ts", Json.Num w.w_ts);
                ("dt", Json.Num w.w_dt);
                ("points", Json.Arr (List.map json_of_point w.w_points));
              ]));
      Buffer.add_char b '\n')
    ws;
  Buffer.contents b

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json_lines t))

let of_json_lines text =
  match Json.lines text with
  | [] -> raise (Json.Parse_error "Tsdb: empty document")
  | header :: rest ->
      if Json.member "tsdb" header = Json.Null then
        raise (Json.Parse_error "Tsdb: missing header line");
      let resolution_s = Json.to_float (Json.member "resolution_s" header) in
      let capacity = Json.to_int (Json.member "capacity" header) in
      let t = create ~resolution_s ~capacity () in
      List.iter
        (fun j ->
          let w =
            {
              w_ts = Json.to_float (Json.member "ts" j);
              w_dt = Json.to_float (Json.member "dt" j);
              w_points = List.map point_of_json (Json.arr (Json.member "points" j));
            }
          in
          push t w;
          t.last_ts <- w.w_ts)
        rest;
      t

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic n)
  in
  of_json_lines text

(* --- The sampler thread ------------------------------------------------------------ *)

let loop t s =
  (* sleep in short slices so [stop] returns promptly *)
  let rec nap remaining =
    if s.s_running && remaining > 0. then begin
      Thread.delay (Float.min remaining 0.05);
      nap (remaining -. 0.05)
    end
  in
  while s.s_running do
    (try sample t with _ -> ());
    nap t.resolution_s
  done

let start t =
  let go =
    locked t (fun () ->
        match t.smp with
        | Some s when s.s_running -> None
        | _ ->
            let s = { s_running = true; s_thread = None } in
            t.smp <- Some s;
            Some s)
  in
  match go with
  | None -> ()
  | Some s -> s.s_thread <- Some (Thread.create (fun () -> loop t s) ())

let running t =
  locked t (fun () -> match t.smp with Some s -> s.s_running | None -> false)

let stop t =
  let s = locked t (fun () -> t.smp) in
  match s with
  | Some s when s.s_running ->
      s.s_running <- false;
      Option.iter Thread.join s.s_thread;
      s.s_thread <- None;
      locked t (fun () -> t.smp <- None)
  | _ -> ()
