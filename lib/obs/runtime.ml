(* Runtime resource telemetry: GC and process health as gauges.

   Everything else in lib/obs measures *queries*; this module measures
   the *process* an operator watches — collection counts, heap size,
   allocation, uptime, the journal sink — published into the default
   Metrics registry so the same /metrics page (and the alerting engine)
   sees them.  Sampling is explicit ([sample]) or periodic ([start]
   spawns a ticker thread that samples and then runs an optional
   callback, which is where the alert evaluator hooks in).

   [Gc.quick_stat] fills every counter we publish without walking the
   heap; live words need a full [Gc.stat] heap traversal, so they are
   only refreshed when a sample asks for them ([~full:true]). *)

let started_ns = Mclock.now_ns ()
let bytes_per_word = float_of_int (Sys.word_size / 8)

let g name help = Metrics.gauge ~help name

let g_uptime = g "process_uptime_seconds" "seconds since the process started"

let g_allocated =
  g "process_allocated_bytes" "total bytes allocated by the process (Gc.allocated_bytes)"

let g_minor = g "gc_minor_collections" "completed minor collections"
let g_major = g "gc_major_collections" "completed major collection cycles"
let g_compactions = g "gc_compactions" "completed heap compactions"
let g_heap_words = g "gc_heap_words" "total size of the major heap, in words"

let g_top_heap_words =
  g "gc_top_heap_words" "largest size the major heap ever reached, in words"

let g_live_words =
  g "gc_live_words" "live data in the major heap, in words (full samples only)"

let g_promoted =
  g "gc_promoted_bytes" "bytes promoted from the minor to the major heap"

let g_sink =
  g "qlog_sink_bytes" "bytes in the live query-journal file (0 when disabled)"

let sample ?(full = false) () =
  let s = Gc.quick_stat () in
  Metrics.set g_uptime (float_of_int (Mclock.now_ns () - started_ns) /. 1e9);
  Metrics.set g_allocated (Gc.allocated_bytes ());
  Metrics.set g_minor (float_of_int s.Gc.minor_collections);
  Metrics.set g_major (float_of_int s.Gc.major_collections);
  Metrics.set g_compactions (float_of_int s.Gc.compactions);
  Metrics.set g_heap_words (float_of_int s.Gc.heap_words);
  Metrics.set g_top_heap_words (float_of_int s.Gc.top_heap_words);
  Metrics.set g_promoted (s.Gc.promoted_words *. bytes_per_word);
  if full then Metrics.set g_live_words (float_of_int (Gc.stat ()).Gc.live_words);
  Metrics.set g_sink (float_of_int (Qlog.sink_bytes ()))

(* --- The ticker ----------------------------------------------------------- *)

type ticker = {
  period : float;
  full : bool;
  on_tick : (unit -> unit) option;
  mutable running : bool;
  mutable thread : Thread.t option;
}

let tick_of t =
  sample ~full:t.full ();
  match t.on_tick with
  | Some f -> ( try f () with _ -> ())
  | None -> ()

let loop t =
  (* sleep in short slices so [stop] returns promptly *)
  let rec nap remaining =
    if t.running && remaining > 0. then begin
      Thread.delay (Float.min remaining 0.05);
      nap (remaining -. 0.05)
    end
  in
  while t.running do
    tick_of t;
    nap t.period
  done

let start ?(period = 1.0) ?(full = false) ?on_tick () =
  if period <= 0. then invalid_arg "Runtime.start: period must be positive";
  let t = { period; full; on_tick; running = true; thread = None } in
  t.thread <- Some (Thread.create loop t);
  t

let stop t =
  if t.running then begin
    t.running <- false;
    Option.iter Thread.join t.thread;
    t.thread <- None
  end
