(* Prometheus text exposition (format version 0.0.4) over the metrics
   registry.

   The registry's internal names are already exposition-friendly, but
   nothing forces callers' label values to be, so this module owns the
   sanitization rules: metric names match [a-zA-Z_:][a-zA-Z0-9_:]*,
   label names match [a-zA-Z_][a-zA-Z0-9_]*, offending characters
   become '_' and a leading digit gets a '_' prefix.  Label values are
   escaped per the exposition grammar (backslash, quote, newline).

   Histograms export the standard cumulative form — one
   [name_bucket{le="..."}] series per power-of-two boundary up to the
   highest populated bucket, an [le="+Inf"] bucket equal to the count,
   plus [name_sum] and [name_count] — so a Prometheus scraper can
   recompute quantiles with histogram_quantile(). *)

let sanitize ~colon s =
  if s = "" then "_"
  else begin
    let b = Bytes.of_string s in
    Bytes.iteri
      (fun i c ->
        let ok =
          (c >= 'a' && c <= 'z')
          || (c >= 'A' && c <= 'Z')
          || c = '_'
          || (colon && c = ':')
          || (i > 0 && c >= '0' && c <= '9')
        in
        if not ok then Bytes.set b i '_')
      b;
    (* a leading digit was rewritten to '_' above, so the result always
       starts with a legal first character *)
    Bytes.to_string b
  end

let sanitize_name s = sanitize ~colon:true s
let sanitize_label s = sanitize ~colon:false s

(* Label-value escaping per the exposition grammar. *)
let escape_value s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* HELP text: escape backslash and newline only (quotes are legal). *)
let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Sample values: integral floats render without a fraction, everything
   else with enough digits to round-trip. *)
let fmt_value v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

(* Bucket boundaries are exact powers of two; print them in full. *)
let fmt_bound v = Printf.sprintf "%.0f" v

let labels_text = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize_label k) (escape_value v))
             labels)
      ^ "}"

(* labels plus an [le] bound, for histogram bucket series *)
let labels_le labels le =
  labels_text (labels @ [ ("le", le) ])

let content_type = "text/plain; version=0.0.4; charset=utf-8"

let content_type_openmetrics =
  "application/openmetrics-text; version=1.0.0; charset=utf-8"

(* OpenMetrics exemplar suffix: [# {trace_id="..."} value timestamp].
   The exemplar rides the bucket its observation landed in, so its
   value is always within the bucket's range as the spec requires. *)
let exemplar_text (ex : Metrics.exemplar) =
  Printf.sprintf " # {trace_id=\"%s\"} %s %.3f"
    (escape_value ex.Metrics.ex_trace_id)
    (fmt_value ex.Metrics.ex_value)
    ex.Metrics.ex_ts

let render ~openmetrics registry =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun (f : Metrics.family_view) ->
      let name = sanitize_name f.Metrics.fv_name in
      if f.Metrics.fv_help <> "" then
        line "# HELP %s %s" name (escape_help f.Metrics.fv_help);
      line "# TYPE %s %s" name f.Metrics.fv_kind;
      List.iter
        (fun (labels, v) ->
          match v with
          | Metrics.V_counter c -> line "%s%s %d" name (labels_text labels) c
          | Metrics.V_gauge g ->
              line "%s%s %s" name (labels_text labels) (fmt_value g)
          | Metrics.V_histogram h ->
              let cum = h.Metrics.hv_cumulative in
              (* the highest populated bucket bounds the useful series *)
              let top = ref 0 in
              Array.iteri
                (fun i c -> if (i = 0 && c > 0) || c > cum.(max 0 (i - 1)) then top := i)
                cum;
              for i = 0 to !top do
                let ex =
                  if openmetrics then
                    match List.assoc_opt i h.Metrics.hv_exemplars with
                    | Some e -> exemplar_text e
                    | None -> ""
                  else ""
                in
                line "%s_bucket%s %d%s" name
                  (labels_le labels (fmt_bound (Metrics.bucket_upper i)))
                  cum.(i) ex
              done;
              line "%s_bucket%s %d" name (labels_le labels "+Inf")
                h.Metrics.hv_count;
              line "%s_sum%s %s" name (labels_text labels)
                (fmt_value h.Metrics.hv_sum);
              line "%s_count%s %d" name (labels_text labels)
                h.Metrics.hv_count)
        f.Metrics.fv_series)
    (Metrics.export registry);
  if openmetrics then Buffer.add_string b "# EOF\n";
  Buffer.contents b

let to_text registry = render ~openmetrics:false registry
let to_openmetrics registry = render ~openmetrics:true registry
