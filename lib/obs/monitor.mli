(** The live introspection server: a dependency-free HTTP endpoint over
    [Unix] sockets, serving the observability surface while the process
    runs.

    Built-in routes: [/] (index), [/metrics] (OpenMetrics exposition
    of the registry, histogram exemplars included), [/healthz]
    (liveness JSON: uptime, request count, journal sink size and
    rotation limits, firing-alert count), [/alerts] (the default
    {!Alerts} evaluator's rules, states and transition history as
    JSON), [/slowlog] (slow-query captures as JSON lines, each
    annotated with whether its trace is tail-retained), [/trace]
    (recent trace summaries), [/trace/<sel>] (one trace as Chrome
    trace-event JSON; [sel] is an index into the recent ring, a trace
    id — tail-retained ids resolve too — or [last]), [/tail] (the
    {!Tail} sampler's retained traces), [/range] (a {!Tsdb} range
    query: [?metric=NAME&agg=p99&window=300&step=2], extra params act
    as label matchers), [/dashboard] (the self-contained live HTML
    dashboard), [/planstats] (the default {!Planstats} store's q-error
    summaries + calibration) and [/workload] (its top plans by wall
    time).  Layers above [lib/obs] add their own routes (the shell
    registers [/cache]) with {!add_handler}.

    The endpoint observes itself:
    [monitor_requests_total{route,status}] counters and a
    [monitor_request_ns{route}] histogram (routes truncated to their
    first path segment), plus a [monitor_open_connections] gauge.
    Each connection gets send/receive deadlines so one stalled client
    cannot wedge the accept thread past the timeout.

    [GET] and [HEAD] are served (HEAD returns the GET response's
    headers — [Content-Length] included — with the body withheld);
    every other method gets a [405], and every response, errors
    included, carries [Content-Length].

    The accept loop runs in one system thread and serves requests
    serially; handlers read the process's single-threaded observability
    state, which is safe for monitoring reads.  Monitoring is opt-in:
    nothing listens until {!start}. *)

type t

type response = { status : int; content_type : string; body : string }

val respond : ?status:int -> ?content_type:string -> string -> response
(** [status] defaults to 200, [content_type] to [text/plain]. *)

val start :
  ?registry:Metrics.t -> ?client_timeout_s:float -> port:int -> unit -> t
(** Bind the loopback interface on [port] (0 picks a free port — see
    {!port}) and start serving.  [registry] defaults to
    {!Metrics.default}; [client_timeout_s] (default 2.0) sets each
    connection's send/receive deadline.
    @raise Unix.Unix_error when the port is taken. *)

val port : t -> int
(** The bound port (useful after [start ~port:0]). *)

val stop : t -> unit
(** Stop serving, join the accept thread and close the socket.
    Idempotent. *)

val add_handler : t -> string -> (string -> response option) -> unit
(** [add_handler t name fn] consults [fn] with each request target
    (query string included — {!split_target} parses it) before the
    built-in routes; [None] falls through.  [name] only labels the
    handler. *)

val split_target : string -> string * (string * string) list
(** [split_target "/p?a=1&b=x%20y"] is [("/p", [("a","1"); ("b","x y")])]:
    the path and the url-decoded query parameters in order.  Shared
    with the serving front-end's request parsing. *)

val url_decode : string -> string

val get : ?host:string -> port:int -> string -> int * string
(** A minimal loopback HTTP client: GET the path and return
    [(status, body)].  Used by the bench harness to scrape its own
    [/metrics] mid-run, and by the tests.
    @raise Unix.Unix_error when nothing listens. *)

val request :
  ?host:string ->
  ?meth:string ->
  ?body:string ->
  port:int ->
  string ->
  int * (string * string) list * string
(** Like {!get} but with a chosen method, an optional request [body]
    (sent with its [Content-Length] — the serving front-end's
    [POST /query]) and the response headers (names lowercased) — what
    the HEAD/Content-Length tests and [curl -I]-style checks need.
    [meth] defaults to ["GET"].
    @raise Unix.Unix_error when nothing listens. *)

(** {1 HTTP plumbing shared with the serving front-end}

    [lib/srv] speaks the same minimal HTTP/1.1 as this endpoint; it
    reuses the head builder and response writer rather than growing a
    second implementation. *)

val http_head :
  ?content_type:string ->
  ?headers:(string * string) list ->
  ?content_length:int ->
  int ->
  string
(** The status line and header block (terminated by the blank line) for
    a [Connection: close] response.  Omitting [content_length] yields a
    streamed, EOF-delimited response head. *)

val write_response : Unix.file_descr -> head_only:bool -> response -> unit
(** Write a complete (head + body) response; [head_only] withholds the
    body (HEAD).  Write errors are swallowed — the peer hanging up
    mid-response is its own problem. *)
