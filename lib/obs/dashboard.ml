(* The live dashboard: one self-contained HTML page over the flight
   recorder.

   Everything is inline — styles, script, SVG — so the page works from
   `curl http://127.0.0.1:PORT/dashboard > dash.html` as well as live,
   with zero external assets (the monitor serves operators on loopback,
   possibly on machines with no internet).  The page polls the
   monitor's own JSON routes — /range for each sparkline panel, /alerts
   and /tail for the tables — and renders inline SVG polylines
   client-side.  The server ships no data in the page itself, so this
   string is a constant. *)

(* Panels: title, unit label, and the /range series to overlay.  scale
   divides raw values before display (ns -> ms).  Kept as data here so
   the shell's `:top` sparklines and the page agree on what matters. *)
let panels =
  [
    ( "served latency (ms)",
      [
        ("srv_request_ns", "p99", 1e6, "#e4572e", "p99");
        ("srv_request_ns", "p50", 1e6, "#4c9f70", "p50");
      ] );
    ("request rate (/s)", [ ("srv_requests_total", "rate", 1., "#2274a5", "") ]);
    ("shed rate (/s)", [ ("srv_shed_total", "rate", 1., "#e4572e", "") ]);
    ("queue depth", [ ("srv_queue_depth", "avg", 1., "#2274a5", "") ]);
    ( "engine latency (ms)",
      [ ("engine_query_ns", "p99", 1e6, "#815ac0", "p99") ] );
    ( "max resident pages",
      [ ("srv_engine_max_resident_pages", "max", 1., "#4c9f70", "") ] );
    ("gc heap (Mwords)", [ ("gc_heap_words", "avg", 1e6, "#815ac0", "") ]);
    ( "tail-retained spans",
      [ ("trace_tail_retained_spans", "avg", 1., "#b07d2b", "") ] );
  ]

let panel_json () =
  Json.to_string
    (Json.Arr
       (List.map
          (fun (title, series) ->
            Json.Obj
              [
                ("title", Json.Str title);
                ( "series",
                  Json.Arr
                    (List.map
                       (fun (metric, agg, scale, color, label) ->
                         Json.Obj
                           [
                             ("metric", Json.Str metric);
                             ("agg", Json.Str agg);
                             ("scale", Json.Num scale);
                             ("color", Json.Str color);
                             ("label", Json.Str label);
                           ])
                       series) );
              ])
          panels))

let page () =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    {html|<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>ndq flight recorder</title>
<style>
  :root { color-scheme: light dark; }
  body { font: 13px/1.45 ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 1.2em; background: #fafafa; color: #222; }
  @media (prefers-color-scheme: dark) {
    body { background: #14161a; color: #d8d8d8; }
    .panel { background: #1c2026 !important; border-color: #2a2f37 !important; }
    table { border-color: #2a2f37 !important; }
    td, th { border-color: #2a2f37 !important; }
  }
  h1 { font-size: 16px; margin: 0 0 .2em 0; }
  #meta { color: #888; margin-bottom: 1em; }
  #grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(300px, 1fr));
          gap: 10px; }
  .panel { background: #fff; border: 1px solid #ddd; border-radius: 6px;
           padding: 8px 10px; }
  .panel h2 { font-size: 12px; font-weight: 600; margin: 0 0 4px 0; }
  .panel .now { float: right; font-weight: 400; color: #888; }
  svg { width: 100%; height: 64px; display: block; }
  .tables { display: grid; grid-template-columns: repeat(auto-fill, minmax(460px, 1fr));
            gap: 10px; margin-top: 1em; }
  table { width: 100%; border-collapse: collapse; border: 1px solid #ddd;
          font-size: 12px; }
  caption { text-align: left; font-weight: 600; padding: 4px 0; }
  td, th { border: 1px solid #ddd; padding: 2px 6px; text-align: left; }
  th { font-weight: 600; }
  .firing { color: #e4572e; font-weight: 600; }
  .pending { color: #b07d2b; }
  .resolved, .ok { color: #4c9f70; }
  a { color: inherit; }
</style>
</head>
<body>
<h1>ndq flight recorder</h1>
<div id="meta">loading&hellip;</div>
<div id="grid"></div>
<div class="tables">
  <table id="alerts"><caption>alerts</caption></table>
  <table id="tail"><caption>tail-sampled traces</caption></table>
</div>
<script>
"use strict";
const PANELS = |html};
  Buffer.add_string b (panel_json ());
  Buffer.add_string b
    {html|;
const WINDOW_S = 300, STEP_S = 2, W = 300, H = 64, PAD = 2;

function fmt(v) {
  if (v === null || v === undefined || !isFinite(v)) return "-";
  const a = Math.abs(v);
  if (a >= 1000) return v.toFixed(0);
  if (a >= 10) return v.toFixed(1);
  if (a >= 0.01 || a === 0) return v.toFixed(2);
  return v.toExponential(1);
}

// One polyline per series; null points split the line into segments.
function sparkline(seriesData) {
  let lo = Infinity, hi = -Infinity;
  for (const s of seriesData)
    for (const [, v] of s.points)
      if (v !== null) { lo = Math.min(lo, v); hi = Math.max(hi, v); }
  if (!isFinite(lo)) return '<svg viewBox="0 0 ' + W + ' ' + H + '"></svg>';
  if (hi - lo < 1e-12) { hi += 1; lo -= (lo > 0.5 ? 0.5 : lo); }
  const n = Math.max(...seriesData.map(s => s.points.length), 2);
  const x = i => PAD + i * (W - 2 * PAD) / (n - 1);
  const y = v => H - PAD - (v - lo) * (H - 2 * PAD) / (hi - lo);
  let out = '<svg viewBox="0 0 ' + W + ' ' + H + '" preserveAspectRatio="none">';
  for (const s of seriesData) {
    let seg = [];
    const flush = () => {
      if (seg.length > 1)
        out += '<polyline fill="none" stroke="' + s.color +
               '" stroke-width="1.5" points="' + seg.join(' ') + '"/>';
      else if (seg.length === 1)
        out += '<circle cx="' + seg[0].split(',')[0] + '" cy="' +
               seg[0].split(',')[1] + '" r="1.5" fill="' + s.color + '"/>';
      seg = [];
    };
    s.points.forEach(([, v], i) => {
      if (v === null) flush();
      else seg.push(x(i).toFixed(1) + ',' + y(v).toFixed(1));
    });
    flush();
  }
  out += '<text x="' + PAD + '" y="10" font-size="9" fill="#999">' +
         fmt(hi) + '</text>';
  out += '<text x="' + PAD + '" y="' + (H - 3) + '" font-size="9" fill="#999">' +
         fmt(lo) + '</text>';
  return out + '</svg>';
}

async function rangeOf(s) {
  const url = '/range?metric=' + encodeURIComponent(s.metric) +
              '&agg=' + s.agg + '&window=' + WINDOW_S + '&step=' + STEP_S;
  const r = await fetch(url);
  if (!r.ok) return { color: s.color, points: [], label: s.label, last: null };
  const j = await r.json();
  const points = j.points.map(([t, v]) => [t, v === null ? null : v / s.scale]);
  let last = null;
  for (const [, v] of points) if (v !== null) last = v;
  return { color: s.color, points, label: s.label, last };
}

function panelDiv(i) {
  let d = document.getElementById('panel' + i);
  if (!d) {
    d = document.createElement('div');
    d.className = 'panel';
    d.id = 'panel' + i;
    document.getElementById('grid').appendChild(d);
  }
  return d;
}

async function drawPanels() {
  await Promise.all(PANELS.map(async (p, i) => {
    const data = await Promise.all(p.series.map(rangeOf));
    const now = data.map(s =>
      (s.label ? s.label + '=' : '') + fmt(s.last)).join('  ');
    panelDiv(i).innerHTML =
      '<h2>' + p.title + '<span class="now">' + now + '</span></h2>' +
      sparkline(data);
  }));
}

function cell(tag, text, cls) {
  const esc = String(text).replace(/&/g, '&amp;').replace(/</g, '&lt;');
  return '<' + tag + (cls ? ' class="' + cls + '"' : '') + '>' + esc +
         '</' + tag + '>';
}

async function drawAlerts() {
  const r = await fetch('/alerts');
  if (!r.ok) return;
  const j = await r.json();
  let html = '<caption>alerts</caption><tr>' +
    ['rule', 'state', 'value', 'exemplar'].map(h => cell('th', h)).join('') +
    '</tr>';
  for (const a of (j.rules || [])) {
    const st = a.state || '?';
    html += '<tr>' + cell('td', a.name) + cell('td', st, st) +
            cell('td', fmt(a.value)) +
            (a.exemplar_trace_id
             ? '<td><a href="/trace/' + a.exemplar_trace_id + '">' +
               a.exemplar_trace_id + '</a></td>'
             : cell('td', '-')) + '</tr>';
  }
  document.getElementById('alerts').innerHTML = html;
}

async function drawTail() {
  const r = await fetch('/tail');
  if (!r.ok) return;
  const j = await r.json();
  let html = '<caption>tail-sampled traces (' + (j.retained_spans || 0) +
    '/' + (j.budget_spans || 0) + ' spans)</caption><tr>' +
    ['trace', 'reason', 'origin', 'wall ms', 'spans'].map(h => cell('th', h))
      .join('') + '</tr>';
  for (const t of (j.traces || []).slice(0, 20)) {
    html += '<tr><td><a href="/trace/' + t.trace_id + '">' + t.trace_id +
            '</a></td>' + cell('td', t.reason) + cell('td', t.origin) +
            cell('td', fmt(t.wall_ns / 1e6)) + cell('td', t.spans) + '</tr>';
  }
  document.getElementById('tail').innerHTML = html;
}

async function tick() {
  if (document.hidden) return;
  try {
    await Promise.all([drawPanels(), drawAlerts(), drawTail()]);
    document.getElementById('meta').textContent =
      'window ' + WINDOW_S + 's · step ' + STEP_S +
      's · refreshed ' + new Date().toLocaleTimeString();
  } catch (e) {
    document.getElementById('meta').textContent = 'refresh failed: ' + e;
  }
}

tick();
setInterval(tick, 2000);
</script>
</body>
</html>
|html};
  Buffer.contents b
