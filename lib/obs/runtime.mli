(** Runtime resource telemetry: GC and process health gauges.

    Publishes into the default {!Metrics} registry, so the same
    [/metrics] exposition (and the {!Alerts} evaluator) covers process
    health alongside query counters:

    - [process_uptime_seconds], [process_allocated_bytes]
    - [gc_minor_collections], [gc_major_collections], [gc_compactions]
    - [gc_heap_words], [gc_top_heap_words], [gc_live_words],
      [gc_promoted_bytes]
    - [qlog_sink_bytes] (the live query-journal file's size)

    Gauges only change when sampled: call {!sample} explicitly (the
    bench harness does, between experiments) or {!start} a ticker
    thread (the shell does while the monitor serves). *)

val sample : ?full:bool -> unit -> unit
(** Refresh every gauge from [Gc.quick_stat].  With [full] (default
    [false]) also refresh [gc_live_words], which requires a full
    [Gc.stat] heap traversal. *)

type ticker

val start :
  ?period:float -> ?full:bool -> ?on_tick:(unit -> unit) -> unit -> ticker
(** Spawn a thread that {!sample}s every [period] seconds (default 1.0)
    and then runs [on_tick] — the alert evaluator's hook (exceptions
    from it are swallowed).  One sample happens immediately.
    @raise Invalid_argument when [period <= 0]. *)

val stop : ticker -> unit
(** Stop and join the ticker thread.  Idempotent. *)
