(** The query journal: an append-only, JSON-lines record of every query
    evaluated, with slow-query promotion to full captures.

    One event per query: text, normalized plan fingerprint, result
    cardinality, page reads/writes, wall nanoseconds, outcome, and
    per-operator cost rows lifted from the {!Trace} span tree.  Queries
    at or above the threshold additionally carry a capture (rendered
    span tree + rendered estimated plan) and enter the bounded
    in-memory slowlog.  Instrumented layers call {!record}; this module
    never inspects queries itself, so [lib/obs] stays below the query
    and evaluation layers.  One journal per process.

    {!record} is thread-safe: one process-wide mutex covers the
    sequence assignment, the sink append, the size-rotation check, the
    slowlog update and the {!set_on_record} observer fan-out, so
    concurrent workers can never interleave JSON lines, double-rotate a
    generation, or show an online observer a different order than the
    journal file records. *)

type op = {
  op_name : string;
  op_detail : string;
  op_rows : int option;  (** result cardinality, when annotated *)
  op_reads : int;
  op_writes : int;
  op_ns : int;
  op_alloc : int option;
      (** inclusive GC allocation delta for the span, when the tracing
          layer measured one; absent in journals written before the
          field existed *)
  op_depth : int;  (** 0 = the query's root span *)
  op_est_rows : int option;
      (** planner estimates for this operator, when the recording layer
          joined the estimated plan to the span tree; absent in events
          recorded (or journaled) before the join existed *)
  op_est_reads : int option;
  op_est_writes : int option;
  op_path : string option;
      (** access path an atomic operator took ([index|scan|cache]), when
          the recording layer annotated it; absent on non-atomic rows
          and in journals written before path selection existed *)
}

type outcome = Ok | Failed of string

type capture = {
  span_text : string;  (** rendered span tree *)
  plan_text : string;  (** rendered estimated plan *)
}

type event = {
  seq : int;  (** monotonic per process *)
  ts : float;  (** unix seconds at record time *)
  query : string;
  fingerprint : string;
  trace_id : string option;
      (** the {!Trace} id shared by the coordinator's event and every
          involved server's event for one distributed query *)
  result_count : int;
  reads : int;
  writes : int;
  wall_ns : int;
  alloc_bytes : int option;
      (** whole-query GC allocation delta ([Gc.allocated_bytes] across
          the evaluation), when the recording layer measured one; old
          journals without it still load *)
  outcome : outcome;
  est_card : int option;
      (** whole-query planner estimates (result cardinality, page reads,
          page writes), when the recording layer computed a plan; old
          journals without them still load *)
  est_reads : int option;
  est_writes : int option;
  cache : string option;
      (** result-cache outcome ([hit|miss|stale|bypass]), when the
          evaluating layer reports one *)
  path : string option;
      (** distinct access paths the query's atomics took, comma-joined
          ([index|scan|cache]), when the evaluating layer selects paths *)
  server : string option;  (** answering server (distributed evaluation) *)
  shipped : (string * int * int) list;
      (** per-server (name, messages, bytes) attribution *)
  ops : op list;  (** flattened span tree, preorder *)
  capture : capture option;  (** present iff the query was slow *)
}

(** {1 The journal sink} *)

val enable : ?append:bool -> ?max_bytes:int -> ?max_files:int -> string -> unit
(** Open (creating if needed) the journal file; [append] defaults to
    [true], the journal being append-only by design.  Closes any
    previously open journal.  With [max_bytes], the journal rotates
    once it passes that size: rotated generations shift up
    ([<path>.1] → [<path>.2] → …), the generation past [max_files]
    (default 1) is deleted, the live file becomes [<path>.1] and a
    fresh file takes over — disk use stays bounded at roughly
    [(max_files + 1) x max_bytes]. *)

val disable : unit -> unit
val enabled : unit -> bool
val path : unit -> string option

val sink_bytes : unit -> int
(** Bytes written to the live journal file so far (0 with no sink) —
    the runtime sampler publishes this as a gauge, and [/healthz]
    reports it. *)

val max_bytes : unit -> int option
(** The configured rotation size limit, if any. *)

val max_files : unit -> int
(** The configured number of rotated generations kept (>= 1). *)

val set_threshold_ns : int -> unit
(** Queries with [wall_ns >=] this are promoted to full captures
    (default 100ms; clamped to be non-negative). *)

val threshold_ns : unit -> int

val with_server : string -> (unit -> 'a) -> 'a
(** Attribute every event recorded inside the thunk to the named
    server (the distributed coordinator wraps per-server evaluation). *)

(** {1 Recording} *)

val ops_of_span : Trace.span -> op list
(** Flatten a span tree into per-operator cost rows (preorder). *)

val record :
  ?cache:string ->
  ?path:string ->
  ?server:string ->
  ?trace_id:string ->
  ?shipped:(string * int * int) list ->
  ?ops:op list ->
  ?capture:capture ->
  ?alloc_bytes:int ->
  ?est_card:int ->
  ?est_reads:int ->
  ?est_writes:int ->
  query:string ->
  fingerprint:string ->
  result_count:int ->
  reads:int ->
  writes:int ->
  wall_ns:int ->
  outcome:outcome ->
  unit ->
  event
(** Assign the next sequence number, append one JSON line to the open
    journal (if any), and stash the event in the slowlog when it
    carries a capture.  Safe to call with no journal open (the slowlog
    still collects). *)

val set_on_record : (event -> unit) option -> unit
(** Install (or clear) the event observer: called once with every event
    {!record} produces, journaled or not.  The plan-quality observatory
    hooks in here, which is what guarantees its online aggregates equal
    an offline replay of the same journal — both see the identical
    event stream in the identical order. *)

(** {1 The slowlog} *)

val slowest : int -> event list
(** The [n] slowest captured events, slowest first (bounded at 64). *)

val write_slowlog : string -> int
(** Dump the slowlog as JSON lines; returns the number of captures. *)

val clear : unit -> unit
(** Drop the slowlog and restart sequence numbering. *)

(** {1 Reading a journal back} *)

val to_json : event -> Json.t
val of_json : Json.t -> event

val load : string -> event list
(** Parse a JSON-lines journal file.
    @raise Sys_error / Json.Parse_error on unreadable input. *)

val pp_event : Format.formatter -> event -> unit
(** One-line summary (seq, wall time, outcome, cardinality, I/O,
    fingerprint, query). *)
