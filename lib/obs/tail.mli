(** Tail-based trace sampling: force-trace every request, retain only
    the trees that matter.

    The serving layer and the engine hand every completed span tree to
    {!consider}; it is retained when the outcome earns it — slower
    than {!slow_threshold_ns}, errored, shed, deadline-expired — or
    when a seeded 1-in-N sample picks it as a baseline.  Retention is
    bounded by a span-count budget; oldest traces evict first.
    Retained entries are found by trace id, which is how [/slowlog],
    alert history and OpenMetrics exemplars join back to a full
    trace.

    Thread-safe behind one mutex; retention increments
    [srv_trace_sampled_total{reason,origin}] and publishes the held
    span count as the [trace_tail_retained_spans] gauge. *)

type reason = Slow | Errored | Shed | Deadline | Sampled

val reason_to_string : reason -> string
(** ["slow" | "errored" | "shed" | "deadline" | "sampled"] *)

type outcome = [ `Ok | `Error | `Shed | `Deadline ]

type retained = {
  r_trace_id : string;
  r_reason : reason;
  r_origin : string;  (** ["srv"] or ["engine"] *)
  r_ts : float;  (** unix seconds at retention *)
  r_wall_ns : int;
  r_span : Trace.span;
}

val consider :
  origin:string -> outcome:outcome -> wall_ns:int -> Trace.span -> reason option
(** Decide and (maybe) retain one completed span tree, returning the
    retention reason.  A tree whose trace id is already retained
    replaces the old entry when it holds more spans (the server's root
    tree subsumes the engine's subtree). *)

val find : string -> retained option
(** Look up a retained trace by trace id. *)

val retained : unit -> retained list
(** All retained traces, newest first. *)

val retained_count : unit -> int

val retained_spans : unit -> int
(** Total span nodes currently held (the budgeted quantity). *)

val clear : unit -> unit

(** {1 Knobs} *)

val set_slow_threshold_ns : int -> unit
val slow_threshold_ns : unit -> int
(** Default 50ms. *)

val set_sample_every : int -> unit
val sample_every : unit -> int
(** Baseline 1-in-N sample; [0] disables.  Default 997. *)

val set_budget_spans : int -> unit
val budget_spans : unit -> int
(** Span-count retention budget (default 4096); clamps below at 1. *)

val reseed : int64 -> unit
(** Reseed the sampling stream (tests). *)
