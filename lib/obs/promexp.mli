(** Prometheus text exposition (format 0.0.4) over a {!Metrics}
    registry.

    Metric and label names are sanitized to the exposition charset,
    label values escaped per the grammar.  Histograms export the
    standard cumulative form: [name_bucket{le="..."}] per power-of-two
    boundary up to the highest populated bucket, [le="+Inf"] equal to
    the count, plus [name_sum] and [name_count]. *)

val to_text : Metrics.t -> string
(** The full exposition document, families sorted by name. *)

val content_type : string
(** The exposition content type ([text/plain; version=0.0.4; ...]). *)

val sanitize_name : string -> string
(** To [[a-zA-Z_:][a-zA-Z0-9_:]*]: offending characters become ['_'],
    a leading digit is replaced. *)

val sanitize_label : string -> string
(** Like {!sanitize_name} but [':'] is not allowed in label names. *)

val escape_value : string -> string
(** Label-value escaping: backslash, double quote and newline. *)
