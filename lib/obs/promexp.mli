(** Prometheus text exposition (format 0.0.4) over a {!Metrics}
    registry.

    Metric and label names are sanitized to the exposition charset,
    label values escaped per the grammar.  Histograms export the
    standard cumulative form: [name_bucket{le="..."}] per power-of-two
    boundary up to the highest populated bucket, [le="+Inf"] equal to
    the count, plus [name_sum] and [name_count]. *)

val to_text : Metrics.t -> string
(** The full exposition document, families sorted by name. *)

val to_openmetrics : Metrics.t -> string
(** Like {!to_text} but OpenMetrics-flavoured: histogram bucket lines
    carry exemplars ([# {trace_id="..."} value timestamp]) when the
    bucket has recorded a traced observation, and the document ends
    with the mandatory [# EOF] terminator. *)

val content_type : string
(** The exposition content type ([text/plain; version=0.0.4; ...]). *)

val content_type_openmetrics : string
(** [application/openmetrics-text; version=1.0.0; charset=utf-8]. *)

val sanitize_name : string -> string
(** To [[a-zA-Z_:][a-zA-Z0-9_:]*]: offending characters become ['_'],
    a leading digit is replaced. *)

val sanitize_label : string -> string
(** Like {!sanitize_name} but [':'] is not allowed in label names. *)

val escape_value : string -> string
(** Label-value escaping: backslash, double quote and newline. *)
