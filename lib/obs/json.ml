(* A minimal JSON value type with a parser and printer.

   The observability layer emits JSON (metrics export, the query
   journal, bench telemetry) and now also reads it back (journal
   replay, the bench perf-regression gate), so it needs a real parser —
   but only for machine-generated documents, so this stays deliberately
   small: stdlib-only, strings are UTF-8, numbers are floats (every
   value we round-trip — counts, page transfers, span nanoseconds —
   fits a double exactly). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- Printing ------------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let rec add_to b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Num v ->
      Buffer.add_string b (if Float.is_finite v then num_to_string v else "null")
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          add_to b v)
        l;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          add_to b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add_to b v;
  Buffer.contents b

(* --- Parsing ---------------------------------------------------------------- *)

type cursor = { src : string; mutable pos : int }

let fail c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some g when g = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c ("expected " ^ word)

let hex4 c =
  if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
  let v = int_of_string ("0x" ^ String.sub c.src c.pos 4) in
  c.pos <- c.pos + 4;
  v

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        (match peek c with
        | Some 'u' ->
            c.pos <- c.pos + 1;
            let v = hex4 c in
            Buffer.add_utf_8_uchar b
              (if Uchar.is_valid v then Uchar.of_int v else Uchar.rep)
        | Some ch ->
            let unescaped =
              match ch with
              | '"' -> '"'
              | '\\' -> '\\'
              | '/' -> '/'
              | 'n' -> '\n'
              | 'r' -> '\r'
              | 't' -> '\t'
              | 'b' -> '\b'
              | 'f' -> '\012'
              | _ -> fail c "bad escape"
            in
            Buffer.add_char b unescaped;
            c.pos <- c.pos + 1
        | None -> fail c "bad escape");
        go ())
    | Some ch ->
        Buffer.add_char b ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.src && is_num_char c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some v -> v
  | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (members [])
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        Arr []
      end
      else
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        Arr (elements [])
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

let lines s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         if String.trim line = "" then None else Some (of_string line))

(* --- Accessors ----------------------------------------------------------------- *)

let member k = function
  | Obj kvs -> ( match List.assoc_opt k kvs with Some v -> v | None -> Null)
  | _ -> Null

let to_float = function
  | Num v -> v
  | Null -> 0.
  | v -> raise (Parse_error ("not a number: " ^ to_string v))

let to_int v = int_of_float (to_float v)

let str = function
  | Str s -> s
  | Null -> ""
  | v -> raise (Parse_error ("not a string: " ^ to_string v))

let arr = function
  | Arr l -> l
  | Null -> []
  | v -> raise (Parse_error ("not an array: " ^ to_string v))
