(* A process-wide metrics registry: named, labeled counters, gauges and
   log-scale histograms, with text and JSON-lines exporters.

   Zero dependencies beyond the stdlib by design: the registry is a
   hashtable of metric families, each holding one series per label set.
   Histograms bucket observations by powers of two (64 buckets cover
   everything from 1 to ~9e18, i.e. sub-nanosecond to centuries when
   observations are nanoseconds), so quantile estimates carry at most a
   factor-of-two bucketing error — plenty for the order-of-magnitude
   questions this layer answers.  Handles returned by {!counter},
   {!gauge} and {!histogram} stay valid across {!reset}: resetting
   zeroes series in place rather than dropping them.

   Thread safety: the serving front-end's worker pool observes into the
   same registry from many threads, so every registration, mutation and
   export takes one process-wide mutex.  The critical sections are a
   few field updates (no allocation-heavy work happens under the lock),
   so contention stays negligible next to query evaluation. *)

type labels = (string * string) list

(* One lock for every registry: registration and observation interleave
   from worker threads, and a per-registry lock would buy nothing (the
   default registry is where everyone meets anyway). *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

let normalize labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

(* --- Series ---------------------------------------------------------------- *)

let hbuckets = 64

type exemplar = {
  ex_trace_id : string;
  ex_value : float;
  ex_ts : float;  (* unix seconds at observation time *)
}

type histogram = {
  buckets : int array;  (* buckets.(i): observations in [2^i, 2^(i+1)) *)
  exemplars : exemplar option array;  (* most recent traced hit per bucket *)
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type counter = { mutable c : int }
type gauge = { mutable g : float }

type series = C of counter | G of gauge | H of histogram

type metric = {
  mname : string;
  help : string;
  kind : string;  (* "counter" | "gauge" | "histogram" *)
  series : (labels, series) Hashtbl.t;
}

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }
let default = create ()

let family registry ~kind ~help name =
  match Hashtbl.find_opt registry.tbl name with
  | Some m ->
      if m.kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s" name m.kind);
      m
  | None ->
      let m = { mname = name; help; kind; series = Hashtbl.create 4 } in
      Hashtbl.replace registry.tbl name m;
      m

let series_of m labels mk =
  let labels = normalize labels in
  match Hashtbl.find_opt m.series labels with
  | Some s -> s
  | None ->
      let s = mk () in
      Hashtbl.replace m.series labels s;
      s

(* --- Counters ---------------------------------------------------------------- *)

let counter ?(registry = default) ?(help = "") ?(labels = []) name =
  locked (fun () ->
      let m = family registry ~kind:"counter" ~help name in
      match series_of m labels (fun () -> C { c = 0 }) with
      | C c -> c
      | G _ | H _ -> assert false)

let add c n = locked (fun () -> c.c <- c.c + n)
let incr c = add c 1
let counter_value c = c.c

(* --- Gauges ------------------------------------------------------------------- *)

let gauge ?(registry = default) ?(help = "") ?(labels = []) name =
  locked (fun () ->
      let m = family registry ~kind:"gauge" ~help name in
      match series_of m labels (fun () -> G { g = 0. }) with
      | G g -> g
      | C _ | H _ -> assert false)

let set g v = locked (fun () -> g.g <- v)
let gauge_value g = g.g

(* --- Histograms ----------------------------------------------------------------- *)

let histogram ?(registry = default) ?(help = "") ?(labels = []) name =
  locked (fun () ->
      let m = family registry ~kind:"histogram" ~help name in
      let mk () =
        H
          {
            buckets = Array.make hbuckets 0;
            exemplars = Array.make hbuckets None;
            hcount = 0;
            hsum = 0.;
            hmin = infinity;
            hmax = neg_infinity;
          }
      in
      match series_of m labels mk with
      | H h -> h
      | C _ | G _ -> assert false)

let bucket_index v =
  if v < 1. then 0
  else min (hbuckets - 1) (int_of_float (Float.log2 v))

let observe ?trace_id h v =
  (* NaN would flow through Float.max unchanged and hand int_of_float an
     unspecified value in bucket_index; clamp it to zero like negatives. *)
  let v = if Float.is_nan v then 0. else Float.max v 0. in
  (* Stamp outside the lock: gettimeofday is a syscall on some systems
     and only traced observations need it. *)
  let ex =
    match trace_id with
    | None -> None
    | Some tid ->
        Some { ex_trace_id = tid; ex_value = v; ex_ts = Unix.gettimeofday () }
  in
  locked (fun () ->
      let i = bucket_index v in
      h.buckets.(i) <- h.buckets.(i) + 1;
      (match ex with None -> () | Some _ -> h.exemplars.(i) <- ex);
      h.hcount <- h.hcount + 1;
      h.hsum <- h.hsum +. v;
      if v < h.hmin then h.hmin <- v;
      if v > h.hmax then h.hmax <- v)

let observe_ns ?trace_id h ns = observe ?trace_id h (float_of_int ns)

let histogram_count h = h.hcount
let histogram_sum h = h.hsum

(* Quantile estimate: find the bucket holding the rank, interpolate
   linearly inside it, clamp to the observed min/max.  The unlocked
   variant serves the exporters below, which already hold the lock. *)
let quantile_unlocked h q =
  if h.hcount = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.hcount))) in
    let rec go i cum =
      if i >= hbuckets then h.hmax
      else
        let c = h.buckets.(i) in
        if cum + c >= rank then begin
          let lo = if i = 0 then 0. else ldexp 1. i in
          let hi = ldexp 1. (i + 1) in
          let frac = float_of_int (rank - cum) /. float_of_int c in
          Float.min h.hmax (Float.max h.hmin (lo +. (frac *. (hi -. lo))))
        end
        else go (i + 1) (cum + c)
    in
    go 0 0
  end

let quantile h q = locked (fun () -> quantile_unlocked h q)

(* --- Reset ------------------------------------------------------------------------ *)

let reset_series = function
  | C c -> c.c <- 0
  | G g -> g.g <- 0.
  | H h ->
      Array.fill h.buckets 0 hbuckets 0;
      Array.fill h.exemplars 0 hbuckets None;
      h.hcount <- 0;
      h.hsum <- 0.;
      h.hmin <- infinity;
      h.hmax <- neg_infinity

let reset registry =
  locked (fun () ->
      Hashtbl.iter
        (fun _ m -> Hashtbl.iter (fun _ s -> reset_series s) m.series)
        registry.tbl)

(* --- Export view -------------------------------------------------------------------- *)

(* A read-only snapshot of the registry for exporters that live outside
   this module (Prometheus text exposition, the introspection server):
   everything they need without exposing the mutable series. *)

type hview = {
  hv_count : int;
  hv_sum : float;
  hv_min : float;  (* infinity when empty *)
  hv_max : float;  (* neg_infinity when empty *)
  hv_cumulative : int array;  (* entry i counts observations below 2^(i+1) *)
  hv_exemplars : (int * exemplar) list;  (* bucket index -> most recent hit *)
}

type view = V_counter of int | V_gauge of float | V_histogram of hview

type family_view = {
  fv_name : string;
  fv_kind : string;  (* "counter" | "gauge" | "histogram" *)
  fv_help : string;
  fv_series : (labels * view) list;  (* sorted by label set *)
}

let bucket_count = hbuckets
let bucket_upper i = ldexp 1. (i + 1)

let cumulative_buckets h =
  let cum = Array.make hbuckets 0 in
  let running = ref 0 in
  Array.iteri
    (fun i c ->
      running := !running + c;
      cum.(i) <- !running)
    h.buckets;
  cum

let exemplar_list h =
  let acc = ref [] in
  for i = hbuckets - 1 downto 0 do
    match h.exemplars.(i) with
    | Some ex -> acc := (i, ex) :: !acc
    | None -> ()
  done;
  !acc

(* --- Exporters ---------------------------------------------------------------------- *)

let sorted_families registry =
  Hashtbl.fold (fun _ m acc -> m :: acc) registry.tbl []
  |> List.sort (fun a b -> String.compare a.mname b.mname)

let sorted_series m =
  Hashtbl.fold (fun labels s acc -> (labels, s) :: acc) m.series []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let export registry =
  locked (fun () ->
      List.map
        (fun m ->
          {
            fv_name = m.mname;
            fv_kind = m.kind;
            fv_help = m.help;
            fv_series =
              List.map
                (fun (labels, s) ->
                  ( labels,
                    match s with
                    | C c -> V_counter c.c
                    | G g -> V_gauge g.g
                    | H h ->
                        V_histogram
                          {
                            hv_count = h.hcount;
                            hv_sum = h.hsum;
                            hv_min = h.hmin;
                            hv_max = h.hmax;
                            hv_cumulative = cumulative_buckets h;
                            hv_exemplars = exemplar_list h;
                          } ))
                (sorted_series m);
          })
        (sorted_families registry))

let pp_labels ppf = function
  | [] -> ()
  | labels ->
      Fmt.pf ppf "{%a}"
        (Fmt.list ~sep:(Fmt.any ",") (fun ppf (k, v) ->
             Fmt.pf ppf "%s=%S" k v))
        labels

let finite v = if Float.is_finite v then v else 0.

let pp ppf registry =
  locked (fun () ->
      List.iter
        (fun m ->
          if m.help <> "" then Fmt.pf ppf "# %s: %s@." m.mname m.help;
          List.iter
            (fun (labels, s) ->
              match s with
              | C c -> Fmt.pf ppf "%s%a %d@." m.mname pp_labels labels c.c
              | G g -> Fmt.pf ppf "%s%a %g@." m.mname pp_labels labels g.g
              | H h ->
                  Fmt.pf ppf
                    "%s%a count=%d sum=%g min=%g p50=%g p90=%g p99=%g max=%g@."
                    m.mname pp_labels labels h.hcount h.hsum (finite h.hmin)
                    (quantile_unlocked h 0.5) (quantile_unlocked h 0.9)
                    (quantile_unlocked h 0.99) (finite h.hmax))
            (sorted_series m))
        (sorted_families registry))

(* Minimal JSON string escaping (quotes, backslashes, control chars). *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         labels)
  ^ "}"

let json_num v = Printf.sprintf "%.17g" (finite v)

(* One JSON object per line per series. *)
let to_json_lines registry =
  locked @@ fun () ->
  let b = Buffer.create 256 in
  List.iter
    (fun m ->
      List.iter
        (fun (labels, s) ->
          let head =
            Printf.sprintf "{\"name\":\"%s\",\"type\":\"%s\",\"labels\":%s"
              (json_escape m.mname) m.kind (json_labels labels)
          in
          (match s with
          | C c -> Buffer.add_string b (Printf.sprintf "%s,\"value\":%d}" head c.c)
          | G g ->
              Buffer.add_string b
                (Printf.sprintf "%s,\"value\":%s}" head (json_num g.g))
          | H h ->
              (* The full cumulative bucket array (bucket i covers values
                 below 2^(i+1)), so offline tooling can recompute any
                 quantile, not just the three summarized here. *)
              let cum = Buffer.create (4 * hbuckets) in
              let running = ref 0 in
              Buffer.add_char cum '[';
              Array.iteri
                (fun i c ->
                  running := !running + c;
                  if i > 0 then Buffer.add_char cum ',';
                  Buffer.add_string cum (string_of_int !running))
                h.buckets;
              Buffer.add_char cum ']';
              Buffer.add_string b
                (Printf.sprintf
                   "%s,\"count\":%d,\"sum\":%s,\"min\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"max\":%s,\"buckets\":%s}"
                   head h.hcount (json_num h.hsum) (json_num h.hmin)
                   (json_num (quantile_unlocked h 0.5))
                   (json_num (quantile_unlocked h 0.9))
                   (json_num (quantile_unlocked h 0.99))
                   (json_num h.hmax) (Buffer.contents cum)));
          Buffer.add_char b '\n')
        (sorted_series m))
    (sorted_families registry);
  Buffer.contents b
