(* A nanosecond clock for the observability layer.

   [Unix.gettimeofday] is wall-clock and can jump backwards (NTP); the
   instrumentation that consumes these timestamps subtracts pairs of
   them, so we clamp the reading to be non-decreasing within the
   process.  Resolution is microseconds, which is ample for the
   operator-level spans this layer measures. *)

let last = ref 0

let now_ns () =
  let t = int_of_float (Unix.gettimeofday () *. 1e9) in
  let t = if t > !last then t else !last in
  last := t;
  t

(* Render a nanosecond duration with an adaptive unit. *)
let pp_ns ppf ns =
  if ns < 1_000 then Fmt.pf ppf "%dns" ns
  else if ns < 1_000_000 then Fmt.pf ppf "%.1fus" (float_of_int ns /. 1e3)
  else if ns < 1_000_000_000 then Fmt.pf ppf "%.2fms" (float_of_int ns /. 1e6)
  else Fmt.pf ppf "%.2fs" (float_of_int ns /. 1e9)

let ns_to_string ns = Fmt.str "%a" pp_ns ns
