(** Flight recorder: a bounded in-process time-series store over a
    {!Metrics} registry.

    A sampler snapshots the registry on a fixed cadence (default 1s)
    and keeps the last N windows (default 3600) in a ring.  Windows
    store {e deltas}: counter increments, gauge values, and sparse
    histogram bucket increments — so range queries can recompute
    rates and per-window quantiles over any trailing interval, and an
    hour of serving telemetry fits in a few MB regardless of how long
    the process has been up.

    The whole store serializes to JSON-lines with deterministic float
    rendering, so bench runs leave a replayable series
    ([BENCH_tsdb.json]) and [save] ∘ [load] round-trips
    byte-identically.

    All operations are thread-safe; [sample] (from the sampler thread)
    and [range] (from the monitor's accept thread) interleave freely. *)

type t

val create :
  ?registry:Metrics.t -> ?resolution_s:float -> ?capacity:int -> unit -> t
(** [create ()] targets {!Metrics.default}, 1s resolution, 3600
    windows.  @raise Invalid_argument on non-positive resolution or
    capacity. *)

val default : t
(** The store the shell, server and monitor share. *)

val sample : t -> unit
(** Snapshot the registry into a new window: counters delta'd against
    the previous sample (a negative delta — counter reset — restarts
    from the new cumulative value), gauges recorded as-is, histograms
    as sparse bucket increments (only when the window saw
    observations). *)

val capacity : t -> int

val resolution_s : t -> float

val window_count : t -> int
(** Windows currently held (≤ [capacity]; oldest are overwritten). *)

(** {1 Range queries} *)

type agg =
  | Rate  (** counter increments per second *)
  | Sum  (** summed increments / gauge values / histogram sums *)
  | Avg
  | Min
  | Max
  | Quantile of float  (** per-step quantile from merged bucket deltas *)

val agg_of_string : string -> agg option
(** ["rate" | "sum" | "avg" | "min" | "max" | "p50" | "p99" | "p999" | ...] *)

val agg_to_string : agg -> string

val range :
  t ->
  ?labels:Metrics.labels ->
  ?step_s:float ->
  window_s:float ->
  agg:agg ->
  string ->
  (float * float option) list
(** [range t ~window_s ~agg name] aggregates the series named [name]
    over [[now - window_s, now]] into [window_s / step_s] buckets
    (step defaults to the store's resolution), oldest first.  Each
    element is [(bucket_end_ts, value)]; [None] marks a bucket no
    window landed in.  [?labels] restricts to series whose label set
    contains every given pair; by default all label sets of the name
    are merged. *)

val series : t -> (string * string) list
(** Metric names present anywhere in the ring, with their point kind
    (["rate" | "gauge" | "hist"]), sorted — the dashboard's listing. *)

(** {1 Persistence} *)

val to_json_lines : t -> string
(** Header line, then one JSON object per window, oldest first. *)

val save : t -> string -> unit

val load : string -> t
(** @raise Json.Parse_error on malformed documents. *)

val of_json_lines : string -> t

(** {1 The sampler thread} *)

val start : t -> unit
(** Spawn the sampler ticking every [resolution_s].  Idempotent while
    running. *)

val stop : t -> unit
(** Stop and join the sampler thread.  No-op when not running. *)

val running : t -> bool
