(** Process-wide metrics registry: labeled counters, gauges and
    log-scale latency histograms, with text and JSON-lines exporters.

    Families are keyed by name, series by (sorted) label sets.  Handles
    stay valid across {!reset}, which zeroes series in place.  All
    implementations are stdlib-only; histograms use 64 power-of-two
    buckets, so quantiles carry at most a factor-of-two bucketing
    error.

    All operations — registration, mutation, export — are thread-safe
    behind one process-wide mutex, so the serving front-end's worker
    pool can observe into the default registry concurrently without
    losing increments or corrupting the family tables. *)

type labels = (string * string) list

type t
(** A registry. *)

val create : unit -> t

val default : t
(** The registry the instrumented subsystems report to. *)

type counter
type gauge
type histogram

val counter : ?registry:t -> ?help:string -> ?labels:labels -> string -> counter
(** Register (or look up) a counter series.
    @raise Invalid_argument if [name] exists with a different kind. *)

val add : counter -> int -> unit
val incr : counter -> unit
val counter_value : counter -> int

val gauge : ?registry:t -> ?help:string -> ?labels:labels -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  ?registry:t -> ?help:string -> ?labels:labels -> string -> histogram

val observe : ?trace_id:string -> histogram -> float -> unit
(** Record one observation (negative and NaN values clamp to zero).
    When [trace_id] is given the covering bucket remembers it as its
    exemplar — the most recent traced observation that landed there —
    for the OpenMetrics exposition and slow-trace joins. *)

val observe_ns : ?trace_id:string -> histogram -> int -> unit

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]: linear interpolation inside the
    covering bucket, clamped to the observed min/max; [0.] when empty. *)

val reset : t -> unit
(** Zero every series in place (registrations and handles survive). *)

(** {1 Export view}

    A read-only snapshot for exporters living outside this module
    (e.g. {!Promexp}, the introspection server). *)

type exemplar = {
  ex_trace_id : string;
  ex_value : float;
  ex_ts : float;  (** unix seconds at observation time *)
}
(** The most recent traced observation that landed in a bucket. *)

type hview = {
  hv_count : int;
  hv_sum : float;
  hv_min : float;  (** [infinity] when empty *)
  hv_max : float;  (** [neg_infinity] when empty *)
  hv_cumulative : int array;
      (** entry [i] counts observations below [2^(i+1)] *)
  hv_exemplars : (int * exemplar) list;
      (** sparse, ascending bucket index -> most recent traced hit *)
}

type view = V_counter of int | V_gauge of float | V_histogram of hview

type family_view = {
  fv_name : string;
  fv_kind : string;  (** ["counter" | "gauge" | "histogram"] *)
  fv_help : string;
  fv_series : (labels * view) list;  (** sorted by label set *)
}

val export : t -> family_view list
(** Families sorted by name, series sorted by label set. *)

val bucket_count : int
(** Histogram buckets per series (64). *)

val bucket_upper : int -> float
(** [bucket_upper i] is the exclusive upper bound [2^(i+1)] of bucket
    [i]. *)

val pp : Format.formatter -> t -> unit
(** Text exporter: one line per series, sorted by name then labels. *)

val to_json_lines : t -> string
(** JSON-lines exporter: one JSON object per series per line.
    Histogram objects carry the summary quantiles plus the full
    cumulative [buckets] array (entry [i] counts observations below
    [2^(i+1)]), so offline tooling can recompute arbitrary quantiles. *)
