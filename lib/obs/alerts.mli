(** The SLO alerting engine: threshold and burn-rate rules evaluated
    over a {!Metrics} registry, with a Prometheus-style
    pending → firing → resolved state machine.

    A rule is one line of a small expression language:

    {v
    engine_query_ns p99 > 50ms for 3
    rate(engine_page_reads_total) / rate(engine_queries_total) > 40 for 2
    plan_drift_total increasing
    gc_heap_words > 2e6
    srv_request_ns p99 over(60s) > 500ms for 2
    v}

    Grammar: [source [/ source] cmp number ["for" N ["ticks"]]] or
    [selector increasing].  A source is a selector (summing every
    series whose labels include the selector's [{k=v,...}]), a
    selector with a quantile ([p50|p90|p95|p99] — computed over the
    observations that arrived since the previous tick, so alerts
    resolve when the system goes quiet), or [rate(selector)] (the
    counter's per-tick delta).  Any source may be suffixed with
    [over(60s)] (also [over(500ms)], bare seconds): the same
    aggregation read from the {!Tsdb} flight recorder's trailing
    wall-clock window instead of the live registry — [rate] becomes a
    per-second rate over the window, a quantile merges the window's
    recorded bucket deltas, and a plain selector averages.  Windowed
    sources evaluate to no-violation until the store's sampler has
    data.  Thresholds accept [ns/us/ms/s] duration suffixes and a bare
    [x] multiplier.

    When a rule goes pending or firing, the evaluator captures an
    {e exemplar}: the trace id attached to the largest recent
    observation of any histogram the rule reads (see
    {!Metrics.observe}).  It rides on the transition, the rule's JSON
    ([exemplar_trace_id]) and the dashboard's alert table, and
    resolves at the monitor's [/trace/<id>] while tail-retained.

    {!tick} drives evaluation: the condition must hold on [for]
    consecutive ticks before the alert fires, and one false tick
    resolves it.  Transitions land in a bounded history ring; firing
    alerts export as [ALERTS{alertname,severity}] gauges (1 firing,
    0 otherwise) into the registry the rules read.  {!silence}
    suppresses the export without stopping the state machine. *)

type selector = { sel_name : string; sel_labels : (string * string) list }

type source =
  | Value of selector
  | Rate of selector
  | Quantile of selector * float
  | Windowed of source * float
      (** the source over a trailing window of N seconds, read from
          the flight recorder ([over(60s)]); never nested *)

type term = Source of source | Ratio of source * source
type cmp = Gt | Ge | Lt | Le
type expr = Threshold of term * cmp * float | Increasing of selector

type rule = {
  name : string;
  severity : string;
  for_ticks : int;
  expr : expr;
  text : string;  (** the rule as written *)
}

type state = Inactive | Pending of int  (** consecutive true ticks *) | Firing

type transition = {
  tr_tick : int;
  tr_ts : float;  (** unix seconds *)
  tr_rule : string;
  tr_severity : string;
  tr_from : string;
  tr_to : string;  (** ["pending" | "firing" | "resolved" | "inactive"] *)
  tr_value : float;  (** the measured value at the transition *)
  tr_exemplar : string option;
      (** a trace id from a matching histogram's exemplars — the slow
          request behind the alert *)
}

type t

val create : ?registry:Metrics.t -> ?tsdb:Tsdb.t -> unit -> t
(** A fresh evaluator over [registry] (default {!Metrics.default});
    starts with no rules.  [tsdb] (default {!Tsdb.default}) backs the
    [over(window)] sources. *)

val default : t
(** The process-wide evaluator behind the monitor's [/alerts] route and
    the shell's [:alerts].  Empty until rules are added
    ({!install_defaults}). *)

exception Parse_error of string

val parse : string -> expr * int
(** Parse a rule body, returning the expression and the for-duration
    (1 when absent).
    @raise Parse_error on malformed input. *)

val add : ?severity:string -> t -> name:string -> string -> rule
(** Parse and install a rule ([severity] defaults to ["warn"]).
    @raise Parse_error on malformed input or a duplicate name. *)

val remove : t -> string -> bool
(** Remove the named rule; [false] if there is none. *)

val rules : t -> rule list

val install_defaults : ?t:t -> unit -> unit
(** Install the stock service-health rules (interactive latency p99,
    read amplification per query, plan drift, serving-front-end p99 and
    shed rate, and a sustained-p99 rule over the flight recorder's
    trailing minute) into [t] (default {!default}).  No-op when the
    evaluator already has rules. *)

(** {1 Evaluation} *)

val tick : t -> unit
(** Evaluate every rule against the registry once and advance the
    state machines.  The host picks the cadence: the shell ticks from
    the {!Runtime} sampler, the bench harness between experiments,
    tests by hand. *)

val ticks : t -> int
val state : t -> string -> state option
val states : t -> (rule * state) list

val last_value : t -> string -> float option
(** The value measured for the rule at its most recent evaluation. *)

val firing : t -> rule list
(** Rules currently in the firing state (silenced ones included —
    silencing only suppresses the export). *)

val history : t -> transition list
(** State transitions, newest first (bounded ring of 256). *)

val last_exemplar : t -> string -> string option
(** The exemplar trace id captured when the named rule last went
    pending/firing; dropped when it resolves (the transition history
    keeps the incident's copy). *)

val silence : t -> string -> bool -> bool
(** [silence t name on] suppresses ([on = true]) or restores the
    [ALERTS] export for the named rule; the state machine keeps
    running either way.  [false] when no such rule exists. *)

val is_silenced : t -> string -> bool

val clear : t -> unit
(** Drop every rule, state, snapshot and the history; zero the
    exported [ALERTS] gauges. *)

(** {1 Rendering} *)

val state_name : state -> string
val to_json : t -> Json.t
(** The [/alerts] document: tick count, firing count, per-rule states,
    transition history. *)

val pp_state : Format.formatter -> state -> unit
val pp_rule : t -> Format.formatter -> rule -> unit
val pp_transition : Format.formatter -> transition -> unit
