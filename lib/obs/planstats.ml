(* The plan-quality observatory: estimate-vs-actual accounting over the
   query journal's event stream.

   [Plan.estimate] predicts cardinality and page I/O per operator;
   execution measures them.  Nothing in the repo compared the two until
   now — this module joins them (the recording layers attach the
   estimates to journal events; see Engine/Dist) and computes the
   standard q-error, max(est/act, act/est), for cardinality, reads and
   writes.  Every observation feeds three consumers:

   - log-scale Metrics histograms (plan_qerror_{card,reads,writes},
     labeled by operator class) exported via Promexp and the monitor's
     /planstats route;
   - a calibration store: per (operator class x selectivity bucket)
     aggregated error statistics — count, sum of log q-errors (the
     geometric mean under aggregation), signed log bias, worst case —
     persisted as JSON lines.  This is the artifact a cost-based
     planner consumes to correct its own estimates;
   - a workload profiler: journal rows grouped by plan fingerprint into
     top-K summaries (count, wall time, io, cache hit rate, worst
     q-error), the monitor's /workload route.

   A drift detector compares a sliding window of recent cardinality
   q-errors per operator class against a stored calibration baseline
   and raises plan_drift_total{op} when the distribution shifts, so a
   planner regression is observable before it becomes a perf
   regression.

   Stores subscribe to [Qlog.set_on_record], so an online store sees
   exactly the event stream an offline replay of the journal sees, in
   the same order: rebuilding a store from the journal reproduces the
   online aggregates bit for bit (floating-point sums included), which
   CI checks by comparing the two saved files.  Like the rest of
   lib/obs this module never inspects queries — it consumes only what
   the journal records. *)

(* --- q-error and selectivity buckets -------------------------------------- *)

(* max(est/act, act/est) over values clamped to >= 1: always >= 1.0,
   1.0 means exact, and the zero cases (empty results, free operators)
   degrade gracefully instead of dividing by zero. *)
let qerror ~est ~act =
  let e = float_of_int (max est 1) and a = float_of_int (max act 1) in
  if e >= a then e /. a else a /. e

(* Signed companion to the q-error: ln(act/est), positive when the
   planner underestimates.  Summed per cell, it says which way a class
   is wrong, not just how much. *)
let log_bias ~est ~act =
  log (float_of_int (max act 1) /. float_of_int (max est 1))

(* The selectivity bucket of an estimate: floor log2 of the estimated
   cardinality (0 for estimates <= 1).  Calibration per (class, bucket)
   keeps "atomic returning 10 rows" apart from "atomic returning 10k
   rows" — error profiles differ across the size spectrum. *)
let bucket_of_rows n =
  let rec go b n = if n <= 1 then b else go (b + 1) (n lsr 1) in
  if n <= 1 then 0 else go 0 n

(* --- Aggregated error statistics ------------------------------------------ *)

type dim_stats = {
  mutable n : int;
  mutable sum_log_q : float;  (* geomean = exp (sum_log_q / n) *)
  mutable sum_bias : float;  (* sum of ln(act/est) *)
  mutable max_q : float;
}

let dim_create () = { n = 0; sum_log_q = 0.; sum_bias = 0.; max_q = 1. }

let dim_observe ds ~est ~act =
  let q = qerror ~est ~act in
  ds.n <- ds.n + 1;
  ds.sum_log_q <- ds.sum_log_q +. log q;
  ds.sum_bias <- ds.sum_bias +. log_bias ~est ~act;
  if q > ds.max_q then ds.max_q <- q

let dim_add ~into src =
  into.n <- into.n + src.n;
  into.sum_log_q <- into.sum_log_q +. src.sum_log_q;
  into.sum_bias <- into.sum_bias +. src.sum_bias;
  if src.max_q > into.max_q then into.max_q <- src.max_q

let geomean ds = if ds.n = 0 then 1. else exp (ds.sum_log_q /. float_of_int ds.n)
let mean_bias ds = if ds.n = 0 then 1. else exp (ds.sum_bias /. float_of_int ds.n)

type cell = {
  cell_op : string;
  cell_bucket : int;
  c_card : dim_stats;
  c_reads : dim_stats;
  c_writes : dim_stats;
}

type dim = Card | Reads | Writes

let dim_name = function Card -> "card" | Reads -> "reads" | Writes -> "writes"
let dim_of_cell c = function
  | Card -> c.c_card
  | Reads -> c.c_reads
  | Writes -> c.c_writes

(* --- Bounded per-class sample buffers (exact quantiles) -------------------- *)

(* The calibration cells keep only moments; medians and p95s come from
   keep-first sample buffers per (class, dimension) — bounded, in
   memory only, never persisted.  Keep-first is deterministic, so the
   online and offline summary quantiles also agree. *)
let sample_cap = 32_768

type sample_buf = { mutable data : float array; mutable len : int }

let buf_create () = { data = [||]; len = 0 }

let buf_push b v =
  if b.len < sample_cap then begin
    if b.len = Array.length b.data then begin
      let cap = max 64 (min sample_cap (2 * Array.length b.data)) in
      let d = Array.make cap 0. in
      Array.blit b.data 0 d 0 b.len;
      b.data <- d
    end;
    b.data.(b.len) <- v;
    b.len <- b.len + 1
  end

let buf_quantile b q =
  if b.len = 0 then 0.
  else begin
    let d = Array.sub b.data 0 b.len in
    Array.sort compare d;
    let i = int_of_float (q *. float_of_int (b.len - 1)) in
    d.(max 0 (min (b.len - 1) i))
  end

(* --- The workload profile --------------------------------------------------- *)

type wrow = {
  w_fingerprint : string;
  mutable w_query : string;  (* first query text seen for the plan *)
  mutable w_count : int;
  mutable w_wall_ns : int;
  mutable w_io : int;
  mutable w_alloc : int;  (* bytes allocated, when the events carry it *)
  mutable w_hits : int;  (* result-cache hits among the events *)
  mutable w_worst_q : float;  (* worst cardinality q-error seen *)
}

(* --- Drift windows ----------------------------------------------------------- *)

(* Recent cardinality q-errors per operator class, a small ring. *)
type ring = { rbuf : float array; mutable ridx : int; mutable rcount : int }

let ring_size = 128
let ring_create () = { rbuf = Array.make ring_size 0.; ridx = 0; rcount = 0 }

let ring_push r v =
  r.rbuf.(r.ridx) <- v;
  r.ridx <- (r.ridx + 1) mod ring_size;
  if r.rcount < ring_size then r.rcount <- r.rcount + 1

let ring_geomean r =
  if r.rcount = 0 then 1.
  else begin
    let s = ref 0. in
    for i = 0 to r.rcount - 1 do
      s := !s +. log r.rbuf.(i)
    done;
    exp (!s /. float_of_int r.rcount)
  end

(* --- The store ---------------------------------------------------------------- *)

type t = {
  cells : (string * int, cell) Hashtbl.t;
  samples : (string, sample_buf array) Hashtbl.t;  (* per class, one per dim *)
  workload : (string, wrow) Hashtbl.t;  (* keyed by plan fingerprint *)
  recent : (string, ring) Hashtbl.t;  (* drift windows, card dim *)
  mutable events : int;
  mutable metrics_on : bool;  (* observe the default Metrics registry *)
  mutable baseline : t option;  (* drift reference calibration *)
  mutable drift : (string * float * float) list;
      (* (op, recent geomean, baseline geomean), newest first, one per op *)
}

let create ?(metrics = false) () =
  {
    cells = Hashtbl.create 64;
    samples = Hashtbl.create 16;
    workload = Hashtbl.create 64;
    recent = Hashtbl.create 16;
    events = 0;
    metrics_on = metrics;
    baseline = None;
    drift = [];
  }

let default = create ~metrics:true ()
let events t = t.events
let set_baseline t b = t.baseline <- Some b
let drift t = t.drift

let clear t =
  Hashtbl.reset t.cells;
  Hashtbl.reset t.samples;
  Hashtbl.reset t.workload;
  Hashtbl.reset t.recent;
  t.events <- 0;
  t.drift <- []

let cell t op bucket =
  match Hashtbl.find_opt t.cells (op, bucket) with
  | Some c -> c
  | None ->
      let c =
        {
          cell_op = op;
          cell_bucket = bucket;
          c_card = dim_create ();
          c_reads = dim_create ();
          c_writes = dim_create ();
        }
      in
      Hashtbl.add t.cells (op, bucket) c;
      c

let class_samples t op =
  match Hashtbl.find_opt t.samples op with
  | Some bufs -> bufs
  | None ->
      let bufs = [| buf_create (); buf_create (); buf_create () |] in
      Hashtbl.add t.samples op bufs;
      bufs

let dim_index = function Card -> 0 | Reads -> 1 | Writes -> 2

(* One histogram family per dimension, labeled by operator class;
   handles memoized process-wide (the default registry dedupes anyway,
   this just skips the registry lookup per observation). *)
let hist_cache : (string * string, Metrics.histogram) Hashtbl.t =
  Hashtbl.create 16

let m_qerror dim op =
  let key = (dim_name dim, op) in
  match Hashtbl.find_opt hist_cache key with
  | Some h -> h
  | None ->
      let h =
        Metrics.histogram
          ~help:
            ("plan estimate q-error, max(est/act, act/est), for "
           ^ dim_name dim)
          ~labels:[ ("op", op) ]
          ("plan_qerror_" ^ dim_name dim)
      in
      Hashtbl.add hist_cache key h;
      h

let ring t op =
  match Hashtbl.find_opt t.recent op with
  | Some r -> r
  | None ->
      let r = ring_create () in
      Hashtbl.add t.recent op r;
      r

let note_obs t ~op ~bucket dim ~est ~act =
  dim_observe (dim_of_cell (cell t op bucket) dim) ~est ~act;
  let q = qerror ~est ~act in
  buf_push (class_samples t op).(dim_index dim) q;
  if dim = Card then ring_push (ring t op) q;
  if t.metrics_on then Metrics.observe (m_qerror dim op) q

(* --- Drift detection --------------------------------------------------------- *)

let drift_check_every = 64
let drift_window_min = 32
let drift_baseline_min = 4
let drift_factor = 2.0

let m_drift op =
  Metrics.counter
    ~help:
      "drift checks that found an operator's recent q-error distribution \
       shifted >= 2x from the calibration baseline, in either direction"
    ~labels:[ ("op", op) ]
    "plan_drift_total"

(* The baseline's cardinality geomean for a class, across buckets. *)
let baseline_card base op =
  let n = ref 0 and sl = ref 0. in
  Hashtbl.iter
    (fun (o, _) c ->
      if String.equal o op then begin
        n := !n + c.c_card.n;
        sl := !sl +. c.c_card.sum_log_q
      end)
    base.cells;
  if !n = 0 then None else Some (exp (!sl /. float_of_int !n), !n)

let check_drift t =
  match t.baseline with
  | None -> ()
  | Some base ->
      Hashtbl.iter
        (fun op r ->
          if r.rcount >= drift_window_min then
            match baseline_card base op with
            | Some (bg, bn) when bn >= drift_baseline_min ->
                let rg = ring_geomean r in
                (* either direction: estimates turning much worse is a
                   planner regression, much better means the calibration
                   no longer describes the workload *)
                if rg > bg *. drift_factor || bg > rg *. drift_factor
                then begin
                  if t.metrics_on then Metrics.incr (m_drift op);
                  t.drift <-
                    (op, rg, bg)
                    :: List.filter (fun (o, _, _) -> o <> op) t.drift
                end
            | _ -> ())
        t.recent

(* --- Joining one journal event ------------------------------------------------ *)

(* Span io is inclusive (children included) while plan estimates are
   per-operator, so a row's actual reads/writes are re-derived
   exclusively from the preorder + depth structure: subtract the
   immediate children's inclusive deltas.  Both the online hook and an
   offline replay run this same computation over the same rows. *)
let exclusive_io (ops : Qlog.op array) i =
  let d = ops.(i).Qlog.op_depth in
  let r = ref ops.(i).Qlog.op_reads and w = ref ops.(i).Qlog.op_writes in
  let j = ref (i + 1) in
  let len = Array.length ops in
  while !j < len && ops.(!j).Qlog.op_depth > d do
    if ops.(!j).Qlog.op_depth = d + 1 then begin
      r := !r - ops.(!j).Qlog.op_reads;
      w := !w - ops.(!j).Qlog.op_writes
    end;
    incr j
  done;
  (max 0 !r, max 0 !w)

let note_event t (ev : Qlog.event) =
  t.events <- t.events + 1;
  (* the workload profile counts every event, estimates or not *)
  let w =
    match Hashtbl.find_opt t.workload ev.Qlog.fingerprint with
    | Some w -> w
    | None ->
        let w =
          {
            w_fingerprint = ev.Qlog.fingerprint;
            w_query = ev.Qlog.query;
            w_count = 0;
            w_wall_ns = 0;
            w_io = 0;
            w_alloc = 0;
            w_hits = 0;
            w_worst_q = 1.;
          }
        in
        Hashtbl.add t.workload ev.Qlog.fingerprint w;
        w
  in
  w.w_count <- w.w_count + 1;
  w.w_wall_ns <- w.w_wall_ns + ev.Qlog.wall_ns;
  w.w_io <- w.w_io + ev.Qlog.reads + ev.Qlog.writes;
  w.w_alloc <- w.w_alloc + Option.value ~default:0 ev.Qlog.alloc_bytes;
  if ev.Qlog.cache = Some "hit" then w.w_hits <- w.w_hits + 1;
  (* whole-query estimates, under the pseudo-class "query" *)
  let qbucket =
    match ev.Qlog.est_card with Some e -> bucket_of_rows e | None -> 0
  in
  (match ev.Qlog.est_card with
  | Some est ->
      note_obs t ~op:"query" ~bucket:qbucket Card ~est ~act:ev.Qlog.result_count;
      let q = qerror ~est ~act:ev.Qlog.result_count in
      if q > w.w_worst_q then w.w_worst_q <- q
  | None -> ());
  (match ev.Qlog.est_reads with
  | Some est -> note_obs t ~op:"query" ~bucket:qbucket Reads ~est ~act:ev.Qlog.reads
  | None -> ());
  (match ev.Qlog.est_writes with
  | Some est ->
      note_obs t ~op:"query" ~bucket:qbucket Writes ~est ~act:ev.Qlog.writes
  | None -> ());
  (* per-operator rows carrying joined estimates; rows annotated with
     an access path feed a second, path-suffixed class ("atomic:index",
     "atomic:scan", …) so a calibrated planner can correct each path's
     cost model separately — the substring index's occurrence-count
     upper bound biases only the index path, not scans *)
  let arr = Array.of_list ev.Qlog.ops in
  Array.iteri
    (fun i (o : Qlog.op) ->
      match o.Qlog.op_est_rows with
      | None -> ()
      | Some est_rows ->
          let bucket = bucket_of_rows est_rows in
          let op = o.Qlog.op_name in
          let path_op =
            Option.map (fun p -> op ^ ":" ^ p) o.Qlog.op_path
          in
          let note dim ~est ~act =
            note_obs t ~op ~bucket dim ~est ~act;
            match path_op with
            | Some op -> note_obs t ~op ~bucket dim ~est ~act
            | None -> ()
          in
          (match o.Qlog.op_rows with
          | Some act ->
              note Card ~est:est_rows ~act;
              let q = qerror ~est:est_rows ~act in
              if q > w.w_worst_q then w.w_worst_q <- q
          | None -> ());
          let act_reads, act_writes = exclusive_io arr i in
          (match o.Qlog.op_est_reads with
          | Some est -> note Reads ~est ~act:act_reads
          | None -> ());
          (match o.Qlog.op_est_writes with
          | Some est -> note Writes ~est ~act:act_writes
          | None -> ()))
    arr;
  if t.events mod drift_check_every = 0 then check_drift t

(* --- Subscription -------------------------------------------------------------- *)

let sinks : t list ref = ref []
let dispatch ev = List.iter (fun s -> note_event s ev) !sinks

let attach t =
  if not (List.memq t !sinks) then sinks := !sinks @ [ t ];
  Qlog.set_on_record (Some dispatch)

let detach t =
  sinks := List.filter (fun s -> not (s == t)) !sinks;
  if !sinks = [] then Qlog.set_on_record None

(* --- Offline building ----------------------------------------------------------- *)

let of_events evs =
  let t = create () in
  List.iter (note_event t) evs;
  t

let build t path =
  let evs = Qlog.load path in
  List.iter (note_event t) evs;
  List.length evs

(* --- Persistence: the calibration store ------------------------------------------ *)

let dim_to_json ds =
  Json.Obj
    [
      ("n", Json.Num (float_of_int ds.n));
      ("sum_log_q", Json.Num ds.sum_log_q);
      ("sum_bias", Json.Num ds.sum_bias);
      ("max_q", Json.Num ds.max_q);
    ]

let dim_of_json j =
  {
    n = Json.to_int (Json.member "n" j);
    sum_log_q = Json.to_float (Json.member "sum_log_q" j);
    sum_bias = Json.to_float (Json.member "sum_bias" j);
    max_q = Json.to_float (Json.member "max_q" j);
  }

let cell_to_json c =
  Json.Obj
    [
      ("op", Json.Str c.cell_op);
      ("bucket", Json.Num (float_of_int c.cell_bucket));
      ("card", dim_to_json c.c_card);
      ("reads", dim_to_json c.c_reads);
      ("writes", dim_to_json c.c_writes);
    ]

let cell_of_json j =
  {
    cell_op = Json.str (Json.member "op" j);
    cell_bucket = Json.to_int (Json.member "bucket" j);
    c_card = dim_of_json (Json.member "card" j);
    c_reads = dim_of_json (Json.member "reads" j);
    c_writes = dim_of_json (Json.member "writes" j);
  }

let sorted_cells t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.cells []
  |> List.sort (fun a b ->
         match String.compare a.cell_op b.cell_op with
         | 0 -> Int.compare a.cell_bucket b.cell_bucket
         | c -> c)

(* Cells sorted by (class, bucket) and floats printed to round-trip:
   two stores with identical aggregates save identical bytes, which is
   how CI asserts online == offline-rebuilt. *)
let save_lines t =
  String.concat ""
    (List.map (fun c -> Json.to_string (cell_to_json c) ^ "\n") (sorted_cells t))

let save t path =
  let oc = open_out path in
  output_string oc (save_lines t);
  close_out oc;
  Hashtbl.length t.cells

let load path =
  let text = In_channel.with_open_text path In_channel.input_all in
  let t = create () in
  List.iter
    (fun j ->
      let c = cell_of_json j in
      Hashtbl.replace t.cells (c.cell_op, c.cell_bucket) c)
    (Json.lines text);
  t

let merge ~into src =
  Hashtbl.iter
    (fun _ c ->
      let dst = cell into c.cell_op c.cell_bucket in
      dim_add ~into:dst.c_card c.c_card;
      dim_add ~into:dst.c_reads c.c_reads;
      dim_add ~into:dst.c_writes c.c_writes)
    src.cells

(* --- Summaries and export -------------------------------------------------------- *)

let class_names t =
  let names = Hashtbl.fold (fun (op, _) _ acc -> op :: acc) t.cells [] in
  let names = Hashtbl.fold (fun op _ acc -> op :: acc) t.samples names in
  List.sort_uniq String.compare names

(* Per-class aggregation across buckets. *)
let class_dim t op dim =
  let total = dim_create () in
  Hashtbl.iter
    (fun (o, _) c -> if String.equal o op then dim_add ~into:total (dim_of_cell c dim))
    t.cells;
  total

(* --- Bias lookup: what a calibrated planner consults ------------------------ *)

(* The multiplicative correction a calibrated estimate applies:
   est x bias ~= act.  Looked up in the exact (class, bucket) cell
   first, falling back to the class aggregate across buckets; [None]
   below the support threshold, so a planner with no history changes
   nothing.  Clamped — a handful of pathological observations must not
   swing costs by orders of magnitude. *)
let bias_min_n = 4
let bias_clamp = 8.

let bias t ~op ~rows dim =
  let of_ds ds =
    if ds.n >= bias_min_n then
      Some (Float.min bias_clamp (Float.max (1. /. bias_clamp) (mean_bias ds)))
    else None
  in
  let in_cell =
    match Hashtbl.find_opt t.cells (op, bucket_of_rows rows) with
    | Some c -> of_ds (dim_of_cell c dim)
    | None -> None
  in
  match in_cell with Some _ as b -> b | None -> of_ds (class_dim t op dim)

let bias_card t ~op ~rows = bias t ~op ~rows Card
let bias_reads t ~op ~rows = bias t ~op ~rows Reads

let class_quantile t op dim q =
  match Hashtbl.find_opt t.samples op with
  | None -> 0.
  | Some bufs -> buf_quantile bufs.(dim_index dim) q

let dim_summary_json t op dim =
  let ds = class_dim t op dim in
  Json.Obj
    [
      ("n", Json.Num (float_of_int ds.n));
      ("geomean", Json.Num (geomean ds));
      ("median", Json.Num (class_quantile t op dim 0.5));
      ("p95", Json.Num (class_quantile t op dim 0.95));
      ("max", Json.Num ds.max_q);
      ("bias", Json.Num (mean_bias ds));
    ]

let drift_json t =
  Json.Arr
    (List.map
       (fun (op, recent, base) ->
         Json.Obj
           [
             ("op", Json.Str op);
             ("recent_geomean", Json.Num recent);
             ("baseline_geomean", Json.Num base);
           ])
       t.drift)

let to_json t =
  Json.Obj
    [
      ("events", Json.Num (float_of_int t.events));
      ( "classes",
        Json.Arr
          (List.map
             (fun op ->
               Json.Obj
                 [
                   ("op", Json.Str op);
                   ("card", dim_summary_json t op Card);
                   ("reads", dim_summary_json t op Reads);
                   ("writes", dim_summary_json t op Writes);
                 ])
             (class_names t)) );
      ("drift", drift_json t);
      ("calibration", Json.Arr (List.map cell_to_json (sorted_cells t)));
    ]

let top_rows ?(top = 20) t =
  Hashtbl.fold (fun _ w acc -> w :: acc) t.workload []
  |> List.sort (fun a b ->
         match Int.compare b.w_wall_ns a.w_wall_ns with
         | 0 -> String.compare a.w_fingerprint b.w_fingerprint
         | c -> c)
  |> List.filteri (fun i _ -> i < top)

let workload_json ?top t =
  Json.Obj
    [
      ("plans", Json.Num (float_of_int (Hashtbl.length t.workload)));
      ( "rows",
        Json.Arr
          (List.map
             (fun w ->
               Json.Obj
                 [
                   ("fingerprint", Json.Str w.w_fingerprint);
                   ("query", Json.Str w.w_query);
                   ("count", Json.Num (float_of_int w.w_count));
                   ("wall_ns", Json.Num (float_of_int w.w_wall_ns));
                   ( "mean_wall_ns",
                     Json.Num
                       (float_of_int w.w_wall_ns
                       /. float_of_int (max 1 w.w_count)) );
                   ("io", Json.Num (float_of_int w.w_io));
                   ("alloc_bytes", Json.Num (float_of_int w.w_alloc));
                   ( "cache_hit_rate",
                     Json.Num
                       (float_of_int w.w_hits /. float_of_int (max 1 w.w_count))
                   );
                   ("worst_qerror", Json.Num w.w_worst_q);
                 ])
             (top_rows ?top t)) );
    ]

(* --- Text rendering (the shell and :replay) ---------------------------------------- *)

let pp_summary ppf t =
  if t.events = 0 && Hashtbl.length t.cells = 0 then
    Fmt.pf ppf "no plan-quality observations@."
  else begin
    Fmt.pf ppf "%d events observed@." t.events;
    Fmt.pf ppf "%-10s %6s  %28s  %8s %8s@." "op" "n"
      "cardinality q-error" "reads" "writes";
    Fmt.pf ppf "%-10s %6s  %6s %6s %6s %6s  %8s %8s@." "" "" "geo" "median"
      "p95" "max" "geo" "geo";
    List.iter
      (fun op ->
        let card = class_dim t op Card in
        if card.n > 0 then
          Fmt.pf ppf "%-10s %6d  %6.2f %6.2f %6.2f %6.1f  %8.2f %8.2f@." op
            card.n (geomean card)
            (class_quantile t op Card 0.5)
            (class_quantile t op Card 0.95)
            card.max_q
            (geomean (class_dim t op Reads))
            (geomean (class_dim t op Writes)))
      (class_names t)
  end

let pp_workload ?top ppf t =
  match top_rows ?top t with
  | [] -> Fmt.pf ppf "no journaled queries@."
  | rows ->
      Fmt.pf ppf "%-18s %6s %10s %10s %8s %8s  %s@." "plan" "count" "wall"
        "io" "hit%" "worst-q" "query";
      List.iter
        (fun w ->
          Fmt.pf ppf "%-18s %6d %10s %10d %7.0f%% %8.1f  %s@." w.w_fingerprint
            w.w_count
            (Mclock.ns_to_string w.w_wall_ns)
            w.w_io
            (100. *. float_of_int w.w_hits /. float_of_int (max 1 w.w_count))
            w.w_worst_q
            (if String.length w.w_query > 48 then
               String.sub w.w_query 0 47 ^ "…"
             else w.w_query))
        rows

let pp_drift ppf t =
  match t.drift with
  | [] ->
      Fmt.pf ppf "no drift detected%s@."
        (if t.baseline = None then " (no baseline loaded)" else "")
  | notes ->
      List.iter
        (fun (op, recent, base) ->
          Fmt.pf ppf
            "%-10s recent card q-error geomean %.2f vs baseline %.2f (%.1fx)@."
            op recent base (recent /. base))
        notes
