(** Nanosecond timestamps for spans and latency histograms.

    Backed by [Unix.gettimeofday], clamped to be non-decreasing within
    the process so span durations are never negative. *)

val now_ns : unit -> int
(** Current time in nanoseconds since the epoch (non-decreasing). *)

val pp_ns : Format.formatter -> int -> unit
(** Render a duration with an adaptive unit (ns / us / ms / s). *)

val ns_to_string : int -> string
