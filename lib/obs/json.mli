(** A minimal JSON value: parser, printer and accessors.

    Serves the observability layer's machine-generated documents — the
    query journal, metrics export, bench telemetry and the baseline
    perf gate.  Stdlib-only; numbers are floats (everything we
    round-trip fits a double exactly); printing escapes control
    characters and renders integral floats without a fraction. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact, single-line rendering (non-finite numbers become [null]). *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control chars). *)

val of_string : string -> t
(** Parse one JSON document.
    @raise Parse_error on malformed input or trailing garbage. *)

val lines : string -> t list
(** Parse JSON-lines text: one document per non-blank line.
    @raise Parse_error on the first malformed line. *)

val member : string -> t -> t
(** Object field access; [Null] when absent or not an object. *)

val to_float : t -> float
(** [Null] maps to [0.].  @raise Parse_error on non-numbers. *)

val to_int : t -> int

val str : t -> string
(** [Null] maps to [""].  @raise Parse_error on non-strings. *)

val arr : t -> t list
(** [Null] maps to [[]].  @raise Parse_error on non-arrays. *)
