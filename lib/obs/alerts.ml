(* The SLO alerting engine: a small rule language evaluated over a
   Metrics registry on each tick.

   A rule names a condition over the registry —

     engine_query_ns p99 > 50ms for 3
     rate(engine_page_reads_total) / rate(engine_queries_total) > 40 for 2
     plan_drift_total increasing

   — and carries a Prometheus-style pending -> firing -> resolved state
   machine: the condition must hold for [for] consecutive ticks before
   the alert fires, and the first false tick resolves it.  Windowed
   sources make resolution work over monotone instruments: [rate] is
   the counter's per-tick delta, and a histogram quantile is computed
   over the observations that arrived *since the previous tick* (the
   delta of the cumulative bucket arrays), so a quiet system's
   latency alert goes back down instead of averaging over all history.

   Evaluation is driven from outside — [tick] — because the right
   cadence belongs to the host: the shell ticks from the runtime
   sampler thread, the bench harness ticks between experiments, the
   tests tick by hand.  Every state transition lands in a bounded
   history ring, and firing alerts export as Prometheus
   [ALERTS{alertname,severity}] gauges in the same registry the rules
   read, so a scraper sees them next to the series that tripped them.
   Silencing suppresses the export (and flags the rule in listings)
   without stopping the state machine. *)

type selector = { sel_name : string; sel_labels : (string * string) list }

type source =
  | Value of selector  (* a gauge's (or counter's) current value *)
  | Rate of selector  (* a counter's per-tick delta *)
  | Quantile of selector * float  (* quantile over the tick's window *)
  | Windowed of source * float
      (* the same source over a trailing wall-clock window of N
         seconds, read from the flight recorder instead of the live
         registry: [over(60s)].  Never nested. *)

type term = Source of source | Ratio of source * source
type cmp = Gt | Ge | Lt | Le

type expr =
  | Threshold of term * cmp * float
  | Increasing of selector  (* strictly grew since the previous tick *)

type rule = {
  name : string;
  severity : string;
  for_ticks : int;  (* consecutive true ticks before firing *)
  expr : expr;
  text : string;  (* the rule as written, for listings *)
}

type state = Inactive | Pending of int | Firing

let state_name = function
  | Inactive -> "inactive"
  | Pending _ -> "pending"
  | Firing -> "firing"

type transition = {
  tr_tick : int;
  tr_ts : float;  (* unix seconds *)
  tr_rule : string;
  tr_severity : string;
  tr_from : string;
  tr_to : string;  (* "firing", "pending", "resolved" *)
  tr_value : float;  (* the measured value at the transition *)
  tr_exemplar : string option;
      (* a trace id from a matching histogram's exemplars, captured
         when the rule went pending/firing — the slow request behind
         the alert, joinable via /trace/<id> *)
}

type t = {
  registry : Metrics.t;
  tsdb : Tsdb.t;  (* backs the [over(window)] sources *)
  mutable rules : rule list;  (* in add order *)
  states : (string, state) Hashtbl.t;  (* by rule name *)
  values : (string, float) Hashtbl.t;  (* last measured value, by rule *)
  exemplars : (string, string) Hashtbl.t;  (* incident trace id, by rule *)
  silenced : (string, unit) Hashtbl.t;
  prev_value : (string, float) Hashtbl.t;  (* rate/increasing snapshots *)
  prev_hist : (string, int array) Hashtbl.t;  (* cumulative bucket snaps *)
  mutable history : transition list;  (* newest first, bounded *)
  mutable ticks : int;
}

let history_capacity = 256

let create ?(registry = Metrics.default) ?(tsdb = Tsdb.default) () =
  {
    registry;
    tsdb;
    rules = [];
    states = Hashtbl.create 8;
    values = Hashtbl.create 8;
    exemplars = Hashtbl.create 4;
    silenced = Hashtbl.create 4;
    prev_value = Hashtbl.create 8;
    prev_hist = Hashtbl.create 8;
    history = [];
    ticks = 0;
  }

let default = create ()

(* --- The rule language ---------------------------------------------------- *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* Prometheus metric-name characters; anything else in a selector name
   is a typo (an unmatched [rate(], a stray operator). *)
let valid_name name =
  name <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

let checked_name tok name =
  if not (valid_name name) then fail "selector %S: bad metric name" tok;
  name

(* [name] or [name{k=v,k2=v2}] (no spaces inside the braces). *)
let selector_of_token tok =
  match String.index_opt tok '{' with
  | None -> { sel_name = checked_name tok tok; sel_labels = [] }
  | Some i ->
      if tok.[String.length tok - 1] <> '}' then
        fail "selector %S: missing closing brace" tok;
      let name = checked_name tok (String.sub tok 0 i) in
      let inside = String.sub tok (i + 1) (String.length tok - i - 2) in
      let labels =
        if inside = "" then []
        else
          List.map
            (fun pair ->
              match String.index_opt pair '=' with
              | None -> fail "selector %S: label %S is not k=v" tok pair
              | Some j ->
                  ( String.sub pair 0 j,
                    String.sub pair (j + 1) (String.length pair - j - 1) ))
            (String.split_on_char ',' inside)
      in
      { sel_name = name; sel_labels = labels }

let quantile_of_token = function
  | "p50" -> Some 0.50
  | "p90" -> Some 0.90
  | "p95" -> Some 0.95
  | "p99" -> Some 0.99
  | _ -> None

(* Thresholds take duration suffixes (time series are in nanoseconds)
   and a bare [x] multiplier for ratio rules. *)
let number_of_token tok =
  let scaled suffix factor =
    let ls = String.length suffix and l = String.length tok in
    if l > ls && String.sub tok (l - ls) ls = suffix then
      Option.map
        (fun v -> v *. factor)
        (float_of_string_opt (String.sub tok 0 (l - ls)))
    else None
  in
  let candidates =
    [ ("ns", 1.); ("us", 1e3); ("ms", 1e6); ("s", 1e9); ("x", 1.) ]
  in
  match List.find_map (fun (s, f) -> scaled s f) candidates with
  | Some v -> Some v
  | None -> float_of_string_opt tok

(* The inner token of [over(...)]: seconds, with an optional [s] or
   [ms] suffix — [over(60s)], [over(500ms)], [over(30)]. *)
let window_of_token tok =
  let l = String.length tok in
  if l > 2 && String.sub tok (l - 2) 2 = "ms" then
    Option.map
      (fun v -> v /. 1000.)
      (float_of_string_opt (String.sub tok 0 (l - 2)))
  else if l > 1 && tok.[l - 1] = 's' then
    float_of_string_opt (String.sub tok 0 (l - 1))
  else float_of_string_opt tok

(* [over(60s)] after any source reads it from the flight recorder's
   trailing window instead of the live registry / per-tick delta. *)
let wrap_over (src, rest) =
  match rest with
  | tok :: rest'
    when String.length tok > 6
         && String.sub tok 0 5 = "over("
         && tok.[String.length tok - 1] = ')' -> (
      let inner = String.sub tok 5 (String.length tok - 6) in
      match window_of_token inner with
      | Some w when w > 0. -> (Windowed (src, w), rest')
      | _ -> fail "bad window %S" tok)
  | _ -> (src, rest)

let source_of_tokens toks =
  wrap_over
    (match toks with
    | [] -> fail "empty source"
    | tok :: rest
      when String.length tok > 6
           && String.sub tok 0 5 = "rate("
           && tok.[String.length tok - 1] = ')' ->
        ( Rate (selector_of_token (String.sub tok 5 (String.length tok - 6))),
          rest )
    | tok :: rest -> (
        let sel = selector_of_token tok in
        match rest with
        | q :: rest' when quantile_of_token q <> None ->
            (Quantile (sel, Option.get (quantile_of_token q)), rest')
        | _ -> (Value sel, rest)))

let cmp_of_token = function
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | "<" -> Some Lt
  | "<=" -> Some Le
  | _ -> None

(* expr := source [/ source] cmp number | selector "increasing"
   rule text := expr ["for" N ["ticks"]] *)
let parse text =
  let tokens =
    List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim text))
  in
  let expr_toks, for_ticks =
    let rec split acc = function
      | [ "for"; n ] | [ "for"; n; ("ticks" | "tick") ] -> (
          match int_of_string_opt n with
          | Some k when k >= 1 -> (List.rev acc, k)
          | _ -> fail "bad for-duration %S" n)
      | [] -> (List.rev acc, 1)
      | tok :: rest -> split (tok :: acc) rest
    in
    split [] tokens
  in
  match expr_toks with
  | [ sel; "increasing" ] -> (Increasing (selector_of_token sel), for_ticks)
  | _ -> (
      let src, rest = source_of_tokens expr_toks in
      let term, rest =
        match rest with
        | "/" :: rest' ->
            let src2, rest'' = source_of_tokens rest' in
            (Ratio (src, src2), rest'')
        | _ -> (Source src, rest)
      in
      match rest with
      | [ c; n ] -> (
          match (cmp_of_token c, number_of_token n) with
          | Some cmp, Some v -> (Threshold (term, cmp, v), for_ticks)
          | None, _ -> fail "bad comparison %S" c
          | _, None -> fail "bad threshold %S" n)
      | _ -> fail "cannot parse rule %S" text)

let add ?(severity = "warn") t ~name text =
  let expr, for_ticks = parse text in
  if List.exists (fun r -> r.name = name) t.rules then
    fail "duplicate rule name %S" name;
  let r = { name; severity; for_ticks; expr; text = String.trim text } in
  t.rules <- t.rules @ [ r ];
  Hashtbl.replace t.states name Inactive;
  r

let remove t name =
  let n = List.length t.rules in
  t.rules <- List.filter (fun r -> r.name <> name) t.rules;
  Hashtbl.remove t.states name;
  Hashtbl.remove t.values name;
  Hashtbl.remove t.exemplars name;
  Hashtbl.remove t.silenced name;
  List.length t.rules < n

let rules t = t.rules

(* --- Reading the registry -------------------------------------------------- *)

let sel_key sel =
  sel.sel_name ^ "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> k ^ "=" ^ v) (List.sort compare sel.sel_labels))
  ^ "}"

(* All series whose labels include the selector's; summing the matches
   gives Prometheus-style aggregation over unnamed label dimensions
   (e.g. [engine_cache_query_ns] across its hit/miss series). *)
let matching_views export sel =
  match
    List.find_opt (fun f -> f.Metrics.fv_name = sel.sel_name) export
  with
  | None -> []
  | Some f ->
      List.filter_map
        (fun (labels, view) ->
          if
            List.for_all
              (fun (k, v) -> List.assoc_opt k labels = Some v)
              sel.sel_labels
          then Some view
          else None)
        f.Metrics.fv_series

let scalar_value views =
  match views with
  | [] -> None
  | _ ->
      Some
        (List.fold_left
           (fun acc -> function
             | Metrics.V_counter c -> acc +. float_of_int c
             | Metrics.V_gauge g -> acc +. g
             | Metrics.V_histogram h -> acc +. h.Metrics.hv_sum)
           0. views)

let summed_cumulative views =
  let acc = Array.make Metrics.bucket_count 0 in
  let any = ref false in
  List.iter
    (function
      | Metrics.V_histogram h ->
          any := true;
          Array.iteri (fun i c -> acc.(i) <- acc.(i) + c) h.Metrics.hv_cumulative
      | _ -> ())
    views;
  if !any then Some acc else None

(* Quantile over a window given as a cumulative bucket-count array:
   interpolate inside the covering power-of-two bucket (we only have
   bucket bounds for the window, not its min/max). *)
let quantile_of_cumulative cum q =
  let total = cum.(Array.length cum - 1) in
  if total = 0 then None
  else begin
    let rank = Float.max 1. (Float.of_int total *. q) in
    let i = ref 0 in
    while float_of_int cum.(!i) < rank do incr i done;
    let below = if !i = 0 then 0 else cum.(!i - 1) in
    let inside = cum.(!i) - below in
    let lo = if !i = 0 then 0. else Metrics.bucket_upper (!i - 1) in
    let hi = Metrics.bucket_upper !i in
    let frac =
      if inside = 0 then 1.
      else (rank -. float_of_int below) /. float_of_int inside
    in
    Some (lo +. (frac *. (hi -. lo)))
  end

(* One tick's evaluation environment: windowed sources are computed at
   most once per selector (so two rules over the same rate share one
   window), and the previous-tick snapshots they consume are committed
   only after every rule has been evaluated. *)
type env = {
  export : Metrics.family_view list;
  memo : (string, float option) Hashtbl.t;
  mutable commits : (unit -> unit) list;
}

let memoized env key f =
  match Hashtbl.find_opt env.memo key with
  | Some v -> v
  | None ->
      let v = f () in
      Hashtbl.add env.memo key v;
      v

let source_value t env = function
  | Value sel ->
      memoized env ("v:" ^ sel_key sel) (fun () ->
          scalar_value (matching_views env.export sel))
  | Rate sel ->
      memoized env ("r:" ^ sel_key sel) (fun () ->
          match scalar_value (matching_views env.export sel) with
          | None -> None
          | Some now ->
              let key = sel_key sel in
              env.commits <-
                (fun () -> Hashtbl.replace t.prev_value key now)
                :: env.commits;
              let prev =
                Option.value ~default:now (Hashtbl.find_opt t.prev_value key)
              in
              Some (Float.max 0. (now -. prev)))
  | Quantile (sel, q) ->
      memoized env
        (Printf.sprintf "q:%s:%g" (sel_key sel) q)
        (fun () ->
          match summed_cumulative (matching_views env.export sel) with
          | None -> None
          | Some now ->
              let key = sel_key sel in
              env.commits <-
                (fun () -> Hashtbl.replace t.prev_hist key now) :: env.commits;
              let window =
                match Hashtbl.find_opt t.prev_hist key with
                | None -> now  (* first sight: everything so far *)
                | Some prev -> Array.mapi (fun i c -> max 0 (c - prev.(i))) now
              in
              quantile_of_cumulative window q)
  | Windowed (src, w) ->
      (* Read the trailing [w] seconds from the flight recorder as one
         bucket; the last populated point is the window's value.  A
         store with no samples (sampler off, metric absent) evaluates
         to None — the rule simply is not in violation. *)
      let sel, agg =
        match src with
        | Value sel -> (sel, Tsdb.Avg)
        | Rate sel -> (sel, Tsdb.Rate)
        | Quantile (sel, q) -> (sel, Tsdb.Quantile q)
        | Windowed _ -> fail "nested over() windows"
      in
      memoized env
        (Printf.sprintf "o:%g:%s:%s" w (Tsdb.agg_to_string agg) (sel_key sel))
        (fun () ->
          Tsdb.range t.tsdb ~labels:sel.sel_labels ~window_s:w ~step_s:w ~agg
            sel.sel_name
          |> List.fold_left
               (fun acc (_, v) -> if v <> None then v else acc)
               None)

let term_value t env = function
  | Source s -> source_value t env s
  | Ratio (num, den) -> (
      match (source_value t env num, source_value t env den) with
      | Some n, Some d when d > 0. -> Some (n /. d)
      | _ -> None)

let compare_with cmp v threshold =
  match cmp with
  | Gt -> v > threshold
  | Ge -> v >= threshold
  | Lt -> v < threshold
  | Le -> v <= threshold

(* A rule whose sources cannot be evaluated (missing series, zero
   denominator, empty quantile window) is simply not in violation. *)
let eval_expr t env = function
  | Threshold (term, cmp, threshold) -> (
      match term_value t env term with
      | None -> (false, 0.)
      | Some v -> (compare_with cmp v threshold, v))
  | Increasing sel -> (
      match scalar_value (matching_views env.export sel) with
      | None -> (false, 0.)
      | Some now ->
          let key = "i:" ^ sel_key sel in
          env.commits <-
            (fun () -> Hashtbl.replace t.prev_value key now) :: env.commits;
          let grew =
            match Hashtbl.find_opt t.prev_value key with
            | None -> false  (* first sight: nothing to compare against *)
            | Some prev -> now > prev
          in
          (grew, now))

(* --- The state machine ----------------------------------------------------- *)

let truncate n l = List.filteri (fun i _ -> i < n) l

let push_transition t r ~from ~to_ ~value ~exemplar =
  t.history <-
    truncate history_capacity
      ({
         tr_tick = t.ticks;
         tr_ts = Unix.gettimeofday ();
         tr_rule = r.name;
         tr_severity = r.severity;
         tr_from = state_name from;
         tr_to = to_;
         tr_value = value;
         tr_exemplar = exemplar;
       }
      :: t.history)

(* The selectors a rule reads — where to look for an exemplar. *)
let rec sels_of_source = function
  | Value sel | Rate sel | Quantile (sel, _) -> [ sel ]
  | Windowed (src, _) -> sels_of_source src

let sels_of_expr = function
  | Threshold (Source s, _, _) -> sels_of_source s
  | Threshold (Ratio (a, b), _, _) -> sels_of_source a @ sels_of_source b
  | Increasing sel -> [ sel ]

(* The worst (largest-valued) exemplar among the histograms a rule
   reads: for a latency alert, the slowest recently-observed request —
   its trace id is what an operator wants to open first. *)
let exemplar_for env expr =
  let best = ref None in
  List.iter
    (fun sel ->
      List.iter
        (function
          | Metrics.V_histogram h ->
              List.iter
                (fun (_, ex) ->
                  match !best with
                  | Some b when b.Metrics.ex_value >= ex.Metrics.ex_value -> ()
                  | _ -> best := Some ex)
                h.Metrics.hv_exemplars
          | _ -> ())
        (matching_views env.export sel))
    (sels_of_expr expr);
  Option.map (fun ex -> ex.Metrics.ex_trace_id) !best

let alert_gauge t r =
  Metrics.gauge ~registry:t.registry
    ~help:"alert state by rule: 1 firing, 0 otherwise"
    ~labels:[ ("alertname", r.name); ("severity", r.severity) ]
    "ALERTS"

let is_silenced t name = Hashtbl.mem t.silenced name

let step t env r violated value =
  let old = Option.value ~default:Inactive (Hashtbl.find_opt t.states r.name) in
  let next =
    match (old, violated) with
    | Inactive, true -> if r.for_ticks <= 1 then Firing else Pending 1
    | Pending n, true -> if n + 1 >= r.for_ticks then Firing else Pending (n + 1)
    | Firing, true -> Firing
    | (Inactive | Pending _ | Firing), false -> Inactive
  in
  Hashtbl.replace t.states r.name next;
  Hashtbl.replace t.values r.name value;
  (* Escalations capture a fresh exemplar (the slowest recent request
     behind the violation); retreats carry the incident's exemplar out
     into the history, then drop it from the live table. *)
  let escalate to_ =
    let ex = exemplar_for env r.expr in
    (match ex with
    | Some id -> Hashtbl.replace t.exemplars r.name id
    | None -> ());
    push_transition t r ~from:old ~to_ ~value ~exemplar:ex
  in
  let retreat to_ =
    let ex = Hashtbl.find_opt t.exemplars r.name in
    Hashtbl.remove t.exemplars r.name;
    push_transition t r ~from:old ~to_ ~value ~exemplar:ex
  in
  (match (old, next) with
  | Inactive, Pending _ -> escalate "pending"
  | (Inactive | Pending _), Firing -> escalate "firing"
  | Firing, Inactive -> retreat "resolved"
  | Pending _, Inactive ->
      (* a flap that never fired: note the retreat, it is what the
         for-duration is there to absorb *)
      retreat "inactive"
  | _ -> ());
  Metrics.set (alert_gauge t r)
    (if next = Firing && not (is_silenced t r.name) then 1. else 0.)

let tick t =
  t.ticks <- t.ticks + 1;
  let env =
    { export = Metrics.export t.registry; memo = Hashtbl.create 8; commits = [] }
  in
  List.iter
    (fun r ->
      let violated, value = eval_expr t env r.expr in
      step t env r violated value)
    t.rules;
  List.iter (fun commit -> commit ()) env.commits

let ticks t = t.ticks
let state t name = Hashtbl.find_opt t.states name
let last_value t name = Hashtbl.find_opt t.values name

let states t =
  List.map
    (fun r ->
      (r, Option.value ~default:Inactive (Hashtbl.find_opt t.states r.name)))
    t.rules

let firing t =
  List.filter
    (fun r -> Hashtbl.find_opt t.states r.name = Some Firing)
    t.rules

let history t = t.history
let last_exemplar t name = Hashtbl.find_opt t.exemplars name

let silence t name on =
  if not (List.exists (fun r -> r.name = name) t.rules) then false
  else begin
    if on then Hashtbl.replace t.silenced name ()
    else Hashtbl.remove t.silenced name;
    (* reflect the change in the exported gauge immediately *)
    List.iter
      (fun r ->
        if r.name = name then
          Metrics.set (alert_gauge t r)
            (if (not on) && Hashtbl.find_opt t.states name = Some Firing then 1.
             else 0.))
      t.rules;
    true
  end

let clear t =
  List.iter (fun r -> Metrics.set (alert_gauge t r) 0.) t.rules;
  t.rules <- [];
  Hashtbl.reset t.states;
  Hashtbl.reset t.values;
  Hashtbl.reset t.exemplars;
  Hashtbl.reset t.silenced;
  Hashtbl.reset t.prev_value;
  Hashtbl.reset t.prev_hist;
  t.history <- [];
  t.ticks <- 0

(* --- Default rules ---------------------------------------------------------- *)

(* Service-level defaults for an interactive directory process.  The
   read-amplification band sits ~4x above the calibrated steady-state
   of the seeded workloads (tens of reads per query); latency gets a
   generous interactive bound.  [install_defaults] is idempotent. *)
let install_defaults ?(t = default) () =
  if t.rules = [] then begin
    ignore
      (add t ~severity:"warn" ~name:"query-latency-p99"
         "engine_query_ns p99 > 250ms for 3");
    ignore
      (add t ~severity:"critical" ~name:"read-amplification"
         "rate(engine_page_reads_total) / rate(engine_queries_total) > 400 for 3");
    ignore
      (add t ~severity:"warn" ~name:"plan-drift" "plan_drift_total increasing");
    (* Serving SLOs: end-to-end latency (queue wait included) and the
       shed rate of the admission queue.  Quiet processes (no serving,
       or no traffic this tick) read 0/0 ratios and empty quantiles,
       which never fire. *)
    ignore
      (add t ~severity:"warn" ~name:"srv-latency-p99"
         "srv_request_ns p99 > 250ms for 3");
    ignore
      (add t ~severity:"critical" ~name:"srv-shed-rate"
         "rate(srv_shed_total) / rate(srv_requests_total) > 0.05 for 2");
    (* A sustained-latency rule over the flight recorder: the p99 of
       the last minute of recorded windows, not one tick's delta — a
       single slow query cannot trip it.  Evaluates to no-violation
       until the tsdb sampler has data. *)
    ignore
      (add t ~severity:"critical" ~name:"srv-latency-sustained"
         "srv_request_ns p99 over(60s) > 500ms for 2")
  end

(* --- Rendering --------------------------------------------------------------- *)

let transition_json tr =
  Json.Obj
    ([
       ("tick", Json.Num (float_of_int tr.tr_tick));
       ("ts", Json.Num tr.tr_ts);
       ("rule", Json.Str tr.tr_rule);
       ("severity", Json.Str tr.tr_severity);
       ("from", Json.Str tr.tr_from);
       ("to", Json.Str tr.tr_to);
       ("value", Json.Num tr.tr_value);
     ]
    @
    match tr.tr_exemplar with
    | Some id -> [ ("exemplar_trace_id", Json.Str id) ]
    | None -> [])

let rule_json t r =
  let st = Option.value ~default:Inactive (Hashtbl.find_opt t.states r.name) in
  Json.Obj
    ([
       ("name", Json.Str r.name);
       ("severity", Json.Str r.severity);
       ("expr", Json.Str r.text);
       ("for_ticks", Json.Num (float_of_int r.for_ticks));
       ("state", Json.Str (state_name st));
     ]
    @ (match st with
      | Pending n -> [ ("pending_ticks", Json.Num (float_of_int n)) ]
      | _ -> [])
    @ (match Hashtbl.find_opt t.values r.name with
      | Some v -> [ ("value", Json.Num v) ]
      | None -> [])
    @ (match Hashtbl.find_opt t.exemplars r.name with
      | Some id -> [ ("exemplar_trace_id", Json.Str id) ]
      | None -> [])
    @ if is_silenced t r.name then [ ("silenced", Json.Bool true) ] else [])

let to_json t =
  Json.Obj
    [
      ("ticks", Json.Num (float_of_int t.ticks));
      ("firing", Json.Num (float_of_int (List.length (firing t))));
      ("rules", Json.Arr (List.map (rule_json t) t.rules));
      ("history", Json.Arr (List.map transition_json t.history));
    ]

let pp_state ppf st = Fmt.string ppf (state_name st)

let pp_rule t ppf r =
  let st = Option.value ~default:Inactive (Hashtbl.find_opt t.states r.name) in
  Fmt.pf ppf "%-24s %-8s %-9s%s  %s%s" r.name r.severity (state_name st)
    (if is_silenced t r.name then " (silenced)" else "")
    r.text
    (match Hashtbl.find_opt t.values r.name with
    | Some v when st <> Inactive -> Printf.sprintf "  [value %.6g]" v
    | _ -> "")

let pp_transition ppf tr =
  Fmt.pf ppf "tick %-4d %-24s %-8s %s -> %s  [value %.6g]%s" tr.tr_tick
    tr.tr_rule tr.tr_severity tr.tr_from tr.tr_to tr.tr_value
    (match tr.tr_exemplar with
    | Some id -> "  trace " ^ id
    | None -> "")
