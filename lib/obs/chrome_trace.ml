(* Chrome trace-event (catapult) export of Trace span trees.

   The trace-event JSON format is what chrome://tracing, Perfetto and
   speedscope load: an object with a "traceEvents" array of complete
   ("ph":"X") events carrying microsecond timestamps and durations plus
   pid/tid lanes.  We map the whole process to one pid and each actor
   (the coordinator, every directory server that answered a shipped
   sub-query) to its own tid, emitting "thread_name" metadata events so
   the viewer labels the lanes.  Every X event carries the span's trace
   id, I/O delta and row annotation in "args", so a stitched
   distributed query reads as one causal tree across server lanes. *)

let us_of_ns ns = float_of_int ns /. 1e3

(* Deterministic tid assignment: order of first appearance in a
   preorder walk, so the coordinator (root) is lane 0. *)
let assign_tids spans =
  let next = ref 0 in
  let tids = Hashtbl.create 8 in
  let rec walk (s : Trace.span) =
    if not (Hashtbl.mem tids s.Trace.actor) then begin
      Hashtbl.add tids s.Trace.actor !next;
      incr next
    end;
    List.iter walk s.Trace.children
  in
  List.iter walk spans;
  tids

let lane_name actor = if actor = "" then "main" else actor

let pid = 1

let thread_metadata tids =
  Hashtbl.fold
    (fun actor tid acc ->
      Json.Obj
        [
          ("name", Json.Str "thread_name");
          ("ph", Json.Str "M");
          ("pid", Json.Num (float_of_int pid));
          ("tid", Json.Num (float_of_int tid));
          ("args", Json.Obj [ ("name", Json.Str (lane_name actor)) ]);
        ]
      :: acc)
    tids []
  |> List.sort compare

let event_of_span tids (s : Trace.span) =
  let args =
    [ ("trace_id", Json.Str s.Trace.trace_id) ]
    @ (if s.Trace.detail = "" then []
       else [ ("detail", Json.Str s.Trace.detail) ])
    @ (match s.Trace.rows with
      | None -> []
      | Some n -> [ ("rows", Json.Num (float_of_int n)) ])
    @ [
        ("reads", Json.Num (float_of_int s.Trace.io.Io_stats.page_reads));
        ("writes", Json.Num (float_of_int s.Trace.io.Io_stats.page_writes));
        ("alloc_bytes", Json.Num (float_of_int s.Trace.alloc_bytes));
      ]
    @
    if s.Trace.io.Io_stats.messages = 0 then []
    else
      [
        ("messages", Json.Num (float_of_int s.Trace.io.Io_stats.messages));
        ( "bytes_shipped",
          Json.Num (float_of_int s.Trace.io.Io_stats.bytes_shipped) );
      ]
  in
  Json.Obj
    [
      ("name", Json.Str s.Trace.name);
      ("cat", Json.Str "query");
      ("ph", Json.Str "X");
      ("ts", Json.Num (us_of_ns s.Trace.start_ns));
      ("dur", Json.Num (us_of_ns s.Trace.elapsed_ns));
      ("pid", Json.Num (float_of_int pid));
      ("tid", Json.Num (float_of_int (Hashtbl.find tids s.Trace.actor)));
      ("args", Json.Obj args);
    ]

let of_spans spans =
  let tids = assign_tids spans in
  let rec walk acc (s : Trace.span) =
    List.fold_left walk (event_of_span tids s :: acc) s.Trace.children
  in
  let events = List.rev (List.fold_left walk [] spans) in
  Json.Obj
    [
      ("traceEvents", Json.Arr (thread_metadata tids @ events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_string spans = Json.to_string (of_spans spans)
