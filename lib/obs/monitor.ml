(* The live introspection server: a dependency-free HTTP/1.1 endpoint
   over Unix sockets serving the observability surface while the
   process runs — Prometheus-style scraping instead of post-hoc files.

   One accept thread serves requests serially (handlers read shared
   single-threaded state; OCaml sys-threads interleave at safe points,
   so a scrape sees a consistent-enough snapshot for monitoring
   purposes and never corrupts the registry).  Built-in routes:

     /           plain-text index of the routes
     /metrics    OpenMetrics exposition of the registry (with exemplars)
     /healthz    {"status":"ok", uptime, served request count}
     /slowlog    the slow-query captures, JSON lines (newest threshold)
     /trace      summaries of the recent-trace ring, JSON
     /trace/<n>  the n-th recent trace (0 = newest; or a trace id —
                 including tail-retained ones — or "last") as Chrome
                 trace-event JSON
     /tail       the tail sampler's retained traces, JSON
     /range      flight-recorder range query (?metric=&agg=&window=&step=)
     /dashboard  self-contained live HTML dashboard

   Extra handlers (e.g. /cache, whose stats live above this layer)
   register with [add_handler]; they receive the full request target
   (query string included — [split_target] parses it).  Monitoring is
   opt-in: nothing listens until [start] is called. *)

type response = { status : int; content_type : string; body : string }

let respond ?(status = 200) ?(content_type = "text/plain; charset=utf-8") body
    =
  { status; content_type; body }

type t = {
  sock : Unix.file_descr;
  port : int;
  registry : Metrics.t;
  started_ns : int;
  client_timeout : float;
  mutable stopping : bool;
  mutable handlers : (string * (string -> response option)) list;
  mutable thread : Thread.t option;
  mutable served : int;  (* total requests, for /healthz *)
  open_conns : Metrics.gauge;
}

let reason = function
  | 200 -> "OK"
  | 404 -> "Not Found"
  | 400 -> "Bad Request"
  | 405 -> "Method Not Allowed"
  | _ -> "Internal Server Error"

(* --- Request targets -------------------------------------------------------- *)

let url_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> -1
  in
  let rec go i =
    if i < n then
      match s.[i] with
      | '+' ->
          Buffer.add_char b ' ';
          go (i + 1)
      | '%' when i + 2 < n && hex s.[i + 1] >= 0 && hex s.[i + 2] >= 0 ->
          Buffer.add_char b (Char.chr ((hex s.[i + 1] * 16) + hex s.[i + 2]));
          go (i + 3)
      | c ->
          Buffer.add_char b c;
          go (i + 1)
  in
  go 0;
  Buffer.contents b

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
      let path = String.sub target 0 i in
      let qs = String.sub target (i + 1) (String.length target - i - 1) in
      let params =
        List.filter_map
          (fun kv ->
            match String.index_opt kv '=' with
            | None -> if kv = "" then None else Some (url_decode kv, "")
            | Some j ->
                Some
                  ( url_decode (String.sub kv 0 j),
                    url_decode (String.sub kv (j + 1) (String.length kv - j - 1))
                  ))
          (String.split_on_char '&' qs)
      in
      (path, params)

(* --- Built-in routes ------------------------------------------------------ *)

(* Slow-query events annotated with whether their trace survives in
   the tail sampler — the join an operator follows from a slowlog line
   straight to /trace/<id>. *)
let jsonl_of_events events =
  String.concat ""
    (List.map
       (fun ev ->
         let j = Qlog.to_json ev in
         let j =
           match j with
           | Json.Obj fields -> (
               match Json.member "trace_id" j with
               | Json.Str tid -> (
                   match Tail.find tid with
                   | Some r ->
                       Json.Obj
                         (fields
                         @ [
                             ("trace_retained", Json.Bool true);
                             ( "trace_reason",
                               Json.Str (Tail.reason_to_string r.Tail.r_reason)
                             );
                           ])
                   | None ->
                       Json.Obj (fields @ [ ("trace_retained", Json.Bool false) ])
                   )
               | _ -> j)
           | j -> j
         in
         Json.to_string j ^ "\n")
       events)

let trace_summaries () =
  Json.Arr
    (List.mapi
       (fun i (s : Trace.span) ->
         Json.Obj
           [
             ("n", Json.Num (float_of_int i));
             ("trace_id", Json.Str s.Trace.trace_id);
             ("name", Json.Str s.Trace.name);
             ("detail", Json.Str s.Trace.detail);
             ("spans", Json.Num (float_of_int (Trace.span_count s)));
             ("actors", Json.Arr (List.map (fun a -> Json.Str (if a = "" then "main" else a)) (Trace.actors s)));
             ("wall_ns", Json.Num (float_of_int s.Trace.elapsed_ns));
           ])
       (Trace.recent ()))

let find_trace sel =
  let ring = Trace.recent () in
  match sel with
  | "last" -> (match ring with [] -> None | s :: _ -> Some s)
  | sel -> (
      match int_of_string_opt sel with
      | Some n -> List.nth_opt ring n
      | None -> (
          match
            List.find_opt (fun (s : Trace.span) -> s.Trace.trace_id = sel) ring
          with
          | Some s -> Some s
          | None ->
              (* the recent ring is shallow; tail-retained traces live
                 longer, and exemplars/slowlog point at those ids *)
              Option.map (fun r -> r.Tail.r_span) (Tail.find sel)))

let tail_json () =
  Json.Obj
    [
      ("retained", Json.Num (float_of_int (Tail.retained_count ())));
      ("retained_spans", Json.Num (float_of_int (Tail.retained_spans ())));
      ("budget_spans", Json.Num (float_of_int (Tail.budget_spans ())));
      ( "slow_threshold_ms",
        Json.Num (float_of_int (Tail.slow_threshold_ns ()) /. 1e6) );
      ("sample_every", Json.Num (float_of_int (Tail.sample_every ())));
      ( "traces",
        Json.Arr
          (List.map
             (fun (r : Tail.retained) ->
               Json.Obj
                 [
                   ("trace_id", Json.Str r.Tail.r_trace_id);
                   ("reason", Json.Str (Tail.reason_to_string r.Tail.r_reason));
                   ("origin", Json.Str r.Tail.r_origin);
                   ("ts", Json.Num r.Tail.r_ts);
                   ("wall_ns", Json.Num (float_of_int r.Tail.r_wall_ns));
                   ( "spans",
                     Json.Num (float_of_int (Trace.span_count r.Tail.r_span)) );
                   ("name", Json.Str r.Tail.r_span.Trace.name);
                   ("detail", Json.Str r.Tail.r_span.Trace.detail);
                 ])
             (Tail.retained ())) );
    ]

(* /range: the flight recorder's query surface.  Unknown params are
   label matchers, so /range?metric=srv_request_ns&agg=p99&route=line
   restricts to that route's series. *)
let range_response params =
  match List.assoc_opt "metric" params with
  | None | Some "" ->
      respond ~status:400
        "usage: /range?metric=NAME[&agg=rate|sum|avg|min|max|pNN][&window=SECONDS][&step=SECONDS][&LABEL=VALUE...]\n"
  | Some metric -> (
      let fparam name default =
        match List.assoc_opt name params with
        | Some s -> (
            match float_of_string_opt s with
            | Some f when f > 0. -> f
            | _ -> default)
        | None -> default
      in
      let window_s = fparam "window" 300. in
      let step_s = fparam "step" (Tsdb.resolution_s Tsdb.default) in
      match
        match List.assoc_opt "agg" params with
        | None -> Some Tsdb.Avg
        | Some a -> Tsdb.agg_of_string a
      with
      | None ->
          respond ~status:400
            "bad agg: want rate|sum|avg|min|max|pNN (p50, p99, p999)\n"
      | Some agg ->
          let labels =
            List.filter
              (fun (k, _) ->
                not (List.mem k [ "metric"; "window"; "step"; "agg" ]))
              params
          in
          let points =
            Tsdb.range Tsdb.default ~labels ~step_s ~window_s ~agg metric
          in
          respond ~content_type:"application/json"
            (Json.to_string
               (Json.Obj
                  [
                    ("metric", Json.Str metric);
                    ("agg", Json.Str (Tsdb.agg_to_string agg));
                    ("window_s", Json.Num window_s);
                    ("step_s", Json.Num step_s);
                    ( "points",
                      Json.Arr
                        (List.map
                           (fun (ts, v) ->
                             Json.Arr
                               [
                                 Json.Num ts;
                                 (match v with
                                 | None -> Json.Null
                                 | Some v -> Json.Num v);
                               ])
                           points) );
                  ])))

let index_body =
  "ndq introspection server\n\
   /metrics    OpenMetrics exposition (exemplars link to retained traces)\n\
   /healthz    liveness + uptime + journal sink\n\
   /alerts     alert rules, states and transition history (JSON)\n\
   /slowlog    slow-query captures (JSON lines, trace_retained join)\n\
   /trace      recent traces (JSON summaries)\n\
   /trace/<n>  one trace as Chrome trace-event JSON (n, trace id or 'last')\n\
   /tail       tail-sampled retained traces (JSON)\n\
   /range      flight-recorder range query: ?metric=NAME&agg=p99&window=300\n\
   /dashboard  live dashboard (self-contained HTML, inline SVG sparklines)\n\
   /planstats  plan-quality observatory: q-error summaries + calibration\n\
   /workload   top plans by wall time (count, io, cache hit rate, worst q)\n"

let builtin t path params =
  match path with
  | "/" -> Some (respond index_body)
  | "/metrics" ->
      Some
        (respond ~content_type:Promexp.content_type_openmetrics
           (Promexp.to_openmetrics t.registry))
  | "/range" -> Some (range_response params)
  | "/dashboard" ->
      Some (respond ~content_type:"text/html; charset=utf-8" (Dashboard.page ()))
  | "/tail" ->
      Some
        (respond ~content_type:"application/json"
           (Json.to_string (tail_json ())))
  | "/healthz" ->
      Some
        (respond ~content_type:"application/json"
           (Json.to_string
              (Json.Obj
                 [
                   ("status", Json.Str "ok");
                   (* Whole seconds: a fractional uptime serializes with
                      variable width, so a HEAD rendered moments after a GET
                      could advertise a different Content-Length. *)
                   ( "uptime_s",
                     Json.Num
                       (float_of_int
                          ((Mclock.now_ns () - t.started_ns) / 1_000_000_000))
                   );
                   ("requests", Json.Num (float_of_int t.served));
                   ( "journal",
                     Json.Obj
                       ([ ("enabled", Json.Bool (Qlog.enabled ())) ]
                       @ (match Qlog.path () with
                         | None -> []
                         | Some p -> [ ("path", Json.Str p) ])
                       @ [
                           ( "sink_bytes",
                             Json.Num (float_of_int (Qlog.sink_bytes ())) );
                           ( "max_bytes",
                             match Qlog.max_bytes () with
                             | None -> Json.Null
                             | Some n -> Json.Num (float_of_int n) );
                           ( "max_files",
                             Json.Num (float_of_int (Qlog.max_files ())) );
                         ]) );
                   ( "alerts_firing",
                     Json.Num
                       (float_of_int
                          (List.length (Alerts.firing Alerts.default))) );
                 ])))
  | "/alerts" ->
      Some
        (respond ~content_type:"application/json"
           (Json.to_string (Alerts.to_json Alerts.default)))
  | "/slowlog" ->
      Some
        (respond ~content_type:"application/x-ndjson"
           (jsonl_of_events (Qlog.slowest 64)))
  | "/planstats" ->
      Some
        (respond ~content_type:"application/json"
           (Json.to_string (Planstats.to_json Planstats.default)))
  | "/workload" ->
      Some
        (respond ~content_type:"application/json"
           (Json.to_string (Planstats.workload_json Planstats.default)))
  | "/trace" | "/trace/" ->
      Some
        (respond ~content_type:"application/json"
           (Json.to_string (trace_summaries ())))
  | path when String.length path > 7 && String.sub path 0 7 = "/trace/" -> (
      let sel = String.sub path 7 (String.length path - 7) in
      match find_trace sel with
      | Some span ->
          Some
            (respond ~content_type:"application/json"
               (Chrome_trace.to_string [ span ]))
      | None ->
          Some
            (respond ~status:404 (Printf.sprintf "no trace %S\n" sel)))
  | _ -> None

(* --- HTTP plumbing -------------------------------------------------------- *)

(* Self-metrics label the first path segment only (so /trace/<n> stays
   one series) and the response status; the endpoint observing itself
   is the first thing an operator checks when scrapes look wrong. *)
let route_label path =
  match String.index_from_opt path 1 '/' with
  | Some i -> String.sub path 0 i
  | None -> path
  | exception Invalid_argument _ -> path

let observe_request t ~route ~status ~ns =
  t.served <- t.served + 1;
  Metrics.incr
    (Metrics.counter ~registry:t.registry
       ~help:"requests served by the introspection endpoint"
       ~labels:[ ("route", route); ("status", string_of_int status) ]
       "monitor_requests_total");
  Metrics.observe_ns
    (Metrics.histogram ~registry:t.registry
       ~help:"wall nanoseconds per introspection request"
       ~labels:[ ("route", route) ]
       "monitor_request_ns")
    ns

(* Registered handlers see the full target (query string included);
   the builtins route on the bare path with the query string parsed
   into params. *)
let handle t target =
  let path, params = split_target target in
  let rec try_handlers = function
    | [] -> (
        match builtin t path params with
        | Some r -> r
        | None -> respond ~status:404 (Printf.sprintf "no route %s\n" path))
    | (_, h) :: rest -> (
        match h target with Some r -> r | None -> try_handlers rest)
  in
  try try_handlers t.handlers
  with e ->
    respond ~status:500
      (Printf.sprintf "handler error: %s\n" (Printexc.to_string e))

let read_request fd =
  (* Read until the blank line ending the header block (we never expect
     bodies), bounded so a misbehaving client can't grow the buffer. *)
  let b = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec fill () =
    if Buffer.length b < 16_384 then begin
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        Buffer.add_subbytes b chunk 0 n;
        let text = Buffer.contents b in
        let done_ =
          (* header terminator seen? *)
          let rec scan i =
            i + 3 < String.length text
            && ((text.[i] = '\r' && text.[i + 1] = '\n' && text.[i + 2] = '\r'
                 && text.[i + 3] = '\n')
               || scan (i + 1))
          in
          scan 0
        in
        if not done_ then fill ()
      end
    end
  in
  (try fill () with Unix.Unix_error _ -> ());
  let text = Buffer.contents b in
  match String.index_opt text '\n' with
  | None -> None
  | Some i -> (
      let line = String.trim (String.sub text 0 i) in
      match String.split_on_char ' ' line with
      | meth :: target :: _ when meth <> "" -> Some (meth, target)
      | _ -> None)

(* The response head alone — shared with the serving front-end, whose
   streamed responses send a head with no [Content-Length] (the body is
   EOF-delimited) followed by rows as they are produced. *)
let http_head ?(content_type = "text/plain; charset=utf-8") ?(headers = [])
    ?content_length status =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason status));
  Buffer.add_string b (Printf.sprintf "Content-Type: %s\r\n" content_type);
  (match content_length with
  | Some n -> Buffer.add_string b (Printf.sprintf "Content-Length: %d\r\n" n)
  | None -> ());
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b "Connection: close\r\n\r\n";
  Buffer.contents b

let write_response fd ~head_only { status; content_type; body } =
  let head =
    http_head ~content_type ~content_length:(String.length body) status
  in
  let payload = if head_only then head else head ^ body in
  let bytes = Bytes.of_string payload in
  let rec write_all off =
    if off < Bytes.length bytes then
      let n = Unix.write fd bytes off (Bytes.length bytes - off) in
      if n > 0 then write_all (off + n)
  in
  try write_all 0 with Unix.Unix_error _ -> ()

let serve_client t fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* Per-connection send/receive deadlines: a stalled client times
         out instead of wedging the single accept thread. *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.client_timeout;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.client_timeout;
      let t0 = Mclock.now_ns () in
      let finish ~route response head_only =
        write_response fd ~head_only response;
        observe_request t ~route ~status:response.status
          ~ns:(Mclock.now_ns () - t0)
      in
      match read_request fd with
      | None -> finish ~route:"(bad)" (respond ~status:400 "bad request\n") false
      | Some (meth, target) when meth = "GET" || meth = "HEAD" ->
          (* HEAD gets the same status/headers as GET, body withheld;
             Content-Length still names the GET body's size, as the
             spec wants. *)
          finish
            ~route:(route_label (fst (split_target target)))
            (handle t target) (meth = "HEAD")
      | Some (meth, target) ->
          finish
            ~route:(route_label (fst (split_target target)))
            (respond ~status:405
               (Printf.sprintf "method %s not allowed (GET, HEAD)\n" meth))
            false)

let accept_loop t =
  while not t.stopping do
    match Unix.accept t.sock with
    | client, _ ->
        if t.stopping then (try Unix.close client with Unix.Unix_error _ -> ())
        else begin
          Metrics.set t.open_conns 1.;
          (try serve_client t client with _ -> ());
          Metrics.set t.open_conns 0.
        end
    | exception Unix.Unix_error _ -> ()  (* stop() closes the socket *)
  done

(* --- Lifecycle ------------------------------------------------------------ *)

let start ?(registry = Metrics.default) ?(client_timeout_s = 2.) ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      sock;
      port;
      registry;
      started_ns = Mclock.now_ns ();
      client_timeout = (if client_timeout_s > 0. then client_timeout_s else 2.);
      stopping = false;
      handlers = [];
      thread = None;
      served = 0;
      open_conns =
        Metrics.gauge ~registry
          ~help:"connections the introspection endpoint is serving"
          "monitor_open_connections";
    }
  in
  t.thread <- Some (Thread.create accept_loop t);
  t

let port t = t.port

let add_handler t name h = t.handlers <- t.handlers @ [ (name, h) ]

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    (* wake a blocked accept with a throwaway connection *)
    (try
       let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close s with Unix.Unix_error _ -> ())
         (fun () ->
           Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port)))
     with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.thread;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end

(* --- A minimal loopback client ---------------------------------------------- *)

(* Enough HTTP to scrape our own endpoint (the bench harness does, and
   the tests): send one request, read to EOF, split status line,
   headers and body.  Header names come back lowercased.  [body] turns
   the request into one carrying a payload (the serving front-end's
   POST /query). *)
let request ?(host = "127.0.0.1") ?(meth = "GET") ?body ~port path =
  let addr = Unix.inet_addr_of_string host in
  let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close s with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt_float s Unix.SO_RCVTIMEO 5.;
      Unix.setsockopt_float s Unix.SO_SNDTIMEO 5.;
      Unix.connect s (Unix.ADDR_INET (addr, port));
      let req =
        match body with
        | None ->
            Printf.sprintf
              "%s %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n" meth
              path host
        | Some payload ->
            Printf.sprintf
              "%s %s HTTP/1.1\r\nHost: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
              meth path host (String.length payload) payload
      in
      let bytes = Bytes.of_string req in
      ignore (Unix.write s bytes 0 (Bytes.length bytes));
      let b = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read s chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes b chunk 0 n;
          drain ()
        end
      in
      (try drain () with Unix.Unix_error _ -> ());
      let text = Buffer.contents b in
      let status =
        match String.split_on_char ' ' text with
        | _ :: code :: _ -> Option.value ~default:0 (int_of_string_opt code)
        | _ -> 0
      in
      let header_end =
        let rec find i =
          if i + 3 >= String.length text then String.length text
          else if
            text.[i] = '\r' && text.[i + 1] = '\n' && text.[i + 2] = '\r'
            && text.[i + 3] = '\n'
          then i
          else find (i + 1)
        in
        find 0
      in
      let headers =
        match String.split_on_char '\n' (String.sub text 0 header_end) with
        | [] -> []
        | _status_line :: rest ->
            List.filter_map
              (fun line ->
                match String.index_opt line ':' with
                | None -> None
                | Some i ->
                    Some
                      ( String.lowercase_ascii (String.trim (String.sub line 0 i)),
                        String.trim
                          (String.sub line (i + 1) (String.length line - i - 1))
                      ))
              rest
      in
      let body =
        let start = min (String.length text) (header_end + 4) in
        String.sub text start (String.length text - start)
      in
      (status, headers, body))

let get ?host ~port path =
  let status, _, body = request ?host ~port path in
  (status, body)
