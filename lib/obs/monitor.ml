(* The live introspection server: a dependency-free HTTP/1.1 endpoint
   over Unix sockets serving the observability surface while the
   process runs — Prometheus-style scraping instead of post-hoc files.

   One accept thread serves requests serially (handlers read shared
   single-threaded state; OCaml sys-threads interleave at safe points,
   so a scrape sees a consistent-enough snapshot for monitoring
   purposes and never corrupts the registry).  Built-in routes:

     /          plain-text index of the routes
     /metrics   Prometheus text exposition of the registry
     /healthz   {"status":"ok", uptime, served request count}
     /slowlog   the slow-query captures, JSON lines (newest threshold)
     /trace     summaries of the recent-trace ring, JSON
     /trace/<n> the n-th recent trace (0 = newest; or a trace id, or
                "last") as Chrome trace-event JSON

   Extra handlers (e.g. /cache, whose stats live above this layer)
   register with [add_handler].  Monitoring is opt-in: nothing listens
   until [start] is called. *)

type response = { status : int; content_type : string; body : string }

let respond ?(status = 200) ?(content_type = "text/plain; charset=utf-8") body
    =
  { status; content_type; body }

type t = {
  sock : Unix.file_descr;
  port : int;
  registry : Metrics.t;
  started_ns : int;
  client_timeout : float;
  mutable stopping : bool;
  mutable handlers : (string * (string -> response option)) list;
  mutable thread : Thread.t option;
  mutable served : int;  (* total requests, for /healthz *)
  open_conns : Metrics.gauge;
}

let reason = function
  | 200 -> "OK"
  | 404 -> "Not Found"
  | 400 -> "Bad Request"
  | 405 -> "Method Not Allowed"
  | _ -> "Internal Server Error"

(* --- Built-in routes ------------------------------------------------------ *)

let jsonl_of_events events =
  String.concat ""
    (List.map (fun ev -> Json.to_string (Qlog.to_json ev) ^ "\n") events)

let trace_summaries () =
  Json.Arr
    (List.mapi
       (fun i (s : Trace.span) ->
         Json.Obj
           [
             ("n", Json.Num (float_of_int i));
             ("trace_id", Json.Str s.Trace.trace_id);
             ("name", Json.Str s.Trace.name);
             ("detail", Json.Str s.Trace.detail);
             ("spans", Json.Num (float_of_int (Trace.span_count s)));
             ("actors", Json.Arr (List.map (fun a -> Json.Str (if a = "" then "main" else a)) (Trace.actors s)));
             ("wall_ns", Json.Num (float_of_int s.Trace.elapsed_ns));
           ])
       (Trace.recent ()))

let find_trace sel =
  let ring = Trace.recent () in
  match sel with
  | "last" -> (match ring with [] -> None | s :: _ -> Some s)
  | sel -> (
      match int_of_string_opt sel with
      | Some n -> List.nth_opt ring n
      | None ->
          List.find_opt (fun (s : Trace.span) -> s.Trace.trace_id = sel) ring)

let index_body =
  "ndq introspection server\n\
   /metrics    Prometheus text exposition\n\
   /healthz    liveness + uptime + journal sink\n\
   /alerts     alert rules, states and transition history (JSON)\n\
   /slowlog    slow-query captures (JSON lines)\n\
   /trace      recent traces (JSON summaries)\n\
   /trace/<n>  one trace as Chrome trace-event JSON (n, trace id or 'last')\n\
   /planstats  plan-quality observatory: q-error summaries + calibration\n\
   /workload   top plans by wall time (count, io, cache hit rate, worst q)\n"

let builtin t path =
  match path with
  | "/" -> Some (respond index_body)
  | "/metrics" ->
      Some
        (respond ~content_type:Promexp.content_type
           (Promexp.to_text t.registry))
  | "/healthz" ->
      Some
        (respond ~content_type:"application/json"
           (Json.to_string
              (Json.Obj
                 [
                   ("status", Json.Str "ok");
                   ( "uptime_s",
                     Json.Num
                       (float_of_int (Mclock.now_ns () - t.started_ns) /. 1e9)
                   );
                   ("requests", Json.Num (float_of_int t.served));
                   ( "journal",
                     Json.Obj
                       ([ ("enabled", Json.Bool (Qlog.enabled ())) ]
                       @ (match Qlog.path () with
                         | None -> []
                         | Some p -> [ ("path", Json.Str p) ])
                       @ [
                           ( "sink_bytes",
                             Json.Num (float_of_int (Qlog.sink_bytes ())) );
                           ( "max_bytes",
                             match Qlog.max_bytes () with
                             | None -> Json.Null
                             | Some n -> Json.Num (float_of_int n) );
                           ( "max_files",
                             Json.Num (float_of_int (Qlog.max_files ())) );
                         ]) );
                   ( "alerts_firing",
                     Json.Num
                       (float_of_int
                          (List.length (Alerts.firing Alerts.default))) );
                 ])))
  | "/alerts" ->
      Some
        (respond ~content_type:"application/json"
           (Json.to_string (Alerts.to_json Alerts.default)))
  | "/slowlog" ->
      Some
        (respond ~content_type:"application/x-ndjson"
           (jsonl_of_events (Qlog.slowest 64)))
  | "/planstats" ->
      Some
        (respond ~content_type:"application/json"
           (Json.to_string (Planstats.to_json Planstats.default)))
  | "/workload" ->
      Some
        (respond ~content_type:"application/json"
           (Json.to_string (Planstats.workload_json Planstats.default)))
  | "/trace" | "/trace/" ->
      Some
        (respond ~content_type:"application/json"
           (Json.to_string (trace_summaries ())))
  | path when String.length path > 7 && String.sub path 0 7 = "/trace/" -> (
      let sel = String.sub path 7 (String.length path - 7) in
      match find_trace sel with
      | Some span ->
          Some
            (respond ~content_type:"application/json"
               (Chrome_trace.to_string [ span ]))
      | None ->
          Some
            (respond ~status:404 (Printf.sprintf "no trace %S\n" sel)))
  | _ -> None

(* --- HTTP plumbing -------------------------------------------------------- *)

(* Strip the query string: routing is on the path alone. *)
let route_path target =
  match String.index_opt target '?' with
  | Some i -> String.sub target 0 i
  | None -> target

(* Self-metrics label the first path segment only (so /trace/<n> stays
   one series) and the response status; the endpoint observing itself
   is the first thing an operator checks when scrapes look wrong. *)
let route_label path =
  match String.index_from_opt path 1 '/' with
  | Some i -> String.sub path 0 i
  | None -> path
  | exception Invalid_argument _ -> path

let observe_request t ~route ~status ~ns =
  t.served <- t.served + 1;
  Metrics.incr
    (Metrics.counter ~registry:t.registry
       ~help:"requests served by the introspection endpoint"
       ~labels:[ ("route", route); ("status", string_of_int status) ]
       "monitor_requests_total");
  Metrics.observe_ns
    (Metrics.histogram ~registry:t.registry
       ~help:"wall nanoseconds per introspection request"
       ~labels:[ ("route", route) ]
       "monitor_request_ns")
    ns

let handle t path =
  let rec try_handlers = function
    | [] -> respond ~status:404 (Printf.sprintf "no route %s\n" path)
    | (_, h) :: rest -> (
        match h path with Some r -> r | None -> try_handlers rest)
  in
  try try_handlers (t.handlers @ [ ("builtin", builtin t) ])
  with e ->
    respond ~status:500
      (Printf.sprintf "handler error: %s\n" (Printexc.to_string e))

let read_request fd =
  (* Read until the blank line ending the header block (we never expect
     bodies), bounded so a misbehaving client can't grow the buffer. *)
  let b = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec fill () =
    if Buffer.length b < 16_384 then begin
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        Buffer.add_subbytes b chunk 0 n;
        let text = Buffer.contents b in
        let done_ =
          (* header terminator seen? *)
          let rec scan i =
            i + 3 < String.length text
            && ((text.[i] = '\r' && text.[i + 1] = '\n' && text.[i + 2] = '\r'
                 && text.[i + 3] = '\n')
               || scan (i + 1))
          in
          scan 0
        in
        if not done_ then fill ()
      end
    end
  in
  (try fill () with Unix.Unix_error _ -> ());
  let text = Buffer.contents b in
  match String.index_opt text '\n' with
  | None -> None
  | Some i -> (
      let line = String.trim (String.sub text 0 i) in
      match String.split_on_char ' ' line with
      | meth :: target :: _ when meth <> "" -> Some (meth, route_path target)
      | _ -> None)

(* The response head alone — shared with the serving front-end, whose
   streamed responses send a head with no [Content-Length] (the body is
   EOF-delimited) followed by rows as they are produced. *)
let http_head ?(content_type = "text/plain; charset=utf-8") ?(headers = [])
    ?content_length status =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason status));
  Buffer.add_string b (Printf.sprintf "Content-Type: %s\r\n" content_type);
  (match content_length with
  | Some n -> Buffer.add_string b (Printf.sprintf "Content-Length: %d\r\n" n)
  | None -> ());
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b "Connection: close\r\n\r\n";
  Buffer.contents b

let write_response fd ~head_only { status; content_type; body } =
  let head =
    http_head ~content_type ~content_length:(String.length body) status
  in
  let payload = if head_only then head else head ^ body in
  let bytes = Bytes.of_string payload in
  let rec write_all off =
    if off < Bytes.length bytes then
      let n = Unix.write fd bytes off (Bytes.length bytes - off) in
      if n > 0 then write_all (off + n)
  in
  try write_all 0 with Unix.Unix_error _ -> ()

let serve_client t fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* Per-connection send/receive deadlines: a stalled client times
         out instead of wedging the single accept thread. *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.client_timeout;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.client_timeout;
      let t0 = Mclock.now_ns () in
      let finish ~route response head_only =
        write_response fd ~head_only response;
        observe_request t ~route ~status:response.status
          ~ns:(Mclock.now_ns () - t0)
      in
      match read_request fd with
      | None -> finish ~route:"(bad)" (respond ~status:400 "bad request\n") false
      | Some (meth, path) when meth = "GET" || meth = "HEAD" ->
          (* HEAD gets the same status/headers as GET, body withheld;
             Content-Length still names the GET body's size, as the
             spec wants. *)
          finish ~route:(route_label path) (handle t path) (meth = "HEAD")
      | Some (meth, path) ->
          finish ~route:(route_label path)
            (respond ~status:405
               (Printf.sprintf "method %s not allowed (GET, HEAD)\n" meth))
            false)

let accept_loop t =
  while not t.stopping do
    match Unix.accept t.sock with
    | client, _ ->
        if t.stopping then (try Unix.close client with Unix.Unix_error _ -> ())
        else begin
          Metrics.set t.open_conns 1.;
          (try serve_client t client with _ -> ());
          Metrics.set t.open_conns 0.
        end
    | exception Unix.Unix_error _ -> ()  (* stop() closes the socket *)
  done

(* --- Lifecycle ------------------------------------------------------------ *)

let start ?(registry = Metrics.default) ?(client_timeout_s = 2.) ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      sock;
      port;
      registry;
      started_ns = Mclock.now_ns ();
      client_timeout = (if client_timeout_s > 0. then client_timeout_s else 2.);
      stopping = false;
      handlers = [];
      thread = None;
      served = 0;
      open_conns =
        Metrics.gauge ~registry
          ~help:"connections the introspection endpoint is serving"
          "monitor_open_connections";
    }
  in
  t.thread <- Some (Thread.create accept_loop t);
  t

let port t = t.port

let add_handler t name h = t.handlers <- t.handlers @ [ (name, h) ]

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    (* wake a blocked accept with a throwaway connection *)
    (try
       let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close s with Unix.Unix_error _ -> ())
         (fun () ->
           Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port)))
     with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.thread;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end

(* --- A minimal loopback client ---------------------------------------------- *)

(* Enough HTTP to scrape our own endpoint (the bench harness does, and
   the tests): send one request, read to EOF, split status line,
   headers and body.  Header names come back lowercased.  [body] turns
   the request into one carrying a payload (the serving front-end's
   POST /query). *)
let request ?(host = "127.0.0.1") ?(meth = "GET") ?body ~port path =
  let addr = Unix.inet_addr_of_string host in
  let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close s with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt_float s Unix.SO_RCVTIMEO 5.;
      Unix.setsockopt_float s Unix.SO_SNDTIMEO 5.;
      Unix.connect s (Unix.ADDR_INET (addr, port));
      let req =
        match body with
        | None ->
            Printf.sprintf
              "%s %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n" meth
              path host
        | Some payload ->
            Printf.sprintf
              "%s %s HTTP/1.1\r\nHost: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
              meth path host (String.length payload) payload
      in
      let bytes = Bytes.of_string req in
      ignore (Unix.write s bytes 0 (Bytes.length bytes));
      let b = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read s chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes b chunk 0 n;
          drain ()
        end
      in
      (try drain () with Unix.Unix_error _ -> ());
      let text = Buffer.contents b in
      let status =
        match String.split_on_char ' ' text with
        | _ :: code :: _ -> Option.value ~default:0 (int_of_string_opt code)
        | _ -> 0
      in
      let header_end =
        let rec find i =
          if i + 3 >= String.length text then String.length text
          else if
            text.[i] = '\r' && text.[i + 1] = '\n' && text.[i + 2] = '\r'
            && text.[i + 3] = '\n'
          then i
          else find (i + 1)
        in
        find 0
      in
      let headers =
        match String.split_on_char '\n' (String.sub text 0 header_end) with
        | [] -> []
        | _status_line :: rest ->
            List.filter_map
              (fun line ->
                match String.index_opt line ':' with
                | None -> None
                | Some i ->
                    Some
                      ( String.lowercase_ascii (String.trim (String.sub line 0 i)),
                        String.trim
                          (String.sub line (i + 1) (String.length line - i - 1))
                      ))
              rest
      in
      let body =
        let start = min (String.length text) (header_end + 4) in
        String.sub text start (String.length text - start)
      in
      (status, headers, body))

let get ?host ~port path =
  let status, _, body = request ?host ~port path in
  (status, body)
