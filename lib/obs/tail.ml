(* Tail-based trace sampling: force-trace everything, retain only what
   matters.

   Head sampling (decide before the query runs) can't catch a p99
   spike: the one trace you need is the one you didn't record.  The
   serving front-end instead runs every request traced — the span
   machinery is a few hundred ns per span, cheap next to evaluation —
   and hands the completed tree to [consider], which retains it only
   when the *outcome* earns it: slower than the threshold, errored,
   shed, deadline-expired, or picked by a seeded 1-in-N sample that
   keeps a baseline of normal traffic for comparison.

   Retention is budgeted in spans, not traces: span trees vary from a
   handful of nodes (a point read) to hundreds (a distributed fan-out),
   and what bounds memory is total nodes held.  Oldest traces evict
   first when the budget overflows, except the newest entry always
   survives admission.

   Both the serving layer and the engine feed the same store (a request
   journaled by the engine inside a served query shares its trace id
   with the server's root span), so [consider] dedups by trace id and
   keeps whichever tree has more spans — the server's root tree
   subsumes the engine's subtree regardless of arrival order. *)

type reason = Slow | Errored | Shed | Deadline | Sampled

let reason_to_string = function
  | Slow -> "slow"
  | Errored -> "errored"
  | Shed -> "shed"
  | Deadline -> "deadline"
  | Sampled -> "sampled"

type outcome = [ `Ok | `Error | `Shed | `Deadline ]

type retained = {
  r_trace_id : string;
  r_reason : reason;
  r_origin : string;  (* "srv" | "engine" *)
  r_ts : float;  (* unix seconds at retention *)
  r_wall_ns : int;
  r_span : Trace.span;
}

let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

(* Newest first. *)
let store : retained list ref = ref []
let stored_spans = ref 0

let cfg_slow_threshold_ns = ref 50_000_000  (* 50ms *)
let cfg_sample_every = ref 997  (* prime, so it doesn't beat with round QPS *)
let cfg_budget_spans = ref 4096

(* Seeded xorshift64 for the 1-in-N baseline sample: deterministic
   across runs (same seed -> same kept requests), reseedable in tests. *)
let rng = ref 0x9e3779b97f4a7c15L

let reseed s = locked (fun () -> rng := Int64.logor 1L s)

let next_rand () =
  (* caller holds the lock *)
  let x = !rng in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  rng := x;
  x

let m_retained_by r origin =
  Metrics.counter ~help:"traces retained by the tail sampler"
    ~labels:[ ("reason", reason_to_string r); ("origin", origin) ]
    "srv_trace_sampled_total"

let g_spans =
  Metrics.gauge ~help:"span nodes held by the tail sampler (budget-bounded)"
    "trace_tail_retained_spans"

let set_slow_threshold_ns ns = cfg_slow_threshold_ns := max 0 ns
let slow_threshold_ns () = !cfg_slow_threshold_ns

let set_sample_every n = cfg_sample_every := max 0 n
let sample_every () = !cfg_sample_every

let set_budget_spans n = cfg_budget_spans := max 1 n
let budget_spans () = !cfg_budget_spans

let retained_spans () = locked (fun () -> !stored_spans)
let retained_count () = locked (fun () -> List.length !store)
let retained () = locked (fun () -> !store)

let clear () =
  locked (fun () ->
      store := [];
      stored_spans := 0);
  Metrics.set g_spans 0.

let find trace_id =
  locked (fun () ->
      List.find_opt (fun r -> r.r_trace_id = trace_id) !store)

(* Evict oldest while over budget; the newest entry always survives. *)
let enforce_budget_unlocked () =
  let budget = !cfg_budget_spans in
  if !stored_spans > budget then begin
    let rec keep acc kept = function
      | [] -> List.rev acc
      | r :: rest ->
          let n = Trace.span_count r.r_span in
          if acc = [] || kept + n <= budget then
            keep (r :: acc) (kept + n) rest
          else begin
            stored_spans := !stored_spans - n;
            keep acc kept rest
          end
    in
    store := keep [] 0 !store
  end

let decide ~outcome ~wall_ns =
  (* caller holds the lock (for the rng) *)
  match outcome with
  | `Shed -> Some Shed
  | `Deadline -> Some Deadline
  | `Error -> Some Errored
  | `Ok ->
      if wall_ns > !cfg_slow_threshold_ns then Some Slow
      else if
        !cfg_sample_every > 0
        && Int64.rem (Int64.logand (next_rand ()) Int64.max_int)
             (Int64.of_int !cfg_sample_every)
           = 0L
      then Some Sampled
      else None

let consider ~origin ~outcome ~wall_ns (span : Trace.span) =
  let now = Unix.gettimeofday () in
  let verdict =
    locked (fun () ->
        match decide ~outcome ~wall_ns with
        | None -> None
        | Some reason ->
            let n = Trace.span_count span in
            let entry =
              {
                r_trace_id = span.Trace.trace_id;
                r_reason = reason;
                r_origin = origin;
                r_ts = now;
                r_wall_ns = wall_ns;
                r_span = span;
              }
            in
            (match
               List.partition
                 (fun r -> r.r_trace_id = span.Trace.trace_id)
                 !store
             with
            | [], _ ->
                store := entry :: !store;
                stored_spans := !stored_spans + n
            | old :: _, rest ->
                (* same trace seen from the other origin: keep the
                   bigger tree, refresh recency *)
                let old_n = Trace.span_count old.r_span in
                let winner = if n >= old_n then entry else { old with r_ts = now } in
                store := winner :: rest;
                stored_spans :=
                  !stored_spans - old_n + Trace.span_count winner.r_span);
            enforce_budget_unlocked ();
            Some reason)
  in
  (match verdict with
  | Some reason ->
      Metrics.incr (m_retained_by reason origin);
      Metrics.set g_spans (float_of_int (retained_spans ()))
  | None -> ());
  verdict
