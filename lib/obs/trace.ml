(* Per-query span tracing.

   A span is one timed region of query processing (parse, plan, one
   operator's execution, one remote ship, ...).  Spans nest: opening a
   span while another is active makes it a child, so a traced query
   produces a tree mirroring the work actually done.  Each span carries
   wall-clock nanoseconds and, when an [Io_stats] sink is supplied, the
   page/message delta charged to that sink while the span was open
   (children included — this is the inclusive cost, like any
   distributed-tracing system).

   Distributed stitching: every span records the trace id of the query
   tree it belongs to and the actor (directory server) that did the
   work.  A root span opened with no enclosing {!with_trace_id} binding
   mints a fresh id; children inherit their parent's, so the
   coordinator's merge spans and every involved server's engine spans
   share one id and stitch into one causal tree (Dapper-style, scoped
   to this in-process simulation).  [Chrome_trace] renders the result
   with one lane per actor.

   Tracing is off by default and costs one branch per instrumentation
   point when off.  Completed root spans land in a bounded ring of
   recent traces (oldest evicted first), which the shell exposes as
   [:trace last].

   Ambient state — the open-span stack, the bound trace id and actor —
   is per thread: each serving worker builds its own span tree, with
   its own trace id, exactly as the single-threaded engine always did.
   The shared structures (the recent ring, the id stream, the
   thread-state table) sit behind one mutex. *)

type span = {
  name : string;
  detail : string;
  trace_id : string;  (* shared by every span of one query tree *)
  actor : string;  (* "" = the local process; server name when shipped *)
  start_ns : int;  (* Mclock reading when the span opened *)
  mutable elapsed_ns : int;
  mutable io : Io_stats.t;  (* delta while the span was open *)
  mutable alloc_bytes : int;  (* GC allocation delta while open, inclusive *)
  mutable rows : int option;  (* result cardinality, when annotated *)
  mutable children : span list;  (* execution order once closed *)
}

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* One lock for everything threads share: the id stream, the recent
   ring and the per-thread state table.  Critical sections are a few
   words of mutation; the span bodies themselves run unlocked. *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

(* --- Trace ids and actors ------------------------------------------------ *)

(* Fresh ids come from a xorshift64 stream seeded per process, so ids
   from concurrently journaling processes don't collide. *)
let id_state = ref 0

let next_trace_id () =
  locked @@ fun () ->
  if !id_state = 0 then
    id_state :=
      (int_of_float (Unix.gettimeofday () *. 1e6) lxor (Unix.getpid () lsl 40))
      lor 1;
  let x = !id_state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  id_state := x;
  Printf.sprintf "%016x" (x land max_int)

(* --- Per-thread ambient state -------------------------------------------- *)

(* Each thread carries its own open-span stack and trace-id/actor
   bindings, keyed by [Thread.id] (unique over the process's life).
   Entries are dropped as soon as a thread's state returns to the
   default, so the table stays bounded by the threads actively tracing
   — a serving process churning through session threads doesn't
   accumulate garbage. *)
type tls = {
  mutable stack : span list;
  mutable bound_tid : string option;
  mutable bound_actor : string;
}

let tls_tbl : (int, tls) Hashtbl.t = Hashtbl.create 8

let get_tls () =
  locked @@ fun () ->
  let id = Thread.id (Thread.self ()) in
  match Hashtbl.find_opt tls_tbl id with
  | Some t -> t
  | None ->
      let t = { stack = []; bound_tid = None; bound_actor = "" } in
      Hashtbl.replace tls_tbl id t;
      t

let find_tls () =
  locked (fun () -> Hashtbl.find_opt tls_tbl (Thread.id (Thread.self ())))

let drop_if_default t =
  locked @@ fun () ->
  if t.stack = [] && t.bound_tid = None && t.bound_actor = "" then
    Hashtbl.remove tls_tbl (Thread.id (Thread.self ()))

let with_trace_id id f =
  let t = get_tls () in
  let saved = t.bound_tid in
  t.bound_tid <- Some id;
  Fun.protect
    ~finally:(fun () ->
      t.bound_tid <- saved;
      drop_if_default t)
    f

let with_actor name f =
  let t = get_tls () in
  let saved = t.bound_actor in
  t.bound_actor <- name;
  Fun.protect
    ~finally:(fun () ->
      t.bound_actor <- saved;
      drop_if_default t)
    f

let current_actor () =
  match find_tls () with Some t -> t.bound_actor | None -> ""

(* --- The ring of recent root traces ------------------------------------- *)

let ring_capacity = ref 16
let ring : span list ref = ref []  (* newest first, length <= capacity *)

let truncate n l = List.filteri (fun i _ -> i < n) l

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity: capacity must be positive";
  locked (fun () ->
      ring_capacity := n;
      ring := truncate n !ring)

let capacity () = !ring_capacity

let push_root s =
  locked (fun () -> ring := truncate !ring_capacity (s :: !ring))

let recent () = !ring
let last () = match !ring with [] -> None | s :: _ -> Some s
let clear () = locked (fun () -> ring := [])

(* --- Recording ------------------------------------------------------------ *)

let current_trace_id () =
  match find_tls () with
  | None -> None
  | Some t -> (
      match t.bound_tid with
      | Some _ as s -> s
      | None -> ( match t.stack with s :: _ -> Some s.trace_id | [] -> None))

let set_rows n =
  match find_tls () with
  | None -> ()
  | Some t -> ( match t.stack with [] -> () | s :: _ -> s.rows <- Some n)

let with_span_out ?(detail = "") ?stats name f =
  if not !enabled_flag then (f (), None)
  else begin
    let t = get_tls () in
    let trace_id =
      match t.bound_tid with
      | Some id -> id
      | None -> (
          match t.stack with
          | parent :: _ -> parent.trace_id
          | [] -> next_trace_id ())
    in
    let span =
      {
        name;
        detail;
        trace_id;
        actor = t.bound_actor;
        start_ns = Mclock.now_ns ();
        elapsed_ns = 0;
        io = Io_stats.create ();
        alloc_bytes = 0;
        rows = None;
        children = [];
      }
    in
    let snap = Option.map Io_stats.copy stats in
    (* Memory attribution mirrors the io delta: [Gc.allocated_bytes] is
       monotonic over the thread's life, so open-minus-close is the
       inclusive allocation of the span's dynamic extent. *)
    let alloc0 = Gc.allocated_bytes () in
    let parent = t.stack in
    t.stack <- span :: parent;
    let finish () =
      span.elapsed_ns <- Mclock.now_ns () - span.start_ns;
      (match (stats, snap) with
      | Some s, Some s0 -> span.io <- Io_stats.diff s s0
      | _ -> ());
      span.alloc_bytes <- int_of_float (Gc.allocated_bytes () -. alloc0);
      (* children were pushed newest-first while open *)
      span.children <- List.rev span.children;
      t.stack <- parent;
      (match parent with
      | p :: _ -> p.children <- span :: p.children
      | [] -> push_root span);
      drop_if_default t
    in
    (Fun.protect ~finally:finish f, Some span)
  end

let with_span ?detail ?stats name f = fst (with_span_out ?detail ?stats name f)

(* --- Inspection ------------------------------------------------------------- *)

let total_io s = Io_stats.total_io s.io

let rec depth s =
  1 + List.fold_left (fun acc c -> max acc (depth c)) 0 s.children

let rec span_count s =
  1 + List.fold_left (fun acc c -> acc + span_count c) 0 s.children

let rec actors s =
  List.sort_uniq String.compare
    (s.actor :: List.concat_map actors s.children)

let pp_bytes ppf n =
  if n >= 1 lsl 20 then Fmt.pf ppf "%.1fMB" (float_of_int n /. 1048576.)
  else if n >= 1 lsl 10 then Fmt.pf ppf "%.1fkB" (float_of_int n /. 1024.)
  else Fmt.pf ppf "%dB" n

let rec pp_span ppf s =
  Fmt.pf ppf "@[<v2>%s%s%s  %a  [%sreads=%d writes=%d alloc=%a%s]%a@]" s.name
    (if s.actor = "" then "" else "@" ^ s.actor)
    (if s.detail = "" then "" else " " ^ s.detail)
    Mclock.pp_ns s.elapsed_ns
    (match s.rows with None -> "" | Some n -> Printf.sprintf "rows=%d " n)
    s.io.Io_stats.page_reads s.io.Io_stats.page_writes
    pp_bytes s.alloc_bytes
    (if s.io.Io_stats.messages > 0 then
       Printf.sprintf " msgs=%d bytes=%d" s.io.Io_stats.messages
         s.io.Io_stats.bytes_shipped
     else "")
    (fun ppf children ->
      List.iter (fun c -> Fmt.pf ppf "@,%a" pp_span c) children)
    s.children

let pp ppf s = Fmt.pf ppf "%a@." pp_span s
