(** Chrome trace-event (catapult) export of {!Trace} span trees, for
    chrome://tracing, Perfetto or speedscope.

    One pid for the process, one tid lane per actor (coordinator,
    answering servers), "thread_name" metadata events labeling the
    lanes, and one complete ("X") event per span with microsecond
    [ts]/[dur] and the span's trace id, I/O delta and row annotation in
    [args]. *)

val of_spans : Trace.span list -> Json.t
(** The full trace-event document ([{"traceEvents": [...], ...}]). *)

val to_string : Trace.span list -> string
