(** Per-query span tracing.

    Spans nest through dynamic extent: a span opened while another is
    active becomes its child, so one traced query yields a span tree
    (parse → plan → per-operator execute → remote ships).  Each span
    carries wall-clock nanoseconds and, when an [Io_stats] sink is
    given, the inclusive I/O delta charged to that sink while the span
    was open.  For distributed stitching, every span records a trace id
    (minted at the root, inherited by children, overridable with
    {!with_trace_id}) and the actor that did the work
    ({!with_actor}).  Completed root spans land in a bounded ring of
    recent traces.  Off by default; one branch per instrumentation
    point when off.

    Thread-safe: the ambient state (open-span stack, bound trace id and
    actor) is per thread, so concurrent serving workers each build
    their own span tree with their own trace id; the shared structures
    (the recent ring, the id stream) sit behind one mutex. *)

type span = {
  name : string;
  detail : string;
  trace_id : string;  (** shared by every span of one query tree *)
  actor : string;  (** "" = the local process; server name when shipped *)
  start_ns : int;  (** {!Mclock} reading when the span opened *)
  mutable elapsed_ns : int;
  mutable io : Io_stats.t;  (** I/O delta while the span was open *)
  mutable alloc_bytes : int;
      (** GC allocation delta ([Gc.allocated_bytes]) while the span was
          open — inclusive of children, like the io delta *)
  mutable rows : int option;  (** result cardinality, when annotated *)
  mutable children : span list;  (** in execution order *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_span : ?detail:string -> ?stats:Io_stats.t -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span named [name].  When tracing is off this
    is just an application.  The span closes even if the thunk raises. *)

val with_span_out :
  ?detail:string -> ?stats:Io_stats.t -> string -> (unit -> 'a) -> 'a * span option
(** Like {!with_span}, additionally returning the completed span (for
    callers that attribute costs after the fact, like the query
    journal).  [None] when tracing is off.  A raising thunk still
    closes and attaches the span, but the exception propagates. *)

val set_rows : int -> unit
(** Annotate the innermost open span with its result cardinality.
    No-op when tracing is off. *)

(** {1 Trace-context propagation} *)

val next_trace_id : unit -> string
(** A fresh 16-hex-digit trace id (per-process xorshift stream). *)

val with_trace_id : string -> (unit -> 'a) -> 'a
(** Stamp every span opened inside the thunk (including new roots) with
    the given trace id — the distributed coordinator binds one id per
    query so all involved servers' spans stitch into one trace. *)

val with_actor : string -> (unit -> 'a) -> 'a
(** Attribute spans opened inside the thunk to the named actor
    (directory server).  The default actor is [""], the local process. *)

val current_trace_id : unit -> string option
(** The bound trace id, else the innermost open span's id. *)

val current_actor : unit -> string

(** {1 The recent-trace ring} *)

val last : unit -> span option
(** The most recently completed root span. *)

val recent : unit -> span list
(** Recently completed root spans, newest first (bounded ring). *)

val clear : unit -> unit

val set_capacity : int -> unit
(** Resize the ring (evicting oldest traces).
    @raise Invalid_argument when the capacity is not positive. *)

val capacity : unit -> int

val total_io : span -> int
val depth : span -> int
val span_count : span -> int

val actors : span -> string list
(** The distinct actors appearing in a span tree, sorted. *)

val pp_bytes : Format.formatter -> int -> unit
(** Human byte count ([512B], [1.5kB], [2.0MB]). *)

val pp_span : Format.formatter -> span -> unit
val pp : Format.formatter -> span -> unit
