(* The query journal: an append-only, JSON-lines record of every query
   the engine (or the distributed coordinator) evaluates.

   Where Metrics aggregates and Trace keeps a small ring of recent span
   trees, the journal is the durable per-query account: query text, a
   normalized plan fingerprint, result cardinality, page reads/writes,
   wall-clock nanoseconds, outcome, and the per-operator cost rows
   lifted from the span tree.  Queries slower than a configurable
   threshold are promoted to a full capture — the rendered span tree
   plus the rendered estimated plan — and the slowest captures are kept
   in memory for the shell's [:slowlog].

   The module is a sink: instrumented layers call [record]; they decide
   what goes into an event (this keeps lib/obs free of any dependency
   on the query layers above it).  One journal per process, like the
   default metrics registry. *)

type op = {
  op_name : string;
  op_detail : string;
  op_rows : int option;  (* result cardinality, when the span was annotated *)
  op_reads : int;
  op_writes : int;
  op_ns : int;
  op_alloc : int option;  (* GC allocation delta, when the span carried one *)
  op_depth : int;  (* 0 = the query's root span *)
  op_est_rows : int option;  (* planner estimates, when the recording *)
  op_est_reads : int option;  (* layer joined the plan to the span tree *)
  op_est_writes : int option;
  op_path : string option;  (* access path an atomic took: index|scan|cache *)
}

type outcome = Ok | Failed of string

type capture = {
  span_text : string;  (* rendered span tree *)
  plan_text : string;  (* rendered estimated plan *)
}

type event = {
  seq : int;  (* monotonic per process *)
  ts : float;  (* unix seconds at record time *)
  query : string;
  fingerprint : string;  (* normalized plan fingerprint *)
  trace_id : string option;  (* stitches distributed events into one trace *)
  result_count : int;
  reads : int;
  writes : int;
  wall_ns : int;
  alloc_bytes : int option;  (* whole-query GC allocation delta *)
  outcome : outcome;
  est_card : int option;  (* whole-query planner estimates, when the *)
  est_reads : int option;  (* recording layer computed a plan *)
  est_writes : int option;
  cache : string option;  (* result-cache outcome: hit|miss|stale|bypass *)
  path : string option;  (* access paths the query's atomics took,
                            comma-joined distinct: index|scan|cache *)
  server : string option;  (* answering server, in distributed evaluation *)
  shipped : (string * int * int) list;  (* per-server (name, messages, bytes) *)
  ops : op list;  (* flattened span tree, preorder *)
  capture : capture option;  (* present iff the query was slow *)
}

(* --- Journal state -------------------------------------------------------- *)

let seq_counter = ref 0
let sink : (string * out_channel) option ref = ref None
let threshold = ref 100_000_000 (* 100ms *)
let rotate_limit : int option ref = ref None
let rotate_files = ref 1
let slow_capacity = 64
let slow : event list ref = ref []  (* slowest first, bounded *)
let current_server : string option ref = ref None

(* One lock over the whole journal: the serving front-end's workers
   record concurrently, and an interleaved JSON line (or two threads
   rotating the same generation) would corrupt the sink.  [record]
   holds it across the sequence assignment, the append, the rotation
   check, the slowlog update and the observer fan-out, so an online
   consumer sees exactly the stream an offline replay reconstructs —
   in the same total order the sink received. *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

let enabled () = !sink <> None
let path () = Option.map fst !sink

let disable_unlocked () =
  match !sink with
  | None -> ()
  | Some (_, oc) ->
      close_out oc;
      sink := None;
      rotate_limit := None;
      rotate_files := 1

let disable () = locked disable_unlocked

let enable ?(append = true) ?max_bytes ?(max_files = 1) p =
  locked (fun () ->
      disable_unlocked ();
      let flags =
        [ Open_wronly; Open_creat; (if append then Open_append else Open_trunc) ]
      in
      sink := Some (p, open_out_gen flags 0o644 p);
      rotate_limit :=
        Option.map (max 1) max_bytes (* a 0 limit would rotate forever *);
      rotate_files := max 1 max_files)

(* Size-based rotation: once the journal passes the limit, the rotated
   generations shift up — <path>.N-1 becomes <path>.N for N down to 1,
   the generation past [max_files] is deleted, the live file becomes
   <path>.1 and a fresh file takes over — so the journal never holds
   more than ~(max_files + 1) x the limit on disk.  Checked after each
   append, so one oversized event still lands intact. *)
let maybe_rotate () =
  match (!sink, !rotate_limit) with
  | Some (p, oc), Some limit when pos_out oc >= limit ->
      close_out oc;
      let gen n = p ^ "." ^ string_of_int n in
      (try Sys.remove (gen !rotate_files) with Sys_error _ -> ());
      for n = !rotate_files - 1 downto 1 do
        try Sys.rename (gen n) (gen (n + 1)) with Sys_error _ -> ()
      done;
      (try Sys.rename p (gen 1) with Sys_error _ -> ());
      sink := Some (p, open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 p)
  | _ -> ()

(* Sink introspection for /healthz: current size and configured
   rotation limits. *)
let sink_bytes () =
  locked (fun () -> match !sink with Some (_, oc) -> pos_out oc | None -> 0)
let max_bytes () = !rotate_limit
let max_files () = !rotate_files

let set_threshold_ns n = threshold := max 0 n
let threshold_ns () = !threshold

let with_server name f =
  let saved = !current_server in
  current_server := Some name;
  Fun.protect ~finally:(fun () -> current_server := saved) f

let slowest n = locked (fun () -> List.filteri (fun i _ -> i < n) !slow)

let clear () =
  locked (fun () ->
      slow := [];
      seq_counter := 0)

(* --- Lifting per-operator rows from a span tree ----------------------------- *)

let ops_of_span span =
  let rec go depth (s : Trace.span) acc =
    let row =
      {
        op_name = s.Trace.name;
        op_detail = s.Trace.detail;
        op_rows = s.Trace.rows;
        op_reads = s.Trace.io.Io_stats.page_reads;
        op_writes = s.Trace.io.Io_stats.page_writes;
        op_ns = s.Trace.elapsed_ns;
        op_alloc = Some s.Trace.alloc_bytes;
        op_depth = depth;
        op_est_rows = None;
        op_est_reads = None;
        op_est_writes = None;
        op_path = None;
      }
    in
    List.fold_left (fun acc c -> go (depth + 1) c acc) (row :: acc)
      s.Trace.children
  in
  List.rev (go 0 span [])

(* --- JSON encoding / decoding ------------------------------------------------- *)

(* Optional int fields are omitted when absent, so journals written
   before a field existed parse identically to ones where the recording
   layer supplied nothing. *)
let opt_int name = function
  | None -> []
  | Some n -> [ (name, Json.Num (float_of_int n)) ]

let read_opt_int name j =
  match Json.member name j with Json.Null -> None | v -> Some (Json.to_int v)

let op_to_json o =
  Json.Obj
    ([ ("op", Json.Str o.op_name) ]
    @ (if o.op_detail = "" then [] else [ ("detail", Json.Str o.op_detail) ])
    @ opt_int "rows" o.op_rows
    @ [
        ("reads", Json.Num (float_of_int o.op_reads));
        ("writes", Json.Num (float_of_int o.op_writes));
        ("ns", Json.Num (float_of_int o.op_ns));
        ("depth", Json.Num (float_of_int o.op_depth));
      ]
    @ opt_int "alloc" o.op_alloc
    @ opt_int "est_rows" o.op_est_rows
    @ opt_int "est_reads" o.op_est_reads
    @ opt_int "est_writes" o.op_est_writes
    @ match o.op_path with
      | None -> []
      | Some p -> [ ("path", Json.Str p) ])

let to_json ev =
  Json.Obj
    ([
       ("seq", Json.Num (float_of_int ev.seq));
       ("ts", Json.Num ev.ts);
       ("query", Json.Str ev.query);
       ("fingerprint", Json.Str ev.fingerprint);
     ]
    @ (match ev.trace_id with
      | None -> []
      | Some id -> [ ("trace_id", Json.Str id) ])
    @ [
       ( "outcome",
         Json.Str (match ev.outcome with Ok -> "ok" | Failed _ -> "error") );
     ]
    @ (match ev.outcome with
      | Ok -> []
      | Failed msg -> [ ("error", Json.Str msg) ])
    @ [
        ("result_count", Json.Num (float_of_int ev.result_count));
        ("reads", Json.Num (float_of_int ev.reads));
        ("writes", Json.Num (float_of_int ev.writes));
        ("wall_ns", Json.Num (float_of_int ev.wall_ns));
      ]
    @ opt_int "alloc_bytes" ev.alloc_bytes
    @ opt_int "est_card" ev.est_card
    @ opt_int "est_reads" ev.est_reads
    @ opt_int "est_writes" ev.est_writes
    @ (match ev.cache with
      | None -> []
      | Some c -> [ ("cache", Json.Str c) ])
    @ (match ev.path with
      | None -> []
      | Some p -> [ ("path", Json.Str p) ])
    @ (match ev.server with
      | None -> []
      | Some s -> [ ("server", Json.Str s) ])
    @ (match ev.shipped with
      | [] -> []
      | shipped ->
          [
            ( "shipped",
              Json.Arr
                (List.map
                   (fun (name, msgs, bytes) ->
                     Json.Obj
                       [
                         ("server", Json.Str name);
                         ("messages", Json.Num (float_of_int msgs));
                         ("bytes", Json.Num (float_of_int bytes));
                       ])
                   shipped) );
          ])
    @ (match ev.ops with
      | [] -> []
      | ops -> [ ("ops", Json.Arr (List.map op_to_json ops)) ])
    @
    match ev.capture with
    | None -> []
    | Some c ->
        [
          ( "capture",
            Json.Obj
              [ ("span", Json.Str c.span_text); ("plan", Json.Str c.plan_text) ]
          );
        ])

let op_of_json j =
  {
    op_name = Json.str (Json.member "op" j);
    op_detail = Json.str (Json.member "detail" j);
    op_rows = read_opt_int "rows" j;
    op_reads = Json.to_int (Json.member "reads" j);
    op_writes = Json.to_int (Json.member "writes" j);
    op_ns = Json.to_int (Json.member "ns" j);
    op_alloc = read_opt_int "alloc" j;
    op_depth = Json.to_int (Json.member "depth" j);
    op_est_rows = read_opt_int "est_rows" j;
    op_est_reads = read_opt_int "est_reads" j;
    op_est_writes = read_opt_int "est_writes" j;
    op_path =
      (match Json.member "path" j with
      | Json.Null -> None
      | v -> Some (Json.str v));
  }

let of_json j =
  {
    seq = Json.to_int (Json.member "seq" j);
    ts = Json.to_float (Json.member "ts" j);
    query = Json.str (Json.member "query" j);
    fingerprint = Json.str (Json.member "fingerprint" j);
    trace_id =
      (match Json.member "trace_id" j with
      | Json.Null -> None
      | v -> Some (Json.str v));
    result_count = Json.to_int (Json.member "result_count" j);
    reads = Json.to_int (Json.member "reads" j);
    writes = Json.to_int (Json.member "writes" j);
    wall_ns = Json.to_int (Json.member "wall_ns" j);
    alloc_bytes = read_opt_int "alloc_bytes" j;
    est_card = read_opt_int "est_card" j;
    est_reads = read_opt_int "est_reads" j;
    est_writes = read_opt_int "est_writes" j;
    outcome =
      (match Json.str (Json.member "outcome" j) with
      | "error" -> Failed (Json.str (Json.member "error" j))
      | _ -> Ok);
    cache =
      (match Json.member "cache" j with
      | Json.Null -> None
      | v -> Some (Json.str v));
    path =
      (match Json.member "path" j with
      | Json.Null -> None
      | v -> Some (Json.str v));
    server =
      (match Json.member "server" j with
      | Json.Null -> None
      | v -> Some (Json.str v));
    shipped =
      List.map
        (fun s ->
          ( Json.str (Json.member "server" s),
            Json.to_int (Json.member "messages" s),
            Json.to_int (Json.member "bytes" s) ))
        (Json.arr (Json.member "shipped" j));
    ops = List.map op_of_json (Json.arr (Json.member "ops" j));
    capture =
      (match Json.member "capture" j with
      | Json.Null -> None
      | c ->
          Some
            {
              span_text = Json.str (Json.member "span" c);
              plan_text = Json.str (Json.member "plan" c);
            });
  }

let load p =
  let text = In_channel.with_open_text p In_channel.input_all in
  List.map of_json (Json.lines text)

(* --- Recording ------------------------------------------------------------------ *)

let m_events =
  Metrics.counter ~help:"query-journal events recorded" "qlog_events_total"

let m_slow =
  Metrics.counter ~help:"journal events promoted to slow-query captures"
    "qlog_slow_total"

(* Observer hook: every recorded event flows through here exactly once
   (journaled or not), so an online consumer — the plan-quality
   observatory — sees precisely the stream an offline replay of the
   journal would reconstruct. *)
let on_record : (event -> unit) option ref = ref None
let set_on_record f = on_record := f

let record ?cache ?path ?server ?trace_id ?(shipped = []) ?(ops = []) ?capture
    ?alloc_bytes ?est_card ?est_reads ?est_writes ~query ~fingerprint
    ~result_count ~reads ~writes ~wall_ns ~outcome () =
  locked @@ fun () ->
  incr seq_counter;
  let server = match server with Some _ as s -> s | None -> !current_server in
  let ev =
    {
      seq = !seq_counter;
      ts = Unix.gettimeofday ();
      query;
      fingerprint;
      trace_id;
      result_count;
      reads;
      writes;
      wall_ns;
      alloc_bytes;
      outcome;
      est_card;
      est_reads;
      est_writes;
      cache;
      path;
      server;
      shipped;
      ops;
      capture;
    }
  in
  Metrics.incr m_events;
  (match !sink with
  | Some (_, oc) ->
      output_string oc (Json.to_string (to_json ev));
      output_char oc '\n';
      flush oc;
      maybe_rotate ()
  | None -> ());
  if ev.capture <> None then begin
    Metrics.incr m_slow;
    slow :=
      List.filteri
        (fun i _ -> i < slow_capacity)
        (List.stable_sort
           (fun a b -> compare b.wall_ns a.wall_ns)
           (ev :: !slow))
  end;
  (match !on_record with Some f -> f ev | None -> ());
  ev

let write_slowlog p =
  locked @@ fun () ->
  let oc = open_out p in
  List.iter
    (fun ev ->
      output_string oc (Json.to_string (to_json ev));
      output_char oc '\n')
    !slow;
  close_out oc;
  List.length !slow

(* --- Rendering -------------------------------------------------------------------- *)

let pp_event ppf ev =
  Fmt.pf ppf "#%d %a %s  [rows=%d reads=%d writes=%d]%s%s%s  %s"
    ev.seq Mclock.pp_ns ev.wall_ns
    (match ev.outcome with Ok -> "ok" | Failed m -> "ERROR " ^ m)
    ev.result_count ev.reads ev.writes
    (match ev.cache with None -> "" | Some c -> "  cache=" ^ c)
    ((match ev.path with None -> "" | Some p -> "  path=" ^ p)
    ^ match ev.server with None -> "" | Some s -> "  @" ^ s)
    (" plan=" ^ ev.fingerprint)
    ev.query
