(** The live dashboard: a dependency-free, self-contained HTML page
    over the flight recorder.

    Inline CSS/JS/SVG only — it renders from [curl]'d output as well
    as live.  The page polls the monitor's own JSON routes ([/range]
    per sparkline panel, [/alerts], [/tail]) and draws inline SVG
    polylines client-side, so the served string is constant. *)

val page : unit -> string
(** The full HTML document. *)

val panels : (string * (string * string * float * string * string) list) list
(** The panel catalogue: [(title, series)] with each series
    [(metric, agg, scale, color, label)] — shared intent with the
    shell's [:top] sparklines. *)
