(* The concurrent query-serving front-end.

   One listening socket accepts both protocols: the first line of a
   connection is sniffed — `GET /query?... HTTP/1.1` marks HTTP, any
   other line starts the line-oriented text protocol (one query per
   line, rows streamed back, a `# status=...` trailer per query).
   Each connection gets a session thread that parses requests and
   submits them to a bounded admission queue; a fixed pool of worker
   threads — each owning its own [Engine] over the shared read-only
   instance — executes them.  A full queue sheds the request
   immediately (HTTP 503 + Retry-After / `# status=busy`): explicit
   backpressure instead of unbounded buffering.  Every request carries
   an absolute deadline measured from admission, checked before
   execution and between result batches, so a query that waited out
   its budget in the queue is never run, and one that exceeds it
   mid-stream stops after shipping partial results.

   Results ship as they are produced: evaluation uses the streaming
   [Source] pipeline and flushes row batches to the socket while the
   query is still running, so time-to-first-row is independent of
   result size.

   Instrumented end to end: srv_requests_total{route,status},
   srv_request_ns{route} (admission to completion — queue wait
   included, which is what an SLO on served latency must measure),
   srv_queue_depth, srv_sessions, srv_shed_total; each executed query
   journals a Qlog event carrying a fresh trace id. *)

type status = S_ok | S_error of string | S_busy | S_deadline

(* --- Jobs and the admission queue ---------------------------------------- *)

type job = {
  run : Engine.t -> unit;  (* executes and writes the response *)
  mutable finished : bool;
  jmu : Mutex.t;
  jcv : Condition.t;
}

type t = {
  sock : Unix.file_descr;
  port : int;
  registry : Metrics.t;
  queue_cap : int;
  n_workers : int;
  deadline_ns : int;  (* default per-request budget *)
  mutable stopping : bool;
  queue : job Queue.t;
  qmu : Mutex.t;
  qcv : Condition.t;
  mutable workers : Thread.t list;
  mutable accept_thread : Thread.t option;
  sessions : (int, Unix.file_descr * Thread.t) Hashtbl.t;  (* by thread id *)
  smu : Mutex.t;
  g_depth : Metrics.gauge;
  g_sessions : Metrics.gauge;
  c_shed : Metrics.counter;
}

let observe ?trace_id t ~route ~status ~ns =
  Metrics.incr
    (Metrics.counter ~registry:t.registry
       ~help:"requests handled by the serving front-end"
       ~labels:[ ("route", route); ("status", string_of_int status) ]
       "srv_requests_total");
  Metrics.observe_ns ?trace_id
    (Metrics.histogram ~registry:t.registry
       ~help:
         "wall nanoseconds per served request, admission to completion \
          (queue wait included)"
       ~labels:[ ("route", route) ]
       "srv_request_ns")
    ns

let set_depth t n = Metrics.set t.g_depth (float_of_int n)

type admission = Admitted of job | Shed

let submit t run =
  Mutex.lock t.qmu;
  if t.stopping || Queue.length t.queue >= t.queue_cap then begin
    Mutex.unlock t.qmu;
    Metrics.incr t.c_shed;
    Shed
  end
  else begin
    let j =
      { run; finished = false; jmu = Mutex.create (); jcv = Condition.create () }
    in
    Queue.push j t.queue;
    set_depth t (Queue.length t.queue);
    Condition.signal t.qcv;
    Mutex.unlock t.qmu;
    Admitted j
  end

let wait_job j =
  Mutex.lock j.jmu;
  while not j.finished do
    Condition.wait j.jcv j.jmu
  done;
  Mutex.unlock j.jmu

let finish_job j =
  Mutex.lock j.jmu;
  j.finished <- true;
  Condition.broadcast j.jcv;
  Mutex.unlock j.jmu

let worker_loop t make_engine () =
  let engine = make_engine () in
  let rec loop () =
    Mutex.lock t.qmu;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.qcv t.qmu
    done;
    if Queue.is_empty t.queue && t.stopping then Mutex.unlock t.qmu
    else begin
      let j = Queue.pop t.queue in
      set_depth t (Queue.length t.queue);
      Mutex.unlock t.qmu;
      (try j.run engine with _ -> ());
      finish_job j;
      loop ()
    end
  in
  loop ()

(* --- Socket plumbing ------------------------------------------------------ *)

let write_all fd s =
  let bytes = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length bytes then
      let n = Unix.write fd bytes off (Bytes.length bytes - off) in
      if n > 0 then go (off + n)
  in
  try
    go 0;
    true
  with Unix.Unix_error _ -> false

(* A buffered reader over a socket with a short receive timeout: reads
   poll every half second so a session blocked on an idle client still
   notices [stopping] and exits promptly. *)
type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable eof : bool;
}

let reader fd = { fd; buf = Buffer.create 256; eof = false }

let refill t r =
  if r.eof then false
  else begin
    let chunk = Bytes.create 4096 in
    match Unix.read r.fd chunk 0 (Bytes.length chunk) with
    | 0 ->
        r.eof <- true;
        false
    | n ->
        Buffer.add_subbytes r.buf chunk 0 n;
        true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (* receive timeout: poll the stop flag, stay open *)
        not t.stopping
    | exception Unix.Unix_error _ ->
        r.eof <- true;
        false
  end

(* One line, newline stripped (CR too); [None] at EOF/stop.  Bounded so
   a misbehaving client cannot grow the buffer without limit. *)
let read_line t r =
  let rec go () =
    let text = Buffer.contents r.buf in
    match String.index_opt text '\n' with
    | Some i ->
        let line = String.sub text 0 i in
        Buffer.clear r.buf;
        Buffer.add_string r.buf
          (String.sub text (i + 1) (String.length text - i - 1));
        let line =
          if line <> "" && line.[String.length line - 1] = '\r' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        Some line
    | None ->
        if Buffer.length r.buf > 65_536 then None
        else if refill t r then go ()
        else None
  in
  go ()

let read_exact t r n =
  let rec go () =
    if Buffer.length r.buf >= n then begin
      let text = Buffer.contents r.buf in
      let body = String.sub text 0 n in
      Buffer.clear r.buf;
      Buffer.add_string r.buf (String.sub text n (String.length text - n));
      Some body
    end
    else if n > 1_048_576 then None
    else if refill t r then go ()
    else None
  in
  go ()

(* --- Request text --------------------------------------------------------- *)

(* Target parsing (path + url-decoded query params) is shared with the
   introspection endpoint — one HTTP dialect, one parser. *)
let split_target = Monitor.split_target

(* --- Execution ------------------------------------------------------------ *)

(* The trailer line both protocols end a query response with. *)
let trailer status ~rows ~wall_ns =
  match status with
  | S_ok -> Printf.sprintf "# status=ok rows=%d wall_us=%d\n" rows (wall_ns / 1000)
  | S_deadline ->
      Printf.sprintf "# status=deadline rows=%d wall_us=%d\n" rows
        (wall_ns / 1000)
  | S_busy -> "# status=busy retry_ms=1000\n"
  | S_error msg -> Printf.sprintf "# status=error msg=%S\n" msg

let http_code = function
  | S_ok -> 200
  | S_deadline -> 504
  | S_busy -> 503
  | S_error _ -> 400

(* The streaming-executor memory bound (Thm 8.3) as a live gauge: the
   high-water resident-page mark of the last worker engine to finish a
   query.  The flight recorder's series over it is how CI watches the
   constant-memory claim hold across a whole load run. *)
let g_resident =
  Metrics.gauge
    ~help:"max resident pages observed by a serving worker engine"
    "srv_engine_max_resident_pages"

let tail_outcome = function
  | S_ok -> `Ok
  | S_deadline -> `Deadline
  | S_busy -> `Shed
  | S_error _ -> `Error

(* Evaluate one query on a worker's engine, streaming rows to [emit]
   in batches, checking the deadline between batches.  Returns the
   final status, the rows shipped, the wall time and the trace id.
   Every request runs force-traced — the completed span tree goes to
   the tail sampler, which decides whether it is worth keeping — and
   journals a Qlog event when the journal is open. *)
let execute engine ~query_text ~deadline_ns ~emit =
  let journal = Qlog.enabled () in
  let tid = Trace.next_trace_id () in
  let stats = Engine.stats engine in
  let reads0 = stats.Io_stats.page_reads
  and writes0 = stats.Io_stats.page_writes in
  let alloc0 = Gc.allocated_bytes () in
  let t0 = Mclock.now_ns () in
  let rows = ref 0 in
  let outcome, span =
    Engine.with_forced_tracing true @@ fun () ->
    Trace.with_trace_id tid @@ fun () ->
    Trace.with_actor "srv" @@ fun () ->
    match
      Trace.with_span_out ~detail:query_text ~stats "serve" (fun () ->
          match
            Qparser.of_string
              ~schema:(Instance.schema (Engine.instance engine))
              query_text
          with
          | exception Qparser.Parse_error msg -> `Parse msg
          | ast ->
              let src = Engine.eval_node_src engine ast in
              let batch = Buffer.create 4096 in
              let status = ref S_ok in
              let flush () =
                if Buffer.length batch > 0 then begin
                  if not (emit (Buffer.contents batch)) then raise Exit;
                  Buffer.clear batch
                end
              in
              (try
                 let rec pump n =
                   if Mclock.now_ns () > deadline_ns then status := S_deadline
                   else
                     match Ext_list.Source.next src with
                     | None -> ()
                     | Some e ->
                         Buffer.add_string batch (Dn.to_string (Entry.dn e));
                         Buffer.add_char batch '\n';
                         incr rows;
                         if n >= 63 then begin
                           flush ();
                           pump 0
                         end
                         else pump (n + 1)
                 in
                 pump 0;
                 flush ()
               with Exit -> ());
              Trace.set_rows !rows;
              `Ran (ast, !status))
    with
    | `Ran (ast, status), span ->
        if journal then begin
          let ops =
            match span with Some s -> Qlog.ops_of_span s | None -> []
          in
          let out : Qlog.outcome =
            match status with
            | S_ok -> Qlog.Ok
            | S_deadline -> Qlog.Failed "deadline"
            | S_busy -> Qlog.Failed "busy"
            | S_error m -> Qlog.Failed m
          in
          ignore
            (Qlog.record ~trace_id:tid ~ops ~query:query_text
               ~fingerprint:(Plan.fingerprint ast)
               ~result_count:!rows
               ~reads:(stats.Io_stats.page_reads - reads0)
               ~writes:(stats.Io_stats.page_writes - writes0)
               ~wall_ns:(Mclock.now_ns () - t0)
               ~alloc_bytes:(int_of_float (Gc.allocated_bytes () -. alloc0))
               ~outcome:out ())
        end;
        (status, span)
    | `Parse msg, span ->
        if journal then
          ignore
            (Qlog.record ~trace_id:tid ~query:query_text ~fingerprint:"(parse)"
               ~result_count:0 ~reads:0 ~writes:0
               ~wall_ns:(Mclock.now_ns () - t0)
               ~outcome:(Qlog.Failed msg) ());
        (S_error msg, span)
    | exception e -> (S_error (Printexc.to_string e), None)
  in
  let wall = Mclock.now_ns () - t0 in
  Metrics.set g_resident (float_of_int stats.Io_stats.max_resident_pages);
  Option.iter
    (fun s ->
      ignore
        (Tail.consider ~origin:"srv" ~outcome:(tail_outcome outcome)
           ~wall_ns:wall s))
    span;
  (outcome, !rows, wall, tid)

(* A request that never reached a worker engine (shed at admission, or
   its budget died in the queue) still deserves a trace the tail
   sampler can retain: a one-node span with a fresh trace id, so the
   503/504 shows up in `/tail` and as an exemplar like any slow
   request. *)
let synthetic_span ~name ~detail ~wall_ns : Trace.span =
  {
    Trace.name;
    detail;
    trace_id = Trace.next_trace_id ();
    actor = "srv";
    start_ns = Mclock.now_ns () - wall_ns;
    elapsed_ns = wall_ns;
    io = Io_stats.create ();
    alloc_bytes = 0;
    rows = None;
    children = [];
  }

(* Admit, execute on a worker, stream to the socket, account.  The
   calling session thread blocks until the worker finishes, preserving
   request order within a connection. *)
let serve_query t fd ~route ~write_head ~deadline_ns query_text =
  let submitted = Mclock.now_ns () in
  let absolute_deadline = submitted + deadline_ns in
  let run engine =
    if Mclock.now_ns () > absolute_deadline then begin
      (* the budget died in the queue: don't run at all *)
      let wall = Mclock.now_ns () - submitted in
      let sp = synthetic_span ~name:"queue-deadline" ~detail:query_text ~wall_ns:wall in
      ignore (Tail.consider ~origin:"srv" ~outcome:`Deadline ~wall_ns:wall sp);
      ignore
        (write_all fd
           (write_head S_deadline ^ trailer S_deadline ~rows:0 ~wall_ns:wall));
      observe ~trace_id:sp.Trace.trace_id t ~route
        ~status:(http_code S_deadline) ~ns:wall
    end
    else begin
      let head_sent = ref false in
      let emit s =
        if not !head_sent then begin
          head_sent := true;
          if not (write_all fd (write_head S_ok)) then raise Exit
        end;
        write_all fd s
      in
      let status, rows, _exec_ns, tid =
        execute engine ~query_text ~deadline_ns:absolute_deadline ~emit
      in
      let wall = Mclock.now_ns () - submitted in
      let tail = trailer status ~rows ~wall_ns:wall in
      ignore
        (write_all fd
           (if !head_sent then tail
            else write_head (if rows = 0 then status else S_ok) ^ tail));
      observe ~trace_id:tid t ~route ~status:(http_code status) ~ns:wall
    end
  in
  match submit t run with
  | Admitted j -> wait_job j
  | Shed ->
      let wall = Mclock.now_ns () - submitted in
      let sp = synthetic_span ~name:"shed" ~detail:query_text ~wall_ns:wall in
      ignore (Tail.consider ~origin:"srv" ~outcome:`Shed ~wall_ns:wall sp);
      ignore
        (write_all fd (write_head S_busy ^ trailer S_busy ~rows:0 ~wall_ns:0));
      observe ~trace_id:sp.Trace.trace_id t ~route ~status:503 ~ns:wall

(* --- The HTTP face --------------------------------------------------------- *)

let index_body =
  "ndq serving front-end\n\
   /query?q=<query>[&deadline_ms=<n>]   evaluate (GET or POST, body = query)\n\
   /healthz                             liveness JSON\n\
   \n\
   Line protocol: connect and send one query per line; rows stream\n\
   back, each response ends with a `# status=...` trailer.\n"

let healthz_body t =
  Json.to_string
    (Json.Obj
       [
         ("status", Json.Str "ok");
         ("workers", Json.Num (float_of_int t.n_workers));
         ( "queue_depth",
           Json.Num
             (float_of_int
                (Mutex.lock t.qmu;
                 let n = Queue.length t.queue in
                 Mutex.unlock t.qmu;
                 n)) );
         ( "sessions",
           Json.Num
             (float_of_int
                (Mutex.lock t.smu;
                 let n = Hashtbl.length t.sessions in
                 Mutex.unlock t.smu;
                 n)) );
       ])

let respond_simple t fd ~route response =
  let t0 = Mclock.now_ns () in
  Monitor.write_response fd ~head_only:false response;
  observe t ~route ~status:response.Monitor.status ~ns:(Mclock.now_ns () - t0)

(* Streamed /query head: no Content-Length, the body is EOF-delimited;
   busy additionally advertises Retry-After, the explicit backpressure
   contract. *)
let query_head status =
  let headers = match status with S_busy -> [ ("Retry-After", "1") ] | _ -> [] in
  Monitor.http_head ~content_type:"text/plain; charset=utf-8" ~headers
    (http_code status)

let handle_http t fd r first_line =
  match String.split_on_char ' ' first_line with
  | meth :: target :: _ -> (
      (* drain headers; keep Content-Length for the body *)
      let content_length = ref 0 in
      let rec headers () =
        match read_line t r with
        | None | Some "" -> ()
        | Some line ->
            (match String.index_opt line ':' with
            | Some i
              when String.lowercase_ascii (String.trim (String.sub line 0 i))
                   = "content-length" -> (
                match
                  int_of_string_opt
                    (String.trim
                       (String.sub line (i + 1) (String.length line - i - 1)))
                with
                | Some n -> content_length := n
                | None -> ())
            | _ -> ());
            headers ()
      in
      headers ();
      let body =
        if !content_length > 0 then
          Option.value ~default:"" (read_exact t r !content_length)
        else ""
      in
      let path, params = split_target target in
      match (meth, path) with
      | ("GET" | "HEAD"), "/" ->
          respond_simple t fd ~route:"/" (Monitor.respond index_body)
      | ("GET" | "HEAD"), "/healthz" ->
          respond_simple t fd ~route:"/healthz"
            (Monitor.respond ~content_type:"application/json" (healthz_body t))
      | ("GET" | "POST"), "/query" -> (
          let query_text =
            if body <> "" then String.trim body
            else
              match List.assoc_opt "q" params with
              | Some q -> String.trim q
              | None -> ""
          in
          let deadline_ns =
            match List.assoc_opt "deadline_ms" params with
            | Some s -> (
                match int_of_string_opt s with
                | Some ms when ms > 0 -> ms * 1_000_000
                | _ -> t.deadline_ns)
            | None -> t.deadline_ns
          in
          match query_text with
          | "" ->
              respond_simple t fd ~route:"/query"
                (Monitor.respond ~status:400
                   "missing query: GET /query?q=... or POST the query text\n")
          | q -> serve_query t fd ~route:"/query" ~write_head:query_head
                   ~deadline_ns q)
      | _, ("/" | "/healthz" | "/query") ->
          respond_simple t fd ~route:path
            (Monitor.respond ~status:405
               (Printf.sprintf "method %s not allowed\n" meth))
      | _ ->
          respond_simple t fd ~route:"(other)"
            (Monitor.respond ~status:404
               (Printf.sprintf "no route %s\n" path)))
  | _ ->
      respond_simple t fd ~route:"(bad)"
        (Monitor.respond ~status:400 "bad request\n")

(* --- The line-protocol face ------------------------------------------------ *)

(* No HTTP head: the write_head hook contributes nothing, the trailer
   alone reports status. *)
let line_head _status = ""

let handle_line_session t fd r first_line =
  let deadline = ref t.deadline_ns in
  let handle line =
    match String.trim line with
    | "" -> true
    | "PING" -> write_all fd "PONG\n"
    | "QUIT" | "BYE" -> false
    | line when String.length line > 9 && String.sub line 0 9 = "DEADLINE " -> (
        match int_of_string_opt (String.trim (String.sub line 9 (String.length line - 9))) with
        | Some ms when ms > 0 ->
            deadline := ms * 1_000_000;
            write_all fd "OK\n"
        | _ -> write_all fd "# status=error msg=\"bad DEADLINE\"\n")
    | query ->
        serve_query t fd ~route:"line" ~write_head:line_head
          ~deadline_ns:!deadline query;
        true
  in
  let rec loop line =
    if handle line && not t.stopping then
      match read_line t r with None -> () | Some l -> loop l
  in
  loop first_line

(* --- Sessions -------------------------------------------------------------- *)

let looks_like_http line =
  (* METHOD SP TARGET SP HTTP/…  *)
  match String.split_on_char ' ' line with
  | [ _; _; v ] -> String.length v >= 5 && String.sub v 0 5 = "HTTP/"
  | _ -> false

let session t fd =
  let self = Thread.id (Thread.self ()) in
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.smu;
      Hashtbl.remove t.sessions self;
      Metrics.set t.g_sessions (float_of_int (Hashtbl.length t.sessions));
      Mutex.unlock t.smu;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.5;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.
       with Unix.Unix_error _ -> ());
      let r = reader fd in
      match read_line t r with
      | None -> ()
      | Some line ->
          if looks_like_http line then handle_http t fd r line
          else handle_line_session t fd r line)

let accept_loop t () =
  while not t.stopping do
    match Unix.accept t.sock with
    | fd, _ ->
        if t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          (* The insert happens under [smu] before the session can run
             its removal (which also needs [smu]), so the table never
             misses a live session or keeps a dead one. *)
          Mutex.lock t.smu;
          let th = Thread.create (fun () -> session t fd) () in
          Hashtbl.replace t.sessions (Thread.id th) (fd, th);
          Metrics.set t.g_sessions (float_of_int (Hashtbl.length t.sessions));
          Mutex.unlock t.smu
        end
    | exception Unix.Unix_error _ -> ()  (* stop() closes the socket *)
  done

(* --- Lifecycle ------------------------------------------------------------- *)

let start ?(registry = Metrics.default) ?(workers = 4) ?(queue = 64)
    ?(deadline_ms = 5_000) ?(port = 0) ~make_engine () =
  if workers < 1 then invalid_arg "Srv.start: workers must be positive";
  if queue < 1 then invalid_arg "Srv.start: queue must be positive";
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen sock 64
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let t =
    {
      sock;
      port;
      registry;
      queue_cap = queue;
      n_workers = workers;
      deadline_ns = deadline_ms * 1_000_000;
      stopping = false;
      queue = Queue.create ();
      qmu = Mutex.create ();
      qcv = Condition.create ();
      workers = [];
      accept_thread = None;
      sessions = Hashtbl.create 16;
      smu = Mutex.create ();
      g_depth =
        Metrics.gauge ~registry ~help:"requests waiting in the admission queue"
          "srv_queue_depth";
      g_sessions =
        Metrics.gauge ~registry ~help:"live serving sessions (connections)"
          "srv_sessions";
      c_shed =
        Metrics.counter ~registry
          ~help:"requests shed because the admission queue was full"
          "srv_shed_total";
    }
  in
  t.workers <-
    List.init workers (fun _ -> Thread.create (worker_loop t make_engine) ());
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let port t = t.port
let workers t = t.n_workers
let queue_capacity t = t.queue_cap

let queue_depth t =
  Mutex.lock t.qmu;
  let n = Queue.length t.queue in
  Mutex.unlock t.qmu;
  n

let session_count t =
  Mutex.lock t.smu;
  let n = Hashtbl.length t.sessions in
  Mutex.unlock t.smu;
  n

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    (* wake a blocked accept with a throwaway connection *)
    (try
       let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close s with Unix.Unix_error _ -> ())
         (fun () ->
           Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port)))
     with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    (* workers drain what was admitted, then exit *)
    Mutex.lock t.qmu;
    Condition.broadcast t.qcv;
    Mutex.unlock t.qmu;
    List.iter Thread.join t.workers;
    (* nudge idle sessions off their sockets, then join them *)
    Mutex.lock t.smu;
    let live = Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [] in
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      live;
    Mutex.unlock t.smu;
    List.iter (fun (_, th) -> Thread.join th) live;
    Metrics.set t.g_sessions 0.;
    set_depth t 0
  end
