(** The concurrent query-serving front-end: a socket server executing
    L0–L3 query text on a fixed worker pool over the shared read-only
    instance.

    One listening port speaks both protocols, sniffed on the first
    line of each connection:

    - {b HTTP/1.1} (the {!Monitor} machinery): [GET /query?q=<query>]
      or [POST /query] with the query text as the body; optional
      [deadline_ms] query parameter.  The response streams result rows
      (one DN per line) EOF-delimited — no [Content-Length] — and ends
      with a [# status=...] trailer line.  [/] is an index and
      [/healthz] liveness JSON.
    - {b Line protocol}: one query per line; rows stream back, each
      response ending with the same trailer.  [PING] answers [PONG],
      [DEADLINE <ms>] sets the session's deadline, [QUIT]/[BYE] closes.

    The trailer is one of
    [# status=ok rows=<n> wall_us=<n>],
    [# status=deadline rows=<n> wall_us=<n>] (partial rows shipped),
    [# status=busy retry_ms=<n>] (shed at admission; HTTP also sends
    503 + [Retry-After]) or [# status=error msg="..."].

    Concurrency model: a session thread per connection parses requests
    and submits them to a bounded admission queue; [workers] worker
    threads — each owning its own {!Engine} built by [make_engine] —
    execute and stream results back.  A full queue sheds instead of
    buffering (explicit backpressure).  Deadlines are absolute from
    admission: a request whose budget died waiting is not executed,
    and one exceeding it mid-stream stops after the rows already
    shipped.

    Observability: [srv_requests_total{route,status}],
    [srv_request_ns{route}] (admission → completion, queue wait
    included), [srv_queue_depth], [srv_sessions] and [srv_shed_total]
    in the given registry; every executed query records a {!Qlog}
    event carrying a fresh trace id.  {!Alerts.install_defaults}
    includes SLO rules over the latency histogram and the shed rate. *)

type t

val start :
  ?registry:Metrics.t ->
  ?workers:int ->
  ?queue:int ->
  ?deadline_ms:int ->
  ?port:int ->
  make_engine:(unit -> Engine.t) ->
  unit ->
  t
(** Bind the loopback interface and start serving.  [workers] (default
    4) worker threads each call [make_engine] once at startup — hand
    out engines sharing one immutable {!Instance}; [queue] (default
    64) bounds the admission queue; [deadline_ms] (default 5000) is
    the per-request budget; [port] 0 (the default) picks a free port —
    see {!port}.
    @raise Unix.Unix_error when the port is taken.
    @raise Invalid_argument when [workers] or [queue] is not positive. *)

val port : t -> int
val workers : t -> int
val queue_capacity : t -> int

val queue_depth : t -> int
(** Requests waiting for a worker right now. *)

val session_count : t -> int
(** Live connections right now. *)

val stop : t -> unit
(** Stop accepting, drain admitted requests, join every worker and
    session thread, close every socket.  Idempotent. *)
