(** A minimal line-protocol client for the serving front-end ({!Srv}),
    used by the load generator and the tests.

    One connection; strictly pipelined: {!query} sends one line and
    reads result rows until the [# status=...] trailer. *)

exception Disconnected
(** The server hung up (or a read/write failed). *)

type t

type status =
  | Ok
  | Deadline  (** budget exceeded; [rows] holds the partial result *)
  | Busy of int  (** shed at admission; retry after the given ms *)
  | Error of string

type reply = { rows : string list; status : status; wall_us : int }

val connect : ?host:string -> ?timeout_s:float -> port:int -> unit -> t
(** [host] defaults to loopback, [timeout_s] (default 10) bounds each
    socket read/write.
    @raise Unix.Unix_error when nothing listens. *)

val query : t -> string -> reply
(** Send one query line, collect its rows (DNs) and trailer.
    @raise Disconnected on connection loss. *)

val ping : t -> bool
val set_deadline_ms : t -> int -> bool

val close : t -> unit
(** Send [QUIT] (best-effort) and close the socket. *)
