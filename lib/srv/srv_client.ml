(* A minimal line-protocol client for the serving front-end — what the
   load generator and the tests speak.  One connection, pipelined
   strictly (send a line, read rows until the trailer). *)

exception Disconnected

type t = { fd : Unix.file_descr; buf : Buffer.t; mutable eof : bool }

type status = Ok | Deadline | Busy of int | Error of string

type reply = { rows : string list; status : status; wall_us : int }

let connect ?(host = "127.0.0.1") ?(timeout_s = 10.) ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; buf = Buffer.create 256; eof = false }

let close t =
  (try
     let line = Bytes.of_string "QUIT\n" in
     ignore (Unix.write t.fd line 0 (Bytes.length line))
   with Unix.Unix_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t line =
  let payload = Bytes.of_string (line ^ "\n") in
  let rec go off =
    if off < Bytes.length payload then
      match Unix.write t.fd payload off (Bytes.length payload - off) with
      | 0 -> raise Disconnected
      | n -> go (off + n)
      | exception Unix.Unix_error _ -> raise Disconnected
  in
  go 0

let read_line t =
  let chunk = Bytes.create 4096 in
  let rec go () =
    let text = Buffer.contents t.buf in
    match String.index_opt text '\n' with
    | Some i ->
        let line = String.sub text 0 i in
        Buffer.clear t.buf;
        Buffer.add_string t.buf
          (String.sub text (i + 1) (String.length text - i - 1));
        line
    | None -> (
        if t.eof then raise Disconnected;
        match Unix.read t.fd chunk 0 (Bytes.length chunk) with
        | 0 ->
            t.eof <- true;
            raise Disconnected
        | n ->
            Buffer.add_subbytes t.buf chunk 0 n;
            go ()
        | exception Unix.Unix_error _ -> raise Disconnected)
  in
  go ()

(* `# status=ok rows=12 wall_us=345` etc.; msg is %S-quoted and last. *)
let parse_trailer line =
  let field key =
    let marker = key ^ "=" in
    let rec find i =
      if i + String.length marker > String.length line then None
      else if String.sub line i (String.length marker) = marker then
        let start = i + String.length marker in
        let stop =
          match String.index_from_opt line start ' ' with
          | Some j -> j
          | None -> String.length line
        in
        Some (String.sub line start (stop - start))
      else find (i + 1)
    in
    find 0
  in
  let int_field key = Option.bind (field key) int_of_string_opt in
  let wall_us = Option.value ~default:0 (int_field "wall_us") in
  match field "status" with
  | Some "ok" -> (Ok, wall_us)
  | Some "deadline" -> (Deadline, wall_us)
  | Some "busy" ->
      (Busy (Option.value ~default:1000 (int_field "retry_ms")), wall_us)
  | Some "error" ->
      let msg =
        match String.index_opt line '"' with
        | Some i -> (
            try Scanf.sscanf (String.sub line i (String.length line - i)) "%S"
                  (fun s -> s)
            with Scanf.Scan_failure _ | End_of_file -> "error")
        | None -> "error"
      in
      (Error msg, wall_us)
  | _ -> (Error ("bad trailer: " ^ line), wall_us)

let query t text =
  send t text;
  let rec collect rows =
    let line = read_line t in
    if String.length line >= 2 && String.sub line 0 2 = "# " then
      let status, wall_us = parse_trailer line in
      { rows = List.rev rows; status; wall_us }
    else collect (line :: rows)
  in
  collect []

let ping t =
  send t "PING";
  match read_line t with "PONG" -> true | _ -> false | exception Disconnected -> false

let set_deadline_ms t ms =
  send t (Printf.sprintf "DEADLINE %d" ms);
  match read_line t with "OK" -> true | _ -> false | exception Disconnected -> false
