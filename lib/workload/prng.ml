(* Deterministic splitmix64 PRNG.

   All workload generators are seeded, so every experiment and test is
   reproducible bit-for-bit; we do not touch the global [Random] state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Bernoulli with probability [p] (in [0, 1]). *)
let flip t p = int t 1_000_000 < int_of_float (p *. 1_000_000.)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with [] -> invalid_arg "Prng.pick_list: empty list" | _ ->
    List.nth l (int t (List.length l))

(* Sample [k] distinct indices from [0, n). *)
let sample t ~k ~n =
  if k > n then invalid_arg "Prng.sample: k > n";
  let seen = Hashtbl.create (2 * k) in
  let rec draw acc remaining =
    if remaining = 0 then acc
    else
      let i = int t n in
      if Hashtbl.mem seen i then draw acc remaining
      else begin
        Hashtbl.replace seen i ();
        draw (i :: acc) (remaining - 1)
      end
  in
  draw [] k
