(** Synthetic directory information forests.

    Seeded generation of random DIFs with controllable size and shape;
    entries mix integer, string and dn-valued attributes so every filter
    form and operator of the query languages has matching data. *)

type params = {
  seed : int;
  size : int;
  roots : int;  (** number of forest roots *)
  depth_bias : float;
      (** 0.0 = uniform attachment (bushy, depth O(log n)); larger values
          grow deep paths that exercise the stack algorithms *)
  max_depth : int;
      (** chain building stops here (dn keys grow with depth) *)
  ref_fanout : int;  (** dn-valued [ref] values per node entry *)
  priority_range : int;
  tag_pool : string array;
  name_pool : string array;
}

val default_params : params

val schema : unit -> Schema.t
(** The generic schema of all synthetic DIFs: dcObject /
    organizationalUnit / node / person classes over dc, ou, id, name,
    surName, priority, weight, tag and the dn-valued ref. *)

val generate : ?params:params -> unit -> Instance.t
(** A random forest of exactly [size] entries (validated). *)

val karily : fanout:int -> size:int -> unit -> Instance.t
(** A deterministic balanced [fanout]-ary tree of node entries, for
    unit tests and complexity measurements. *)

val chain : size:int -> unit -> Instance.t
(** A single path — the worst case for stack depth. *)
