(** Deterministic splitmix64 PRNG.  All workload generators are seeded,
    so every experiment and test reproduces bit-for-bit; the global
    [Random] state is never touched. *)

type t

val create : int -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [0, bound).  @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val flip : t -> float -> bool
(** Bernoulli with the given probability. *)

val pick : t -> 'a array -> 'a
val pick_list : t -> 'a list -> 'a

val sample : t -> k:int -> n:int -> int list
(** [k] distinct indices from [0, n). *)
