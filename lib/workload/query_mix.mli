(** Deterministic serving workloads: a seeded stream of L0–L3 query
    text over a synthetic instance, for the load generator and the
    serving tests.

    Queries are generated as ASTs — bases drawn from the instance,
    filters from the pools every {!Dif_gen} DIF populates — and
    rendered with {!Qprinter}, so every generated string parses back.
    Same seed, same instance, same mix ⇒ the identical query array. *)

type mix = { l0 : int; l1 : int; l2 : int; l3 : int }
(** Relative weights of the four language levels in the stream. *)

val default_mix : mix
(** [{l0 = 55; l1 = 20; l2 = 20; l3 = 5}] — interactive-directory
    shaped: mostly atomic lookups, some boolean and hierarchy, a few
    aggregates/references. *)

val generate_ast :
  ?mix:mix -> seed:int -> count:int -> Instance.t -> Ast.t array

val generate : ?mix:mix -> seed:int -> count:int -> Instance.t -> string array
(** The same stream as query text.
    @raise Invalid_argument on an empty instance or an all-zero mix. *)
