(* Synthetic directory information forests.

   Seeded generator for random DIFs with controllable size and shape:
   [depth_bias] interpolates between uniform random attachment (shallow,
   bushy trees, expected depth O(log n)) and chain building (deep paths
   that exercise the stack algorithms' spill behaviour).  Entries carry a
   mix of integer, string and dn-valued attributes so that every filter
   form and operator of the query languages has matching data. *)

type params = {
  seed : int;
  size : int;
  roots : int;  (* number of forest roots *)
  depth_bias : float;  (* 0.0 = uniform parent, 1.0 = always deepest *)
  max_depth : int;  (* chain-building stops here: dn keys grow with
                       depth, so unbounded chains would make key
                       construction quadratic in the instance size *)
  ref_fanout : int;  (* number of dn-valued [ref] values per node entry *)
  priority_range : int;
  tag_pool : string array;
  name_pool : string array;
}

let default_params =
  {
    seed = 42;
    size = 1_000;
    roots = 2;
    depth_bias = 0.3;
    max_depth = 48;
    ref_fanout = 2;
    priority_range = 10;
    tag_pool = [| "red"; "green"; "blue"; "amber"; "cyan" |];
    name_pool =
      [|
        "jagadish"; "lakshmanan"; "milo"; "srivastava"; "vista"; "smith";
        "jones"; "garcia"; "mueller"; "tanaka";
      |];
  }

(* The generic schema every synthetic DIF conforms to. *)
let schema () =
  let s = Schema.empty () in
  Schema.declare_attr s "dc" Value.T_string;
  Schema.declare_attr s "ou" Value.T_string;
  Schema.declare_attr s "id" Value.T_int;
  Schema.declare_attr s "name" Value.T_string;
  Schema.declare_attr s "surName" Value.T_string;
  Schema.declare_attr s "priority" Value.T_int;
  Schema.declare_attr s "weight" Value.T_int;
  Schema.declare_attr s "tag" Value.T_string;
  Schema.declare_attr s "ref" Value.T_dn;
  Schema.declare_class s "dcObject" [ "dc" ];
  Schema.declare_class s "organizationalUnit" [ "ou" ];
  Schema.declare_class s "node"
    [ "id"; "name"; "priority"; "weight"; "tag"; "ref" ];
  Schema.declare_class s "person" [ "id"; "surName"; "name"; "priority" ];
  s

let oc c = (Schema.object_class, Value.Str c)

let root_entry i =
  let dn = Dn.of_string (Printf.sprintf "dc=root%d" i) in
  Entry.make dn [ ("dc", Value.Str (Printf.sprintf "root%d" i)); oc "dcObject" ]

(* Generate the forest.  Each non-root entry is attached under an
   existing entry; entry kinds rotate between organizational units,
   generic nodes and person leaves. *)
let generate ?(params = default_params) () =
  let rng = Prng.create params.seed in
  let sc = schema () in
  let roots = List.init (max 1 params.roots) root_entry in
  let dns = Array.make params.size Dn.root in
  let entries = ref (List.rev roots) in
  let n_roots = List.length roots in
  List.iteri (fun i e -> if i < params.size then dns.(i) <- Entry.dn e) roots;
  let count = ref (min n_roots params.size) in
  let deepest = ref (match roots with e :: _ -> Entry.dn e | [] -> Dn.root) in
  while !count < params.size do
    let i = !count in
    let parent =
      if
        Prng.flip rng params.depth_bias
        && Dn.depth !deepest < params.max_depth
      then !deepest
      else dns.(Prng.int rng i)
    in
    let kind = Prng.int rng 3 in
    let entry =
      match kind with
      | 0 ->
          let v = Printf.sprintf "ou%d" i in
          Entry.make
            (Dn.child parent (Rdn.single "ou" (Value.Str v)))
            [
              ("ou", Value.Str v);
              ("id", Value.Int i);
              ("priority", Value.Int (Prng.int rng params.priority_range));
              oc "organizationalUnit";
              oc "node";
            ]
      | 1 ->
          let refs =
            List.init params.ref_fanout (fun _ ->
                ("ref", Value.Dn dns.(Prng.int rng i)))
          in
          Entry.make
            (Dn.child parent (Rdn.single "id" (Value.Int i)))
            ([
               ("id", Value.Int i);
               ("name", Value.Str (Prng.pick rng params.name_pool));
               ("priority", Value.Int (Prng.int rng params.priority_range));
               ("weight", Value.Int (Prng.int rng 1_000));
               ("tag", Value.Str (Prng.pick rng params.tag_pool));
               oc "node";
             ]
            @ refs)
      | _ ->
          Entry.make
            (Dn.child parent (Rdn.single "id" (Value.Int i)))
            [
              ("id", Value.Int i);
              ("surName", Value.Str (Prng.pick rng params.name_pool));
              ("name", Value.Str (Prng.pick rng params.name_pool));
              ("priority", Value.Int (Prng.int rng params.priority_range));
              oc "person";
            ]
    in
    dns.(i) <- Entry.dn entry;
    if Dn.depth (Entry.dn entry) > Dn.depth !deepest then
      deepest := Entry.dn entry;
    entries := entry :: !entries;
    incr count
  done;
  Instance.of_entries sc (List.rev !entries)

(* A balanced k-ary tree of [node] entries — deterministic shapes for
   unit tests and complexity measurements. *)
let karily ~fanout ~size () =
  let sc = schema () in
  let dns = Array.make (max 1 size) Dn.root in
  let entry_of i parent =
    let dn =
      if i = 0 then Dn.of_string "dc=kroot"
      else Dn.child parent (Rdn.single "id" (Value.Int i))
    in
    dns.(i) <- dn;
    if i = 0 then Entry.make dn [ ("dc", Value.Str "kroot"); oc "dcObject" ]
    else
      Entry.make dn
        [
          ("id", Value.Int i);
          ("priority", Value.Int (i mod 7));
          ("weight", Value.Int i);
          ("tag", Value.Str (if i mod 2 = 0 then "even" else "odd"));
          oc "node";
        ]
  in
  let entries =
    List.init size (fun i ->
        let parent = if i = 0 then Dn.root else dns.((i - 1) / fanout) in
        entry_of i parent)
  in
  Instance.of_entries sc entries

(* A single chain of [size] entries — the worst case for stack depth. *)
let chain ~size () = karily ~fanout:1 ~size ()
