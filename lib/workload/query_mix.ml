(* Deterministic serving workloads: a seeded stream of L0–L3 query
   *text* over a synthetic instance, for the load generator and the
   serving tests.

   Queries are built as ASTs (bases drawn from the instance, filters
   from the pools every synthetic DIF populates) and rendered with
   [Qprinter], so each one parses back — the printer/parser round-trip
   is property-tested elsewhere.  The mix weights how many trees come
   from each language level; the default leans on the cheap levels the
   way an interactive directory workload does. *)

type mix = { l0 : int; l1 : int; l2 : int; l3 : int }

let default_mix = { l0 = 55; l1 = 20; l2 = 20; l3 = 5 }

let filters =
  [|
    (fun _ -> Afilter.Present "id");
    (fun _ -> Afilter.Present "ref");
    (fun r ->
      Afilter.Str_eq
        ( Schema.object_class,
          Prng.pick r [| "node"; "person"; "organizationalUnit"; "dcObject" |]
        ));
    (fun r ->
      Afilter.Str_eq ("name", Prng.pick r [| "jagadish"; "milo"; "smith" |]));
    (fun r ->
      Afilter.Int_cmp
        ( "priority",
          Prng.pick r Afilter.[| Lt; Le; Eq; Ge; Gt |],
          Prng.int r 10 ));
    (fun r -> Afilter.Int_cmp ("id", Afilter.Lt, Prng.int r 150));
    (fun r ->
      Afilter.Substr
        ( "name",
          {
            Afilter.initial = None;
            middles = [ Prng.pick r [| "a"; "mi"; "ith" |] ];
            final = None;
          } ));
    (fun r ->
      Afilter.Substr
        ( "tag",
          {
            Afilter.initial = Some (Prng.pick r [| "r"; "gr"; "b" |]);
            middles = [];
            final = None;
          } ));
  |]

let scopes = [| Ast.Base; Ast.One; Ast.Sub |]

let atomic r bases =
  let base =
    if Prng.flip r 0.15 then Dn.root else Prng.pick r bases
  in
  (* Sub keeps result sets non-trivial; narrower scopes appear too. *)
  let scope = if Prng.flip r 0.7 then Ast.Sub else Prng.pick r scopes in
  Ast.Atomic { Ast.base; scope; filter = (Prng.pick r filters) r }

let l1 r bases =
  let a = atomic r bases and b = atomic r bases in
  match Prng.int r 3 with
  | 0 -> Ast.And (a, b)
  | 1 -> Ast.Or (a, b)
  | _ -> Ast.Diff (a, b)

let l2 r bases =
  let a = atomic r bases and b = atomic r bases in
  match Prng.int r 6 with
  | 0 -> Ast.Hier (Ast.P, a, b, None)
  | 1 -> Ast.Hier (Ast.C, a, b, None)
  | 2 -> Ast.Hier (Ast.A, a, b, None)
  | 3 -> Ast.Hier (Ast.D, a, b, None)
  | 4 -> Ast.Hier3 (Ast.Ac, a, b, atomic r bases, None)
  | _ -> Ast.Hier3 (Ast.Dc, a, b, atomic r bases, None)

let l3 r bases =
  let a = atomic r bases and b = atomic r bases in
  match Prng.int r 3 with
  | 0 ->
      Ast.Gsel
        ( a,
          {
            Ast.lhs = Ast.A_entry (Ast.Ea_agg (Ast.Count, Ast.Self "ref"));
            op = Ast.Ge;
            rhs = Ast.A_const 1;
          } )
  | 1 -> Ast.Eref (Ast.Vd, a, b, "ref", None)
  | _ -> Ast.Eref (Ast.Dv, a, b, "ref", None)

let pick_level r m =
  let total = m.l0 + m.l1 + m.l2 + m.l3 in
  if total <= 0 then invalid_arg "Query_mix.generate: empty mix";
  let k = Prng.int r total in
  if k < m.l0 then 0
  else if k < m.l0 + m.l1 then 1
  else if k < m.l0 + m.l1 + m.l2 then 2
  else 3

let generate_ast ?(mix = default_mix) ~seed ~count instance =
  let r = Prng.create seed in
  let bases =
    Array.of_list (List.map Entry.dn (Instance.to_list instance))
  in
  if Array.length bases = 0 then
    invalid_arg "Query_mix.generate: empty instance";
  Array.init count (fun _ ->
      match pick_level r mix with
      | 0 -> atomic r bases
      | 1 -> l1 r bases
      | 2 -> l2 r bases
      | _ -> l3 r bases)

let generate ?mix ~seed ~count instance =
  Array.map Qprinter.to_string (generate_ast ?mix ~seed ~count instance)
