(** External merge sort over {!Ext_list} values.

    Two-phase: memory-sized sorted runs, then [fan-in]-way merge passes,
    every page transfer charged — the measured I/O is the textbook
    [2 (N/B) (1 + ceil(log_k(N / B M)))] that Theorems 7.1 and 8.4
    rely on.  The sort is stable. *)

val default_memory_pages : int

val sort :
  ?memory_pages:int -> ('a -> 'a -> int) -> 'a Ext_list.t -> 'a Ext_list.t
(** [sort ~memory_pages compare l] sorts [l] stably using
    [memory_pages] (default 8) pages of working memory.
    @raise Invalid_argument if [memory_pages < 2]. *)
