(** Simulated disk-resident record lists.

    Contents live in memory, but every access path charges page
    transfers to the list's pager exactly as a real external-memory
    implementation would: sequential scans read one page per [B]
    records, writers write one page per [B] records.  All operator
    algorithms consume and produce values of this type. *)

type 'a t

val of_array_resident : Pager.t -> 'a array -> 'a t
(** A list already on disk (a base relation): creation charges
    nothing; scans of it charge normally. *)

val of_list_resident : Pager.t -> 'a list -> 'a t

val materialize : Pager.t -> 'a array -> 'a t
(** Write fresh output to disk: charges [pages_of n] page writes. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val pager : 'a t -> Pager.t

val pages : 'a t -> int
(** Pages occupied under the list's blocking factor. *)

val unsafe_get : 'a t -> int -> 'a
(** Raw unaccounted access — tests and result extraction only. *)

val to_list : 'a t -> 'a list
(** Unaccounted conversion, for result extraction. *)

val to_array : 'a t -> 'a array

(** Sequential read cursors; a page is charged the first time any of
    its records is touched. *)
module Cursor : sig
  type 'a cur

  val make : 'a t -> 'a cur

  val peek : 'a cur -> 'a option
  (** The current record (faults its page in), or [None] at the end. *)

  val advance : 'a cur -> unit
  (** Move past the current record. *)

  val next : 'a cur -> 'a option
  (** [peek] then [advance]. *)

  val at_end : 'a cur -> bool
end

(** Page-buffered output writers: one page write per [B] records pushed,
    plus one for the final partial page on [close]. *)
module Writer : sig
  type 'a w

  val make : Pager.t -> 'a w
  val push : 'a w -> 'a -> unit

  val close : 'a w -> 'a t
  (** Flush and return the written list. *)

  val count : 'a w -> int
  (** Records pushed so far. *)
end

(** Pull-based sorted record streams — the streaming executor's edge
    type, unifying "accounted cursor over a resident list" and "live
    operator output" (free pulls: the producer hands pages straight to
    the consumer, Thm 8.3's pipelining). *)
module Source : sig
  type 'a src

  val of_list : 'a t -> 'a src
  (** Stream a resident list; pulls charge page reads like a scan. *)

  val of_array : 'a array -> 'a src
  (** Live operator output: pulls charge nothing. *)

  val length : 'a src -> int
  (** Total records of the stream (consumed included). *)

  val peek : 'a src -> 'a option
  val advance : 'a src -> unit
  val next : 'a src -> 'a option
  val iter : ('a -> unit) -> 'a src -> unit

  val drain : 'a src -> 'a array
  (** Remaining records as an array; charges only the pulls. *)

  val materialize : Pager.t -> 'a src -> 'a t
  (** Write the stream out as a fresh resident list (charged). *)

  val force : Pager.t -> 'a src -> 'a t
  (** A resident list for an operand consumed more than once: an
      untouched list-backed source unwraps free, a live stream is
      {!materialize}d (the double-consumption exception). *)
end

val iter : ('a -> unit) -> 'a t -> unit
(** Accounted sequential scan. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val filter : ('a -> bool) -> 'a t -> 'a t
(** Accounted scan + write of the matching records. *)

val map : ('a -> 'b) -> 'a t -> 'b t

val is_sorted : ('a -> 'a -> int) -> 'a t -> bool
(** Order check without I/O charge (assertion helper). *)
