(* External merge sort over [Ext_list] values.

   Classic two-phase external sort: run formation reads the input once and
   writes sorted runs of [memory_pages] pages each; the merge phase does
   [ceil(log_k runs)] passes, each reading and writing the whole file,
   where the fan-in [k] is [memory_pages - 1].  All page transfers are
   charged to the list's pager, so the measured I/O of sorting N records is
   the textbook 2 * (N/B) * (1 + ceil(log_k (N / (B*M)))) figure that the
   embedded-reference theorems (Thm 7.1, 8.4) rely on. *)

let default_memory_pages = 8

(* Merge [k] sorted lists of records into one, charging cursor reads and
   writer writes.  Ties resolve towards the earlier input, keeping the
   sort stable. *)
let merge_runs compare pager runs =
  let cursors = List.map Ext_list.Cursor.make runs in
  let stats = Pager.stats pager in
  let w = Ext_list.Writer.make pager in
  let rec pick best = function
    | [] -> best
    | cur :: rest -> (
        match Ext_list.Cursor.peek cur with
        | None -> pick best rest
        | Some v -> (
            match best with
            | None -> pick (Some (cur, v)) rest
            | Some (_, bv) ->
                Io_stats.compare_key stats;
                if compare v bv < 0 then pick (Some (cur, v)) rest
                else pick best rest))
  in
  let rec loop () =
    match pick None cursors with
    | None -> ()
    | Some (cur, v) ->
        Ext_list.Cursor.advance cur;
        Ext_list.Writer.push w v;
        loop ()
  in
  loop ();
  Ext_list.Writer.close w

(* Phase 1: cut the input into memory-sized chunks, sort each in memory
   (charged as one read and one write of the chunk), producing runs. *)
let form_runs compare ?(memory_pages = default_memory_pages) t =
  let pager = Ext_list.pager t in
  let block = Pager.block pager in
  let chunk = memory_pages * block in
  let n = Ext_list.length t in
  let rec cut start acc =
    if start >= n then List.rev acc
    else
      let len = min chunk (n - start) in
      let run = Array.init len (fun i -> Ext_list.unsafe_get t (start + i)) in
      Pager.charge_scan_read pager len;
      Array.stable_sort compare run;
      let run = Ext_list.materialize pager run in
      cut (start + len) (run :: acc)
  in
  cut 0 []

let rec merge_passes compare pager fan_in runs =
  match runs with
  | [] -> Ext_list.materialize pager [||]
  | [ r ] -> r
  | _ ->
      let rec group acc cur k = function
        | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
        | r :: rest ->
            if k = fan_in then group (List.rev cur :: acc) [ r ] 1 rest
            else group acc (r :: cur) (k + 1) rest
      in
      let groups = group [] [] 0 runs in
      let merged = List.map (merge_runs compare pager) groups in
      merge_passes compare pager fan_in merged

let sort ?(memory_pages = default_memory_pages) compare t =
  if memory_pages < 2 then invalid_arg "Ext_sort.sort: memory_pages < 2";
  let pager = Ext_list.pager t in
  let runs = form_runs compare ~memory_pages t in
  merge_passes compare pager (memory_pages - 1) runs
