(* Mutable counters for the external-memory cost model.

   The paper states all complexity results as counts of page reads and
   writes for a blocking factor [B] (entries per page).  Every component of
   the storage layer charges one of these counters; algorithms thread a
   value of type [t] through explicitly so costs can be attributed to a
   single query evaluation. *)

type t = {
  mutable page_reads : int;
  mutable page_writes : int;
  mutable comparisons : int;
  mutable messages : int;  (* distributed evaluation: messages shipped *)
  mutable bytes_shipped : int;  (* distributed evaluation: payload bytes *)
  mutable resident_pages : int;  (* current in-memory working set, pages *)
  mutable max_resident_pages : int;  (* high-water mark of the above *)
}

let create () =
  {
    page_reads = 0;
    page_writes = 0;
    comparisons = 0;
    messages = 0;
    bytes_shipped = 0;
    resident_pages = 0;
    max_resident_pages = 0;
  }

(* [resident_pages] is a live gauge, not a counter: pages held by a
   pager, buffer pool or stack window at reset time are still held
   afterwards, so zeroing it would make every later [shrink_resident]
   bias the gauge negative.  Keep the gauge and restart the high-water
   mark from the current working set. *)
let reset t =
  t.page_reads <- 0;
  t.page_writes <- 0;
  t.comparisons <- 0;
  t.messages <- 0;
  t.bytes_shipped <- 0;
  t.max_resident_pages <- t.resident_pages

let copy t = { t with page_reads = t.page_reads }

let read_page ?(n = 1) t = t.page_reads <- t.page_reads + n
let write_page ?(n = 1) t = t.page_writes <- t.page_writes + n
let compare_key ?(n = 1) t = t.comparisons <- t.comparisons + n

let message ?(bytes = 0) t =
  t.messages <- t.messages + 1;
  t.bytes_shipped <- t.bytes_shipped + bytes

let grow_resident ?(n = 1) t =
  t.resident_pages <- t.resident_pages + n;
  if t.resident_pages > t.max_resident_pages then
    t.max_resident_pages <- t.resident_pages

let shrink_resident ?(n = 1) t =
  t.resident_pages <- max 0 (t.resident_pages - n)

let total_io t = t.page_reads + t.page_writes

(* [diff later earlier] gives the I/O performed between two snapshots. *)
let diff later earlier =
  {
    page_reads = later.page_reads - earlier.page_reads;
    page_writes = later.page_writes - earlier.page_writes;
    comparisons = later.comparisons - earlier.comparisons;
    messages = later.messages - earlier.messages;
    bytes_shipped = later.bytes_shipped - earlier.bytes_shipped;
    resident_pages = later.resident_pages;
    max_resident_pages = later.max_resident_pages;
  }

let pp ppf t =
  Fmt.pf ppf "reads=%d writes=%d io=%d cmp=%d msgs=%d bytes=%d max_resident=%d"
    t.page_reads t.page_writes (total_io t) t.comparisons t.messages
    t.bytes_shipped t.max_resident_pages
