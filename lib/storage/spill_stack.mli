(** The bounded-memory stack of the ComputeHS* algorithms (Figs 2-6).

    The top [window_pages] pages live in memory; pushing past the window
    spills the bottom-most in-memory page (one page write) and popping
    into spilled territory re-fetches the most recent spilled page (one
    page read) — the paper's "stack entries may be swapped out (and
    eventually re-fetched)" behaviour, with total extra I/O linear in
    the number of pushes. *)

type 'a t

val create : ?window_pages:int -> Pager.t -> 'a t
(** A fresh stack holding at most [window_pages] (default 2) pages in
    memory; the window is counted against the resident-page statistics
    until {!release}.  @raise Invalid_argument if [window_pages < 1]. *)

val length : 'a t -> int
(** Total elements, in-memory and spilled. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Push on top; may spill one page. *)

val top : 'a t -> 'a option
(** The top element, re-fetching a spilled page at most once per
    drain. *)

val pop : 'a t -> 'a option
(** Remove and return the top element. *)

val release : 'a t -> unit
(** Return the window to the resident-page accounting (call when the
    sweep is done). *)
