(* The bounded-memory stack used by the ComputeHS* algorithms.

   The paper's stack algorithms (Figs 2, 4, 5, 6) note that "particular
   stack entries may be swapped out (and eventually re-fetched) from the
   memory multiple times when the stack repeatedly grows and shrinks", yet
   the total I/O stays linear.  This module models exactly that behaviour:
   the top [window_pages] pages of the stack are held in memory; when a
   push overflows the window, the bottom-most in-memory page is spilled
   (one page write); when a pop drains the window while spilled pages
   remain, the most recent spilled page is re-fetched (one page read).

   Per record, a spill/fetch pair happens at most once between the record's
   push and its pop on any monotone grow-then-shrink excursion, so the
   extra I/O is bounded by the number of records pushed — preserving the
   paper's linear bound, which experiment E1-E3 verify. *)

type 'a t = {
  pager : Pager.t;
  window_pages : int;
  mutable hot : 'a list;  (* in-memory top segment, most recent first *)
  mutable hot_len : int;
  mutable cold : 'a list list;  (* spilled pages, most recent page first *)
  mutable cold_len : int;
}

let create ?(window_pages = 2) pager =
  if window_pages < 1 then invalid_arg "Spill_stack.create: window_pages < 1";
  Io_stats.grow_resident ~n:window_pages (Pager.stats pager);
  { pager; window_pages; hot = []; hot_len = 0; cold = []; cold_len = 0 }

let length t = t.hot_len + t.cold_len
let is_empty t = length t = 0

(* Split off the last [n] elements of [l] (the bottom of the stack). *)
let split_bottom l n =
  let keep = List.length l - n in
  let rec loop i acc = function
    | rest when i = keep -> (List.rev acc, rest)
    | x :: rest -> loop (i + 1) (x :: acc) rest
    | [] -> assert false
  in
  loop 0 [] l

let push t v =
  let block = Pager.block t.pager in
  let capacity = t.window_pages * block in
  if t.hot_len = capacity then begin
    (* Spill the bottom page of the hot window. *)
    let kept, spilled = split_bottom t.hot block in
    Io_stats.write_page (Pager.stats t.pager);
    t.hot <- kept;
    t.hot_len <- t.hot_len - block;
    t.cold <- spilled :: t.cold;
    t.cold_len <- t.cold_len + block
  end;
  t.hot <- v :: t.hot;
  t.hot_len <- t.hot_len + 1

(* When the hot window drains, re-fetch the most recently spilled page
   (one page read).  The fetched page becomes the new hot segment, so
   repeated peeks of the same record are charged only once. *)
let ensure_hot t =
  if t.hot_len = 0 then
    match t.cold with
    | page :: colder ->
        Io_stats.read_page (Pager.stats t.pager);
        let len = List.length page in
        t.cold <- colder;
        t.cold_len <- t.cold_len - len;
        t.hot <- page;
        t.hot_len <- len
    | [] -> ()

let top t =
  ensure_hot t;
  match t.hot with v :: _ -> Some v | [] -> None

let pop t =
  ensure_hot t;
  match t.hot with
  | v :: rest ->
      t.hot <- rest;
      t.hot_len <- t.hot_len - 1;
      Some v
  | [] -> None

let release t =
  Io_stats.shrink_resident ~n:t.window_pages (Pager.stats t.pager)
