(* Page-size arithmetic for the external-memory cost model.

   A pager is just a blocking factor [block] — the number of directory
   entries that fit on one disk page (the paper's B) — plus the statistics
   sink that page transfers are charged to. *)

type t = { block : int; stats : Io_stats.t }

let create ?(block = 64) stats =
  if block <= 0 then invalid_arg "Pager.create: block must be positive";
  { block; stats }

let block t = t.block
let stats t = t.stats

(* Number of pages occupied by [n] records: ceil(n / B), with 0 for 0. *)
let pages_of t n = if n <= 0 then 0 else ((n - 1) / t.block) + 1

let charge_scan_read t n = Io_stats.read_page ~n:(pages_of t n) t.stats
let charge_scan_write t n = Io_stats.write_page ~n:(pages_of t n) t.stats
