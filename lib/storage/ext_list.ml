(* Disk-resident lists of records, simulated.

   An ['a t] models a sequence of records stored contiguously on disk
   pages.  The contents live in an in-process array, but every access path
   goes through a pager so that page reads and writes are charged exactly
   as a real external-memory implementation would incur them:

   - materializing a list of n records charges ceil(n/B) page writes;
   - a sequential scan charges one page read every B records;
   - a writer charges one page write each time it fills a page, plus one
     for a final partial page.

   All of the paper's operator algorithms consume and produce values of
   this type, keeping the sorted-by-reverse-dn invariant externally. *)

type 'a t = { data : 'a array; pager : Pager.t }

(* Build a list that is already on disk (e.g. a base relation); no charge. *)
let of_array_resident pager data = { data; pager }

(* Materialize fresh output to disk: charges the page writes. *)
let materialize pager data =
  Pager.charge_scan_write pager (Array.length data);
  { data; pager }

let of_list_resident pager l = of_array_resident pager (Array.of_list l)
let length t = Array.length t.data
let is_empty t = Array.length t.data = 0
let pager t = t.pager
let pages t = Pager.pages_of t.pager (length t)

(* Unaccounted raw access, for tests and result extraction only. *)
let unsafe_get t i = t.data.(i)
let to_list t = Array.to_list t.data
let to_array t = Array.copy t.data

(* A sequential read cursor.  [peek] faults in the page holding the current
   record the first time any record of that page is touched. *)
module Cursor = struct
  type 'a cur = { src : 'a t; mutable pos : int; mutable page_loaded : int }

  let make src = { src; pos = 0; page_loaded = -1 }

  let fault cur =
    let block = Pager.block cur.src.pager in
    let page = cur.pos / block in
    if page <> cur.page_loaded then begin
      Io_stats.read_page (Pager.stats cur.src.pager);
      cur.page_loaded <- page
    end

  let peek cur =
    if cur.pos >= Array.length cur.src.data then None
    else begin
      fault cur;
      Some cur.src.data.(cur.pos)
    end

  let advance cur = cur.pos <- cur.pos + 1

  let next cur =
    match peek cur with
    | None -> None
    | Some v ->
        advance cur;
        Some v

  let at_end cur = cur.pos >= Array.length cur.src.data
end

(* An output writer that buffers one page and charges a write per page. *)
module Writer = struct
  type 'a w = {
    pager : Pager.t;
    buf : 'a list ref;  (* current partial page, reversed *)
    in_page : int ref;
    acc : 'a list ref;  (* completed output, reversed *)
    total : int ref;
  }

  let make pager =
    { pager; buf = ref []; in_page = ref 0; acc = ref []; total = ref 0 }

  let push w v =
    w.buf := v :: !(w.buf);
    incr w.in_page;
    incr w.total;
    if !(w.in_page) = Pager.block w.pager then begin
      Io_stats.write_page (Pager.stats w.pager);
      w.acc := !(w.buf) @ !(w.acc);
      w.buf := [];
      w.in_page := 0
    end

  let close w =
    if !(w.in_page) > 0 then begin
      Io_stats.write_page (Pager.stats w.pager);
      w.acc := !(w.buf) @ !(w.acc);
      w.buf := [];
      w.in_page := 0
    end;
    let data = Array.of_list (List.rev !(w.acc)) in
    { data; pager = w.pager }

  let count w = !(w.total)
end

(* A pull-based sorted record stream: the streaming executor's edge
   type, unifying "cursor over a resident list" and "live operator
   output".

   A [List] source is an accounted cursor: pulls fault pages in and
   charge reads exactly like a scan of the backing list.  A [Buf]
   source is live operator output flowing through the pipeline: pulls
   charge nothing, because in the modeled execution the producing
   operator hands each page directly to its consumer without touching
   disk (Thm 8.3's pipelined evaluation).  The in-memory array behind a
   [Buf] models the stream, not a resident file — at any instant the
   real pipeline holds one page of it.

   [force] implements the theorem's double-consumption exception: an
   operand that will be read more than once must exist as a resident
   list, so a live stream is materialized (charged), while a source
   that merely wraps an untouched resident list unwraps for free. *)
module Source = struct
  type 'a src =
    | List of { cur : 'a Cursor.cur; backing : 'a t; mutable touched : bool }
    | Buf of { data : 'a array; mutable pos : int }

  let of_list backing =
    List { cur = Cursor.make backing; backing; touched = false }

  let of_array data = Buf { data; pos = 0 }

  let length = function
    | List l -> Array.length l.backing.data
    | Buf b -> Array.length b.data

  let peek = function
    | List l ->
        l.touched <- true;
        Cursor.peek l.cur
    | Buf b ->
        if b.pos >= Array.length b.data then None else Some b.data.(b.pos)

  let advance = function
    | List l ->
        l.touched <- true;
        Cursor.advance l.cur
    | Buf b -> b.pos <- b.pos + 1

  let next s =
    match peek s with
    | None -> None
    | Some v ->
        advance s;
        Some v

  let iter f s =
    let rec loop () =
      match next s with
      | None -> ()
      | Some v ->
          f v;
          loop ()
    in
    loop ()

  (* Drain the remaining records into a plain array, charging only what
     the pulls themselves charge (reads for a [List], nothing for a
     [Buf]). *)
  let drain s =
    let buf = ref [] in
    iter (fun v -> buf := v :: !buf) s;
    Array.of_list (List.rev !buf)

  (* Write the stream out as a fresh resident list: one page write per
     [B] records, like any operator output under materialized
     evaluation.  This is how the root result (and only the root, under
     streaming) reaches disk. *)
  let materialize pager s =
    let w = Writer.make pager in
    iter (Writer.push w) s;
    Writer.close w

  (* A resident list for an operand consumed more than once.  An
     untouched list-backed source is already resident — unwrap free; a
     live stream must be written out first (the paper's aggregate
     second-scan / $3 witness-list exception). *)
  let force pager s =
    match s with
    | List l when not l.touched -> l.backing
    | List _ | Buf _ -> materialize pager s
end

(* A full accounted scan. *)
let iter f t =
  let cur = Cursor.make t in
  let rec loop () =
    match Cursor.next cur with
    | None -> ()
    | Some v ->
        f v;
        loop ()
  in
  loop ()

let fold f init t =
  let acc = ref init in
  iter (fun v -> acc := f !acc v) t;
  !acc

(* Accounted filter: scans input, writes matching records. *)
let filter f t =
  let w = Writer.make t.pager in
  iter (fun v -> if f v then Writer.push w v) t;
  Writer.close w

let map f t =
  let w = Writer.make t.pager in
  iter (fun v -> Writer.push w (f v)) t;
  Writer.close w

(* Check an ordering invariant without charging I/O (assertion helper). *)
let is_sorted compare t =
  let n = Array.length t.data in
  let rec loop i =
    i >= n - 1 || (compare t.data.(i) t.data.(i + 1) <= 0 && loop (i + 1))
  in
  loop 0
