(** Blocking-factor arithmetic.

    A pager couples the number of directory entries per disk page (the
    paper's [B]) with the {!Io_stats} sink that transfers are charged
    to. *)

type t

val create : ?block:int -> Io_stats.t -> t
(** [create ~block stats] is a pager with blocking factor [block]
    (default 64).  @raise Invalid_argument if [block <= 0]. *)

val block : t -> int
(** The blocking factor [B]. *)

val stats : t -> Io_stats.t
(** The statistics sink. *)

val pages_of : t -> int -> int
(** [pages_of t n] is [ceil (n / B)], the pages occupied by [n]
    records ([0] for [n <= 0]). *)

val charge_scan_read : t -> int -> unit
(** Charge the reads of one sequential scan over [n] records. *)

val charge_scan_write : t -> int -> unit
(** Charge the writes of materializing [n] records sequentially. *)
