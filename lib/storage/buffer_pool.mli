(** An exact-LRU page cache over the simulated disk.

    [read] charges the pager only on misses; hits are free and counted.
    Models the buffer pool a real directory server puts in front of its
    entry file, so repeated queries over the same region (packet-decision
    workloads) beat the cold-read bound.  Capacity is counted against
    the resident-page statistics. *)

type t

val create : ?capacity:int -> Pager.t -> t
(** A pool holding [capacity] pages (default 64); capacity 0 disables
    caching (every access charges).
    @raise Invalid_argument on negative capacity. *)

val capacity : t -> int
val hits : t -> int
val misses : t -> int
val resident : t -> int

val read : t -> file:string -> page:int -> unit
(** Access page [page] of [file]. *)

val clear : t -> unit
(** Drop all cached pages (after the file is rewritten). *)

val release : t -> unit
(** Return the capacity to the resident-page accounting. *)

val pp : Format.formatter -> t -> unit
