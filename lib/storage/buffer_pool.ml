(* An LRU page cache over the simulated disk.

   The paper's cost model charges every page access; a real directory
   server keeps a buffer pool, so repeated queries over the same region
   (the common case for policy-decision workloads, which hit the same
   policy pages for every packet) cost far less than the cold bound.
   [read] charges the underlying pager only on a miss; hits are free and
   counted separately.  Experiment E20 sweeps the capacity.

   Keys are (file, page-number) pairs; eviction is exact LRU via a
   doubly-linked list over an overflow-checked hash table. *)

type node = {
  key : string;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  pager : Pager.t;
  capacity : int;  (* pages held; 0 disables caching entirely *)
  table : (string, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable size : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 64) pager =
  if capacity < 0 then invalid_arg "Buffer_pool.create: negative capacity";
  Io_stats.grow_resident ~n:capacity (Pager.stats pager);
  {
    pager;
    capacity;
    table = Hashtbl.create (2 * max 1 capacity);
    head = None;
    tail = None;
    size = 0;
    hits = 0;
    misses = 0;
  }

let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses
let resident t = t.size

(* unlink [n] from the LRU list *)
let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some lru ->
      unlink t lru;
      Hashtbl.remove t.table lru.key;
      t.size <- t.size - 1

let page_key ~file ~page = file ^ "#" ^ string_of_int page

(* Access one page: free on a hit, one charged read (plus possible
   eviction) on a miss. *)
let read t ~file ~page =
  if t.capacity = 0 then begin
    t.misses <- t.misses + 1;
    Io_stats.read_page (Pager.stats t.pager)
  end
  else
    let key = page_key ~file ~page in
    match Hashtbl.find_opt t.table key with
    | Some n ->
        t.hits <- t.hits + 1;
        unlink t n;
        push_front t n
    | None ->
        t.misses <- t.misses + 1;
        Io_stats.read_page (Pager.stats t.pager);
        if t.size >= t.capacity then evict_lru t;
        let n = { key; prev = None; next = None } in
        Hashtbl.replace t.table key n;
        push_front t n;
        t.size <- t.size + 1

(* Invalidate everything (e.g. after the underlying file is rewritten). *)
let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.size <- 0

let release t = Io_stats.shrink_resident ~n:t.capacity (Pager.stats t.pager)

let pp ppf t =
  Fmt.pf ppf "cache[%d pages]: %d hits, %d misses (%.1f%% hit rate)"
    t.capacity t.hits t.misses
    (if t.hits + t.misses = 0 then 0.
     else 100. *. float_of_int t.hits /. float_of_int (t.hits + t.misses))
