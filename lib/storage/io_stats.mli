(** Page-transfer counters — the external-memory cost model.

    Every complexity claim in the paper is a bound on page reads and
    writes for a blocking factor [B]; values of type {!t} are the sinks
    those transfers are charged to.  Algorithms thread a [t] explicitly,
    so cost is attributable to a single query evaluation. *)

type t = {
  mutable page_reads : int;  (** pages fetched from "disk" *)
  mutable page_writes : int;  (** pages written to "disk" *)
  mutable comparisons : int;  (** key comparisons (CPU-side curiosity) *)
  mutable messages : int;  (** distributed evaluation: messages sent *)
  mutable bytes_shipped : int;  (** distributed evaluation: payload bytes *)
  mutable resident_pages : int;  (** current in-memory working set *)
  mutable max_resident_pages : int;  (** high-water mark of the above *)
}

val create : unit -> t
(** Fresh counters, all zero. *)

val reset : t -> unit
(** Zero every counter in place.  [resident_pages] is a live gauge of
    pages currently held, not a counter, so it is preserved; the
    high-water mark restarts from the current working set. *)

val copy : t -> t
(** Snapshot of the current values. *)

val read_page : ?n:int -> t -> unit
(** Charge [n] (default 1) page reads. *)

val write_page : ?n:int -> t -> unit
(** Charge [n] (default 1) page writes. *)

val compare_key : ?n:int -> t -> unit
(** Count [n] (default 1) key comparisons. *)

val message : ?bytes:int -> t -> unit
(** Count one shipped message carrying [bytes] of payload. *)

val grow_resident : ?n:int -> t -> unit
(** Grow the resident working set by [n] pages, updating the maximum. *)

val shrink_resident : ?n:int -> t -> unit
(** Release [n] resident pages (never below zero). *)

val total_io : t -> int
(** [page_reads + page_writes]. *)

val diff : t -> t -> t
(** [diff later earlier] is the I/O performed between two snapshots. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering of all counters. *)
