(* Query plans at the engine level: estimation and per-operator
   profiling.

   The plan representation, the cost estimator and the normalized plan
   fingerprint live in [Plan] (below the engine, so the query journal
   can also use them); this module binds them to an [Engine.t] and adds
   [profile], which executes the query and attributes the actual rows,
   I/O and wall-clock time to each operator.  The estimated vs.
   measured columns side by side are the closest thing this system has
   to an optimizer debugging view, and the shell exposes them as
   :explain. *)

type node = Plan.node = {
  label : string;
  detail : string;
  est_rows : int;
  est_io : int;
  est_reads : int;
  est_writes : int;
  est_writes_saved : int;
  actual_rows : int option;
  actual_io : int option;
  actual_ns : int option;
  actual_alloc : int option;
  access : Plan.choice option;
  children : node list;
}

(* The engine-bound estimate: same handles, policy and boolean-chain
   rewrite as [Engine.eval], so :explain shows the tree — and the
   access-path decisions, chosen and rejected — that would actually
   run.  Under [Off] it degrades to the legacy selectivity model. *)
let estimate ?mode engine q =
  let q = Engine.plan_rewrite ?mode engine q in
  let streaming =
    Option.value mode ~default:(Engine.mode engine) = Engine.Streaming
  in
  match Engine.planner engine with
  | Engine.Off ->
      Plan.estimate ~pager:(Engine.pager engine)
        ~instance:(Engine.instance engine) q
  | p ->
      let force =
        match p with
        | Engine.Force_index -> Some Plan.Index
        | Engine.Force_scan -> Some Plan.Scan
        | Engine.Auto | Engine.Off -> None
      in
      Plan.estimate ~pager:(Engine.pager engine)
        ~instance:(Engine.instance engine)
        ?attr_index:(Engine.attr_index engine)
        ?cache:(Engine.result_cache engine)
        ?calib:(Engine.calibration engine) ~streaming ?force q

let fingerprint = Plan.fingerprint

(* --- Profiled execution ---------------------------------------------------- *)

(* Evaluate bottom-up, attributing the I/O and wall-clock time of each
   operator (excluding its children) to its plan node.  [mode] picks the
   operator-boundary handling; the default follows the engine. *)
let profile ?mode engine q =
  let mode = Option.value mode ~default:(Engine.mode engine) in
  (* run the tree the planner would run, so the per-node estimates (and
     access decisions) pair with the operators actually executed *)
  let q = Engine.plan_rewrite ~mode engine q in
  let pager = Engine.pager engine in
  let stats = Engine.stats engine in
  (* measure [f], annotating [est] with actual rows / io / ns *)
  let measured est children f =
    let before = Io_stats.total_io stats in
    let alloc0 = Gc.allocated_bytes () in
    let t0 = Mclock.now_ns () in
    let out = f () in
    let ns = Mclock.now_ns () - t0 in
    ( out,
      {
        est with
        actual_rows = Some (Ext_list.length out);
        actual_io = Some (Io_stats.total_io stats - before);
        actual_ns = Some ns;
        actual_alloc = Some (int_of_float (Gc.allocated_bytes () -. alloc0));
        children;
      } )
  in
  (* as [measured], for a streaming operator producing a source *)
  let measured_src est children f =
    let before = Io_stats.total_io stats in
    let alloc0 = Gc.allocated_bytes () in
    let t0 = Mclock.now_ns () in
    let out = f () in
    let ns = Mclock.now_ns () - t0 in
    ( out,
      {
        est with
        actual_rows = Some (Ext_list.Source.length out);
        actual_io = Some (Io_stats.total_io stats - before);
        actual_ns = Some ns;
        actual_alloc = Some (int_of_float (Gc.allocated_bytes () -. alloc0));
        children;
      } )
  in
  let rec go (q : Ast.t) (est : node) =
    match (q, est.children) with
    | Ast.Atomic a, _ ->
        measured est est.children (fun () -> Engine.eval_atomic engine a)
    | Ast.And (q1, q2), [ e1; e2 ] -> binop Bool_ops.and_ q1 q2 e1 e2 est
    | Ast.Or (q1, q2), [ e1; e2 ] -> binop Bool_ops.or_ q1 q2 e1 e2 est
    | Ast.Diff (q1, q2), [ e1; e2 ] -> binop Bool_ops.diff q1 q2 e1 e2 est
    | Ast.Hier (op, q1, q2, agg), [ e1; e2 ] ->
        binop (fun l1 l2 -> Hs_agg.compute_hier ?agg op l1 l2) q1 q2 e1 e2 est
    | Ast.Hier3 (op, q1, q2, q3, agg), [ e1; e2; e3 ] ->
        let l1, n1 = go q1 e1 in
        let l2, n2 = go q2 e2 in
        let l3, n3 = go q3 e3 in
        measured est [ n1; n2; n3 ] (fun () ->
            Hs_agg.compute_hier3 ?agg op l1 l2 l3)
    | Ast.Gsel (q1, f), [ e1 ] ->
        let l1, n1 = go q1 e1 in
        measured est [ n1 ] (fun () -> Simple_agg.compute f l1)
    | Ast.Eref (op, q1, q2, attr, agg), [ e1; e2 ] ->
        binop (fun l1 l2 -> Er.compute ?agg op l1 l2 attr) q1 q2 e1 e2 est
    | _ -> assert false
  and binop f q1 q2 e1 e2 est =
    let l1, n1 = go q1 e1 in
    let l2, n2 = go q2 e2 in
    measured est [ n1; n2 ] (fun () -> f l1 l2)
  in
  (* The same recursion over the fused pipeline: operators consume and
     produce sources, so no boundary write appears in any node's io. *)
  let rec go_src (q : Ast.t) (est : node) =
    match (q, est.children) with
    | Ast.Atomic a, _ ->
        measured_src est est.children (fun () -> Engine.eval_atomic_src engine a)
    | Ast.And (q1, q2), [ e1; e2 ] ->
        binop_src (Bool_ops.and_src pager) q1 q2 e1 e2 est
    | Ast.Or (q1, q2), [ e1; e2 ] ->
        binop_src (Bool_ops.or_src pager) q1 q2 e1 e2 est
    | Ast.Diff (q1, q2), [ e1; e2 ] ->
        binop_src (Bool_ops.diff_src pager) q1 q2 e1 e2 est
    | Ast.Hier (op, q1, q2, agg), [ e1; e2 ] ->
        binop_src
          (fun s1 s2 -> Hs_agg.compute_hier_src ?agg pager op s1 s2)
          q1 q2 e1 e2 est
    | Ast.Hier3 (op, q1, q2, q3, agg), [ e1; e2; e3 ] ->
        let s1, n1 = go_src q1 e1 in
        let s2, n2 = go_src q2 e2 in
        let s3, n3 = go_src q3 e3 in
        measured_src est [ n1; n2; n3 ] (fun () ->
            Hs_agg.compute_hier3_src ?agg pager op s1 s2 s3)
    | Ast.Gsel (q1, f), [ e1 ] ->
        let s1, n1 = go_src q1 e1 in
        measured_src est [ n1 ] (fun () -> Simple_agg.compute_src pager f s1)
    | Ast.Eref (op, q1, q2, attr, agg), [ e1; e2 ] ->
        binop_src
          (fun s1 s2 -> Er.compute_src ?agg pager op s1 s2 attr)
          q1 q2 e1 e2 est
    | _ -> assert false
  and binop_src f q1 q2 e1 e2 est =
    let s1, n1 = go_src q1 e1 in
    let s2, n2 = go_src q2 e2 in
    measured_src est [ n1; n2 ] (fun () -> f s1 s2)
  in
  let est = Trace.with_span ~stats "plan" (fun () -> estimate ~mode engine q) in
  let result, annotated =
    Trace.with_span ~stats "profile" (fun () ->
        match mode with
        | Engine.Materialized -> go q est
        | Engine.Streaming ->
            let src, n = go_src q est in
            (* The root result is materialized in every mode; bill its
               write to the root operator, as eval does. *)
            let before = Io_stats.total_io stats in
            let alloc0 = Gc.allocated_bytes () in
            let out = Ext_list.Source.materialize pager src in
            let extra = Io_stats.total_io stats - before in
            let extra_alloc = int_of_float (Gc.allocated_bytes () -. alloc0) in
            ( out,
              {
                n with
                actual_io = Option.map (fun io -> io + extra) n.actual_io;
                actual_alloc =
                  Option.map (fun a -> a + extra_alloc) n.actual_alloc;
              } ))
  in
  (result, annotated)

(* --- Rendering --------------------------------------------------------------- *)

let pp_node = Plan.pp_node
let pp = Plan.pp
let total_actual_io = Plan.total_actual_io
let total_actual_ns = Plan.total_actual_ns
let total_est_writes_saved = Plan.total_est_writes_saved
