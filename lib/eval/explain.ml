(* Query plans: cost estimation and per-operator profiling.

   The paper's Section 8.2 evaluation strategy is fixed (bottom-up,
   sorted pipeline), so a "plan" here is the query tree annotated with
   costs.  [estimate] predicts cardinalities and page I/O from the
   instance's statistics and the theorems' cost formulas; [profile]
   executes the query and attributes the actual rows and I/O to each
   operator.  The estimated vs. measured columns side by side are the
   closest thing this system has to an optimizer debugging view, and the
   shell exposes them as :explain. *)

type node = {
  label : string;  (* operator name *)
  detail : string;  (* filter / aggregate text *)
  est_rows : int;
  est_io : int;
  actual_rows : int option;
  actual_io : int option;
  actual_ns : int option;  (* wall-clock, excluding children *)
  children : node list;
}

(* --- Cardinality estimation ---------------------------------------------- *)

(* Crude textbook selectivities; the point is order-of-magnitude cost
   attribution, not a real optimizer. *)
let filter_selectivity = function
  | Afilter.Present _ -> 0.6
  | Afilter.Str_eq (a, _) when String.equal a Schema.object_class -> 0.4
  | Afilter.Str_eq _ -> 0.1
  | Afilter.Substr _ -> 0.2
  | Afilter.Int_cmp (_, Afilter.Eq, _) -> 0.05
  | Afilter.Int_cmp _ -> 0.33
  | Afilter.Dn_eq _ -> 0.01

let pages pager n = Pager.pages_of pager n

let rec estimate_node engine (q : Ast.t) =
  let pager = Engine.pager engine in
  match q with
  | Ast.Atomic a ->
      let scope_size =
        match a.Ast.scope with
        | Ast.Base -> 1
        | Ast.One | Ast.Sub ->
            List.length (Instance.subtree (Engine.instance engine) a.Ast.base)
      in
      let est_rows =
        max 0
          (int_of_float
             (float_of_int scope_size *. filter_selectivity a.Ast.filter))
      in
      {
        label = "atomic";
        detail =
          Printf.sprintf "%s ? %s ? %s"
            (Dn.to_string a.Ast.base)
            (Ast.scope_to_string a.Ast.scope)
            (Afilter.to_string a.Ast.filter);
        est_rows;
        est_io = 1 + pages pager scope_size + pages pager est_rows;
        actual_rows = None;
        actual_io = None;
        actual_ns = None;
        children = [];
      }
  | Ast.And (q1, q2) -> binary engine "&" q1 q2 (fun n1 n2 -> min n1 n2 / 2)
  | Ast.Or (q1, q2) -> binary engine "|" q1 q2 (fun n1 n2 -> n1 + n2)
  | Ast.Diff (q1, q2) -> binary engine "-" q1 q2 (fun n1 _ -> n1 / 2)
  | Ast.Hier (op, q1, q2, agg) ->
      let c1 = estimate_node engine q1 and c2 = estimate_node engine q2 in
      let est_rows = c1.est_rows / 2 in
      {
        label = Qprinter.hier_op_to_string op;
        detail = agg_detail agg;
        est_rows;
        (* merged scan + annotated copy + annotation scans + output *)
        est_io =
          (2 * pages pager c1.est_rows)
          + pages pager c2.est_rows
          + pages pager c1.est_rows + pages pager est_rows;
        actual_rows = None;
        actual_io = None;
        actual_ns = None;
        children = [ c1; c2 ];
      }
  | Ast.Hier3 (op, q1, q2, q3, agg) ->
      let c1 = estimate_node engine q1
      and c2 = estimate_node engine q2
      and c3 = estimate_node engine q3 in
      let est_rows = c1.est_rows / 2 in
      {
        label = Qprinter.hier_op3_to_string op;
        detail = agg_detail agg;
        est_rows;
        est_io =
          (3 * pages pager c1.est_rows)
          + pages pager c2.est_rows + pages pager c3.est_rows
          + pages pager est_rows;
        actual_rows = None;
        actual_io = None;
        actual_ns = None;
        children = [ c1; c2; c3 ];
      }
  | Ast.Gsel (q1, f) ->
      let c1 = estimate_node engine q1 in
      let scans = if Simple_agg.needs_global f then 2 else 1 in
      let est_rows = c1.est_rows / 2 in
      {
        label = "g";
        detail = Qprinter.agg_filter_to_string f;
        est_rows;
        est_io = (scans * pages pager c1.est_rows) + pages pager est_rows;
        actual_rows = None;
        actual_io = None;
        actual_ns = None;
        children = [ c1 ];
      }
  | Ast.Eref (op, q1, q2, attr, agg) ->
      let c1 = estimate_node engine q1 and c2 = estimate_node engine q2 in
      let m = 2 (* assumed mean reference fan-out *) in
      let source = match op with Ast.Vd -> c1.est_rows | Ast.Dv -> c2.est_rows in
      let p = max 1 (pages pager (source * m)) in
      let rec log2 n = if n <= 1 then 1 else 1 + log2 (n / 2) in
      let est_rows = c1.est_rows / 2 in
      {
        label = Qprinter.ref_op_to_string op;
        detail =
          attr ^ (match agg with None -> "" | Some f -> " " ^ Qprinter.agg_filter_to_string f);
        est_rows;
        est_io =
          (2 * p * log2 p)
          + pages pager c1.est_rows + pages pager c2.est_rows
          + pages pager est_rows;
        actual_rows = None;
        actual_io = None;
        actual_ns = None;
        children = [ c1; c2 ];
      }

and binary engine label q1 q2 rows =
  let pager = Engine.pager engine in
  let c1 = estimate_node engine q1 and c2 = estimate_node engine q2 in
  let est_rows = rows c1.est_rows c2.est_rows in
  {
    label;
    detail = "";
    est_rows;
    est_io =
      Pager.pages_of pager c1.est_rows
      + Pager.pages_of pager c2.est_rows
      + Pager.pages_of pager est_rows;
    actual_rows = None;
    actual_io = None;
    actual_ns = None;
    children = [ c1; c2 ];
  }

and agg_detail = function
  | None -> "count($2) > 0"
  | Some f -> Qprinter.agg_filter_to_string f

let estimate engine q = estimate_node engine q

(* --- Profiled execution ---------------------------------------------------- *)

(* Evaluate bottom-up, attributing the I/O and wall-clock time of each
   operator (excluding its children) to its plan node. *)
let profile engine q =
  let stats = Engine.stats engine in
  (* measure [f], annotating [est] with actual rows / io / ns *)
  let measured est children f =
    let before = Io_stats.total_io stats in
    let t0 = Mclock.now_ns () in
    let out = f () in
    let ns = Mclock.now_ns () - t0 in
    ( out,
      {
        est with
        actual_rows = Some (Ext_list.length out);
        actual_io = Some (Io_stats.total_io stats - before);
        actual_ns = Some ns;
        children;
      } )
  in
  let rec go (q : Ast.t) (est : node) =
    match (q, est.children) with
    | Ast.Atomic a, _ ->
        measured est est.children (fun () -> Engine.eval_atomic engine a)
    | Ast.And (q1, q2), [ e1; e2 ] -> binop Bool_ops.and_ q1 q2 e1 e2 est
    | Ast.Or (q1, q2), [ e1; e2 ] -> binop Bool_ops.or_ q1 q2 e1 e2 est
    | Ast.Diff (q1, q2), [ e1; e2 ] -> binop Bool_ops.diff q1 q2 e1 e2 est
    | Ast.Hier (op, q1, q2, agg), [ e1; e2 ] ->
        binop (fun l1 l2 -> Hs_agg.compute_hier ?agg op l1 l2) q1 q2 e1 e2 est
    | Ast.Hier3 (op, q1, q2, q3, agg), [ e1; e2; e3 ] ->
        let l1, n1 = go q1 e1 in
        let l2, n2 = go q2 e2 in
        let l3, n3 = go q3 e3 in
        measured est [ n1; n2; n3 ] (fun () ->
            Hs_agg.compute_hier3 ?agg op l1 l2 l3)
    | Ast.Gsel (q1, f), [ e1 ] ->
        let l1, n1 = go q1 e1 in
        measured est [ n1 ] (fun () -> Simple_agg.compute f l1)
    | Ast.Eref (op, q1, q2, attr, agg), [ e1; e2 ] ->
        binop (fun l1 l2 -> Er.compute ?agg op l1 l2 attr) q1 q2 e1 e2 est
    | _ -> assert false
  and binop f q1 q2 e1 e2 est =
    let l1, n1 = go q1 e1 in
    let l2, n2 = go q2 e2 in
    measured est [ n1; n2 ] (fun () -> f l1 l2)
  in
  let est =
    Trace.with_span ~stats "plan" (fun () -> estimate engine q)
  in
  let result, annotated =
    Trace.with_span ~stats "profile" (fun () -> go q est)
  in
  (result, annotated)

(* --- Rendering --------------------------------------------------------------- *)

let rec pp_node ppf (n : node) =
  let opt = function None -> "-" | Some v -> string_of_int v in
  let time = function None -> "-" | Some ns -> Mclock.ns_to_string ns in
  Fmt.pf ppf "@[<v2>%s%s  [rows est=%d got=%s | io est=%d got=%s | t=%s]%a@]"
    n.label
    (if n.detail = "" then "" else " " ^ n.detail)
    n.est_rows (opt n.actual_rows) n.est_io (opt n.actual_io)
    (time n.actual_ns)
    (fun ppf children ->
      List.iter (fun c -> Fmt.pf ppf "@,%a" pp_node c) children)
    n.children

let pp ppf n = Fmt.pf ppf "%a@." pp_node n

let total_actual_io n =
  let rec sum n =
    Option.value ~default:0 n.actual_io + List.fold_left (fun a c -> a + sum c) 0 n.children
  in
  sum n

let total_actual_ns n =
  let rec sum n =
    Option.value ~default:0 n.actual_ns
    + List.fold_left (fun a c -> a + sum c) 0 n.children
  in
  sum n
