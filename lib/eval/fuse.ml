(* Boolean-subtree fusion: an algebraic rewrite exploiting Theorem 8.1's
   LDAP <-> L0 correspondence.

   A maximal boolean subtree whose atomic sub-queries all share one base
   and scope is exactly an LDAP query (Ldap.of_l0), and an LDAP query
   evaluates in a single scan of the base's scope range with the fused
   filter — instead of one scan per atomic leaf plus a merge per boolean
   operator.  This pass rewrites the query tree bottom-up, replacing
   every such subtree by a fused scan node, and evaluates the rest with
   the ordinary operator algorithms.  Results are identical (the same
   semantics evaluated differently); experiment E19 measures the
   savings. *)

type plan =
  | Scan of Ldap.query  (* a fused single-scan boolean subtree *)
  | Op of op * plan list
  | Leaf of Ast.atomic

and op =
  | P_and
  | P_or
  | P_diff
  | P_hier of Ast.hier_op * Ast.agg_filter option
  | P_hier3 of Ast.hier_op3 * Ast.agg_filter option
  | P_gsel of Ast.agg_filter
  | P_eref of Ast.ref_op * string * Ast.agg_filter option

(* Build the fused plan: try to collapse every subtree first, recurse
   where collapse fails. *)
let rec plan_of (q : Ast.t) : plan =
  match Ldap.of_l0 q with
  | Some lq -> (
      match q with
      | Ast.Atomic a -> Leaf a  (* single leaves gain nothing from fusion *)
      | _ -> Scan lq)
  | None -> (
      match q with
      | Ast.Atomic a -> Leaf a
      | Ast.And (q1, q2) -> Op (P_and, [ plan_of q1; plan_of q2 ])
      | Ast.Or (q1, q2) -> Op (P_or, [ plan_of q1; plan_of q2 ])
      | Ast.Diff (q1, q2) -> Op (P_diff, [ plan_of q1; plan_of q2 ])
      | Ast.Hier (op, q1, q2, agg) ->
          Op (P_hier (op, agg), [ plan_of q1; plan_of q2 ])
      | Ast.Hier3 (op, q1, q2, q3, agg) ->
          Op (P_hier3 (op, agg), [ plan_of q1; plan_of q2; plan_of q3 ])
      | Ast.Gsel (q1, f) -> Op (P_gsel f, [ plan_of q1 ])
      | Ast.Eref (op, q1, q2, attr, agg) ->
          Op (P_eref (op, attr, agg), [ plan_of q1; plan_of q2 ]))

(* Count the scans the plan performs vs. the unfused query would. *)
let rec scan_count = function
  | Scan _ | Leaf _ -> 1
  | Op (_, children) -> List.fold_left (fun n c -> n + scan_count c) 0 children

let rec eval_plan engine = function
  | Leaf a -> Engine.eval_atomic engine a
  | Scan lq -> Ldap.eval_indexed (Engine.dn_index engine) lq
  | Op (op, children) -> (
      let results = List.map (eval_plan engine) children in
      match (op, results) with
      | P_and, [ l1; l2 ] -> Bool_ops.and_ l1 l2
      | P_or, [ l1; l2 ] -> Bool_ops.or_ l1 l2
      | P_diff, [ l1; l2 ] -> Bool_ops.diff l1 l2
      | P_hier (o, agg), [ l1; l2 ] -> Hs_agg.compute_hier ?agg o l1 l2
      | P_hier3 (o, agg), [ l1; l2; l3 ] -> Hs_agg.compute_hier3 ?agg o l1 l2 l3
      | P_gsel f, [ l1 ] -> Simple_agg.compute f l1
      | P_eref (o, attr, agg), [ l1; l2 ] -> Er.compute ?agg o l1 l2 attr
      | _ -> assert false)

let eval engine q = eval_plan engine (plan_of q)
let eval_entries engine q = Ext_list.to_list (eval engine q)

let rec pp_plan ppf = function
  | Leaf a -> Fmt.pf ppf "leaf %s" (Qprinter.atomic_to_string a)
  | Scan lq -> Fmt.pf ppf "fused-scan %s" (Ldap.to_string lq)
  | Op (op, children) ->
      let label =
        match op with
        | P_and -> "&"
        | P_or -> "|"
        | P_diff -> "-"
        | P_hier (o, _) -> Qprinter.hier_op_to_string o
        | P_hier3 (o, _) -> Qprinter.hier_op3_to_string o
        | P_gsel _ -> "g"
        | P_eref (o, _, _) -> Qprinter.ref_op_to_string o
      in
      Fmt.pf ppf "@[<v2>(%s%a)@]" label
        (fun ppf -> List.iter (fun c -> Fmt.pf ppf "@,%a" pp_plan c))
        children
