(** Simple aggregate selection [(g L1 AggSelFilter)] — Section 6.3.

    At most two scans of the input (Theorem 6.1): a first scan computes
    any entry-set aggregates incrementally; the second (or only) scan
    filters and emits. *)

val needs_global : Ast.agg_filter -> bool
(** Does the filter mention entry-set aggregates (forcing the first
    scan)? *)

val compute : Ast.agg_filter -> Entry.t Ext_list.t -> Entry.t Ext_list.t
