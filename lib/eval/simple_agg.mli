(** Simple aggregate selection [(g L1 AggSelFilter)] — Section 6.3.

    At most two scans of the input (Theorem 6.1): a first scan computes
    any entry-set aggregates incrementally; the second (or only) scan
    filters and emits. *)

val needs_global : Ast.agg_filter -> bool
(** Does the filter mention entry-set aggregates (forcing the first
    scan)? *)

val compute : Ast.agg_filter -> Entry.t Ext_list.t -> Entry.t Ext_list.t

val compute_src :
  Pager.t ->
  Ast.agg_filter ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src
(** Streaming variant: a pure one-pass filter on the stream unless the
    filter has entry-set aggregates, in which case the input is forced
    resident (double consumption) and both scans are charged. *)
