(* Boolean operators over sorted entry lists (Section 4.2).

   Straightforward list merging: both inputs are sorted by reverse-dn key,
   the output is produced in the same order with one sequential scan of
   each input — the "elegant table-driven algorithm" of Jacobson et al.
   reduces to the three merge loops below.

   The core works on {!Ext_list.Source} streams: inputs are pulled (a
   list-backed source charges its scan reads, a live one charges
   nothing) and the merged output flows on as a live source, so under
   streaming evaluation a boolean node costs only its input reads.  The
   list-level entry points materialize the output, recovering the
   classic I/O bill: |L1|/B + |L2|/B reads plus the output writes. *)

let merge_src ~keep_left_only ~keep_both ~keep_right_only pager s1 s2 =
  let stats = Pager.stats pager in
  let out = ref [] in
  let emit e = out := e :: !out in
  let rec loop () =
    match (Ext_list.Source.peek s1, Ext_list.Source.peek s2) with
    | None, None -> ()
    | Some e1, None ->
        Ext_list.Source.advance s1;
        if keep_left_only then emit e1;
        loop ()
    | None, Some e2 ->
        Ext_list.Source.advance s2;
        if keep_right_only then emit e2;
        loop ()
    | Some e1, Some e2 ->
        Io_stats.compare_key stats;
        let c = Entry.compare_rev e1 e2 in
        if c = 0 then begin
          Ext_list.Source.advance s1;
          Ext_list.Source.advance s2;
          if keep_both then emit e1
        end
        else if c < 0 then begin
          Ext_list.Source.advance s1;
          if keep_left_only then emit e1
        end
        else begin
          Ext_list.Source.advance s2;
          if keep_right_only then emit e2
        end;
        loop ()
  in
  loop ();
  Ext_list.Source.of_array (Array.of_list (List.rev !out))

let and_src pager s1 s2 =
  merge_src ~keep_left_only:false ~keep_both:true ~keep_right_only:false pager
    s1 s2

let or_src pager s1 s2 =
  merge_src ~keep_left_only:true ~keep_both:true ~keep_right_only:true pager s1
    s2

let diff_src pager s1 s2 =
  merge_src ~keep_left_only:true ~keep_both:false ~keep_right_only:false pager
    s1 s2

let merge ~keep_left_only ~keep_both ~keep_right_only l1 l2 =
  let pager = Ext_list.pager l1 in
  Ext_list.Source.materialize pager
    (merge_src ~keep_left_only ~keep_both ~keep_right_only pager
       (Ext_list.Source.of_list l1) (Ext_list.Source.of_list l2))

let and_ l1 l2 =
  merge ~keep_left_only:false ~keep_both:true ~keep_right_only:false l1 l2

let or_ l1 l2 =
  merge ~keep_left_only:true ~keep_both:true ~keep_right_only:true l1 l2

let diff l1 l2 =
  merge ~keep_left_only:true ~keep_both:false ~keep_right_only:false l1 l2
