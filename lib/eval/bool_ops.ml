(* Boolean operators over sorted entry lists (Section 4.2).

   Straightforward list merging: both inputs are sorted by reverse-dn key,
   the output is produced in the same order with one sequential scan of
   each input — the "elegant table-driven algorithm" of Jacobson et al.
   reduces to the three merge loops below.  I/O: |L1|/B + |L2|/B reads
   plus the output writes. *)

let merge ~keep_left_only ~keep_both ~keep_right_only l1 l2 =
  let pager = Ext_list.pager l1 in
  let c1 = Ext_list.Cursor.make l1 and c2 = Ext_list.Cursor.make l2 in
  let w = Ext_list.Writer.make pager in
  let stats = Pager.stats pager in
  let rec loop () =
    match (Ext_list.Cursor.peek c1, Ext_list.Cursor.peek c2) with
    | None, None -> ()
    | Some e1, None ->
        Ext_list.Cursor.advance c1;
        if keep_left_only then Ext_list.Writer.push w e1;
        loop ()
    | None, Some e2 ->
        Ext_list.Cursor.advance c2;
        if keep_right_only then Ext_list.Writer.push w e2;
        loop ()
    | Some e1, Some e2 ->
        Io_stats.compare_key stats;
        let c = Entry.compare_rev e1 e2 in
        if c = 0 then begin
          Ext_list.Cursor.advance c1;
          Ext_list.Cursor.advance c2;
          if keep_both then Ext_list.Writer.push w e1
        end
        else if c < 0 then begin
          Ext_list.Cursor.advance c1;
          if keep_left_only then Ext_list.Writer.push w e1
        end
        else begin
          Ext_list.Cursor.advance c2;
          if keep_right_only then Ext_list.Writer.push w e2
        end;
        loop ()
  in
  loop ();
  Ext_list.Writer.close w

let and_ l1 l2 =
  merge ~keep_left_only:false ~keep_both:true ~keep_right_only:false l1 l2

let or_ l1 l2 =
  merge ~keep_left_only:true ~keep_both:true ~keep_right_only:true l1 l2

let diff l1 l2 =
  merge ~keep_left_only:true ~keep_both:false ~keep_right_only:false l1 l2
