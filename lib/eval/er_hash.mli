(** Grace-hash evaluation of the embedded-reference operators — the
    classical alternative to the paper's sort-merge choice (Section 7.2).

    Produces exactly the results of {!Er} (differentially tested), but
    hash partitioning destroys the canonical order, so an extra sort by
    candidate position is needed before the output can be emitted sorted
    — the cost that justifies the paper's preference, measured by
    experiment E22. *)

val compute_dv :
  ?agg:Ast.agg_filter ->
  ?partitions:int ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  string ->
  Entry.t Ext_list.t

val compute_vd :
  ?agg:Ast.agg_filter ->
  ?partitions:int ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  string ->
  Entry.t Ext_list.t

val compute :
  ?agg:Ast.agg_filter ->
  ?partitions:int ->
  Ast.ref_op ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  string ->
  Entry.t Ext_list.t

val compute_dv_src :
  ?agg:Ast.agg_filter ->
  ?partitions:int ->
  Pager.t ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  string ->
  Entry.t Ext_list.Source.src

val compute_vd_src :
  ?agg:Ast.agg_filter ->
  ?partitions:int ->
  Pager.t ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  string ->
  Entry.t Ext_list.Source.src
(** Streaming variants: the hash partitions and the re-order sort stay
    materialized (repartitioning boundaries), and [vd] forces a live L1
    resident (consumed twice); only the filter output pipelines. *)

val compute_src :
  ?agg:Ast.agg_filter ->
  ?partitions:int ->
  Pager.t ->
  Ast.ref_op ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  string ->
  Entry.t Ext_list.Source.src
