(** ComputeERAggVD / ComputeERAggDV — the embedded-reference operators
    valueDN and DNvalue with optional aggregate selection (Section 7.2,
    Fig 3).

    Sort-merge join/semijoin over the exploded (referenced-dn, entry)
    pair list; I/O [O(|L1|/B + (|L2| m / B) log (|L2| m / B))]
    (Theorem 7.1), where m bounds the values per reference attribute. *)

val compute_dv :
  ?agg:Ast.agg_filter ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  string ->
  Entry.t Ext_list.t
(** [(dv L1 L2 a [agg])]: L1 entries whose dn is a value of attribute
    [a] in some L2 entry; witnesses are the referencing entries. *)

val compute_vd :
  ?agg:Ast.agg_filter ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  string ->
  Entry.t Ext_list.t
(** [(vd L1 L2 a [agg])]: L1 entries one of whose [a]-values is the dn
    of some L2 entry; witnesses are the referenced entries. *)

val compute :
  ?agg:Ast.agg_filter ->
  Ast.ref_op ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  string ->
  Entry.t Ext_list.t

val compute_dv_src :
  ?agg:Ast.agg_filter ->
  Pager.t ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  string ->
  Entry.t Ext_list.Source.src

val compute_vd_src :
  ?agg:Ast.agg_filter ->
  Pager.t ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  string ->
  Entry.t Ext_list.Source.src
(** Streaming variants: the exploded pair lists and their sorts stay
    materialized (sort boundaries), and [vd] forces a live L1 resident
    because it is consumed twice; everything else pipelines. *)

val compute_src :
  ?agg:Ast.agg_filter ->
  Pager.t ->
  Ast.ref_op ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  string ->
  Entry.t Ext_list.Source.src
