(** Boolean operators over sorted entry lists (Section 4.2).

    One sequential merge of the two inputs per operator; output produced
    in the same canonical order.  The [_src] variants consume and
    produce {!Ext_list.Source} streams, charging only the input pulls
    (the merged output flows on live); the list variants materialize
    the output, costing [|L1|/B + |L2|/B] reads plus the output
    writes. *)

val and_ : Entry.t Ext_list.t -> Entry.t Ext_list.t -> Entry.t Ext_list.t
val or_ : Entry.t Ext_list.t -> Entry.t Ext_list.t -> Entry.t Ext_list.t
val diff : Entry.t Ext_list.t -> Entry.t Ext_list.t -> Entry.t Ext_list.t

val and_src :
  Pager.t ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src

val or_src :
  Pager.t ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src

val diff_src :
  Pager.t ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src
