(** Boolean operators over sorted entry lists (Section 4.2).

    One sequential merge of the two inputs per operator; output produced
    in the same canonical order.  I/O: [|L1|/B + |L2|/B] reads plus the
    output writes. *)

val and_ : Entry.t Ext_list.t -> Entry.t Ext_list.t -> Entry.t Ext_list.t
val or_ : Entry.t Ext_list.t -> Entry.t Ext_list.t -> Entry.t Ext_list.t
val diff : Entry.t Ext_list.t -> Entry.t Ext_list.t -> Entry.t Ext_list.t
