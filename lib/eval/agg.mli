(** Aggregate values and distributive partial states (Section 6).

    Aggregation results are exact rationals (an [average] of ints need
    not be an int); partial states are distributive/algebraic in the
    paper's Section 6.4 sense — states over disjoint multisets combine
    into the state of the union — which is what lets the stack
    algorithms maintain them incrementally. *)

(** {1 Exact rationals} *)

type num = private { nu : int; de : int }
(** Invariant: [de > 0], [gcd (abs nu) de = 1]. *)

val make_num : int -> int -> num
(** Normalized [nu / de].  @raise Invalid_argument on zero denominator. *)

val num_of_int : int -> num
val num_add : num -> num -> num
val compare_num : num -> num -> int
val num_to_string : num -> string
val pp_num : Format.formatter -> num -> unit

(** {1 Partial states} *)

type state =
  | S_min of num option
  | S_max of num option
  | S_sum of num
  | S_count of int
  | S_avg of num * int  (** running sum and count *)

val init : Ast.agg_fun -> state
(** The state of the empty multiset. *)

val add : state -> num -> state
(** Absorb one value ([Count] counts occurrences regardless of value). *)

val add_int : state -> int -> state

val combine : state -> state -> state
(** State of the multiset union.
    @raise Invalid_argument on mismatched aggregate kinds. *)

val result : state -> num option
(** The aggregate's value; empty min/max/average are undefined
    ([None]), empty sum/count are 0. *)

val cmp_holds : Ast.cmp -> num -> num -> bool

val cmp_holds_opt : Ast.cmp -> num option -> num option -> bool
(** Comparisons involving an undefined aggregate are false. *)

(** {1 Direct evaluation over explicit witness lists (oracle path)} *)

val attr_nums : Entry.t -> string -> num list
(** The integer values of an attribute, as rationals. *)

val eval_entry_agg_over :
  self:Entry.t -> witnesses:Entry.t list -> Ast.entry_agg -> num option
(** ea[r] / ea[r, Rs] of Definitions 6.1-6.2. *)

val eval_entry_set_agg_over :
  candidates:(Entry.t * Entry.t list) list -> Ast.entry_set_agg -> num option
(** esa over all candidates, each with its witness list. *)

val filter_predicate :
  candidates:(Entry.t * Entry.t list) list ->
  Ast.agg_filter ->
  Entry.t * Entry.t list ->
  bool
(** The selection predicate of an aggregate filter over a fixed
    candidate universe. *)
