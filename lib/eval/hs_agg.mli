(** ComputeHSAgg — hierarchical selection with aggregate selection
    filters (Section 6.4, Fig 6), subsuming the plain L1 operators as
    count($2) > 0.

    Phase 2 over {!Hs_stack.sweep}'s annotations: an optional pass
    computing entry-set aggregates (Fig 6's maxabove/maxbelow), then a
    filter-and-emit pass.  Total I/O stays linear (Theorem 6.2). *)

type direction = Witness_above | Witness_below

val direction_of_hier : Ast.hier_op -> direction
val direction_of_hier3 : Ast.hier_op3 -> direction
val mode_of_hier : Ast.hier_op -> Hs_stack.mode

val finish :
  Ast.entry_agg array ->
  direction ->
  Ast.agg_filter option ->
  Hs_stack.annot array ->
  Pager.t ->
  Entry.t Ext_list.t
(** The shared phase 2 (also used by the embedded-reference
    algorithms). *)

val compute_hier :
  ?window:int ->
  ?agg:Ast.agg_filter ->
  Ast.hier_op ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t
(** [(op L1 L2 [agg])] for op in [{p, c, a, d}]; default filter
    count($2) > 0. *)

val compute_hier3 :
  ?window:int ->
  ?agg:Ast.agg_filter ->
  Ast.hier_op3 ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t
(** [(op L1 L2 L3 [agg])] for op in [{ac, dc}]. *)

val has_entry_set_aggs : Ast.agg_filter -> bool
(** Does the filter mention entry-set aggregates (forcing the annotated
    list to be materialized and scanned twice, even under streaming)? *)

val finish_src :
  Ast.entry_agg array ->
  direction ->
  Ast.agg_filter option ->
  Hs_stack.annot array ->
  Pager.t ->
  Entry.t Ext_list.Source.src
(** Streaming phase 2: without entry-set aggregates the annotations
    pipeline straight into the filter (no annotated copy written or
    re-read); with them the copy is materialized and both passes are
    charged, like the materialized operator. *)

val compute_hier_src :
  ?window:int ->
  ?agg:Ast.agg_filter ->
  Pager.t ->
  Ast.hier_op ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src

val compute_hier3_src :
  ?window:int ->
  ?agg:Ast.agg_filter ->
  Pager.t ->
  Ast.hier_op3 ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src
