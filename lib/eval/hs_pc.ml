(* Algorithm ComputeHSPC (Fig 2): parents and children by a single
   stack sweep of the merged sorted inputs.  Thin wrapper over the
   generic machinery with the implicit filter count($2) > 0. *)

let parents ?window l1 l2 = Hs_agg.compute_hier ?window Ast.P l1 l2
let children ?window l1 l2 = Hs_agg.compute_hier ?window Ast.C l1 l2

let compute ?window op l1 l2 =
  match op with
  | `P -> parents ?window l1 l2
  | `C -> children ?window l1 l2

let parents_src ?window pager s1 s2 =
  Hs_agg.compute_hier_src ?window pager Ast.P s1 s2

let children_src ?window pager s1 s2 =
  Hs_agg.compute_hier_src ?window pager Ast.C s1 s2

let compute_src ?window pager op s1 s2 =
  match op with
  | `P -> parents_src ?window pager s1 s2
  | `C -> children_src ?window pager s1 s2
