(* The query evaluation engine (Section 8.2).

   Bottom-up evaluation of the query tree: atomic queries are answered
   from the clustering dn-index (optionally assisted by per-attribute
   B-tree / trie indexes), producing lists sorted in the canonical
   reverse-dn order; every operator consumes and produces sorted lists,
   so no intermediate re-sorting ever happens — the invariant Theorem 8.3
   rests on, checked by experiment E15.

   The engine also exposes a naive mode that swaps every operator for its
   quadratic nested-loop baseline (same results, different cost), used by
   the crossover experiment E9. *)

type algorithms = Stack_based | Naive_nested_loop

(* How operator boundaries are handled (Theorem 8.3): [Materialized]
   writes every intermediate result to disk and re-reads it; [Streaming]
   fuses the whole tree into one pipeline, materializing only the root
   result, sort boundaries and double-consumed operands. *)
type mode = Materialized | Streaming

(* How atomic access paths are decided.  [Auto] is the cost-based
   planner: price index probe vs subtree scan vs cache hit per atomic
   (calibrated when a Planstats store is attached) and reorder boolean
   merges by estimated cardinality.  The forced modes pin every atomic
   to one path and skip reordering — the clean always-index /
   always-scan baselines the planner is benchmarked against.  [Off] is
   the legacy behavior: unconditional index use when an index exists,
   no reordering, selectivity-only estimates. *)
type planner = Auto | Force_index | Force_scan | Off

type t = {
  mutable instance : Instance.t;
  pager : Pager.t;
  mutable dn_index : Dn_index.t;
  mutable attr_index : Attr_index.t option;
  with_attr_index : bool;
  pool : Buffer_pool.t option;  (* page cache behind the dn-index *)
  window : int;  (* in-memory pages for each operator's stack *)
  algorithms : algorithms;
  result_cache : Cache.t option;  (* semantic query-result cache *)
  mutable mode : mode;  (* default operator-boundary handling *)
  mutable planner : planner;
  mutable calib : Planstats.t option;  (* estimate corrections, if any *)
  mutable directory : Directory.t option;  (* watched for staleness *)
  mutable dirty : bool;  (* directory changed since the indexes were built *)
  (* access paths taken by sub-scope atomics, for :planner / :top *)
  mutable n_path_index : int;
  mutable n_path_scan : int;
  mutable n_path_cache : int;
}

let m_path p =
  Metrics.counter ~help:"atomic access paths taken, by path"
    ~labels:[ ("path", p) ]
    "engine_atomic_path_total"

let m_path_index = m_path "index"
let m_path_scan = m_path "scan"
let m_path_cache = m_path "cache"

let m_refreshes =
  Metrics.counter ~help:"index rebuilds after watched-directory updates"
    "engine_index_refreshes_total"

let watch t dir =
  t.directory <- Some dir;
  Directory.on_update dir (fun _ -> t.dirty <- true)

let create ?(block = 64) ?(window = 2) ?(with_attr_index = true)
    ?(algorithms = Stack_based) ?(cache_pages = 0) ?result_cache ?stats
    ?(mode = Streaming) ?(planner = Auto) ?directory instance =
  let stats = match stats with Some s -> s | None -> Io_stats.create () in
  let pager = Pager.create ~block stats in
  let pool =
    if cache_pages > 0 then Some (Buffer_pool.create ~capacity:cache_pages pager)
    else None
  in
  let dn_index = Dn_index.build ?pool pager instance in
  let attr_index =
    if with_attr_index then Some (Attr_index.build pager instance) else None
  in
  (* Index construction is setup cost, not query cost. *)
  Io_stats.reset stats;
  let t =
    { instance; pager; dn_index; attr_index; with_attr_index; pool; window;
      algorithms; result_cache; mode; planner; calib = None; directory = None;
      dirty = false; n_path_index = 0; n_path_scan = 0; n_path_cache = 0 }
  in
  Option.iter (watch t) directory;
  t

let stats t = Pager.stats t.pager
let pager t = t.pager
let instance t = t.instance
let dn_index t = t.dn_index
let attr_index t = t.attr_index
let cache t = t.pool
let result_cache t = t.result_cache
let reset_stats t = Io_stats.reset (stats t)
let mode t = t.mode
let set_mode t mode = t.mode <- mode
let planner t = t.planner
let set_planner t p = t.planner <- p
let calibration t = t.calib
let set_calibration t c = t.calib <- c
let path_counts t = (t.n_path_index, t.n_path_scan, t.n_path_cache)

(* A watched directory swaps in a whole new instance on every mutation
   (its generation bumps and hooks fire), so a dirty engine re-fetches
   the instance and rebuilds both indexes before the next evaluation —
   a post-update query through the index path must see the new values.
   Rebuild I/O is maintenance, not query cost, so like [create] it is
   not left on the query counters. *)
let refresh_if_dirty t =
  if t.dirty then begin
    t.dirty <- false;
    match t.directory with
    | None -> ()
    | Some dir ->
        let s = stats t in
        let r0 = s.Io_stats.page_reads and w0 = s.Io_stats.page_writes in
        t.instance <- Directory.instance dir;
        t.dn_index <- Dn_index.build ?pool:t.pool t.pager t.instance;
        if t.with_attr_index then
          t.attr_index <- Some (Attr_index.build t.pager t.instance);
        s.Io_stats.page_reads <- r0;
        s.Io_stats.page_writes <- w0;
        Metrics.incr m_refreshes
  end

(* --- Atomic queries ----------------------------------------------------- *)

(* Candidate entries from a secondary index, or None when the filter has
   no indexable access path and the subtree must be scanned.  The probe
   plumbing ([int_bounds], longest-component selection for substring
   patterns) is shared with [Plan], so what the planner prices is what
   execution does. *)
let index_candidates t (f : Afilter.t) =
  match t.attr_index with
  | None -> None
  | Some idx -> (
      match f with
      | Afilter.Present _ -> None
      | Afilter.Int_cmp (a, op, k) ->
          let lo, hi = Plan.int_bounds op k in
          Attr_index.lookup_int_range idx a ~lo ~hi
      | Afilter.Str_eq (a, s) -> Attr_index.lookup_str_eq idx a s
      | Afilter.Dn_eq (a, d) -> Attr_index.lookup_dn_eq idx a d
      | Afilter.Substr (a, pat) -> (
          (* Probe with the longest available component — the most
             selective — then post-filter with the full pattern. *)
          match Plan.substr_probe pat with
          | Some (comp, true) -> Attr_index.lookup_str_prefix idx a comp
          | Some (comp, false) -> Attr_index.lookup_substring idx a comp
          | None -> None))

(* One access-path decision for a sub-scope atomic, via the planner's
   shared cost model.  Forced modes pin the path; [Off] never gets here
   (the legacy branch below keeps its unconditional index use). *)
let planner_force t =
  match t.planner with
  | Force_index -> Some Plan.Index
  | Force_scan -> Some Plan.Scan
  | Auto | Off -> None

let choose_atomic ~streaming t (a : Ast.atomic) =
  Plan.choose_path ~pager:t.pager ~instance:t.instance
    ?attr_index:t.attr_index ?cache:t.result_cache ?calib:t.calib ~streaming
    ?force:(planner_force t) a

(* The index path shared by both boundary modes: probe, refine to the
   scope and the full filter, sort.  Charges reading the postings; the
   caller decides how the sorted hits leave. *)
let index_hits t (a : Ast.atomic) candidates =
  let prefix = Dn.rev_key a.Ast.base in
  let hits =
    List.filter
      (fun e ->
        Entry.key_is_prefix ~prefix (Entry.key e)
        && Afilter.matches a.Ast.filter e)
      candidates
    |> List.sort_uniq Entry.compare_rev
  in
  Pager.charge_scan_read t.pager (List.length candidates);
  hits

(* Serve a sub-scope atomic's cache hit, if one is (still) fresh: the
   mutating [find] does the LRU bump and hit accounting the planner's
   read-only peek deliberately skipped. *)
let atomic_cache_hit t (a : Ast.atomic) =
  match t.result_cache with
  | None -> None
  | Some c -> (
      let q = Ast.Atomic a in
      match
        Cache.find c ~fingerprint:(Plan.fingerprint q)
          ~query:(Qprinter.to_string q)
      with
      | Cache.Hit arr -> Some arr
      | Cache.Miss | Cache.Stale -> None)

(* Of a choice's paths, the best one that is not the cache — the
   fallback when a peeked entry vanished by execution time. *)
let best_uncached (choice : Plan.choice) =
  let alts = choice.Plan.chosen :: choice.Plan.rejected in
  match
    List.filter (fun (alt : Plan.alt) -> alt.Plan.alt_path <> Plan.Cached) alts
  with
  | [] -> Plan.Scan
  | best :: rest ->
      (List.fold_left
         (fun (b : Plan.alt) (alt : Plan.alt) ->
           if alt.Plan.alt_reads + alt.Plan.alt_writes
              < b.Plan.alt_reads + b.Plan.alt_writes
           then alt
           else b)
         best rest)
        .Plan.alt_path

let count_path t = function
  | Plan.Index ->
      t.n_path_index <- t.n_path_index + 1;
      Metrics.incr m_path_index
  | Plan.Scan ->
      t.n_path_scan <- t.n_path_scan + 1;
      Metrics.incr m_path_scan
  | Plan.Cached ->
      t.n_path_cache <- t.n_path_cache + 1;
      Metrics.incr m_path_cache

let eval_atomic t (a : Ast.atomic) =
  refresh_if_dirty t;
  let keep e = Afilter.matches a.filter e in
  let scan () = Dn_index.scan_subtree t.dn_index a.base ~keep in
  let indexed candidates =
    let w = Ext_list.Writer.make t.pager in
    List.iter (Ext_list.Writer.push w) (index_hits t a candidates);
    Ext_list.Writer.close w
  in
  match a.scope with
  | Ast.Base -> Dn_index.scan_base t.dn_index a.base ~keep
  | Ast.One -> Dn_index.scan_children t.dn_index a.base ~keep
  | Ast.Sub when t.planner = Off -> (
      (* legacy: the index whenever one applies *)
      match index_candidates t a.filter with
      | None -> scan ()
      | Some candidates -> indexed candidates)
  | Ast.Sub -> (
      let choice = choose_atomic ~streaming:false t a in
      let run = function
        | Plan.Scan ->
            count_path t Plan.Scan;
            scan ()
        | Plan.Index | Plan.Cached -> (
            match index_candidates t a.filter with
            | Some candidates ->
                count_path t Plan.Index;
                indexed candidates
            | None ->
                count_path t Plan.Scan;
                scan ())
      in
      match choice.Plan.chosen.Plan.alt_path with
      | Plan.Cached -> (
          match atomic_cache_hit t a with
          | Some arr ->
              count_path t Plan.Cached;
              Ext_list.of_array_resident t.pager arr
          | None -> run (best_uncached choice))
      | (Plan.Index | Plan.Scan) as p -> run p)

(* Streaming atomic evaluation: same path selection and index charges,
   but the hits flow out as a live source instead of being written. *)
let eval_atomic_src t (a : Ast.atomic) =
  refresh_if_dirty t;
  let keep e = Afilter.matches a.filter e in
  let scan () = Dn_index.scan_subtree_src t.dn_index a.base ~keep in
  let indexed candidates =
    Ext_list.Source.of_array (Array.of_list (index_hits t a candidates))
  in
  match a.scope with
  | Ast.Base -> Dn_index.scan_base_src t.dn_index a.base ~keep
  | Ast.One -> Dn_index.scan_children_src t.dn_index a.base ~keep
  | Ast.Sub when t.planner = Off -> (
      match index_candidates t a.filter with
      | None -> scan ()
      | Some candidates -> indexed candidates)
  | Ast.Sub -> (
      let choice = choose_atomic ~streaming:true t a in
      let run = function
        | Plan.Scan ->
            count_path t Plan.Scan;
            scan ()
        | Plan.Index | Plan.Cached -> (
            match index_candidates t a.filter with
            | Some candidates ->
                count_path t Plan.Index;
                indexed candidates
            | None ->
                count_path t Plan.Scan;
                scan ())
      in
      match choice.Plan.chosen.Plan.alt_path with
      | Plan.Cached -> (
          match atomic_cache_hit t a with
          | Some arr ->
              count_path t Plan.Cached;
              Ext_list.Source.of_array arr
          | None -> run (best_uncached choice))
      | (Plan.Index | Plan.Scan) as p -> run p)

(* --- Query trees --------------------------------------------------------- *)

(* Span labels for the tracer: one span per operator in the query tree. *)
let span_label : Ast.t -> string = function
  | Ast.Atomic _ -> "atomic"
  | Ast.And _ -> "&"
  | Ast.Or _ -> "|"
  | Ast.Diff _ -> "-"
  | Ast.Hier (op, _, _, _) -> Qprinter.hier_op_to_string op
  | Ast.Hier3 (op, _, _, _, _) -> Qprinter.hier_op3_to_string op
  | Ast.Gsel _ -> "g"
  | Ast.Eref (op, _, _, _, _) -> Qprinter.ref_op_to_string op

let span_detail : Ast.t -> string = function
  | Ast.Atomic a -> Afilter.to_string a.Ast.filter
  | _ -> ""

let rec eval_node t (q : Ast.t) =
  Trace.with_span
    ~detail:(span_detail q)
    ~stats:(stats t) (span_label q)
    (fun () ->
      let out = eval_op t q in
      (* rows per operator, for :trace and the journal's op rows *)
      Trace.set_rows (Ext_list.length out);
      out)

and eval_op t (q : Ast.t) =
  match q with
  | Ast.Atomic a -> eval_atomic t a
  | Ast.And (q1, q2) ->
      apply_bool t `And (eval_node t q1) (eval_node t q2)
  | Ast.Or (q1, q2) -> apply_bool t `Or (eval_node t q1) (eval_node t q2)
  | Ast.Diff (q1, q2) -> apply_bool t `Diff (eval_node t q1) (eval_node t q2)
  | Ast.Hier (op, q1, q2, agg) -> (
      let l1 = eval_node t q1 and l2 = eval_node t q2 in
      match t.algorithms with
      | Stack_based -> Hs_agg.compute_hier ~window:t.window ?agg op l1 l2
      | Naive_nested_loop -> naive_hier op agg l1 l2)
  | Ast.Hier3 (op, q1, q2, q3, agg) -> (
      let l1 = eval_node t q1
      and l2 = eval_node t q2
      and l3 = eval_node t q3 in
      match t.algorithms with
      | Stack_based -> Hs_agg.compute_hier3 ~window:t.window ?agg op l1 l2 l3
      | Naive_nested_loop -> naive_hier3 op agg l1 l2 l3)
  | Ast.Gsel (q1, f) -> Simple_agg.compute f (eval_node t q1)
  | Ast.Eref (op, q1, q2, attr, agg) -> (
      let l1 = eval_node t q1 and l2 = eval_node t q2 in
      match t.algorithms with
      | Stack_based -> Er.compute ?agg op l1 l2 attr
      | Naive_nested_loop -> naive_eref op agg l1 l2 attr)

and apply_bool t op l1 l2 =
  match (t.algorithms, op) with
  | Stack_based, `And -> Bool_ops.and_ l1 l2
  | Stack_based, `Or -> Bool_ops.or_ l1 l2
  | Stack_based, `Diff -> Bool_ops.diff l1 l2
  | Naive_nested_loop, op -> Naive.compute_bool op l1 l2

(* The naive baselines only implement the count($2) > 0 selection; an
   aggregate filter falls back to the stack algorithm so naive mode still
   evaluates every query correctly. *)
and naive_hier op agg l1 l2 =
  match agg with
  | None -> Naive.compute_hier op l1 l2
  | Some _ -> Hs_agg.compute_hier ?agg op l1 l2

and naive_hier3 op agg l1 l2 l3 =
  match agg with
  | None -> Naive.compute_hier3 op l1 l2 l3
  | Some _ -> Hs_agg.compute_hier3 ?agg op l1 l2 l3

and naive_eref op agg l1 l2 attr =
  match agg with
  | None -> Naive.compute_eref op l1 l2 attr
  | Some _ -> Er.compute ?agg op l1 l2 attr

(* The fused pipeline (Theorem 8.3): each operator consumes its
   children's sources and produces one, so no operator-boundary write or
   re-read is ever charged.  Children are evaluated left to right so
   span order matches the materialized evaluator's. *)
let rec eval_node_src t (q : Ast.t) =
  Trace.with_span
    ~detail:(span_detail q)
    ~stats:(stats t) (span_label q)
    (fun () ->
      let out = eval_op_src t q in
      Trace.set_rows (Ext_list.Source.length out);
      out)

and eval_op_src t (q : Ast.t) =
  match q with
  | Ast.Atomic a -> eval_atomic_src t a
  | Ast.And (q1, q2) ->
      let s1 = eval_node_src t q1 in
      let s2 = eval_node_src t q2 in
      Bool_ops.and_src t.pager s1 s2
  | Ast.Or (q1, q2) ->
      let s1 = eval_node_src t q1 in
      let s2 = eval_node_src t q2 in
      Bool_ops.or_src t.pager s1 s2
  | Ast.Diff (q1, q2) ->
      let s1 = eval_node_src t q1 in
      let s2 = eval_node_src t q2 in
      Bool_ops.diff_src t.pager s1 s2
  | Ast.Hier (op, q1, q2, agg) ->
      let s1 = eval_node_src t q1 in
      let s2 = eval_node_src t q2 in
      Hs_agg.compute_hier_src ~window:t.window ?agg t.pager op s1 s2
  | Ast.Hier3 (op, q1, q2, q3, agg) ->
      let s1 = eval_node_src t q1 in
      let s2 = eval_node_src t q2 in
      let s3 = eval_node_src t q3 in
      Hs_agg.compute_hier3_src ~window:t.window ?agg t.pager op s1 s2 s3
  | Ast.Gsel (q1, f) -> Simple_agg.compute_src t.pager f (eval_node_src t q1)
  | Ast.Eref (op, q1, q2, attr, agg) ->
      let s1 = eval_node_src t q1 in
      let s2 = eval_node_src t q2 in
      Er.compute_src ?agg t.pager op s1 s2 attr

(* Run a whole tree under the given boundary mode.  The root result is
   always materialized (exception (a) of Thm 8.3): it is what the caller
   scans, pages through, or offers to the result cache.  The naive
   algorithms have no streaming form — E9's crossover baseline keeps its
   classic bill. *)
let run_root t ~mode q =
  match (mode, t.algorithms) with
  | Streaming, Stack_based ->
      Ext_list.Source.materialize t.pager (eval_node_src t q)
  | (Materialized | Streaming), _ -> eval_node t q

(* Top-level entry point: one "execute" span per query tree (with one
   child span per operator, when tracing is on) plus process-wide
   metrics, so cross-query aggregates survive after individual traces
   are evicted. *)

let m_queries =
  Metrics.counter ~help:"query trees evaluated" "engine_queries_total"

let m_latency =
  Metrics.histogram ~help:"wall-clock nanoseconds per query tree"
    "engine_query_ns"

let m_reads =
  Metrics.counter ~help:"pages read while evaluating queries"
    "engine_page_reads_total"

let m_writes =
  Metrics.counter ~help:"pages written while evaluating queries"
    "engine_page_writes_total"

let m_alloc =
  Metrics.counter ~help:"bytes allocated while evaluating queries"
    "engine_alloc_bytes_total"

let query_detail q =
  let s = Qprinter.to_string q in
  if String.length s > 60 then String.sub s 0 59 ^ "…" else s

(* A journaled query needs the span tree for per-operator attribution,
   so the journal forces tracing for the query's extent even when
   :trace is off.  The force is counted: with concurrent workers each
   journaling, tracing stays on until the last forcing query finishes
   rather than being switched off under a still-running neighbour. *)
let force_mu = Mutex.create ()
let force_count = ref 0
let force_owner = ref false  (* the force flipped the flag on, so it flips it off *)

let with_forced_tracing journal f =
  if not journal then f ()
  else begin
    Mutex.lock force_mu;
    if !force_count = 0 then force_owner := not (Trace.enabled ());
    if !force_owner then Trace.set_enabled true;
    incr force_count;
    Mutex.unlock force_mu;
    let release () =
      Mutex.lock force_mu;
      decr force_count;
      if !force_count = 0 && !force_owner then begin
        Trace.set_enabled false;
        force_owner := false
      end;
      Mutex.unlock force_mu
    in
    Fun.protect ~finally:release f
  end

(* Hit-vs-miss latency: the histograms behind the "is the cache worth
   it" question. *)
let m_hit_ns =
  Metrics.histogram ~help:"wall ns per query by result-cache outcome"
    ~labels:[ ("cache", "hit") ]
    "engine_cache_query_ns"

let m_miss_ns =
  Metrics.histogram ~help:"wall ns per query by result-cache outcome"
    ~labels:[ ("cache", "miss") ]
    "engine_cache_query_ns"

(* Join the estimated plan onto the span tree's per-operator rows.  The
   engine opens one span per operator, children left to right, so the
   span tree under "execute" mirrors the AST and the two preorder
   flattenings pair positionally — the label check guards the join
   against any shape mismatch (then the rows simply stay unannotated).
   In streaming mode the per-node write estimate is the materialized
   one minus the writes the pipeline saves at that node (Thm 8.3). *)
let est_writes_for ~mode (n : Plan.node) =
  match mode with
  | Streaming -> max 0 (n.Plan.est_writes - n.Plan.est_writes_saved)
  | Materialized -> n.Plan.est_writes

let node_path (n : Plan.node) =
  Option.map
    (fun (c : Plan.choice) -> Plan.path_name c.Plan.chosen.Plan.alt_path)
    n.Plan.access

let annotate_ops ~mode ~with_paths plan (ops : Qlog.op list) =
  match ops with
  | root :: rest ->
      let flat = Plan.flatten plan in
      if
        List.compare_lengths rest flat = 0
        && List.for_all2
             (fun (o : Qlog.op) ((n : Plan.node), _) ->
               String.equal o.Qlog.op_name n.Plan.label)
             rest flat
      then
        root
        :: List.map2
             (fun (o : Qlog.op) ((n : Plan.node), _) ->
               {
                 o with
                 Qlog.op_est_rows = Some n.Plan.est_rows;
                 op_est_reads = Some n.Plan.est_reads;
                 op_est_writes = Some (est_writes_for ~mode n);
                 op_path = (if with_paths then node_path n else None);
               })
             rest flat
      else ops
  | [] -> []

(* The comma-joined distinct access paths a plan chose, sorted — the
   event-level "path=" summary (["index"], ["index,scan"], ...). *)
let plan_paths plan =
  Plan.flatten plan
  |> List.filter_map (fun (n, _) -> node_path n)
  |> List.sort_uniq String.compare
  |> function [] -> None | ps -> Some (String.concat "," ps)

let journal_event t q ~mode ~cache ~result_count ~reads ~writes ~wall_ns
    ~alloc_bytes ~outcome span =
  (* naive algorithms have no streaming form (run_root falls back), so
     the write estimates must bill the materialized pipeline too *)
  let mode =
    match t.algorithms with
    | Stack_based -> mode
    | Naive_nested_loop -> Materialized
  in
  let with_paths = t.planner <> Off in
  let plan =
    if with_paths then
      Plan.estimate ~pager:t.pager ~instance:t.instance
        ?attr_index:t.attr_index ?cache:t.result_cache ?calib:t.calib
        ~streaming:(mode = Streaming) ?force:(planner_force t) q
    else Plan.estimate ~pager:t.pager ~instance:t.instance q
  in
  let path = if with_paths then plan_paths plan else None in
  let ops =
    match span with
    | Some sp -> annotate_ops ~mode ~with_paths plan (Qlog.ops_of_span sp)
    | None -> []
  in
  let capture =
    if wall_ns >= Qlog.threshold_ns () then
      Some
        {
          Qlog.span_text =
            (match span with
            | Some sp -> Fmt.str "%a" Trace.pp_span sp
            | None -> "");
          plan_text = Plan.to_string plan;
        }
    else None
  in
  let trace_id =
    match span with
    | Some sp -> Some sp.Trace.trace_id
    | None -> Trace.current_trace_id ()
  in
  let est_writes =
    match mode with
    | Streaming ->
        max 0 (Plan.total_est_writes plan - Plan.total_est_writes_saved plan)
    | Materialized -> Plan.total_est_writes plan
  in
  ignore
    (Qlog.record ~cache ?path ?trace_id
       ~query:(Qprinter.to_string q)
       ~fingerprint:(Plan.fingerprint q) ~result_count ~reads ~writes ~wall_ns
       ~alloc_bytes ~outcome ~ops ?capture ~est_card:plan.Plan.est_rows
       ~est_reads:(Plan.total_est_reads plan) ~est_writes ())

(* Full evaluation.  [probe] says how the result cache answered the
   lookup ([`Bypass] when there is none): a [`Miss] or [`Stale] result
   is offered back to the cache — admission decides — with the measured
   io as its cost and its dn-subtree footprint for invalidation. *)
let eval_uncached t ~mode q ~probe =
  let s = stats t in
  let reads0 = s.Io_stats.page_reads and writes0 = s.Io_stats.page_writes in
  let alloc0 = Gc.allocated_bytes () in
  let t0 = Mclock.now_ns () in
  let journal = Qlog.enabled () in
  let cache_note =
    match probe with `Bypass -> "bypass" | `Miss -> "miss" | `Stale -> "stale"
  in
  with_forced_tracing journal (fun () ->
      let detail = if Trace.enabled () then query_detail q else "" in
      match
        Trace.with_span_out ~detail ~stats:s "execute" (fun () ->
            let out = run_root t ~mode q in
            Trace.set_rows (Ext_list.length out);
            out)
      with
      | exception e ->
          if journal then
            journal_event t q ~mode ~cache:cache_note ~result_count:0
              ~reads:(s.Io_stats.page_reads - reads0)
              ~writes:(s.Io_stats.page_writes - writes0)
              ~wall_ns:(Mclock.now_ns () - t0)
              ~alloc_bytes:(int_of_float (Gc.allocated_bytes () -. alloc0))
              ~outcome:(Qlog.Failed (Printexc.to_string e))
              None;
          raise e
      | out, span ->
          let wall_ns = Mclock.now_ns () - t0 in
          let reads = s.Io_stats.page_reads - reads0
          and writes = s.Io_stats.page_writes - writes0
          and alloc_bytes = int_of_float (Gc.allocated_bytes () -. alloc0) in
          Metrics.incr m_queries;
          Metrics.observe_ns
            ?trace_id:(Option.map (fun sp -> sp.Trace.trace_id) span)
            m_latency wall_ns;
          (* tail sampling: hand the completed tree over when tracing
             produced one; the sampler decides whether to keep it.
             Inside a served request this tree shares the request's
             trace id, and the server's root tree supersedes it. *)
          Option.iter
            (fun sp ->
              ignore (Tail.consider ~origin:"engine" ~outcome:`Ok ~wall_ns sp))
            span;
          Metrics.add m_reads reads;
          Metrics.add m_writes writes;
          Metrics.add m_alloc alloc_bytes;
          (* journal before the result is offered to the cache: the
             journal's post-hoc estimate peeks the cache, and must see
             it as execution did — a root atomic that missed and is
             about to be stored would otherwise claim path=cache *)
          if journal then
            journal_event t q ~mode ~cache:cache_note
              ~result_count:(Ext_list.length out)
              ~reads ~writes ~wall_ns ~alloc_bytes ~outcome:Qlog.Ok span;
          (match t.result_cache with
          | Some c when probe <> `Bypass ->
              Metrics.observe_ns m_miss_ns wall_ns;
              let arr = Ext_list.to_array out in
              ignore
                (Cache.store c ~fingerprint:(Plan.fingerprint q)
                   ~query:(Qprinter.to_string q)
                   ~footprint:(Footprint.of_query q)
                   ~cost_io:(reads + writes)
                   ~pages:(Pager.pages_of t.pager (Array.length arr))
                   arr)
          | _ -> ());
          out)

(* A hit re-serves the materialized result as a disk-resident list:
   creation is free (the pages are already paid for in the cache's
   budget), downstream scans charge normally. *)
let serve_hit t q ~fingerprint arr =
  let alloc0 = Gc.allocated_bytes () in
  let t0 = Mclock.now_ns () in
  let out = Ext_list.of_array_resident t.pager arr in
  let wall_ns = Mclock.now_ns () - t0 in
  let alloc_bytes = int_of_float (Gc.allocated_bytes () -. alloc0) in
  Metrics.incr m_queries;
  Metrics.observe_ns m_latency wall_ns;
  Metrics.observe_ns m_hit_ns wall_ns;
  Metrics.add m_alloc alloc_bytes;
  if Qlog.enabled () then
    ignore
      (Qlog.record ~cache:"hit"
         ?trace_id:(Trace.current_trace_id ())
         ~query:(Qprinter.to_string q)
         ~fingerprint ~result_count:(Array.length arr) ~reads:0 ~writes:0
         ~wall_ns ~alloc_bytes ~outcome:Qlog.Ok ());
  out

(* Cardinality-ordered boolean merges: under the cost-based planner,
   rewrite maximal And/Or chains ascending by estimated operand
   cardinality before evaluation.  The rewrite happens before the
   fingerprint is taken, so the cache, journal and spans all see the
   tree that actually ran. *)
let rec has_bool : Ast.t -> bool = function
  | Ast.Atomic _ -> false
  | Ast.And _ | Ast.Or _ -> true
  | Ast.Diff (q1, q2) -> has_bool q1 || has_bool q2
  | Ast.Hier (_, q1, q2, _) -> has_bool q1 || has_bool q2
  | Ast.Hier3 (_, q1, q2, q3, _) -> has_bool q1 || has_bool q2 || has_bool q3
  | Ast.Gsel (q1, _) -> has_bool q1
  | Ast.Eref (_, q1, q2, _, _) -> has_bool q1 || has_bool q2

let plan_rewrite ?mode t q =
  let mode = Option.value mode ~default:t.mode in
  if t.planner = Auto && has_bool q then
    Plan.reorder ~pager:t.pager ~instance:t.instance ?attr_index:t.attr_index
      ?cache:t.result_cache ?calib:t.calib ~streaming:(mode = Streaming) q
  else q

let eval ?mode t q =
  let mode = Option.value mode ~default:t.mode in
  refresh_if_dirty t;
  let q = plan_rewrite ~mode t q in
  match t.result_cache with
  | None -> eval_uncached t ~mode q ~probe:`Bypass
  | Some c -> (
      let fingerprint = Plan.fingerprint q in
      match Cache.find c ~fingerprint ~query:(Qprinter.to_string q) with
      | Cache.Hit arr -> serve_hit t q ~fingerprint arr
      | Cache.Miss -> eval_uncached t ~mode q ~probe:`Miss
      | Cache.Stale -> eval_uncached t ~mode q ~probe:`Stale)

let eval_entries ?mode t q = Ext_list.to_list (eval ?mode t q)

(* Closure: wrap the result back into an instance over the same schema. *)
let eval_instance ?mode t q =
  Instance.of_result t.instance (eval_entries ?mode t q)

(* Paged results, RFC-2696 style: evaluate once, hand back fixed-size
   pages with an opaque cookie.  The cookie encodes the key of the last
   entry delivered, so paging survives re-evaluation (and concurrent
   inserts simply appear in their sorted position on later pages). *)
type page = {
  entries : Entry.t list;
  cookie : string option;  (* None: no more pages *)
}

let eval_paged ?mode t ?(page_size = 100) ?cookie q =
  if page_size <= 0 then invalid_arg "Engine.eval_paged: page_size <= 0";
  let result = eval ?mode t q in
  let n = Ext_list.length result in
  (* first index strictly after the cookie key *)
  let start =
    match cookie with
    | None -> 0
    | Some last_key ->
        let lo = ref 0 and hi = ref n in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if String.compare (Entry.key (Ext_list.unsafe_get result mid)) last_key
             <= 0
          then lo := mid + 1
          else hi := mid
        done;
        !lo
  in
  let len = min page_size (n - start) in
  let entries = List.init (max 0 len) (fun i -> Ext_list.unsafe_get result (start + i)) in
  let cookie =
    if start + len >= n || entries = [] then None
    else Some (Entry.key (List.nth entries (len - 1)))
  in
  { entries; cookie }

(* Parse-and-run convenience for the shell and examples. *)
let eval_string ?mode t s =
  let q =
    Trace.with_span ~detail:s "parse" (fun () ->
        Qparser.of_string ~schema:(Instance.schema t.instance) s)
  in
  (q, eval_entries ?mode t q)
