(** Algorithm ComputeHSAD (Fig 4): ancestors and descendants with
    incremental count propagation along the stack; linear I/O
    (Theorem 5.1). *)

val ancestors :
  ?window:int -> Entry.t Ext_list.t -> Entry.t Ext_list.t -> Entry.t Ext_list.t
(** [(a L1 L2)]: L1 entries with a proper ancestor in L2. *)

val descendants :
  ?window:int -> Entry.t Ext_list.t -> Entry.t Ext_list.t -> Entry.t Ext_list.t
(** [(d L1 L2)]: L1 entries with a proper descendant in L2. *)

val compute :
  ?window:int ->
  [ `A | `D ] ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t

val ancestors_src :
  ?window:int ->
  Pager.t ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src

val descendants_src :
  ?window:int ->
  Pager.t ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src

val compute_src :
  ?window:int ->
  Pager.t ->
  [ `A | `D ] ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src
(** Streaming variants over {!Ext_list.Source} streams. *)
