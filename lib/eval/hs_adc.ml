(* Algorithm ComputeHSADc (Fig 5): path-constrained ancestors and
   descendants — the closest-qualifying variants where entries of the
   third operand block witness propagation. *)

let ancestors_c ?window l1 l2 l3 = Hs_agg.compute_hier3 ?window Ast.Ac l1 l2 l3
let descendants_c ?window l1 l2 l3 = Hs_agg.compute_hier3 ?window Ast.Dc l1 l2 l3

let compute ?window op l1 l2 l3 =
  match op with
  | `Ac -> ancestors_c ?window l1 l2 l3
  | `Dc -> descendants_c ?window l1 l2 l3

let ancestors_c_src ?window pager s1 s2 s3 =
  Hs_agg.compute_hier3_src ?window pager Ast.Ac s1 s2 s3

let descendants_c_src ?window pager s1 s2 s3 =
  Hs_agg.compute_hier3_src ?window pager Ast.Dc s1 s2 s3

let compute_src ?window pager op s1 s2 s3 =
  match op with
  | `Ac -> ancestors_c_src ?window pager s1 s2 s3
  | `Dc -> descendants_c_src ?window pager s1 s2 s3
