(* Algorithm ComputeHSADc (Fig 5): path-constrained ancestors and
   descendants — the closest-qualifying variants where entries of the
   third operand block witness propagation. *)

let ancestors_c ?window l1 l2 l3 = Hs_agg.compute_hier3 ?window Ast.Ac l1 l2 l3
let descendants_c ?window l1 l2 l3 = Hs_agg.compute_hier3 ?window Ast.Dc l1 l2 l3

let compute ?window op l1 l2 l3 =
  match op with
  | `Ac -> ancestors_c ?window l1 l2 l3
  | `Dc -> descendants_c ?window l1 l2 l3
