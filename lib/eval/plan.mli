(** Query plans below the engine: the annotated-tree representation,
    cost estimation, a normalized plan fingerprint, and rendering.

    Section 8.2's evaluation strategy is fixed (bottom-up sorted
    pipeline), so a plan is the query tree annotated with predicted
    cardinality and page-I/O and, after profiling, measured values.
    Everything here works from a pager and an instance rather than an
    engine, so both {!Explain} and {!Engine} (slow-query captures in
    the journal) can use it without a dependency cycle. *)

type node = {
  label : string;
  detail : string;
  est_rows : int;
  est_io : int;  (** = [est_reads + est_writes] *)
  est_reads : int;
  est_writes : int;
  est_writes_saved : int;
      (** writes a streaming pipeline avoids at this node (Theorem 8.3);
          0 at materialized boundaries and for the root's own output *)
  actual_rows : int option;
  actual_io : int option;
  actual_ns : int option;  (** wall-clock nanoseconds, excluding children *)
  actual_alloc : int option;
      (** bytes allocated by the operator, excluding children *)
  children : node list;
}

val estimate : pager:Pager.t -> instance:Instance.t -> Ast.t -> node
(** Predicted plan, no execution. *)

val shape : Ast.t -> string
(** The normalized plan: the operator tree with literal constants
    elided, so equal shapes mean "the same plan with different
    constants". *)

val fingerprint : Ast.t -> string
(** 16-hex-digit FNV-1a digest of {!shape} — the journal's plan key. *)

val pp_node : Format.formatter -> node -> unit
val pp : Format.formatter -> node -> unit
val to_string : node -> string

val total_actual_io : node -> int
(** Sum of the per-operator actual I/O over the whole plan. *)

val total_actual_ns : node -> int
(** Sum of the per-operator wall-clock time over the whole plan. *)

val total_est_writes_saved : node -> int
(** Sum of {!node.est_writes_saved} over the whole plan: the page
    writes a streaming evaluation is predicted to avoid. *)

val total_est_reads : node -> int
(** Sum of {!node.est_reads} over the whole plan. *)

val total_est_writes : node -> int
(** Sum of {!node.est_writes} over the whole plan. *)

val flatten : node -> (node * int) list
(** Preorder traversal with depths (root at depth 0) — the same shape
    [Qlog.ops_of_span] produces from a span tree, so per-operator
    estimates pair positionally with per-operator actuals. *)
