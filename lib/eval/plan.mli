(** Query plans below the engine: cost-based access-path selection, the
    annotated-tree representation, cost estimation, a normalized plan
    fingerprint, and rendering.

    Section 8.2's evaluation strategy is fixed (bottom-up sorted
    pipeline), so a plan is the query tree annotated with predicted
    cardinality and page-I/O and, after profiling, measured values —
    plus one access-path decision per sub-scope atomic: secondary-index
    probe, dn-index subtree scan, or result-cache hit, each priced
    before any postings are materialized.  Everything here works from a
    pager, an instance and optional index / cache / calibration handles
    rather than an engine, so {!Explain}, {!Engine} (execution and the
    query journal) and the distributed coordinator all price paths with
    the same model. *)

(** {1 Access paths} *)

type path =
  | Index  (** secondary-index probe + scope/filter refinement + sort *)
  | Scan  (** clustering dn-index subtree scan *)
  | Cached  (** fresh result-cache entry re-served resident *)

val path_name : path -> string
(** ["index"], ["scan"], ["cache"] — the journal's vocabulary. *)

type alt = {
  alt_path : path;
  alt_rows : int;  (** estimated output cardinality on this path *)
  alt_reads : int;  (** estimated page reads to produce it *)
  alt_writes : int;  (** estimated output writes (a pipeline saves them) *)
}

type choice = {
  chosen : alt;
  rejected : alt list;  (** the alternatives, with the costs that lost *)
}

val choose_path :
  pager:Pager.t ->
  instance:Instance.t ->
  ?attr_index:Attr_index.t ->
  ?cache:Cache.t ->
  ?calib:Planstats.t ->
  ?streaming:bool ->
  ?force:path ->
  Ast.atomic ->
  choice
(** Price the access paths of one atomic and pick the cheapest by
    estimated reads (plus output writes unless [streaming], where both
    paths pipe).  The index path is priced from the attribute index's
    cardinality counters ({!Attr_index.count_int_range} and friends) —
    this system's optimizer statistics, so the probes' descent reads
    are refunded from the pager's counter: planning is free and a
    forced path costs exactly what auto-selection costs on that path.
    The cache path is priced from a read-only {!Cache.peek}.  With
    [calib], estimates are corrected by the learned per-path bias
    (["atomic:index"], ["atomic:scan"], falling back to ["atomic"]).
    [force] pins the decision to a path when it is available.  Base and
    one-level scopes, which only the dn-index serves, always choose
    [Scan]. *)

val int_bounds : Afilter.cmp -> int -> int * int
(** The closed key range an integer comparison probes — shared with the
    engine's index lookup so pricing and execution agree. *)

val substr_probe : Afilter.substring -> (string * bool) option
(** The component an indexed substring filter probes with: the longest
    available one (ties prefer the anchored initial component, whose
    exact-trie walk is cheaper).  [true] = anchored at the start.
    [None] for a bare [*]. *)

(** {1 The annotated plan tree} *)

type node = {
  label : string;
  detail : string;
  est_rows : int;
  est_io : int;  (** = [est_reads + est_writes] *)
  est_reads : int;
  est_writes : int;
  est_writes_saved : int;
      (** writes a streaming pipeline avoids at this node (Theorem 8.3);
          0 at materialized boundaries and for the root's own output *)
  actual_rows : int option;
  actual_io : int option;
  actual_ns : int option;  (** wall-clock nanoseconds, excluding children *)
  actual_alloc : int option;
      (** bytes allocated by the operator, excluding children *)
  access : choice option;
      (** the access-path decision, on sub-scope atomic nodes *)
  children : node list;
}

val estimate :
  pager:Pager.t ->
  instance:Instance.t ->
  ?attr_index:Attr_index.t ->
  ?cache:Cache.t ->
  ?calib:Planstats.t ->
  ?streaming:bool ->
  ?force:path ->
  Ast.t ->
  node
(** Predicted plan, no execution.  Sub-scope atomics are priced through
    {!choose_path} with the same optional handles, so the estimate's
    per-node numbers are the chosen path's; without any handles the
    estimate degrades to the selectivity-based scan model. *)

val reorder :
  pager:Pager.t ->
  instance:Instance.t ->
  ?attr_index:Attr_index.t ->
  ?cache:Cache.t ->
  ?calib:Planstats.t ->
  ?streaming:bool ->
  Ast.t ->
  Ast.t
(** Cardinality-ordered boolean merges: flatten maximal [And] / [Or]
    chains, estimate each operand (atomics through the same calibrated
    access-path probes), rebuild left-deep ascending by estimated
    cardinality.  [And]/[Or] being commutative and associative over
    sorted entry lists, results are unchanged; intermediate sizes — and
    with them comparisons, and boundary writes when materialized — only
    shrink when the estimates are right.  Order-sensitive operators
    ([Diff], hierarchical, references) keep their operand order. *)

val shape : Ast.t -> string
(** The normalized plan: the operator tree with literal constants
    elided, so equal shapes mean "the same plan with different
    constants". *)

val fingerprint : Ast.t -> string
(** 16-hex-digit FNV-1a digest of {!shape} — the journal's plan key. *)

val pp_node : Format.formatter -> node -> unit
(** Renders each node's estimated-vs-actual row; atomic nodes with an
    access decision additionally print the chosen path and the rejected
    alternatives with their losing costs. *)

val pp : Format.formatter -> node -> unit
val to_string : node -> string

val total_actual_io : node -> int
(** Sum of the per-operator actual I/O over the whole plan. *)

val total_actual_ns : node -> int
(** Sum of the per-operator wall-clock time over the whole plan. *)

val total_est_writes_saved : node -> int
(** Sum of {!node.est_writes_saved} over the whole plan: the page
    writes a streaming evaluation is predicted to avoid. *)

val total_est_reads : node -> int
(** Sum of {!node.est_reads} over the whole plan. *)

val total_est_writes : node -> int
(** Sum of {!node.est_writes} over the whole plan. *)

val flatten : node -> (node * int) list
(** Preorder traversal with depths (root at depth 0) — the same shape
    [Qlog.ops_of_span] produces from a span tree, so per-operator
    estimates pair positionally with per-operator actuals. *)
