(* The "straightforward way" baselines (Sections 5.3 and 7.2): test each
   entry of the first operand independently by re-scanning the second
   (and third) operand for witnesses.  Quadratic I/O — the comparison
   point for experiment E9's crossover measurements.

   Results are identical to the stack/merge algorithms (differential
   tests enforce this); only the cost differs. *)

(* Witness predicate for one candidate: fresh full scan of l2. *)
let hier_witness_scan op r1 l2 =
  let found = ref false in
  Ext_list.iter
    (fun r2 ->
      if not !found then
        let related =
          match op with
          | Ast.P -> Entry.key_parent_of ~parent:r2 ~child:r1
          | Ast.C -> Entry.key_parent_of ~parent:r1 ~child:r2
          | Ast.A -> Entry.key_ancestor_of ~ancestor:r2 ~descendant:r1
          | Ast.D -> Entry.key_ancestor_of ~ancestor:r1 ~descendant:r2
        in
        if related then found := true)
    l2;
  !found

let compute_hier op l1 l2 =
  let w = Ext_list.Writer.make (Ext_list.pager l1) in
  Ext_list.iter
    (fun r1 -> if hier_witness_scan op r1 l2 then Ext_list.Writer.push w r1)
    l1;
  Ext_list.Writer.close w

(* Path-constrained variants: for each candidate, scan l2 for related
   entries and l3 once per candidate to collect potential blockers. *)
let compute_hier3 op l1 l2 l3 =
  let w = Ext_list.Writer.make (Ext_list.pager l1) in
  Ext_list.iter
    (fun r1 ->
      let blockers = ref [] in
      Ext_list.iter
        (fun r3 ->
          let related =
            match op with
            | Ast.Ac -> Entry.key_ancestor_of ~ancestor:r3 ~descendant:r1
            | Ast.Dc -> Entry.key_ancestor_of ~ancestor:r1 ~descendant:r3
          in
          if related then blockers := r3 :: !blockers)
        l3;
      let found = ref false in
      Ext_list.iter
        (fun r2 ->
          if not !found then
            let witness =
              match op with
              | Ast.Ac ->
                  Entry.key_ancestor_of ~ancestor:r2 ~descendant:r1
                  && not
                       (List.exists
                          (fun r3 ->
                            Entry.key_ancestor_of ~ancestor:r2 ~descendant:r3)
                          !blockers)
              | Ast.Dc ->
                  Entry.key_ancestor_of ~ancestor:r1 ~descendant:r2
                  && not
                       (List.exists
                          (fun r3 ->
                            Entry.key_ancestor_of ~ancestor:r3 ~descendant:r2)
                          !blockers)
            in
            if witness then found := true)
        l2;
      if !found then Ext_list.Writer.push w r1)
    l1;
  Ext_list.Writer.close w

(* Embedded references: for each candidate, re-scan l2 for referencing /
   referenced entries. *)
let compute_eref op l1 l2 attr =
  let w = Ext_list.Writer.make (Ext_list.pager l1) in
  Ext_list.iter
    (fun r1 ->
      let found = ref false in
      Ext_list.iter
        (fun r2 ->
          if not !found then
            let witness =
              match op with
              | Ast.Vd ->
                  List.exists
                    (fun d -> Dn.equal d (Entry.dn r2))
                    (Entry.dn_values r1 attr)
              | Ast.Dv ->
                  List.exists
                    (fun d -> Dn.equal d (Entry.dn r1))
                    (Entry.dn_values r2 attr)
            in
            if witness then found := true)
        l2;
      if !found then Ext_list.Writer.push w r1)
    l1;
  Ext_list.Writer.close w

(* Nested-loop boolean operators, for completeness of the baseline. *)
let compute_bool op l1 l2 =
  let w = Ext_list.Writer.make (Ext_list.pager l1) in
  let mem e l =
    let found = ref false in
    Ext_list.iter (fun e' -> if Entry.equal_dn e e' then found := true) l;
    !found
  in
  (match op with
  | `And -> Ext_list.iter (fun e -> if mem e l2 then Ext_list.Writer.push w e) l1
  | `Diff ->
      Ext_list.iter (fun e -> if not (mem e l2) then Ext_list.Writer.push w e) l1
  | `Or ->
      Ext_list.iter (fun e -> Ext_list.Writer.push w e) l1;
      Ext_list.iter (fun e -> if not (mem e l1) then Ext_list.Writer.push w e) l2);
  Ext_list.Writer.close w
