(** Algorithm ComputeHSPC (Fig 2): the parents and children operators by
    one stack sweep of the merged sorted inputs; linear I/O
    (Theorem 5.1). *)

val parents :
  ?window:int -> Entry.t Ext_list.t -> Entry.t Ext_list.t -> Entry.t Ext_list.t
(** [(p L1 L2)]: L1 entries with at least one parent in L2. *)

val children :
  ?window:int -> Entry.t Ext_list.t -> Entry.t Ext_list.t -> Entry.t Ext_list.t
(** [(c L1 L2)]: L1 entries with at least one child in L2. *)

val compute :
  ?window:int ->
  [ `P | `C ] ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t

val parents_src :
  ?window:int ->
  Pager.t ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src

val children_src :
  ?window:int ->
  Pager.t ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src

val compute_src :
  ?window:int ->
  Pager.t ->
  [ `P | `C ] ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src
(** Streaming variants over {!Ext_list.Source} streams. *)
