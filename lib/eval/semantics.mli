(** Reference denotational semantics — a direct executable transcription
    of Definitions 4.1, 5.1, 6.1, 6.2 and 7.1.

    This evaluator manipulates plain entry lists with no regard for
    cost; it is the oracle the external-memory algorithms are
    differentially tested against and the formal meaning of every query.
    All results are in canonical (reverse-dn) sorted order. *)

val sort_entries : Entry.t list -> Entry.t list

val eval_atomic : Instance.t -> Ast.atomic -> Entry.t list
(** M(B ? scope ? F) — Definition 4.1.  Every scope includes the base
    entry itself. *)

val hier_witnesses : Ast.hier_op -> Entry.t -> Entry.t list -> Entry.t list
(** The op-witness set of one candidate among the second operand's
    entries (Definition 5.1 / 6.2). *)

val hier3_witnesses :
  Ast.hier_op3 -> Entry.t -> Entry.t list -> Entry.t list -> Entry.t list
(** Path-constrained witnesses: related entries with no third-operand
    entry strictly between. *)

val eref_witnesses : Ast.ref_op -> Entry.t -> Entry.t list -> string -> Entry.t list
(** Embedded-reference witnesses (Definition 7.1). *)

val eval : Instance.t -> Ast.t -> Entry.t list
(** M(Q), sorted. *)

val eval_instance : Instance.t -> Ast.t -> Instance.t
(** The closure property: results are sub-instances. *)
