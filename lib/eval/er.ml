(* ComputeERAggVD / ComputeERAggDV — the embedded-reference operators
   valueDN (vd) and DNvalue (dv) with optional aggregate selection
   (Section 7.2, Fig 3).

   Sort-merge join/semijoin:

   dv (L1 L2 a):  candidates are L1 entries whose dn is referenced by the
   [a] attribute of some L2 entry.  Phase 1 explodes L2 into a pair list
   LP of (referenced-dn key, referencing entry) — at most |L2| * m pairs —
   and sorts it by the referenced key.  Phase 2 merges LP against L1,
   maintaining the witness-dependent aggregate states per candidate.
   Phase 3 applies the aggregate selection filter (shared with Hs_agg).

   vd (L1 L2 a):  symmetric — the pair list comes from L1's own [a]
   values, is sorted by referenced key and merged against L2; the witness
   contributions are then routed back to L1 order by a second sort on the
   candidate's ordinal.

   The cores consume {!Ext_list.Source} streams.  The pair lists and
   their sorts are always materialized — they are sort boundaries,
   exception (b) of Thm 8.3 — and vd's L1 is consumed twice (phases 1
   and 3), so a live L1 is forced resident first (exception (c)).  The
   streaming entry points pipeline the annotations into phase 3; the
   list-level ones write the annotated copy and the output, keeping the
   classic bill: O(|L1|/B + (|L2| m / B) log (|L2| m / B)) for dv
   (Theorem 7.1) and symmetrically for vd. *)

let annot_of entry states =
  { Hs_stack.a_entry = entry; a_above = states; a_below = states }

let finish ?agg tracked annots pager =
  Hs_agg.finish tracked Hs_agg.Witness_above agg annots pager

(* Explode embedded references into a pair list sorted by referenced
   key: [proj] says what rides along with each key (the referencing
   entry for dv, the candidate ordinal for vd).  Always materialized —
   a sort boundary. *)
let sorted_pairs pager s attr proj =
  let w = Ext_list.Writer.make pager in
  let ord = ref (-1) in
  Ext_list.Source.iter
    (fun r ->
      incr ord;
      List.iter
        (fun d -> Ext_list.Writer.push w (Dn.rev_key d, proj r !ord))
        (Entry.dn_values r attr))
    s;
  Ext_sort.sort
    (fun (k1, _) (k2, _) -> String.compare k1 k2)
    (Ext_list.Writer.close w)

(* --- dv ----------------------------------------------------------------- *)

(* Phases 1-2: annotations in L1 order, charging input pulls, pair-list
   writes and the sort. *)
let dv_core pager tracked s1 s2 attr =
  let pairs = sorted_pairs pager s2 attr (fun r2 _ -> r2) in
  (* Phase 2: merge the sorted pair list against L1 in key order. *)
  let annots = Array.make (Ext_list.Source.length s1) None in
  let cp = Ext_list.Cursor.make pairs in
  let ord = ref (-1) in
  Ext_list.Source.iter
    (fun r1 ->
      incr ord;
      let key = Entry.key r1 in
      let states = ref (Hs_stack.zeros tracked) in
      let rec absorb () =
        match Ext_list.Cursor.peek cp with
        | Some (k, r2) ->
            let c = String.compare k key in
            if c < 0 then begin
              (* reference to a dn not in L1: skip *)
              Ext_list.Cursor.advance cp;
              absorb ()
            end
            else if c = 0 then begin
              Ext_list.Cursor.advance cp;
              states :=
                Hs_stack.combine_into !states (Hs_stack.unit_of tracked r2);
              absorb ()
            end
        | None -> ()
      in
      absorb ();
      annots.(!ord) <- Some (annot_of r1 !states))
    s1;
  Array.map Option.get annots

let compute_dv ?agg l1 l2 attr =
  let pager = Ext_list.pager l1 in
  let f = Option.value ~default:Ast.has_witness agg in
  let tracked = Hs_stack.tracked_of_filter f in
  let annots =
    dv_core pager tracked (Ext_list.Source.of_list l1)
      (Ext_list.Source.of_list l2) attr
  in
  (* The annotated copy of L1 is written once. *)
  Pager.charge_scan_write pager (Array.length annots);
  finish ?agg tracked annots pager

let compute_dv_src ?agg pager s1 s2 attr =
  let f = Option.value ~default:Ast.has_witness agg in
  let tracked = Hs_stack.tracked_of_filter f in
  let annots = dv_core pager tracked s1 s2 attr in
  Hs_agg.finish_src tracked Hs_agg.Witness_above agg annots pager

(* --- vd ----------------------------------------------------------------- *)

(* Phases 1-3 over a resident L1 (it is scanned twice: reference
   explosion and the final lockstep) and a streamed L2. *)
let vd_core pager tracked l1 s2 attr =
  (* Phase 1: explode L1's embedded references, tagged with the
     candidate's position so contributions can be routed back. *)
  let pairs =
    sorted_pairs pager (Ext_list.Source.of_list l1) attr (fun _ ord -> ord)
  in
  (* Phase 2: merge against L2 in key order, emitting per-candidate
     witness contributions. *)
  let contribs =
    let w = Ext_list.Writer.make pager in
    Ext_list.iter
      (fun (k, ord) ->
        let rec seek () =
          match Ext_list.Source.peek s2 with
          | Some r2 ->
              let c = String.compare (Entry.key r2) k in
              if c < 0 then begin
                Ext_list.Source.advance s2;
                seek ()
              end
              else if c = 0 then Ext_list.Writer.push w (ord, r2)
          | None -> ()
        in
        seek ())
      pairs;
    Ext_list.Writer.close w
  in
  (* Route contributions back to candidate order. *)
  let contribs =
    Ext_sort.sort (fun (o1, _) (o2, _) -> Int.compare o1 o2) contribs
  in
  (* Phase 3: scan L1 and the contributions in lockstep. *)
  let annots = Array.make (Ext_list.length l1) None in
  let cc = Ext_list.Cursor.make contribs in
  let ord = ref (-1) in
  Ext_list.iter
    (fun r1 ->
      incr ord;
      let states = ref (Hs_stack.zeros tracked) in
      let rec absorb () =
        match Ext_list.Cursor.peek cc with
        | Some (o, r2) when o = !ord ->
            Ext_list.Cursor.advance cc;
            states := Hs_stack.combine_into !states (Hs_stack.unit_of tracked r2);
            absorb ()
        | Some _ | None -> ()
      in
      absorb ();
      annots.(!ord) <- Some (annot_of r1 !states))
    l1;
  Array.map Option.get annots

let compute_vd ?agg l1 l2 attr =
  let pager = Ext_list.pager l1 in
  let f = Option.value ~default:Ast.has_witness agg in
  let tracked = Hs_stack.tracked_of_filter f in
  let annots = vd_core pager tracked l1 (Ext_list.Source.of_list l2) attr in
  Pager.charge_scan_write pager (Array.length annots);
  finish ?agg tracked annots pager

let compute_vd_src ?agg pager s1 s2 attr =
  let f = Option.value ~default:Ast.has_witness agg in
  let tracked = Hs_stack.tracked_of_filter f in
  (* L1 is consumed twice: force a live stream resident first. *)
  let l1 = Ext_list.Source.force pager s1 in
  let annots = vd_core pager tracked l1 s2 attr in
  Hs_agg.finish_src tracked Hs_agg.Witness_above agg annots pager

let compute ?agg op l1 l2 attr =
  match op with
  | Ast.Vd -> compute_vd ?agg l1 l2 attr
  | Ast.Dv -> compute_dv ?agg l1 l2 attr

let compute_src ?agg pager op s1 s2 attr =
  match op with
  | Ast.Vd -> compute_vd_src ?agg pager s1 s2 attr
  | Ast.Dv -> compute_dv_src ?agg pager s1 s2 attr
