(* Algorithm ComputeHSAD (Fig 4): ancestors and descendants with
   incremental count propagation along the stack.  Wrapper over the
   generic machinery with the implicit filter count($2) > 0. *)

let ancestors ?window l1 l2 = Hs_agg.compute_hier ?window Ast.A l1 l2
let descendants ?window l1 l2 = Hs_agg.compute_hier ?window Ast.D l1 l2

let compute ?window op l1 l2 =
  match op with
  | `A -> ancestors ?window l1 l2
  | `D -> descendants ?window l1 l2
