(* Algorithm ComputeHSAD (Fig 4): ancestors and descendants with
   incremental count propagation along the stack.  Wrapper over the
   generic machinery with the implicit filter count($2) > 0. *)

let ancestors ?window l1 l2 = Hs_agg.compute_hier ?window Ast.A l1 l2
let descendants ?window l1 l2 = Hs_agg.compute_hier ?window Ast.D l1 l2

let compute ?window op l1 l2 =
  match op with
  | `A -> ancestors ?window l1 l2
  | `D -> descendants ?window l1 l2

let ancestors_src ?window pager s1 s2 =
  Hs_agg.compute_hier_src ?window pager Ast.A s1 s2

let descendants_src ?window pager s1 s2 =
  Hs_agg.compute_hier_src ?window pager Ast.D s1 s2

let compute_src ?window pager op s1 s2 =
  match op with
  | `A -> ancestors_src ?window pager s1 s2
  | `D -> descendants_src ?window pager s1 s2
