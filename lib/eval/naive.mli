(** The "straightforward way" baselines (Sections 5.3, 7.2): each
    candidate of the first operand re-scans the other operand(s) for a
    witness.  Quadratic I/O; identical results to the stack/merge
    algorithms (differentially tested); experiment E9 measures the
    gap. *)

val compute_hier :
  Ast.hier_op -> Entry.t Ext_list.t -> Entry.t Ext_list.t -> Entry.t Ext_list.t

val compute_hier3 :
  Ast.hier_op3 ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t

val compute_eref :
  Ast.ref_op ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  string ->
  Entry.t Ext_list.t

val compute_bool :
  [ `And | `Or | `Diff ] ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t
(** Nested-loop boolean operators; note [`Or]'s output is not sorted. *)
