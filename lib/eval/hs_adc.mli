(** Algorithm ComputeHSADc (Fig 5): path-constrained ancestors and
    descendants — witnesses with no third-operand entry strictly
    between; linear I/O in all three inputs (Theorem 5.1). *)

val ancestors_c :
  ?window:int ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t
(** [(ac L1 L2 L3)]. *)

val descendants_c :
  ?window:int ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t
(** [(dc L1 L2 L3)]. *)

val compute :
  ?window:int ->
  [ `Ac | `Dc ] ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t

val ancestors_c_src :
  ?window:int ->
  Pager.t ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src

val descendants_c_src :
  ?window:int ->
  Pager.t ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src

val compute_src :
  ?window:int ->
  Pager.t ->
  [ `Ac | `Dc ] ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src
(** Streaming variants over {!Ext_list.Source} streams. *)
