(** Boolean-subtree fusion — an algebraic rewrite from Theorem 8.1's
    LDAP/L0 correspondence: a boolean subtree whose atomic sub-queries
    share one base and scope is a single LDAP query, evaluable in one
    scan of the scope range with the fused filter instead of one scan
    per leaf plus merges.  Same results, fewer scans (experiment E19). *)

type plan =
  | Scan of Ldap.query  (** a fused single-scan boolean subtree *)
  | Op of op * plan list
  | Leaf of Ast.atomic

and op =
  | P_and
  | P_or
  | P_diff
  | P_hier of Ast.hier_op * Ast.agg_filter option
  | P_hier3 of Ast.hier_op3 * Ast.agg_filter option
  | P_gsel of Ast.agg_filter
  | P_eref of Ast.ref_op * string * Ast.agg_filter option

val plan_of : Ast.t -> plan
(** Rewrite bottom-up, fusing every maximal collapsible subtree. *)

val scan_count : plan -> int
(** Scans the plan performs (the unfused tree performs one per atomic
    leaf). *)

val eval : Engine.t -> Ast.t -> Entry.t Ext_list.t
val eval_entries : Engine.t -> Ast.t -> Entry.t list
val pp_plan : Format.formatter -> plan -> unit
