(** The stack-sweep machinery shared by ComputeHSPC (Fig 2), ComputeHSAD
    (Fig 4), ComputeHSADc (Fig 5) and the ComputeHSAgg* extensions
    (Fig 6).

    Inputs sorted by reverse-dn key are merged into one document-order
    stream; the stack always holds a root-to-current ancestor chain (the
    paper's correctness observations (1)-(2)); frames carry distributive
    aggregate states per witness-dependent entry aggregate, and the
    push/pop propagation of the figures runs on those states.  Plain
    hierarchical selection is the special case count($2) > 0. *)

type mode =
  | Pc  (** parent/child witnesses, Fig 2 *)
  | Ad  (** ancestor/descendant witnesses, Fig 4 *)
  | Adc  (** path-constrained, third list blocks propagation, Fig 5 *)

type frame = {
  entry : Entry.t;
  in_l1 : bool;
  in_l2 : bool;
  in_l3 : bool;
  ordinal : int;  (** position in L1; -1 when not in L1 *)
  mutable above : Agg.state array;  (** over descendant witnesses *)
  mutable below : Agg.state array;  (** over ancestor witnesses *)
}

type annot = {
  a_entry : Entry.t;
  a_above : Agg.state array;
  a_below : Agg.state array;
}
(** An annotated L1 entry, produced in L1 order. *)

val witness_dependent : Ast.entry_agg -> bool
(** Must the aggregate be maintained on the stack (it reads $2)? *)

val tracked_of_filter : Ast.agg_filter -> Ast.entry_agg array
(** The deduplicated witness-dependent aggregates of a filter. *)

val zeros : Ast.entry_agg array -> Agg.state array
(** Initial states (empty witness multiset). *)

val unit_of : Ast.entry_agg array -> Entry.t -> Agg.state array
(** One witness's contribution to each tracked aggregate. *)

val combine_into : Agg.state array -> Agg.state array -> Agg.state array

val sweep :
  mode ->
  ?window:int ->
  tracked:Ast.entry_agg array ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t ->
  Entry.t Ext_list.t option ->
  annot array
(** Phase 1 of the ComputeHS* algorithms: one merged scan, a
    [Spill_stack] of [window] pages, and one sequential write of the
    annotated L1 copy; returns the annotations in L1 order. *)

val sweep_src :
  mode ->
  ?window:int ->
  tracked:Ast.entry_agg array ->
  pager:Pager.t ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src ->
  Entry.t Ext_list.Source.src option ->
  annot array
(** The same sweep over sources, charging only the input pulls and the
    stack's spill I/O: whether the annotation stream is written to disk
    is left to the caller (the streaming phase 2 pipelines it). *)
