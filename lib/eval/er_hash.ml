(* Grace-hash evaluation of the embedded-reference operators — the
   classical alternative to the paper's sort-merge choice (Section 7.2
   picks "sort-merge based techniques for join and semijoin from
   relational databases").

   Both sides are partitioned by a hash of the referenced dn key
   (one read + one write of each), then each partition is joined with an
   in-memory hash table.  The catch — and the reason the paper prefers
   sort-merge — is that hash partitioning destroys the canonical order,
   so the matched contributions must be re-sorted by candidate position
   before the output can be emitted in reverse-dn order.  Experiment E22
   measures both costs side by side; the differential tests pin the
   results to the sort-merge implementation's.

   The cores consume {!Ext_list.Source} streams; the partitions and the
   re-order sort are always materialized (they are repartitioning /
   sort boundaries), and vd's L1 is consumed twice (reference explosion
   plus candidate retrieval), so a live L1 is forced resident.  The
   streaming entry points pipeline only the filter output. *)

let hash_key key partitions = Hashtbl.hash key mod partitions

(* dv (L1 L2 a): candidates are L1 entries referenced by some L2 entry. *)
let dv_core pager tracked partitions s1 s2 attr =
  (* Partition the exploded reference pairs of L2. *)
  let pair_parts = Array.init partitions (fun _ -> Ext_list.Writer.make pager) in
  Ext_list.Source.iter
    (fun r2 ->
      List.iter
        (fun d ->
          let key = Dn.rev_key d in
          Ext_list.Writer.push pair_parts.(hash_key key partitions) (key, r2))
        (Entry.dn_values r2 attr))
    s2;
  let pair_parts = Array.map Ext_list.Writer.close pair_parts in
  (* Partition the candidates, remembering their original position. *)
  let n1 = Ext_list.Source.length s1 in
  let cand_parts = Array.init partitions (fun _ -> Ext_list.Writer.make pager) in
  let ord = ref (-1) in
  Ext_list.Source.iter
    (fun r1 ->
      incr ord;
      let key = Entry.key r1 in
      Ext_list.Writer.push cand_parts.(hash_key key partitions) (!ord, r1))
    s1;
  let cand_parts = Array.map Ext_list.Writer.close cand_parts in
  (* Join each partition pair with an in-memory build side. *)
  let annots = Array.make n1 None in
  let annotate ord r1 states =
    annots.(ord) <-
      Some { Hs_stack.a_entry = r1; a_above = states; a_below = states }
  in
  Array.iteri
    (fun p cands ->
      let table = Hashtbl.create 64 in
      Ext_list.iter
        (fun (key, r2) -> Hashtbl.add table key r2)
        pair_parts.(p);
      Ext_list.iter
        (fun (ord, r1) ->
          let witnesses = Hashtbl.find_all table (Entry.key r1) in
          let states =
            List.fold_left
              (fun st w -> Hs_stack.combine_into st (Hs_stack.unit_of tracked w))
              (Hs_stack.zeros tracked) witnesses
          in
          annotate ord r1 states)
        cands)
    cand_parts;
  (* Partitioning scattered the candidates: restoring the canonical
     output order costs a sort of the annotated records by position. *)
  let scattered =
    let w = Ext_list.Writer.make pager in
    Array.iteri
      (fun i a ->
        match a with Some a -> Ext_list.Writer.push w (i, a) | None -> ())
      annots;
    Ext_list.Writer.close w
  in
  ignore (Ext_sort.sort (fun (i, _) (j, _) -> Int.compare i j) scattered);
  Array.map (fun a -> Option.get a) annots

let tracked_for agg =
  let f = Option.value ~default:Ast.has_witness agg in
  Hs_stack.tracked_of_filter f

let compute_dv ?agg ?(partitions = 8) l1 l2 attr =
  let pager = Ext_list.pager l1 in
  let tracked = tracked_for agg in
  let annots =
    dv_core pager tracked partitions (Ext_list.Source.of_list l1)
      (Ext_list.Source.of_list l2) attr
  in
  Hs_agg.finish tracked Hs_agg.Witness_above agg annots pager

let compute_dv_src ?agg ?(partitions = 8) pager s1 s2 attr =
  let tracked = tracked_for agg in
  let annots = dv_core pager tracked partitions s1 s2 attr in
  Hs_agg.finish_src tracked Hs_agg.Witness_above agg annots pager

(* vd (L1 L2 a): candidates are L1 entries referencing some L2 entry.
   L1 is resident because it is consumed twice: once to explode its
   references, once to retrieve the candidates in order. *)
let vd_core pager tracked partitions l1 s2 attr =
  (* Partition L2 by its own dn key (the build side). *)
  let target_parts = Array.init partitions (fun _ -> Ext_list.Writer.make pager) in
  Ext_list.Source.iter
    (fun r2 ->
      let key = Entry.key r2 in
      Ext_list.Writer.push target_parts.(hash_key key partitions) (key, r2))
    s2;
  let target_parts = Array.map Ext_list.Writer.close target_parts in
  (* Partition L1's outgoing references. *)
  let ref_parts = Array.init partitions (fun _ -> Ext_list.Writer.make pager) in
  let ord = ref (-1) in
  Ext_list.iter
    (fun r1 ->
      incr ord;
      List.iter
        (fun d ->
          let key = Dn.rev_key d in
          Ext_list.Writer.push ref_parts.(hash_key key partitions) (key, !ord))
        (Entry.dn_values r1 attr))
    l1;
  let ref_parts = Array.map Ext_list.Writer.close ref_parts in
  let n1 = Ext_list.length l1 in
  let states = Array.init n1 (fun _ -> Hs_stack.zeros tracked) in
  Array.iteri
    (fun p targets ->
      let table = Hashtbl.create 64 in
      Ext_list.iter (fun (key, r2) -> Hashtbl.replace table key r2) targets;
      Ext_list.iter
        (fun (key, ord) ->
          match Hashtbl.find_opt table key with
          | Some r2 ->
              states.(ord) <-
                Hs_stack.combine_into states.(ord) (Hs_stack.unit_of tracked r2)
          | None -> ())
        ref_parts.(p))
    target_parts;
  (* The contribution stream is scattered across partitions: restoring
     candidate order costs a sort. *)
  let scattered =
    let w = Ext_list.Writer.make pager in
    Array.iteri (fun i st -> Ext_list.Writer.push w (i, st)) states;
    Ext_list.Writer.close w
  in
  ignore (Ext_sort.sort (fun (i, _) (j, _) -> Int.compare i j) scattered);
  let annots =
    Array.init n1 (fun i ->
        {
          Hs_stack.a_entry = Ext_list.unsafe_get l1 i;
          a_above = states.(i);
          a_below = states.(i);
        })
  in
  (* The second pass over L1, retrieving the candidates. *)
  Pager.charge_scan_read pager n1;
  annots

let compute_vd ?agg ?(partitions = 8) l1 l2 attr =
  let pager = Ext_list.pager l1 in
  let tracked = tracked_for agg in
  let annots =
    vd_core pager tracked partitions l1 (Ext_list.Source.of_list l2) attr
  in
  Hs_agg.finish tracked Hs_agg.Witness_above agg annots pager

let compute_vd_src ?agg ?(partitions = 8) pager s1 s2 attr =
  let tracked = tracked_for agg in
  let l1 = Ext_list.Source.force pager s1 in
  let annots = vd_core pager tracked partitions l1 s2 attr in
  Hs_agg.finish_src tracked Hs_agg.Witness_above agg annots pager

let compute ?agg ?partitions op l1 l2 attr =
  match op with
  | Ast.Vd -> compute_vd ?agg ?partitions l1 l2 attr
  | Ast.Dv -> compute_dv ?agg ?partitions l1 l2 attr

let compute_src ?agg ?partitions pager op s1 s2 attr =
  match op with
  | Ast.Vd -> compute_vd_src ?agg ?partitions pager s1 s2 attr
  | Ast.Dv -> compute_dv_src ?agg ?partitions pager s1 s2 attr
