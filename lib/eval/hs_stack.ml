(* The stack machinery shared by the hierarchical-selection algorithms
   ComputeHSPC (Fig 2), ComputeHSAD (Fig 4), ComputeHSADc (Fig 5) and
   their aggregate extensions ComputeHSAgg* (Fig 6, Section 6.4).

   Inputs are sorted by reverse-dn key, so the merged stream visits the
   forest in document order and the stack always holds a root-to-current
   ancestor chain (observations (1) and (2) the paper's correctness
   argument rests on).  Instead of plain witness counts, every frame
   carries an array of distributive aggregate states — one per
   witness-dependent entry aggregate of the selection filter — and the
   push/pop propagation of Figures 2/4/5 is performed on those states.
   Plain hierarchical selection is the special case count($2) > 0.

   I/O accounting of phase 1:
   - the merged scan charges |L1|/B + |L2|/B (+ |L3|/B) page reads via
     the input cursors;
   - the stack is a [Spill_stack] with a bounded window, charging spill
     writes and re-fetch reads exactly when the ancestor chain outgrows
     memory (the paper's "stack entries may be swapped out" remark);
   - finalized annotations are written out as an annotated copy of L1,
     |L1|/B page writes.  Annotations are finalized in postorder, not in
     L1 order, but each finalized record is written exactly once and the
     runs between consecutive open ancestors are already sorted, so a
     page-linked output file achieves sequential cost; the in-memory
     array below models that file. *)

type mode = Pc | Ad | Adc

type frame = {
  entry : Entry.t;
  in_l1 : bool;
  in_l2 : bool;
  in_l3 : bool;
  ordinal : int;  (* position in L1; -1 when not in L1 *)
  mutable above : Agg.state array;  (* over descendant witnesses in L2 *)
  mutable below : Agg.state array;  (* over ancestor witnesses in L2 *)
}

(* An annotated L1 entry: the entry plus its witness-side aggregate
   states for both directions. *)
type annot = {
  a_entry : Entry.t;
  a_above : Agg.state array;
  a_below : Agg.state array;
}

(* --- Tracked witness-dependent aggregates ------------------------------ *)

(* The entry aggregates that depend on the witness set and must therefore
   be maintained on the stack. *)
let witness_dependent = function
  | Ast.Ea_count_witnesses -> true
  | Ast.Ea_agg (_, Ast.W2 _) -> true
  | Ast.Ea_agg (_, (Ast.Self _ | Ast.W1 _)) -> false

let collect_entry_aggs acc = function
  | Ast.A_const _ -> acc
  | Ast.A_entry ea -> if witness_dependent ea then ea :: acc else acc
  | Ast.A_entry_set esa -> (
      match esa with
      | Ast.Esa_agg (_, ea) -> if witness_dependent ea then ea :: acc else acc
      | Ast.Esa_count_entries | Ast.Esa_count_all -> acc)

let tracked_of_filter (f : Ast.agg_filter) =
  let aggs = collect_entry_aggs (collect_entry_aggs [] f.Ast.lhs) f.Ast.rhs in
  Array.of_list (List.sort_uniq Stdlib.compare aggs)

let agg_fun_of = function
  | Ast.Ea_count_witnesses -> Ast.Count
  | Ast.Ea_agg (f, _) -> f

let zeros tracked = Array.map (fun ea -> Agg.init (agg_fun_of ea)) tracked

(* Contribution of one witness [w] to each tracked aggregate. *)
let unit_of tracked w =
  Array.map
    (fun ea ->
      match ea with
      | Ast.Ea_count_witnesses -> Agg.add_int (Agg.init Ast.Count) 0
      | Ast.Ea_agg (f, Ast.W2 a) ->
          let st = Agg.init f in
          List.fold_left
            (fun st v ->
              match (f, v) with
              | Ast.Count, _ -> Agg.add_int st 0
              | _, Value.Int i -> Agg.add_int st i
              | _, (Value.Str _ | Value.Dn _) -> st)
            st (Entry.values w a)
      | Ast.Ea_agg (_, (Ast.Self _ | Ast.W1 _)) -> assert false)
    tracked

let combine_into dst src = Array.mapi (fun i s -> Agg.combine s src.(i)) dst
let copy_states = Array.copy

(* --- Merged input stream ----------------------------------------------- *)

(* Stream the union of up to three sorted sources in key order,
   coalescing entries present in several inputs into one labelled
   frame.  Each input charges whatever its pulls charge: scan reads for
   a resident list, nothing for live operator output. *)
let make_merge tracked c1 c2 c3 =
  let ordinal = ref (-1) in
  fun () ->
    let k cur = Option.map Entry.key (Ext_list.Source.peek cur) in
    let min_key =
      List.filter_map Fun.id
        [ k c1; k c2; Option.bind c3 (fun c -> k c) ]
      |> function
      | [] -> None
      | keys -> Some (List.fold_left min (List.hd keys) keys)
    in
    match min_key with
    | None -> None
    | Some key ->
        let take cur =
          match Ext_list.Source.peek cur with
          | Some e when String.equal (Entry.key e) key ->
              Ext_list.Source.advance cur;
              Some e
          | Some _ | None -> None
        in
        let e1 = take c1 in
        let e2 = take c2 in
        let e3 = Option.bind c3 take in
        if e1 <> None then incr ordinal;
        let entry =
          match (e1, e2, e3) with
          | Some e, _, _ | None, Some e, _ | None, None, Some e -> e
          | None, None, None -> assert false
        in
        Some
          {
            entry;
            in_l1 = e1 <> None;
            in_l2 = e2 <> None;
            in_l3 = e3 <> None;
            ordinal = (if e1 <> None then !ordinal else -1);
            above = zeros tracked;
            below = zeros tracked;
          }

(* --- Phase 1: the stack sweep ------------------------------------------ *)

(* Run the sweep over sources and return the annotated L1 entries, in
   L1 order.  Charges: input pulls and stack spill I/O only — whether
   the annotation stream is ever written to disk is the caller's
   decision (the streaming phase 2 pipelines it; the materialized one
   writes the annotated L1 copy). *)
let sweep_src mode ?(window = 2) ~tracked ~pager s1 s2 s3 =
  let n1 = Ext_list.Source.length s1 in
  let annots = Array.make n1 None in
  let stack = Spill_stack.create ~window_pages:window pager in
  let next = make_merge tracked s1 s2 s3 in
  let finalize rt =
    if rt.in_l1 then
      annots.(rt.ordinal) <-
        Some { a_entry = rt.entry; a_above = rt.above; a_below = rt.below }
  in
  (* Fig 2/4/5 push-time updates. *)
  let on_push rt rl =
    match mode with
    | Pc ->
        if Entry.key_parent_of ~parent:rt.entry ~child:rl.entry then begin
          if rl.in_l2 then rt.above <- combine_into rt.above (unit_of tracked rl.entry);
          if rt.in_l2 then rl.below <- combine_into rl.below (unit_of tracked rt.entry)
        end
    | Ad ->
        if rl.in_l2 then rt.above <- combine_into rt.above (unit_of tracked rl.entry);
        rl.below <- copy_states rt.below;
        if rt.in_l2 then rl.below <- combine_into rl.below (unit_of tracked rt.entry)
    | Adc ->
        if rl.in_l2 then rt.above <- combine_into rt.above (unit_of tracked rl.entry);
        if rt.in_l2 then begin
          if rt.in_l3 then rl.below <- combine_into (zeros tracked) (unit_of tracked rt.entry)
          else rl.below <- combine_into (copy_states rt.below) (unit_of tracked rt.entry)
        end
        else if not rt.in_l3 then rl.below <- copy_states rt.below
        else rl.below <- zeros tracked
  in
  (* Fig 4/5 pop-time propagation of descendant-witness aggregates. *)
  let on_pop popped =
    match mode with
    | Pc -> ()
    | Ad -> (
        match Spill_stack.top stack with
        | Some rb -> rb.above <- combine_into rb.above popped.above
        | None -> ())
    | Adc -> (
        match Spill_stack.top stack with
        | Some rb when not popped.in_l3 ->
            rb.above <- combine_into rb.above popped.above
        | Some _ | None -> ())
  in
  let rec feed rl_opt =
    match rl_opt with
    | None -> drain ()
    | Some rl -> (
        match Spill_stack.top stack with
        | None ->
            Spill_stack.push stack rl;
            feed (next ())
        | Some rt ->
            if Entry.key_ancestor_of ~ancestor:rt.entry ~descendant:rl.entry
            then begin
              on_push rt rl;
              Spill_stack.push stack rl;
              feed (next ())
            end
            else begin
              let popped = Option.get (Spill_stack.pop stack) in
              finalize popped;
              on_pop popped;
              feed rl_opt
            end)
  and drain () =
    match Spill_stack.pop stack with
    | None -> ()
    | Some popped ->
        finalize popped;
        on_pop popped;
        drain ()
  in
  feed (next ());
  Spill_stack.release stack;
  Array.map
    (function
      | Some a -> a
      | None -> assert false  (* every L1 entry is pushed and popped *))
    annots

(* The classic materialized phase 1: sweep resident lists and write the
   annotated L1 copy once, sequentially (|L1|/B page writes on top of
   the input scans and spill I/O). *)
let sweep mode ?window ~tracked l1 l2 l3 =
  let pager = Ext_list.pager l1 in
  let annots =
    sweep_src mode ?window ~tracked ~pager (Ext_list.Source.of_list l1)
      (Ext_list.Source.of_list l2)
      (Option.map Ext_list.Source.of_list l3)
  in
  Pager.charge_scan_write pager (Array.length annots);
  annots
