(** Query plans: cost estimation and per-operator profiling.

    Section 8.2's evaluation strategy is fixed (bottom-up sorted
    pipeline), so a plan is the query tree annotated with predicted
    cardinality and page-I/O (from the theorems' formulas and crude
    selectivities) and, after {!profile}, the measured values per
    operator.  The representation, estimator and fingerprint live in
    {!Plan}; this module binds them to an engine.  The shell's
    [:explain] renders it. *)

type node = Plan.node = {
  label : string;
  detail : string;
  est_rows : int;
  est_io : int;  (** = [est_reads + est_writes] *)
  est_reads : int;
  est_writes : int;
  est_writes_saved : int;
      (** writes a streaming pipeline avoids at this node *)
  actual_rows : int option;
  actual_io : int option;
  actual_ns : int option;  (** wall-clock nanoseconds, excluding children *)
  actual_alloc : int option;
      (** bytes allocated by the operator, excluding children *)
  access : Plan.choice option;
      (** the access-path decision, on sub-scope atomic nodes *)
  children : node list;
}

val estimate : ?mode:Engine.mode -> Engine.t -> Ast.t -> node
(** Predicted plan, no execution — for the tree the engine would
    actually run: the planner's boolean-chain rewrite is applied first,
    and sub-scope atomics carry their {!Plan.choice} (chosen path plus
    the rejected alternatives with the costs that lost), priced with
    the engine's index / cache / calibration handles under its current
    planner policy.  [mode] sets the boundary handling the costs assume
    (default: the engine's). *)

val fingerprint : Ast.t -> string
(** The normalized plan fingerprint ({!Plan.fingerprint}): a digest of
    the operator tree with literal constants elided — the key the query
    journal groups events by. *)

val profile : ?mode:Engine.mode -> Engine.t -> Ast.t -> Entry.t Ext_list.t * node
(** Execute the query, attributing actual rows, I/O and wall-clock time
    to each operator (children's costs excluded from their parents).
    [mode] picks the boundary handling (default: the engine's); under
    [Streaming] the measured io per node shows the writes the pipeline
    avoided, and the root's write is billed to the root operator.
    When tracing is on, also records "plan" and "profile" spans. *)

val pp_node : Format.formatter -> node -> unit
val pp : Format.formatter -> node -> unit

val total_actual_io : node -> int
(** Sum of the per-operator actual I/O over the whole plan. *)

val total_actual_ns : node -> int
(** Sum of the per-operator wall-clock time over the whole plan. *)

val total_est_writes_saved : node -> int
(** Sum of [est_writes_saved] over the whole plan. *)
