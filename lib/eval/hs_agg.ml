(* ComputeHSAgg — hierarchical selection with aggregate selection filters
   (Section 6.4, Fig 6), subsuming the plain operators of Section 5 as
   the special case count($2) > 0.

   Phase 1 is the stack sweep of [Hs_stack]; phase 2 evaluates the
   aggregate selection filter against each annotated L1 entry.  When the
   filter mentions entry-set aggregates (e.g. max(count($2))), an extra
   sequential pass computes the global values first — the maxabove /
   maxbelow accumulators of Fig 6 folded over the annotated list. *)

type direction = Witness_above | Witness_below

let direction_of_hier = function
  | Ast.P | Ast.A -> Witness_below
  | Ast.C | Ast.D -> Witness_above

let direction_of_hier3 = function Ast.Ac -> Witness_below | Ast.Dc -> Witness_above

let mode_of_hier = function Ast.P | Ast.C -> Hs_stack.Pc | Ast.A | Ast.D -> Hs_stack.Ad

let states_of direction (a : Hs_stack.annot) =
  match direction with
  | Witness_above -> a.a_above
  | Witness_below -> a.a_below

(* Find the slot of a tracked aggregate. *)
let slot tracked ea =
  let rec find i =
    if i >= Array.length tracked then
      invalid_arg "Hs_agg: aggregate not tracked"
    else if tracked.(i) = ea then i
    else find (i + 1)
  in
  find 0

(* Value of an entry aggregate for one candidate: witness-dependent ones
   come from the maintained states, self-referencing ones are computed
   from the entry directly. *)
let entry_agg_value tracked states self = function
  | (Ast.Ea_count_witnesses | Ast.Ea_agg (_, Ast.W2 _)) as ea ->
      Agg.result states.(slot tracked ea)
  | Ast.Ea_agg (_, (Ast.Self _ | Ast.W1 _)) as ea ->
      Agg.eval_entry_agg_over ~self ~witnesses:[] ea

(* Global (entry-set) aggregate values, one fold over the annotations. *)
let collect_globals tracked direction (f : Ast.agg_filter) annots pager =
  let esas =
    List.filter_map
      (function Ast.A_entry_set esa -> Some esa | _ -> None)
      [ f.Ast.lhs; f.Ast.rhs ]
    |> List.sort_uniq Stdlib.compare
  in
  if esas = [] then []
  else begin
    (* One extra sequential scan of the annotated list. *)
    Pager.charge_scan_read pager (Array.length annots);
    List.map
      (fun esa ->
        let v =
          match esa with
          | Ast.Esa_count_entries | Ast.Esa_count_all ->
              Some (Agg.num_of_int (Array.length annots))
          | Ast.Esa_agg (fn, ea) ->
              let st =
                Array.fold_left
                  (fun st (a : Hs_stack.annot) ->
                    match
                      entry_agg_value tracked (states_of direction a) a.a_entry ea
                    with
                    | Some v -> Agg.add st v
                    | None -> st)
                  (Agg.init fn) annots
              in
              Agg.result st
        in
        (esa, v))
      esas
  end

let agg_attr_value tracked direction globals (a : Hs_stack.annot) = function
  | Ast.A_const c -> Some (Agg.num_of_int c)
  | Ast.A_entry ea ->
      entry_agg_value tracked (states_of direction a) a.a_entry ea
  | Ast.A_entry_set esa -> List.assoc esa globals

(* Does the filter mention entry-set aggregates?  If so phase 2 needs
   two passes over the annotations, which therefore must exist as a
   resident list even under streaming (the aggregate second-scan
   exception of Thm 8.3). *)
let has_entry_set_aggs (f : Ast.agg_filter) =
  List.exists
    (function
      | Ast.A_entry_set _ -> true | Ast.A_const _ | Ast.A_entry _ -> false)
    [ f.Ast.lhs; f.Ast.rhs ]

(* The filter-and-emit pass, pure of I/O charges: the callers decide
   how the annotation scan and the survivor output are accounted. *)
let survivors tracked direction f globals annots emit =
  Array.iter
    (fun (a : Hs_stack.annot) ->
      let v attr = agg_attr_value tracked direction globals a attr in
      if Agg.cmp_holds_opt f.Ast.op (v f.Ast.lhs) (v f.Ast.rhs) then
        emit a.a_entry)
    annots

(* --- Entry points ------------------------------------------------------ *)

let finish tracked direction agg annots pager =
  let f = Option.value ~default:Ast.has_witness agg in
  let globals = collect_globals tracked direction f annots pager in
  (* Final pass: read the annotated list once, write survivors. *)
  Pager.charge_scan_read pager (Array.length annots);
  let w = Ext_list.Writer.make pager in
  survivors tracked direction f globals annots (Ext_list.Writer.push w);
  Ext_list.Writer.close w

(* Streaming phase 2: when the filter has no entry-set aggregates the
   annotation stream flows straight into the filter — no annotated copy
   is ever written or re-read; survivors flow on as a live source.
   With entry-set aggregates the annotations are consumed twice, so the
   annotated copy is materialized (one write) and both passes charge
   their scan reads, exactly like the materialized operator. *)
let finish_src tracked direction agg annots pager =
  let f = Option.value ~default:Ast.has_witness agg in
  let globals =
    if has_entry_set_aggs f then begin
      Pager.charge_scan_write pager (Array.length annots);
      let globals = collect_globals tracked direction f annots pager in
      Pager.charge_scan_read pager (Array.length annots);
      globals
    end
    else []
  in
  let out = ref [] in
  survivors tracked direction f globals annots (fun e -> out := e :: !out);
  Ext_list.Source.of_array (Array.of_list (List.rev !out))

let tracked_for agg =
  let f = Option.value ~default:Ast.has_witness agg in
  Hs_stack.tracked_of_filter f

(* (op L1 L2 [AggSelFilter]) for op in {p, c, a, d}. *)
let compute_hier ?window ?agg op l1 l2 =
  let tracked = tracked_for agg in
  let annots = Hs_stack.sweep (mode_of_hier op) ?window ~tracked l1 l2 None in
  finish tracked (direction_of_hier op) agg annots (Ext_list.pager l1)

(* (op L1 L2 L3 [AggSelFilter]) for op in {ac, dc}. *)
let compute_hier3 ?window ?agg op l1 l2 l3 =
  let tracked = tracked_for agg in
  let annots = Hs_stack.sweep Hs_stack.Adc ?window ~tracked l1 l2 (Some l3) in
  finish tracked (direction_of_hier3 op) agg annots (Ext_list.pager l1)

(* Streaming variants: sweep the input sources, pipeline the
   annotations into phase 2. *)
let compute_hier_src ?window ?agg pager op s1 s2 =
  let tracked = tracked_for agg in
  let annots =
    Hs_stack.sweep_src (mode_of_hier op) ?window ~tracked ~pager s1 s2 None
  in
  finish_src tracked (direction_of_hier op) agg annots pager

let compute_hier3_src ?window ?agg pager op s1 s2 s3 =
  let tracked = tracked_for agg in
  let annots =
    Hs_stack.sweep_src Hs_stack.Adc ?window ~tracked ~pager s1 s2 (Some s3)
  in
  finish_src tracked (direction_of_hier3 op) agg annots pager
