(* Reference semantics: a direct, executable transcription of
   Definitions 4.1, 5.1, 6.1, 6.2 and 7.1.

   This evaluator manipulates plain entry lists with no regard for cost;
   it is the oracle the external-memory algorithms are differentially
   tested against, and the formal meaning of every query in the system.
   Results are returned in canonical (reverse-dn) sorted order, matching
   the algorithms' output order. *)

let sort_entries es = List.sort_uniq Entry.compare_rev es

(* M(B ? scope ? F) — Definition 4.1.  All three scopes include the base
   entry itself. *)
let eval_atomic instance (a : Ast.atomic) =
  let in_scope e =
    let dn = Entry.dn e in
    match a.scope with
    | Ast.Base -> Dn.equal dn a.base
    | Ast.One ->
        Dn.equal dn a.base || Dn.is_parent_of ~parent:a.base ~child:dn
    | Ast.Sub -> Dn.is_self_or_descendant_of ~descendant:dn ~ancestor:a.base
  in
  Instance.fold
    (fun acc e ->
      if in_scope e && Afilter.matches a.filter e then e :: acc else acc)
    [] instance
  |> List.rev

(* --- Witness sets (Definitions 5.1, 6.2, 7.1) ------------------------- *)

let hier_witnesses op r1 l2 =
  let related r2 =
    match op with
    | Ast.P -> Entry.is_parent_of ~parent:r2 ~child:r1
    | Ast.C -> Entry.is_parent_of ~parent:r1 ~child:r2
    | Ast.A -> Entry.is_ancestor_of ~ancestor:r2 ~descendant:r1
    | Ast.D -> Entry.is_ancestor_of ~ancestor:r1 ~descendant:r2
  in
  List.filter related l2

(* Witnesses for the path-constrained operators: an l2 entry related to
   r1 with no l3 entry strictly between them. *)
let hier3_witnesses op r1 l2 l3 =
  let witness r2 =
    match op with
    | Ast.Ac ->
        Entry.is_ancestor_of ~ancestor:r2 ~descendant:r1
        && not
             (List.exists
                (fun r3 ->
                  Entry.is_ancestor_of ~ancestor:r3 ~descendant:r1
                  && Entry.is_ancestor_of ~ancestor:r2 ~descendant:r3)
                l3)
    | Ast.Dc ->
        Entry.is_ancestor_of ~ancestor:r1 ~descendant:r2
        && not
             (List.exists
                (fun r3 ->
                  Entry.is_ancestor_of ~ancestor:r1 ~descendant:r3
                  && Entry.is_ancestor_of ~ancestor:r3 ~descendant:r2)
                l3)
  in
  List.filter witness l2

let eref_witnesses op r1 l2 attr =
  match op with
  | Ast.Vd ->
      (* witnesses are the entries of l2 whose dn is referenced by r1 *)
      let refs = Entry.dn_values r1 attr in
      List.filter
        (fun r2 -> List.exists (fun d -> Dn.equal d (Entry.dn r2)) refs)
        l2
  | Ast.Dv ->
      (* witnesses are the entries of l2 that reference r1's dn *)
      List.filter
        (fun r2 ->
          List.exists (fun d -> Dn.equal d (Entry.dn r1)) (Entry.dn_values r2 attr))
        l2

(* Select candidates by aggregate filter over their witness sets; the
   default filter for plain hierarchical / embedded-reference selection is
   count($2) > 0 (Section 6.2). *)
let select_with_witnesses candidates_with_ws agg =
  let f = Option.value ~default:Ast.has_witness agg in
  let keep = Agg.filter_predicate ~candidates:candidates_with_ws f in
  List.filter_map
    (fun ((r1, _) as cand) -> if keep cand then Some r1 else None)
    candidates_with_ws

let rec eval instance (q : Ast.t) =
  match q with
  | Ast.Atomic a -> eval_atomic instance a
  | Ast.And (q1, q2) ->
      let s2 = eval instance q2 in
      List.filter (fun e -> List.exists (Entry.equal_dn e) s2) (eval instance q1)
  | Ast.Or (q1, q2) -> sort_entries (eval instance q1 @ eval instance q2)
  | Ast.Diff (q1, q2) ->
      let s2 = eval instance q2 in
      List.filter
        (fun e -> not (List.exists (Entry.equal_dn e) s2))
        (eval instance q1)
  | Ast.Hier (op, q1, q2, agg) ->
      let l1 = eval instance q1 and l2 = eval instance q2 in
      let cands = List.map (fun r1 -> (r1, hier_witnesses op r1 l2)) l1 in
      select_with_witnesses cands agg
  | Ast.Hier3 (op, q1, q2, q3, agg) ->
      let l1 = eval instance q1
      and l2 = eval instance q2
      and l3 = eval instance q3 in
      let cands = List.map (fun r1 -> (r1, hier3_witnesses op r1 l2 l3)) l1 in
      select_with_witnesses cands agg
  | Ast.Gsel (q1, f) ->
      let l1 = eval instance q1 in
      (* Simple aggregate selection: the candidate set is its own witness
         universe; $-references are rejected by Lang.check. *)
      let cands = List.map (fun r1 -> (r1, [])) l1 in
      select_with_witnesses cands (Some f)
  | Ast.Eref (op, q1, q2, attr, agg) ->
      let l1 = eval instance q1 and l2 = eval instance q2 in
      let cands = List.map (fun r1 -> (r1, eref_witnesses op r1 l2 attr)) l1 in
      select_with_witnesses cands agg

(* Closure property: the result of a query is itself an instance. *)
let eval_instance instance q = Instance.of_result instance (eval instance q)
