(* Simple aggregate selection (g L1 AggSelFilter) — Section 6.3.

   Evaluated in at most two scans of the input (Theorem 6.1):

   - if the filter mentions entry-set aggregates (count($$),
     min(min(a)), ...), a first scan computes them incrementally;
   - the second (or only) scan compares each entry's aggregates with the
     constants / entry-set values and writes the survivors. *)

let entry_value self = function
  | Ast.A_const c -> fun _ -> Some (Agg.num_of_int c)
  | Ast.A_entry ea -> fun _ -> Agg.eval_entry_agg_over ~self ~witnesses:[] ea
  | Ast.A_entry_set esa -> fun globals -> List.assoc esa globals

let needs_global (f : Ast.agg_filter) =
  List.exists
    (function Ast.A_entry_set _ -> true | Ast.A_const _ | Ast.A_entry _ -> false)
    [ f.Ast.lhs; f.Ast.rhs ]

let collect_globals (f : Ast.agg_filter) l1 =
  let esas =
    List.filter_map
      (function Ast.A_entry_set esa -> Some esa | _ -> None)
      [ f.Ast.lhs; f.Ast.rhs ]
    |> List.sort_uniq Stdlib.compare
  in
  let states =
    List.map
      (fun esa ->
        match esa with
        | Ast.Esa_count_entries | Ast.Esa_count_all -> (esa, ref (Agg.init Ast.Count))
        | Ast.Esa_agg (fn, _) -> (esa, ref (Agg.init fn)))
      esas
  in
  (* First scan: fold every entry into every entry-set accumulator. *)
  Ext_list.iter
    (fun e ->
      List.iter
        (fun (esa, st) ->
          match esa with
          | Ast.Esa_count_entries | Ast.Esa_count_all ->
              st := Agg.add_int !st 0
          | Ast.Esa_agg (_, ea) -> (
              match Agg.eval_entry_agg_over ~self:e ~witnesses:[] ea with
              | Some v -> st := Agg.add !st v
              | None -> ()))
        states)
    l1;
  List.map (fun (esa, st) -> (esa, Agg.result !st)) states

let keep (f : Ast.agg_filter) globals e =
  let v attr = entry_value e attr globals in
  Agg.cmp_holds_opt f.Ast.op (v f.Ast.lhs) (v f.Ast.rhs)

let compute (f : Ast.agg_filter) l1 =
  let globals = if needs_global f then collect_globals f l1 else [] in
  let w = Ext_list.Writer.make (Ext_list.pager l1) in
  Ext_list.iter (fun e -> if keep f globals e then Ext_list.Writer.push w e) l1;
  Ext_list.Writer.close w

(* Streaming variant.  Without entry-set aggregates this is a pure
   filter on the stream: one pass, no extra I/O.  With them the input
   is consumed twice (Theorem 6.1's two scans), so a live input is
   forced to a resident list first — the double-consumption exception —
   and both scans charge their reads; survivors still flow on live. *)
let compute_src pager (f : Ast.agg_filter) s1 =
  let out = ref [] in
  let emit e = out := e :: !out in
  if needs_global f then begin
    let l1 = Ext_list.Source.force pager s1 in
    let globals = collect_globals f l1 in
    Ext_list.iter (fun e -> if keep f globals e then emit e) l1
  end
  else Ext_list.Source.iter (fun e -> if keep f [] e then emit e) s1;
  Ext_list.Source.of_array (Array.of_list (List.rev !out))
