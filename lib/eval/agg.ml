(* Aggregate values and distributive partial states (Section 6).

   Aggregation results are exact rationals because [average] of integers
   need not be an integer, and aggregate selection filters compare two
   aggregate attributes.  Partial states are distributive/algebraic in the
   paper's sense (Section 6.4): two states over disjoint multisets combine
   into the state of the union, which is what lets the stack algorithms
   maintain them incrementally. *)

(* --- Exact rationals --------------------------------------------------- *)

type num = { nu : int; de : int }  (* invariant: de > 0, gcd(|nu|, de) = 1 *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make_num nu de =
  if de = 0 then invalid_arg "Agg.make_num: zero denominator";
  let s = if de < 0 then -1 else 1 in
  let nu = s * nu and de = s * de in
  let g = max 1 (gcd (abs nu) de) in
  { nu = nu / g; de = de / g }

let num_of_int i = { nu = i; de = 1 }
let num_add a b = make_num ((a.nu * b.de) + (b.nu * a.de)) (a.de * b.de)
let compare_num a b = Stdlib.compare (a.nu * b.de) (b.nu * a.de)
let num_to_string n =
  if n.de = 1 then string_of_int n.nu else Printf.sprintf "%d/%d" n.nu n.de

let pp_num ppf n = Fmt.string ppf (num_to_string n)

(* --- Partial states ---------------------------------------------------- *)

type state =
  | S_min of num option
  | S_max of num option
  | S_sum of num
  | S_count of int
  | S_avg of num * int  (* running sum and count *)

let init = function
  | Ast.Min -> S_min None
  | Ast.Max -> S_max None
  | Ast.Sum -> S_sum (num_of_int 0)
  | Ast.Count -> S_count 0
  | Ast.Average -> S_avg (num_of_int 0, 0)

let opt_merge f a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> Some (f x y)

let min_num a b = if compare_num a b <= 0 then a else b
let max_num a b = if compare_num a b >= 0 then a else b

(* Absorb one value into a state.  [Count] counts occurrences regardless
   of the value. *)
let add state v =
  match state with
  | S_min m -> S_min (opt_merge min_num m (Some v))
  | S_max m -> S_max (opt_merge max_num m (Some v))
  | S_sum s -> S_sum (num_add s v)
  | S_count c -> S_count (c + 1)
  | S_avg (s, c) -> S_avg (num_add s v, c + 1)

let add_int state i = add state (num_of_int i)

let combine a b =
  match (a, b) with
  | S_min x, S_min y -> S_min (opt_merge min_num x y)
  | S_max x, S_max y -> S_max (opt_merge max_num x y)
  | S_sum x, S_sum y -> S_sum (num_add x y)
  | S_count x, S_count y -> S_count (x + y)
  | S_avg (sx, cx), S_avg (sy, cy) -> S_avg (num_add sx sy, cx + cy)
  | (S_min _ | S_max _ | S_sum _ | S_count _ | S_avg _), _ ->
      invalid_arg "Agg.combine: mismatched aggregate states"

(* The final value.  Empty min/max/average are undefined (None); empty
   sum and count are 0.  A comparison against an undefined aggregate is
   false (Section 6's semantics never compares undefined values because
   its examples always aggregate present attributes; we make the total
   choice explicit). *)
let result = function
  | S_min m | S_max m -> m
  | S_sum s -> Some s
  | S_count c -> Some (num_of_int c)
  | S_avg (_, 0) -> None
  | S_avg (s, c) -> Some (make_num s.nu (s.de * c))

let cmp_holds op a b =
  let c = compare_num a b in
  match op with
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Eq -> c = 0
  | Ast.Ge -> c >= 0
  | Ast.Gt -> c > 0
  | Ast.Ne -> c <> 0

let cmp_holds_opt op a b =
  match (a, b) with Some a, Some b -> cmp_holds op a b | _ -> false

(* --- Direct (oracle) evaluation over explicit witness lists ------------ *)

(* Multiset of integer values of attribute [a] in [r]; non-integer values
   do not contribute to numeric aggregation (Count still counts every
   value of the attribute, whatever its type). *)
let attr_nums r a = List.map num_of_int (Entry.int_values r a)

let eval_entry_agg_over ~self ~witnesses (ea : Ast.entry_agg) =
  match ea with
  | Ast.Ea_count_witnesses -> Some (num_of_int (List.length witnesses))
  | Ast.Ea_agg (f, ref_) ->
      let values =
        match ref_ with
        | Ast.Self a | Ast.W1 a -> (
            match f with
            | Ast.Count ->
                List.map (fun _ -> num_of_int 0) (Entry.values self a)
            | Ast.Min | Ast.Max | Ast.Sum | Ast.Average -> attr_nums self a)
        | Ast.W2 a ->
            List.concat_map
              (fun w ->
                match f with
                | Ast.Count ->
                    List.map (fun _ -> num_of_int 0) (Entry.values w a)
                | Ast.Min | Ast.Max | Ast.Sum | Ast.Average -> attr_nums w a)
              witnesses
      in
      result (List.fold_left add (init f) values)

(* Entry-set aggregate over all candidates, each with its witness list. *)
let eval_entry_set_agg_over ~candidates (esa : Ast.entry_set_agg) =
  match esa with
  | Ast.Esa_count_entries | Ast.Esa_count_all ->
      Some (num_of_int (List.length candidates))
  | Ast.Esa_agg (f, ea) ->
      let values =
        List.filter_map
          (fun (self, witnesses) -> eval_entry_agg_over ~self ~witnesses ea)
          candidates
      in
      result (List.fold_left add (init f) values)

(* Evaluate an aggregate selection filter over candidates-with-witnesses.
   Returns the predicate selecting the surviving candidates.  Used by the
   reference semantics; the external-memory algorithms compute the same
   quantities incrementally. *)
let filter_predicate ~candidates (f : Ast.agg_filter) =
  let attr_value (self, witnesses) = function
    | Ast.A_const c -> Some (num_of_int c)
    | Ast.A_entry ea -> eval_entry_agg_over ~self ~witnesses ea
    | Ast.A_entry_set esa -> eval_entry_set_agg_over ~candidates esa
  in
  fun cand ->
    cmp_holds_opt f.Ast.op (attr_value cand f.Ast.lhs) (attr_value cand f.Ast.rhs)
